package lass

import (
	"context"

	"lass/internal/azure"
	"lass/internal/realtime"
	"lass/internal/xrand"
)

// Realtime is the wall-clock LaSS runtime: a miniature FaaS platform whose
// worker pools are autoscaled by the same controller that drives the
// simulation. See cmd/lass-server and examples/edgeserver.
type Realtime = realtime.Platform

// RealtimeConfig configures the wall-clock runtime.
type RealtimeConfig = realtime.Config

// Handler executes one invocation on the wall-clock runtime.
type Handler = realtime.Handler

// NewRealtime builds and starts a wall-clock LaSS platform.
func NewRealtime(cfg RealtimeConfig) (*Realtime, error) {
	return realtime.New(cfg)
}

// HandlerCPUFraction returns the executing container's current CPU
// fraction from a handler context (1.0 outside a handler). Handlers that
// emulate CPU-bound work should scale their effort by it.
func HandlerCPUFraction(ctx context.Context) float64 {
	return realtime.CPUFraction(ctx)
}

// TraceRow is one function's per-minute invocation counts in the Azure
// Functions Trace 2019 schema (§6.7).
type TraceRow = azure.Row

// TraceArchetype names a synthetic trace shape (steady, periodic, bursty,
// sporadic).
type TraceArchetype = azure.Archetype

// Trace archetypes.
const (
	TraceSteady   = azure.Steady
	TracePeriodic = azure.Periodic
	TraceBursty   = azure.Bursty
	TraceSporadic = azure.Sporadic
)

// SynthesizeTrace generates one Azure-schema trace row with the given
// shape and mean invocations per minute. Rows with equal seeds are
// identical.
func SynthesizeTrace(seed uint64, archetype TraceArchetype, meanPerMinute float64, minutes int) (TraceRow, error) {
	return azure.Synthesize(xrand.New(seed), azure.SynthConfig{
		Archetype:     archetype,
		MeanPerMinute: meanPerMinute,
		Minutes:       minutes,
	})
}

// FindActiveTraceWindow returns the start minute of the busiest
// window-minute slice of a trace — how the paper picks an active hour out
// of the 24h Azure dataset (§6.7).
func FindActiveTraceWindow(counts []float64, windowMinutes int) int {
	return azure.FindActiveWindow(counts, windowMinutes)
}
