// Benchmarks regenerating every table and figure of the paper's evaluation
// (one benchmark per artifact, running the same harnesses as
// cmd/lass-bench in quick mode and reporting the headline metric), plus
// micro-benchmarks of the hot control-plane paths the paper's Fig 5
// scalability argument rests on.
//
// Run them all:
//
//	go test -bench=. -benchmem
package lass

import (
	"fmt"
	"os"
	"strconv"
	"testing"
	"time"

	"lass/internal/allocation"
	"lass/internal/controller"
	"lass/internal/dispatch"
	"lass/internal/experiments"
	"lass/internal/fairshare"
	"lass/internal/federation"
	"lass/internal/functions"
	"lass/internal/queuing"
	"lass/internal/sim"
	"lass/internal/xrand"

	icluster "lass/internal/cluster"
)

// runExperiment executes one experiment harness per iteration; most take a
// few seconds, so the default -benchtime runs them once.
func runExperiment(b *testing.B, id string) *experiments.Table {
	b.Helper()
	var tab *experiments.Table
	var err error
	for i := 0; i < b.N; i++ {
		tab, err = experiments.Run(id, experiments.Options{Seed: 42, Quick: true})
		if err != nil {
			b.Fatal(err)
		}
	}
	return tab
}

func BenchmarkTable1FunctionCatalog(b *testing.B) {
	b.ReportAllocs()
	tab := runExperiment(b, "table1")
	b.ReportMetric(float64(len(tab.Rows)), "functions")
}

func BenchmarkFig3ModelValidationHomogeneous(b *testing.B) {
	b.ReportAllocs()
	tab := runExperiment(b, "fig3")
	met := 0
	for _, row := range tab.Rows {
		if row[5] == "true" {
			met++
		}
	}
	b.ReportMetric(float64(met)/float64(len(tab.Rows)), "slo-points-met-frac")
}

func BenchmarkFig4ModelValidationHeterogeneous(b *testing.B) {
	b.ReportAllocs()
	tab := runExperiment(b, "fig4")
	met := 0
	for _, row := range tab.Rows {
		if row[3] == "true" {
			met++
		}
	}
	b.ReportMetric(float64(met)/float64(len(tab.Rows)), "slo-points-met-frac")
}

func BenchmarkFig5SolverScalability(b *testing.B) {
	b.ReportAllocs()
	runExperiment(b, "fig5")
}

func BenchmarkFig6AutoScaling(b *testing.B) {
	b.ReportAllocs()
	runExperiment(b, "fig6")
}

func BenchmarkFig7DeflationServiceTime(b *testing.B) {
	b.ReportAllocs()
	runExperiment(b, "fig7")
}

func BenchmarkFig8ReclamationPolicies(b *testing.B) {
	b.ReportAllocs()
	runExperiment(b, "fig8")
}

func BenchmarkFig9AzureTrace(b *testing.B) {
	b.ReportAllocs()
	runExperiment(b, "fig9")
}

func BenchmarkOpenWhiskBaselineCascade(b *testing.B) {
	b.ReportAllocs()
	runExperiment(b, "openwhisk")
}

// checkBaselineColumns fails the bench (and so the CI bench smoke step,
// which runs no plain tests) when the committed BENCH_federation.json
// baseline is missing columns the sweep now produces, an aggregate row
// for a registered built-in placement policy, or the coordinator sweep's
// election/outage/lease scenario rows — a stale baseline used to pass
// silently. TestFederationBaselineColumns guards the same invariants for
// plain `go test` runs.
func checkBaselineColumns(b *testing.B, tab *experiments.Table) {
	b.Helper()
	const regen = "go run ./cmd/lass-sim -federation -fed-bench -quick -seed 1 -json BENCH_federation.json"
	raw, err := os.ReadFile("BENCH_federation.json")
	if err != nil {
		b.Fatalf("committed baseline unreadable: %v (regenerate with %s)", err, regen)
	}
	missing, err := experiments.MissingBaselineColumns(raw, tab)
	if err != nil {
		b.Fatal(err)
	}
	if len(missing) > 0 {
		b.Fatalf("BENCH_federation.json baseline is missing columns %v; regenerate with %s", missing, regen)
	}
	stale, err := experiments.MissingBaselinePolicies(raw, federation.BuiltinPlacerNames)
	if err != nil {
		b.Fatal(err)
	}
	if len(stale) > 0 {
		b.Fatalf("BENCH_federation.json baseline is missing policies %v; regenerate with %s", stale, regen)
	}
	scenarios, err := experiments.MissingCoordinatorScenarios(raw)
	if err != nil {
		b.Fatal(err)
	}
	if len(scenarios) > 0 {
		b.Fatalf("BENCH_federation.json baseline is missing coordinator scenarios %v; regenerate with %s", scenarios, regen)
	}
	engines, err := experiments.MissingEngineScenarios(raw)
	if err != nil {
		b.Fatal(err)
	}
	if len(engines) > 0 {
		b.Fatalf("BENCH_federation.json baseline is missing engine-bench scenarios %v; regenerate with %s", engines, regen)
	}
	controls, err := experiments.MissingControlScenarios(raw)
	if err != nil {
		b.Fatal(err)
	}
	if len(controls) > 0 {
		b.Fatalf("BENCH_federation.json baseline is missing control-bench scenarios %v; regenerate with %s", controls, regen)
	}
	chaos, err := experiments.MissingChaosScenarios(raw)
	if err != nil {
		b.Fatal(err)
	}
	if len(chaos) > 0 {
		b.Fatalf("BENCH_federation.json baseline is missing chaos-sweep scenarios %v; regenerate with %s", chaos, regen)
	}
	hier, err := experiments.MissingHierarchyScenarios(raw)
	if err != nil {
		b.Fatal(err)
	}
	if len(hier) > 0 {
		b.Fatalf("BENCH_federation.json baseline is missing hierarchy-sweep modes %v; regenerate with %s", hier, regen)
	}
}

// BenchmarkFederationSweep runs the synthetic offload-policy sweep (the
// same harness behind the committed BENCH_federation.json baseline, which
// is generated at seed 1 rather than this file's seed 42), validates the
// committed baseline still carries every sweep column, and reports the
// model-driven policy's aggregate violation rate.
func BenchmarkFederationSweep(b *testing.B) {
	b.ReportAllocs()
	tab := runExperiment(b, "federation")
	checkBaselineColumns(b, tab)
	for _, row := range tab.Rows {
		if row[0] == "model-driven" && row[2] == "all" {
			if v, err := strconv.ParseFloat(row[len(row)-1], 64); err == nil {
				b.ReportMetric(v, "model-driven-violation-rate")
			}
		}
	}
}

// BenchmarkFederationTrace runs the trace-driven sweep.
func BenchmarkFederationTrace(b *testing.B) {
	b.ReportAllocs()
	runExperiment(b, "federation-trace")
}

// BenchmarkFederationPlacers runs the all-registered-placers sweep on the
// skewed traces (global fair share + admission + throttled cloud) and
// reports how much the grant-aware policy cuts the plain model-driven
// violation rate — the Placer API's headline number.
func BenchmarkFederationPlacers(b *testing.B) {
	b.ReportAllocs()
	tab := runExperiment(b, "federation-placers")
	rate := func(policy string) (float64, error) {
		row, err := experiments.PlacerAggregate(tab, policy)
		if err != nil {
			return 0, err
		}
		return strconv.ParseFloat(row[len(row)-1], 64)
	}
	model, err1 := rate("model-driven")
	grant, err2 := rate("grant-aware")
	if err1 == nil && err2 == nil && model > 0 {
		b.ReportMetric((model-grant)/model, "grant-aware-violation-cut-frac")
	}
}

// BenchmarkFederationFairShare runs the local-vs-global allocation sweep
// and reports how much the federation-wide allocator cuts the nearest-peer
// violation rate relative to per-site allocation.
func BenchmarkFederationFairShare(b *testing.B) {
	b.ReportAllocs()
	tab := runExperiment(b, "federation-fairshare")
	rate := func(alloc string) (float64, error) {
		row, err := experiments.FairShareAggregate(tab, "nearest-peer", alloc)
		if err != nil {
			return 0, err
		}
		return strconv.ParseFloat(row[len(row)-1], 64)
	}
	local, err1 := rate("local")
	global, err2 := rate("global")
	if err1 == nil && err2 == nil && local > 0 {
		b.ReportMetric((local-global)/local, "global-violation-cut-frac")
	}
}

// BenchmarkFederationCoordinator runs the coordinator election / outage /
// grant-lease sweep (whose invariants are hard-asserted inside the
// harness) and reports how much RTT-centroid election cuts the mean
// grant-delivery delay versus the fixed far-spoke placement.
func BenchmarkFederationCoordinator(b *testing.B) {
	b.ReportAllocs()
	tab := runExperiment(b, "federation-coordinator")
	if cut, err := experiments.CoordinatorDelayCut(tab); err == nil {
		b.ReportMetric(cut, "centroid-delay-cut-frac")
	} else {
		b.Fatal(err)
	}
}

// BenchmarkFederationChaos runs the chaos sweep — coordinator election x
// grant-lease across seeded Gilbert-Elliott failure replicates, with the
// leased-beats-frozen mean-violation assertion enforced inside the
// harness — and reports the fractional mean-violation cut leased grants
// achieve over frozen grants under centroid election.
func BenchmarkFederationChaos(b *testing.B) {
	b.ReportAllocs()
	tab := runExperiment(b, "federation-chaos")
	rate := func(coordinator, grants string) (float64, bool) {
		for _, row := range tab.Rows {
			if len(row) >= 4 && row[0] == coordinator && row[1] == grants {
				v, err := strconv.ParseFloat(row[3], 64)
				return v, err == nil
			}
		}
		return 0, false
	}
	leased, ok1 := rate("centroid", "leased")
	frozen, ok2 := rate("centroid", "frozen")
	if ok1 && ok2 && frozen > 0 {
		b.ReportMetric((frozen-leased)/frozen, "leased-violation-cut-frac")
	}
}

func BenchmarkAblationEstimator(b *testing.B) {
	b.ReportAllocs()
	runExperiment(b, "ablation-estimator")
}

func BenchmarkAblationPlacement(b *testing.B) {
	b.ReportAllocs()
	runExperiment(b, "ablation-placement")
}

func BenchmarkAblationHetModel(b *testing.B) {
	b.ReportAllocs()
	runExperiment(b, "ablation-hetmodel")
}

func BenchmarkAblationGGC(b *testing.B) {
	b.ReportAllocs()
	runExperiment(b, "ablation-ggc")
}

// --- micro-benchmarks of the control-plane hot paths ---

// BenchmarkSolverHomogeneous measures one Algorithm 1 sizing (the per
// -epoch, per-function cost in the common homogeneous case).
func BenchmarkSolverHomogeneous(b *testing.B) {
	b.ReportAllocs()
	slo := DefaultSLO()
	for i := 0; i < b.N; i++ {
		if _, err := queuing.MinimalContainers(45, 10, slo); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSolverHeterogeneous1000 measures resizing a 1000-container
// heterogeneous pool after a +10% spike — the paper's Fig 5 headline
// (sub-100ms reaction at 1000 containers).
func BenchmarkSolverHeterogeneous1000(b *testing.B) {
	b.ReportAllocs()
	slo := DefaultSLO()
	rng := xrand.New(9)
	rates := make([]float64, 1000)
	var total float64
	for i := range rates {
		rates[i] = 10.0
		if i%3 == 0 {
			rates[i] = rng.Uniform(7, 9.5)
		}
		total += rates[i]
	}
	lambda := 0.8 * total * 1.10
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := queuing.AdditionalHetContainers(lambda, rates, 10, slo); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMMCProbWait measures one steady-state evaluation.
func BenchmarkMMCProbWait(b *testing.B) {
	b.ReportAllocs()
	m := queuing.MMC{Lambda: 900, Mu: 10, C: 120}
	for i := 0; i < b.N; i++ {
		if _, err := m.ProbWaitLE(0.1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFairShareAdjust measures one overload adjustment across 100
// functions.
func BenchmarkFairShareAdjust(b *testing.B) {
	b.ReportAllocs()
	rng := xrand.New(3)
	demands := make([]fairshare.Demand, 100)
	for i := range demands {
		demands[i] = fairshare.Demand{
			ID:      string(rune('a'+i%26)) + string(rune('a'+i/26)),
			Weight:  float64(rng.Intn(4) + 1),
			Desired: int64(rng.Intn(4000)),
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fairshare.AdjustCapped(demands, 100_000); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGlobalAllocator measures one federation-wide allocation epoch
// at fleet scale: 16 sites x 32 functions across 4 user namespaces, with
// skewed demand so every pass (entitlement, feasibility clamp, overflow
// spreading, drift accounting) does real work.
func BenchmarkGlobalAllocator(b *testing.B) {
	b.ReportAllocs()
	rng := xrand.New(17)
	sites := make([]allocation.SiteDemand, 16)
	for i := range sites {
		fns := make([]allocation.FunctionDemand, 32)
		for j := range fns {
			desire := int64(rng.Intn(500))
			if i%4 == 0 {
				desire *= 8 // every fourth site runs hot
			}
			fns[j] = allocation.FunctionDemand{
				Name:       fmt.Sprintf("f%02d", j),
				User:       fmt.Sprintf("u%d", j%4),
				UserWeight: float64(j%4 + 1),
				Weight:     float64(rng.Intn(4) + 1),
				DesiredCPU: desire,
			}
		}
		sites[i] = allocation.SiteDemand{
			Site:        fmt.Sprintf("edge-%02d", i),
			CapacityCPU: 16000,
			Functions:   fns,
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := allocation.Allocate(sites, true); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEstimatorRecordAndRate measures the per-arrival estimator cost
// plus a rate read every 64 arrivals.
func BenchmarkEstimatorRecordAndRate(b *testing.B) {
	b.ReportAllocs()
	d, err := controller.NewDualWindow(controller.DefaultDualWindow())
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		now := time.Duration(i) * time.Millisecond
		d.RecordArrival(now)
		if i%64 == 0 {
			d.Rate(now)
		}
	}
}

// BenchmarkDispatchRequest measures the full data-path cost of one request
// (arrive → WRR select → service event → completion).
func BenchmarkDispatchRequest(b *testing.B) {
	b.ReportAllocs()
	engine := sim.NewEngine()
	cl, err := icluster.New(icluster.Config{Nodes: 4, CPUPerNode: 4000, MemPerNode: 16384})
	if err != nil {
		b.Fatal(err)
	}
	spec := functions.MicroBenchmark(time.Millisecond)
	q, err := dispatch.NewQueue(engine, spec, 100*time.Millisecond, xrand.New(5))
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		c, err := cl.Place(spec.Name, spec.CPUMillis, spec.MemoryMiB)
		if err != nil {
			b.Fatal(err)
		}
		if err := cl.MarkRunning(c); err != nil {
			b.Fatal(err)
		}
		if err := q.AddContainer(c); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.Arrive()
		engine.Run() // drain the completion event(s)
	}
}

// BenchmarkEngineChurn measures the raw timer-queue hot path on each
// scheduler implementation: 1M self-rescheduling chains with a cancelled-
// decoy mix and several thousand timers pending at all times (the
// metro-scale regime). ref-heap is the frozen pre-refactor pointer-event
// engine, so the heap/calendar sub-benchmarks read directly as the
// refactor's speedup.
func BenchmarkEngineChurn(b *testing.B) {
	b.ReportAllocs()
	for _, engine := range experiments.EngineNames {
		b.Run(engine, func(b *testing.B) {
			b.ReportAllocs()
			var events uint64
			var wall time.Duration
			for i := 0; i < b.N; i++ {
				st, err := experiments.EngineChurn(engine, 1_000_000, 7)
				if err != nil {
					b.Fatal(err)
				}
				events += st.Events
				wall += st.Wall
			}
			if wall > 0 {
				b.ReportMetric(float64(events)/wall.Seconds(), "events/sec")
			}
		})
	}
}

// BenchmarkMetroDay runs the whole-stack metro-scale scenario — 100 edge
// sites replaying a full 24h trace day on one shared engine — once per
// iteration and guards the refactor's throughput floor: the run must
// clear 100k events/sec (the dev-box rate is ~1.5M/s; the floor is set
// ~15x below so slow CI hardware passes but an O(n log n) -> O(n^2)
// regression in the scheduler or a new per-event allocation does not) and
// stay under 1 heap allocation per event. CI runs this with -benchtime=1x
// as the perf smoke.
func BenchmarkMetroDay(b *testing.B) {
	b.ReportAllocs()
	const floorEventsPerSec = 100_000
	for _, engine := range []string{"heap", "calendar"} {
		b.Run(engine, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				st, err := experiments.MetroDay(experiments.Options{Seed: 1}, engine, 100, 24*60)
				if err != nil {
					b.Fatal(err)
				}
				if eps := st.EventsPerSec(); eps < floorEventsPerSec {
					b.Fatalf("metro-day on %s ran %.0f events/sec, below the %d floor (%d events in %v)",
						engine, eps, floorEventsPerSec, st.Events, st.Wall)
				}
				if ape := st.AllocsPerEvent(); ape > 1 {
					b.Fatalf("metro-day on %s allocated %.3f times per event; the pooled hot path must stay below 1",
						engine, ape)
				}
				b.ReportMetric(st.EventsPerSec(), "events/sec")
				b.ReportMetric(st.AllocsPerEvent(), "allocs/event")
			}
		})
	}
}

// BenchmarkControlPlane runs the control-plane benchmark — per-function
// M/M/c sizing plus the federation-wide three-pass allocation, cold vs
// warm, on the 100-site metro demand set — and guards the incremental
// control plane's floors: the warm steady state must clear at least 3x the
// cold epoch rate (the dev-box ratio is orders of magnitude higher; the
// floor is set low so slow CI hardware passes but losing the warm path
// does not) and allocate exactly zero heap objects per epoch. CI runs this
// with -benchtime=1x as part of the perf smoke.
func BenchmarkControlPlane(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		opt := experiments.Options{Seed: 1}
		cold, err := experiments.ControlEpochs(opt, "cold", 100, 8, 20)
		if err != nil {
			b.Fatal(err)
		}
		steady, err := experiments.ControlEpochs(opt, "steady", 100, 8, 200)
		if err != nil {
			b.Fatal(err)
		}
		// Re-measure before failing: a stray runtime allocation can land in
		// the measured window, but a real regression allocates every epoch
		// and fails every attempt.
		for attempt := 0; steady.Allocs != 0 && attempt < 2; attempt++ {
			if steady, err = experiments.ControlEpochs(opt, "steady", 100, 8, 200); err != nil {
				b.Fatal(err)
			}
		}
		if steady.Allocs != 0 {
			b.Fatalf("warm steady-state control epochs allocated %d times over %d epochs; want exactly 0",
				steady.Allocs, steady.Epochs)
		}
		if se, ce := steady.EpochsPerSec(), cold.EpochsPerSec(); se < 3*ce {
			b.Fatalf("warm steady state ran %.0f epochs/sec, below 3x the cold rate %.0f", se, ce)
		}
		b.ReportMetric(cold.EpochsPerSec(), "cold-epochs/sec")
		b.ReportMetric(steady.EpochsPerSec(), "steady-epochs/sec")
		b.ReportMetric(steady.AllocsPerEpoch(), "steady-allocs/epoch")
	}
}

// BenchmarkHierarchicalAllocator runs all-dirty hierarchical allocation
// epochs — quota-tree deserved cascade, metro-scoped spreading, and
// cross-site reclaim all firing — on a 32-site, 4-metro fleet with
// drifting demand, and guards the hierarchy refactor's floor: an epoch
// whose inputs did not change must allocate exactly zero heap objects,
// the same steady-state contract the flat allocator keeps. CI runs this
// with -benchtime=1x as part of the perf smoke.
func BenchmarkHierarchicalAllocator(b *testing.B) {
	b.ReportAllocs()
	const nsites, nmetros = 32, 4
	h := &allocation.Hierarchy{Root: &allocation.Group{ID: "root"}}
	for m := 0; m < nmetros; m++ {
		h.Root.Children = append(h.Root.Children, &allocation.Group{ID: fmt.Sprintf("m%d", m)})
	}
	var sites []allocation.SiteDemand
	for i := 0; i < nsites; i++ {
		g := h.Root.Children[i%nmetros]
		name := fmt.Sprintf("s%02d", i)
		g.Sites = append(g.Sites, name)
		sites = append(sites, allocation.SiteDemand{
			Site: name, Weight: 1, CapacityCPU: int64(1000 + 100*(i%7)),
			Functions: []allocation.FunctionDemand{
				{Name: "auth", Weight: 2, DesiredCPU: int64(400 * (i % 5))},
				{Name: "encode", Weight: 1, DesiredCPU: int64(300 * ((i + 2) % 4))},
				{Name: "infer", Weight: 3, DesiredCPU: int64(250 * ((i + 1) % 6))},
			},
		})
	}
	a := allocation.NewAllocator()
	if err := a.SetHierarchy(h, true); err != nil {
		b.Fatal(err)
	}
	if _, err := a.Allocate(sites, true); err != nil {
		b.Fatal(err)
	}
	allocs := testing.AllocsPerRun(20, func() {
		if _, err := a.Allocate(sites, true); err != nil {
			b.Fatal(err)
		}
	})
	if allocs != 0 {
		b.Fatalf("hierarchical steady-state epochs allocated %.1f times; the warm quota-tree path must stay at 0", allocs)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Shift one site's demand every iteration so no epoch takes the
		// unchanged fast path.
		sites[i%nsites].Functions[0].DesiredCPU += int64(1 + i%3)
		if _, err := a.Allocate(sites, true); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulationMinute measures simulating one minute of a 30 req/s
// platform end to end (workload, dispatch, controller epochs, metrics).
func BenchmarkSimulationMinute(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		spec := MicroBenchmark(100 * time.Millisecond)
		wl, err := StaticWorkload(30)
		if err != nil {
			b.Fatal(err)
		}
		p, err := NewSimulation(SimulationConfig{
			Cluster:   PaperCluster(),
			Seed:      uint64(i),
			Functions: []FunctionConfig{{Spec: spec, Workload: wl, Prewarm: 2}},
		})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := p.Run(time.Minute); err != nil {
			b.Fatal(err)
		}
	}
}
