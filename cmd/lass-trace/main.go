// Command lass-trace synthesizes workload traces in the Azure Functions
// Trace 2019 CSV schema (per-minute invocation counts; see §6.7 and
// internal/azure). The output can be fed back into the Fig 9 harness or
// any tool expecting the Azure dataset format.
//
// Usage:
//
//	lass-trace -rows 6 -minutes 1440 -mean 30 -archetype mixed > day.csv
//	lass-trace -archetype sporadic -rows 1 -minutes 60 > burst.csv
package main

import (
	"flag"
	"fmt"
	"os"

	"lass/internal/azure"
	"lass/internal/xrand"
)

func main() {
	var (
		rows      = flag.Int("rows", 6, "number of function traces to synthesize")
		minutes   = flag.Int("minutes", azure.MinutesPerDay, "trace length in minutes")
		mean      = flag.Float64("mean", 30, "target mean invocations per minute")
		archetype = flag.String("archetype", "mixed", "steady|periodic|bursty|sporadic|mixed")
		seed      = flag.Uint64("seed", 1, "random seed")
	)
	flag.Parse()

	rng := xrand.New(*seed)
	pick := func(i int) azure.Archetype {
		switch *archetype {
		case "steady":
			return azure.Steady
		case "periodic":
			return azure.Periodic
		case "bursty":
			return azure.Bursty
		case "sporadic":
			return azure.Sporadic
		case "mixed":
			return azure.Archetype(i % 4)
		default:
			fmt.Fprintf(os.Stderr, "lass-trace: unknown archetype %q\n", *archetype)
			os.Exit(1)
			return 0
		}
	}
	var out []azure.Row
	for i := 0; i < *rows; i++ {
		row, err := azure.Synthesize(rng, azure.SynthConfig{
			Archetype:     pick(i),
			MeanPerMinute: *mean,
			Minutes:       *minutes,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "lass-trace: %v\n", err)
			os.Exit(1)
		}
		out = append(out, row)
	}
	if err := azure.Write(os.Stdout, out); err != nil {
		fmt.Fprintf(os.Stderr, "lass-trace: %v\n", err)
		os.Exit(1)
	}
}
