// Command lass-sim runs an ad-hoc LaSS simulation from flags: one or more
// catalog functions under static or trace-driven Poisson load on a
// configurable cluster, printing per-function latency and allocation
// summaries.
//
// Usage:
//
//	lass-sim -functions squeezenet:40,geofence:120 -duration 10m
//	lass-sim -functions mobilenet-v2:20 -policy termination -nodes 3
//	lass-sim -functions binaryalert:80 -trace traces.csv   # Azure CSV rates
//	lass-sim -federation -out federation.csv               # offload sweep
//	lass-sim -federation -fed-trace -topology star         # trace-driven, star topology
//	lass-sim -federation -global-fairshare -admission      # federation-wide §4.1 allocator
//	lass-sim -federation -global-fairshare -coordinator centroid  # RTT-centroid coordinator
//	lass-sim -federation -fed-fairshare                    # local-vs-global allocation sweep
//	lass-sim -federation -fed-placers                      # every registered placement policy
//	lass-sim -federation -fed-coordinator                  # coordinator election/outage/lease sweep
//	lass-sim -federation -fed-chaos -chaos-replicates 8    # election x lease across seeded failures
//	lass-sim -federation -fed-hierarchy                    # flat vs borrow vs borrow+reclaim quota trees
//	lass-sim -federation -scenario scenarios/metro-flaps.yaml  # one declarative scenario file
//	lass-sim -federation -scenario all                     # every committed scenarios/*.yaml
//	lass-sim -federation -policy grant-aware               # one placement policy only
//	lass-sim -federation -fed-bench -quick -seed 1 -json BENCH_federation.json
//	lass-sim -federation -sweep-workers 8                  # parallel sweep, identical output
//	lass-sim -federation -scheduler calendar -cpuprofile cpu.pprof
//
// With -federation the command runs the multi-cluster edge–cloud offload
// experiment instead: three edge sites plus a cloud backend with warm-pool
// cold starts and per-invocation pricing, sweeping every placement policy
// in the placer registry (never / cloud-only / nearest-peer / model-driven
// / grant-aware / cost-bounded, plus custom lass.RegisterPlacer policies),
// and writes the comparison (per-policy SLO-violation rates, cloud cold
// starts and cost) as CSV and optionally JSON. -policy restricts the sweep
// to one registered placement policy. -fed-trace drives each site from its
// own Azure-format trace row (synthesized deterministically, or row i of
// the -trace CSV); -fed-fairshare sweeps per-site-local versus
// federation-wide (global) fair-share allocation on a skewed-load scenario
// instead; -fed-placers sweeps every registered policy on the skewed
// traces with global fair share, admission, and a throttled cloud all on;
// -fed-coordinator sweeps coordinator election (fixed vs RTT-centroid),
// outage windows, and grant leases on an asymmetric star; -fed-chaos
// sweeps election x grant-lease across -chaos-replicates seeded failure
// realizations (base seed -chaos-seed) of one chaos distribution,
// reporting mean/p95 violations and missed epochs per variant;
// -fed-hierarchy sweeps the global allocator's quota structure (flat vs
// region→metro→site borrowing vs borrowing + cross-site reclaim) on the
// starved/borrower/donor metro; -scenario
// runs a declarative scenario file (fleet + topology + workload + chaos
// + assertions; "all" runs every committed scenarios/*.yaml); -fed-bench
// runs the offload-policy and coordinator sweeps back to back — the
// source of the committed BENCH_federation.json baseline;
// -global-fairshare / -alloc-epoch / -coordinator run any sweep under the
// global allocator (fixed or centroid-elected coordinator placement);
// -admission turns on offload-aware §3.4 admission control;
// -offered-load keeps origins estimating demand from offered load under
// per-site-local allocation; -peer-select picks nearest-first or
// power-of-two-choices shedding; -cloud-max-concurrency caps concurrent
// cloud instances per function (FIFO queueing at the cap); -topology
// selects the inter-site latency model (ring|star); the -cloud-* flags
// tune the cloud's warm window and price points; -sweep-workers runs that
// many sweep cells concurrently (rows are emitted in canonical order, so
// the CSV/JSON output is byte-identical at any worker count).
//
// -scheduler picks the engine's timer-queue implementation (heap or
// calendar — results are identical, speed differs), and -cpuprofile /
// -memprofile write pprof profiles for hot-path work.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"lass/internal/azure"
	"lass/internal/cluster"
	"lass/internal/controller"
	"lass/internal/core"
	"lass/internal/experiments"
	"lass/internal/federation"
	"lass/internal/functions"
	"lass/internal/sim"
	"lass/internal/workload"
)

func main() {
	var (
		fnsFlag  = flag.String("functions", "squeezenet:40", "comma-separated name:rate pairs (req/s)")
		duration = flag.Duration("duration", 10*time.Minute, "simulated duration")
		nodes    = flag.Int("nodes", 3, "cluster nodes")
		cpu      = flag.Int64("cpu", 4000, "millicores per node")
		mem      = flag.Int64("mem", 16384, "MiB per node")
		policy   = flag.String("policy", "deflation",
			fmt.Sprintf("reclamation policy (deflation|termination); with -federation: run only the named placement policy (%s, or any placer registered via lass.RegisterPlacer)",
				strings.Join(federation.BuiltinPlacerNames, "|")))
		seed       = flag.Uint64("seed", 1, "random seed")
		trace      = flag.String("trace", "", "optional Azure-schema CSV; row i drives function i (ad-hoc mode) or site i (-fed-trace)")
		fed        = flag.Bool("federation", false, "run the edge-cloud federation offload-policy sweep")
		fedTrace   = flag.Bool("fed-trace", false, "with -federation: drive each site from its own Azure-format trace row")
		fedFair    = flag.Bool("fed-fairshare", false, "with -federation: sweep local vs global allocation on the skewed-load scenario instead")
		fedPlace   = flag.Bool("fed-placers", false, "with -federation: sweep every registered placement policy on the skewed-trace scenario (global fair share + admission + throttled cloud)")
		fedCoord   = flag.Bool("fed-coordinator", false, "with -federation: sweep coordinator election, outages, and grant leases on the asymmetric-star scenario")
		fedChaos   = flag.Bool("fed-chaos", false, "with -federation: sweep election x grant-lease across seeded chaos replicates (GE coordinator flicker + partial partition)")
		fedHier    = flag.Bool("fed-hierarchy", false, "with -federation: sweep flat vs quota-tree borrowing vs borrowing + cross-site reclaim on the starved/borrower/donor metro")
		fedBench   = flag.Bool("fed-bench", false, "with -federation: run the bench baseline (offload-policy sweep + coordinator sweep, the BENCH_federation.json source)")
		scenarioF  = flag.String("scenario", "", "with -federation: run the named declarative scenario file instead of a sweep (\"all\" = every committed scenarios/*.yaml)")
		chaosSeed  = flag.Int64("chaos-seed", 0, "with -federation -fed-chaos or -scenario: base chaos seed, replicate r draws seed+r (0 = derived/authored seed)")
		chaosReps  = flag.Int("chaos-replicates", 0, "with -federation -fed-chaos or -scenario: seeded failure replicates per variant or scenario (0 = default: 8 chaos, 1 scenario)")
		globalFS   = flag.Bool("global-fairshare", false, "with -federation: run the sweep under the federation-wide fair-share allocator")
		allocEpoch = flag.Duration("alloc-epoch", 0, "with -federation -global-fairshare: global allocation epoch (0 = default 5s)")
		coord      = flag.String("coordinator", "", "with -federation -global-fairshare: coordinator election (fixed|centroid; default fixed at site 0)")
		admission  = flag.Bool("admission", false, "with -federation: offload-aware §3.4 admission control (reject only when no site's grant has headroom)")
		offered    = flag.Bool("offered-load", false, "with -federation: estimate demand from offered load at every ingress (ControllerConfig.OfferedLoadDemand) even under per-site-local allocation")
		peerSel    = flag.String("peer-select", "nearest", "with -federation: shed-target peer selection (nearest|p2c)")
		cloudConc  = flag.Int("cloud-max-concurrency", 0, "with -federation: per-function cloud concurrency cap, FIFO queueing at the cap (0 = unbounded)")
		topology   = flag.String("topology", "ring", "with -federation: inter-site latency topology (ring|star)")
		cloudWarm  = flag.Duration("cloud-warm", 0, "with -federation: cloud warm-instance keep-alive window (0 = default 10m, negative = no keep-alive)")
		alwaysWarm = flag.Bool("cloud-always-warm", false, "with -federation: legacy idealized cloud without cold starts")
		priceInv   = flag.Float64("cloud-price-invocation", 0, "with -federation: $ per cloud invocation (0 = default $0.20/M, negative = free)")
		priceGBs   = flag.Float64("cloud-price-gbsec", 0, "with -federation: $ per GB-second of cloud execution (0 = default, negative = free)")
		out        = flag.String("out", "federation.csv", "CSV output path for -federation")
		jsonOut    = flag.String("json", "", "with -federation: also write the sweep table as JSON (e.g. BENCH_federation.json)")
		quickSweep = flag.Bool("quick", false, "shorten the -federation sweep for smoke testing")
		workers    = flag.Int("sweep-workers", 1, "with -federation: concurrent sweep cells (1 = serial; output is byte-identical at any worker count)")
		allocWork  = flag.Int("alloc-workers", 1, "with -federation -global-fairshare: worker pool for the global allocator's per-site feasibility clamps (1 = serial; grants are byte-identical at any worker count)")
		scheduler  = flag.String("scheduler", "heap", "engine timer-queue implementation (heap|calendar); identical results either way")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()

	schedKind, err := sim.ParseSchedulerKind(*scheduler)
	if err != nil {
		fail(err)
	}
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fail(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fail(err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer writeMemProfile(*memProfile)
	}

	// fedOnly lists the flags that only mean something to the federation
	// sweep; both directions of the ignored-flag warnings derive from it.
	fedOnly := map[string]bool{"fed-trace": true, "fed-fairshare": true, "fed-placers": true,
		"fed-coordinator": true, "fed-chaos": true, "fed-hierarchy": true, "fed-bench": true,
		"scenario": true, "chaos-seed": true, "chaos-replicates": true,
		"topology":   true,
		"cloud-warm": true, "cloud-always-warm": true, "cloud-price-invocation": true,
		"cloud-price-gbsec": true, "global-fairshare": true, "alloc-epoch": true,
		"coordinator": true,
		"admission":   true, "offered-load": true, "peer-select": true,
		"cloud-max-concurrency": true, "sweep-workers": true, "alloc-workers": true,
		"out": true, "json": true, "quick": true}

	if *fed {
		// The sweep's edge scenario is fixed; flags for the ad-hoc mode
		// would be silently meaningless, so call them out. -policy is
		// shared: it selects the placement policy here, the reclamation
		// policy in ad-hoc mode.
		fedFlags := map[string]bool{"federation": true, "seed": true, "policy": true,
			"scheduler": true, "cpuprofile": true, "memprofile": true}
		for name := range fedOnly {
			fedFlags[name] = true
		}
		if *fedTrace {
			fedFlags["trace"] = true
		}
		fedPolicy := ""
		flag.Visit(func(fl *flag.Flag) {
			if fl.Name == "policy" {
				fedPolicy = *policy
			}
			if !fedFlags[fl.Name] {
				fmt.Fprintf(os.Stderr, "lass-sim: -%s is ignored in -federation mode (fixed 3-site edge scenario)\n", fl.Name)
			}
		})
		if fedPolicy != "" {
			// Fail fast on typos; the experiments resolve the name again.
			if _, err := federation.ParsePlacer(fedPolicy); err != nil {
				fail(err)
			}
		}
		id := "federation"
		tracePath := ""
		scenarioPath := *scenarioF
		modes := 0
		for _, m := range []bool{*fedTrace, *fedFair, *fedPlace, *fedCoord, *fedChaos, *fedHier, *fedBench, scenarioPath != ""} {
			if m {
				modes++
			}
		}
		switch {
		case modes > 1:
			fail(fmt.Errorf("-fed-trace, -fed-fairshare, -fed-placers, -fed-coordinator, -fed-chaos, -fed-hierarchy, -fed-bench and -scenario are mutually exclusive"))
		case *fedTrace:
			id = "federation-trace"
			tracePath = *trace
		case *fedFair:
			id = "federation-fairshare"
		case *fedPlace:
			id = "federation-placers"
		case *fedCoord:
			id = "federation-coordinator"
		case *fedChaos:
			id = "federation-chaos"
		case *fedHier:
			id = "federation-hierarchy"
		case *fedBench:
			id = "federation-bench"
		case scenarioPath != "":
			id = "scenario"
			if scenarioPath == "all" {
				scenarioPath = "" // the experiment runs the committed suite
			}
		}
		runFederation(id, experiments.Options{
			Seed:         *seed,
			Quick:        *quickSweep,
			SweepWorkers: *workers,
			Scheduler:    schedKind,
			Fed: experiments.FedOptions{
				Policy:                  fedPolicy,
				Topology:                *topology,
				TracePath:               tracePath,
				CloudWarmWindow:         *cloudWarm,
				CloudAlwaysWarm:         *alwaysWarm,
				CloudPricePerInvocation: *priceInv,
				CloudPricePerGBSecond:   *priceGBs,
				GlobalFairShare:         *globalFS,
				AllocEpoch:              *allocEpoch,
				Coordinator:             *coord,
				Admission:               *admission,
				OfferedLoad:             *offered,
				PeerSelection:           *peerSel,
				CloudMaxConcurrency:     *cloudConc,
				AllocWorkers:            *allocWork,
				ScenarioPath:            scenarioPath,
				ChaosSeed:               *chaosSeed,
				ChaosReplicates:         *chaosReps,
			},
		}, *out, *jsonOut)
		return
	}
	// Symmetric warning for the other direction: the federation-only
	// flags mean nothing to an ad-hoc run.
	flag.Visit(func(fl *flag.Flag) {
		if fedOnly[fl.Name] {
			fmt.Fprintf(os.Stderr, "lass-sim: -%s only applies with -federation; ignored\n", fl.Name)
		}
	})

	pol := controller.Deflation
	switch *policy {
	case "deflation":
	case "termination":
		pol = controller.Termination
	default:
		fail(fmt.Errorf("unknown policy %q", *policy))
	}

	var traceRows []azure.Row
	if *trace != "" {
		f, err := os.Open(*trace)
		if err != nil {
			fail(err)
		}
		traceRows, err = azure.Read(f)
		f.Close()
		if err != nil {
			fail(err)
		}
	}

	var cfgs []core.FunctionConfig
	for i, pair := range strings.Split(*fnsFlag, ",") {
		parts := strings.SplitN(strings.TrimSpace(pair), ":", 2)
		spec, err := functions.ByName(parts[0])
		if err != nil {
			fail(err)
		}
		var wl *workload.Schedule
		if traceRows != nil {
			if i >= len(traceRows) {
				fail(fmt.Errorf("trace has %d rows but %d functions requested", len(traceRows), i+1))
			}
			wl, err = azure.Schedule(traceRows[i].Counts)
		} else {
			rate := 10.0
			if len(parts) == 2 {
				rate, err = strconv.ParseFloat(parts[1], 64)
				if err != nil {
					fail(fmt.Errorf("bad rate in %q: %w", pair, err))
				}
			}
			wl, err = workload.NewStatic(rate)
		}
		if err != nil {
			fail(err)
		}
		cfgs = append(cfgs, core.FunctionConfig{Spec: spec, Workload: wl, Prewarm: 1})
	}

	p, err := core.New(core.Config{
		Cluster:    cluster.Config{Nodes: *nodes, CPUPerNode: *cpu, MemPerNode: *mem, Policy: cluster.WorstFit},
		Controller: controller.Config{Policy: pol, MinContainers: 1},
		Seed:       *seed,
		Functions:  cfgs,
		Scheduler:  schedKind,
	})
	if err != nil {
		fail(err)
	}
	res, err := p.Run(*duration)
	if err != nil {
		fail(err)
	}

	fmt.Printf("simulated %v on %d nodes (%d mC each), policy=%s, seed=%d\n\n",
		*duration, *nodes, *cpu, pol, *seed)
	fmt.Printf("%-16s %10s %10s %12s %12s %10s %9s\n",
		"function", "arrivals", "completed", "P95 wait", "P99 resp", "SLO att", "requeued")
	for _, fc := range cfgs {
		fr := res.Functions[fc.Spec.Name]
		fmt.Printf("%-16s %10d %10d %11.1fms %11.1fms %9.3f %9d\n",
			fc.Spec.Name, fr.Arrivals, fr.Completed,
			fr.Waits.Quantile(0.95)*1000,
			fr.Responses.Quantile(0.99)*1000,
			fr.SLO.Attainment(), fr.Requeued)
	}
	fmt.Printf("\ncluster utilization (time-weighted mean): %.1f%%\n", res.Utilization*100)
	ops := res.ControllerOps
	fmt.Printf("controller: %d creations, %d terminations, %d deflations, %d inflations, %d overload epochs\n",
		ops.Creations, ops.Terminations, ops.Deflations, ops.Inflations, ops.Overloads)
}

// runFederation executes the offload-policy sweep (synthetic or
// trace-driven), prints the table, and writes it as CSV — and, when
// requested, as JSON (the format of the committed BENCH_federation.json
// baseline).
func runFederation(id string, opt experiments.Options, out, jsonOut string) {
	tab, err := experiments.Run(id, opt)
	if err != nil {
		fail(err)
	}
	tab.Fprint(os.Stdout)
	f, err := os.Create(out)
	if err != nil {
		fail(err)
	}
	if err := tab.WriteCSV(f); err != nil {
		f.Close()
		fail(err)
	}
	if err := f.Close(); err != nil {
		fail(err)
	}
	fmt.Printf("wrote %s\n", out)
	if jsonOut != "" {
		j, err := os.Create(jsonOut)
		if err != nil {
			fail(err)
		}
		if err := tab.WriteJSON(j); err != nil {
			j.Close()
			fail(err)
		}
		if err := j.Close(); err != nil {
			fail(err)
		}
		fmt.Printf("wrote %s\n", jsonOut)
	}
}

// writeMemProfile snapshots the heap (after a final GC, so live objects —
// not garbage — dominate the profile) into the given file.
func writeMemProfile(path string) {
	f, err := os.Create(path)
	if err != nil {
		fail(err)
	}
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		f.Close()
		fail(err)
	}
	if err := f.Close(); err != nil {
		fail(err)
	}
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "lass-sim: %v\n", err)
	os.Exit(1)
}
