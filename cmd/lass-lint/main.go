// Command lass-lint runs the determinism and hot-path analyzer suite over
// the module (see internal/analysis). It exits non-zero when any analyzer
// reports a finding, so CI can gate merges on it exactly like gofmt and
// go vet:
//
//	go run ./cmd/lass-lint ./...
//
// Flags:
//
//	-tests=false   skip _test.go files and external test packages
//	-only a,b      run only the named analyzers
//	-list          print the suite's analyzers and exit
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"lass/internal/analysis"
)

func main() {
	tests := flag.Bool("tests", true, "analyze _test.go files and external test packages too")
	only := flag.String("only", "", "comma-separated analyzer names to run (default: all)")
	list := flag.Bool("list", false, "list analyzers and exit")
	flag.Parse()

	analyzers := analysis.DefaultAnalyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-12s %s\n", a.Name(), a.Doc())
		}
		return
	}
	if *only != "" {
		keep := map[string]bool{}
		for _, name := range strings.Split(*only, ",") {
			keep[strings.TrimSpace(name)] = true
		}
		var sel []analysis.Analyzer
		for _, a := range analyzers {
			if keep[a.Name()] {
				sel = append(sel, a)
				delete(keep, a.Name())
			}
		}
		if len(keep) > 0 {
			unknown := make([]string, 0, len(keep))
			for name := range keep {
				unknown = append(unknown, name)
			}
			sort.Strings(unknown)
			fmt.Fprintf(os.Stderr, "lass-lint: unknown analyzer(s) %s (use -list)\n", strings.Join(unknown, ", "))
			os.Exit(2)
		}
		analyzers = sel
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "lass-lint:", err)
		os.Exit(2)
	}
	ds, err := analysis.Run(wd, patterns, *tests, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lass-lint:", err)
		os.Exit(2)
	}
	for _, d := range ds {
		fmt.Println(d.String())
	}
	if len(ds) > 0 {
		fmt.Fprintf(os.Stderr, "lass-lint: %d finding(s)\n", len(ds))
		os.Exit(1)
	}
}
