// Command lass-server runs the wall-clock LaSS runtime behind an HTTP
// front end: a miniature latency-aware FaaS platform. Functions from the
// paper's catalog are registered with CPU-emulating handlers; the LaSS
// controller autoscales their worker pools as traffic arrives.
//
// Endpoints:
//
//	POST /invoke/{function}   — run one invocation (body = payload)
//	GET  /stats/{function}    — controller estimate, pool size, P95 wait
//	GET  /stats               — all functions + cluster utilization
//
// Example:
//
//	lass-server -listen :8080 &
//	hey -z 30s http://localhost:8080/invoke/geofence
//	curl http://localhost:8080/stats/geofence
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"strings"
	"time"

	"lass/internal/cluster"
	"lass/internal/controller"
	"lass/internal/functions"
	"lass/internal/queuing"
	"lass/internal/realtime"
)

func main() {
	var (
		listen = flag.String("listen", ":8080", "HTTP listen address")
		nodes  = flag.Int("nodes", 3, "emulated cluster nodes")
		cpu    = flag.Int64("cpu", 4000, "millicores per node")
		epoch  = flag.Duration("epoch", 2*time.Second, "controller evaluation interval")
	)
	flag.Parse()

	p, err := realtime.New(realtime.Config{
		Cluster: cluster.Config{Nodes: *nodes, CPUPerNode: *cpu, MemPerNode: 16384, Policy: cluster.WorstFit},
		Controller: controller.Config{
			EvalInterval:  *epoch,
			MinContainers: 1,
			Windows: controller.DualWindowConfig{
				Short: 5 * time.Second, Long: 60 * time.Second, BurstFactor: 2,
			},
		},
	})
	if err != nil {
		log.Fatalf("lass-server: %v", err)
	}
	defer p.Stop()

	// Register every catalog function with a handler that emulates its
	// service time, scaled by the container's (possibly deflated) CPU.
	var names []string
	for _, spec := range functions.Catalog() {
		spec := spec
		handler := func(ctx context.Context, payload []byte) ([]byte, error) {
			frac := realtime.CPUFraction(ctx)
			d := time.Duration(float64(spec.MeanServiceTime) * spec.ServiceTimeMultiplier(frac))
			select {
			case <-time.After(d): //lass:wallclock emulated live service time
			case <-ctx.Done():
				return nil, ctx.Err()
			}
			return []byte(fmt.Sprintf("%s done in %v (cpu %.0f%%)\n", spec.Name, d, frac*100)), nil
		}
		slo := queuing.SLO{Deadline: 250 * time.Millisecond, Percentile: 0.95, WaitingOnly: true}
		if err := p.Register(spec, handler, slo); err != nil {
			log.Fatalf("lass-server: register %s: %v", spec.Name, err)
		}
		if err := p.Provision(spec.Name, 1); err != nil {
			log.Printf("lass-server: prewarm %s: %v", spec.Name, err)
		}
		names = append(names, spec.Name)
	}

	mux := http.NewServeMux()
	mux.HandleFunc("POST /invoke/", func(w http.ResponseWriter, r *http.Request) {
		fn := strings.TrimPrefix(r.URL.Path, "/invoke/")
		buf := make([]byte, 0)
		out, err := p.Invoke(r.Context(), fn, buf)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadGateway)
			return
		}
		w.Write(out)
	})
	mux.HandleFunc("GET /stats/", func(w http.ResponseWriter, r *http.Request) {
		fn := strings.TrimPrefix(r.URL.Path, "/stats/")
		st, err := p.Stats(fn)
		if err != nil {
			http.Error(w, err.Error(), http.StatusNotFound)
			return
		}
		json.NewEncoder(w).Encode(st)
	})
	mux.HandleFunc("GET /stats", func(w http.ResponseWriter, r *http.Request) {
		out := map[string]any{"utilization": p.Utilization()}
		for _, fn := range names {
			if st, err := p.Stats(fn); err == nil {
				out[fn] = st
			}
		}
		json.NewEncoder(w).Encode(out)
	})

	log.Printf("lass-server: %d functions on %s (cluster: %d nodes x %d mC)", len(names), *listen, *nodes, *cpu)
	log.Fatal(http.ListenAndServe(*listen, mux))
}
