// Command lass-bench regenerates the tables and figures of the paper's
// evaluation (§6) on the simulated substrate.
//
// Usage:
//
//	lass-bench -experiment fig3            # one experiment, full durations
//	lass-bench -experiment all -quick      # everything, shortened durations
//	lass-bench -list                       # show available experiment IDs
//
// Experiment IDs follow DESIGN.md §3: table1, fig3..fig9, openwhisk, and
// the ablation-* design-choice studies.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"lass/internal/experiments"
)

func main() {
	var (
		experiment = flag.String("experiment", "all", "experiment ID to run, or 'all'")
		quick      = flag.Bool("quick", false, "shorten simulated durations (CI-friendly)")
		seed       = flag.Uint64("seed", 42, "random seed (results are deterministic per seed)")
		list       = flag.Bool("list", false, "list experiment IDs and exit")
		format     = flag.String("format", "text", "output format: text|csv")
	)
	flag.Parse()

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return
	}

	opt := experiments.Options{Seed: *seed, Quick: *quick}
	ids := []string{*experiment}
	if *experiment == "all" {
		ids = experiments.IDs()
	}
	for _, id := range ids {
		start := time.Now() //lass:wallclock bench wall timing
		tab, err := experiments.Run(id, opt)
		if err != nil {
			fmt.Fprintf(os.Stderr, "lass-bench: %s: %v\n", id, err)
			os.Exit(1)
		}
		switch *format {
		case "csv":
			if err := tab.WriteCSV(os.Stdout); err != nil {
				fmt.Fprintf(os.Stderr, "lass-bench: %v\n", err)
				os.Exit(1)
			}
		case "text":
			tab.Fprint(os.Stdout)
			fmt.Printf("  (%s generated in %.1fs)\n\n", id, time.Since(start).Seconds()) //lass:wallclock
		default:
			fmt.Fprintf(os.Stderr, "lass-bench: unknown format %q\n", *format)
			os.Exit(1)
		}
	}
}
