// Package dispatch implements LaSS's data path (paper §5, Fig 2b): each
// function has a FCFS request queue, and a weighted-round-robin load
// balancer assigns queued requests to idle containers, weighting each
// container by its current CPU allocation so deflated containers receive
// proportionally less work ("Knowing all the containers and their size
// information, the load balancer uses the weighted round robin (WRR)
// algorithm to directly schedule function invocation requests to each
// individual container").
//
// The package runs inside the discrete-event simulation: service
// completions are events on the engine. Waiting time (arrival → dispatch)
// and response time (arrival → completion) are recorded per request, which
// is exactly the P95-waiting-time metric of Figs 3 and 4.
package dispatch

import (
	"fmt"
	"sort"
	"time"

	"lass/internal/cluster"
	"lass/internal/functions"
	"lass/internal/metrics"
	"lass/internal/sim"
	"lass/internal/xrand"
)

// Request is one function invocation traveling through the data path.
//
// Requests are pooled: the queue that created a request recycles it as soon
// as its lifecycle ends — after the Done callback returns, after a timeout,
// or after an Offload hook claims (and synchronously disposes of) it. Code
// observing a request, including Done callbacks and Offload hooks, must not
// retain the pointer past its own return; copy out any fields needed later.
type Request struct {
	ID       uint64
	Function string
	Arrival  time.Duration
	Start    time.Duration // when service began (valid once started)
	Finish   time.Duration // when service completed (valid once done)
	Requeues int           // times the request was bounced by a container termination

	// Done, when set, is invoked once the request completes service
	// (after Finish is recorded). Requests killed by the hard execution
	// limit never complete, so Done does not fire for them. The
	// federation layer uses this to account end-to-end latency for
	// requests it placed.
	Done func(*Request)

	pooled bool // guards against use of a recycled request
}

// Wait returns the queueing delay.
func (r *Request) Wait() time.Duration { return r.Start - r.Arrival }

// Response returns the end-to-end latency.
func (r *Request) Response() time.Duration { return r.Finish - r.Arrival }

// wrrEntry is the smooth-WRR bookkeeping for one container. Completion and
// timeout callbacks are bound once at attach time and the per-service state
// (CPU fraction, sampled service time) is stashed in the entry, so starting
// a request allocates nothing.
type wrrEntry struct {
	q        *Queue
	c        *cluster.Container
	current  float64
	busy     bool
	inflight *Request
	done     sim.Event

	frac       float64
	service    time.Duration
	completeFn func()
	timeoutFn  func()
}

func (e *wrrEntry) complete() {
	q := e.q
	r := e.inflight
	e.busy = false
	e.inflight = nil
	r.Finish = q.engine.Now()
	q.Responses.AddDuration(r.Response())
	q.completed++
	if q.OnComplete != nil {
		q.OnComplete(e.frac, e.service)
	}
	if r.Done != nil {
		r.Done(r)
	}
	q.release(r)
	q.pump()
}

func (e *wrrEntry) timeout() {
	q := e.q
	r := e.inflight
	e.busy = false
	e.inflight = nil
	q.timedOut++
	q.release(r)
	q.pump()
}

// Queue is the per-function dispatcher.
type Queue struct {
	engine *sim.Engine
	spec   functions.Spec
	rng    *xrand.Rand

	fifo    []*Request // waiting requests live in fifo[head:]
	head    int
	pool    []*Request // recycled Request objects
	entries map[cluster.ContainerID]*wrrEntry
	// order holds the attached entries sorted by container ID. Every
	// per-request walk (WRR selection, capacity sums) iterates it instead
	// of the entries map: the float accumulations below must not follow
	// the map's randomized iteration order, or replayed runs stop being
	// bit-identical.
	order  []*wrrEntry
	nextID uint64

	// Waits and Responses collect per-request timing; SLO tracks the
	// waiting-time deadline the evaluation provisions against.
	Waits     *metrics.Reservoir
	Responses *metrics.Reservoir
	SLO       *metrics.SLOTracker

	// OnComplete, when set, observes every completion (container CPU
	// fraction, sampled service time): the hook the online service-time
	// learner attaches to.
	OnComplete func(cpuFraction float64, service time.Duration)

	// TimeLimit is the FaaS hard execution limit (§2.1: "the computation
	// is terminated if it does not complete execution within this
	// limit"). Zero disables. A timed-out request frees its container
	// and counts in TimedOut instead of Completed.
	TimeLimit time.Duration

	// Offload, when set, is consulted on the enqueue path: Arrive builds
	// the request, offers it to the hook, and only enqueues it locally if
	// the hook declines (returns false). A hook that returns true takes
	// ownership of the request — the federation placement layer serves it
	// at a peer site or the cloud — and the local queue records nothing
	// about it beyond the Offloaded counter.
	Offload func(*Request) bool

	completed uint64
	requeued  uint64
	timedOut  uint64
	offloaded uint64
	rejected  uint64
}

// NewQueue builds a dispatcher for one function. sloDeadline bounds the
// waiting time (§6.1's default: P95 wait ≤ 100 ms).
func NewQueue(engine *sim.Engine, spec functions.Spec, sloDeadline time.Duration, rng *xrand.Rand) (*Queue, error) {
	if engine == nil || rng == nil {
		return nil, fmt.Errorf("dispatch: nil engine or rng")
	}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	return &Queue{
		engine:    engine,
		spec:      spec,
		rng:       rng,
		entries:   make(map[cluster.ContainerID]*wrrEntry),
		Waits:     metrics.NewReservoir(),
		Responses: metrics.NewReservoir(),
		SLO:       metrics.NewSLOTracker(sloDeadline),
	}, nil
}

// Spec returns the function spec this queue serves.
func (q *Queue) Spec() functions.Spec { return q.spec }

// QueueLength returns the number of requests waiting (not in service).
func (q *Queue) QueueLength() int { return len(q.fifo) - q.head }

// alloc takes a request from the pool (or allocates one) and initializes it
// as a fresh arrival.
//
// transfer it on every path (checked by the donerelease analyzer).
//
//lass:acquires the caller owns the returned request and must release or
func (q *Queue) alloc() *Request {
	var r *Request
	if n := len(q.pool); n > 0 {
		r = q.pool[n-1]
		q.pool[n-1] = nil
		q.pool = q.pool[:n-1]
		*r = Request{}
	} else {
		r = &Request{}
	}
	q.nextID++
	r.ID = q.nextID
	r.Function = q.spec.Name
	r.Arrival = q.engine.Now()
	return r
}

// release returns a finished request to the pool. Releasing the same
// request twice would alias two in-flight invocations, so it panics.
//
//lass:releases the request is recycled; no use may follow.
func (q *Queue) release(r *Request) {
	if r.pooled {
		panic("dispatch: request released twice")
	}
	r.pooled = true
	r.Done = nil
	q.pool = append(q.pool, r)
}

// InFlight returns the number of requests currently in service.
func (q *Queue) InFlight() int {
	n := 0
	for _, e := range q.order {
		if e.busy {
			n++
		}
	}
	return n
}

// Completed returns the number of requests finished.
func (q *Queue) Completed() uint64 { return q.completed }

// TimedOut returns the number of requests killed by the hard execution
// time limit.
func (q *Queue) TimedOut() uint64 { return q.timedOut }

// Requeued returns the number of requeue events caused by container
// terminations (the paper counts these as a cost of the termination
// policy, §6.7: "fewer requests that need to be rerun").
func (q *Queue) Requeued() uint64 { return q.requeued }

// Offloaded returns the number of arrivals claimed by the Offload hook.
func (q *Queue) Offloaded() uint64 { return q.offloaded }

// Rejected returns the number of arrivals refused by admission control.
func (q *Queue) Rejected() uint64 { return q.rejected }

// Reject records one arrival refused by admission control (§3.4): the
// request is dropped without being enqueued or served anywhere. The
// federation's offload-aware admission calls this only after every peer
// and the cloud declined — a rejected request therefore stays an SLO
// violation at its origin (via the unresolved accounting).
func (q *Queue) Reject(r *Request) { q.rejected++ }

// Containers returns the number of containers attached to the queue.
func (q *Queue) Containers() int { return len(q.entries) }

// ServiceCapacity returns the aggregate service rate (req/s) of the
// attached containers at their current (possibly deflated) CPU
// allocations. The federation placement policy uses it to predict how
// fast a site can drain its backlog.
//
// it always accumulates in container-ID order.
//
//lass:bitexact the sum feeds placement predictions compared across sites;
func (q *Queue) ServiceCapacity() float64 {
	var total float64
	for _, e := range q.order {
		total += q.spec.RateAt(e.c.CPUFraction())
	}
	return total
}

// IdleContainers returns the number of attached, non-busy containers.
func (q *Queue) IdleContainers() int {
	n := 0
	for _, e := range q.order {
		if !e.busy {
			n++
		}
	}
	return n
}

// AddContainer attaches a servable container to the load balancer.
func (q *Queue) AddContainer(c *cluster.Container) error {
	if c.Function != q.spec.Name {
		return fmt.Errorf("dispatch: container %d belongs to %s, not %s", c.ID, c.Function, q.spec.Name)
	}
	if !c.Servable() {
		return fmt.Errorf("dispatch: container %d is %v, not servable", c.ID, c.State())
	}
	if _, dup := q.entries[c.ID]; dup {
		return fmt.Errorf("dispatch: container %d already attached", c.ID)
	}
	e := &wrrEntry{q: q, c: c}
	e.completeFn = e.complete
	e.timeoutFn = e.timeout
	q.entries[c.ID] = e
	// Keep order sorted by container ID. IDs are issued monotonically, so
	// the common case appends; reattachment after churn inserts.
	at := sort.Search(len(q.order), func(i int) bool { return q.order[i].c.ID >= c.ID })
	q.order = append(q.order, nil)
	copy(q.order[at+1:], q.order[at:])
	q.order[at] = e
	q.pump()
	return nil
}

// RemoveContainer detaches a container. If a request is in flight on it,
// the request is aborted and requeued at the head of the FIFO (it keeps its
// original arrival time, so its eventual waiting time reflects the rerun
// cost the paper attributes to termination).
func (q *Queue) RemoveContainer(c *cluster.Container) error {
	e, ok := q.entries[c.ID]
	if !ok {
		return fmt.Errorf("dispatch: container %d not attached", c.ID)
	}
	delete(q.entries, c.ID)
	at := sort.Search(len(q.order), func(i int) bool { return q.order[i].c.ID >= c.ID })
	q.order = append(q.order[:at], q.order[at+1:]...)
	if e.busy && e.inflight != nil {
		e.done.Cancel()
		r := e.inflight
		r.Requeues++
		q.requeued++
		q.requeueFront(r)
	}
	q.pump()
	return nil
}

// requeueFront puts an aborted in-flight request back at the head of the
// FIFO, reusing the slack before head when the deque has one.
//
//lass:transfers the FIFO re-owns the aborted request.
func (q *Queue) requeueFront(r *Request) {
	if q.head > 0 {
		q.head--
		q.fifo[q.head] = r
		return
	}
	q.fifo = append(q.fifo, nil)
	copy(q.fifo[1:], q.fifo)
	q.fifo[0] = r
}

// Has reports whether the container is attached.
func (q *Queue) Has(c *cluster.Container) bool {
	_, ok := q.entries[c.ID]
	return ok
}

// Arrive enqueues a new invocation at the current simulation time and
// dispatches immediately if a container is idle. When an Offload hook is
// set and claims the request, nothing is enqueued, the request is recycled
// the moment the hook returns, and Arrive returns nil. The returned pointer
// is only valid until the request's lifecycle ends (see Request).
func (q *Queue) Arrive() *Request {
	r := q.alloc()
	if q.Offload != nil && q.Offload(r) {
		q.offloaded++
		q.release(r)
		return nil
	}
	q.enqueue(r)
	return r
}

// ArriveOffloaded enqueues an invocation that a peer site's placement
// layer offloaded here. The Offload hook is deliberately not consulted, so
// offloaded work cannot bounce between sites.
func (q *Queue) ArriveOffloaded() *Request {
	r := q.alloc()
	q.enqueue(r)
	return r
}

// path releases it.
//
//lass:transfers the FIFO owns the request from here; the dispatch/complete
func (q *Queue) enqueue(r *Request) {
	q.fifo = append(q.fifo, r)
	q.pump()
}

// selectIdle picks the idle container by smooth weighted round-robin with
// weights equal to current CPU allocation. Returns nil when all busy.
//
// q.order pins the accumulation to container-ID order so selection is a
// pure function of the queue state.
//
//lass:bitexact the running weights and their total are floats; walking
func (q *Queue) selectIdle() *wrrEntry {
	var total float64
	var best *wrrEntry
	for _, e := range q.order {
		if e.busy {
			continue
		}
		w := float64(e.c.CPUCurrent)
		e.current += w
		total += w
		if best == nil || e.current > best.current ||
			// Deterministic tie-break on container ID.
			(e.current == best.current && e.c.ID < best.c.ID) {
			best = e
		}
	}
	if best != nil {
		best.current -= total
	}
	return best
}

// pump dispatches queued requests onto idle containers until one side runs
// out.
func (q *Queue) pump() {
	for q.head < len(q.fifo) {
		e := q.selectIdle()
		if e == nil {
			return
		}
		r := q.fifo[q.head]
		q.fifo[q.head] = nil
		q.head++
		if q.head == len(q.fifo) {
			q.fifo = q.fifo[:0]
			q.head = 0
		}
		q.start(e, r)
	}
}

// start begins service for r on e's container.
func (q *Queue) start(e *wrrEntry, r *Request) {
	r.Start = q.engine.Now()
	q.Waits.AddDuration(r.Wait())
	q.SLO.Observe(r.Wait())
	e.frac = e.c.CPUFraction()
	e.service = q.spec.SampleServiceTime(q.rng, e.frac)
	e.busy = true
	e.inflight = r
	if q.TimeLimit > 0 && e.service > q.TimeLimit {
		// The platform kills the execution at the hard limit (§2.1); the
		// container is occupied for the full limit, then freed.
		e.done = q.engine.After(q.TimeLimit, e.timeoutFn)
		return
	}
	e.done = q.engine.After(e.service, e.completeFn)
}
