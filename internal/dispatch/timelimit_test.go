package dispatch

import (
	"testing"
	"time"

	"lass/internal/cluster"
	"lass/internal/functions"
	"lass/internal/sim"
	"lass/internal/xrand"
)

func TestTimeLimitKillsLongExecutions(t *testing.T) {
	engine := sim.NewEngine()
	cl, err := cluster.New(cluster.PaperCluster())
	if err != nil {
		t.Fatal(err)
	}
	spec := functions.MicroBenchmark(100 * time.Millisecond) // exponential service
	q, err := NewQueue(engine, spec, 100*time.Millisecond, xrand.New(3))
	if err != nil {
		t.Fatal(err)
	}
	q.TimeLimit = 100 * time.Millisecond // exp(mean 100ms): ~37% exceed
	c, err := cl.Place(spec.Name, spec.CPUMillis, spec.MemoryMiB)
	if err != nil {
		t.Fatal(err)
	}
	cl.MarkRunning(c)
	q.AddContainer(c)

	n := 5000
	for i := 0; i < n; i++ {
		engine.Schedule(time.Duration(i)*time.Second, func() { q.Arrive() })
	}
	engine.Run()
	total := q.Completed() + q.TimedOut()
	if total != uint64(n) {
		t.Fatalf("accounted %d of %d requests", total, n)
	}
	frac := float64(q.TimedOut()) / float64(n)
	// P(exp(0.1) > 0.1) = e^-1 ≈ 0.368.
	if frac < 0.33 || frac < 0.30 || frac > 0.42 {
		t.Errorf("timeout fraction %.3f want ~0.368", frac)
	}
	// Completed requests' responses never exceed wait+limit; with zero
	// wait here, response <= limit.
	if max := q.Responses.Max(); max > 0.1 {
		t.Errorf("a completed request took %.3fs > limit", max)
	}
}

func TestTimeLimitZeroDisables(t *testing.T) {
	engine := sim.NewEngine()
	cl, _ := cluster.New(cluster.PaperCluster())
	spec := functions.MicroBenchmark(100 * time.Millisecond)
	q, err := NewQueue(engine, spec, 100*time.Millisecond, xrand.New(4))
	if err != nil {
		t.Fatal(err)
	}
	c, _ := cl.Place(spec.Name, spec.CPUMillis, spec.MemoryMiB)
	cl.MarkRunning(c)
	q.AddContainer(c)
	for i := 0; i < 500; i++ {
		engine.Schedule(time.Duration(i)*time.Second, func() { q.Arrive() })
	}
	engine.Run()
	if q.TimedOut() != 0 {
		t.Errorf("timeouts with no limit: %d", q.TimedOut())
	}
	if q.Completed() != 500 {
		t.Errorf("completed=%d", q.Completed())
	}
}

func TestTimeLimitFreesContainerAtLimit(t *testing.T) {
	// A request that would run 10s under a 50ms limit must release its
	// container at 50ms, not at 10s.
	engine := sim.NewEngine()
	cl, _ := cluster.New(cluster.PaperCluster())
	spec := functions.MicroBenchmark(10 * time.Second)
	spec.SCV = 0 // deterministic 10s service
	q, err := NewQueue(engine, spec, time.Second, xrand.New(5))
	if err != nil {
		t.Fatal(err)
	}
	q.TimeLimit = 50 * time.Millisecond
	c, _ := cl.Place(spec.Name, spec.CPUMillis, spec.MemoryMiB)
	cl.MarkRunning(c)
	q.AddContainer(c)
	q.Arrive()
	engine.RunUntil(60 * time.Millisecond)
	if q.TimedOut() != 1 {
		t.Fatalf("timedOut=%d", q.TimedOut())
	}
	if q.IdleContainers() != 1 {
		t.Error("container not freed at the limit")
	}
}
