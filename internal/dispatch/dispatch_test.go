package dispatch

import (
	"math"
	"testing"
	"time"

	"lass/internal/cluster"
	"lass/internal/functions"
	"lass/internal/sim"
	"lass/internal/xrand"
)

func testSetup(t *testing.T) (*sim.Engine, *cluster.Cluster, *Queue) {
	t.Helper()
	engine := sim.NewEngine()
	cl, err := cluster.New(cluster.PaperCluster())
	if err != nil {
		t.Fatal(err)
	}
	spec := functions.MicroBenchmark(100 * time.Millisecond)
	q, err := NewQueue(engine, spec, 100*time.Millisecond, xrand.New(1))
	if err != nil {
		t.Fatal(err)
	}
	return engine, cl, q
}

func addRunning(t *testing.T, cl *cluster.Cluster, q *Queue, cpu int64) *cluster.Container {
	t.Helper()
	c, err := cl.Place(q.Spec().Name, cpu, 256)
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.MarkRunning(c); err != nil {
		t.Fatal(err)
	}
	if err := q.AddContainer(c); err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewQueueValidation(t *testing.T) {
	engine := sim.NewEngine()
	spec := functions.MicroBenchmark(100 * time.Millisecond)
	if _, err := NewQueue(nil, spec, time.Second, xrand.New(1)); err == nil {
		t.Error("want error for nil engine")
	}
	if _, err := NewQueue(engine, spec, time.Second, nil); err == nil {
		t.Error("want error for nil rng")
	}
	bad := spec
	bad.CPUMillis = 0
	if _, err := NewQueue(engine, bad, time.Second, xrand.New(1)); err == nil {
		t.Error("want error for invalid spec")
	}
}

func TestSingleRequestLifecycle(t *testing.T) {
	engine, cl, q := testSetup(t)
	addRunning(t, cl, q, 400)
	r := q.Arrive()
	if q.InFlight() != 1 || q.QueueLength() != 0 {
		t.Errorf("inflight=%d queue=%d", q.InFlight(), q.QueueLength())
	}
	engine.Run()
	if q.Completed() != 1 {
		t.Errorf("completed=%d", q.Completed())
	}
	if r.Wait() != 0 {
		t.Errorf("wait=%v want 0 (idle container available)", r.Wait())
	}
	if r.Finish <= r.Start {
		t.Error("finish not after start")
	}
}

func TestRequestsQueueWhenAllBusy(t *testing.T) {
	engine, cl, q := testSetup(t)
	addRunning(t, cl, q, 400)
	q.Arrive()
	r2 := q.Arrive()
	if q.QueueLength() != 1 {
		t.Errorf("queue=%d want 1", q.QueueLength())
	}
	engine.Run()
	if q.Completed() != 2 {
		t.Errorf("completed=%d", q.Completed())
	}
	if r2.Wait() <= 0 {
		t.Errorf("queued request wait=%v want >0", r2.Wait())
	}
}

func TestAddContainerRequiresServable(t *testing.T) {
	_, cl, q := testSetup(t)
	c, _ := cl.Place(q.Spec().Name, 400, 256)
	if err := q.AddContainer(c); err == nil {
		t.Error("starting container must be rejected")
	}
	cl.MarkRunning(c)
	if err := q.AddContainer(c); err != nil {
		t.Fatal(err)
	}
	if err := q.AddContainer(c); err == nil {
		t.Error("duplicate attach must be rejected")
	}
	other, _ := cl.Place("other", 400, 256)
	cl.MarkRunning(other)
	if err := q.AddContainer(other); err == nil {
		t.Error("wrong-function container must be rejected")
	}
}

func TestRemoveContainerRequeuesInflight(t *testing.T) {
	engine, cl, q := testSetup(t)
	c := addRunning(t, cl, q, 400)
	r := q.Arrive()
	if q.InFlight() != 1 {
		t.Fatal("not in flight")
	}
	if err := q.RemoveContainer(c); err != nil {
		t.Fatal(err)
	}
	if q.Requeued() != 1 || r.Requeues != 1 {
		t.Errorf("requeued=%d r.Requeues=%d", q.Requeued(), r.Requeues)
	}
	if q.QueueLength() != 1 {
		t.Errorf("queue=%d want 1", q.QueueLength())
	}
	// New container picks the request back up and completes it.
	addRunning(t, cl, q, 400)
	engine.Run()
	if q.Completed() != 1 {
		t.Errorf("completed=%d", q.Completed())
	}
	if err := q.RemoveContainer(c); err == nil {
		t.Error("double remove must error")
	}
}

func TestRequeuedRequestKeepsArrivalTime(t *testing.T) {
	engine, cl, q := testSetup(t)
	c := addRunning(t, cl, q, 400)
	r := q.Arrive()
	engine.RunUntil(20 * time.Millisecond) // mid-service
	q.RemoveContainer(c)
	engine.RunUntil(50 * time.Millisecond)
	addRunning(t, cl, q, 400)
	engine.Run()
	if r.Wait() < 50*time.Millisecond {
		t.Errorf("rerun wait=%v should include the bounce delay", r.Wait())
	}
}

func TestWRRProportionalToCPU(t *testing.T) {
	// A 1000mC container should receive ~2x the requests of a 500mC one
	// when both are idle at selection time.
	engine, cl, q := testSetup(t)
	big := addRunning(t, cl, q, 400)
	small, err := cl.PlaceDeflated(q.Spec().Name, 400, 200, 256)
	if err != nil {
		t.Fatal(err)
	}
	cl.MarkRunning(small)
	if err := q.AddContainer(small); err != nil {
		t.Fatal(err)
	}
	counts := map[cluster.ContainerID]int{}
	q.OnComplete = func(frac float64, _ time.Duration) {
		if frac == 1.0 {
			counts[big.ID]++
		} else {
			counts[small.ID]++
		}
	}
	// Arrivals spaced far apart so both containers are idle each time.
	for i := 0; i < 3000; i++ {
		engine.Schedule(time.Duration(i)*time.Second, func() { q.Arrive() })
	}
	engine.Run()
	ratio := float64(counts[big.ID]) / float64(counts[small.ID])
	if math.Abs(ratio-2) > 0.1 {
		t.Errorf("big/small dispatch ratio %v want ~2 (counts %v)", ratio, counts)
	}
}

func TestDeflatedContainerServesSlower(t *testing.T) {
	engine, cl, q := testSetup(t)
	// One container deflated to 40% (below micro-benchmark slack 0.35 →
	// starved region).
	c := addRunning(t, cl, q, 400)
	cl.Resize(c, 160)
	var serviceSum time.Duration
	var n int
	q.OnComplete = func(_ float64, s time.Duration) { serviceSum += s; n++ }
	for i := 0; i < 2000; i++ {
		engine.Schedule(time.Duration(i)*time.Second, func() { q.Arrive() })
	}
	engine.Run()
	mean := (serviceSum / time.Duration(n)).Seconds()
	want := q.Spec().MeanServiceTimeAt(0.4).Seconds()
	if math.Abs(mean-want)/want > 0.1 {
		t.Errorf("deflated mean service %vs want ~%vs", mean, want)
	}
}

func TestWaitingTimeMatchesMMCTheory(t *testing.T) {
	// End-to-end statistical validation of the data path: drive an
	// M/M/c system at known λ, μ, c and compare the measured P(wait=0)
	// against Erlang-C. This is the simulation-side half of Fig 3.
	engine := sim.NewEngine()
	cl, _ := cluster.New(cluster.Config{Nodes: 10, CPUPerNode: 4000, MemPerNode: 16384})
	spec := functions.MicroBenchmark(100 * time.Millisecond) // mu=10
	q, err := NewQueue(engine, spec, 100*time.Millisecond, xrand.New(42))
	if err != nil {
		t.Fatal(err)
	}
	c := 6
	lambda := 40.0
	for i := 0; i < c; i++ {
		cc, err := cl.Place(spec.Name, spec.CPUMillis, spec.MemoryMiB)
		if err != nil {
			t.Fatal(err)
		}
		cl.MarkRunning(cc)
		q.AddContainer(cc)
	}
	// Poisson arrivals for 600 simulated seconds.
	rng := xrand.New(7)
	tt := time.Duration(0)
	for {
		tt += time.Duration(rng.Exp(lambda) * float64(time.Second))
		if tt > 600*time.Second {
			break
		}
		engine.Schedule(tt, func() { q.Arrive() })
	}
	engine.Run()
	// Theory: P(wait>0) = ErlangC(c=6, r=4) ≈ 0.2849? Compute directly.
	measured := 1 - q.Waits.FractionBelow(1e-9)
	// Erlang-C for lambda=40, mu=10, c=6:
	want := 0.285 // verified against the queuing package in its own tests
	if math.Abs(measured-want) > 0.03 {
		t.Errorf("P(wait>0)=%v want ~%v", measured, want)
	}
	// Mean wait should track Wq = C/(cμ-λ) = 0.285/20 ≈ 14ms.
	if m := q.Waits.Mean(); math.Abs(m-0.01425) > 0.004 {
		t.Errorf("mean wait %vs want ~0.014s", m)
	}
}

func TestSLOTrackerCountsWaits(t *testing.T) {
	engine, cl, q := testSetup(t)
	addRunning(t, cl, q, 400)
	for i := 0; i < 10; i++ {
		q.Arrive() // 9 of these will queue behind service times ~100ms
	}
	engine.Run()
	if q.SLO.Total() != 10 {
		t.Errorf("SLO observed %d", q.SLO.Total())
	}
	if q.SLO.Violations() == 0 {
		t.Error("deep queue behind one container should violate 100ms wait SLO")
	}
}

func TestIdleContainersCount(t *testing.T) {
	_, cl, q := testSetup(t)
	addRunning(t, cl, q, 400)
	addRunning(t, cl, q, 400)
	if q.IdleContainers() != 2 || q.Containers() != 2 {
		t.Errorf("idle=%d containers=%d", q.IdleContainers(), q.Containers())
	}
	q.Arrive()
	if q.IdleContainers() != 1 {
		t.Errorf("idle=%d want 1", q.IdleContainers())
	}
}

func TestHasContainer(t *testing.T) {
	_, cl, q := testSetup(t)
	c := addRunning(t, cl, q, 400)
	if !q.Has(c) {
		t.Error("Has=false for attached")
	}
	q.RemoveContainer(c)
	if q.Has(c) {
		t.Error("Has=true after removal")
	}
}

func TestDeterministicReplay(t *testing.T) {
	// Two identical runs must produce identical waits — the property that
	// makes every experiment in the repo reproducible.
	run := func() []float64 {
		engine := sim.NewEngine()
		cl, _ := cluster.New(cluster.PaperCluster())
		spec := functions.MicroBenchmark(100 * time.Millisecond)
		q, _ := NewQueue(engine, spec, 100*time.Millisecond, xrand.New(5))
		for i := 0; i < 3; i++ {
			c, _ := cl.Place(spec.Name, spec.CPUMillis, spec.MemoryMiB)
			cl.MarkRunning(c)
			q.AddContainer(c)
		}
		rng := xrand.New(99)
		tt := time.Duration(0)
		var waits []float64
		for i := 0; i < 500; i++ {
			tt += time.Duration(rng.Exp(25) * float64(time.Second))
			engine.Schedule(tt, func() { q.Arrive() })
		}
		engine.Run()
		waits = append(waits, q.Waits.Mean(), q.Waits.Quantile(0.95), float64(q.Completed()))
		return waits
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("replay diverged at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestOffloadHookDivertsArrival(t *testing.T) {
	engine, cl, q := testSetup(t)
	addRunning(t, cl, q, 1000)
	divert := false
	var offered *Request
	q.Offload = func(r *Request) bool {
		offered = r
		return divert
	}
	if r := q.Arrive(); r == nil {
		t.Fatal("declined request not enqueued")
	}
	if offered == nil {
		t.Fatal("hook not consulted")
	}
	divert = true
	if r := q.Arrive(); r != nil {
		t.Error("diverted request still enqueued")
	}
	if q.Offloaded() != 1 {
		t.Errorf("Offloaded=%d want 1", q.Offloaded())
	}
	engine.Run()
	// Only the locally-admitted request is measured.
	if q.Completed() != 1 || q.Waits.Count() != 1 {
		t.Errorf("completed=%d waits=%d want 1, 1", q.Completed(), q.Waits.Count())
	}
}

func TestArriveOffloadedBypassesHook(t *testing.T) {
	engine, cl, q := testSetup(t)
	addRunning(t, cl, q, 1000)
	q.Offload = func(*Request) bool { return true }
	if r := q.ArriveOffloaded(); r == nil {
		t.Fatal("offloaded arrival was diverted")
	}
	engine.Run()
	if q.Completed() != 1 {
		t.Errorf("completed=%d want 1", q.Completed())
	}
	if q.Offloaded() != 0 {
		t.Errorf("Offloaded=%d want 0", q.Offloaded())
	}
}

func TestRequestDoneFiresOnCompletion(t *testing.T) {
	engine, cl, q := testSetup(t)
	addRunning(t, cl, q, 1000)
	r := q.Arrive()
	var done *Request
	r.Done = func(r *Request) { done = r }
	engine.Run()
	if done != r {
		t.Fatal("Done callback did not fire with the completed request")
	}
	if done.Finish <= done.Arrival {
		t.Errorf("Finish %v not after Arrival %v", done.Finish, done.Arrival)
	}
}

func TestServiceCapacitySumsAttachedRates(t *testing.T) {
	_, cl, q := testSetup(t)
	if got := q.ServiceCapacity(); got != 0 {
		t.Errorf("empty queue capacity %v want 0", got)
	}
	addRunning(t, cl, q, 1000)
	addRunning(t, cl, q, 1000)
	// Two standard containers at 100ms mean service: 20 req/s.
	want := 2 * q.Spec().RateAt(1.0)
	if got := q.ServiceCapacity(); math.Abs(got-want) > 1e-9 {
		t.Errorf("capacity %v want %v", got, want)
	}
}
