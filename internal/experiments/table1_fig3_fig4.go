package experiments

import (
	"fmt"
	"time"

	"lass/internal/cluster"
	"lass/internal/controller"
	"lass/internal/core"
	"lass/internal/functions"
	"lass/internal/queuing"
	"lass/internal/workload"
	"lass/internal/xrand"
)

// Table1 reproduces the function catalog (paper Table 1).
func Table1() *Table {
	t := &Table{
		ID:     "table1",
		Title:  "Functions used in the evaluation (Table 1)",
		Header: []string{"Function", "Language(s)", "Standard Size", "Mean Service", "Slack"},
	}
	for _, s := range functions.Catalog() {
		t.AddRow(
			s.Name,
			s.Language,
			fmt.Sprintf("%.1f vCPU + %d MB", float64(s.CPUMillis)/1000, s.MemoryMiB),
			s.MeanServiceTime.String(),
			fmt.Sprintf("%.0f%%", s.Slack*100),
		)
	}
	t.AddNote("sizes match Table 1; service-time means are calibrated (see DESIGN.md §1)")
	return t
}

// Fig3 reproduces the homogeneous model validation (paper Fig 3): for each
// (μ, SLO deadline) panel and arrival rate λ ∈ {10..50}, provision the
// model-computed container count and measure the P95 waiting time. The SLO
// requires the 95th-percentile wait at or below the deadline.
func Fig3(opt Options) (*Table, error) {
	t := &Table{
		ID:     "fig3",
		Title:  "Model validation, homogeneous containers (Fig 3)",
		Header: []string{"mu(req/s)", "SLO(ms)", "lambda", "c(model)", "P95 wait(ms)", "met"},
	}
	duration := opt.dur(30*time.Minute, 4*time.Minute)
	panels := []struct {
		mu  float64
		slo time.Duration
	}{
		{5, 100 * time.Millisecond},
		{10, 100 * time.Millisecond},
		{5, 200 * time.Millisecond},
		{10, 200 * time.Millisecond},
	}
	violations := 0
	for _, panel := range panels {
		// Provision at the 99th percentile as Algorithm 1 is written
		// (§3.1 "say the 99th percentile"); the evaluation then measures
		// the 95th percentile against the deadline (§6.1), which is what
		// gives the model its margin in Fig 3.
		slo := queuing.SLO{Deadline: panel.slo, Percentile: 0.99, WaitingOnly: true}
		for lambda := 10.0; lambda <= 50; lambda += 10 {
			c, err := queuing.MinimalContainers(lambda, panel.mu, slo)
			if err != nil {
				return nil, err
			}
			spec := functions.MicroBenchmark(time.Duration(float64(time.Second) / panel.mu))
			spec.ColdStart = 0
			wl, err := workload.NewStatic(lambda)
			if err != nil {
				return nil, err
			}
			p, err := core.New(core.Config{
				Cluster: cluster.Config{Nodes: 8, CPUPerNode: 4000, MemPerNode: 16384},
				Seed:    opt.Seed ^ uint64(lambda) ^ uint64(panel.mu)<<8 ^ uint64(panel.slo),
				Functions: []core.FunctionConfig{{
					Spec: spec, SLO: slo, Workload: wl, Prewarm: c,
				}},
				DisableController: true,
			})
			if err != nil {
				return nil, err
			}
			res, err := p.Run(duration)
			if err != nil {
				return nil, err
			}
			p95 := res.Functions[spec.Name].Waits.Quantile(0.95)
			met := p95 <= panel.slo.Seconds()*1.10 // 10% measurement tolerance
			if !met {
				violations++
			}
			t.AddRow(
				fmt.Sprintf("%.0f", panel.mu),
				ms(panel.slo),
				fmt.Sprintf("%.0f", lambda),
				fmt.Sprintf("%d", c),
				msF(p95),
				fmt.Sprintf("%v", met),
			)
		}
	}
	t.AddNote("expected shape: every P95 at or below its SLO deadline (red dashed line in the paper)")
	t.AddNote("rows violating (with 10%% tolerance): %d / %d", violations, len(t.Rows))
	return t, nil
}

// Fig4 reproduces the heterogeneous model validation (paper Fig 4):
// provision SqueezeNet for a static rate, randomly deflate a proportion of
// its containers, let LaSS react through the Alves worst-case model, and
// measure the P95 waiting time against the 100 ms SLO.
func Fig4(opt Options) (*Table, error) {
	t := &Table{
		ID:     "fig4",
		Title:  "Model validation, heterogeneous containers (Fig 4)",
		Header: []string{"lambda", "deflated%", "P95 wait(ms)", "met"},
	}
	duration := opt.dur(20*time.Minute, 4*time.Minute)
	warmup := opt.dur(2*time.Minute, time.Minute)
	rates := []float64{10, 20, 30, 40, 50, 60, 70, 80, 90, 100}
	if opt.Quick {
		rates = []float64{10, 40, 70, 100}
	}
	proportions := []float64{0.25, 0.50, 0.75, 1.00}
	// Provision at p99 (Algorithm 1), measure p95 (§6.1) — see Fig3.
	slo := queuing.SLO{Deadline: 100 * time.Millisecond, Percentile: 0.99, WaitingOnly: true}
	spec, err := functions.ByName("squeezenet")
	if err != nil {
		return nil, err
	}
	violations := 0
	for _, prop := range proportions {
		for _, lambda := range rates {
			c, err := queuing.MinimalContainers(lambda, spec.ServiceRate(), slo)
			if err != nil {
				return nil, err
			}
			wl, err := workload.NewStatic(lambda)
			if err != nil {
				return nil, err
			}
			p, err := core.New(core.Config{
				// Large cluster: the paper runs this "with no resource
				// constraints".
				Cluster: cluster.Config{Nodes: 30, CPUPerNode: 4000, MemPerNode: 16384},
				Seed:    opt.Seed ^ uint64(lambda)<<4 ^ uint64(prop*100),
				Controller: controller.Config{
					NoInflateOnSlack: true, // keep the manual deflation in place
				},
				Functions: []core.FunctionConfig{{
					Spec: spec, SLO: slo, Workload: wl, Prewarm: c,
				}},
			})
			if err != nil {
				return nil, err
			}
			// After warmup, randomly deflate the chosen proportion.
			rng := xrand.New(opt.Seed ^ 0xf19_4 ^ uint64(lambda))
			prop := prop
			p.Engine.Schedule(warmup, func() {
				cs := p.Cluster.ContainersOf(spec.Name)
				perm := rng.Perm(len(cs))
				n := int(prop * float64(len(cs)))
				for i := 0; i < n && i < len(cs); i++ {
					target := cs[perm[i]]
					// Random deflation within the τ = 30% envelope.
					frac := rng.Uniform(0.70, 0.95)
					newCPU := int64(frac * float64(target.CPUStandard))
					_ = p.Cluster.Resize(target, newCPU)
				}
			})
			res, err := p.Run(duration)
			if err != nil {
				return nil, err
			}
			p95 := res.Functions[spec.Name].Waits.Quantile(0.95)
			met := p95 <= 0.100*1.15
			if !met {
				violations++
			}
			t.AddRow(
				fmt.Sprintf("%.0f", lambda),
				fmt.Sprintf("%.0f", prop*100),
				msF(p95),
				fmt.Sprintf("%v", met),
			)
		}
	}
	t.AddNote("expected shape: P95 waits stay well below the 100ms SLO at every heterogeneity level")
	t.AddNote("rows violating (with 15%% tolerance): %d / %d", violations, len(t.Rows))
	return t, nil
}
