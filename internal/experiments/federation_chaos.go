package experiments

import (
	"fmt"
	"path/filepath"
	"sort"
	"time"

	"lass/internal/chaos"
	"lass/internal/federation"
	"lass/internal/scenario"
)

// chaosVariant is one column family of the chaos sweep: a coordinator
// election mode crossed with a grant-lease mode, run over every chaos
// replicate.
type chaosVariant struct {
	coordinator string // "fixed" | "centroid"
	grants      string // "leased" | "frozen"
	election    federation.CoordinatorElection
	lease       time.Duration // 0 = default 2x epoch, negative = frozen
}

var chaosVariants = []chaosVariant{
	{coordinator: "fixed", grants: "leased", election: federation.Fixed},
	{coordinator: "fixed", grants: "frozen", election: federation.Fixed, lease: -1},
	{coordinator: "centroid", grants: "leased", election: federation.RTTCentroid},
	{coordinator: "centroid", grants: "frozen", election: federation.RTTCentroid, lease: -1},
}

// chaosScenarios are the variant rows the chaos sweep reports
// ("coordinator/grants"), in order — what MissingChaosScenarios keys on.
var chaosScenarios = []string{"fixed/leased", "fixed/frozen",
	"centroid/leased", "centroid/frozen"}

// chaosDefaultReplicates is how many seeded failure realizations each
// variant runs when opt.Fed.ChaosReplicates is unset. Eight is the floor
// the leased-beats-frozen mean assertion is calibrated for.
const chaosDefaultReplicates = 8

// chaosSweepFaults is the failure distribution every replicate draws its
// realization from: a Gilbert-Elliott coordinator outage process (mean
// 1.5 units up, 2.5 units down — long multi-epoch control-plane outages,
// so frozen grants stay bound to stale sizes across demand shifts while
// leased grants expire and fall back to local enforcement) plus a GE
// partial partition on the hot-site spoke (site 0 <-> the hub), which
// exercises asymmetric lease expiry, partitioned epochs, and dropped
// grants without silencing the rest of the fleet.
func chaosSweepFaults(nsites, hub int, seed uint64, unit time.Duration) (*chaos.Engine, error) {
	return chaos.New(chaos.Config{
		Sites: nsites,
		Seed:  seed,
		Faults: []chaos.Fault{
			{Kind: chaos.FaultCoordinator,
				GE: &chaos.GilbertElliott{MeanUp: 3 * unit / 2, MeanDown: 5 * unit / 2}},
			{Kind: chaos.FaultLink, From: 0, To: hub, Bidirectional: true,
				GE: &chaos.GilbertElliott{MeanUp: 4 * unit, MeanDown: unit / 2}},
		},
	})
}

// chaosSweepHeader is the chaos sub-table's shape; the coordinator and
// grants columns are what MissingChaosScenarios keys on.
var chaosSweepHeader = []string{"coordinator", "grants", "replicates",
	"mean-viol", "p95-viol", "mean-missed", "p95-missed",
	"mean-part-epochs", "mean-grants-lost", "mean-lease-exp", "mean-viol-rate"}

func meanU64(xs []uint64) float64 {
	var sum uint64
	for _, x := range xs {
		sum += x
	}
	return float64(sum) / float64(len(xs))
}

// p95U64 is the nearest-rank 95th percentile of a small sample.
func p95U64(xs []uint64) uint64 {
	s := append([]uint64(nil), xs...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	rank := (95*len(s) + 99) / 100 // ceil(0.95 n)
	return s[rank-1]
}

func meanF64(xs []float64) float64 {
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// FederationChaos sweeps coordinator election (fixed vs RTT-centroid)
// crossed with grant leasing (leased vs frozen) across N seeded failure
// realizations of one chaos distribution — a Gilbert-Elliott coordinator
// flicker plus a GE partial partition cutting the hot site off the hub —
// on the asymmetric-star burst scenario. Replicates are paired: replicate
// r of every variant draws the identical chaos seed, and only the chaos
// seed varies between replicates (the workload stays pinned to opt.Seed),
// so the sweep compares policies across failure realizations rather than
// across workloads. The experiment reports mean and p95 (nearest-rank) of
// SLO violations and missed allocation epochs per variant and
// hard-asserts the tentpole claim distributionally: for each election
// mode, leased grants beat frozen grants on mean violations across the
// replicate set, and no frozen run records a single lease expiration.
func FederationChaos(opt Options) (*Table, error) {
	reps := opt.Fed.ChaosReplicates
	if reps <= 0 {
		reps = chaosDefaultReplicates
	}
	baseSeed := uint64(opt.Fed.ChaosSeed)
	if opt.Fed.ChaosSeed <= 0 {
		baseSeed = opt.Seed ^ 0xc4a05
	}
	t := &Table{
		ID:     "federation-chaos",
		Title:  "Chaos sweep: election x grant-lease across seeded failure realizations (asymmetric star)",
		Header: append([]string(nil), chaosSweepHeader...),
	}
	unit := opt.dur(time.Minute, 10*time.Second)
	topo, hub, err := coordinatorTopology()
	if err != nil {
		return nil, err
	}
	// Every (variant, replicate) pair is an independent cell; results land
	// by index and rows are emitted afterwards in variant order, so the
	// table is byte-identical at any -sweep-workers count.
	results := make([]*federation.Result, len(chaosVariants)*reps)
	err = forEachCell(len(results), opt.SweepWorkers, func(i int) error {
		v := chaosVariants[i/reps]
		r := i % reps
		sites, end, err := coordinatorSites(opt, unit)
		if err != nil {
			return err
		}
		o := opt
		o.Fed.GlobalFairShare = true
		o.Fed.Admission = true
		if o.Fed.CloudMaxConcurrency == 0 {
			o.Fed.CloudMaxConcurrency = 2
		}
		policy := o.Fed.Policy
		if policy == "" {
			policy = "model-driven"
		}
		placer, err := federation.ParsePlacer(policy)
		if err != nil {
			return err
		}
		fcfg, err := federationConfig(o, sites, placer)
		if err != nil {
			return err
		}
		fcfg.Topology = topo
		fcfg.CoordinatorElection = v.election
		fcfg.GrantLease = v.lease
		fcfg.Faults, err = chaosSweepFaults(len(sites), hub, baseSeed+uint64(r), unit)
		if err != nil {
			return err
		}
		fed, err := federation.New(fcfg)
		if err != nil {
			return err
		}
		res, err := fed.Run(end)
		if err != nil {
			return err
		}
		results[i] = res
		return nil
	})
	if err != nil {
		return nil, err
	}
	meanViol := make(map[string]float64, len(chaosVariants))
	for vi, v := range chaosVariants {
		viol := make([]uint64, reps)
		missed := make([]uint64, reps)
		var part, lost, leaseExp []uint64
		var rates []float64
		for r := 0; r < reps; r++ {
			res := results[vi*reps+r]
			viol[r] = totalViolations(res)
			missed[r] = res.MissedAllocEpochs
			part = append(part, res.PartitionedEpochs)
			lost = append(lost, res.GrantsLost)
			leaseExp = append(leaseExp, res.GrantLeaseExpirations)
			var violated, total uint64
			for _, s := range res.Sites {
				violated += s.Violations()
				total += s.SLO.Total() + s.Unresolved
			}
			rates = append(rates, violationRate(violated, total))
		}
		label := v.coordinator + "/" + v.grants
		meanViol[label] = meanU64(viol)
		t.AddRow(v.coordinator, v.grants,
			fmt.Sprintf("%d", reps),
			fmt.Sprintf("%.1f", meanU64(viol)),
			fmt.Sprintf("%d", p95U64(viol)),
			fmt.Sprintf("%.1f", meanU64(missed)),
			fmt.Sprintf("%d", p95U64(missed)),
			fmt.Sprintf("%.1f", meanU64(part)),
			fmt.Sprintf("%.1f", meanU64(lost)),
			fmt.Sprintf("%.1f", meanU64(leaseExp)),
			fmt.Sprintf("%.4f", meanF64(rates)))
		if v.grants == "frozen" {
			for r, e := range leaseExp {
				if e != 0 {
					return nil, fmt.Errorf("experiments: frozen-grants %s replicate %d recorded %d lease expirations; want 0",
						v.coordinator, r, e)
				}
			}
		}
	}
	for _, coord := range []string{"fixed", "centroid"} {
		leased, frozen := meanViol[coord+"/leased"], meanViol[coord+"/frozen"]
		if leased >= frozen {
			return nil, fmt.Errorf("experiments: %s election: leased grants did not beat frozen on mean violations across %d replicates: %.1f (leased) vs %.1f (frozen)",
				coord, reps, leased, frozen)
		}
	}
	t.AddNote("fault distribution: GE coordinator outages (mean up 1.5u, down 2.5u) + GE partial partition site 0 <-> hub (mean up 4u, down u/2), u=%v", unit)
	t.AddNote("replicates are paired: replicate r of every variant draws chaos seed %d+r; the workload stays pinned to seed %d", baseSeed, opt.Seed)
	t.AddNote("asserted: for each election mode, mean violations leased < frozen across %d replicates; frozen runs record zero lease expirations", reps)
	return t, nil
}

// MissingChaosScenarios compares a committed sweep-baseline JSON against
// the variant rows the federation-chaos sweep produces and returns the
// ones the baseline's nested Chaos table lacks — the staleness signal
// that BENCH_federation.json was regenerated without the chaos sub-table.
// Baselines predating the Chaos field report every variant missing.
func MissingChaosScenarios(baselineJSON []byte) ([]string, error) {
	baseline, err := parseBaseline(baselineJSON)
	if err != nil {
		return nil, err
	}
	if baseline.Chaos == nil {
		return append([]string(nil), chaosScenarios...), nil
	}
	col := columnIndex(baseline.Chaos.Header)
	for _, name := range []string{"coordinator", "grants"} {
		if _, ok := col[name]; !ok {
			return append([]string(nil), chaosScenarios...), nil
		}
	}
	have := map[string]bool{}
	for _, row := range baseline.Chaos.Rows {
		if len(row) > col["coordinator"] && len(row) > col["grants"] {
			have[row[col["coordinator"]]+"/"+row[col["grants"]]] = true
		}
	}
	var missing []string
	for _, s := range chaosScenarios {
		if !have[s] {
			missing = append(missing, s)
		}
	}
	return missing, nil
}

// scenarioRunHeader is the scenario experiment's shape: one row per
// (scenario file, replicate).
var scenarioRunHeader = []string{"scenario", "replicate", "chaos-seed",
	"violations", "viol-rate", "missed-epochs", "part-epochs",
	"grants-lost", "lease-exp", "assertions"}

// ScenarioRun loads declarative scenario files and runs each one:
// opt.Fed.ScenarioPath names a single file, or — when empty — every
// scenarios/*.yaml under the working directory runs (the committed suite).
// opt.Fed.ChaosReplicates > 1 re-runs each scenario with chaos seeds
// base, base+1, ... (base = the file's chaos.seed, or opt.Fed.ChaosSeed
// when non-zero) while the workload stays pinned — the seed/replication
// semantics documented in README. A replicate whose chaos seed is the
// file's own authored seed must pass the file's assertions or the
// experiment fails; re-seeded replicates report pass/fail per row without
// failing the run, since assertions are authored against one realization.
func ScenarioRun(opt Options) (*Table, error) {
	var paths []string
	if opt.Fed.ScenarioPath != "" {
		paths = []string{opt.Fed.ScenarioPath}
	} else {
		var err error
		paths, err = filepath.Glob(filepath.Join("scenarios", "*.yaml"))
		if err != nil {
			return nil, err
		}
		sort.Strings(paths)
		if len(paths) == 0 {
			return nil, fmt.Errorf("experiments: no scenario files under scenarios/ (run from the repository root, or pass -scenario <file>)")
		}
	}
	reps := opt.Fed.ChaosReplicates
	if reps <= 0 {
		reps = 1
	}
	scs := make([]*scenario.Scenario, len(paths))
	for i, p := range paths {
		sc, err := scenario.Load(p)
		if err != nil {
			return nil, err
		}
		scs[i] = sc
	}
	t := &Table{
		ID:     "scenario",
		Title:  "Declarative scenario runs",
		Header: append([]string(nil), scenarioRunHeader...),
	}
	type cellOut struct {
		seed     int64
		res      *federation.Result
		checkErr error
	}
	cells := make([]cellOut, len(scs)*reps)
	err := forEachCell(len(cells), opt.SweepWorkers, func(i int) error {
		sc := scs[i/reps]
		r := i % reps
		base := int64(sc.Chaos.Seed)
		if opt.Fed.ChaosSeed > 0 {
			base = opt.Fed.ChaosSeed
		}
		seed := base + int64(r)
		cfg, err := sc.Build(seed)
		if err != nil {
			return err
		}
		fed, err := federation.New(cfg)
		if err != nil {
			return err
		}
		res, err := fed.Run(sc.Duration)
		if err != nil {
			return err
		}
		cells[i] = cellOut{seed: seed, res: res, checkErr: sc.Check(res)}
		return nil
	})
	if err != nil {
		return nil, err
	}
	for si, sc := range scs {
		for r := 0; r < reps; r++ {
			c := cells[si*reps+r]
			var violated, total uint64
			for _, s := range c.res.Sites {
				violated += s.Violations()
				total += s.SLO.Total() + s.Unresolved
			}
			verdict := "ok"
			if c.checkErr != nil {
				verdict = "FAIL: " + c.checkErr.Error()
			}
			t.AddRow(sc.Name,
				fmt.Sprintf("%d", r),
				fmt.Sprintf("%d", c.seed),
				fmt.Sprintf("%d", violated),
				fmt.Sprintf("%.4f", violationRate(violated, total)),
				fmt.Sprintf("%d", c.res.MissedAllocEpochs),
				fmt.Sprintf("%d", c.res.PartitionedEpochs),
				fmt.Sprintf("%d", c.res.GrantsLost),
				fmt.Sprintf("%d", c.res.GrantLeaseExpirations),
				verdict)
			if c.checkErr != nil && c.seed == int64(sc.Chaos.Seed) {
				return nil, fmt.Errorf("experiments: scenario %s (authored chaos seed %d): %w",
					sc.Name, c.seed, c.checkErr)
			}
		}
	}
	t.AddNote("replicates re-run the same pinned workload under chaos seeds base..base+n-1; only the authored-seed replicate must pass its assertions")
	return t, nil
}
