package experiments

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestFederationChaosSweep checks the chaos sweep's shape and its
// acceptance-bar determinism: the same seed must produce byte-identical
// output serially and with 8 sweep workers.
func TestFederationChaosSweep(t *testing.T) {
	serial, err := FederationChaos(Options{Seed: 1, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(serial.Rows) != len(chaosScenarios) {
		t.Fatalf("chaos sweep produced %d rows, want %d", len(serial.Rows), len(chaosScenarios))
	}
	for i, want := range chaosScenarios {
		if got := serial.Rows[i][0] + "/" + serial.Rows[i][1]; got != want {
			t.Errorf("row %d is %s, want %s", i, got, want)
		}
		if serial.Rows[i][2] != "8" {
			t.Errorf("row %d ran %s replicates, want the default 8", i, serial.Rows[i][2])
		}
	}
	parallel, err := FederationChaos(Options{Seed: 1, Quick: true, SweepWorkers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(renderTable(t, serial), renderTable(t, parallel)) {
		t.Errorf("chaos sweep output differs between serial and 8-worker runs")
	}
	again, err := FederationChaos(Options{Seed: 1, Quick: true, SweepWorkers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(renderTable(t, parallel), renderTable(t, again)) {
		t.Error("chaos sweep is not reproducible at the same seed")
	}
}

// TestFederationChaosSeedChangesRealizations: a different chaos base seed
// must change the failure realizations (and so the reported statistics)
// while the workload stays pinned.
func TestFederationChaosSeedChangesRealizations(t *testing.T) {
	a, err := FederationChaos(Options{Seed: 1, Quick: true, SweepWorkers: 8,
		Fed: FedOptions{ChaosSeed: 1000, ChaosReplicates: 8}})
	if err != nil {
		t.Fatal(err)
	}
	b, err := FederationChaos(Options{Seed: 1, Quick: true, SweepWorkers: 8,
		Fed: FedOptions{ChaosSeed: 2000, ChaosReplicates: 8}})
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(renderTable(t, a), renderTable(t, b)) {
		t.Error("chaos base seeds 1000 and 2000 produced identical sweeps")
	}
}

func TestMissingChaosScenarios(t *testing.T) {
	// A baseline predating the Chaos sub-table reports every variant.
	old, _ := json.Marshal(Table{Header: []string{"policy"}})
	missing, err := MissingChaosScenarios(old)
	if err != nil {
		t.Fatal(err)
	}
	if len(missing) != len(chaosScenarios) {
		t.Errorf("pre-chaos baseline missing %v, want all of %v", missing, chaosScenarios)
	}
	// A baseline carrying every variant row reports none.
	full := Table{Header: []string{"policy"}, Chaos: &Table{
		Header: append([]string(nil), chaosSweepHeader...),
		Rows: [][]string{
			{"fixed", "leased", "8"}, {"fixed", "frozen", "8"},
			{"centroid", "leased", "8"}, {"centroid", "frozen", "8"},
		},
	}}
	raw, _ := json.Marshal(full)
	missing, err = MissingChaosScenarios(raw)
	if err != nil {
		t.Fatal(err)
	}
	if len(missing) != 0 {
		t.Errorf("complete baseline reported missing %v", missing)
	}
	// Dropping one variant reports exactly that variant.
	full.Chaos.Rows = full.Chaos.Rows[:3]
	raw, _ = json.Marshal(full)
	missing, err = MissingChaosScenarios(raw)
	if err != nil {
		t.Fatal(err)
	}
	if len(missing) != 1 || missing[0] != "centroid/frozen" {
		t.Errorf("missing = %v, want [centroid/frozen]", missing)
	}
}

// TestScenarioRunExperiment runs a committed scenario through the
// registry experiment with replicates and checks the row layout and the
// only-authored-seed-enforced assertion semantics.
func TestScenarioRunExperiment(t *testing.T) {
	tab, err := ScenarioRun(Options{Seed: 1, SweepWorkers: 4, Fed: FedOptions{
		ScenarioPath:    filepath.Join("..", "..", "scenarios", "asymmetric-partition.yaml"),
		ChaosReplicates: 3,
	}})
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("scenario run produced %d rows, want 3 replicates", len(tab.Rows))
	}
	if tab.Rows[0][0] != "asymmetric-partition" {
		t.Errorf("scenario column = %q", tab.Rows[0][0])
	}
	// Replicate 0 runs the authored chaos seed, so its assertions were
	// enforced (a failure would have errored above) and its row says ok.
	if got := tab.Rows[0][len(tab.Rows[0])-1]; got != "ok" {
		t.Errorf("authored-seed replicate verdict = %q, want ok", got)
	}
}

// TestScenarioRunFailsAuthoredAssertions: a scenario whose assertions
// cannot hold at its authored seed fails the experiment.
func TestScenarioRunFailsAuthoredAssertions(t *testing.T) {
	src, err := os.ReadFile(filepath.Join("..", "..", "scenarios", "asymmetric-partition.yaml"))
	if err != nil {
		t.Fatal(err)
	}
	broken := strings.Replace(string(src), "min-alloc-epochs: 5", "min-alloc-epochs: 999999", 1)
	if broken == string(src) {
		t.Fatal("fixture did not contain the expected assertion line")
	}
	path := filepath.Join(t.TempDir(), "broken.yaml")
	if err := os.WriteFile(path, []byte(broken), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = ScenarioRun(Options{Seed: 1, Fed: FedOptions{ScenarioPath: path}})
	if err == nil || !strings.Contains(err.Error(), "allocation epochs") {
		t.Errorf("unsatisfiable authored assertion not reported; err = %v", err)
	}
}
