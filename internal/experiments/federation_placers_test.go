package experiments

import (
	"strconv"
	"strings"
	"testing"

	"lass/internal/federation"
)

func placerRate(t *testing.T, tab *Table, policy string) float64 {
	t.Helper()
	row, err := PlacerAggregate(tab, policy)
	if err != nil {
		t.Fatal(err)
	}
	v, err := strconv.ParseFloat(row[len(row)-1], 64)
	if err != nil {
		t.Fatalf("bad violation rate %q: %v", row[len(row)-1], err)
	}
	return v
}

// TestFederationPlacersGrantAwareBeatsModelDriven is the acceptance bar
// for the Placer API's headline policy: on the skewed-trace sweep (global
// fair share + admission + throttled cloud), grant-aware — model-driven
// with the allocator's grants folded into its per-candidate prediction —
// must strictly cut SLO violations versus plain model-driven, which only
// sees live pools and prices a grant-bound origin's backlog as if
// arrivals stopped.
func TestFederationPlacersGrantAwareBeatsModelDriven(t *testing.T) {
	tab, err := FederationPlacers(quick)
	if err != nil {
		t.Fatal(err)
	}
	if want := 4 * len(federation.PlacerNames()); len(tab.Rows) != want {
		t.Fatalf("rows=%d want %d (every registered policy x (3 sites + aggregate))", len(tab.Rows), want)
	}
	// Arrivals are workload-driven: identical across policies or the
	// comparison is meaningless.
	base, err := PlacerAggregate(tab, "never")
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range federation.PlacerNames() {
		row, err := PlacerAggregate(tab, name)
		if err != nil {
			t.Fatal(err)
		}
		if row[3] != base[3] {
			t.Errorf("%s arrivals %s != never arrivals %s", name, row[3], base[3])
		}
		if row[1] != "global" {
			t.Errorf("%s row alloc=%q want global", name, row[1])
		}
	}
	model := placerRate(t, tab, "model-driven")
	grant := placerRate(t, tab, "grant-aware")
	if grant >= model {
		t.Errorf("grant-aware violation rate %.4f not strictly below model-driven %.4f", grant, model)
	}
	// Both predictive policies must dominate the non-predictive ones on
	// this scenario.
	for _, name := range []string{"never", "cloud-only", "nearest-peer"} {
		if r := placerRate(t, tab, name); r <= model {
			t.Errorf("%s violation rate %.4f unexpectedly at or below model-driven %.4f", name, r, model)
		}
	}
	// cost-bounded's whole point is visible in the table: it never spends
	// more on the cloud than model-driven here.
	modelRow, _ := PlacerAggregate(tab, "model-driven")
	costRow, _ := PlacerAggregate(tab, "cost-bounded")
	modelBill, _ := strconv.ParseFloat(modelRow[9], 64)
	costBill, _ := strconv.ParseFloat(costRow[9], 64)
	if costBill > modelBill {
		t.Errorf("cost-bounded cloud bill $%.6f above model-driven's $%.6f", costBill, modelBill)
	}
}

// TestSweepPolicyFilter: FedOptions.Policy restricts any federation sweep
// to one registered policy — the -policy flag's contract.
func TestSweepPolicyFilter(t *testing.T) {
	opt := quick
	opt.Fed.Policy = "cost-bounded"
	tab, err := Federation(opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 { // 3 sites + aggregate, one policy
		t.Fatalf("rows=%d want 4", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		if row[0] != "cost-bounded" {
			t.Errorf("row policy %q leaked past the filter", row[0])
		}
	}
	opt.Fed.Policy = "no-such-policy"
	if _, err := Federation(opt); err == nil {
		t.Error("unknown policy filter accepted")
	}
}

// TestExperimentResolvesCustomPlacer: a placer registered from outside
// internal/federation is selectable by name through the experiment
// registry — the end-to-end path behind `lass-sim -policy <name>`.
func TestExperimentResolvesCustomPlacer(t *testing.T) {
	// Tolerate re-registration: the registry is process-global, so a
	// second in-process run (go test -count=N) already has the placer.
	if err := federation.RegisterPlacer(alwaysCloudPlacer{}); err != nil &&
		!strings.Contains(err.Error(), "already registered") {
		t.Fatal(err)
	}
	opt := quick
	opt.Fed.Policy = "always-cloud"
	tab, err := Run("federation", opt)
	if err != nil {
		t.Fatal(err)
	}
	row, err := PlacerAggregate(tab, "always-cloud")
	if err != nil {
		t.Fatal(err)
	}
	if row[4] != "0" {
		t.Errorf("always-cloud served %s locally", row[4])
	}
	if row[6] == "0" {
		t.Error("always-cloud sent nothing to the cloud")
	}
}

// alwaysCloudPlacer ships every request to the cloud — a degenerate custom
// policy proving the registry path end to end.
type alwaysCloudPlacer struct{}

func (alwaysCloudPlacer) Name() string { return "always-cloud" }

func (alwaysCloudPlacer) Place(ctx *federation.PlacementContext) federation.Decision {
	return federation.ToCloud()
}
