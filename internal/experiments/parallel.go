package experiments

import (
	"sync"
	"sync/atomic"
)

// forEachCell runs n independent sweep cells, cell i via run(i), on up to
// workers goroutines. Cells must be fully independent — each builds its own
// configs, engine, and RNG streams — and must communicate results only by
// writing to their own index of a pre-sized slice. Callers append table rows
// (and notes) from those slices in index order after forEachCell returns, so
// the emitted output is byte-identical whatever the worker count.
//
// workers <= 1 runs the cells serially in order, preserving the historical
// fail-fast behaviour exactly. With workers > 1 every cell runs even when an
// earlier one fails; the error returned is the failing cell with the lowest
// index, so failures are deterministic too.
func forEachCell(n, workers int, run func(i int) error) error {
	if workers <= 1 || n <= 1 {
		for i := 0; i < n; i++ {
			if err := run(i); err != nil {
				return err
			}
		}
		return nil
	}
	if workers > n {
		workers = n
	}
	errs := make([]error, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				errs[i] = run(i)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
