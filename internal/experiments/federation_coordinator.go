package experiments

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"lass/internal/core"
	"lass/internal/federation"
	"lass/internal/functions"
	"lass/internal/workload"
)

// coordinatorTopology builds the asymmetric star the coordinator sweep
// runs on: site 1 is the hub, every other site reaches peers through it,
// and the two legs of each spoke differ (up ≠ down), after the measured
// asymmetry of real edge platforms. Site 0 — the default Fixed
// coordinator — sits at the end of the longest spoke, so pinning the
// allocator there is exactly the placement mistake RTT-centroid election
// exists to avoid.
func coordinatorTopology() (*federation.Topology, int, error) {
	const hub = 1
	up := []time.Duration{ // one way, spoke → hub
		25 * time.Millisecond, 0, 4 * time.Millisecond, 6 * time.Millisecond}
	down := []time.Duration{ // one way, hub → spoke
		20 * time.Millisecond, 0, 3 * time.Millisecond, 5 * time.Millisecond}
	n := len(up)
	m := make([][]time.Duration, n)
	for i := range m {
		m[i] = make([]time.Duration, n)
		for j := range m[i] {
			switch {
			case i == j:
			case i == hub:
				m[i][j] = down[j]
			case j == hub:
				m[i][j] = up[i]
			default:
				m[i][j] = up[i] + down[j] // spoke → hub → spoke
			}
		}
	}
	topo, err := federation.NewTopology(m)
	return topo, hub, err
}

// coordinatorSites builds the sweep's workload: the far-spoke site 0
// takes a 3×-capacity burst through the middle third of the run while the
// hub and the near spokes stay lightly loaded — the skewed shape that
// makes global fair share (and therefore coordinator placement and
// failover) matter.
func coordinatorSites(opt Options, unit time.Duration) ([]core.Config, time.Duration, error) {
	spec, err := functions.ByName("squeezenet")
	if err != nil {
		return nil, 0, err
	}
	end := 9 * unit
	rates := [][]workload.Step{
		{{Start: 0, Rate: 20}, {Start: 3 * unit, Rate: 120}, {Start: 6 * unit, Rate: 20}},
		{{Start: 0, Rate: 10}},
		{{Start: 0, Rate: 10}},
		{{Start: 0, Rate: 10}},
	}
	var sites []core.Config
	for i, steps := range rates {
		wl, err := workload.NewSteps(steps)
		if err != nil {
			return nil, 0, err
		}
		sites = append(sites, edgeSite(spec, wl, opt.Seed^uint64(0xc00d+i)))
	}
	return sites, end, nil
}

// coordinatorVariant is one run of the coordinator sweep.
type coordinatorVariant struct {
	label    string
	election federation.CoordinatorElection
	outages  []federation.Window
	lease    time.Duration // 0 = default 2×epoch, negative = frozen (no lease)
}

// FederationCoordinator sweeps coordinator placement and failover for the
// federation-wide §4.1 allocator on an asymmetric star: Fixed election at
// the far spoke versus RTT-centroid election at the hub, with no outages
// and with a coordinator outage covering the hot site's burst, under
// leased grants (default 2×epoch) and under the frozen-grants legacy (no
// lease). The experiment hard-asserts the tentpole claims: centroid
// election strictly reduces the mean grant-delivery delay, and lease
// fallback keeps the outage run's violations strictly below the
// frozen-grants variant, which stays bound to its stale pre-burst grants
// through the whole burst.
func FederationCoordinator(opt Options) (*Table, error) {
	t := &Table{
		ID:     "federation-coordinator",
		Title:  "Coordinator election, outages, and grant leases for the global allocator (asymmetric star)",
		Header: append([]string(nil), federationSweepHeader...),
	}
	unit := opt.dur(time.Minute, 10*time.Second)
	topo, hub, err := coordinatorTopology()
	if err != nil {
		return nil, err
	}
	// One outage window covering the epoch before the burst and the burst
	// itself: the last grants delivered before the coordinator goes dark
	// are sized for light load, which is exactly what a frozen-grants site
	// stays bound to while 3× its capacity arrives.
	outage := []federation.Window{{Start: 2 * unit, End: 6 * unit}}
	variants := []coordinatorVariant{
		{label: "fixed, no outage", election: federation.Fixed},
		{label: "centroid, no outage", election: federation.RTTCentroid},
		{label: "centroid, outage 0.44, leased", election: federation.RTTCentroid, outages: outage},
		{label: "centroid, outage 0.44, frozen", election: federation.RTTCentroid, outages: outage, lease: -1},
	}
	// Each variant is an independent cell; rows and per-run notes are
	// emitted in variant order after all cells complete, so the table is
	// byte-identical at any worker count.
	results := make([]*federation.Result, len(variants))
	err = forEachCell(len(variants), opt.SweepWorkers, func(i int) error {
		v := variants[i]
		sites, end, err := coordinatorSites(opt, unit)
		if err != nil {
			return err
		}
		o := opt
		o.Fed.GlobalFairShare = true
		o.Fed.Admission = true
		if o.Fed.CloudMaxConcurrency == 0 {
			o.Fed.CloudMaxConcurrency = 2 // a throttled cloud makes edge efficiency matter
		}
		policy := o.Fed.Policy
		if policy == "" {
			policy = "model-driven"
		}
		placer, err := federation.ParsePlacer(policy)
		if err != nil {
			return err
		}
		fcfg, err := federationConfig(o, sites, placer)
		if err != nil {
			return err
		}
		fcfg.Topology = topo
		fcfg.CoordinatorElection = v.election
		fcfg.CoordinatorOutages = v.outages
		fcfg.GrantLease = v.lease
		fed, err := federation.New(fcfg)
		if err != nil {
			return err
		}
		res, err := fed.Run(end)
		if err != nil {
			return err
		}
		results[i] = res
		return nil
	})
	if err != nil {
		return nil, err
	}
	for i, v := range variants {
		res := results[i]
		addFederationRows(t, res)
		t.AddNote("run %d (%s): coordinator %s, %d/%d epochs missed, %d lease expirations, mean grant delay %v",
			i+1, v.label, coordinatorLabel(res), res.MissedAllocEpochs,
			res.MissedAllocEpochs+res.AllocEpochs, res.GrantLeaseExpirations, res.MeanGrantDelay)
	}
	fixed, centroid, leased, frozen := results[0], results[1], results[2], results[3]
	if centroid.Coordinator != hub {
		return nil, fmt.Errorf("experiments: centroid election picked site %d, want the hub %d",
			centroid.Coordinator, hub)
	}
	if centroid.MeanGrantDelay >= fixed.MeanGrantDelay {
		return nil, fmt.Errorf("experiments: centroid election did not reduce mean grant-delivery delay: %v (centroid) vs %v (fixed)",
			centroid.MeanGrantDelay, fixed.MeanGrantDelay)
	}
	if leased.MissedAllocEpochs == 0 || leased.GrantLeaseExpirations == 0 {
		return nil, fmt.Errorf("experiments: outage run missed %d epochs with %d lease expirations; want both > 0",
			leased.MissedAllocEpochs, leased.GrantLeaseExpirations)
	}
	if frozen.GrantLeaseExpirations != 0 {
		return nil, fmt.Errorf("experiments: frozen-grants run recorded %d lease expirations; want 0",
			frozen.GrantLeaseExpirations)
	}
	if lv, fv := totalViolations(leased), totalViolations(frozen); lv >= fv {
		return nil, fmt.Errorf("experiments: lease fallback did not bound the outage violation spike: %d (leased) vs %d (frozen)", lv, fv)
	}
	t.AddNote("asymmetric star: site 1 is the hub; site 0 (the Fixed default) sits on a 25ms/20ms spoke and takes a 3x burst in the middle third")
	t.AddNote("grant-delay-ms is the mean end-to-end delivery delay: slowest demand upload (gather) + return leg, both read from the topology")
	t.AddNote("asserted: centroid election strictly reduces mean grant delay, and during the outage leased grants (expiring 2x epoch after delivery) violate strictly less than frozen grants")
	return t, nil
}

// FederationBench produces the committed BENCH_federation.json baseline:
// the synthetic offload-policy sweep plus the coordinator sweep's rows,
// merged into one table over the shared federationSweepHeader, with the
// engine and control-plane benchmarks attached as the nested Engine and
// Control sub-tables — so the baseline carries every column, coordinator
// scenario, engine row, and control-plane row the CI guards
// (MissingBaselineColumns, MissingBaselinePolicies,
// MissingCoordinatorScenarios, MissingEngineScenarios,
// MissingControlScenarios, MissingChaosScenarios,
// MissingHierarchyScenarios) check for. Regenerate with
//
//	go run ./cmd/lass-sim -federation -fed-bench -quick -seed 1 -json BENCH_federation.json
func FederationBench(opt Options) (*Table, error) {
	fed, err := Federation(opt)
	if err != nil {
		return nil, err
	}
	coord, err := FederationCoordinator(opt)
	if err != nil {
		return nil, err
	}
	eng, err := EngineBench(opt)
	if err != nil {
		return nil, err
	}
	ctrl, err := ControlPlaneBench(opt)
	if err != nil {
		return nil, err
	}
	chaosTab, err := FederationChaos(opt)
	if err != nil {
		return nil, err
	}
	hierTab, err := FederationHierarchy(opt)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:        "federation-bench",
		Title:     "Bench baseline: offload-policy sweep + coordinator election/failover sweep",
		Header:    append([]string(nil), federationSweepHeader...),
		Engine:    eng,
		Control:   ctrl,
		Chaos:     chaosTab,
		Hierarchy: hierTab,
	}
	for _, src := range []*Table{fed, coord} {
		t.Rows = append(t.Rows, src.Rows...)
		for _, n := range src.Notes {
			t.AddNote("%s: %s", src.ID, n)
		}
	}
	return t, nil
}

// totalViolations sums every site's honest violation count (unresolved
// ingress included).
func totalViolations(res *federation.Result) uint64 {
	var v uint64
	for _, s := range res.Sites {
		v += s.Violations()
	}
	return v
}

// CoordinatorDelayCut returns the fractional reduction in mean
// grant-delivery delay the centroid-elected run achieves over the fixed
// placement, read from a coordinator sweep table's no-outage aggregate
// rows — the headline the bench reports.
func CoordinatorDelayCut(t *Table) (float64, error) {
	col := columnIndex(t.Header)
	for _, name := range []string{"coordinator", "missed-epochs", "grant-delay-ms"} {
		if _, ok := col[name]; !ok {
			return 0, fmt.Errorf("experiments: table %s has no %q column", t.ID, name)
		}
	}
	delay := func(prefix string) (float64, error) {
		for _, row := range t.Rows {
			if len(row) < 3 || row[2] != "all" || row[col["missed-epochs"]] != "0" {
				continue
			}
			if strings.HasPrefix(row[col["coordinator"]], prefix) {
				return strconv.ParseFloat(row[col["grant-delay-ms"]], 64)
			}
		}
		return 0, fmt.Errorf("experiments: no outage-free %s* aggregate row in %s", prefix, t.ID)
	}
	fixed, err := delay("fixed@")
	if err != nil {
		return 0, err
	}
	centroid, err := delay("centroid@")
	if err != nil {
		return 0, err
	}
	if fixed <= 0 {
		return 0, fmt.Errorf("experiments: fixed mean grant delay %v not positive", fixed)
	}
	return (fixed - centroid) / fixed, nil
}
