package experiments

import (
	"fmt"
	"time"

	"lass/internal/azure"
	"lass/internal/core"
	"lass/internal/federation"
	"lass/internal/xrand"
)

// fairshareArchetypes is the skewed-load scenario the local-vs-global
// allocation sweep runs on: one hot site whose bursty trace peaks around
// 3× its ~40 req/s capacity, and two lightly-loaded steady peers with most
// of their capacity idle. Per-site-local allocation leaves that peer
// capacity stranded: the hot site's controller only sees the demand it
// kept, while the peers' controllers see no reason to provision. The
// federation-wide allocator sees the hot site's full offered demand,
// clamps its grant at physical capacity, and spreads the displaced
// entitlement to the peers — which pre-provision for the offloads before
// they arrive.
var fairshareArchetypes = []struct {
	archetype     azure.Archetype
	meanPerMinute float64
}{
	{azure.Bursty, 1500}, // busy periods ≈ 3× mean ≈ 75 req/s vs 40 req/s capacity
	{azure.Steady, 240},  // ≈ 4 req/s mean: ~90% idle
	{azure.Steady, 240},
}

// fairshareRows synthesizes the skewed per-site trace rows
// deterministically from the seed.
func fairshareRows(opt Options) ([]azure.Row, error) {
	rng := xrand.New(opt.Seed ^ 0x6f5)
	rows := make([]azure.Row, len(fairshareArchetypes))
	for i, a := range fairshareArchetypes {
		row, err := azure.Synthesize(rng, azure.SynthConfig{
			Archetype: a.archetype, MeanPerMinute: a.meanPerMinute})
		if err != nil {
			return nil, err
		}
		rows[i] = row
	}
	return rows, nil
}

// FederationFairShare sweeps per-site-local versus federation-wide
// (global) fair-share allocation across the offload policies on the
// skewed trace scenario, with offload-aware §3.4 admission on throughout.
// Under "local" each site's controller divides its own capacity (the
// historical behaviour); under "global" a coordinator divides the
// federation's total edge capacity each epoch (site → user → function
// capped water-filling), charges the coordination round trip through the
// topology matrix, and pushes grants back down. The stranded-mC column
// reports capacity left idle while demand was unmet elsewhere (per-epoch
// mean); drift-mC reports how far the global grants moved from what local
// allocation would have chosen.
func FederationFairShare(opt Options) (*Table, error) {
	t := &Table{
		ID:    "federation-fairshare",
		Title: "Federation-wide fair share: local vs global allocation under skewed load",
		Header: append([]string(nil),
			federationSweepHeader...),
	}
	minutes := 60
	if opt.Quick {
		minutes = 6
	}
	rows, err := fairshareRows(opt)
	if err != nil {
		return nil, err
	}
	build := func() ([]core.Config, time.Duration, error) {
		return federationTraceSites(opt, rows, minutes)
	}
	policies := []string{"never", "nearest-peer", "model-driven"}
	if opt.Fed.Policy != "" {
		policies = []string{opt.Fed.Policy}
	}
	// Flatten the (alloc mode × policy) grid into independent cells so the
	// sweep parallelizes; rows are appended in grid order afterwards, so the
	// table is byte-identical at any worker count.
	type cell struct {
		global bool
		policy string
	}
	var cells []cell
	for _, global := range []bool{false, true} {
		for _, name := range policies {
			cells = append(cells, cell{global: global, policy: name})
		}
	}
	results := make([]*federation.Result, len(cells))
	err = forEachCell(len(cells), opt.SweepWorkers, func(i int) error {
		placer, err := federation.ParsePlacer(cells[i].policy)
		if err != nil {
			return err
		}
		o := opt
		o.Fed.GlobalFairShare = cells[i].global
		o.Fed.Admission = true
		if o.Fed.CloudMaxConcurrency == 0 {
			// A throttled cloud (the real FaaS concurrency limit) is
			// what makes edge-side efficiency matter: with an
			// unbounded 100ms-away cloud, stranded edge capacity is
			// free to waste.
			o.Fed.CloudMaxConcurrency = 2
		}
		sites, end, err := build()
		if err != nil {
			return err
		}
		fcfg, err := federationConfig(o, sites, placer)
		if err != nil {
			return err
		}
		fed, err := federation.New(fcfg)
		if err != nil {
			return err
		}
		res, err := fed.Run(end)
		if err != nil {
			return err
		}
		results[i] = res
		return nil
	})
	if err != nil {
		return nil, err
	}
	for _, res := range results {
		addFederationRows(t, res)
	}
	t.AddNote("offload-aware admission (§3.4 coupled to placement) is on for every row: an overloaded origin offers along the policy's placement preferences and rejects only when no site's grant has headroom")
	t.AddNote("policy=never rows allow no placement, so sheddable requests are rejected at the origin — the paper's single-cluster admission control verbatim")
	t.AddNote("alloc=global gathers per-function demand/weight from every site each epoch, water-fills the federation's total edge capacity (site → user → function), and pushes grants back after the coordination round trip")
	t.AddNote("under alloc=global, demand is estimated from offered load at the ingress, so the coordinator sees an overloaded site's full demand — not just the share it kept")
	for i, row := range rows {
		st := azure.Summarize(row.Counts)
		t.AddNote("site edge-%d trace %s (%s): mean %.0f/min, max %.0f/min, CV %.2f",
			i, row.FunctionHash, row.Trigger, st.Mean, st.Max, st.CV)
	}
	return t, nil
}

// FairShareAggregate finds the aggregate ("all") row for one
// (policy, alloc) pair of a federation sweep table; tests use it to
// compare local and global allocation.
func FairShareAggregate(t *Table, policy, alloc string) ([]string, error) {
	for _, row := range t.Rows {
		if len(row) >= 3 && row[0] == policy && row[1] == alloc && row[2] == "all" {
			return row, nil
		}
	}
	return nil, fmt.Errorf("experiments: no aggregate row for policy=%s alloc=%s in %s", policy, alloc, t.ID)
}
