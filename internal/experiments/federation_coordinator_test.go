package experiments

import (
	"encoding/json"
	"testing"
)

// TestFederationCoordinatorSweep runs the coordinator sweep in quick mode.
// The sweep hard-asserts its own invariants (centroid strictly cuts the
// mean grant delay, lease fallback strictly beats frozen grants during
// the outage), so a nil error is most of the test; the table shape and
// the headline helper are checked on top.
func TestFederationCoordinatorSweep(t *testing.T) {
	tab, err := FederationCoordinator(Options{Seed: 1, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	// Four variants × (4 sites + aggregate).
	if got, want := len(tab.Rows), 4*5; got != want {
		t.Errorf("coordinator sweep produced %d rows, want %d", got, want)
	}
	cut, err := CoordinatorDelayCut(tab)
	if err != nil {
		t.Fatal(err)
	}
	if cut <= 0 || cut >= 1 {
		t.Errorf("centroid delay cut %.3f outside (0, 1)", cut)
	}
	// The sweep's own rows must satisfy the scenario guard — that is what
	// makes a -fed-bench regenerated baseline pass it.
	raw, err := json.Marshal(tab)
	if err != nil {
		t.Fatal(err)
	}
	missing, err := MissingCoordinatorScenarios(raw)
	if err != nil {
		t.Fatal(err)
	}
	if len(missing) > 0 {
		t.Errorf("coordinator sweep itself is missing scenarios %v", missing)
	}
}

// TestMissingCoordinatorScenarios pins the guard's staleness detection on
// synthetic baselines: a pre-coordinator baseline misses everything, a
// partial one reports exactly what it lacks.
func TestMissingCoordinatorScenarios(t *testing.T) {
	legacy := []byte(`{"Header":["policy","alloc","site","violation rate"],"Rows":[["never","local","all","0.5"]]}`)
	missing, err := MissingCoordinatorScenarios(legacy)
	if err != nil {
		t.Fatal(err)
	}
	if len(missing) != 4 {
		t.Errorf("legacy baseline missing %v, want all four scenarios", missing)
	}

	partial := struct {
		Header []string
		Rows   [][]string
	}{
		Header: []string{"policy", "alloc", "site", "coordinator", "missed-epochs", "lease-exp"},
		Rows: [][]string{
			{"model-driven", "global", "edge-0", "", "", ""},
			{"model-driven", "global", "all", "centroid@1", "0", "0"},
			{"model-driven", "global", "all", "fixed@0", "3", "2"},
		},
	}
	raw, err := json.Marshal(partial)
	if err != nil {
		t.Fatal(err)
	}
	missing, err = MissingCoordinatorScenarios(raw)
	if err != nil {
		t.Fatal(err)
	}
	// Outage and lease-fallback rows exist; a frozen-grants outage row
	// (missed epochs, zero expirations) does not.
	if len(missing) != 1 || missing[0] != "frozen grants under outage" {
		t.Errorf("partial baseline missing %v, want only the frozen-grants scenario", missing)
	}

	if _, err := MissingCoordinatorScenarios([]byte("not json")); err == nil {
		t.Error("unparsable baseline accepted")
	}
}
