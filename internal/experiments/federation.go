package experiments

import (
	"fmt"
	"time"

	"lass/internal/cluster"
	"lass/internal/controller"
	"lass/internal/core"
	"lass/internal/federation"
	"lass/internal/functions"
	"lass/internal/workload"
)

// federationSites builds the three-site scenario the offload sweep runs
// on: every site serves SqueezeNet on a one-node edge box (4 cores ≈ 40
// req/s of capacity); site edge-0 takes a 3×-overload burst mid-run while
// its two peers stay lightly loaded, so shedding has both a nearby
// absorber and a cloud fallback to choose from.
func federationSites(opt Options, unit time.Duration) ([]core.Config, time.Duration, error) {
	spec, err := functions.ByName("squeezenet")
	if err != nil {
		return nil, 0, err
	}
	end := 9 * unit
	rates := [][]workload.Step{
		{{Start: 0, Rate: 20}, {Start: 3 * unit, Rate: 120}, {Start: 6 * unit, Rate: 20}},
		{{Start: 0, Rate: 10}},
		{{Start: 0, Rate: 10}},
	}
	var sites []core.Config
	for i, steps := range rates {
		wl, err := workload.NewSteps(steps)
		if err != nil {
			return nil, 0, err
		}
		sites = append(sites, core.Config{
			Cluster:    cluster.Config{Nodes: 1, CPUPerNode: 4000, MemPerNode: 8192, Policy: cluster.WorstFit},
			Controller: controller.Config{MinContainers: 1},
			Seed:       opt.Seed ^ uint64(0xfed1+i),
			Functions:  []core.FunctionConfig{{Spec: spec, Workload: wl, Prewarm: 1}},
		})
	}
	return sites, end, nil
}

// Federation sweeps the four offload policies over the three-site
// edge–cloud scenario and reports, per policy and site, where requests
// were served and the end-to-end SLO-violation rate (response time
// including network RTT, 250 ms deadline).
//
// The never policy is additionally cross-checked against standalone
// single-cluster runs of the same per-site configurations: the federation
// must reproduce those results bit-for-bit, or the experiment fails.
func Federation(opt Options) (*Table, error) {
	t := &Table{
		ID:    "federation",
		Title: "Edge–cloud federation: offload policy sweep (3 edge sites + cloud)",
		Header: []string{"policy", "site", "arrivals", "local", "to-peer", "to-cloud",
			"p95 resp ms", "violation rate"},
	}
	unit := opt.dur(time.Minute, 10*time.Second)
	for _, policy := range federation.Policies() {
		sites, end, err := federationSites(opt, unit)
		if err != nil {
			return nil, err
		}
		fed, err := federation.New(federation.Config{
			Sites:  sites,
			Policy: policy,
			Seed:   opt.Seed ^ 0xfedc,
		})
		if err != nil {
			return nil, err
		}
		res, err := fed.Run(end)
		if err != nil {
			return nil, err
		}
		if policy == federation.Never {
			if err := checkNeverBaseline(opt, unit, res); err != nil {
				return nil, err
			}
		}
		var arrivals, local, toPeer, toCloud, violated, total uint64
		for _, s := range res.Sites {
			sa := s.Core.Functions["squeezenet"].Arrivals
			arrivals += sa
			local += s.ServedLocal
			toPeer += s.OffloadedPeer
			toCloud += s.OffloadedCloud
			// Unresolved requests (still backlogged at run end) count as
			// violations: excluding them would flatter exactly the
			// policies that strand the most work.
			violated += s.Violations()
			total += s.SLO.Total() + s.Unresolved
			t.AddRow(policy.String(), s.Name,
				fmt.Sprintf("%d", sa),
				fmt.Sprintf("%d", s.ServedLocal),
				fmt.Sprintf("%d", s.OffloadedPeer),
				fmt.Sprintf("%d", s.OffloadedCloud),
				msF(s.Responses.Quantile(0.95)),
				fmt.Sprintf("%.4f", s.ViolationRate()))
		}
		t.AddRow(policy.String(), "all",
			fmt.Sprintf("%d", arrivals),
			fmt.Sprintf("%d", local),
			fmt.Sprintf("%d", toPeer),
			fmt.Sprintf("%d", toCloud),
			"",
			fmt.Sprintf("%.4f", violationRate(violated, total)))
	}
	t.AddNote("policy=never verified bit-for-bit against standalone single-cluster runs of each site")
	t.AddNote("end-to-end SLO: response (network RTT included) within 250 ms; edge-0 bursts to 3x capacity mid-run")
	t.AddNote("requests still unserved at run end count as violations, so backlogged policies are not flattered by survivorship")
	return t, nil
}

func violationRate(violated, total uint64) float64 {
	if total == 0 {
		return 0
	}
	return float64(violated) / float64(total)
}

// checkNeverBaseline re-runs each site of the never-policy federation as a
// standalone single-cluster platform and demands identical measurements —
// the acceptance bar for the federation layer being a pure superset of the
// existing stack.
func checkNeverBaseline(opt Options, unit time.Duration, fres *federation.Result) error {
	sites, end, err := federationSites(opt, unit)
	if err != nil {
		return err
	}
	for i, cfg := range sites {
		p, err := core.New(cfg)
		if err != nil {
			return err
		}
		want, err := p.Run(end)
		if err != nil {
			return err
		}
		got := fres.Sites[i].Core.Functions["squeezenet"]
		ref := want.Functions["squeezenet"]
		switch {
		case got.Arrivals != ref.Arrivals:
			return fmt.Errorf("federation: never-policy site %d arrivals %d != standalone %d", i, got.Arrivals, ref.Arrivals)
		case got.Completed != ref.Completed:
			return fmt.Errorf("federation: never-policy site %d completed %d != standalone %d", i, got.Completed, ref.Completed)
		case got.Waits.Quantile(0.95) != ref.Waits.Quantile(0.95):
			return fmt.Errorf("federation: never-policy site %d P95 wait %v != standalone %v",
				i, got.Waits.Quantile(0.95), ref.Waits.Quantile(0.95))
		case got.SLO.Violations() != ref.SLO.Violations():
			return fmt.Errorf("federation: never-policy site %d SLO violations %d != standalone %d",
				i, got.SLO.Violations(), ref.SLO.Violations())
		}
	}
	return nil
}
