package experiments

import (
	"encoding/json"
	"fmt"
	"strings"
	"time"

	"lass/internal/cluster"
	"lass/internal/controller"
	"lass/internal/core"
	"lass/internal/federation"
	"lass/internal/functions"
	"lass/internal/workload"
)

// siteBuilder produces fresh per-site configs and the run duration for one
// federation sweep iteration. Sweeps rebuild the sites per policy so every
// policy sees identical seeds and schedules.
type siteBuilder func() ([]core.Config, time.Duration, error)

// edgeSite is the standard one-node edge box of the federation scenarios:
// 4 cores ≈ 40 req/s of SqueezeNet capacity.
func edgeSite(spec functions.Spec, wl *workload.Schedule, seed uint64) core.Config {
	return core.Config{
		Cluster:    cluster.Config{Nodes: 1, CPUPerNode: 4000, MemPerNode: 8192, Policy: cluster.WorstFit},
		Controller: controller.Config{MinContainers: 1},
		Seed:       seed,
		Functions:  []core.FunctionConfig{{Spec: spec, Workload: wl, Prewarm: 1}},
	}
}

// federationSites builds the three-site scenario the synthetic offload
// sweep runs on: every site serves SqueezeNet; site edge-0 takes a
// 3×-overload burst mid-run while its two peers stay lightly loaded, so
// shedding has both a nearby absorber and a cloud fallback to choose from.
func federationSites(opt Options, unit time.Duration) ([]core.Config, time.Duration, error) {
	spec, err := functions.ByName("squeezenet")
	if err != nil {
		return nil, 0, err
	}
	end := 9 * unit
	rates := [][]workload.Step{
		{{Start: 0, Rate: 20}, {Start: 3 * unit, Rate: 120}, {Start: 6 * unit, Rate: 20}},
		{{Start: 0, Rate: 10}},
		{{Start: 0, Rate: 10}},
	}
	var sites []core.Config
	for i, steps := range rates {
		wl, err := workload.NewSteps(steps)
		if err != nil {
			return nil, 0, err
		}
		sites = append(sites, edgeSite(spec, wl, opt.Seed^uint64(0xfed1+i)))
	}
	return sites, end, nil
}

// sweepPlacers resolves the placement policies one federation sweep runs:
// every registered placer in registration order, or — when opt.Fed.Policy
// names one — just that policy. Custom placers registered through
// federation.RegisterPlacer appear automatically, one sweep row set each.
func sweepPlacers(opt Options) ([]federation.Placer, error) {
	names := federation.PlacerNames()
	if opt.Fed.Policy != "" {
		names = []string{opt.Fed.Policy}
	}
	out := make([]federation.Placer, len(names))
	for i, name := range names {
		p, err := federation.ParsePlacer(name)
		if err != nil {
			return nil, err
		}
		out[i] = p
	}
	return out, nil
}

// federationConfig assembles a federation.Config for the sweep, applying
// the command-line topology, cloud, allocation, and admission knobs from
// opt.Fed.
func federationConfig(opt Options, sites []core.Config, placer federation.Placer) (federation.Config, error) {
	if opt.Fed.OfferedLoad {
		for i := range sites {
			sites[i].Controller.OfferedLoadDemand = true
		}
	}
	cfg := federation.Config{
		Sites:                   sites,
		Placer:                  placer,
		Seed:                    opt.Seed ^ 0xfedc,
		Scheduler:               opt.Scheduler,
		CloudWarmWindow:         opt.Fed.CloudWarmWindow,
		CloudAlwaysWarm:         opt.Fed.CloudAlwaysWarm,
		CloudPricePerInvocation: opt.Fed.CloudPricePerInvocation,
		CloudPricePerGBSecond:   opt.Fed.CloudPricePerGBSecond,
		GlobalFairShare:         opt.Fed.GlobalFairShare,
		AllocEpoch:              opt.Fed.AllocEpoch,
		OffloadAwareAdmission:   opt.Fed.Admission,
		CloudMaxConcurrency:     opt.Fed.CloudMaxConcurrency,
		AllocWorkers:            opt.Fed.AllocWorkers,
	}
	switch opt.Fed.PeerSelection {
	case "":
		// NearestFirst, the historical default.
	default:
		ps, err := federation.ParsePeerSelection(opt.Fed.PeerSelection)
		if err != nil {
			return federation.Config{}, err
		}
		cfg.PeerSelection = ps
	}
	switch opt.Fed.Coordinator {
	case "":
		// Fixed at site 0, the historical default.
	default:
		el, err := federation.ParseCoordinatorElection(opt.Fed.Coordinator)
		if err != nil {
			return federation.Config{}, err
		}
		cfg.CoordinatorElection = el
	}
	switch opt.Fed.Topology {
	case "", "ring":
		// nil Topology → federation builds Ring(len(sites), PeerRTT).
	case "star":
		topo, err := federation.Star(len(sites), 5*time.Millisecond)
		if err != nil {
			return federation.Config{}, err
		}
		cfg.Topology = topo
	default:
		return federation.Config{}, fmt.Errorf("experiments: unknown federation topology %q (ring|star)", opt.Fed.Topology)
	}
	return cfg, nil
}

// federationSweepHeader is shared by the synthetic, trace-driven,
// fair-share, and coordinator sweeps; the violation rate stays the last
// column so downstream tooling can key on it. The stranded-capacity,
// cross-site-drift, coordinator, missed-epoch, lease-expiry, and
// grant-delay columns are federation-level allocator measurements,
// reported on the aggregate row (blank per site; "-"/zero under
// per-site-local allocation).
var federationSweepHeader = []string{"policy", "alloc", "site", "arrivals", "local", "to-peer",
	"to-cloud", "rejected", "cloud-cold", "cloud-cost-$", "stranded-mC", "drift-mC",
	"coordinator", "missed-epochs", "lease-exp", "grant-delay-ms",
	"p95 resp ms", "violation rate"}

// coordinatorLabel names the aggregate row's coordinator column: the
// election mode and the elected site index, or "-" under per-site-local
// allocation (no coordinator exists).
func coordinatorLabel(res *federation.Result) string {
	if !res.GlobalFairShare {
		return "-"
	}
	return fmt.Sprintf("%s@%d", res.Election, res.Coordinator)
}

// allocLabel names the allocation mode column value.
func allocLabel(global bool) string {
	if global {
		return "global"
	}
	return "local"
}

// addFederationRows appends one run's per-site and aggregate rows to the
// table.
func addFederationRows(t *Table, res *federation.Result) {
	alloc := allocLabel(res.GlobalFairShare)
	policy := res.Placer
	var arrivals, local, toPeer, toCloud, rejected, coldStarts, violated, total uint64
	var cost float64
	for _, s := range res.Sites {
		var sa uint64
		for _, fr := range s.Core.Functions {
			sa += fr.Arrivals
		}
		arrivals += sa
		local += s.ServedLocal
		toPeer += s.OffloadedPeer
		toCloud += s.OffloadedCloud
		rejected += s.Rejected
		coldStarts += s.CloudColdStarts
		cost += s.CloudCost
		// Unresolved requests (still backlogged at run end) count as
		// violations: excluding them would flatter exactly the
		// policies that strand the most work.
		violated += s.Violations()
		total += s.SLO.Total() + s.Unresolved
		t.AddRow(policy, alloc, s.Name,
			fmt.Sprintf("%d", sa),
			fmt.Sprintf("%d", s.ServedLocal),
			fmt.Sprintf("%d", s.OffloadedPeer),
			fmt.Sprintf("%d", s.OffloadedCloud),
			fmt.Sprintf("%d", s.Rejected),
			fmt.Sprintf("%d", s.CloudColdStarts),
			fmt.Sprintf("%.6f", s.CloudCost),
			"", "", "", "", "", "",
			msF(s.Responses.Quantile(0.95)),
			fmt.Sprintf("%.4f", s.ViolationRate()))
	}
	t.AddRow(policy, alloc, "all",
		fmt.Sprintf("%d", arrivals),
		fmt.Sprintf("%d", local),
		fmt.Sprintf("%d", toPeer),
		fmt.Sprintf("%d", toCloud),
		fmt.Sprintf("%d", rejected),
		fmt.Sprintf("%d", coldStarts),
		fmt.Sprintf("%.6f", cost),
		fmt.Sprintf("%.0f", res.MeanStrandedCPU),
		fmt.Sprintf("%.0f", res.MeanAllocDriftCPU),
		coordinatorLabel(res),
		fmt.Sprintf("%d", res.MissedAllocEpochs),
		fmt.Sprintf("%d", res.GrantLeaseExpirations),
		ms(res.MeanGrantDelay),
		"",
		fmt.Sprintf("%.4f", violationRate(violated, total)))
}

// baselineTable is the slice of the committed sweep-baseline JSON (the
// Table serialization, e.g. BENCH_federation.json) the CI staleness
// guards consume.
type baselineTable struct {
	Header []string
	Rows   [][]string
	// Engine is the nested engine-benchmark sub-table (nil in baselines
	// predating it; MissingEngineScenarios treats that as fully stale).
	Engine *baselineTable
	// Control is the nested control-plane benchmark sub-table (nil in
	// baselines predating it; MissingControlScenarios treats that as
	// fully stale).
	Control *baselineTable
	// Chaos is the nested chaos-sweep sub-table (nil in baselines
	// predating it; MissingChaosScenarios treats that as fully stale).
	Chaos *baselineTable
	// Hierarchy is the nested hierarchy-sweep sub-table (nil in baselines
	// predating it; MissingHierarchyScenarios treats that as fully
	// stale).
	Hierarchy *baselineTable
}

func parseBaseline(baselineJSON []byte) (*baselineTable, error) {
	var baseline baselineTable
	if err := json.Unmarshal(baselineJSON, &baseline); err != nil {
		return nil, fmt.Errorf("experiments: unparsable baseline: %w", err)
	}
	return &baseline, nil
}

// columnIndex maps a table header's column names to their positions.
func columnIndex(header []string) map[string]int {
	col := make(map[string]int, len(header))
	for i, h := range header {
		col[h] = i
	}
	return col
}

// MissingBaselineColumns compares a committed sweep-baseline JSON against
// the columns a table now produces and returns the columns the baseline
// lacks — the staleness signal both the test suite and the bench smoke
// step fail on.
func MissingBaselineColumns(baselineJSON []byte, tab *Table) ([]string, error) {
	baseline, err := parseBaseline(baselineJSON)
	if err != nil {
		return nil, err
	}
	have := columnIndex(baseline.Header)
	var missing []string
	for _, h := range tab.Header {
		if _, ok := have[h]; !ok {
			missing = append(missing, h)
		}
	}
	return missing, nil
}

// MissingBaselinePolicies compares a committed sweep-baseline JSON against
// the registered placement policies and returns the policy names lacking
// an aggregate ("all") row — the signal that a newly-registered placer's
// results were never folded into the baseline, so its drift would go
// unguarded. Pass federation.BuiltinPlacerNames for the committed
// baseline, which is regenerated from the built-in sweep.
func MissingBaselinePolicies(baselineJSON []byte, policies []string) ([]string, error) {
	baseline, err := parseBaseline(baselineJSON)
	if err != nil {
		return nil, err
	}
	have := make(map[string]bool)
	for _, row := range baseline.Rows {
		if len(row) >= 3 && row[2] == "all" {
			have[row[0]] = true
		}
	}
	var missing []string
	for _, p := range policies {
		if !have[p] {
			missing = append(missing, p)
		}
	}
	return missing, nil
}

// coordinatorScenarios are the coordinator sweep rows the baseline guard
// demands, in report order: a centroid-elected row, an outage row (missed
// epochs), a lease-fallback row (lease expirations), and a frozen-grants
// outage row (missed epochs without a single lease expiry).
var coordinatorScenarios = []string{"centroid election", "coordinator outage",
	"lease fallback", "frozen grants under outage"}

// MissingCoordinatorScenarios compares a committed sweep-baseline JSON
// against the coordinator scenarios the federation-coordinator sweep
// produces and returns the ones the baseline lacks (coordinatorScenarios).
// Together with MissingBaselineColumns this is the staleness signal that
// fails CI when BENCH_federation.json was regenerated without the
// coordinator sweep rows.
func MissingCoordinatorScenarios(baselineJSON []byte) ([]string, error) {
	baseline, err := parseBaseline(baselineJSON)
	if err != nil {
		return nil, err
	}
	col := columnIndex(baseline.Header)
	have := map[string]bool{}
	for _, name := range []string{"coordinator", "missed-epochs", "lease-exp"} {
		if _, ok := col[name]; !ok {
			// The column guard reports the missing columns themselves; with
			// no columns there can be no scenarios either.
			return append([]string(nil), coordinatorScenarios...), nil
		}
	}
	for _, row := range baseline.Rows {
		if len(row) <= col["lease-exp"] || len(row) < 3 || row[2] != "all" {
			continue
		}
		coord := row[col["coordinator"]]
		missed := row[col["missed-epochs"]] != "0" && row[col["missed-epochs"]] != ""
		expired := row[col["lease-exp"]] != "0" && row[col["lease-exp"]] != ""
		if strings.HasPrefix(coord, "centroid@") {
			have["centroid election"] = true
		}
		if missed {
			have["coordinator outage"] = true
		}
		if expired {
			have["lease fallback"] = true
		}
		if missed && !expired {
			have["frozen grants under outage"] = true
		}
	}
	var missing []string
	for _, s := range coordinatorScenarios {
		if !have[s] {
			missing = append(missing, s)
		}
	}
	return missing, nil
}

// sweepFederationPolicies runs every registered placement policy (or the
// one opt.Fed.Policy selects) over freshly built sites, appends per-site
// and aggregate rows to the table, and verifies the never policy
// bit-for-bit against standalone runs (under per-site-local allocation;
// global grants legitimately change pool sizing, so the pure-superset
// invariant is asserted on the local path).
func sweepFederationPolicies(t *Table, opt Options, build siteBuilder) error {
	placers, err := sweepPlacers(opt)
	if err != nil {
		return err
	}
	// Each policy is an independent cell: fresh sites, engine, and RNG
	// streams per cell, results stored by index, rows appended in placer
	// order afterwards — so serial and parallel sweeps emit identical rows.
	results := make([]*federation.Result, len(placers))
	err = forEachCell(len(placers), opt.SweepWorkers, func(i int) error {
		placer := placers[i]
		sites, end, err := build()
		if err != nil {
			return err
		}
		fcfg, err := federationConfig(opt, sites, placer)
		if err != nil {
			return err
		}
		fed, err := federation.New(fcfg)
		if err != nil {
			return err
		}
		res, err := fed.Run(end)
		if err != nil {
			return err
		}
		if placer.Name() == "never" && !fcfg.GlobalFairShare && !fcfg.OffloadAwareAdmission &&
			!opt.Fed.OfferedLoad {
			if err := checkNeverBaseline(build, res); err != nil {
				return err
			}
		}
		results[i] = res
		return nil
	})
	if err != nil {
		return err
	}
	for _, res := range results {
		addFederationRows(t, res)
	}
	return nil
}

// Federation sweeps every registered placement policy (the six built-ins,
// plus any custom placers registered at run time) over the three-site
// edge–cloud scenario and reports, per policy and site, where requests
// were served, the cloud cold starts and cost they incurred, and the
// end-to-end SLO-violation rate (response time including network RTT,
// 250 ms deadline).
//
// The never policy is additionally cross-checked against standalone
// single-cluster runs of the same per-site configurations: the federation
// must reproduce those results bit-for-bit, or the experiment fails.
func Federation(opt Options) (*Table, error) {
	t := &Table{
		ID:     "federation",
		Title:  "Edge–cloud federation: offload policy sweep (3 edge sites + cloud)",
		Header: federationSweepHeader,
	}
	unit := opt.dur(time.Minute, 10*time.Second)
	if err := sweepFederationPolicies(t, opt, func() ([]core.Config, time.Duration, error) {
		return federationSites(opt, unit)
	}); err != nil {
		return nil, err
	}
	t.AddNote("policy=never verified bit-for-bit against standalone single-cluster runs of each site")
	t.AddNote("end-to-end SLO: response (network RTT included) within 250 ms; edge-0 bursts to 3x capacity mid-run")
	t.AddNote("requests still unserved at run end count as violations, so backlogged policies are not flattered by survivorship")
	t.AddNote("cloud offloads pay a cold start when no warm instance is idle and accrue per-invocation + GB-second cost")
	return t, nil
}

func violationRate(violated, total uint64) float64 {
	if total == 0 {
		return 0
	}
	return float64(violated) / float64(total)
}

// checkNeverBaseline re-runs each site of the never-policy federation as a
// standalone single-cluster platform and demands identical measurements
// across every queue counter — the acceptance bar for the federation layer
// being a pure superset of the existing stack.
func checkNeverBaseline(build siteBuilder, fres *federation.Result) error {
	sites, end, err := build()
	if err != nil {
		return err
	}
	for i, cfg := range sites {
		p, err := core.New(cfg)
		if err != nil {
			return err
		}
		want, err := p.Run(end)
		if err != nil {
			return err
		}
		for _, fc := range cfg.Functions {
			fn := fc.Spec.Name
			got := fres.Sites[i].Core.Functions[fn]
			ref := want.Functions[fn]
			counters := []struct {
				name      string
				got, want uint64
			}{
				{"arrivals", got.Arrivals, ref.Arrivals},
				{"completed", got.Completed, ref.Completed},
				{"timed-out", got.TimedOut, ref.TimedOut},
				{"requeued", got.Requeued, ref.Requeued},
				{"offloaded", got.Offloaded, ref.Offloaded},
				{"rejected", got.Rejected, ref.Rejected},
				{"SLO violations", got.SLO.Violations(), ref.SLO.Violations()},
			}
			for _, c := range counters {
				if c.got != c.want {
					return fmt.Errorf("federation: never-policy site %d %s %s %d != standalone %d",
						i, fn, c.name, c.got, c.want)
				}
			}
			if g, w := got.Waits.Quantile(0.95), ref.Waits.Quantile(0.95); g != w {
				return fmt.Errorf("federation: never-policy site %d %s P95 wait %v != standalone %v", i, fn, g, w)
			}
		}
	}
	return nil
}
