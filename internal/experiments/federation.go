package experiments

import (
	"fmt"
	"time"

	"lass/internal/cluster"
	"lass/internal/controller"
	"lass/internal/core"
	"lass/internal/federation"
	"lass/internal/functions"
	"lass/internal/workload"
)

// siteBuilder produces fresh per-site configs and the run duration for one
// federation sweep iteration. Sweeps rebuild the sites per policy so every
// policy sees identical seeds and schedules.
type siteBuilder func() ([]core.Config, time.Duration, error)

// edgeSite is the standard one-node edge box of the federation scenarios:
// 4 cores ≈ 40 req/s of SqueezeNet capacity.
func edgeSite(spec functions.Spec, wl *workload.Schedule, seed uint64) core.Config {
	return core.Config{
		Cluster:    cluster.Config{Nodes: 1, CPUPerNode: 4000, MemPerNode: 8192, Policy: cluster.WorstFit},
		Controller: controller.Config{MinContainers: 1},
		Seed:       seed,
		Functions:  []core.FunctionConfig{{Spec: spec, Workload: wl, Prewarm: 1}},
	}
}

// federationSites builds the three-site scenario the synthetic offload
// sweep runs on: every site serves SqueezeNet; site edge-0 takes a
// 3×-overload burst mid-run while its two peers stay lightly loaded, so
// shedding has both a nearby absorber and a cloud fallback to choose from.
func federationSites(opt Options, unit time.Duration) ([]core.Config, time.Duration, error) {
	spec, err := functions.ByName("squeezenet")
	if err != nil {
		return nil, 0, err
	}
	end := 9 * unit
	rates := [][]workload.Step{
		{{Start: 0, Rate: 20}, {Start: 3 * unit, Rate: 120}, {Start: 6 * unit, Rate: 20}},
		{{Start: 0, Rate: 10}},
		{{Start: 0, Rate: 10}},
	}
	var sites []core.Config
	for i, steps := range rates {
		wl, err := workload.NewSteps(steps)
		if err != nil {
			return nil, 0, err
		}
		sites = append(sites, edgeSite(spec, wl, opt.Seed^uint64(0xfed1+i)))
	}
	return sites, end, nil
}

// federationConfig assembles a federation.Config for the sweep, applying
// the command-line topology and cloud knobs from opt.Fed.
func federationConfig(opt Options, sites []core.Config, policy federation.Policy) (federation.Config, error) {
	cfg := federation.Config{
		Sites:                   sites,
		Policy:                  policy,
		Seed:                    opt.Seed ^ 0xfedc,
		CloudWarmWindow:         opt.Fed.CloudWarmWindow,
		CloudAlwaysWarm:         opt.Fed.CloudAlwaysWarm,
		CloudPricePerInvocation: opt.Fed.CloudPricePerInvocation,
		CloudPricePerGBSecond:   opt.Fed.CloudPricePerGBSecond,
	}
	switch opt.Fed.Topology {
	case "", "ring":
		// nil Topology → federation builds Ring(len(sites), PeerRTT).
	case "star":
		topo, err := federation.Star(len(sites), 5*time.Millisecond)
		if err != nil {
			return federation.Config{}, err
		}
		cfg.Topology = topo
	default:
		return federation.Config{}, fmt.Errorf("experiments: unknown federation topology %q (ring|star)", opt.Fed.Topology)
	}
	return cfg, nil
}

// federationSweepHeader is shared by the synthetic and trace-driven
// sweeps; the violation rate stays the last column so downstream tooling
// can key on it.
var federationSweepHeader = []string{"policy", "site", "arrivals", "local", "to-peer", "to-cloud",
	"cloud-cold", "cloud-cost-$", "p95 resp ms", "violation rate"}

// sweepFederationPolicies runs all placement policies over freshly built
// sites, appends per-site and aggregate rows to the table, and verifies
// the never policy bit-for-bit against standalone runs.
func sweepFederationPolicies(t *Table, opt Options, build siteBuilder) error {
	for _, policy := range federation.Policies() {
		sites, end, err := build()
		if err != nil {
			return err
		}
		fcfg, err := federationConfig(opt, sites, policy)
		if err != nil {
			return err
		}
		fed, err := federation.New(fcfg)
		if err != nil {
			return err
		}
		res, err := fed.Run(end)
		if err != nil {
			return err
		}
		if policy == federation.Never {
			if err := checkNeverBaseline(build, res); err != nil {
				return err
			}
		}
		var arrivals, local, toPeer, toCloud, coldStarts, violated, total uint64
		var cost float64
		for _, s := range res.Sites {
			var sa uint64
			for _, fr := range s.Core.Functions {
				sa += fr.Arrivals
			}
			arrivals += sa
			local += s.ServedLocal
			toPeer += s.OffloadedPeer
			toCloud += s.OffloadedCloud
			coldStarts += s.CloudColdStarts
			cost += s.CloudCost
			// Unresolved requests (still backlogged at run end) count as
			// violations: excluding them would flatter exactly the
			// policies that strand the most work.
			violated += s.Violations()
			total += s.SLO.Total() + s.Unresolved
			t.AddRow(policy.String(), s.Name,
				fmt.Sprintf("%d", sa),
				fmt.Sprintf("%d", s.ServedLocal),
				fmt.Sprintf("%d", s.OffloadedPeer),
				fmt.Sprintf("%d", s.OffloadedCloud),
				fmt.Sprintf("%d", s.CloudColdStarts),
				fmt.Sprintf("%.6f", s.CloudCost),
				msF(s.Responses.Quantile(0.95)),
				fmt.Sprintf("%.4f", s.ViolationRate()))
		}
		t.AddRow(policy.String(), "all",
			fmt.Sprintf("%d", arrivals),
			fmt.Sprintf("%d", local),
			fmt.Sprintf("%d", toPeer),
			fmt.Sprintf("%d", toCloud),
			fmt.Sprintf("%d", coldStarts),
			fmt.Sprintf("%.6f", cost),
			"",
			fmt.Sprintf("%.4f", violationRate(violated, total)))
	}
	return nil
}

// Federation sweeps the four offload policies over the three-site
// edge–cloud scenario and reports, per policy and site, where requests
// were served, the cloud cold starts and cost they incurred, and the
// end-to-end SLO-violation rate (response time including network RTT,
// 250 ms deadline).
//
// The never policy is additionally cross-checked against standalone
// single-cluster runs of the same per-site configurations: the federation
// must reproduce those results bit-for-bit, or the experiment fails.
func Federation(opt Options) (*Table, error) {
	t := &Table{
		ID:     "federation",
		Title:  "Edge–cloud federation: offload policy sweep (3 edge sites + cloud)",
		Header: federationSweepHeader,
	}
	unit := opt.dur(time.Minute, 10*time.Second)
	if err := sweepFederationPolicies(t, opt, func() ([]core.Config, time.Duration, error) {
		return federationSites(opt, unit)
	}); err != nil {
		return nil, err
	}
	t.AddNote("policy=never verified bit-for-bit against standalone single-cluster runs of each site")
	t.AddNote("end-to-end SLO: response (network RTT included) within 250 ms; edge-0 bursts to 3x capacity mid-run")
	t.AddNote("requests still unserved at run end count as violations, so backlogged policies are not flattered by survivorship")
	t.AddNote("cloud offloads pay a cold start when no warm instance is idle and accrue per-invocation + GB-second cost")
	return t, nil
}

func violationRate(violated, total uint64) float64 {
	if total == 0 {
		return 0
	}
	return float64(violated) / float64(total)
}

// checkNeverBaseline re-runs each site of the never-policy federation as a
// standalone single-cluster platform and demands identical measurements
// across every queue counter — the acceptance bar for the federation layer
// being a pure superset of the existing stack.
func checkNeverBaseline(build siteBuilder, fres *federation.Result) error {
	sites, end, err := build()
	if err != nil {
		return err
	}
	for i, cfg := range sites {
		p, err := core.New(cfg)
		if err != nil {
			return err
		}
		want, err := p.Run(end)
		if err != nil {
			return err
		}
		for _, fc := range cfg.Functions {
			fn := fc.Spec.Name
			got := fres.Sites[i].Core.Functions[fn]
			ref := want.Functions[fn]
			counters := []struct {
				name      string
				got, want uint64
			}{
				{"arrivals", got.Arrivals, ref.Arrivals},
				{"completed", got.Completed, ref.Completed},
				{"timed-out", got.TimedOut, ref.TimedOut},
				{"requeued", got.Requeued, ref.Requeued},
				{"offloaded", got.Offloaded, ref.Offloaded},
				{"SLO violations", got.SLO.Violations(), ref.SLO.Violations()},
			}
			for _, c := range counters {
				if c.got != c.want {
					return fmt.Errorf("federation: never-policy site %d %s %s %d != standalone %d",
						i, fn, c.name, c.got, c.want)
				}
			}
			if g, w := got.Waits.Quantile(0.95), ref.Waits.Quantile(0.95); g != w {
				return fmt.Errorf("federation: never-policy site %d %s P95 wait %v != standalone %v", i, fn, g, w)
			}
		}
	}
	return nil
}
