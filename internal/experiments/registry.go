package experiments

import (
	"fmt"
	"sort"
	"strings"
)

// Runner produces one experiment's table.
type Runner func(Options) (*Table, error)

// Registry maps experiment IDs to runners. IDs match the per-experiment
// index in DESIGN.md §3.
var Registry = map[string]Runner{
	"table1":                 func(Options) (*Table, error) { return Table1(), nil },
	"fig3":                   Fig3,
	"fig4":                   Fig4,
	"fig5":                   Fig5,
	"fig6":                   Fig6,
	"fig7":                   Fig7,
	"fig8":                   Fig8,
	"fig9":                   Fig9,
	"federation":             Federation,
	"federation-trace":       FederationTrace,
	"federation-fairshare":   FederationFairShare,
	"federation-placers":     FederationPlacers,
	"federation-coordinator": FederationCoordinator,
	"federation-chaos":       FederationChaos,
	"federation-hierarchy":   FederationHierarchy,
	"federation-bench":       FederationBench,
	"scenario":               ScenarioRun,
	"engine-bench":           EngineBench,
	"control-bench":          ControlPlaneBench,
	"openwhisk":              OpenWhisk,
	"ablation-estimator":     AblationEstimator,
	"ablation-placement":     AblationPlacement,
	"ablation-hetmodel":      AblationHetModel,
	"ablation-ggc":           AblationGGC,
}

// IDs returns the registered experiment IDs, sorted, paper experiments
// first.
func IDs() []string {
	var papers, ablations []string
	for id := range Registry {
		if strings.HasPrefix(id, "ablation") {
			ablations = append(ablations, id)
		} else {
			papers = append(papers, id)
		}
	}
	sort.Strings(papers)
	sort.Strings(ablations)
	return append(papers, ablations...)
}

// Run executes one experiment by ID.
func Run(id string, opt Options) (*Table, error) {
	r, ok := Registry[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown experiment %q (known: %v)", id, IDs())
	}
	return r(opt)
}
