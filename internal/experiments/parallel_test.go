package experiments

import (
	"bytes"
	"fmt"
	"testing"

	"lass/internal/sim"
)

// renderTable serializes a table exactly as cmd/lass-sim writes it — the
// CSV followed by the JSON — so a byte comparison covers rows, notes, and
// ordering at once.
func renderTable(t *testing.T, tab *Table) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := tab.WriteCSV(&buf); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	if err := tab.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	return buf.Bytes()
}

// TestParallelSweepOutputIsByteIdentical is the parallel-runner determinism
// regression: every federation sweep must emit byte-identical CSV and JSON
// whether its cells run serially or across eight workers. Cells own their
// engines and RNG streams and rows are emitted in canonical order after all
// cells complete, so any divergence means shared mutable state leaked in.
func TestParallelSweepOutputIsByteIdentical(t *testing.T) {
	for _, id := range []string{
		"federation",
		"federation-fairshare",
		"federation-placers",
		"federation-coordinator",
		"federation-chaos",
	} {
		t.Run(id, func(t *testing.T) {
			run := func(workers int) []byte {
				tab, err := Run(id, Options{Seed: 7, Quick: true, SweepWorkers: workers})
				if err != nil {
					t.Fatalf("Run(%s, workers=%d): %v", id, workers, err)
				}
				return renderTable(t, tab)
			}
			serial := run(1)
			parallel := run(8)
			if !bytes.Equal(serial, parallel) {
				t.Fatalf("%s: workers=8 output differs from workers=1\n--- serial ---\n%s\n--- parallel ---\n%s",
					id, firstDiffContext(serial, parallel), firstDiffContext(parallel, serial))
			}
		})
	}
}

// TestSchedulerKindsEmitIdenticalSweeps asserts the tiered-scheduler
// contract end to end: a full federation sweep on the calendar queue emits
// the same bytes as on the binary heap. Both schedulers order timers by
// (time, sequence), so any difference is a scheduler ordering bug.
func TestSchedulerKindsEmitIdenticalSweeps(t *testing.T) {
	run := func(kind sim.SchedulerKind) []byte {
		tab, err := Federation(Options{Seed: 7, Quick: true, Scheduler: kind})
		if err != nil {
			t.Fatalf("Federation(%v): %v", kind, err)
		}
		return renderTable(t, tab)
	}
	heap := run(sim.SchedulerHeap)
	cal := run(sim.SchedulerCalendar)
	if !bytes.Equal(heap, cal) {
		t.Fatalf("calendar-scheduler sweep differs from heap:\n--- heap ---\n%s\n--- calendar ---\n%s",
			firstDiffContext(heap, cal), firstDiffContext(cal, heap))
	}
}

// firstDiffContext returns a short window of a around its first divergence
// from b, keeping failure output readable for multi-kilobyte tables.
func firstDiffContext(a, b []byte) string {
	i := 0
	for i < len(a) && i < len(b) && a[i] == b[i] {
		i++
	}
	start := i - 120
	if start < 0 {
		start = 0
	}
	end := i + 120
	if end > len(a) {
		end = len(a)
	}
	return fmt.Sprintf("(diverges at byte %d) …%s…", i, a[start:end])
}
