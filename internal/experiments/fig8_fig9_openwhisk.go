package experiments

import (
	"fmt"
	"time"

	"lass/internal/azure"
	"lass/internal/baseline"
	"lass/internal/cluster"
	"lass/internal/controller"
	"lass/internal/core"
	"lass/internal/functions"
	"lass/internal/workload"
	"lass/internal/xrand"
)

// fig8Workload builds the two-function overload scenario of §6.6/Fig 8:
// BinaryAlert (malware detection) runs alone, MobileNet bursts in at t=5,
// BinaryAlert rises at t=10 (overload begins) and again at t=15 (both
// above fair share), MobileNet ceases at t=20.
func fig8Workload(scale time.Duration) (map[string]*workload.Schedule, time.Duration, error) {
	unit := scale // one "paper minute"
	p := workload.PhaseSchedule{
		"binaryalert": {
			{Start: 0, Rate: 60},
			{Start: 10 * unit, Rate: 80},
			{Start: 15 * unit, Rate: 300},
		},
		"mobilenet-v2": {
			{Start: 0, Rate: 0},
			{Start: 5 * unit, Rate: 16},
			{Start: 20 * unit, Rate: 0},
		},
	}
	scheds, err := p.Schedules()
	return scheds, 25 * unit, err
}

// Fig8 reproduces the reclamation-policy comparison (paper Fig 8): the
// same overload scenario under the termination policy and the deflation
// policy, reporting each function's CPU allocation over time and the mean
// cluster utilization.
func Fig8(opt Options) (*Table, error) {
	t := &Table{
		ID:     "fig8",
		Title:  "Resource reclamation under overload, 2 functions (Fig 8)",
		Header: []string{"policy", "t(min)", "binaryalert mC", "mobilenet mC", "util"},
	}
	unit := opt.dur(time.Minute, 15*time.Second)
	scheds, end, err := fig8Workload(unit)
	if err != nil {
		return nil, err
	}
	utils := map[controller.ReclamationPolicy]float64{}
	perFunc := map[controller.ReclamationPolicy]map[string]float64{}
	for _, policy := range []controller.ReclamationPolicy{controller.Termination, controller.Deflation} {
		ba, err := functions.ByName("binaryalert")
		if err != nil {
			return nil, err
		}
		mo, err := functions.ByName("mobilenet-v2")
		if err != nil {
			return nil, err
		}
		p, err := core.New(core.Config{
			Cluster:    cluster.PaperCluster(), // 3 nodes × 4 cores (§6.1)
			Controller: controller.Config{Policy: policy},
			Seed:       opt.Seed ^ 0xf198,
			Functions: []core.FunctionConfig{
				{Spec: ba, Workload: scheds[ba.Name], Weight: 1},
				{Spec: mo, Workload: scheds[mo.Name], Weight: 1},
			},
		})
		if err != nil {
			return nil, err
		}
		res, err := p.Run(end)
		if err != nil {
			return nil, err
		}
		utils[policy] = res.Utilization
		perFunc[policy] = map[string]float64{}
		baCPUsum, moCPUsum, n := 0.0, 0.0, 0
		for probe := unit / 2; probe < end; probe += unit {
			baCPU := res.Functions[ba.Name].CPU.ValueAt(probe)
			moCPU := res.Functions[mo.Name].CPU.ValueAt(probe)
			baCPUsum += baCPU
			moCPUsum += moCPU
			n++
			// Print at "paper minutes" 2,7,12,17,22 (mid-phase).
			min := int(probe / unit)
			if min%5 == 2 {
				t.AddRow(policy.String(),
					fmt.Sprintf("%d", min),
					fmt.Sprintf("%.0f", baCPU),
					fmt.Sprintf("%.0f", moCPU),
					pct(res.UtilizationTS.ValueAt(probe)),
				)
			}
		}
		perFunc[policy][ba.Name] = baCPUsum / float64(n)
		perFunc[policy][mo.Name] = moCPUsum / float64(n)
	}
	t.AddNote("mean utilization: termination %s, deflation %s (paper: 78.2%% vs 83.2%%)",
		pct(utils[controller.Termination]), pct(utils[controller.Deflation]))
	t.AddNote("mean CPU, termination vs deflation: binaryalert %.0f vs %.0f, mobilenet %.0f vs %.0f (the reclaimed function keeps more capacity under deflation)",
		perFunc[controller.Termination]["binaryalert"], perFunc[controller.Deflation]["binaryalert"],
		perFunc[controller.Termination]["mobilenet-v2"], perFunc[controller.Deflation]["mobilenet-v2"])
	return t, nil
}

// fig9Setup builds the six-function, two-user Azure-trace scenario of
// §6.7: user2 has twice user1's weight; MobileNet follows the highly
// sporadic archetype. Traces are synthesized in the Azure per-minute
// schema (the loader in internal/azure accepts the real dataset too).
func fig9Setup(opt Options, minutes int) ([]core.FunctionConfig, map[string]float64, error) {
	rng := xrand.New(opt.Seed ^ 0xf199)
	type member struct {
		fn         string
		user       string
		archetype  azure.Archetype
		meanPerMin float64
	}
	// Mean rates (invocations per minute) are tuned per archetype so the
	// steady demand keeps the cluster highly utilized (~85%) and the
	// MobileNet bursts push it into overload (§6.7: "the entire cluster
	// highly utilized"; MobileNet "follows a highly sporadic pattern").
	// Note the archetypes concentrate volume: Sporadic packs its mean
	// into ~3% of minutes (18/min mean → ~10 req/s bursts), Periodic
	// into timer spikes (25/min mean → ~5 req/s spike minutes).
	members := []member{
		{"shufflenet-v2", "user1", azure.Steady, 6 * 60},  // ~6 req/s
		{"geofence", "user1", azure.Bursty, 2 * 60},       // ~6 req/s busy phases
		{"image-resizer", "user1", azure.Steady, 15 * 60}, // ~15 req/s
		{"mobilenet-v2", "user2", azure.Sporadic, 18},     // ~10 req/s bursts
		{"squeezenet", "user2", azure.Steady, 10 * 60},    // ~10 req/s
		{"binaryalert", "user2", azure.Periodic, 25},      // ~5 req/s spikes
	}
	// Synthesize full days, then — like the paper sampling 11:00-12:00
	// from the 24h dataset — pick the window where the sporadic MobileNet
	// trace is actually bursting.
	rows := make(map[string]azure.Row, len(members))
	for _, m := range members {
		row, err := azure.Synthesize(rng, azure.SynthConfig{
			Archetype:     m.archetype,
			MeanPerMinute: m.meanPerMin,
			Minutes:       azure.MinutesPerDay,
		})
		if err != nil {
			return nil, nil, err
		}
		rows[m.fn] = row
	}
	start := azure.FindActiveWindow(rows["mobilenet-v2"].Counts, minutes)
	var cfgs []core.FunctionConfig
	for _, m := range members {
		sched, err := azure.Schedule(rows[m.fn].Window(start, start+minutes))
		if err != nil {
			return nil, nil, err
		}
		spec, err := functions.ByName(m.fn)
		if err != nil {
			return nil, nil, err
		}
		cfgs = append(cfgs, core.FunctionConfig{
			Spec: spec, User: m.user, Weight: 1, Workload: sched, Prewarm: 1,
		})
	}
	users := map[string]float64{"user1": 1, "user2": 2}
	return cfgs, users, nil
}

// Fig9 reproduces the Azure-trace multi-tenant experiment (paper Fig 9):
// six functions across two weighted users replaying an hour of per-minute
// trace data under both reclamation policies.
func Fig9(opt Options) (*Table, error) {
	t := &Table{
		ID:     "fig9",
		Title:  "Reclamation policies on Azure-style traces, 6 functions (Fig 9)",
		Header: []string{"policy", "function", "user", "mean mC", "SLO att", "requeued"},
	}
	minutes := 60
	if opt.Quick {
		minutes = 12
	}
	end := time.Duration(minutes) * time.Minute
	utils := map[controller.ReclamationPolicy]float64{}
	churn := map[controller.ReclamationPolicy]uint64{}
	meanCPU := map[controller.ReclamationPolicy]map[string]float64{}
	for _, policy := range []controller.ReclamationPolicy{controller.Termination, controller.Deflation} {
		cfgs, users, err := fig9Setup(opt, minutes)
		if err != nil {
			return nil, err
		}
		p, err := core.New(core.Config{
			Cluster:    cluster.PaperCluster(),
			Controller: controller.Config{Policy: policy, MinContainers: 1},
			Seed:       opt.Seed ^ 0xf909,
			Users:      users,
			Functions:  cfgs,
		})
		if err != nil {
			return nil, err
		}
		res, err := p.Run(end)
		if err != nil {
			return nil, err
		}
		utils[policy] = res.Utilization
		churn[policy] = res.ControllerOps.Creations + res.ControllerOps.Terminations
		meanCPU[policy] = map[string]float64{}
		for _, fc := range cfgs {
			fr := res.Functions[fc.Spec.Name]
			var sum float64
			for _, pt := range fr.CPU.Points {
				sum += pt.V
			}
			mean := 0.0
			if len(fr.CPU.Points) > 0 {
				mean = sum / float64(len(fr.CPU.Points))
			}
			meanCPU[policy][fc.Spec.Name] = mean
			t.AddRow(policy.String(), fc.Spec.Name, fc.User,
				fmt.Sprintf("%.0f", mean),
				fmt.Sprintf("%.3f", fr.SLO.Attainment()),
				fmt.Sprintf("%d", fr.Requeued),
			)
		}
	}
	t.AddNote("mean utilization: termination %s, deflation %s (paper: 87.7%% vs 93%%)",
		pct(utils[controller.Termination]), pct(utils[controller.Deflation]))
	t.AddNote("container create+terminate ops: termination %d, deflation %d (paper: deflation has fewer transient changes)",
		churn[controller.Termination], churn[controller.Deflation])
	return t, nil
}

// OpenWhisk reproduces the §6.6 comparison with vanilla OpenWhisk's
// sharding-pool load balancer: the same Fig 8 overload drives the baseline
// into a cascading invoker failure, while LaSS completes the run.
func OpenWhisk(opt Options) (*Table, error) {
	t := &Table{
		ID:     "openwhisk",
		Title:  "Vanilla OpenWhisk vs LaSS under ML overload (§6.6)",
		Header: []string{"system", "function", "completed", "hung/requeued", "dropped", "nodes alive"},
	}
	unit := opt.dur(time.Minute, 15*time.Second)
	scheds, end, err := fig8Workload(unit)
	if err != nil {
		return nil, err
	}

	// Baseline: vanilla OpenWhisk.
	bl, err := baseline.New(baseline.Config{
		Nodes: 3, CPUPerNode: 4000, MemPerNode: 16384,
		Oversubscription: 2.0, Seed: opt.Seed,
	})
	if err != nil {
		return nil, err
	}
	ba, err := functions.ByName("binaryalert")
	if err != nil {
		return nil, err
	}
	mo, err := functions.ByName("mobilenet-v2")
	if err != nil {
		return nil, err
	}
	for _, s := range []functions.Spec{ba, mo} {
		if err := bl.Register(s, 100*time.Millisecond); err != nil {
			return nil, err
		}
	}
	bres, err := bl.Run(scheds, end)
	if err != nil {
		return nil, err
	}
	for _, fn := range []string{ba.Name, mo.Name} {
		t.AddRow("openwhisk", fn,
			fmt.Sprintf("%d", bres.Completed[fn]),
			fmt.Sprintf("%d", bres.Hung[fn]),
			fmt.Sprintf("%d", bres.Dropped[fn]),
			fmt.Sprintf("%d/3", bres.ResponsiveNodes),
		)
	}

	// LaSS on the identical workload.
	p, err := core.New(core.Config{
		Cluster:    cluster.PaperCluster(),
		Controller: controller.Config{Policy: controller.Deflation},
		Seed:       opt.Seed,
		Functions: []core.FunctionConfig{
			{Spec: ba, Workload: scheds[ba.Name]},
			{Spec: mo, Workload: scheds[mo.Name]},
		},
	})
	if err != nil {
		return nil, err
	}
	lres, err := p.Run(end)
	if err != nil {
		return nil, err
	}
	for _, fn := range []string{ba.Name, mo.Name} {
		fr := lres.Functions[fn]
		t.AddRow("lass", fn,
			fmt.Sprintf("%d", fr.Completed),
			fmt.Sprintf("%d", fr.Requeued),
			"0",
			"3/3",
		)
	}
	t.AddNote("expected shape: openwhisk cascades (0 nodes alive, hung/dropped requests); lass survives the whole run")
	if bres.FirstDeathAt > 0 {
		t.AddNote("first openwhisk invoker death at %.1f paper-minutes", float64(bres.FirstDeathAt)/float64(unit))
	}
	return t, nil
}
