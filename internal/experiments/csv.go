package experiments

import (
	"encoding/csv"
	"encoding/json"
	"io"
)

// WriteCSV emits the table as CSV (header row first), so the regenerated
// figures can be fed straight into a plotting tool. Notes are not
// included; they are commentary, not data.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Header); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteJSON emits the full table — header, rows, and notes — as indented
// JSON. The committed BENCH_federation.json baseline is produced this way,
// so CI diffs and plotting tools get a stable machine-readable format.
func (t *Table) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(t)
}
