package experiments

import (
	"fmt"
	"os"
	"time"

	"lass/internal/azure"
	"lass/internal/core"
	"lass/internal/functions"
	"lass/internal/workload"
	"lass/internal/xrand"
)

// federationTraceArchetypes are the per-site trace shapes the synthesized
// scenario uses: the hot site follows an on/off bursty pattern whose busy
// periods exceed its capacity, while its two peers carry steady diurnal
// load with headroom to absorb offloads.
var federationTraceArchetypes = []struct {
	archetype     azure.Archetype
	meanPerMinute float64
}{
	{azure.Bursty, 1200}, // busy periods ≈ 3× mean ≈ 60 req/s vs 40 req/s capacity
	{azure.Steady, 600},  // ≈ 10 req/s mean
	{azure.Steady, 600},
}

// federationTraceRows produces one Azure-format trace row per site: read
// from opt.Fed.TracePath when set (row i feeds site i), synthesized
// deterministically from the seed otherwise.
func federationTraceRows(opt Options) ([]azure.Row, error) {
	n := len(federationTraceArchetypes)
	if path := opt.Fed.TracePath; path != "" {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		rows, err := azure.Read(f)
		if err != nil {
			return nil, err
		}
		if len(rows) < n {
			return nil, fmt.Errorf("experiments: trace %s has %d rows, need %d (one per site)", path, len(rows), n)
		}
		return rows[:n], nil
	}
	rng := xrand.New(opt.Seed ^ 0x7ace)
	rows := make([]azure.Row, n)
	for i, a := range federationTraceArchetypes {
		row, err := azure.Synthesize(rng, azure.SynthConfig{Archetype: a.archetype, MeanPerMinute: a.meanPerMinute})
		if err != nil {
			return nil, err
		}
		rows[i] = row
	}
	return rows, nil
}

// federationTraceSites builds the trace-driven scenario: each edge site's
// arrival schedule is its own trace row's per-minute counts, windowed to
// the minutes-long slice where the hot site's trace is busiest (the same
// aligned window for every site, mirroring the paper's §6.7 choice of an
// active hour from the full-day trace).
func federationTraceSites(opt Options, rows []azure.Row, minutes int) ([]core.Config, time.Duration, error) {
	spec, err := functions.ByName("squeezenet")
	if err != nil {
		return nil, 0, err
	}
	start := azure.FindActiveWindow(rows[0].Counts, minutes)
	var sites []core.Config
	for i, row := range rows {
		counts := row.Window(start, start+minutes)
		if len(counts) < minutes {
			return nil, 0, fmt.Errorf("experiments: trace row %d has %d minutes in window [%d,%d)",
				i, len(counts), start, start+minutes)
		}
		wl, err := workload.FromPerMinuteCounts(counts)
		if err != nil {
			return nil, 0, err
		}
		sites = append(sites, edgeSite(spec, wl, opt.Seed^uint64(0xace1+i)))
	}
	return sites, time.Duration(minutes) * time.Minute, nil
}

// FederationTrace sweeps the offload policies over a trace-driven
// federation: instead of synthetic step workloads, each edge site replays
// its own Azure-format trace row (per-minute invocation counts), so the
// placement policies face realistic burst shapes rather than square waves.
// Rows are synthesized deterministically by default and can be replaced
// with genuine dataset rows via the trace-path option. Columns match the
// synthetic federation sweep, including the cloud cold-start and cost
// axes, and the never policy is verified bit-for-bit against standalone
// single-cluster replays of the same rows.
func FederationTrace(opt Options) (*Table, error) {
	t := &Table{
		ID:     "federation-trace",
		Title:  "Edge–cloud federation: offload policy sweep on Azure-format traces",
		Header: federationSweepHeader,
	}
	minutes := 60
	if opt.Quick {
		minutes = 6
	}
	rows, err := federationTraceRows(opt)
	if err != nil {
		return nil, err
	}
	if err := sweepFederationPolicies(t, opt, func() ([]core.Config, time.Duration, error) {
		return federationTraceSites(opt, rows, minutes)
	}); err != nil {
		return nil, err
	}
	source := "synthesized (deterministic per seed)"
	if opt.Fed.TracePath != "" {
		source = opt.Fed.TracePath
	}
	t.AddNote("trace rows: %s; %d-minute window aligned to the hot site's busiest slice", source, minutes)
	for i, row := range rows {
		st := azure.Summarize(row.Counts)
		t.AddNote("site edge-%d trace %s (%s): mean %.0f/min, max %.0f/min, CV %.2f",
			i, row.FunctionHash, row.Trigger, st.Mean, st.Max, st.CV)
	}
	t.AddNote("policy=never verified bit-for-bit against standalone single-cluster replays of each site's trace")
	return t, nil
}
