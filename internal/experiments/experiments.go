// Package experiments regenerates every table and figure of the paper's
// evaluation (§6) on the simulated substrate. Each experiment returns a
// Table whose rows mirror what the paper plots; cmd/lass-bench prints them
// and the repository-level benchmarks assert their shapes.
//
// DESIGN.md §3 is the index: experiment IDs, workloads, and the modules
// each one exercises. EXPERIMENTS.md records paper-vs-measured values.
package experiments

import (
	"fmt"
	"io"
	"strings"
	"time"

	"lass/internal/sim"
)

// Table is a printable experiment result.
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
	// Engine, when present, is the nested engine-benchmark sub-table
	// (events/sec and allocs across scheduler implementations) the
	// fed-bench baseline carries alongside the sweep rows. Omitted from
	// the JSON when nil, so older baselines parse unchanged.
	Engine *Table `json:",omitempty"`
	// Control, when present, is the nested control-plane benchmark
	// sub-table (epochs/sec and allocs/epoch, cold vs warm sizing and
	// allocation) the fed-bench baseline carries. Omitted when nil.
	Control *Table `json:",omitempty"`
	// Chaos, when present, is the nested chaos-sweep sub-table (mean/p95
	// violations and missed epochs per election x grant-lease variant
	// across seeded failure replicates) the fed-bench baseline carries.
	// Omitted when nil.
	Chaos *Table `json:",omitempty"`
	// Hierarchy, when present, is the nested hierarchy-sweep sub-table
	// (flat vs quota-tree borrowing vs borrowing + cross-site reclaim on
	// the starved/borrower/donor metro) the fed-bench baseline carries.
	// Omitted when nil.
	Hierarchy *Table `json:",omitempty"`
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// AddNote appends a free-form note printed under the table.
func (t *Table) AddNote(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Fprint writes the table in aligned plain text.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	printRow := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts[i] = fmt.Sprintf("%-*s", widths[i], c)
			} else {
				parts[i] = c
			}
		}
		fmt.Fprintln(w, "  "+strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	printRow(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	printRow(sep)
	for _, row := range t.Rows {
		printRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// Options tunes experiment durations: Quick mode shortens simulated time
// for use inside go test benchmarks; full mode matches the paper's
// durations.
type Options struct {
	Seed  uint64
	Quick bool
	// SweepWorkers is how many cells of a policy/seed/trace sweep run
	// concurrently (0 or 1 = serial, the historical behaviour). Cells are
	// independent simulations with private engines and RNG streams, and
	// rows are emitted in canonical order after all cells complete, so the
	// output is byte-identical at any worker count.
	SweepWorkers int
	// Scheduler selects the engine's timer-queue implementation for every
	// simulation an experiment builds. All kinds produce identical
	// results; see sim.SchedulerKind.
	Scheduler sim.SchedulerKind
	// Fed tunes the federation experiments (topology, trace source,
	// cloud realism); the zero value keeps the defaults.
	Fed FedOptions
}

// FedOptions are the federation-experiment knobs cmd/lass-sim exposes.
type FedOptions struct {
	// Policy, when set, restricts the sweep to the single named placement
	// policy (any name in the placer registry, including custom placers
	// registered via federation.RegisterPlacer); empty sweeps every
	// registered policy.
	Policy string
	// Topology selects the inter-site topology: "" or "ring" (the
	// original ring-distance model) or "star" (site 0 as hub).
	Topology string
	// TracePath optionally drives the federation-trace experiment's
	// sites from a real Azure-schema CSV (row i feeds site i) instead of
	// deterministically synthesized rows.
	TracePath string
	// CloudWarmWindow, CloudAlwaysWarm, and the price fields pass
	// through to federation.Config; zero values keep its defaults.
	CloudWarmWindow         time.Duration
	CloudAlwaysWarm         bool
	CloudPricePerInvocation float64
	CloudPricePerGBSecond   float64
	// GlobalFairShare runs the sweeps under the federation-wide §4.1
	// allocator instead of per-site-local allocation; AllocEpoch tunes
	// its period (zero keeps the 5s default).
	GlobalFairShare bool
	AllocEpoch      time.Duration
	// Coordinator selects how the global allocator's coordinator site is
	// placed: "" or "fixed" (site 0, the historical behaviour) or
	// "centroid" (the topology's weighted RTT centroid).
	Coordinator string
	// Admission turns on offload-aware §3.4 admission control.
	Admission bool
	// OfferedLoad sets ControllerConfig.OfferedLoadDemand on every site,
	// so origins keep estimating demand from offered load (shed requests
	// included) even under per-site-local allocation.
	OfferedLoad bool
	// PeerSelection picks the shed-target peer: "" or "nearest"
	// (strict RTT order) or "p2c" (power-of-two-choices by headroom).
	PeerSelection string
	// CloudMaxConcurrency caps concurrent cloud instances per function
	// (0 = unbounded).
	CloudMaxConcurrency int
	// AllocWorkers bounds the worker pool the global allocator uses for
	// its per-site feasibility clamps (≤1 = serial). Grants are
	// byte-identical at any worker count; only coordinator wall-clock
	// changes.
	AllocWorkers int
	// ScenarioPath names a declarative scenario file for the scenario
	// experiment; empty runs every committed scenarios/*.yaml.
	ScenarioPath string
	// ChaosSeed, when positive, overrides the base chaos seed of the
	// chaos and scenario sweeps (replicate r draws seed ChaosSeed+r);
	// <= 0 keeps the derived (chaos sweep) or authored (scenario) seed.
	ChaosSeed int64
	// ChaosReplicates is how many seeded failure realizations each chaos
	// sweep variant (or scenario) runs; 0 keeps the per-experiment
	// default (8 for federation-chaos, 1 for scenario).
	ChaosReplicates int
}

// dur picks between the full (paper) and quick durations.
func (o Options) dur(full, quick time.Duration) time.Duration {
	if o.Quick {
		return quick
	}
	return full
}

func ms(d time.Duration) string {
	return fmt.Sprintf("%.1f", float64(d)/float64(time.Millisecond))
}

func msF(seconds float64) string {
	return fmt.Sprintf("%.1f", seconds*1000)
}

func pct(f float64) string {
	return fmt.Sprintf("%.1f%%", f*100)
}
