package experiments

import (
	"bytes"
	"testing"
)

// TestControlPlaneBenchRows runs the quick control-plane benchmark and
// checks its hard-asserted headlines hold (zero steady-state allocations
// per epoch, warm ≥ 3× cold — ControlPlaneBench errors otherwise) and that
// the table carries exactly the scenario rows the baseline guard pins.
func TestControlPlaneBenchRows(t *testing.T) {
	tab, err := ControlPlaneBench(Options{Seed: 1, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != len(controlScenarios) {
		t.Fatalf("control-bench has %d rows, want the %d scenarios %v",
			len(tab.Rows), len(controlScenarios), controlScenarios)
	}
	for i, want := range controlScenarios {
		if tab.Rows[i][0] != want {
			t.Fatalf("control-bench row %d is %s, want %s", i, tab.Rows[i][0], want)
		}
	}
}

// TestControlSwingParallelMatchesSerial pins the worker pool at the bench
// harness level: the serial and 8-worker swing scenarios must hand the
// same grants to every site at every epoch (the per-epoch sizing state is
// deterministic, so equal sizing inputs + a byte-identical allocator mean
// equal DesiredCPU trajectories).
func TestControlSwingParallelMatchesSerial(t *testing.T) {
	serial := newControlPlane(1, 20, 6)
	par := newControlPlane(1, 20, 6)
	par.alloc.Workers = 8
	for e := 0; e < 12; e++ {
		serial.swing(e)
		par.swing(e)
		if err := serial.epoch(); err != nil {
			t.Fatal(err)
		}
		if err := par.epoch(); err != nil {
			t.Fatal(err)
		}
		for i := range serial.sites {
			for j, fd := range serial.sites[i].Functions {
				if got := par.sites[i].Functions[j].DesiredCPU; got != fd.DesiredCPU {
					t.Fatalf("epoch %d site %s fn %s: parallel desired %d, serial %d",
						e, serial.sites[i].Site, fd.Name, got, fd.DesiredCPU)
				}
			}
		}
	}
}

// TestMissingControlScenarios covers the baseline staleness guard: a
// baseline without the nested Control table (or with an incomplete one)
// must report the absent scenario rows; a freshly generated control table
// must report none.
func TestMissingControlScenarios(t *testing.T) {
	missing, err := MissingControlScenarios([]byte(`{"Header":["policy"],"Rows":[]}`))
	if err != nil {
		t.Fatal(err)
	}
	if len(missing) != len(controlScenarios) {
		t.Fatalf("pre-Control baseline reports %v missing, want all of %v", missing, controlScenarios)
	}
	partial := []byte(`{"Header":["policy"],"Rows":[],
		"Control":{"Header":["scenario"],"Rows":[["cold"],["steady"]]}}`)
	missing, err = MissingControlScenarios(partial)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"swing", "swing-parallel"}
	if len(missing) != len(want) {
		t.Fatalf("partial baseline reports %v missing, want %v", missing, want)
	}
	for i := range want {
		if missing[i] != want[i] {
			t.Fatalf("partial baseline reports %v missing, want %v", missing, want)
		}
	}
	tab, err := ControlPlaneBench(Options{Seed: 1, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	full := &Table{ID: "federation-bench", Header: federationSweepHeader, Control: tab}
	var buf bytes.Buffer
	if err := full.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	missing, err = MissingControlScenarios(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if len(missing) != 0 {
		t.Fatalf("fresh control table reports %v missing, want none", missing)
	}
}
