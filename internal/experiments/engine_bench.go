package experiments

import (
	"fmt"
	"runtime"
	"time"

	"lass/internal/azure"
	"lass/internal/core"
	"lass/internal/federation"
	"lass/internal/functions"
	"lass/internal/sim"
	"lass/internal/workload"
	"lass/internal/xrand"
)

// EngineStats is one measured engine-harness run: how many simulation
// events fired, how long the run took, and how much it allocated.
type EngineStats struct {
	Scenario string
	Engine   string
	Events   uint64
	Wall     time.Duration
	Allocs   uint64 // heap allocations during the run
	Bytes    uint64 // heap bytes allocated during the run
}

// EventsPerSec is the harness's throughput headline.
func (s EngineStats) EventsPerSec() float64 {
	if s.Wall <= 0 {
		return 0
	}
	return float64(s.Events) / s.Wall.Seconds()
}

// AllocsPerEvent is the steady-state allocation headline: the pooled
// engine and request paths should hold this near zero.
func (s EngineStats) AllocsPerEvent() float64 {
	if s.Events == 0 {
		return 0
	}
	return float64(s.Allocs) / float64(s.Events)
}

// EngineNames are the timer-queue implementations the churn harness
// compares: the pre-refactor pointer-event heap kept as a frozen reference
// (sim.RefEngine), and the value-typed heap and calendar schedulers behind
// the production engine.
var EngineNames = []string{"ref-heap", "heap", "calendar"}

// measure runs fn and returns its wall time and exact heap allocation
// deltas (runtime counters, not sampled).
//
//lass:wallclock the harness measures real elapsed time; results go to the bench table, not the simulation.
func measure(fn func()) (wall time.Duration, allocs, bytes uint64) {
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	fn()
	wall = time.Since(start)
	runtime.ReadMemStats(&after)
	return wall, after.Mallocs - before.Mallocs, after.TotalAlloc - before.TotalAlloc
}

// churnDelay draws the next event delay for the churn harness: a spread of
// microsecond-to-millisecond gaps, the regime the calendar queue's bucket
// width estimation targets.
func churnDelay(rng *xrand.Rand) time.Duration {
	return time.Duration(1+rng.Intn(1000)) * time.Microsecond
}

// churnChains and churnDecoyFlush size the churn harness's pending set:
// churnChains concurrent self-rescheduling chains plus up to churnDecoyFlush
// outstanding decoys keep several thousand timers pending at all times —
// the regime a metro-scale run actually operates in, where the pointer-heap
// reference pays for scattered per-event allocations on every sift.
const (
	churnChains     = 4096
	churnDecoyFlush = 1024
)

// EngineChurn measures a pure scheduler workload on the named engine:
// total self-rescheduling timer chains with a 25% mix of scheduled-then-
// cancelled decoys, so push, pop, cancel, and lazy-delete compaction all do
// real work. The same seed drives every engine, so the fired-event counts
// match across implementations.
func EngineChurn(engine string, total int, seed uint64) (EngineStats, error) {
	st := EngineStats{Scenario: "churn", Engine: engine}
	switch engine {
	case "ref-heap":
		eng := sim.NewRefEngine()
		rng := xrand.New(seed)
		noop := func() {}
		var decoys []*sim.RefEvent
		scheduled := 0
		var step func()
		step = func() {
			if scheduled >= total {
				return
			}
			d := churnDelay(rng)
			eng.After(d, step)
			scheduled++
			if scheduled%4 == 0 {
				decoys = append(decoys, eng.After(2*d, noop))
				if len(decoys) >= churnDecoyFlush {
					for _, ev := range decoys {
						ev.Cancel()
					}
					decoys = decoys[:0]
				}
			}
		}
		st.Wall, st.Allocs, st.Bytes = measure(func() {
			for i := 0; i < churnChains && scheduled < total; i++ {
				eng.After(churnDelay(rng), step)
				scheduled++
			}
			eng.Run()
		})
		st.Events = eng.Fired()
	case "heap", "calendar":
		kind, err := sim.ParseSchedulerKind(engine)
		if err != nil {
			return st, err
		}
		eng := sim.NewEngineWithScheduler(kind)
		rng := xrand.New(seed)
		noop := func() {}
		var decoys []sim.Event
		scheduled := 0
		var step func()
		step = func() {
			if scheduled >= total {
				return
			}
			d := churnDelay(rng)
			eng.After(d, step)
			scheduled++
			if scheduled%4 == 0 {
				decoys = append(decoys, eng.After(2*d, noop))
				if len(decoys) >= churnDecoyFlush {
					for _, ev := range decoys {
						ev.Cancel()
					}
					decoys = decoys[:0]
				}
			}
		}
		st.Wall, st.Allocs, st.Bytes = measure(func() {
			for i := 0; i < churnChains && scheduled < total; i++ {
				eng.After(churnDelay(rng), step)
				scheduled++
			}
			eng.Run()
		})
		st.Events = eng.Fired()
	default:
		return st, fmt.Errorf("experiments: unknown churn engine %q (want one of %v)", engine, EngineNames)
	}
	return st, nil
}

// metroSites builds the metro-scale scenario: sites edge boxes, each
// replaying its own synthesized steady trace for minutes of simulated
// time, all on one shared engine under the never policy — the pure
// many-site hot path with no offload traffic in the way.
func metroSites(opt Options, nsites, minutes int, mean float64) ([]core.Config, error) {
	spec, err := functions.ByName("squeezenet")
	if err != nil {
		return nil, err
	}
	rng := xrand.New(opt.Seed ^ 0x3e7a0)
	sites := make([]core.Config, nsites)
	for i := range sites {
		row, err := azure.Synthesize(rng, azure.SynthConfig{
			Archetype: azure.Steady, MeanPerMinute: mean, Minutes: minutes})
		if err != nil {
			return nil, err
		}
		wl, err := workload.FromPerMinuteCounts(row.Counts)
		if err != nil {
			return nil, err
		}
		sites[i] = edgeSite(spec, wl, opt.Seed^uint64(0x3e7a1+i))
	}
	return sites, nil
}

// MetroDay measures the full simulator hot path at metro scale: nsites
// edge sites replay minutes of trace-driven load on one shared engine
// (arrival streams, dispatch, controllers, metric sampling — the whole
// stack). The returned stats cover only the Run phase, not construction.
func MetroDay(opt Options, engine string, nsites, minutes int) (EngineStats, error) {
	st := EngineStats{Scenario: "metro-day", Engine: engine}
	kind, err := sim.ParseSchedulerKind(engine)
	if err != nil {
		return st, err
	}
	sites, err := metroSites(opt, nsites, minutes, 15)
	if err != nil {
		return st, err
	}
	placer, err := federation.ParsePlacer("never")
	if err != nil {
		return st, err
	}
	fcfg, err := federationConfig(opt, sites, placer)
	if err != nil {
		return st, err
	}
	fcfg.Scheduler = kind
	fed, err := federation.New(fcfg)
	if err != nil {
		return st, err
	}
	end := time.Duration(minutes) * time.Minute
	var runErr error
	st.Wall, st.Allocs, st.Bytes = measure(func() {
		_, runErr = fed.Run(end)
	})
	if runErr != nil {
		return st, runErr
	}
	st.Events = fed.Engine.Fired()
	return st, nil
}

// engineBenchHeader is the engine sub-table's shape; the scenario and
// engine columns are what MissingEngineScenarios keys on.
var engineBenchHeader = []string{"scenario", "engine", "events", "wall-ms",
	"events/sec", "allocs", "allocs/event", "bytes/event"}

func addEngineRow(t *Table, s EngineStats) {
	t.AddRow(s.Scenario, s.Engine,
		fmt.Sprintf("%d", s.Events),
		fmt.Sprintf("%.1f", float64(s.Wall)/float64(time.Millisecond)),
		fmt.Sprintf("%.0f", s.EventsPerSec()),
		fmt.Sprintf("%d", s.Allocs),
		fmt.Sprintf("%.4f", s.AllocsPerEvent()),
		fmt.Sprintf("%.1f", float64(s.Bytes)/float64(s.Events)))
}

// EngineBench measures the engine hot path before and after the tiered-
// scheduler refactor: the churn micro-harness on the frozen pre-refactor
// reference engine and on both production schedulers, then the metro-day
// whole-stack harness on both schedulers. Quick mode shrinks the event
// budget and the metro scale so baseline regeneration stays fast; the
// wall-clock columns vary with the host, but the scenario/engine rows —
// what the CI staleness guard checks — are fixed.
func EngineBench(opt Options) (*Table, error) {
	t := &Table{
		ID:     "engine-bench",
		Title:  "Engine hot path: events/sec and allocs across scheduler implementations",
		Header: engineBenchHeader,
	}
	churn := 2_000_000
	nsites, minutes := 100, 24*60
	if opt.Quick {
		churn = 200_000
		nsites, minutes = 10, 60
	}
	for _, engine := range EngineNames {
		s, err := EngineChurn(engine, churn, opt.Seed^0xc4a7)
		if err != nil {
			return nil, err
		}
		addEngineRow(t, s)
	}
	for _, engine := range []string{"heap", "calendar"} {
		s, err := MetroDay(opt, engine, nsites, minutes)
		if err != nil {
			return nil, err
		}
		addEngineRow(t, s)
	}
	t.AddNote("churn: %d self-rescheduling timer chains with a 25%% cancelled-decoy mix; same seed on every engine", churn)
	t.AddNote("metro-day: %d edge sites replaying %d minutes of steady trace load on one shared engine, never policy", nsites, minutes)
	t.AddNote("ref-heap is the pre-refactor pointer-event engine kept frozen in sim/reference.go as the before baseline")
	t.AddNote("wall-clock and events/sec vary with the host; the scenario/engine row set is what the baseline guard pins")
	return t, nil
}

// engineScenarios are the (scenario, engine) rows the committed baseline's
// nested Engine table must carry, in report order.
var engineScenarios = []string{
	"churn/ref-heap", "churn/heap", "churn/calendar",
	"metro-day/heap", "metro-day/calendar",
}

// MissingEngineScenarios compares a committed sweep-baseline JSON against
// the engine-benchmark rows EngineBench produces and returns the
// scenario/engine pairs the baseline's nested Engine table lacks — the
// staleness signal that BENCH_federation.json was regenerated without the
// engine sub-table. Baselines predating the Engine field report every
// scenario missing.
func MissingEngineScenarios(baselineJSON []byte) ([]string, error) {
	baseline, err := parseBaseline(baselineJSON)
	if err != nil {
		return nil, err
	}
	if baseline.Engine == nil {
		return append([]string(nil), engineScenarios...), nil
	}
	col := columnIndex(baseline.Engine.Header)
	for _, name := range []string{"scenario", "engine"} {
		if _, ok := col[name]; !ok {
			return append([]string(nil), engineScenarios...), nil
		}
	}
	have := map[string]bool{}
	for _, row := range baseline.Engine.Rows {
		if len(row) > col["scenario"] && len(row) > col["engine"] {
			have[row[col["scenario"]]+"/"+row[col["engine"]]] = true
		}
	}
	var missing []string
	for _, s := range engineScenarios {
		if !have[s] {
			missing = append(missing, s)
		}
	}
	return missing, nil
}
