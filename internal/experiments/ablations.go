package experiments

import (
	"fmt"
	"time"

	"lass/internal/cluster"
	"lass/internal/controller"
	"lass/internal/core"
	"lass/internal/dispatch"
	"lass/internal/functions"
	"lass/internal/queuing"
	"lass/internal/sim"
	"lass/internal/workload"
	"lass/internal/xrand"
)

// AblationEstimator compares the dual-window burst detector (§5) against a
// plain EWMA-only estimator on a bursty workload: the burst detector must
// scale up faster and violate the SLO less.
func AblationEstimator(opt Options) (*Table, error) {
	t := &Table{
		ID:     "ablation-estimator",
		Title:  "Dual-window burst detection vs EWMA-only (design choice, §5)",
		Header: []string{"estimator", "SLO attainment", "P95 wait(ms)", "peak containers"},
	}
	run := func(noBurst bool) (float64, float64, float64, error) {
		spec := functions.MicroBenchmark(100 * time.Millisecond)
		// Quiet 5 req/s, then a 10x burst.
		wl, err := workload.NewSteps([]workload.Step{
			{Start: 0, Rate: 5},
			{Start: 4 * time.Minute, Rate: 50},
			{Start: 6 * time.Minute, Rate: 5},
		})
		if err != nil {
			return 0, 0, 0, err
		}
		p, err := core.New(core.Config{
			Cluster:    cluster.PaperCluster(),
			Controller: controller.Config{NoBurstDetection: noBurst, MinContainers: 1},
			Seed:       opt.Seed ^ 0xab1a,
			Functions:  []core.FunctionConfig{{Spec: spec, Workload: wl, Prewarm: 1}},
		})
		if err != nil {
			return 0, 0, 0, err
		}
		res, err := p.Run(8 * time.Minute)
		if err != nil {
			return 0, 0, 0, err
		}
		fr := res.Functions[spec.Name]
		return fr.SLO.Attainment(), fr.Waits.Quantile(0.95), fr.Containers.Max(), nil
	}
	for _, mode := range []struct {
		name    string
		noBurst bool
	}{{"dual-window", false}, {"ewma-only", true}} {
		att, p95, peak, err := run(mode.noBurst)
		if err != nil {
			return nil, err
		}
		t.AddRow(mode.name, fmt.Sprintf("%.3f", att), msF(p95), fmt.Sprintf("%.0f", peak))
	}
	t.AddNote("expected shape: dual-window attains a higher SLO fraction during the 10x burst")
	return t, nil
}

// AblationPlacement compares placement policies under the Fig 8 overload
// with the termination policy, where fragmentation hurts most.
func AblationPlacement(opt Options) (*Table, error) {
	t := &Table{
		ID:     "ablation-placement",
		Title:  "Placement policy vs utilization under overload (design choice)",
		Header: []string{"placement", "utilization", "largest free block(mC)"},
	}
	unit := opt.dur(time.Minute, 15*time.Second)
	for _, pol := range []cluster.PlacementPolicy{cluster.FirstFit, cluster.BestFit, cluster.WorstFit} {
		scheds, end, err := fig8Workload(unit)
		if err != nil {
			return nil, err
		}
		ba, _ := functions.ByName("binaryalert")
		mo, _ := functions.ByName("mobilenet-v2")
		clCfg := cluster.PaperCluster()
		clCfg.Policy = pol
		p, err := core.New(core.Config{
			Cluster:    clCfg,
			Controller: controller.Config{Policy: controller.Termination},
			Seed:       opt.Seed ^ 0xab1b,
			Functions: []core.FunctionConfig{
				{Spec: ba, Workload: scheds[ba.Name]},
				{Spec: mo, Workload: scheds[mo.Name]},
			},
		})
		if err != nil {
			return nil, err
		}
		res, err := p.Run(end)
		if err != nil {
			return nil, err
		}
		t.AddRow(pol.String(), pct(res.Utilization), fmt.Sprintf("%d", res.LargestFreeEnd))
	}
	t.AddNote("fragmentation interacts with standard-container fit; all policies keep fair-share guarantees")
	return t, nil
}

// AblationHetModel shows why the Alves worst-case bound matters (§3.2):
// sizing a deflated pool with the homogeneous model on the mean rate
// under-provisions and violates the SLO, while the heterogeneous bound
// holds it.
func AblationHetModel(opt Options) (*Table, error) {
	t := &Table{
		ID:     "ablation-hetmodel",
		Title:  "Heterogeneous worst-case bound vs homogeneous-mean sizing (§3.2)",
		Header: []string{"model", "lambda", "containers", "P95 wait(ms)", "met(100ms)"},
	}
	spec, err := functions.ByName("squeezenet")
	if err != nil {
		return nil, err
	}
	slo := queuing.SLO{Deadline: 100 * time.Millisecond, Percentile: 0.95, WaitingOnly: true}
	duration := opt.dur(20*time.Minute, 5*time.Minute)
	lambda := 120.0
	// An existing pool of heavily deflated containers (deflation beyond
	// the slack region: 35% of standard CPU); the question is how many
	// *standard* containers to add — the exact situation of Fig 4, where
	// the two models disagree. The gap between the models grows with the
	// pool's heterogeneity, so the base pool is large.
	deflFrac := 0.35
	baseCount := 20
	muStd := spec.ServiceRate()
	muDefl := spec.RateAt(deflFrac)
	base := make([]float64, baseCount)
	for i := range base {
		base[i] = muDefl
	}

	// Homogeneous-mean sizing: treat the mixed pool as c identical
	// containers at the pool's mean rate.
	addHomog := -1
	for n := 0; n < 10000; n++ {
		c := baseCount + n
		total := float64(baseCount)*muDefl + float64(n)*muStd
		m := queuing.MMC{Lambda: lambda, Mu: total / float64(c), C: c}
		if !m.Stable() {
			continue
		}
		p, err := m.ProbWaitLE(0.1)
		if err != nil {
			return nil, err
		}
		if p >= slo.Percentile {
			addHomog = n
			break
		}
	}
	if addHomog < 0 {
		return nil, fmt.Errorf("ablation: homogeneous scan exhausted")
	}
	addHet, err := queuing.AdditionalHetContainers(lambda, base, muStd, slo)
	if err != nil {
		return nil, err
	}

	measure := func(add int) (float64, error) {
		engine := sim.NewEngine()
		cl, err := cluster.New(cluster.Config{Nodes: 30, CPUPerNode: 4000, MemPerNode: 16384})
		if err != nil {
			return 0, err
		}
		q, err := dispatch.NewQueue(engine, spec, slo.Deadline, xrand.New(opt.Seed^uint64(add)))
		if err != nil {
			return 0, err
		}
		place := func(cpu int64) error {
			cc, err := cl.PlaceDeflated(spec.Name, spec.CPUMillis, cpu, spec.MemoryMiB)
			if err != nil {
				return err
			}
			if err := cl.MarkRunning(cc); err != nil {
				return err
			}
			return q.AddContainer(cc)
		}
		for i := 0; i < baseCount; i++ {
			if err := place(int64(deflFrac * float64(spec.CPUMillis))); err != nil {
				return 0, err
			}
		}
		for i := 0; i < add; i++ {
			if err := place(spec.CPUMillis); err != nil {
				return 0, err
			}
		}
		rng := xrand.New(opt.Seed ^ 0xab1c ^ uint64(add))
		tt := time.Duration(0)
		for {
			tt += time.Duration(rng.Exp(lambda) * float64(time.Second))
			if tt > duration {
				break
			}
			engine.Schedule(tt, func() { q.Arrive() })
		}
		engine.Run()
		return q.Waits.Quantile(0.95), nil
	}

	for _, m := range []struct {
		name string
		add  int
	}{{"homogeneous-mean", addHomog}, {"alves-worst-case", addHet}} {
		p95, err := measure(m.add)
		if err != nil {
			return nil, err
		}
		t.AddRow(m.name, fmt.Sprintf("%.0f", lambda),
			fmt.Sprintf("%d+%d", baseCount, m.add),
			msF(p95), fmt.Sprintf("%v", p95 <= 0.1))
	}
	t.AddNote("alves adds %d standard containers vs homogeneous-mean %d (worst-case bound is conservative)", addHet, addHomog)
	t.AddNote("mu(standard)=%.1f mu(deflated to %.0f%%)=%.1f req/s", muStd, deflFrac*100, muDefl)
	return t, nil
}

// AblationGGC quantifies the G/G/c extension (§8 future work): functions
// with near-deterministic service need fewer containers under the
// Allen-Cunneen sizing than under the exponential assumption, at equal
// measured SLO attainment.
func AblationGGC(opt Options) (*Table, error) {
	t := &Table{
		ID:     "ablation-ggc",
		Title:  "G/G/c (Allen-Cunneen) sizing vs M/M/c for low-variance service (§8)",
		Header: []string{"sizing", "lambda", "containers", "P95 wait(ms)", "met"},
	}
	// A tight deadline at a scale where the variance term moves the
	// integer container count.
	slo := queuing.SLO{Deadline: 50 * time.Millisecond, Percentile: 0.95, WaitingOnly: true}
	duration := opt.dur(20*time.Minute, 5*time.Minute)
	lambda := 200.0
	// A DNN-like function: nearly deterministic service (SCV 0.05).
	spec, err := functions.ByName("squeezenet")
	if err != nil {
		return nil, err
	}
	spec.SCV = 0.05
	cMM, err := queuing.MinimalContainers(lambda, spec.ServiceRate(), slo)
	if err != nil {
		return nil, err
	}
	cGG, err := queuing.RequiredContainersGGC(lambda, spec.ServiceRate(), 1, spec.SCV, slo)
	if err != nil {
		return nil, err
	}
	measure := func(c int) (float64, error) {
		engine := sim.NewEngine()
		cl, err := cluster.New(cluster.Config{Nodes: 30, CPUPerNode: 4000, MemPerNode: 16384})
		if err != nil {
			return 0, err
		}
		q, err := dispatch.NewQueue(engine, spec, slo.Deadline, xrand.New(opt.Seed^0x66c^uint64(c)))
		if err != nil {
			return 0, err
		}
		for i := 0; i < c; i++ {
			cc, err := cl.Place(spec.Name, spec.CPUMillis, spec.MemoryMiB)
			if err != nil {
				return 0, err
			}
			if err := cl.MarkRunning(cc); err != nil {
				return 0, err
			}
			if err := q.AddContainer(cc); err != nil {
				return 0, err
			}
		}
		rng := xrand.New(opt.Seed ^ 0xab1d)
		tt := time.Duration(0)
		for {
			tt += time.Duration(rng.Exp(lambda) * float64(time.Second))
			if tt > duration {
				break
			}
			engine.Schedule(tt, func() { q.Arrive() })
		}
		engine.Run()
		return q.Waits.Quantile(0.95), nil
	}
	for _, m := range []struct {
		name string
		c    int
	}{{"M/M/c (exponential)", cMM}, {"G/G/c (Allen-Cunneen)", cGG}} {
		p95, err := measure(m.c)
		if err != nil {
			return nil, err
		}
		t.AddRow(m.name, fmt.Sprintf("%.0f", lambda), fmt.Sprintf("%d", m.c),
			msF(p95), fmt.Sprintf("%v", p95 <= slo.Deadline.Seconds()))
	}
	t.AddNote("expected shape: G/G/c sizes <= M/M/c for SCV<1 and still meets the SLO (saves %d containers)", cMM-cGG)
	return t, nil
}
