package experiments

import (
	"fmt"
	"time"

	"lass/internal/cluster"
	"lass/internal/controller"
	"lass/internal/core"
	"lass/internal/functions"
	"lass/internal/queuing"
	"lass/internal/workload"
	"lass/internal/xrand"
)

// Fig5 reproduces the solver-scalability measurement (paper Fig 5): the
// wall-clock time the allocation algorithm needs to re-size one function's
// heterogeneous container pool after a +10% spike and after a workload
// doubling, as the pool grows to 1000 containers. The naive float64
// implementation (the paper's precision-limited Scala analogue) is run
// alongside; it fails well before 1000 containers.
//
//lass:wallclock Fig 5 reports real solver wall times alongside simulated results.
func Fig5(opt Options) (*Table, error) {
	t := &Table{
		ID:     "fig5",
		Title:  "Allocation algorithm scalability (Fig 5)",
		Header: []string{"containers", "+10% spike", "2x spike", "naive(+10%)"},
	}
	slo := queuing.SLO{Deadline: 100 * time.Millisecond, Percentile: 0.95, WaitingOnly: true}
	mu := 10.0
	reps := 5
	if opt.Quick {
		reps = 2
	}
	rng := xrand.New(opt.Seed ^ 0xf195)
	for _, n := range []int{10, 50, 100, 200, 500, 1000} {
		// A pool of n containers, 30% of them deflated (heterogeneous),
		// currently sized for its offered load at ~80% utilization.
		rates := make([]float64, n)
		for i := range rates {
			rates[i] = mu
			if i%3 == 0 {
				rates[i] = mu * rng.Uniform(0.7, 0.95)
			}
		}
		var total float64
		for _, r := range rates {
			total += r
		}
		lambda := 0.8 * total

		timeIt := func(factor float64) (time.Duration, error) {
			var elapsed time.Duration
			for i := 0; i < reps; i++ {
				start := time.Now()
				if _, err := queuing.AdditionalHetContainers(lambda*factor, rates, mu, slo); err != nil {
					return 0, err
				}
				elapsed += time.Since(start)
			}
			return elapsed / time.Duration(reps), nil
		}
		spike10, err := timeIt(1.10)
		if err != nil {
			return nil, err
		}
		spike2x, err := timeIt(2.0)
		if err != nil {
			return nil, err
		}
		naive := "failed"
		start := time.Now()
		if _, err := queuing.RequiredContainersNaive(lambda*1.10, mu, slo, n); err == nil {
			naive = ms(time.Since(start) / 1)
		}
		t.AddRow(fmt.Sprintf("%d", n), ms(spike10), ms(spike2x), naive)
	}
	t.AddNote("expected shape: stable solver under 100ms at 1000 containers; naive fails at scale")
	return t, nil
}

// Fig6 reproduces the model-driven auto-scaling experiment (paper Fig 6):
// the micro-benchmark's rate steps 5→30→5 req/s while MobileNet is static,
// then MobileNet steps 3→8→3 req/s while the micro-benchmark is static.
// The table is the time series of offered load and allocated containers.
func Fig6(opt Options) (*Table, error) {
	t := &Table{
		ID:     "fig6",
		Title:  "Model-driven auto-scaling (Fig 6)",
		Header: []string{"t(min)", "micro λ", "micro c", "mobilenet λ", "mobilenet c"},
	}
	level := opt.dur(2*time.Minute, 40*time.Second)

	micro := functions.MicroBenchmark(100 * time.Millisecond)
	mobile, err := functions.ByName("mobilenet-v2")
	if err != nil {
		return nil, err
	}

	var microSteps, mobileSteps []workload.Step
	at := time.Duration(0)
	// Phase 1: micro 5→30→5 in steps of 5; mobilenet static at 3.
	phase1 := []float64{5, 10, 15, 20, 25, 30, 25, 20, 15, 10, 5}
	mobileSteps = append(mobileSteps, workload.Step{Start: 0, Rate: 3})
	for _, r := range phase1 {
		microSteps = append(microSteps, workload.Step{Start: at, Rate: r})
		at += level
	}
	// Phase 2: micro static at 5; mobilenet 3→8→3 in steps of 1.
	phase2 := []float64{3, 4, 5, 6, 7, 8, 7, 6, 5, 4, 3}
	for _, r := range phase2 {
		mobileSteps = append(mobileSteps, workload.Step{Start: at, Rate: r})
		at += level
	}
	end := at
	microWL, err := workload.NewSteps(microSteps)
	if err != nil {
		return nil, err
	}
	mobileWL, err := workload.NewSteps(mobileSteps)
	if err != nil {
		return nil, err
	}

	p, err := core.New(core.Config{
		// No resource pressure throughout (paper's premise): generous room.
		Cluster:    cluster.Config{Nodes: 8, CPUPerNode: 4000, MemPerNode: 16384},
		Controller: controller.Config{MinContainers: 1},
		Seed:       opt.Seed ^ 0xf196,
		Functions: []core.FunctionConfig{
			{Spec: micro, Workload: microWL, Prewarm: 1},
			{Spec: mobile, Workload: mobileWL, Prewarm: 1},
		},
	})
	if err != nil {
		return nil, err
	}
	res, err := p.Run(end)
	if err != nil {
		return nil, err
	}
	mc := res.Functions[micro.Name]
	mo := res.Functions[mobile.Name]
	sample := level / 2
	for ts := sample; ts < end; ts += level {
		t.AddRow(
			fmt.Sprintf("%.1f", ts.Minutes()),
			fmt.Sprintf("%.0f", microWL.RateAt(ts)),
			fmt.Sprintf("%.0f", mc.Containers.ValueAt(ts)),
			fmt.Sprintf("%.0f", mobileWL.RateAt(ts)),
			fmt.Sprintf("%.0f", mo.Containers.ValueAt(ts)),
		)
	}
	t.AddNote("expected shape: container staircases track the offered-load staircases up and down")
	t.AddNote("micro SLO attainment %.3f, mobilenet %.3f", mc.SLO.Attainment(), mo.SLO.Attainment())
	return t, nil
}

// Fig7 reproduces the deflation/service-time characterization (paper
// Fig 7): mean service time for each catalog function as its container is
// progressively CPU-deflated. Panel (a) is the non-DNN functions at 1-vCPU
// scale; panel (b) the DNNs at their standard (2-vCPU for MobileNet) size.
func Fig7(opt Options) (*Table, error) {
	t := &Table{
		ID:     "fig7",
		Title:  "Effect of CPU deflation on service time (Fig 7)",
		Header: []string{"function", "panel", "deflation%", "service(ms)", "vs 0%"},
	}
	rng := xrand.New(opt.Seed ^ 0xf197)
	samples := 4000
	if opt.Quick {
		samples = 1000
	}
	for _, s := range functions.Catalog() {
		if s.Name == "micro-benchmark" {
			continue // the paper plots the six realistic functions
		}
		panel := "a(non-DNN)"
		if functions.IsDNN(s.Name) {
			panel = "b(DNN)"
		}
		base := 0.0
		for _, defl := range []float64{0, 0.10, 0.20, 0.30, 0.40, 0.50, 0.60, 0.70} {
			frac := 1 - defl
			var sum time.Duration
			for i := 0; i < samples; i++ {
				sum += s.SampleServiceTime(rng, frac)
			}
			mean := (sum / time.Duration(samples)).Seconds()
			if defl == 0 {
				base = mean
			}
			t.AddRow(
				s.Name,
				panel,
				fmt.Sprintf("%.0f", defl*100),
				msF(mean),
				fmt.Sprintf("%.2fx", mean/base),
			)
		}
	}
	t.AddNote("expected shape: ≤30%% deflation costs little for 5 functions; mobilenet degrades immediately; beyond the slack, service time grows ∝ CPU deficit")
	return t, nil
}
