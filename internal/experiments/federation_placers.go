package experiments

import (
	"fmt"
	"time"

	"lass/internal/azure"
	"lass/internal/core"
	"lass/internal/federation"
)

// FederationPlacers sweeps every registered placement policy — the four
// legacy enum policies rebuilt on the Placer API, the two policies the API
// made possible (grant-aware and cost-bounded), and any custom placers
// registered at run time — over the skewed-trace scenario (one bursty hot
// site, two mostly-idle steady peers) with the federation-wide fair-share
// allocator, offload-aware §3.4 admission, and a throttled cloud all on.
//
// This is the conditions under which the placement context's richer
// signals matter: the global allocator pre-provisions the idle peers for
// the hot site's displaced demand, so grant-aware — which folds grants and
// granted-but-cold pools into its per-candidate prediction — should beat
// plain model-driven (which only sees live pools) on violations, and
// cost-bounded exposes the violations-versus-cloud-bill trade. One row
// set per registered policy; the committed bench baseline must carry an
// aggregate row for each built-in.
func FederationPlacers(opt Options) (*Table, error) {
	t := &Table{
		ID:     "federation-placers",
		Title:  "Placement-policy sweep: all registered placers on skewed traces (global fair share + admission)",
		Header: append([]string(nil), federationSweepHeader...),
	}
	minutes := 60
	if opt.Quick {
		minutes = 6
	}
	rows, err := fairshareRows(opt)
	if err != nil {
		return nil, err
	}
	o := opt
	o.Fed.GlobalFairShare = true
	o.Fed.Admission = true
	if o.Fed.CloudMaxConcurrency == 0 {
		// The real FaaS throttle: an unbounded cloud would let every
		// policy hide its placement mistakes behind infinite remote
		// capacity.
		o.Fed.CloudMaxConcurrency = 2
	}
	placers, err := sweepPlacers(o)
	if err != nil {
		return nil, err
	}
	build := func() ([]core.Config, time.Duration, error) {
		return federationTraceSites(o, rows, minutes)
	}
	// One independent cell per policy; rows are appended in placer order
	// after all cells complete, so the table is byte-identical at any
	// worker count.
	results := make([]*federation.Result, len(placers))
	err = forEachCell(len(placers), opt.SweepWorkers, func(i int) error {
		sites, end, err := build()
		if err != nil {
			return err
		}
		fcfg, err := federationConfig(o, sites, placers[i])
		if err != nil {
			return err
		}
		fed, err := federation.New(fcfg)
		if err != nil {
			return err
		}
		res, err := fed.Run(end)
		if err != nil {
			return err
		}
		results[i] = res
		return nil
	})
	if err != nil {
		return nil, err
	}
	for _, res := range results {
		addFederationRows(t, res)
	}
	t.AddNote("every row runs under the federation-wide §4.1 allocator with offload-aware admission and a cloud throttled to %d concurrent instances per function", o.Fed.CloudMaxConcurrency)
	t.AddNote("grant-aware = model-driven with the global grants and granted-but-cold pre-provisioned pools folded into the per-candidate prediction")
	t.AddNote("cost-bounded = cheapest candidate whose predicted response meets the SLO (edge is free, cloud bills per invocation + GB-second)")
	for i, row := range rows {
		st := azure.Summarize(row.Counts)
		t.AddNote("site edge-%d trace %s (%s): mean %.0f/min, max %.0f/min, CV %.2f",
			i, row.FunctionHash, row.Trigger, st.Mean, st.Max, st.CV)
	}
	return t, nil
}

// PlacerAggregate finds the aggregate ("all") row for one policy in a
// placer sweep table; tests and benchmarks use it to compare policies.
func PlacerAggregate(t *Table, policy string) ([]string, error) {
	for _, row := range t.Rows {
		if len(row) >= 3 && row[0] == policy && row[2] == "all" {
			return row, nil
		}
	}
	return nil, fmt.Errorf("experiments: no aggregate row for policy=%s in %s", policy, t.ID)
}
