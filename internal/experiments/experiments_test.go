package experiments

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
	"time"

	"lass/internal/federation"
)

var quick = Options{Seed: 7, Quick: true}

func cell(t *testing.T, tab *Table, row, col int) string {
	t.Helper()
	if row >= len(tab.Rows) || col >= len(tab.Rows[row]) {
		t.Fatalf("no cell (%d,%d) in %s", row, col, tab.ID)
	}
	return tab.Rows[row][col]
}

func cellF(t *testing.T, tab *Table, row, col int) float64 {
	t.Helper()
	s := strings.TrimSuffix(strings.TrimSuffix(cell(t, tab, row, col), "%"), "x")
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("%s cell (%d,%d)=%q not numeric", tab.ID, row, col, cell(t, tab, row, col))
	}
	return v
}

func TestTablePrinting(t *testing.T) {
	tab := Table1()
	var buf bytes.Buffer
	tab.Fprint(&buf)
	out := buf.String()
	for _, want := range []string{"table1", "mobilenet-v2", "2.0 vCPU + 1024 MB", "geofence"} {
		if !strings.Contains(out, want) {
			t.Errorf("printed table missing %q:\n%s", want, out)
		}
	}
}

func TestTable1MatchesPaper(t *testing.T) {
	tab := Table1()
	if len(tab.Rows) != 7 {
		t.Fatalf("rows=%d want 7", len(tab.Rows))
	}
}

func TestRegistryRunUnknown(t *testing.T) {
	if _, err := Run("nope", quick); err == nil {
		t.Error("want error for unknown experiment")
	}
	ids := IDs()
	if len(ids) != len(Registry) {
		t.Errorf("IDs()=%d registry=%d", len(ids), len(Registry))
	}
	if strings.HasPrefix(ids[0], "ablation") {
		t.Error("paper experiments should sort first")
	}
}

func TestFig3ShapeHolds(t *testing.T) {
	tab, err := Fig3(quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 20 {
		t.Fatalf("rows=%d want 20 (4 panels x 5 rates)", len(tab.Rows))
	}
	violations := 0
	for i := range tab.Rows {
		if cell(t, tab, i, 5) != "true" {
			violations++
		}
	}
	if violations > 1 {
		t.Errorf("%d/20 Fig3 points violate the SLO; the model should provision adequately", violations)
	}
}

func TestFig4ShapeHolds(t *testing.T) {
	tab, err := Fig4(quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 16 {
		t.Fatalf("rows=%d want 16 (4 proportions x 4 rates)", len(tab.Rows))
	}
	violations := 0
	for i := range tab.Rows {
		if cell(t, tab, i, 3) != "true" {
			violations++
		}
	}
	if violations > 1 {
		t.Errorf("%d/16 Fig4 points violate the SLO under heterogeneity", violations)
	}
}

func TestFig5ShapeHolds(t *testing.T) {
	tab, err := Fig5(quick)
	if err != nil {
		t.Fatal(err)
	}
	last := tab.Rows[len(tab.Rows)-1]
	if last[0] != "1000" {
		t.Fatalf("last row %v", last)
	}
	// Stable solver under 100ms at 1000 containers (paper's headline).
	if v := cellF(t, tab, len(tab.Rows)-1, 1); v > 100 {
		t.Errorf("+10%% solve at 1000 containers took %.1fms > 100ms", v)
	}
	// Naive implementation must fail by 1000 containers.
	if last[3] != "failed" {
		t.Errorf("naive implementation unexpectedly healthy at 1000 containers: %v", last[3])
	}
	// And must succeed at 10 containers.
	if tab.Rows[0][3] == "failed" {
		t.Error("naive implementation should work at 10 containers")
	}
}

func TestFig6ShapeHolds(t *testing.T) {
	tab, err := Fig6(quick)
	if err != nil {
		t.Fatal(err)
	}
	// Containers at the micro peak (row with λ=30) must exceed those at
	// the start (λ=5).
	var microAtPeak, microAtStart, mobileAtPeak, mobileAtStart float64
	for i := range tab.Rows {
		switch cell(t, tab, i, 1) {
		case "30":
			microAtPeak = cellF(t, tab, i, 2)
		}
		if i == 0 {
			microAtStart = cellF(t, tab, i, 2)
		}
	}
	for i := range tab.Rows {
		if cell(t, tab, i, 3) == "8" {
			mobileAtPeak = cellF(t, tab, i, 4)
		}
		if cell(t, tab, i, 3) == "3" && mobileAtStart == 0 {
			mobileAtStart = cellF(t, tab, i, 4)
		}
	}
	if microAtPeak <= microAtStart {
		t.Errorf("micro containers: peak %v <= start %v", microAtPeak, microAtStart)
	}
	if mobileAtPeak <= mobileAtStart {
		t.Errorf("mobilenet containers: peak %v <= start %v", mobileAtPeak, mobileAtStart)
	}
}

func TestFig7ShapeHolds(t *testing.T) {
	tab, err := Fig7(quick)
	if err != nil {
		t.Fatal(err)
	}
	// 6 functions x 8 deflation levels.
	if len(tab.Rows) != 48 {
		t.Fatalf("rows=%d want 48", len(tab.Rows))
	}
	// Find mobilenet at 30% deflation: multiplier >= 1.3; geofence at
	// 30%: <= 1.1.
	for i := range tab.Rows {
		fn, defl := cell(t, tab, i, 0), cell(t, tab, i, 2)
		mult := cellF(t, tab, i, 4)
		if fn == "mobilenet-v2" && defl == "30" && mult < 1.25 {
			t.Errorf("mobilenet at 30%% deflation multiplier %.2f; should degrade immediately", mult)
		}
		if fn == "geofence" && defl == "30" && mult > 1.15 {
			t.Errorf("geofence at 30%% deflation multiplier %.2f; should be cheap", mult)
		}
		// Monotonicity within each function block (rows are ordered).
		if i > 0 && cell(t, tab, i-1, 0) == fn && cellF(t, tab, i-1, 4) > mult+0.05 {
			t.Errorf("%s: multiplier decreased with more deflation at row %d", fn, i)
		}
	}
}

func TestFig8ShapeHolds(t *testing.T) {
	tab, err := Fig8(quick)
	if err != nil {
		t.Fatal(err)
	}
	// Parse the utilization note: deflation >= termination - 0.5pt.
	var term, defl float64
	for _, n := range tab.Notes {
		if strings.Contains(n, "mean utilization") {
			if _, err := fmtSscanfNote(n, &term, &defl); err != nil {
				t.Fatalf("cannot parse note %q: %v", n, err)
			}
		}
	}
	if term == 0 || defl == 0 {
		t.Fatal("utilization note missing")
	}
	if defl < term-0.5 {
		t.Errorf("deflation utilization %.1f%% < termination %.1f%%", defl, term)
	}
	// Every printed mobilenet allocation during overload must be at
	// least near its guaranteed share once it has load (mid rows).
	if len(tab.Rows) == 0 {
		t.Fatal("no rows")
	}
}

// fmtSscanfNote extracts the two percentages from the utilization note.
func fmtSscanfNote(n string, term, defl *float64) (int, error) {
	idx := strings.Index(n, "termination ")
	jdx := strings.Index(n, "deflation ")
	if idx < 0 || jdx < 0 {
		return 0, strconvError(n)
	}
	t, err := strconv.ParseFloat(strings.TrimSuffix(strings.Fields(n[idx:])[1], "%,"), 64)
	if err != nil {
		return 0, err
	}
	d, err := strconv.ParseFloat(strings.TrimSuffix(strings.Fields(n[jdx:])[1], "%"), 64)
	if err != nil {
		return 0, err
	}
	*term, *defl = t, d
	return 2, nil
}

type strconvError string

func (e strconvError) Error() string { return "unparseable note: " + string(e) }

func TestFig9ShapeHolds(t *testing.T) {
	tab, err := Fig9(quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 12 { // 2 policies x 6 functions
		t.Fatalf("rows=%d want 12", len(tab.Rows))
	}
	var term, defl float64
	for _, n := range tab.Notes {
		if strings.Contains(n, "mean utilization") {
			if _, err := fmtSscanfNote(n, &term, &defl); err != nil {
				t.Fatalf("cannot parse note %q: %v", n, err)
			}
		}
	}
	if defl < term-0.5 {
		t.Errorf("deflation utilization %.1f%% < termination %.1f%%", defl, term)
	}
}

func TestOpenWhiskShapeHolds(t *testing.T) {
	tab, err := OpenWhisk(quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 {
		t.Fatalf("rows=%d want 4", len(tab.Rows))
	}
	// OpenWhisk rows: nodes alive must be 0/3 by the end; LaSS rows 3/3.
	for i := range tab.Rows {
		sys := cell(t, tab, i, 0)
		alive := cell(t, tab, i, 5)
		if sys == "openwhisk" && alive != "0/3" {
			t.Errorf("openwhisk survived: %v", tab.Rows[i])
		}
		if sys == "lass" && alive != "3/3" {
			t.Errorf("lass did not survive: %v", tab.Rows[i])
		}
	}
	// LaSS completes far more mobilenet requests than the dead baseline.
	var owMobile, lassMobile float64
	for i := range tab.Rows {
		if cell(t, tab, i, 1) == "mobilenet-v2" {
			if cell(t, tab, i, 0) == "openwhisk" {
				owMobile = cellF(t, tab, i, 2)
			} else {
				lassMobile = cellF(t, tab, i, 2)
			}
		}
	}
	if lassMobile <= owMobile {
		t.Errorf("lass completed %v <= openwhisk %v", lassMobile, owMobile)
	}
}

func TestAblationEstimatorShape(t *testing.T) {
	tab, err := AblationEstimator(quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("rows=%d", len(tab.Rows))
	}
	dual := cellF(t, tab, 0, 1)
	ewma := cellF(t, tab, 1, 1)
	if dual < ewma-0.02 {
		t.Errorf("dual-window attainment %.3f worse than ewma-only %.3f", dual, ewma)
	}
}

func TestAblationPlacementShape(t *testing.T) {
	tab, err := AblationPlacement(quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("rows=%d", len(tab.Rows))
	}
}

func TestAblationHetModelShape(t *testing.T) {
	tab, err := AblationHetModel(quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Fatal("want 2 rows")
	}
	// Container cells are "base+add"; compare the additions.
	parseAdd := func(s string) float64 {
		parts := strings.SplitN(s, "+", 2)
		if len(parts) != 2 {
			t.Fatalf("cell %q not base+add", s)
		}
		v, err := strconv.ParseFloat(parts[1], 64)
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	addHomog := parseAdd(cell(t, tab, 0, 2))
	addHet := parseAdd(cell(t, tab, 1, 2))
	if addHet < addHomog {
		t.Errorf("alves adds %v below homogeneous %v", addHet, addHomog)
	}
	// Alves-sized pool must meet the SLO.
	if cell(t, tab, 1, 4) != "true" {
		t.Errorf("alves-sized pool violates SLO: %v", tab.Rows[1])
	}
}

func TestAblationGGCShape(t *testing.T) {
	tab, err := AblationGGC(quick)
	if err != nil {
		t.Fatal(err)
	}
	cMM := cellF(t, tab, 0, 2)
	cGG := cellF(t, tab, 1, 2)
	if cGG > cMM {
		t.Errorf("G/G/c sized %v > M/M/c %v for SCV<1", cGG, cMM)
	}
	if cell(t, tab, 1, 4) != "true" {
		t.Errorf("G/G/c-sized pool violates SLO: %v", tab.Rows[1])
	}
}

func TestOptionsDur(t *testing.T) {
	o := Options{Quick: true}
	if o.dur(time.Hour, time.Minute) != time.Minute {
		t.Error("quick duration not selected")
	}
	o.Quick = false
	if o.dur(time.Hour, time.Minute) != time.Hour {
		t.Error("full duration not selected")
	}
}

func TestFederationTraceShapeHolds(t *testing.T) {
	tab, err := FederationTrace(quick)
	if err != nil {
		t.Fatal(err)
	}
	if want := 4 * len(federation.PlacerNames()); len(tab.Rows) != want {
		t.Fatalf("rows=%d want %d (every registered policy x (3 sites + aggregate))", len(tab.Rows), want)
	}
	agg := func(policy string) []string {
		for _, row := range tab.Rows {
			if row[0] == policy && row[2] == "all" {
				return row
			}
		}
		t.Fatalf("no aggregate row for policy %q", policy)
		return nil
	}
	never := agg("never")
	// Arrivals are workload-driven, so they must be identical across
	// policies; the never policy must neither offload nor pay the cloud.
	for _, policy := range []string{"cloud-only", "nearest-peer", "model-driven"} {
		if got := agg(policy)[3]; got != never[3] {
			t.Errorf("%s arrivals %s != never arrivals %s", policy, got, never[3])
		}
	}
	if never[5] != "0" || never[6] != "0" || never[8] != "0" {
		t.Errorf("never policy offloaded or cold-started: %v", never)
	}
	if cost, _ := strconv.ParseFloat(never[9], 64); cost != 0 {
		t.Errorf("never policy accrued cloud cost %v", cost)
	}
	// Cloud-heavy policies must pay: cloud-only offloads, cold-starts at
	// least once, and accrues nonzero cost on this overloaded scenario.
	co := agg("cloud-only")
	if co[6] == "0" || co[8] == "0" {
		t.Errorf("cloud-only did not offload/cold-start: %v", co)
	}
	if cost, _ := strconv.ParseFloat(co[9], 64); cost <= 0 {
		t.Errorf("cloud-only accrued no cost: %v", co)
	}
	neverRate, _ := strconv.ParseFloat(never[len(never)-1], 64)
	modelRate, _ := strconv.ParseFloat(agg("model-driven")[len(never)-1], 64)
	if modelRate >= neverRate {
		t.Errorf("model-driven violation rate %.4f not below never %.4f", modelRate, neverRate)
	}
}

func TestFederationShapeHolds(t *testing.T) {
	tab, err := Federation(quick)
	if err != nil {
		t.Fatal(err)
	}
	rate := func(policy string) float64 {
		for _, row := range tab.Rows {
			if row[0] == policy && row[2] == "all" {
				v, err := strconv.ParseFloat(row[len(row)-1], 64)
				if err != nil {
					t.Fatalf("bad violation rate %q: %v", row[len(row)-1], err)
				}
				return v
			}
		}
		t.Fatalf("no aggregate row for policy %q", policy)
		return 0
	}
	never := rate("never")
	for _, policy := range []string{"cloud-only", "nearest-peer", "model-driven"} {
		if r := rate(policy); r >= never {
			t.Errorf("%s violation rate %.4f not below never baseline %.4f", policy, r, never)
		}
	}
	if never < 0.05 {
		t.Errorf("never-policy violation rate %.4f too low: the burst should overload edge-0", never)
	}
}

// TestFederationFairShareGlobalBeatsLocal is the acceptance bar for the
// federation-wide allocator: on the skewed-load scenario, global
// allocation must strictly reduce total SLO violations versus
// per-site-local allocation under the nearest-peer offload policy, and
// the allocator's cross-site drift must be visible in the sweep table.
func TestFederationFairShareGlobalBeatsLocal(t *testing.T) {
	tab, err := FederationFairShare(quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 24 { // 2 allocs x 3 policies x (3 sites + aggregate)
		t.Fatalf("rows=%d want 24", len(tab.Rows))
	}
	violations := func(policy, alloc string) float64 {
		t.Helper()
		row, err := FairShareAggregate(tab, policy, alloc)
		if err != nil {
			t.Fatal(err)
		}
		v, err := strconv.ParseFloat(row[len(row)-1], 64)
		if err != nil {
			t.Fatalf("bad violation rate %q: %v", row[len(row)-1], err)
		}
		return v
	}
	local := violations("nearest-peer", "local")
	global := violations("nearest-peer", "global")
	if global >= local {
		t.Errorf("global allocation violation rate %.4f not strictly below local %.4f", global, local)
	}
	// The hot site's offered demand cannot fit its own cluster, so the
	// global allocator must be moving capacity: nonzero cross-site drift.
	row, err := FairShareAggregate(tab, "nearest-peer", "global")
	if err != nil {
		t.Fatal(err)
	}
	drift, err := strconv.ParseFloat(row[11], 64)
	if err != nil || drift <= 0 {
		t.Errorf("global aggregate drift-mC = %q, want > 0 (err %v)", row[11], err)
	}
	// Local allocation reports zero drift by construction.
	lrow, err := FairShareAggregate(tab, "nearest-peer", "local")
	if err != nil {
		t.Fatal(err)
	}
	if ldrift, err := strconv.ParseFloat(lrow[11], 64); err != nil || ldrift != 0 {
		t.Errorf("local aggregate drift-mC = %q, want 0 (err %v)", lrow[11], err)
	}
	// §3.4 admission verbatim (policy never): sheddable requests are
	// rejected, not stranded.
	nrow, err := FairShareAggregate(tab, "never", "local")
	if err != nil {
		t.Fatal(err)
	}
	if nrow[7] == "0" {
		t.Error("policy never + admission rejected nothing on a 3x overload")
	}
}
