package experiments

import (
	"fmt"
	"time"

	"lass/internal/allocation"
	"lass/internal/queuing"
	"lass/internal/xrand"
)

// ControlStats is one measured control-plane run: how many global epochs
// (per-function M/M/c sizing plus a federation-wide allocation) executed,
// how long they took, and how much they allocated.
type ControlStats struct {
	Scenario  string
	Sites     int
	Functions int // per site
	Epochs    uint64
	Wall      time.Duration
	Allocs    uint64 // heap allocations during the measured epochs
	Bytes     uint64 // heap bytes allocated during the measured epochs
}

// EpochsPerSec is the control plane's throughput headline.
func (s ControlStats) EpochsPerSec() float64 {
	if s.Wall <= 0 {
		return 0
	}
	return float64(s.Epochs) / s.Wall.Seconds()
}

// AllocsPerEpoch is the steady-state allocation headline: the warm sizer
// and the incremental allocator hold this at exactly zero when demand is
// unchanged.
func (s ControlStats) AllocsPerEpoch() float64 {
	if s.Epochs == 0 {
		return 0
	}
	return float64(s.Allocs) / float64(s.Epochs)
}

// controlCPUPerContainer converts the sizer's container counts into the
// allocator's millicore desires (a quarter-core function, the catalog's
// common shape).
const controlCPUPerContainer = 250

// controlSwingSites is how many of the sites get their arrival rates
// perturbed per epoch in the swing scenarios — a rolling 5% hot spot.
const controlSwingSites = 5

// controlPlane is the bench's closed-loop control plane at metro scale:
// every epoch it re-sizes each function at each site from its arrival
// rate with the M/M/c solver (Algorithm 1's MinimalContainers), then runs
// the federation-wide three-pass allocator over all the sites' demands —
// the exact per-epoch work a metro coordinator does, minus the simulator
// around it.
type controlPlane struct {
	sites []allocation.SiteDemand
	base  [][]float64 // per-site per-function baseline arrival rates
	rates [][]float64 // current arrival rates (epoch inputs)
	hints [][]int     // previous epoch's container counts (warm-scan seeds)
	mus   []float64   // per-function service rates
	slo   queuing.SLO
	alloc *allocation.Allocator
}

// newControlPlane synthesizes the 100-site metro demand set: each site
// serves fns functions drawn from a shared 12-name pool at a site-specific
// offset, so neighbouring sites overlap — the shape that makes the
// allocator's overflow-spreading pass do real work.
func newControlPlane(seed uint64, nsites, fns int) *controlPlane {
	const pool = 12
	rng := xrand.New(seed ^ 0xc0b1)
	cp := &controlPlane{
		sites: make([]allocation.SiteDemand, nsites),
		base:  make([][]float64, nsites),
		rates: make([][]float64, nsites),
		hints: make([][]int, nsites),
		mus:   make([]float64, pool),
		slo:   queuing.SLO{Deadline: 100 * time.Millisecond, Percentile: 0.95, WaitingOnly: true},
		alloc: allocation.NewAllocator(),
	}
	for j := range cp.mus {
		cp.mus[j] = 8 + float64(j%5) // 8..12 req/s per container
	}
	for i := range cp.sites {
		sfns := make([]allocation.FunctionDemand, fns)
		cp.base[i] = make([]float64, fns)
		cp.rates[i] = make([]float64, fns)
		cp.hints[i] = make([]int, fns)
		for j := range sfns {
			fn := (i + j) % pool
			sfns[j] = allocation.FunctionDemand{
				Name:       fmt.Sprintf("f%02d", fn),
				User:       fmt.Sprintf("u%d", fn%4),
				UserWeight: float64(fn%4 + 1),
				Weight:     float64(rng.Intn(4) + 1),
			}
			cp.base[i][j] = rng.Uniform(5, 60)
			cp.rates[i][j] = cp.base[i][j]
		}
		cp.sites[i] = allocation.SiteDemand{
			Site:        fmt.Sprintf("metro-%03d", i),
			CapacityCPU: 16_000,
			Functions:   sfns,
		}
	}
	return cp
}

// fnMu returns the service rate of site i's j-th function (functions are
// assigned from the pool at offset i).
func (cp *controlPlane) fnMu(i, j int) float64 {
	return cp.mus[(i+j)%len(cp.mus)]
}

// epoch runs one control epoch: size every function from its current rate
// (seeding the scan at last epoch's answer), then allocate globally.
func (cp *controlPlane) epoch() error {
	for i := range cp.sites {
		fns := cp.sites[i].Functions
		for j := range fns {
			c, err := queuing.MinimalContainersFrom(cp.rates[i][j], cp.fnMu(i, j), cp.slo, cp.hints[i][j])
			if err != nil {
				return err
			}
			cp.hints[i][j] = c
			fns[j].DesiredCPU = int64(c) * controlCPUPerContainer
		}
	}
	_, err := cp.alloc.Allocate(cp.sites, true)
	return err
}

// chill zeroes the warm state so the next epoch pays the cold price: sizer
// scans restart at the stability floor and the allocator rebuilds every
// per-site cache.
func (cp *controlPlane) chill() {
	for i := range cp.hints {
		clear(cp.hints[i])
	}
	cp.alloc = allocation.NewAllocator()
}

// swing perturbs controlSwingSites sites' arrival rates for epoch e: a hot
// spot rolling through the metro, each affected function scaled by a fixed
// multiplier cycle (bursts, collapses, and partial recoveries included).
func (cp *controlPlane) swing(e int) {
	mult := [...]float64{1, 1.8, 0.4, 2.6, 0.1, 1.2, 0.7, 3.0}
	for k := 0; k < controlSwingSites; k++ {
		i := (e*controlSwingSites + k) % len(cp.sites)
		for j := range cp.rates[i] {
			cp.rates[i][j] = cp.base[i][j] * mult[(e+i+j)%len(mult)]
		}
	}
}

// controlScenarios are the rows the control-plane bench reports, in order:
// the cold per-epoch price (fresh sizer scans + fresh allocator every
// epoch), the warm steady state (unchanged demand: warm hints + the
// incremental allocator's fast path, zero allocations), and a rolling
// 5%-of-sites demand swing on the warm path, serial and with the parallel
// clamp pool.
var controlScenarios = []string{"cold", "steady", "swing", "swing-parallel"}

// ControlEpochs measures epochs control epochs of the named scenario on an
// nsites × fns metro demand set. Warm scenarios run three unmeasured
// priming epochs first, so the measurement is the steady state, not cache
// construction.
func ControlEpochs(opt Options, scenario string, nsites, fns, epochs int) (ControlStats, error) {
	st := ControlStats{Scenario: scenario, Sites: nsites, Functions: fns, Epochs: uint64(epochs)}
	cp := newControlPlane(opt.Seed, nsites, fns)
	var body func(e int) error
	switch scenario {
	case "cold":
		body = func(int) error {
			cp.chill()
			return cp.epoch()
		}
	case "steady":
		body = func(int) error { return cp.epoch() }
	case "swing", "swing-parallel":
		if scenario == "swing-parallel" {
			cp.alloc.Workers = 8
		}
		body = func(e int) error {
			cp.swing(e)
			return cp.epoch()
		}
	default:
		return st, fmt.Errorf("experiments: unknown control scenario %q (want one of %v)", scenario, controlScenarios)
	}
	warmup := 0
	if scenario != "cold" {
		warmup = 3
	}
	for e := 0; e < warmup; e++ {
		if err := body(e); err != nil {
			return st, err
		}
	}
	var runErr error
	st.Wall, st.Allocs, st.Bytes = measure(func() {
		for e := warmup; e < warmup+epochs; e++ {
			if runErr = body(e); runErr != nil {
				return
			}
		}
	})
	return st, runErr
}

// controlBenchHeader is the control sub-table's shape; the scenario column
// is what MissingControlScenarios keys on.
var controlBenchHeader = []string{"scenario", "sites", "functions", "epochs",
	"wall-ms", "epochs/sec", "allocs", "allocs/epoch"}

func addControlRow(t *Table, s ControlStats) {
	t.AddRow(s.Scenario,
		fmt.Sprintf("%d", s.Sites),
		fmt.Sprintf("%d", s.Functions),
		fmt.Sprintf("%d", s.Epochs),
		fmt.Sprintf("%.1f", float64(s.Wall)/float64(time.Millisecond)),
		fmt.Sprintf("%.0f", s.EpochsPerSec()),
		fmt.Sprintf("%d", s.Allocs),
		fmt.Sprintf("%.4f", s.AllocsPerEpoch()))
}

// ControlPlaneBench measures the coordinator's per-epoch control-plane
// cost — M/M/c sizing for every function at every site plus the
// federation-wide three-pass allocation — on the 100-site metro demand
// set, cold versus warm. It hard-asserts the PR's two headline claims:
// the warm steady state allocates exactly zero heap objects per epoch,
// and it clears at least 3× the cold epoch rate (in practice the fast
// path is orders of magnitude faster; 3× is the CI floor, set low enough
// for slow shared runners).
func ControlPlaneBench(opt Options) (*Table, error) {
	t := &Table{
		ID:     "control-bench",
		Title:  "Control plane: epochs/sec and allocs/epoch, cold vs warm sizing + allocation",
		Header: controlBenchHeader,
	}
	nsites, fns := 100, 8
	epochs := 400
	coldEpochs := 40
	if opt.Quick {
		epochs, coldEpochs = 80, 10
	}
	var cold, steady ControlStats
	for _, scenario := range controlScenarios {
		n := epochs
		if scenario == "cold" {
			n = coldEpochs // cold epochs are ~100× slower; fewer suffice
		}
		s, err := ControlEpochs(opt, scenario, nsites, fns, n)
		if err != nil {
			return nil, err
		}
		// An unrelated runtime allocation (GC metadata, a finalizer from an
		// earlier test in the same process) can land inside the measured
		// window; a real regression allocates every epoch and fails every
		// attempt, so re-measuring distinguishes noise from regression.
		for attempt := 0; scenario == "steady" && s.Allocs != 0 && attempt < 2; attempt++ {
			if s, err = ControlEpochs(opt, scenario, nsites, fns, n); err != nil {
				return nil, err
			}
		}
		addControlRow(t, s)
		switch scenario {
		case "cold":
			cold = s
		case "steady":
			steady = s
		}
	}
	if steady.Allocs != 0 {
		return nil, fmt.Errorf("experiments: warm steady-state control epoch allocated (%d allocs over %d epochs); want exactly 0",
			steady.Allocs, steady.Epochs)
	}
	if se, ce := steady.EpochsPerSec(), cold.EpochsPerSec(); se < 3*ce {
		return nil, fmt.Errorf("experiments: warm steady-state epochs/sec %.0f below 3x cold %.0f", se, ce)
	}
	t.AddNote("each epoch: M/M/c-size %d functions (%d sites x %d fns, warm-scan seeded) then run the three-pass global allocator", nsites*fns, nsites, fns)
	t.AddNote("cold rebuilds everything per epoch (hint-free scans, fresh allocator); steady repeats unchanged demand on the warm path")
	t.AddNote("swing rolls a %d-site hot spot through the metro each epoch; swing-parallel adds the 8-worker feasibility-clamp pool (grants byte-identical)", controlSwingSites)
	t.AddNote("asserted: steady allocates exactly 0 heap objects per epoch and clears >= 3x the cold epoch rate")
	return t, nil
}

// MissingControlScenarios compares a committed sweep-baseline JSON against
// the control-plane scenarios ControlPlaneBench produces and returns the
// ones the baseline's nested Control table lacks — the staleness signal
// that BENCH_federation.json was regenerated without the control-plane
// sub-table. Baselines predating the Control field report every scenario
// missing.
func MissingControlScenarios(baselineJSON []byte) ([]string, error) {
	baseline, err := parseBaseline(baselineJSON)
	if err != nil {
		return nil, err
	}
	if baseline.Control == nil {
		return append([]string(nil), controlScenarios...), nil
	}
	col := columnIndex(baseline.Control.Header)
	if _, ok := col["scenario"]; !ok {
		return append([]string(nil), controlScenarios...), nil
	}
	have := map[string]bool{}
	for _, row := range baseline.Control.Rows {
		if len(row) > col["scenario"] {
			have[row[col["scenario"]]] = true
		}
	}
	var missing []string
	for _, s := range controlScenarios {
		if !have[s] {
			missing = append(missing, s)
		}
	}
	return missing, nil
}
