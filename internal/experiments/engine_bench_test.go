package experiments

import (
	"bytes"
	"testing"
)

// TestEngineBenchRowsAndSpeedup runs the quick engine benchmark and checks
// the refactor's two headline claims hold even at the small quick-mode
// scale: the pooled engine allocates far less per event than the frozen
// pre-refactor reference on the identical churn workload, and the table
// carries exactly the scenario/engine rows the baseline guard pins.
func TestEngineBenchRowsAndSpeedup(t *testing.T) {
	tab, err := EngineBench(Options{Seed: 1, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for _, row := range tab.Rows {
		got = append(got, row[0]+"/"+row[1])
	}
	if len(got) != len(engineScenarios) {
		t.Fatalf("engine-bench rows %v, want scenarios %v", got, engineScenarios)
	}
	for i, want := range engineScenarios {
		if got[i] != want {
			t.Fatalf("engine-bench row %d is %s, want %s (all: %v)", i, got[i], want, got)
		}
	}
	// Re-measure the churn pair directly (the table stringifies) and
	// compare allocation rates: the pooled engine's steady state is near
	// zero, the reference allocates one event per schedule.
	ref, err := EngineChurn("ref-heap", 200_000, 7)
	if err != nil {
		t.Fatal(err)
	}
	pooled, err := EngineChurn("heap", 200_000, 7)
	if err != nil {
		t.Fatal(err)
	}
	if ref.Events != pooled.Events {
		t.Fatalf("churn fired %d events on ref-heap but %d on heap; same seed must fire the same count",
			ref.Events, pooled.Events)
	}
	if ra, pa := ref.AllocsPerEvent(), pooled.AllocsPerEvent(); pa*10 > ra {
		t.Errorf("pooled engine allocs/event %.4f not 10x below reference %.4f", pa, ra)
	}
	t.Logf("churn: ref-heap %.0f ev/s %.3f allocs/ev; heap %.0f ev/s %.3f allocs/ev",
		ref.EventsPerSec(), ref.AllocsPerEvent(), pooled.EventsPerSec(), pooled.AllocsPerEvent())
}

// TestMissingEngineScenarios covers the baseline staleness guard: a
// baseline without the nested Engine table (or with an incomplete one) must
// report the absent scenario/engine rows; a freshly generated bench
// baseline must report none.
func TestMissingEngineScenarios(t *testing.T) {
	missing, err := MissingEngineScenarios([]byte(`{"Header":["policy"],"Rows":[]}`))
	if err != nil {
		t.Fatal(err)
	}
	if len(missing) != len(engineScenarios) {
		t.Fatalf("pre-Engine baseline reports %v missing, want all of %v", missing, engineScenarios)
	}
	partial := []byte(`{"Header":["policy"],"Rows":[],
		"Engine":{"Header":["scenario","engine"],"Rows":[["churn","ref-heap"],["churn","heap"]]}}`)
	missing, err = MissingEngineScenarios(partial)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"churn/calendar", "metro-day/heap", "metro-day/calendar"}
	if len(missing) != len(want) {
		t.Fatalf("partial baseline reports %v missing, want %v", missing, want)
	}
	for i := range want {
		if missing[i] != want[i] {
			t.Fatalf("partial baseline reports %v missing, want %v", missing, want)
		}
	}
	tab, err := EngineBench(Options{Seed: 1, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	full := &Table{ID: "federation-bench", Header: federationSweepHeader, Engine: tab}
	var buf bytes.Buffer
	if err := full.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	missing, err = MissingEngineScenarios(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if len(missing) != 0 {
		t.Fatalf("fresh bench table reports %v missing, want none", missing)
	}
}
