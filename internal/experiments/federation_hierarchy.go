package experiments

import (
	"fmt"
	"time"

	"lass/internal/allocation"
	"lass/internal/cluster"
	"lass/internal/controller"
	"lass/internal/core"
	"lass/internal/federation"
	"lass/internal/functions"
	"lass/internal/workload"
)

// hierarchyScenarios are the allocation-mode rows the hierarchy sweep
// reports, in order — what MissingHierarchyScenarios keys on. "flat" is
// the site-level water-fill (no quota tree), "borrow" adds the
// region→metro→site hierarchy with over-quota borrowing, and "reclaim"
// additionally lets deserved-starved functions preempt borrowed capacity
// back.
var hierarchyScenarios = []string{"flat", "borrow", "reclaim"}

// hierarchySweepHeader is the hierarchy sub-table's shape; the mode
// column is what MissingHierarchyScenarios keys on, and the reclaimed /
// preempted columns are the landed-commit counters (millicores, both
// sides of each commit).
var hierarchySweepHeader = []string{"mode", "site", "arrivals", "local", "to-peer",
	"to-cloud", "rejected", "reclaimed-mC", "preempted-mC",
	"p95 resp ms", "violation rate"}

// hierarchySites builds the canonical reclaim fleet, one metro of three
// sites. The tiny site's squeezenet desire dwarfs its one-container
// cluster while its deserved share (a third of the metro) also exceeds
// that capacity, so the function is deserved-starved every epoch. The
// near-idle geofence site desires almost nothing, so the entitlement
// water-fill donates its unclaimed deserved share to the big peer — whose
// capacity binaryalert then saturates far above its own deserved quota
// (borrowed, revocable), and whose lack of spare leaves the spread pass
// nothing to compensate the starved function with (the geofence site does
// not serve squeezenet). Only reclaim recovers the quota, by preempting
// the big peer's borrowed binaryalert grant in favour of squeezenet.
func hierarchySites(opt Options) ([]core.Config, error) {
	site := func(cl cluster.Config, seed uint64, fns ...core.FunctionConfig) core.Config {
		return core.Config{
			Cluster:    cl,
			Controller: controller.Config{MinContainers: 1},
			Seed:       seed,
			Functions:  fns,
		}
	}
	fn := func(name string, rate float64) (core.FunctionConfig, error) {
		spec, err := functions.ByName(name)
		if err != nil {
			return core.FunctionConfig{}, err
		}
		wl, err := workload.NewStatic(rate)
		if err != nil {
			return core.FunctionConfig{}, err
		}
		return core.FunctionConfig{Spec: spec, Workload: wl, Prewarm: 1}, nil
	}
	sqHot, err := fn("squeezenet", 120)
	if err != nil {
		return nil, err
	}
	sqIdle, err := fn("squeezenet", 0.2)
	if err != nil {
		return nil, err
	}
	baHot, err := fn("binaryalert", 500)
	if err != nil {
		return nil, err
	}
	geoIdle, err := fn("geofence", 1)
	if err != nil {
		return nil, err
	}
	tiny := cluster.Config{Nodes: 1, CPUPerNode: 1000, MemPerNode: 512, Policy: cluster.WorstFit}
	return []core.Config{
		site(tiny, opt.Seed^0x41e0, sqHot),
		site(cluster.PaperCluster(), opt.Seed^0x41e1, sqIdle, baHot),
		site(cluster.PaperCluster(), opt.Seed^0x41e2, geoIdle),
	}, nil
}

// hierarchyMetro places the three default-named sites into a single leaf
// metro under the root — the quota tree both hierarchical modes share.
func hierarchyMetro() *allocation.Hierarchy {
	return &allocation.Hierarchy{Root: &allocation.Group{ID: "m0",
		Sites: []string{"edge-0", "edge-1", "edge-2"}}}
}

// honestRate is a site's violation rate with unresolved ingress counted
// against it — the same accounting the aggregate sweep rows use.
func honestRate(s *federation.SiteResult) float64 {
	return violationRate(s.Violations(), s.SLO.Total()+s.Unresolved)
}

// FederationHierarchy sweeps the global allocator's quota structure on
// the canonical starved/borrower/donor metro: flat site-level water-fill,
// the region→metro→site hierarchy with over-quota borrowing, and the
// hierarchy with cross-site reclaim of borrowed capacity. All three modes
// run the identical fleet, workload, topology, and metro-affine placement
// — only the allocator's quota tree and reclaim switch differ — so the
// sweep isolates what the hierarchy itself buys. The experiment
// hard-asserts the tentpole claims: only the reclaim mode lands commits
// (borrow-only and flat book zero on both counters), and reclaim strictly
// raises the starved site's SLO attainment over borrow-only, which
// strands the starved function's deserved share inside its peer's
// borrowed grant.
func FederationHierarchy(opt Options) (*Table, error) {
	t := &Table{
		ID:     "federation-hierarchy",
		Title:  "Hierarchical federation: flat vs quota-tree borrowing vs borrowing + cross-site reclaim",
		Header: append([]string(nil), hierarchySweepHeader...),
	}
	end := opt.dur(2*time.Minute, time.Minute)
	// Each mode is an independent cell; rows are emitted in mode order
	// after all cells complete, so the table is byte-identical at any
	// -sweep-workers count.
	results := make([]*federation.Result, len(hierarchyScenarios))
	err := forEachCell(len(results), opt.SweepWorkers, func(i int) error {
		mode := hierarchyScenarios[i]
		sites, err := hierarchySites(opt)
		if err != nil {
			return err
		}
		placer, err := federation.ParsePlacer("metro-affine")
		if err != nil {
			return err
		}
		o := opt
		o.Fed.GlobalFairShare = true
		o.Fed.Admission = true
		if o.Fed.CloudMaxConcurrency == 0 {
			o.Fed.CloudMaxConcurrency = 2
		}
		fcfg, err := federationConfig(o, sites, placer)
		if err != nil {
			return err
		}
		if mode != "flat" {
			fcfg.Hierarchy = hierarchyMetro()
			fcfg.Reclaim = mode == "reclaim"
		}
		fed, err := federation.New(fcfg)
		if err != nil {
			return err
		}
		res, err := fed.Run(end)
		if err != nil {
			return err
		}
		results[i] = res
		return nil
	})
	if err != nil {
		return nil, err
	}
	for i, mode := range hierarchyScenarios {
		res := results[i]
		hier := mode != "flat"
		if res.Hierarchical != hier {
			return nil, fmt.Errorf("experiments: %s run reports Hierarchical=%v", mode, res.Hierarchical)
		}
		if mode == "reclaim" {
			if res.Reclaimed == 0 || res.Reclaimed != res.Preempted {
				return nil, fmt.Errorf("experiments: reclaim mode landed no balanced commits: Reclaimed=%d Preempted=%d",
					res.Reclaimed, res.Preempted)
			}
		} else if res.Reclaimed != 0 || res.Preempted != 0 {
			return nil, fmt.Errorf("experiments: %s mode booked reclaim commits: Reclaimed=%d Preempted=%d",
				mode, res.Reclaimed, res.Preempted)
		}
		var arrivals, local, toPeer, toCloud, rejected, violated, total uint64
		for _, s := range res.Sites {
			var sa uint64
			for _, fr := range s.Core.Functions {
				sa += fr.Arrivals
			}
			arrivals += sa
			local += s.ServedLocal
			toPeer += s.OffloadedPeer
			toCloud += s.OffloadedCloud
			rejected += s.Rejected
			violated += s.Violations()
			total += s.SLO.Total() + s.Unresolved
			t.AddRow(mode, s.Name,
				fmt.Sprintf("%d", sa),
				fmt.Sprintf("%d", s.ServedLocal),
				fmt.Sprintf("%d", s.OffloadedPeer),
				fmt.Sprintf("%d", s.OffloadedCloud),
				fmt.Sprintf("%d", s.Rejected),
				fmt.Sprintf("%d", s.Reclaimed),
				fmt.Sprintf("%d", s.Preempted),
				msF(s.Responses.Quantile(0.95)),
				fmt.Sprintf("%.4f", honestRate(&s)))
		}
		t.AddRow(mode, "all",
			fmt.Sprintf("%d", arrivals),
			fmt.Sprintf("%d", local),
			fmt.Sprintf("%d", toPeer),
			fmt.Sprintf("%d", toCloud),
			fmt.Sprintf("%d", rejected),
			fmt.Sprintf("%d", res.Reclaimed),
			fmt.Sprintf("%d", res.Preempted),
			"",
			fmt.Sprintf("%.4f", violationRate(violated, total)))
	}
	borrow, reclaim := results[1], results[2]
	starvedBorrow := honestRate(&borrow.Sites[0])
	starvedReclaim := honestRate(&reclaim.Sites[0])
	if starvedReclaim >= starvedBorrow {
		return nil, fmt.Errorf("experiments: reclaim did not raise the starved site's SLO attainment over borrow-only: violation rate %.4f (reclaim) vs %.4f (borrow)",
			starvedReclaim, starvedBorrow)
	}
	t.AddNote("fleet: edge-0 starved (1000mC, squeezenet 120/s), edge-1 borrower (12000mC, binaryalert 500/s + idle squeezenet), edge-2 donor (12000mC, near-idle geofence); one metro, equal weights")
	t.AddNote("all modes share fleet, workload, topology, and metro-affine placement; only the allocator's quota tree and reclaim switch differ")
	t.AddNote("asserted: commits land only under reclaim (both counters balanced, zero elsewhere), and reclaim's starved-site violation rate %.4f < borrow-only's %.4f",
		starvedReclaim, starvedBorrow)
	return t, nil
}

// MissingHierarchyScenarios compares a committed sweep-baseline JSON
// against the mode rows the federation-hierarchy sweep produces and
// returns the ones the baseline's nested Hierarchy table lacks — the
// staleness signal that BENCH_federation.json was regenerated without the
// hierarchy sub-table. Baselines predating the Hierarchy field report
// every mode missing.
func MissingHierarchyScenarios(baselineJSON []byte) ([]string, error) {
	baseline, err := parseBaseline(baselineJSON)
	if err != nil {
		return nil, err
	}
	if baseline.Hierarchy == nil {
		return append([]string(nil), hierarchyScenarios...), nil
	}
	col := columnIndex(baseline.Hierarchy.Header)
	if _, ok := col["mode"]; !ok {
		return append([]string(nil), hierarchyScenarios...), nil
	}
	have := map[string]bool{}
	for _, row := range baseline.Hierarchy.Rows {
		if len(row) > col["mode"] {
			have[row[col["mode"]]] = true
		}
	}
	var missing []string
	for _, s := range hierarchyScenarios {
		if !have[s] {
			missing = append(missing, s)
		}
	}
	return missing, nil
}
