// Package core assembles the complete LaSS platform over the simulated
// edge cluster: workload generators feed per-function dispatch queues, the
// controller observes arrivals and reconciles container pools every
// evaluation interval, and metrics are collected for the experiment
// harnesses.
//
// This is the simulation counterpart of the paper's modified-OpenWhisk
// deployment (Fig 2b): the control path (controller → cluster) and the
// data path (load balancer → containers) are separated exactly as the
// prototype separates them.
package core

import (
	"fmt"
	"time"

	"lass/internal/cluster"
	"lass/internal/controller"
	"lass/internal/dispatch"
	"lass/internal/functions"
	"lass/internal/metrics"
	"lass/internal/queuing"
	"lass/internal/sim"
	"lass/internal/workload"
	"lass/internal/xrand"
)

// FunctionConfig registers one function and its offered workload.
type FunctionConfig struct {
	Spec     functions.Spec
	SLO      queuing.SLO        // zero → controller default
	Weight   float64            // zero → spec default
	User     string             // optional namespace (two-level shares)
	Workload *workload.Schedule // nil → no generated arrivals
	Prewarm  int                // containers provisioned before t=0
	// TimeLimit is the FaaS hard execution limit (§2.1); zero disables.
	TimeLimit time.Duration
}

// Config describes a complete platform.
type Config struct {
	Cluster    cluster.Config
	Controller controller.Config
	Seed       uint64
	Users      map[string]float64 // namespace weights (§5)
	Functions  []FunctionConfig
	// RecordEvery is the sampling interval for allocation/utilization
	// time series (default: the controller's evaluation interval).
	RecordEvery time.Duration
	// DisableController freezes allocations after prewarm — used by the
	// model-validation experiments that measure a fixed pool (Fig 3).
	DisableController bool
	// Engine, when non-nil, is the discrete-event engine the platform
	// runs on instead of a private one. The federation layer passes a
	// shared engine so several edge-site platforms advance on one virtual
	// clock; such platforms are driven with Start/Collect rather than Run.
	Engine *sim.Engine
	// Scheduler selects the timer-queue implementation when the platform
	// creates its own engine (ignored when Engine is set). All kinds
	// produce identical results; see sim.SchedulerKind.
	Scheduler sim.SchedulerKind
}

// FunctionResult aggregates one function's measurements over a run.
type FunctionResult struct {
	Name       string
	Waits      *metrics.Reservoir
	Responses  *metrics.Reservoir
	SLO        *metrics.SLOTracker
	Completed  uint64
	Requeued   uint64
	TimedOut   uint64
	Offloaded  uint64
	Rejected   uint64
	Arrivals   uint64
	Containers *metrics.Series // live container count over time
	CPU        *metrics.Series // live CPU (millicores) over time
	LambdaHat  *metrics.Series // controller's rate estimate over time
	Desired    *metrics.Series // model's desired container count
}

// Result is the outcome of a platform run.
type Result struct {
	Duration       time.Duration
	Functions      map[string]*FunctionResult
	Utilization    float64         // time-weighted mean cluster CPU utilization
	UtilizationTS  *metrics.Series // utilization over time
	ControllerOps  controller.Stats
	LargestFreeEnd int64
}

// Platform is the assembled simulated LaSS deployment.
type Platform struct {
	Engine     *sim.Engine
	Cluster    *cluster.Cluster
	Controller *controller.Controller
	Queues     map[string]*dispatch.Queue

	cfg     Config
	rng     *xrand.Rand
	results map[string]*FunctionResult
	utilTWA *metrics.TimeWeightedAverage
	utilTS  *metrics.Series
	runErr  error
}

// New assembles a platform from the configuration.
func New(cfg Config) (*Platform, error) {
	engine := cfg.Engine
	if engine == nil {
		engine = sim.NewEngineWithScheduler(cfg.Scheduler)
	}
	cl, err := cluster.New(cfg.Cluster)
	if err != nil {
		return nil, err
	}
	p := &Platform{
		Engine:  engine,
		Cluster: cl,
		Queues:  make(map[string]*dispatch.Queue),
		cfg:     cfg,
		rng:     xrand.New(cfg.Seed ^ 0x1a55),
		results: make(map[string]*FunctionResult),
		utilTWA: metrics.NewTimeWeightedAverage(),
		utilTS:  metrics.NewSeries("utilization"),
	}
	hooks := controller.Hooks{
		Now: engine.Now,
		ScheduleColdStart: func(c *cluster.Container, delay time.Duration, ready func()) {
			engine.After(delay, ready)
		},
		OnReady: func(c *cluster.Container) {
			if q, ok := p.Queues[c.Function]; ok {
				if err := q.AddContainer(c); err != nil && p.runErr == nil {
					p.runErr = err
				}
			}
		},
		OnRemove: func(c *cluster.Container) {
			if q, ok := p.Queues[c.Function]; ok && q.Has(c) {
				if err := q.RemoveContainer(c); err != nil && p.runErr == nil {
					p.runErr = err
				}
			}
		},
		OnResize: func(c *cluster.Container) {}, // WRR reads CPU live
	}
	ctl, err := controller.New(cfg.Controller, cl, hooks)
	if err != nil {
		return nil, err
	}
	p.Controller = ctl
	for name, w := range cfg.Users {
		if err := ctl.RegisterUser(name, w); err != nil {
			return nil, err
		}
	}
	for _, fc := range cfg.Functions {
		f, err := ctl.Register(fc.Spec, fc.User, fc.Weight, fc.SLO)
		if err != nil {
			return nil, err
		}
		slo := f.SLO
		q, err := dispatch.NewQueue(engine, fc.Spec, slo.Deadline, p.rng.Fork())
		if err != nil {
			return nil, err
		}
		learner := f.Learner()
		q.OnComplete = func(frac float64, s time.Duration) {
			learner.Observe(frac, s)
		}
		q.TimeLimit = fc.TimeLimit
		p.Queues[fc.Spec.Name] = q
		p.results[fc.Spec.Name] = &FunctionResult{
			Name:       fc.Spec.Name,
			Containers: metrics.NewSeries(fc.Spec.Name + "/containers"),
			CPU:        metrics.NewSeries(fc.Spec.Name + "/cpu"),
			LambdaHat:  metrics.NewSeries(fc.Spec.Name + "/lambda"),
			Desired:    metrics.NewSeries(fc.Spec.Name + "/desired"),
		}
	}
	// Prewarm pools before the run starts.
	for _, fc := range cfg.Functions {
		if fc.Prewarm > 0 {
			if err := ctl.Provision(fc.Spec.Name, fc.Prewarm); err != nil {
				return nil, fmt.Errorf("core: prewarm %s: %w", fc.Spec.Name, err)
			}
		}
	}
	return p, nil
}

// arrivalBatch is how many upcoming arrival times a stream pre-generates
// from its private RNG. Batching amortizes schedule lookups; because the
// stream owns its RNG fork, pre-consuming deviates leaves results
// bit-for-bit identical to one-at-a-time generation.
const arrivalBatch = 64

// arrivalStream drives one function's Poisson arrivals without allocating
// per arrival: the fire callback is bound once, upcoming arrival times are
// batch-generated into a fixed buffer, and each fired arrival schedules
// only the next one — so the engine holds at most one pending timer per
// (site, function) stream.
type arrivalStream struct {
	p      *Platform
	arr    *workload.Arrivals
	name   string
	res    *FunctionResult
	q      *dispatch.Queue
	fireFn func()
	buf    [arrivalBatch]time.Duration
	n, i   int
	ended  bool // the schedule produced a short batch: no more arrivals
}

func (s *arrivalStream) fire() {
	s.res.Arrivals++
	// Only locally-admitted requests feed the rate estimator: a request
	// the offload hook diverts is served (and provisioned for) elsewhere,
	// and counting it here would inflate this site's demand estimate with
	// load it never serves.
	if s.q.Arrive() != nil {
		s.p.Controller.RecordArrival(s.name)
	}
	s.armNext()
}

// armNext schedules the next arrival from the buffer, refilling it from
// the generator when drained. The refill continues from the last buffered
// arrival time, which at that moment equals the engine's now.
func (s *arrivalStream) armNext() {
	if s.i == s.n {
		if s.ended {
			return
		}
		s.n = s.arr.NextN(s.p.Engine.Now(), s.buf[:])
		s.i = 0
		s.ended = s.n < len(s.buf)
		if s.n == 0 {
			return
		}
	}
	s.p.Engine.Schedule(s.buf[s.i], s.fireFn)
	s.i++
}

// startArrivals launches the Poisson arrival stream for one function.
func (p *Platform) startArrivals(fc FunctionConfig) {
	if fc.Workload == nil {
		return
	}
	name := fc.Spec.Name
	s := &arrivalStream{
		p:    p,
		arr:  workload.NewArrivals(fc.Workload, p.rng.Fork()),
		name: name,
		res:  p.results[name],
		q:    p.Queues[name],
	}
	s.fireFn = s.fire
	// The first batch starts from t=0 regardless of when the stream is
	// installed, matching the schedule's origin.
	s.n = s.arr.NextN(0, s.buf[:])
	s.ended = s.n < len(s.buf)
	s.armNext()
}

// record samples the allocation and utilization series.
func (p *Platform) record() {
	now := p.Engine.Now()
	util := p.Cluster.CPUUtilization()
	p.utilTWA.Set(now, util)
	p.utilTS.Record(now, util)
	for name, res := range p.results {
		live := 0
		var cpu int64
		// Count and sum are order-independent, so the unordered
		// allocation-free walk is safe here.
		p.Cluster.EachContainerOf(name, func(c *cluster.Container) {
			if c.State() == cluster.Starting || c.State() == cluster.Running {
				live++
				cpu += c.CPUCurrent
			}
		})
		res.Containers.Record(now, float64(live))
		res.CPU.Record(now, float64(cpu))
		if f, ok := p.Controller.Function(name); ok {
			res.LambdaHat.Record(now, f.LambdaHat)
			res.Desired.Record(now, float64(f.Desired))
		}
	}
}

// Start installs the platform's arrival chains, controller epochs, and
// metric sampling on its engine without running it. Standalone runs use
// Run; the federation layer Starts each edge-site platform on a shared
// engine, drives the engine itself, and then Collects per-site results.
func (p *Platform) Start() {
	for _, fc := range p.cfg.Functions {
		p.startArrivals(fc)
	}
	if !p.cfg.DisableController {
		interval := p.Controller.Config().EvalInterval
		p.Engine.Every(interval, func() {
			if p.runErr != nil {
				return
			}
			if err := p.Controller.Step(); err != nil {
				p.runErr = err
			}
		})
	}
	recordEvery := p.cfg.RecordEvery
	if recordEvery == 0 {
		recordEvery = p.Controller.Config().EvalInterval
	}
	p.record()
	p.Engine.Every(recordEvery, p.record)
}

// Run simulates the platform for the given duration and returns the
// collected results.
func (p *Platform) Run(duration time.Duration) (*Result, error) {
	p.Start()
	p.Engine.RunUntil(duration)
	return p.Collect(duration)
}

// Collect finalizes measurement after the engine has run for duration and
// returns the platform's results.
func (p *Platform) Collect(duration time.Duration) (*Result, error) {
	if p.runErr != nil {
		return nil, p.runErr
	}
	p.record()
	res := &Result{
		Duration:       duration,
		Functions:      make(map[string]*FunctionResult, len(p.results)),
		Utilization:    p.utilTWA.Mean(duration),
		UtilizationTS:  p.utilTS,
		ControllerOps:  p.Controller.Stats(),
		LargestFreeEnd: p.Cluster.LargestFreeCPU(),
	}
	for name, r := range p.results {
		q := p.Queues[name]
		r.Waits = q.Waits
		r.Responses = q.Responses
		r.SLO = q.SLO
		r.Completed = q.Completed()
		r.Requeued = q.Requeued()
		r.TimedOut = q.TimedOut()
		r.Offloaded = q.Offloaded()
		r.Rejected = q.Rejected()
		res.Functions[name] = r
	}
	return res, nil
}
