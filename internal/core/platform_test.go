package core

import (
	"testing"
	"time"

	"lass/internal/cluster"
	"lass/internal/controller"
	"lass/internal/functions"
	"lass/internal/queuing"
	"lass/internal/workload"
)

func staticWL(t *testing.T, rate float64) *workload.Schedule {
	t.Helper()
	s, err := workload.NewStatic(rate)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestFixedPoolMeetsSLO(t *testing.T) {
	// Mini Fig 3: provision the model-computed c for λ=30, μ=10, then
	// verify the measured P95 wait stays at/below the 100ms SLO.
	spec := functions.MicroBenchmark(100 * time.Millisecond)
	spec.ColdStart = 0
	slo := queuing.SLO{Deadline: 100 * time.Millisecond, Percentile: 0.95, WaitingOnly: true}
	c, err := queuing.MinimalContainers(30, 10, slo)
	if err != nil {
		t.Fatal(err)
	}
	p, err := New(Config{
		Cluster: cluster.Config{Nodes: 4, CPUPerNode: 4000, MemPerNode: 16384},
		Seed:    1,
		Functions: []FunctionConfig{{
			Spec: spec, SLO: slo, Workload: staticWL(t, 30), Prewarm: c,
		}},
		DisableController: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Run(10 * time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	fr := res.Functions[spec.Name]
	if fr.Completed < 15000 {
		t.Fatalf("completed=%d want ~18000", fr.Completed)
	}
	p95 := fr.Waits.Quantile(0.95)
	if p95 > 0.110 {
		t.Errorf("P95 wait=%.4fs exceeds SLO 0.1s with model-sized pool (c=%d)", p95, c)
	}
	// One container fewer must violate (the model is tight).
	p2, err := New(Config{
		Cluster: cluster.Config{Nodes: 4, CPUPerNode: 4000, MemPerNode: 16384},
		Seed:    1,
		Functions: []FunctionConfig{{
			Spec: spec, SLO: slo, Workload: staticWL(t, 30), Prewarm: c - 2,
		}},
		DisableController: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	res2, err := p2.Run(10 * time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if p95small := res2.Functions[spec.Name].Waits.Quantile(0.95); p95small <= p95 {
		t.Errorf("c-2 pool P95=%.4fs not worse than model pool %.4fs", p95small, p95)
	}
}

func TestAutoScalingTracksLoad(t *testing.T) {
	// Mini Fig 6: load steps 5→30→5; the allocation must rise and fall.
	spec := functions.MicroBenchmark(100 * time.Millisecond)
	wl, err := workload.NewSteps([]workload.Step{
		{Start: 0, Rate: 5},
		{Start: 5 * time.Minute, Rate: 30},
		{Start: 10 * time.Minute, Rate: 5},
	})
	if err != nil {
		t.Fatal(err)
	}
	p, err := New(Config{
		Cluster:    cluster.PaperCluster(),
		Controller: controller.Config{MinContainers: 1},
		Seed:       2,
		Functions:  []FunctionConfig{{Spec: spec, Workload: wl, Prewarm: 1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Run(15 * time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	fr := res.Functions[spec.Name]
	lowPhase := fr.Containers.ValueAt(4 * time.Minute)
	highPhase := fr.Containers.ValueAt(9 * time.Minute)
	endPhase := fr.Containers.ValueAt(14*time.Minute + 50*time.Second)
	if highPhase <= lowPhase {
		t.Errorf("allocation did not grow: low=%v high=%v", lowPhase, highPhase)
	}
	if endPhase >= highPhase {
		t.Errorf("allocation did not shrink back: high=%v end=%v", highPhase, endPhase)
	}
	if att := fr.SLO.Attainment(); att < 0.90 {
		t.Errorf("SLO attainment %.3f < 0.90 under autoscaling", att)
	}
}

func TestOverloadBothPoliciesKeepFairShare(t *testing.T) {
	// Mini Fig 8: two equal-weight functions overload a small cluster;
	// each must retain at least ~its guaranteed half.
	for _, policy := range []controller.ReclamationPolicy{controller.Termination, controller.Deflation} {
		mb, _ := functions.ByName("binaryalert")
		mobile, _ := functions.ByName("mobilenet-v2")
		p, err := New(Config{
			Cluster:    cluster.PaperCluster(),
			Controller: controller.Config{Policy: policy},
			Seed:       3,
			Functions: []FunctionConfig{
				{Spec: mb, Workload: staticWL(t, 120), Weight: 1},
				{Spec: mobile, Workload: staticWL(t, 25), Weight: 1},
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := p.Run(5 * time.Minute)
		if err != nil {
			t.Fatal(err)
		}
		// Demands: binaryalert λ=120, μ=20 → ≥7 containers ≥ 3500mC;
		// mobilenet λ=25, μ=4 → ≥8 containers = 16000mC. Total >> 12000.
		end := 5*time.Minute - 10*time.Second
		mbCPU := res.Functions[mb.Name].CPU.ValueAt(end)
		moCPU := res.Functions[mobile.Name].CPU.ValueAt(end)
		if mbCPU < 3000 {
			t.Errorf("%v: binaryalert CPU=%v below its demand (well-behaved must get desire)", policy, mbCPU)
		}
		if moCPU < 5000 {
			t.Errorf("%v: mobilenet CPU=%v below guaranteed ~6000", policy, moCPU)
		}
		if res.ControllerOps.Overloads == 0 {
			t.Errorf("%v: overload never detected", policy)
		}
	}
}

func TestDeflationPolicyBeatsTerminationUtilization(t *testing.T) {
	// The headline Fig 8/9 comparison, miniaturized: deflation must not
	// lose to termination on mean cluster utilization.
	run := func(policy controller.ReclamationPolicy) float64 {
		mb, _ := functions.ByName("binaryalert")
		mobile, _ := functions.ByName("mobilenet-v2")
		p, err := New(Config{
			Cluster:    cluster.PaperCluster(),
			Controller: controller.Config{Policy: policy},
			Seed:       4,
			Functions: []FunctionConfig{
				{Spec: mb, Workload: staticWL(t, 120)},
				{Spec: mobile, Workload: staticWL(t, 25)},
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := p.Run(6 * time.Minute)
		if err != nil {
			t.Fatal(err)
		}
		return res.Utilization
	}
	term := run(controller.Termination)
	defl := run(controller.Deflation)
	if defl < term-0.01 {
		t.Errorf("deflation utilization %.3f < termination %.3f", defl, term)
	}
}

func TestPlatformValidation(t *testing.T) {
	if _, err := New(Config{Cluster: cluster.Config{}}); err == nil {
		t.Error("want error for invalid cluster")
	}
	spec := functions.MicroBenchmark(100 * time.Millisecond)
	if _, err := New(Config{
		Cluster:   cluster.PaperCluster(),
		Functions: []FunctionConfig{{Spec: spec}, {Spec: spec}},
	}); err == nil {
		t.Error("want error for duplicate function")
	}
	// Prewarm beyond cluster capacity fails fast.
	if _, err := New(Config{
		Cluster:   cluster.PaperCluster(),
		Functions: []FunctionConfig{{Spec: spec, Prewarm: 1000}},
	}); err == nil {
		t.Error("want error for impossible prewarm")
	}
}

func TestColdStartsDelayFirstService(t *testing.T) {
	spec := functions.MicroBenchmark(100 * time.Millisecond)
	spec.ColdStart = 2 * time.Second
	p, err := New(Config{
		Cluster:   cluster.PaperCluster(),
		Seed:      5,
		Functions: []FunctionConfig{{Spec: spec, Workload: staticWL(t, 10)}},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Run(2 * time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	fr := res.Functions[spec.Name]
	// The first requests arrive before any container exists (first Step
	// at 5s, cold start 2s): their waits include the provisioning delay.
	if max := fr.Waits.Max(); max < 5 {
		t.Errorf("max wait %.2fs; expected early requests to wait for first epoch+cold start", max)
	}
	if fr.Completed == 0 {
		t.Error("nothing completed")
	}
}

func TestDeterministicPlatformReplay(t *testing.T) {
	run := func() (uint64, float64) {
		spec := functions.MicroBenchmark(100 * time.Millisecond)
		p, err := New(Config{
			Cluster:   cluster.PaperCluster(),
			Seed:      42,
			Functions: []FunctionConfig{{Spec: spec, Workload: staticWL(t, 20), Prewarm: 2}},
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := p.Run(3 * time.Minute)
		if err != nil {
			t.Fatal(err)
		}
		fr := res.Functions[spec.Name]
		return fr.Completed, fr.Waits.Quantile(0.95)
	}
	c1, w1 := run()
	c2, w2 := run()
	if c1 != c2 || w1 != w2 {
		t.Errorf("replay diverged: (%d,%v) vs (%d,%v)", c1, w1, c2, w2)
	}
}

func TestArrivalsCounted(t *testing.T) {
	spec := functions.MicroBenchmark(100 * time.Millisecond)
	p, err := New(Config{
		Cluster:   cluster.PaperCluster(),
		Seed:      6,
		Functions: []FunctionConfig{{Spec: spec, Workload: staticWL(t, 10), Prewarm: 2}},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Run(time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	fr := res.Functions[spec.Name]
	if fr.Arrivals < 400 || fr.Arrivals > 800 {
		t.Errorf("arrivals=%d want ~600", fr.Arrivals)
	}
	if fr.LambdaHat.Last() < 5 {
		t.Errorf("controller's final rate estimate %.1f too low", fr.LambdaHat.Last())
	}
}
