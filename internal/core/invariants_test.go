package core

import (
	"testing"
	"time"

	"lass/internal/cluster"
	"lass/internal/controller"
	"lass/internal/functions"
	"lass/internal/workload"
	"lass/internal/xrand"
)

// TestInvariantCapacityNeverExceeded drives randomized multi-function
// workloads through the full platform and asserts, at every controller
// epoch, that the cluster's accounting invariants hold: allocated CPU
// never exceeds capacity on any node, and per-function request
// conservation (arrivals = completed + queued + in-flight) holds at the
// end of each run.
func TestInvariantCapacityNeverExceeded(t *testing.T) {
	rng := xrand.New(20240610)
	catalog := functions.Catalog()
	for trial := 0; trial < 8; trial++ {
		var cfgs []FunctionConfig
		nFuncs := rng.Intn(4) + 2
		for i := 0; i < nFuncs; i++ {
			spec := catalog[rng.Intn(len(catalog))]
			if hasFunc(cfgs, spec.Name) {
				continue
			}
			// Random step schedule, occasionally saturating.
			var steps []workload.Step
			at := time.Duration(0)
			for s := 0; s < rng.Intn(3)+1; s++ {
				steps = append(steps, workload.Step{
					Start: at,
					Rate:  rng.Uniform(0, 30),
				})
				at += time.Duration(rng.Intn(120)+30) * time.Second
			}
			wl, err := workload.NewSteps(steps)
			if err != nil {
				t.Fatal(err)
			}
			cfgs = append(cfgs, FunctionConfig{
				Spec: spec, Workload: wl, Weight: float64(rng.Intn(3) + 1),
				Prewarm: rng.Intn(2),
			})
		}
		if len(cfgs) == 0 {
			continue
		}
		policy := controller.ReclamationPolicy(rng.Intn(2))
		p, err := New(Config{
			Cluster:    cluster.PaperCluster(),
			Controller: controller.Config{Policy: policy},
			Seed:       rng.Uint64(),
			Functions:  cfgs,
		})
		if err != nil {
			t.Fatal(err)
		}
		// Check node-level invariants at every epoch boundary.
		p.Engine.Every(5*time.Second, func() {
			for _, n := range p.Cluster.Nodes() {
				if n.CPUUsed() > n.CPUCapacity {
					t.Fatalf("trial %d: node %d CPU %d > capacity %d",
						trial, n.ID, n.CPUUsed(), n.CPUCapacity)
				}
				if n.MemUsed() > n.MemCapacity {
					t.Fatalf("trial %d: node %d mem %d > capacity %d",
						trial, n.ID, n.MemUsed(), n.MemCapacity)
				}
				var sum int64
				for _, c := range n.Containers() {
					if c.CPUCurrent <= 0 || c.CPUCurrent > c.CPUStandard {
						t.Fatalf("trial %d: container %d CPU %d outside (0,%d]",
							trial, c.ID, c.CPUCurrent, c.CPUStandard)
					}
					sum += c.CPUCurrent
				}
				if sum != n.CPUUsed() {
					t.Fatalf("trial %d: node %d accounting drift: %d != %d",
						trial, n.ID, sum, n.CPUUsed())
				}
			}
		})
		res, err := p.Run(6 * time.Minute)
		if err != nil {
			t.Fatal(err)
		}
		for name, fr := range res.Functions {
			q := p.Queues[name]
			accounted := fr.Completed + fr.TimedOut + uint64(q.QueueLength()) + uint64(q.InFlight())
			if fr.Arrivals != accounted {
				t.Errorf("trial %d: %s conservation: %d arrivals vs %d accounted",
					trial, name, fr.Arrivals, accounted)
			}
		}
	}
}

func hasFunc(cfgs []FunctionConfig, name string) bool {
	for _, c := range cfgs {
		if c.Spec.Name == name {
			return true
		}
	}
	return false
}

// TestTraceDrivenRun exercises the Azure-trace path end to end through
// the platform config.
func TestTraceDrivenRun(t *testing.T) {
	counts := []float64{600, 1200, 300, 0, 900} // per-minute
	wl, err := workload.FromPerMinuteCounts(counts)
	if err != nil {
		t.Fatal(err)
	}
	spec, err := functions.ByName("geofence")
	if err != nil {
		t.Fatal(err)
	}
	p, err := New(Config{
		Cluster:    cluster.PaperCluster(),
		Controller: controller.Config{MinContainers: 1},
		Seed:       9,
		Functions:  []FunctionConfig{{Spec: spec, Workload: wl, Prewarm: 1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Run(5 * time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	fr := res.Functions[spec.Name]
	// Expected arrivals: sum of counts = 3000 (±5σ).
	if fr.Arrivals < 2700 || fr.Arrivals > 3300 {
		t.Errorf("arrivals=%d want ~3000", fr.Arrivals)
	}
	// Minute 3 is silent: no arrivals between 3:00 and 4:00.
	if fr.Completed == 0 {
		t.Error("nothing completed")
	}
}

// TestLearnerIntegration verifies the data path feeds the online
// service-time learner (§5) through the platform wiring.
func TestLearnerIntegration(t *testing.T) {
	spec := functions.MicroBenchmark(100 * time.Millisecond)
	wl, err := workload.NewStatic(20)
	if err != nil {
		t.Fatal(err)
	}
	p, err := New(Config{
		Cluster:   cluster.PaperCluster(),
		Seed:      10,
		Functions: []FunctionConfig{{Spec: spec, Workload: wl, Prewarm: 2}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Run(2 * time.Minute); err != nil {
		t.Fatal(err)
	}
	f, ok := p.Controller.Function(spec.Name)
	if !ok {
		t.Fatal("function missing")
	}
	if f.Learner().Observations() < 1000 {
		t.Errorf("learner saw only %d completions", f.Learner().Observations())
	}
	mean, ok := f.Learner().MeanServiceTime(1.0)
	if !ok {
		t.Fatal("no learned estimate")
	}
	// The learner's EWMA (alpha=0.05) over exponential samples has
	// stddev ~16ms around the true 100ms mean; accept a wide band.
	if mean < 60*time.Millisecond || mean > 150*time.Millisecond {
		t.Errorf("learned mean %v want ~100ms", mean)
	}
}

// TestPredictorIntegration attaches a trend predictor through the
// platform and checks it beats the purely reactive estimator on a steep
// ramp (the reactive long window lags the ramp by construction; the
// predictor's extrapolation compensates).
func TestPredictorIntegration(t *testing.T) {
	run := func(withPredictor bool) float64 {
		spec := functions.MicroBenchmark(100 * time.Millisecond)
		wl, err := workload.NewRamp(5, 50, 0, 4*time.Minute, 5*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		p, err := New(Config{
			Cluster:   cluster.PaperCluster(),
			Seed:      11,
			Functions: []FunctionConfig{{Spec: spec, Workload: wl, Prewarm: 1}},
		})
		if err != nil {
			t.Fatal(err)
		}
		if withPredictor {
			pred, err := controller.NewTrendPredictor(12, 1.0)
			if err != nil {
				t.Fatal(err)
			}
			if err := p.Controller.SetPredictor(spec.Name, pred); err != nil {
				t.Fatal(err)
			}
		}
		res, err := p.Run(4 * time.Minute)
		if err != nil {
			t.Fatal(err)
		}
		return res.Functions[spec.Name].SLO.Attainment()
	}
	reactive := run(false)
	predicted := run(true)
	if predicted < reactive {
		t.Errorf("trend predictor attainment %.3f below reactive %.3f on a ramp", predicted, reactive)
	}
}
