package sim

import (
	"sort"
	"time"
)

// calendarQueue is an indexed calendar queue (R. Brown, "Calendar Queues: A
// Fast O(1) Priority Queue Implementation for the Simulation Event Set
// Problem", CACM 1988). Timers are spread across a power-of-two array of
// buckets by ⌊at/width⌋ mod nbuckets — like days of a year across a wall
// calendar — and a cursor walks the buckets in time order, so push and pop
// are amortized O(1) when timestamps are spread evenly, the regime of
// metro-scale arrival streams.
//
// Each bucket is kept sorted by (at, seq), so the queue yields exactly the
// timerLess total order the engine requires; simulations are bit-for-bit
// identical to the heap scheduler. The queue resizes (doubling or halving
// the bucket count and re-estimating the width from observed gaps) when the
// population drifts outside [nbuckets/2, 2·nbuckets].
type calendarQueue struct {
	buckets [][]timer     // each sorted ascending by timerLess
	mask    int           // len(buckets)-1; len is a power of two
	width   time.Duration // virtual time covered by one bucket
	n       int           // timers stored across all buckets
	cur     int           // bucket the dequeue cursor is on
	curTop  time.Duration // end of cur's current year-slice; multiple of width
}

const (
	calMinBuckets    = 4
	calDefaultWidth  = time.Millisecond
	calResizeSamples = 128
)

func newCalendarQueue() *calendarQueue {
	c := &calendarQueue{width: calDefaultWidth}
	c.buckets = make([][]timer, calMinBuckets)
	c.mask = calMinBuckets - 1
	return c
}

func (c *calendarQueue) len() int { return c.n }

func (c *calendarQueue) bucketOf(at time.Duration) int {
	return int(uint64(at)/uint64(c.width)) & c.mask
}

// yearEnd returns the smallest multiple of width strictly greater than at:
// the upper edge of the bucket slice containing at.
func (c *calendarQueue) yearEnd(at time.Duration) time.Duration {
	return (at/c.width + 1) * c.width
}

func (c *calendarQueue) push(tm timer) {
	if c.n == 0 || tm.at < c.curTop-c.width {
		// Re-anchor the cursor at the new timer: either the queue was
		// empty (the cursor is stale from the last pop), or the timer
		// lands before the cursor's current year-slice (pushes are not
		// monotone) and would otherwise hide behind it. Moving the
		// cursor backward is always safe — the scan only takes longer —
		// and keeps the invariant that no stored timer precedes the
		// cursor's slice.
		c.cur = c.bucketOf(tm.at)
		c.curTop = c.yearEnd(tm.at)
	}
	idx := c.bucketOf(tm.at)
	b := c.buckets[idx]
	// Insertion sort from the back: pushes are usually in roughly
	// increasing time order, so the common case is a plain append.
	i := len(b)
	b = append(b, tm)
	for i > 0 && timerLess(tm, b[i-1]) {
		b[i] = b[i-1]
		i--
	}
	b[i] = tm
	c.buckets[idx] = b
	c.n++
	if c.n > 2*len(c.buckets) {
		c.rebuild(len(c.buckets) * 2)
	}
}

func (c *calendarQueue) pop() (timer, bool) {
	if c.n == 0 {
		return timer{}, false
	}
	if nb := len(c.buckets); nb > calMinBuckets && c.n < nb/2 {
		c.rebuild(nb / 2)
	}
	// Scan at most one full year from the cursor. Every stored timer is at
	// or after the last popped time, so nothing can hide behind the
	// cursor; the head of the current bucket is in the current year-slice
	// iff its timestamp is below curTop.
	for scanned := 0; scanned <= c.mask; scanned++ {
		b := c.buckets[c.cur]
		if len(b) > 0 && b[0].at < c.curTop {
			return c.take(c.cur), true
		}
		c.cur = (c.cur + 1) & c.mask
		c.curTop += c.width
	}
	// Nothing within a whole year of the cursor (a long gap in virtual
	// time): jump straight to the global minimum and re-anchor there.
	best := -1
	for i, b := range c.buckets {
		if len(b) == 0 {
			continue
		}
		if best < 0 || timerLess(b[0], c.buckets[best][0]) {
			best = i
		}
	}
	tm := c.buckets[best][0]
	c.cur = best
	c.curTop = c.yearEnd(tm.at)
	return c.take(best), true
}

// take removes and returns the head of bucket i.
func (c *calendarQueue) take(i int) timer {
	b := c.buckets[i]
	tm := b[0]
	copy(b, b[1:])
	c.buckets[i] = b[:len(b)-1]
	c.n--
	return tm
}

func (c *calendarQueue) compact(dead func(timer) bool) {
	for i, b := range c.buckets {
		live := b[:0]
		for _, tm := range b {
			if !dead(tm) {
				live = append(live, tm)
			}
		}
		c.n -= len(b) - len(live)
		c.buckets[i] = live
	}
	// Re-bucket: the sweep may have removed enough timers that the old
	// geometry (and width estimate) no longer fits the survivors.
	nb := len(c.buckets)
	for nb > calMinBuckets && c.n < nb/2 {
		nb /= 2
	}
	c.rebuild(nb)
}

// rebuild redistributes every timer across nb buckets, re-estimating the
// bucket width from the observed gaps between adjacent timestamps. Timers
// are distributed in sorted order, so each new bucket is built by plain
// appends and stays sorted.
func (c *calendarQueue) rebuild(nb int) {
	all := make([]timer, 0, c.n)
	for _, b := range c.buckets {
		all = append(all, b...)
	}
	sort.Slice(all, func(i, j int) bool { return timerLess(all[i], all[j]) })

	c.width = estimateWidth(all, c.width)
	c.buckets = make([][]timer, nb)
	c.mask = nb - 1
	for _, tm := range all {
		i := c.bucketOf(tm.at)
		c.buckets[i] = append(c.buckets[i], tm)
	}
	if c.n > 0 {
		// all is sorted, so all[0] is the global minimum.
		c.cur = c.bucketOf(all[0].at)
		c.curTop = c.yearEnd(all[0].at)
	}
}

// estimateWidth picks a bucket width from the gaps between adjacent
// timestamps in the sorted timer slice: twice the trimmed-mean gap, so a
// bucket holds a couple of timers on average while outlier gaps (idle
// stretches) cannot inflate the estimate. Falls back to the previous width
// when there are too few distinct timestamps to measure.
func estimateWidth(sorted []timer, prev time.Duration) time.Duration {
	if len(sorted) < 2 {
		return prev
	}
	stride := 1
	if len(sorted) > calResizeSamples {
		stride = len(sorted) / calResizeSamples
	}
	gaps := make([]time.Duration, 0, calResizeSamples+1)
	for i := stride; i < len(sorted); i += stride {
		if g := sorted[i].at - sorted[i-stride].at; g > 0 {
			gaps = append(gaps, g)
		}
	}
	if len(gaps) == 0 {
		return prev // all timestamps equal: width is irrelevant for order
	}
	sort.Slice(gaps, func(i, j int) bool { return gaps[i] < gaps[j] })
	lo, hi := len(gaps)/4, 3*len(gaps)/4
	if hi == lo {
		hi = lo + 1
	}
	var sum time.Duration
	for _, g := range gaps[lo:hi] {
		sum += g
	}
	mean := sum / time.Duration(hi-lo)
	// Each sampled gap spans stride adjacent-timer gaps, so scale the mean
	// back down to one gap before doubling — otherwise the width inflates
	// by stride^2 on large populations and every timer lands in the same
	// bucket, degrading push to O(n).
	w := time.Duration(float64(mean) * 2 / float64(stride))
	if w < 1 {
		w = 1
	}
	return w
}
