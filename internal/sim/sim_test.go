package sim

import (
	"testing"
	"time"
)

func TestEventsFireInTimestampOrder(t *testing.T) {
	e := NewEngine()
	var order []int
	e.Schedule(3*time.Second, func() { order = append(order, 3) })
	e.Schedule(1*time.Second, func() { order = append(order, 1) })
	e.Schedule(2*time.Second, func() { order = append(order, 2) })
	e.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Errorf("order = %v", order)
	}
	if e.Now() != 3*time.Second {
		t.Errorf("clock = %v", e.Now())
	}
}

func TestSimultaneousEventsFIFO(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(time.Second, func() { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("FIFO violated: %v", order)
		}
	}
}

func TestSchedulePastPanics(t *testing.T) {
	e := NewEngine()
	e.Schedule(time.Second, func() {})
	e.Run()
	defer func() {
		if recover() == nil {
			t.Error("want panic scheduling in the past")
		}
	}()
	e.Schedule(500*time.Millisecond, func() {})
}

func TestCancel(t *testing.T) {
	e := NewEngine()
	fired := false
	ev := e.Schedule(time.Second, func() { fired = true })
	ev.Cancel()
	e.Run()
	if fired {
		t.Error("cancelled event fired")
	}
	if !ev.Cancelled() {
		t.Error("Cancelled() false")
	}
	var nilEv *Event
	nilEv.Cancel() // must not panic
	if !nilEv.Cancelled() {
		t.Error("nil event should report cancelled")
	}
}

func TestAfterRelativeScheduling(t *testing.T) {
	e := NewEngine()
	var at time.Duration
	e.Schedule(2*time.Second, func() {
		e.After(3*time.Second, func() { at = e.Now() })
	})
	e.Run()
	if at != 5*time.Second {
		t.Errorf("After fired at %v want 5s", at)
	}
	// Negative delay clamps to now.
	e2 := NewEngine()
	ran := false
	e2.Schedule(time.Second, func() {
		e2.After(-time.Second, func() { ran = e2.Now() == time.Second })
	})
	e2.Run()
	if !ran {
		t.Error("negative After did not clamp to now")
	}
}

func TestEveryPeriodicAndStop(t *testing.T) {
	e := NewEngine()
	count := 0
	var task *Task
	task = e.Every(time.Second, func() {
		count++
		if count == 5 {
			task.Stop()
		}
	})
	e.RunUntil(time.Minute)
	if count != 5 {
		t.Errorf("ticks = %d want 5", count)
	}
	if e.Now() != time.Minute {
		t.Errorf("clock = %v want 1m", e.Now())
	}
	task.Stop() // double stop is a no-op
}

func TestEveryFrom(t *testing.T) {
	e := NewEngine()
	var times []time.Duration
	task := e.EveryFrom(0, 10*time.Second, func() { times = append(times, e.Now()) })
	e.RunUntil(25 * time.Second)
	task.Stop()
	want := []time.Duration{0, 10 * time.Second, 20 * time.Second}
	if len(times) != len(want) {
		t.Fatalf("ticks at %v", times)
	}
	for i := range want {
		if times[i] != want[i] {
			t.Errorf("tick %d at %v want %v", i, times[i], want[i])
		}
	}
}

func TestEveryFromPastStartClamps(t *testing.T) {
	e := NewEngine()
	e.Schedule(10*time.Second, func() {})
	e.Run() // clock now at 10s
	var times []time.Duration
	task := e.EveryFrom(4*time.Second, 3*time.Second, func() { times = append(times, e.Now()) })
	e.RunUntil(17 * time.Second)
	task.Stop()
	// Start clamps to now (10s), like After clamps negative delays.
	want := []time.Duration{10 * time.Second, 13 * time.Second, 16 * time.Second}
	if len(times) != len(want) {
		t.Fatalf("ticks at %v want %v", times, want)
	}
	for i := range want {
		if times[i] != want[i] {
			t.Errorf("tick %d at %v want %v", i, times[i], want[i])
		}
	}
}

func TestCancelCompactsHeap(t *testing.T) {
	e := NewEngine()
	const total, keep = 1000, 10
	events := make([]*Event, 0, total)
	fired := 0
	for i := 0; i < total; i++ {
		events = append(events, e.Schedule(time.Hour, func() { fired++ }))
	}
	for i := keep; i < total; i++ {
		events[i].Cancel()
	}
	// Compaction keeps dead events at no more than half the heap, so
	// Pending is bounded by twice the live count (plus one for an odd
	// heap) instead of holding all 990 corpses until they are popped.
	if bound := 2*keep + 1; e.Pending() > bound {
		t.Errorf("Pending=%d after cancelling %d of %d, want <= %d", e.Pending(), total-keep, total, bound)
	}
	e.Run()
	if fired != keep {
		t.Errorf("fired=%d want %d", fired, keep)
	}
}

func TestStopCompactsHeap(t *testing.T) {
	e := NewEngine()
	var tasks []*Task
	for i := 0; i < 500; i++ {
		tasks = append(tasks, e.Every(time.Hour, func() {}))
	}
	for _, task := range tasks {
		task.Stop()
	}
	if e.Pending() > 1 {
		t.Errorf("Pending=%d after stopping every task, want <= 1", e.Pending())
	}
	e.Run()
	if e.Fired() != 0 {
		t.Errorf("Fired=%d want 0", e.Fired())
	}
}

func TestCancelAfterFireIsNoop(t *testing.T) {
	e := NewEngine()
	ev := e.Schedule(time.Second, func() {})
	e.Schedule(2*time.Second, func() {})
	e.Run()
	ev.Cancel() // already fired: must not corrupt the dead-event counter
	ev.Cancel()
	e.Schedule(3*time.Second, func() {})
	e.Run()
	if e.Fired() != 3 {
		t.Errorf("Fired=%d want 3", e.Fired())
	}
}

func TestEveryInvalidPeriodPanics(t *testing.T) {
	e := NewEngine()
	defer func() {
		if recover() == nil {
			t.Error("want panic")
		}
	}()
	e.Every(0, func() {})
}

func TestRunUntilLeavesFutureEvents(t *testing.T) {
	e := NewEngine()
	fired := 0
	e.Schedule(time.Second, func() { fired++ })
	e.Schedule(10*time.Second, func() { fired++ })
	e.RunUntil(5 * time.Second)
	if fired != 1 {
		t.Errorf("fired=%d want 1", fired)
	}
	if e.Pending() != 1 {
		t.Errorf("pending=%d want 1", e.Pending())
	}
	if e.Now() != 5*time.Second {
		t.Errorf("clock=%v want 5s", e.Now())
	}
	e.RunUntil(15 * time.Second)
	if fired != 2 {
		t.Errorf("fired=%d want 2", fired)
	}
}

func TestStepReturnsFalseWhenEmpty(t *testing.T) {
	e := NewEngine()
	if e.Step() {
		t.Error("Step on empty engine returned true")
	}
	e.Schedule(time.Second, func() {})
	if !e.Step() {
		t.Error("Step with events returned false")
	}
	if e.Fired() != 1 {
		t.Errorf("Fired=%d", e.Fired())
	}
}

func TestEventsScheduledDuringRun(t *testing.T) {
	e := NewEngine()
	depth := 0
	var recurse func()
	recurse = func() {
		depth++
		if depth < 100 {
			e.After(time.Millisecond, recurse)
		}
	}
	e.Schedule(0, recurse)
	e.Run()
	if depth != 100 {
		t.Errorf("depth=%d", depth)
	}
	if e.Now() != 99*time.Millisecond {
		t.Errorf("clock=%v", e.Now())
	}
}

func TestRealClockMonotone(t *testing.T) {
	c := NewRealClock()
	a := c.Now()
	b := c.Now()
	if b < a {
		t.Errorf("real clock went backwards: %v then %v", a, b)
	}
}

func TestClockInterfaceSatisfied(t *testing.T) {
	var _ Clock = NewEngine()
	var _ Clock = NewRealClock()
}
