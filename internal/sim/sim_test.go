package sim

import (
	"testing"
	"time"
)

// engines runs f against every scheduler implementation: the engine API
// contract must hold identically for all of them.
func engines(t *testing.T, f func(t *testing.T, e *Engine)) {
	t.Helper()
	for _, kind := range []SchedulerKind{SchedulerHeap, SchedulerCalendar} {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			f(t, NewEngineWithScheduler(kind))
		})
	}
}

func TestEventsFireInTimestampOrder(t *testing.T) {
	engines(t, func(t *testing.T, e *Engine) {
		var order []int
		e.Schedule(3*time.Second, func() { order = append(order, 3) })
		e.Schedule(1*time.Second, func() { order = append(order, 1) })
		e.Schedule(2*time.Second, func() { order = append(order, 2) })
		e.Run()
		if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
			t.Errorf("order = %v", order)
		}
		if e.Now() != 3*time.Second {
			t.Errorf("clock = %v", e.Now())
		}
	})
}

func TestSimultaneousEventsFIFO(t *testing.T) {
	engines(t, func(t *testing.T, e *Engine) {
		var order []int
		for i := 0; i < 10; i++ {
			i := i
			e.Schedule(time.Second, func() { order = append(order, i) })
		}
		e.Run()
		for i, v := range order {
			if v != i {
				t.Fatalf("FIFO violated: %v", order)
			}
		}
	})
}

func TestSchedulePastPanics(t *testing.T) {
	engines(t, func(t *testing.T, e *Engine) {
		e.Schedule(time.Second, func() {})
		e.Run()
		defer func() {
			if recover() == nil {
				t.Error("want panic scheduling in the past")
			}
		}()
		e.Schedule(500*time.Millisecond, func() {})
	})
}

func TestCancel(t *testing.T) {
	engines(t, func(t *testing.T, e *Engine) {
		fired := false
		ev := e.Schedule(time.Second, func() { fired = true })
		ev.Cancel()
		e.Run()
		if fired {
			t.Error("cancelled event fired")
		}
		if !ev.Cancelled() {
			t.Error("Cancelled() false")
		}
		var zero Event
		zero.Cancel() // must not panic
		if !zero.Cancelled() {
			t.Error("zero-value event should report cancelled")
		}
	})
}

func TestCancelledAfterFire(t *testing.T) {
	engines(t, func(t *testing.T, e *Engine) {
		ev := e.Schedule(time.Second, func() {})
		if ev.Cancelled() {
			t.Error("pending event reports cancelled")
		}
		e.Run()
		if !ev.Cancelled() {
			t.Error("fired event should report it will no longer fire")
		}
	})
}

func TestAfterRelativeScheduling(t *testing.T) {
	engines(t, func(t *testing.T, e *Engine) {
		var at time.Duration
		e.Schedule(2*time.Second, func() {
			e.After(3*time.Second, func() { at = e.Now() })
		})
		e.Run()
		if at != 5*time.Second {
			t.Errorf("After fired at %v want 5s", at)
		}
	})
	// Negative delay clamps to now.
	e2 := NewEngine()
	ran := false
	e2.Schedule(time.Second, func() {
		e2.After(-time.Second, func() { ran = e2.Now() == time.Second })
	})
	e2.Run()
	if !ran {
		t.Error("negative After did not clamp to now")
	}
}

func TestEveryPeriodicAndStop(t *testing.T) {
	engines(t, func(t *testing.T, e *Engine) {
		count := 0
		var task *Task
		task = e.Every(time.Second, func() {
			count++
			if count == 5 {
				task.Stop()
			}
		})
		e.RunUntil(time.Minute)
		if count != 5 {
			t.Errorf("ticks = %d want 5", count)
		}
		if e.Now() != time.Minute {
			t.Errorf("clock = %v want 1m", e.Now())
		}
		task.Stop() // double stop is a no-op
	})
}

func TestEveryFrom(t *testing.T) {
	engines(t, func(t *testing.T, e *Engine) {
		var times []time.Duration
		task := e.EveryFrom(0, 10*time.Second, func() { times = append(times, e.Now()) })
		e.RunUntil(25 * time.Second)
		task.Stop()
		want := []time.Duration{0, 10 * time.Second, 20 * time.Second}
		if len(times) != len(want) {
			t.Fatalf("ticks at %v", times)
		}
		for i := range want {
			if times[i] != want[i] {
				t.Errorf("tick %d at %v want %v", i, times[i], want[i])
			}
		}
	})
}

func TestEveryFromPastStartClamps(t *testing.T) {
	e := NewEngine()
	e.Schedule(10*time.Second, func() {})
	e.Run() // clock now at 10s
	var times []time.Duration
	task := e.EveryFrom(4*time.Second, 3*time.Second, func() { times = append(times, e.Now()) })
	e.RunUntil(17 * time.Second)
	task.Stop()
	// Start clamps to now (10s), like After clamps negative delays.
	want := []time.Duration{10 * time.Second, 13 * time.Second, 16 * time.Second}
	if len(times) != len(want) {
		t.Fatalf("ticks at %v want %v", times, want)
	}
	for i := range want {
		if times[i] != want[i] {
			t.Errorf("tick %d at %v want %v", i, times[i], want[i])
		}
	}
}

func TestCancelCompactsQueue(t *testing.T) {
	engines(t, func(t *testing.T, e *Engine) {
		const total, keep = 1000, 10
		events := make([]Event, 0, total)
		fired := 0
		for i := 0; i < total; i++ {
			events = append(events, e.Schedule(time.Hour, func() { fired++ }))
		}
		for i := keep; i < total; i++ {
			events[i].Cancel()
		}
		// Compaction keeps dead timers at no more than half the queue, so
		// Pending is bounded by twice the live count (plus one for an odd
		// queue) instead of holding all 990 corpses until they are popped.
		if bound := 2*keep + 1; e.Pending() > bound {
			t.Errorf("Pending=%d after cancelling %d of %d, want <= %d", e.Pending(), total-keep, total, bound)
		}
		e.Run()
		if fired != keep {
			t.Errorf("fired=%d want %d", fired, keep)
		}
	})
}

func TestStopCompactsQueue(t *testing.T) {
	engines(t, func(t *testing.T, e *Engine) {
		var tasks []*Task
		for i := 0; i < 500; i++ {
			tasks = append(tasks, e.Every(time.Hour, func() {}))
		}
		for _, task := range tasks {
			task.Stop()
		}
		if e.Pending() > 1 {
			t.Errorf("Pending=%d after stopping every task, want <= 1", e.Pending())
		}
		e.Run()
		if e.Fired() != 0 {
			t.Errorf("Fired=%d want 0", e.Fired())
		}
	})
}

func TestCancelAfterFireIsNoop(t *testing.T) {
	engines(t, func(t *testing.T, e *Engine) {
		ev := e.Schedule(time.Second, func() {})
		e.Schedule(2*time.Second, func() {})
		e.Run()
		ev.Cancel() // already fired: must not corrupt the dead-timer counter
		ev.Cancel()
		e.Schedule(3*time.Second, func() {})
		e.Run()
		if e.Fired() != 3 {
			t.Errorf("Fired=%d want 3", e.Fired())
		}
	})
}

// TestStaleHandleAfterSlotReuse pins down the generation check: once an
// event has fired, its slot may be recycled for a new event, and the old
// handle must neither cancel nor observe the new occupant.
func TestStaleHandleAfterSlotReuse(t *testing.T) {
	engines(t, func(t *testing.T, e *Engine) {
		old := e.Schedule(time.Second, func() {})
		e.Run()
		fired := false
		fresh := e.Schedule(2*time.Second, func() { fired = true })
		old.Cancel() // stale handle: must not cancel the reused slot
		if fresh.Cancelled() {
			t.Fatal("stale Cancel hit the recycled slot")
		}
		e.Run()
		if !fired {
			t.Error("event in recycled slot did not fire")
		}
		if !old.Cancelled() {
			t.Error("stale handle should report cancelled")
		}
	})
}

func TestEveryInvalidPeriodPanics(t *testing.T) {
	e := NewEngine()
	defer func() {
		if recover() == nil {
			t.Error("want panic")
		}
	}()
	e.Every(0, func() {})
}

func TestRunUntilLeavesFutureEvents(t *testing.T) {
	engines(t, func(t *testing.T, e *Engine) {
		fired := 0
		e.Schedule(time.Second, func() { fired++ })
		e.Schedule(10*time.Second, func() { fired++ })
		e.RunUntil(5 * time.Second)
		if fired != 1 {
			t.Errorf("fired=%d want 1", fired)
		}
		if e.Pending() != 1 {
			t.Errorf("pending=%d want 1", e.Pending())
		}
		if e.Now() != 5*time.Second {
			t.Errorf("clock=%v want 5s", e.Now())
		}
		e.RunUntil(15 * time.Second)
		if fired != 2 {
			t.Errorf("fired=%d want 2", fired)
		}
	})
}

func TestStepReturnsFalseWhenEmpty(t *testing.T) {
	engines(t, func(t *testing.T, e *Engine) {
		if e.Step() {
			t.Error("Step on empty engine returned true")
		}
		e.Schedule(time.Second, func() {})
		if !e.Step() {
			t.Error("Step with events returned false")
		}
		if e.Fired() != 1 {
			t.Errorf("Fired=%d", e.Fired())
		}
	})
}

func TestEventsScheduledDuringRun(t *testing.T) {
	engines(t, func(t *testing.T, e *Engine) {
		depth := 0
		var recurse func()
		recurse = func() {
			depth++
			if depth < 100 {
				e.After(time.Millisecond, recurse)
			}
		}
		e.Schedule(0, recurse)
		e.Run()
		if depth != 100 {
			t.Errorf("depth=%d", depth)
		}
		if e.Now() != 99*time.Millisecond {
			t.Errorf("clock=%v", e.Now())
		}
	})
}

// TestPendingNeverUndercounts is the regression test for the old engine's
// double bookkeeping: Step and RunUntil each drained corpses with their own
// dead-- path, so an interleaving of cancels, compactions, and mixed
// Step/RunUntil draining could drive the dead counter negative and make
// Pending undercount. All draining now goes through popLive; this hammers
// the interleaving and checks the books after every operation.
func TestPendingNeverUndercounts(t *testing.T) {
	engines(t, func(t *testing.T, e *Engine) {
		check := func(op string, live int) {
			t.Helper()
			if e.Pending() < live {
				t.Fatalf("after %s: Pending=%d below live=%d", op, e.Pending(), live)
			}
			if e.dead < 0 {
				t.Fatalf("after %s: dead counter negative (%d)", op, e.dead)
			}
			if e.dead > e.Pending() {
				t.Fatalf("after %s: dead=%d exceeds Pending=%d", op, e.dead, e.Pending())
			}
		}
		fired := 0
		live := 0
		base := e.Now()
		for round := 0; round < 50; round++ {
			evs := make([]Event, 0, 40)
			for i := 0; i < 40; i++ {
				evs = append(evs, e.Schedule(base+time.Duration(round+1)*time.Second+time.Duration(i)*time.Millisecond, func() { fired++ }))
				live++
			}
			// Cancel a majority to force repeated compactions.
			for i := 0; i < 30; i++ {
				evs[i].Cancel()
				live--
				check("cancel", live)
			}
			// Drain alternately via Step and RunUntil.
			if round%2 == 0 {
				for i := 0; i < 5 && e.Step(); i++ {
					live--
					check("step", live)
				}
			} else {
				e.RunUntil(base + time.Duration(round+1)*time.Second + 4*time.Millisecond)
				live = 0
				for _, ev := range evs {
					if !ev.Cancelled() {
						live++
					}
				}
				check("rununtil", live)
			}
			// Cancel survivors so each round starts clean.
			for _, ev := range evs {
				if !ev.Cancelled() {
					ev.Cancel()
					live--
					check("cleanup-cancel", live)
				}
			}
		}
		e.Run()
		if e.Pending() != 0 {
			t.Errorf("Pending=%d after Run, want 0", e.Pending())
		}
		if e.dead != 0 {
			t.Errorf("dead=%d after Run, want 0", e.dead)
		}
	})
}

// TestSteadyStateSteppingDoesNotAllocate verifies the slot-pool design:
// once the engine has reached its high-water mark, a schedule/fire cycle
// reuses pooled storage and allocates nothing.
func TestSteadyStateSteppingDoesNotAllocate(t *testing.T) {
	engines(t, func(t *testing.T, e *Engine) {
		fn := func() {}
		// Warm up to the high-water mark.
		for i := 0; i < 1000; i++ {
			e.After(time.Duration(i)*time.Millisecond, fn)
		}
		e.Run()
		var d time.Duration
		allocs := testing.AllocsPerRun(1000, func() {
			d += time.Millisecond
			e.After(d, fn)
			e.Step()
		})
		if allocs > 0.1 {
			t.Errorf("steady-state schedule+fire allocates %.2f objects/op, want 0", allocs)
		}
	})
}

// TestCalendarSparseGaps drives the calendar queue through its
// direct-search fallback: events separated by far more than a full bucket
// rotation must still fire in order.
func TestCalendarSparseGaps(t *testing.T) {
	e := NewEngineWithScheduler(SchedulerCalendar)
	var times []time.Duration
	record := func() { times = append(times, e.Now()) }
	e.Schedule(time.Microsecond, record)
	e.Schedule(100*time.Hour, record)
	e.Schedule(200*time.Hour, record)
	e.Schedule(200*time.Hour+time.Nanosecond, record)
	e.Run()
	want := []time.Duration{time.Microsecond, 100 * time.Hour, 200 * time.Hour, 200*time.Hour + time.Nanosecond}
	if len(times) != len(want) {
		t.Fatalf("fired at %v want %v", times, want)
	}
	for i := range want {
		if times[i] != want[i] {
			t.Errorf("event %d at %v want %v", i, times[i], want[i])
		}
	}
}

// TestCalendarResize pushes the population up and down across resize
// thresholds while checking pop order.
func TestCalendarResize(t *testing.T) {
	e := NewEngineWithScheduler(SchedulerCalendar)
	var prev time.Duration = -1
	check := func() {
		now := e.Now()
		if now < prev {
			t.Fatalf("time went backwards: %v after %v", now, prev)
		}
		prev = now
	}
	// Grow: thousands of events across a wide span.
	for i := 0; i < 5000; i++ {
		e.Schedule(time.Duration(i%977)*time.Millisecond+time.Duration(i)*time.Microsecond, check)
	}
	// Drain most (shrink path), interleaving new pushes.
	for i := 0; i < 4000; i++ {
		e.Step()
	}
	for i := 0; i < 100; i++ {
		e.After(time.Duration(i)*time.Second, check)
	}
	e.Run()
	if e.Fired() != 5100 {
		t.Errorf("Fired=%d want 5100", e.Fired())
	}
}

func TestParseSchedulerKind(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want SchedulerKind
		err  bool
	}{
		{"heap", SchedulerHeap, false},
		{"", SchedulerHeap, false},
		{"calendar", SchedulerCalendar, false},
		{"splay", SchedulerHeap, true},
	} {
		got, err := ParseSchedulerKind(tc.in)
		if (err != nil) != tc.err {
			t.Errorf("ParseSchedulerKind(%q) err=%v want err=%v", tc.in, err, tc.err)
		}
		if err == nil && got != tc.want {
			t.Errorf("ParseSchedulerKind(%q)=%v want %v", tc.in, got, tc.want)
		}
	}
	if SchedulerHeap.String() != "heap" || SchedulerCalendar.String() != "calendar" {
		t.Error("SchedulerKind.String mismatch")
	}
}

func TestRealClockMonotone(t *testing.T) {
	c := NewRealClock()
	a := c.Now()
	b := c.Now()
	if b < a {
		t.Errorf("real clock went backwards: %v then %v", a, b)
	}
}

func TestClockInterfaceSatisfied(t *testing.T) {
	var _ Clock = NewEngine()
	var _ Clock = NewRealClock()
}
