package sim

// Differential scheduler tests: the production engine (heap and calendar
// schedulers) must fire events in exactly the order of the pre-refactor
// reference engine under randomized schedule/cancel/periodic workloads.
// Each engine replays an identical self-scheduling script driven by its own
// deterministically seeded RNG; because callbacks consume random bits in
// fire order, any ordering divergence immediately desynchronizes the
// recorded traces and fails the comparison.

import (
	"fmt"
	"testing"
	"time"

	"lass/internal/xrand"
)

type fuzzHandle interface{ cancel() }

type fuzzEng interface {
	now() time.Duration
	schedule(at time.Duration, fn func()) fuzzHandle
	every(period time.Duration, fn func()) (stop func())
	runUntil(t time.Duration)
	run()
	fired() uint64
	pending() int
}

type prodAdapter struct{ e *Engine }

func (a prodAdapter) now() time.Duration { return a.e.Now() }
func (a prodAdapter) schedule(at time.Duration, fn func()) fuzzHandle {
	return prodHandle{a.e.Schedule(at, fn)}
}
func (a prodAdapter) every(period time.Duration, fn func()) func() {
	t := a.e.Every(period, fn)
	return t.Stop
}
func (a prodAdapter) runUntil(t time.Duration) { a.e.RunUntil(t) }
func (a prodAdapter) run()                     { a.e.Run() }
func (a prodAdapter) fired() uint64            { return a.e.Fired() }
func (a prodAdapter) pending() int             { return a.e.Pending() }

type prodHandle struct{ ev Event }

func (h prodHandle) cancel() { h.ev.Cancel() }

type refAdapter struct{ e *RefEngine }

func (a refAdapter) now() time.Duration { return a.e.Now() }
func (a refAdapter) schedule(at time.Duration, fn func()) fuzzHandle {
	return refHandle{a.e.Schedule(at, fn)}
}
func (a refAdapter) every(period time.Duration, fn func()) func() {
	t := a.e.Every(period, fn)
	return t.Stop
}
func (a refAdapter) runUntil(t time.Duration) { a.e.RunUntil(t) }
func (a refAdapter) run()                     { a.e.Run() }
func (a refAdapter) fired() uint64            { return a.e.Fired() }
func (a refAdapter) pending() int             { return a.e.Pending() }

type refHandle struct{ ev *RefEvent }

func (h refHandle) cancel() { h.ev.Cancel() }

// runFuzzScript executes a randomized self-scheduling workload and returns
// the trace of (event ID, virtual time) firings. Callbacks spawn children,
// cancel random outstanding events, and start auto-stopping periodic tasks;
// the drain loop alternates RunUntil windows with the final Run.
func runFuzzScript(e fuzzEng, seed uint64) []string {
	rng := xrand.New(seed)
	var trace []string
	var outstanding []fuzzHandle
	var stops []func()
	nextID := 0
	var spawn func(id int) func()
	spawn = func(id int) func() {
		return func() {
			trace = append(trace, fmt.Sprintf("%d@%d", id, e.now()))
			switch r := rng.Uint64() % 100; {
			case r < 42: // spawn 1-3 children at short random delays
				k := 1 + int(rng.Uint64()%3)
				for i := 0; i < k; i++ {
					id2 := nextID
					nextID++
					d := time.Duration(rng.Uint64() % uint64(5*time.Millisecond))
					outstanding = append(outstanding, e.schedule(e.now()+d, spawn(id2)))
				}
			case r < 62: // cancel a random outstanding handle (may be stale)
				if len(outstanding) > 0 {
					outstanding[rng.Uint64()%uint64(len(outstanding))].cancel()
				}
			case r < 72: // start a periodic task that stops after 5 ticks
				tid := nextID
				nextID++
				ticks := 0
				idx := len(stops)
				period := time.Duration(1 + rng.Uint64()%uint64(time.Millisecond))
				stops = append(stops, nil)
				stops[idx] = e.every(period, func() {
					trace = append(trace, fmt.Sprintf("t%d@%d", tid, e.now()))
					ticks++
					if ticks >= 5 {
						stops[idx]()
					}
				})
			case r < 80: // stop a random periodic task (may already be stopped)
				if len(stops) > 0 {
					stops[rng.Uint64()%uint64(len(stops))]()
				}
			default: // fire and do nothing
			}
		}
	}
	for i := 0; i < 30; i++ {
		id := nextID
		nextID++
		at := time.Duration(rng.Uint64() % uint64(2*time.Millisecond))
		outstanding = append(outstanding, e.schedule(at, spawn(id)))
	}
	// Drain in windows so RunUntil's push-back path is exercised, then
	// stop all periodic tasks and run to empty.
	for w := 1; w <= 40; w++ {
		e.runUntil(time.Duration(w) * time.Millisecond)
	}
	for _, stop := range stops {
		stop()
	}
	e.run()
	trace = append(trace, fmt.Sprintf("end@%d fired=%d", e.now(), e.fired()))
	return trace
}

func TestSchedulerDifferential(t *testing.T) {
	seeds := []uint64{1, 2, 3, 5, 8, 13, 21, 34, 55, 89}
	for _, seed := range seeds {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			ref := runFuzzScript(refAdapter{NewRefEngine()}, seed)
			heapEng := NewEngineWithScheduler(SchedulerHeap)
			heapTrace := runFuzzScript(prodAdapter{heapEng}, seed)
			calEng := NewEngineWithScheduler(SchedulerCalendar)
			calTrace := runFuzzScript(prodAdapter{calEng}, seed)

			diffTraces(t, "reference vs heap", ref, heapTrace)
			diffTraces(t, "reference vs calendar", ref, calTrace)
			// The two production schedulers share all engine bookkeeping,
			// so even corpse-inclusive Pending must agree.
			if heapEng.Pending() != calEng.Pending() {
				t.Errorf("Pending diverged: heap=%d calendar=%d", heapEng.Pending(), calEng.Pending())
			}
		})
	}
}

func diffTraces(t *testing.T, label string, want, got []string) {
	t.Helper()
	n := len(want)
	if len(got) < n {
		n = len(got)
	}
	for i := 0; i < n; i++ {
		if want[i] != got[i] {
			t.Fatalf("%s: firing order diverged at step %d: %q vs %q", label, i, want[i], got[i])
		}
	}
	if len(want) != len(got) {
		t.Fatalf("%s: trace lengths differ: %d vs %d", label, len(want), len(got))
	}
}
