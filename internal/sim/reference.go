package sim

import (
	"container/heap"
	"fmt"
	"time"
)

// This file preserves the pre-refactor engine verbatim: one heap-allocated
// *RefEvent per scheduled callback, pushed through container/heap. It
// serves two purposes and is not used by any model code:
//
//   - it is the oracle for the differential scheduler tests, which replay
//     randomized schedule/cancel/periodic workloads against the reference
//     and the production engines and require identical firing order;
//   - it is the "before" row of the engine speedup table published into
//     BENCH_federation.json by BenchmarkEngineChurn, so the gain from the
//     value-typed slot-pool hot path is measured, not asserted.

// RefEvent is the reference engine's scheduled callback.
type RefEvent struct {
	at   time.Duration
	seq  uint64
	fn   func()
	dead bool
	idx  int
	eng  *RefEngine
}

// Cancel marks the event so it will not fire.
func (e *RefEvent) Cancel() {
	if e == nil || e.dead {
		return
	}
	e.dead = true
	if e.eng != nil && e.idx >= 0 {
		e.eng.dead++
		e.eng.maybeCompact()
	}
}

// At returns the scheduled fire time of the event.
func (e *RefEvent) At() time.Duration { return e.at }

type refEventHeap []*RefEvent

func (h refEventHeap) Len() int { return len(h) }
func (h refEventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h refEventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].idx = i
	h[j].idx = j
}
func (h *refEventHeap) Push(x any) {
	e := x.(*RefEvent)
	e.idx = len(*h)
	*h = append(*h, e)
}
func (h *refEventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.idx = -1
	*h = old[:n-1]
	return e
}

// RefEngine is the pre-refactor discrete-event engine.
type RefEngine struct {
	now    time.Duration
	seq    uint64
	events refEventHeap
	fired  uint64
	dead   int
}

// NewRefEngine returns a reference engine with the virtual clock at zero.
func NewRefEngine() *RefEngine {
	return &RefEngine{}
}

// Now returns the current virtual time.
func (e *RefEngine) Now() time.Duration { return e.now }

// Pending returns the number of queued events (including corpses).
func (e *RefEngine) Pending() int { return len(e.events) }

// Fired returns the total number of events that have executed.
func (e *RefEngine) Fired() uint64 { return e.fired }

// Schedule queues fn to run at absolute virtual time at.
func (e *RefEngine) Schedule(at time.Duration, fn func()) *RefEvent {
	if at < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", at, e.now))
	}
	ev := &RefEvent{at: at, seq: e.seq, fn: fn, eng: e}
	e.seq++
	heap.Push(&e.events, ev)
	return ev
}

func (e *RefEngine) maybeCompact() {
	if e.dead*2 <= len(e.events) {
		return
	}
	old := e.events
	live := old[:0]
	for _, ev := range old {
		if ev.dead {
			ev.idx = -1
			continue
		}
		ev.idx = len(live)
		live = append(live, ev)
	}
	for i := len(live); i < len(old); i++ {
		old[i] = nil
	}
	e.events = live
	e.dead = 0
	heap.Init(&e.events)
}

// After queues fn to run d after the current virtual time.
func (e *RefEngine) After(d time.Duration, fn func()) *RefEvent {
	if d < 0 {
		d = 0
	}
	return e.Schedule(e.now+d, fn)
}

// Every schedules fn at now+period, then every period thereafter.
func (e *RefEngine) Every(period time.Duration, fn func()) *RefTask {
	if period <= 0 {
		panic("sim: Every with non-positive period")
	}
	t := &RefTask{engine: e, period: period, fn: fn}
	t.arm()
	return t
}

// RefTask is a periodic event on the reference engine.
type RefTask struct {
	engine  *RefEngine
	period  time.Duration
	fn      func()
	ev      *RefEvent
	stopped bool
}

func (t *RefTask) arm() {
	t.ev = t.engine.After(t.period, t.tick)
}

func (t *RefTask) tick() {
	if t.stopped {
		return
	}
	t.fn()
	if !t.stopped {
		t.arm()
	}
}

// Stop cancels future ticks.
func (t *RefTask) Stop() {
	t.stopped = true
	t.ev.Cancel()
}

// Step executes the single next event, advancing the clock to its timestamp.
func (e *RefEngine) Step() bool {
	for len(e.events) > 0 {
		ev := heap.Pop(&e.events).(*RefEvent)
		if ev.dead {
			e.dead--
			continue
		}
		e.now = ev.at
		e.fired++
		ev.fn()
		return true
	}
	return false
}

// RunUntil executes events until the clock would pass deadline.
func (e *RefEngine) RunUntil(deadline time.Duration) {
	for len(e.events) > 0 {
		next := e.events[0]
		if next.dead {
			heap.Pop(&e.events)
			e.dead--
			continue
		}
		if next.at > deadline {
			break
		}
		heap.Pop(&e.events)
		e.now = next.at
		e.fired++
		next.fn()
	}
	if e.now < deadline {
		e.now = deadline
	}
}

// Run executes events until none remain.
func (e *RefEngine) Run() {
	for e.Step() {
	}
}
