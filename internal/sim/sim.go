// Package sim implements the discrete-event simulation engine that drives
// the LaSS reproduction experiments.
//
// The paper evaluates LaSS on a physical 3-node OpenWhisk cluster; this
// repository substitutes a discrete-event simulated edge cluster (see
// DESIGN.md §1). The engine provides a virtual clock, an event heap with
// stable FIFO ordering for simultaneous events, periodic tasks, and a Clock
// abstraction shared with the wall-clock runtime so the LaSS controller code
// is identical in both modes.
package sim

import (
	"container/heap"
	"fmt"
	"time"
)

// Clock is the time source abstraction shared by the simulated and the
// real-time runtimes. Controller code only ever observes time through a
// Clock, which is what lets the same allocation logic run in simulation
// (fast, deterministic) and against the wall clock (cmd/lass-server).
type Clock interface {
	// Now returns the current time as an offset from the run's origin.
	Now() time.Duration
}

// Event is a scheduled callback. Events fire in timestamp order; events with
// equal timestamps fire in scheduling (FIFO) order, which keeps simulations
// deterministic.
type Event struct {
	at   time.Duration
	seq  uint64
	fn   func()
	dead bool
	idx  int
	eng  *Engine
}

// Cancel marks the event so it will not fire. Cancelling an already-fired or
// already-cancelled event is a no-op.
func (e *Event) Cancel() {
	if e == nil || e.dead {
		return
	}
	e.dead = true
	if e.eng != nil && e.idx >= 0 {
		e.eng.dead++
		e.eng.maybeCompact()
	}
}

// Cancelled reports whether the event has been cancelled.
func (e *Event) Cancelled() bool { return e == nil || e.dead }

// At returns the scheduled fire time of the event.
func (e *Event) At() time.Duration { return e.at }

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].idx = i
	h[j].idx = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.idx = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.idx = -1
	*h = old[:n-1]
	return e
}

// Engine is a single-threaded discrete-event simulator. It is not safe for
// concurrent use; all model code runs inside event callbacks on the caller's
// goroutine.
type Engine struct {
	now    time.Duration
	seq    uint64
	events eventHeap
	fired  uint64
	dead   int // cancelled events still in the heap
}

// NewEngine returns an engine with the virtual clock at zero.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current virtual time. Engine implements Clock.
func (e *Engine) Now() time.Duration { return e.now }

// Pending returns the number of events currently queued (including
// cancelled events that have not yet been discarded).
func (e *Engine) Pending() int { return len(e.events) }

// Fired returns the total number of events that have executed.
func (e *Engine) Fired() uint64 { return e.fired }

// Schedule queues fn to run at absolute virtual time at. Scheduling in the
// past (before Now) panics: it always indicates a model bug, and silently
// reordering time would corrupt results.
func (e *Engine) Schedule(at time.Duration, fn func()) *Event {
	if at < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", at, e.now))
	}
	ev := &Event{at: at, seq: e.seq, fn: fn, eng: e}
	e.seq++
	heap.Push(&e.events, ev)
	return ev
}

// maybeCompact rebuilds the heap without cancelled events once they
// outnumber the live ones. This bounds Pending() at roughly twice the live
// event count on long runs that cancel heavily (periodic tasks stopped,
// in-flight work aborted), instead of letting dead events pile up until
// their timestamps are popped. Amortized cost is O(1) per cancellation:
// after a compaction the heap must shrink-by-cancel to half again before
// the next one.
func (e *Engine) maybeCompact() {
	if e.dead*2 <= len(e.events) {
		return
	}
	old := e.events
	live := old[:0]
	for _, ev := range old {
		if ev.dead {
			ev.idx = -1
			continue
		}
		ev.idx = len(live)
		live = append(live, ev)
	}
	for i := len(live); i < len(old); i++ {
		old[i] = nil
	}
	e.events = live
	e.dead = 0
	heap.Init(&e.events)
}

// After queues fn to run d after the current virtual time.
func (e *Engine) After(d time.Duration, fn func()) *Event {
	if d < 0 {
		d = 0
	}
	return e.Schedule(e.now+d, fn)
}

// Every schedules fn at now+period, then every period thereafter, until the
// returned Task is stopped or the run ends.
func (e *Engine) Every(period time.Duration, fn func()) *Task {
	if period <= 0 {
		panic("sim: Every with non-positive period")
	}
	t := &Task{engine: e, period: period, fn: fn}
	t.arm()
	return t
}

// EveryFrom behaves like Every but fires the first tick at start. A start
// before the current virtual time is clamped to now, mirroring After's
// treatment of negative delays.
func (e *Engine) EveryFrom(start, period time.Duration, fn func()) *Task {
	if period <= 0 {
		panic("sim: EveryFrom with non-positive period")
	}
	if start < e.now {
		start = e.now
	}
	t := &Task{engine: e, period: period, fn: fn}
	t.ev = e.Schedule(start, t.tick)
	return t
}

// Task is a periodic event created by Every/EveryFrom.
type Task struct {
	engine  *Engine
	period  time.Duration
	fn      func()
	ev      *Event
	stopped bool
}

func (t *Task) arm() {
	t.ev = t.engine.After(t.period, t.tick)
}

func (t *Task) tick() {
	if t.stopped {
		return
	}
	t.fn()
	if !t.stopped {
		t.arm()
	}
}

// Stop cancels future ticks. Stopping twice is a no-op.
func (t *Task) Stop() {
	t.stopped = true
	t.ev.Cancel()
}

// Step executes the single next event, advancing the clock to its timestamp.
// It returns false when no events remain.
func (e *Engine) Step() bool {
	for len(e.events) > 0 {
		ev := heap.Pop(&e.events).(*Event)
		if ev.dead {
			e.dead--
			continue
		}
		e.now = ev.at
		e.fired++
		ev.fn()
		return true
	}
	return false
}

// RunUntil executes events until the virtual clock would pass deadline or no
// events remain. The clock is left at deadline if it was reached, so
// measurements of elapsed simulated time are exact.
func (e *Engine) RunUntil(deadline time.Duration) {
	for len(e.events) > 0 {
		// Peek without popping so an event after the deadline stays queued.
		next := e.events[0]
		if next.dead {
			heap.Pop(&e.events)
			e.dead--
			continue
		}
		if next.at > deadline {
			break
		}
		heap.Pop(&e.events)
		e.now = next.at
		e.fired++
		next.fn()
	}
	if e.now < deadline {
		e.now = deadline
	}
}

// Run executes events until none remain.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// RealClock is a Clock backed by the wall clock, measured from the moment it
// is created. It is safe for concurrent use.
type RealClock struct {
	origin time.Time
}

// NewRealClock returns a RealClock whose zero instant is now.
func NewRealClock() *RealClock { return &RealClock{origin: time.Now()} }

// Now returns the wall-clock time elapsed since the clock was created.
func (c *RealClock) Now() time.Duration { return time.Since(c.origin) }
