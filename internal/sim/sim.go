// Package sim implements the discrete-event simulation engine that drives
// the LaSS reproduction experiments.
//
// The paper evaluates LaSS on a physical 3-node OpenWhisk cluster; this
// repository substitutes a discrete-event simulated edge cluster (see
// DESIGN.md §1). The engine provides a virtual clock, a timer queue with
// stable FIFO ordering for simultaneous events, periodic tasks, and a Clock
// abstraction shared with the wall-clock runtime so the LaSS controller code
// is identical in both modes.
//
// The hot path is allocation-free in steady state: timers are stored by
// value inside the scheduler, and callback slots are recycled through a
// free list, so a run that schedules and fires millions of events reuses a
// small working set instead of churning the garbage collector. Two
// scheduler implementations are available behind the same Engine API — a
// binary heap (default) and an indexed calendar queue for very large
// pending sets — and both honor the same (timestamp, sequence) total order,
// so simulations are bit-for-bit identical regardless of which one runs.
package sim

import (
	"fmt"
	"math"
	"time"
)

// Clock is the time source abstraction shared by the simulated and the
// real-time runtimes. Controller code only ever observes time through a
// Clock, which is what lets the same allocation logic run in simulation
// (fast, deterministic) and against the wall clock (cmd/lass-server).
type Clock interface {
	// Now returns the current time as an offset from the run's origin.
	Now() time.Duration
}

// SchedulerKind selects the timer-queue implementation behind an Engine.
// All kinds produce bit-for-bit identical simulations; they differ only in
// constant factors at different pending-set sizes.
type SchedulerKind int

const (
	// SchedulerHeap is a value-typed binary heap: O(log n) push/pop with
	// excellent constants at small and medium pending counts. The default.
	SchedulerHeap SchedulerKind = iota
	// SchedulerCalendar is an indexed calendar queue (Brown, CACM 1988):
	// amortized O(1) push/pop when timestamps are spread evenly, which is
	// the regime of metro-scale arrival streams.
	SchedulerCalendar
)

// String returns the flag-friendly name of the kind.
func (k SchedulerKind) String() string {
	switch k {
	case SchedulerHeap:
		return "heap"
	case SchedulerCalendar:
		return "calendar"
	}
	return fmt.Sprintf("SchedulerKind(%d)", int(k))
}

// ParseSchedulerKind parses a -scheduler flag value.
func ParseSchedulerKind(s string) (SchedulerKind, error) {
	switch s {
	case "heap", "":
		return SchedulerHeap, nil
	case "calendar":
		return SchedulerCalendar, nil
	}
	return SchedulerHeap, fmt.Errorf("sim: unknown scheduler %q (want heap or calendar)", s)
}

// timer is the value stored inside a scheduler: when to fire, the global
// FIFO tie-break sequence, and which callback slot to invoke. Cancellation
// is lazy — a timer whose slot generation no longer matches is a corpse and
// is discarded when popped (or swept out by compact).
type timer struct {
	at   time.Duration
	seq  uint64
	slot uint32
	gen  uint32
}

// timerLess orders timers by (at, seq): timestamp order with FIFO
// tie-breaking. seq is unique, so this is a strict total order and every
// correct scheduler yields the same firing sequence.
func timerLess(a, b timer) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// scheduler is the priority-queue interface behind Engine. Implementations
// must pop timers in timerLess order and need not know about cancellation:
// the engine filters corpses after popping and sweeps them via compact.
type scheduler interface {
	push(tm timer)
	pop() (timer, bool)
	len() int
	// compact removes every timer for which dead reports true, preserving
	// the pop order of the survivors.
	compact(dead func(timer) bool)
}

// slot is one recyclable callback cell. gen increments whenever the slot's
// current timer is consumed (fired or cancelled), which atomically
// invalidates all outstanding Event handles and scheduler entries that
// reference the old generation.
type slot struct {
	fn  func()
	gen uint32
}

// Event is a handle to a scheduled callback, returned by Schedule and
// After. It is a small value (not a pointer): copying it is cheap and the
// zero value behaves like an already-consumed event, so structs embedding
// an Event need no nil checks. Events fire in timestamp order; events with
// equal timestamps fire in scheduling (FIFO) order, which keeps simulations
// deterministic.
type Event struct {
	eng *Engine
	at  time.Duration
	idx uint32
	gen uint32
}

// Cancel marks the event so it will not fire. Cancelling an already-fired,
// already-cancelled, or zero-value event is a no-op. Cancellation is O(1):
// the callback slot is released immediately and the queued timer becomes a
// corpse that is either discarded when popped or swept out once corpses
// outnumber live timers.
func (ev Event) Cancel() {
	e := ev.eng
	if e == nil {
		return
	}
	s := &e.slots[ev.idx]
	if s.gen != ev.gen {
		return // already fired or cancelled
	}
	s.gen++
	s.fn = nil
	e.free = append(e.free, ev.idx)
	e.dead++
	e.maybeCompact()
}

// Cancelled reports whether the event will no longer fire — because it was
// cancelled, because it already fired, or because the handle is the zero
// value.
func (ev Event) Cancelled() bool {
	return ev.eng == nil || ev.eng.slots[ev.idx].gen != ev.gen
}

// At returns the scheduled fire time of the event.
func (ev Event) At() time.Duration { return ev.at }

// Engine is a single-threaded discrete-event simulator. It is not safe for
// concurrent use; all model code runs inside event callbacks on the caller's
// goroutine.
type Engine struct {
	now   time.Duration
	seq   uint64
	sched scheduler
	kind  SchedulerKind
	slots []slot
	free  []uint32 // free-list of recyclable slot indices
	fired uint64
	dead  int // cancelled timers still queued in the scheduler

	deadFn func(timer) bool // bound corpse predicate, allocated once
}

// NewEngine returns an engine with the virtual clock at zero, using the
// default (heap) scheduler.
func NewEngine() *Engine {
	return NewEngineWithScheduler(SchedulerHeap)
}

// NewEngineWithScheduler returns an engine using the given timer-queue
// implementation. The choice affects speed only, never results.
func NewEngineWithScheduler(kind SchedulerKind) *Engine {
	e := &Engine{kind: kind}
	switch kind {
	case SchedulerCalendar:
		e.sched = newCalendarQueue()
	default:
		e.sched = &heapScheduler{}
	}
	e.deadFn = func(tm timer) bool { return e.slots[tm.slot].gen != tm.gen }
	return e
}

// Scheduler returns which timer-queue implementation the engine uses.
func (e *Engine) Scheduler() SchedulerKind { return e.kind }

// Now returns the current virtual time. Engine implements Clock.
func (e *Engine) Now() time.Duration { return e.now }

// Pending returns the number of timers currently queued (including
// cancelled timers that have not yet been discarded).
func (e *Engine) Pending() int { return e.sched.len() }

// Fired returns the total number of events that have executed.
func (e *Engine) Fired() uint64 { return e.fired }

// Schedule queues fn to run at absolute virtual time at. Scheduling in the
// past (before Now) panics: it always indicates a model bug, and silently
// reordering time would corrupt results.
func (e *Engine) Schedule(at time.Duration, fn func()) Event {
	if at < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", at, e.now))
	}
	var idx uint32
	if n := len(e.free); n > 0 {
		idx = e.free[n-1]
		e.free = e.free[:n-1]
	} else {
		e.slots = append(e.slots, slot{})
		idx = uint32(len(e.slots) - 1)
	}
	s := &e.slots[idx]
	s.fn = fn
	e.sched.push(timer{at: at, seq: e.seq, slot: idx, gen: s.gen})
	e.seq++
	return Event{eng: e, at: at, idx: idx, gen: s.gen}
}

// maybeCompact sweeps cancelled timers out of the scheduler once they
// outnumber the live ones. This bounds Pending() at roughly twice the live
// timer count on long runs that cancel heavily (periodic tasks stopped,
// in-flight work aborted), instead of letting corpses pile up until their
// timestamps are popped. Amortized cost is O(1) per cancellation: after a
// sweep the queue must shrink-by-cancel to half again before the next one.
func (e *Engine) maybeCompact() {
	if e.dead*2 <= e.sched.len() {
		return
	}
	e.sched.compact(e.deadFn)
	e.dead = 0
}

// popLive removes and returns the next live timer with at <= deadline,
// consuming its callback slot. It is the single place corpses are drained
// (and e.dead decremented), so Step and RunUntil cannot disagree on the
// bookkeeping. A live timer beyond the deadline is pushed back — its
// (at, seq) key is unchanged, so the pop order is unaffected — and ok is
// false.
func (e *Engine) popLive(deadline time.Duration) (at time.Duration, fn func(), ok bool) {
	for {
		tm, any := e.sched.pop()
		if !any {
			return 0, nil, false
		}
		s := &e.slots[tm.slot]
		if s.gen != tm.gen {
			e.dead-- // cancelled corpse
			continue
		}
		if tm.at > deadline {
			e.sched.push(tm)
			return 0, nil, false
		}
		fn = s.fn
		s.fn = nil
		s.gen++
		e.free = append(e.free, tm.slot)
		return tm.at, fn, true
	}
}

// After queues fn to run d after the current virtual time.
func (e *Engine) After(d time.Duration, fn func()) Event {
	if d < 0 {
		d = 0
	}
	return e.Schedule(e.now+d, fn)
}

// Every schedules fn at now+period, then every period thereafter, until the
// returned Task is stopped or the run ends.
func (e *Engine) Every(period time.Duration, fn func()) *Task {
	if period <= 0 {
		panic("sim: Every with non-positive period")
	}
	t := newTask(e, period, fn)
	t.arm()
	return t
}

// EveryFrom behaves like Every but fires the first tick at start. A start
// before the current virtual time is clamped to now, mirroring After's
// treatment of negative delays.
func (e *Engine) EveryFrom(start, period time.Duration, fn func()) *Task {
	if period <= 0 {
		panic("sim: EveryFrom with non-positive period")
	}
	if start < e.now {
		start = e.now
	}
	t := newTask(e, period, fn)
	t.ev = e.Schedule(start, t.tickFn)
	return t
}

// Task is a periodic event created by Every/EveryFrom.
type Task struct {
	engine  *Engine
	period  time.Duration
	fn      func()
	tickFn  func() // bound once so re-arming does not allocate a method value
	ev      Event
	stopped bool
}

func newTask(e *Engine, period time.Duration, fn func()) *Task {
	t := &Task{engine: e, period: period, fn: fn}
	t.tickFn = t.tick
	return t
}

func (t *Task) arm() {
	t.ev = t.engine.After(t.period, t.tickFn)
}

func (t *Task) tick() {
	if t.stopped {
		return
	}
	t.fn()
	if !t.stopped {
		t.arm()
	}
}

// Stop cancels future ticks. Stopping twice is a no-op.
func (t *Task) Stop() {
	t.stopped = true
	t.ev.Cancel()
}

// Step executes the single next event, advancing the clock to its timestamp.
// It returns false when no events remain.
func (e *Engine) Step() bool {
	at, fn, ok := e.popLive(math.MaxInt64)
	if !ok {
		return false
	}
	e.now = at
	e.fired++
	fn()
	return true
}

// RunUntil executes events until the virtual clock would pass deadline or no
// events remain. The clock is left at deadline if it was reached, so
// measurements of elapsed simulated time are exact.
func (e *Engine) RunUntil(deadline time.Duration) {
	for {
		at, fn, ok := e.popLive(deadline)
		if !ok {
			break
		}
		e.now = at
		e.fired++
		fn()
	}
	if e.now < deadline {
		e.now = deadline
	}
}

// Run executes events until none remain.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// heapScheduler is a value-typed binary min-heap over timers: the default
// scheduler. Unlike container/heap it stores timers inline (no interface
// boxing, no per-event allocation) and pays no virtual dispatch on the
// sift paths.
type heapScheduler struct {
	h []timer
}

func (s *heapScheduler) push(tm timer) {
	s.h = append(s.h, tm)
	s.up(len(s.h) - 1)
}

func (s *heapScheduler) pop() (timer, bool) {
	if len(s.h) == 0 {
		return timer{}, false
	}
	top := s.h[0]
	n := len(s.h) - 1
	s.h[0] = s.h[n]
	s.h = s.h[:n]
	if n > 0 {
		s.down(0)
	}
	return top, true
}

func (s *heapScheduler) len() int { return len(s.h) }

func (s *heapScheduler) compact(dead func(timer) bool) {
	live := s.h[:0]
	for _, tm := range s.h {
		if !dead(tm) {
			live = append(live, tm)
		}
	}
	s.h = live
	for i := len(s.h)/2 - 1; i >= 0; i-- {
		s.down(i)
	}
}

func (s *heapScheduler) up(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if !timerLess(s.h[i], s.h[p]) {
			break
		}
		s.h[i], s.h[p] = s.h[p], s.h[i]
		i = p
	}
}

func (s *heapScheduler) down(i int) {
	n := len(s.h)
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		m := l
		if r := l + 1; r < n && timerLess(s.h[r], s.h[l]) {
			m = r
		}
		if !timerLess(s.h[m], s.h[i]) {
			return
		}
		s.h[i], s.h[m] = s.h[m], s.h[i]
		i = m
	}
}

// RealClock is a Clock backed by the wall clock, measured from the moment it
// is created. It is safe for concurrent use.
type RealClock struct {
	origin time.Time
}

// NewRealClock returns a RealClock whose zero instant is now.
//
//lass:wallclock RealClock is the sanctioned bridge from wall time to the Clock interface.
func NewRealClock() *RealClock { return &RealClock{origin: time.Now()} }

// Now returns the wall-clock time elapsed since the clock was created.
//
//lass:wallclock
func (c *RealClock) Now() time.Duration { return time.Since(c.origin) }
