package queuing

import (
	"fmt"
	"math"
)

// GGC approximates a G/G/c queue via the Allen-Cunneen formula. The paper's
// conclusion (§8) names generalizing beyond Poisson/exponential as future
// work; this type implements that extension so LaSS can provision functions
// whose measured service times are far from exponential (e.g. the DNN
// models, whose inference times are nearly deterministic).
//
// Allen-Cunneen approximates the mean queueing delay as
//
//	Wq(G/G/c) ≈ (Ca² + Cs²)/2 · Wq(M/M/c)
//
// where Ca² and Cs² are the squared coefficients of variation of the
// inter-arrival and service time distributions. The waiting-time tail is
// approximated as exponential conditioned on waiting, matching the heavy
// -traffic limit, which yields a percentile bound the solver can use.
type GGC struct {
	Lambda float64 // arrival rate, req/s
	Mu     float64 // service rate per server, req/s
	C      int     // servers
	CA2    float64 // squared coefficient of variation of inter-arrival times (1 = Poisson)
	CS2    float64 // squared coefficient of variation of service times (1 = exponential, 0 = deterministic)
}

// MeanWait returns the Allen-Cunneen approximation of the mean queueing
// delay.
func (g GGC) MeanWait() (float64, error) {
	if g.CA2 < 0 || g.CS2 < 0 {
		return 0, fmt.Errorf("queuing: negative SCV (ca2=%v cs2=%v)", g.CA2, g.CS2)
	}
	m := MMC{Lambda: g.Lambda, Mu: g.Mu, C: g.C}
	wq, err := m.MeanWait()
	if err != nil {
		return 0, err
	}
	return (g.CA2 + g.CS2) / 2 * wq, nil
}

// ProbWaitLE approximates P(W ≤ t) with an exponential conditional wait:
// P(W > t) ≈ Pw·exp(-t·Pw/Wq) where Pw is the Erlang-C probability of
// waiting and Wq the Allen-Cunneen mean wait, so the conditional mean is
// Wq/Pw as in the M/M/c exact distribution.
func (g GGC) ProbWaitLE(t float64) (float64, error) {
	m := MMC{Lambda: g.Lambda, Mu: g.Mu, C: g.C}
	pw, err := m.ErlangC()
	if err != nil {
		return 0, err
	}
	wq, err := g.MeanWait()
	if err != nil {
		return 0, err
	}
	if pw == 0 || wq == 0 {
		return 1, nil
	}
	if t < 0 {
		t = 0
	}
	return 1 - pw*math.Exp(-t*pw/wq), nil
}

// RequiredContainersGGC sizes a pool under the Allen-Cunneen approximation:
// the smallest c such that P(W ≤ t) ≥ slo.Percentile. With CA2 = CS2 = 1 it
// agrees with the exact M/M/c sizing to within the approximation of the
// exponential tail.
func RequiredContainersGGC(lambda, mu, ca2, cs2 float64, slo SLO) (int, error) {
	if lambda < 0 || mu <= 0 {
		return 0, fmt.Errorf("queuing: invalid rates lambda=%v mu=%v", lambda, mu)
	}
	if lambda == 0 {
		return 0, nil
	}
	t, err := slo.WaitBudget(mu)
	if err != nil {
		return 0, err
	}
	for c := int(math.Floor(lambda/mu)) + 1; c <= MaxSolverContainers; c++ {
		g := GGC{Lambda: lambda, Mu: mu, C: c, CA2: ca2, CS2: cs2}
		if lambda/(float64(c)*mu) >= 1 {
			continue
		}
		p, err := g.ProbWaitLE(t)
		if err != nil {
			return 0, err
		}
		if p >= slo.Percentile {
			return c, nil
		}
	}
	return 0, fmt.Errorf("queuing: G/G/c scan exhausted (lambda=%v mu=%v)", lambda, mu)
}
