package queuing

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

var slo95x100ms = SLO{Deadline: 100 * time.Millisecond, Percentile: 0.95, WaitingOnly: true}

func TestRequiredContainersMeetsSLO(t *testing.T) {
	for _, tc := range []struct{ lambda, mu float64 }{
		{10, 10}, {20, 10}, {50, 10}, {10, 5}, {50, 5}, {100, 10},
	} {
		c, err := MinimalContainers(tc.lambda, tc.mu, slo95x100ms)
		if err != nil {
			t.Fatalf("lambda=%v mu=%v: %v", tc.lambda, tc.mu, err)
		}
		m := MMC{Lambda: tc.lambda, Mu: tc.mu, C: c}
		p, err := m.ProbWaitLE(0.1)
		if err != nil {
			t.Fatal(err)
		}
		if p < 0.95 {
			t.Errorf("lambda=%v mu=%v: c=%d gives P=%v < 0.95", tc.lambda, tc.mu, c, p)
		}
	}
}

func TestRequiredContainersMinimal(t *testing.T) {
	// c-1 containers must NOT meet the SLO (or be unstable).
	for _, tc := range []struct{ lambda, mu float64 }{
		{20, 10}, {50, 10}, {30, 5}, {100, 10},
	} {
		c, err := MinimalContainers(tc.lambda, tc.mu, slo95x100ms)
		if err != nil {
			t.Fatal(err)
		}
		if c <= 1 {
			continue
		}
		m := MMC{Lambda: tc.lambda, Mu: tc.mu, C: c - 1}
		if !m.Stable() {
			continue
		}
		p, err := m.ProbWaitLE(0.1)
		if err != nil {
			t.Fatal(err)
		}
		if p >= 0.95 {
			t.Errorf("lambda=%v mu=%v: c-1=%d already meets SLO (P=%v)", tc.lambda, tc.mu, c-1, p)
		}
	}
}

func TestRequiredContainersStartCFloor(t *testing.T) {
	// Algorithm 1 starts from the current container count; the result can
	// therefore never be below startC when startC already exceeds the
	// minimal count.
	c, err := RequiredContainers(20, 10, slo95x100ms, 50)
	if err != nil {
		t.Fatal(err)
	}
	if c < 50 {
		t.Errorf("startC=50 but got %d", c)
	}
	cMin, err := MinimalContainers(20, 10, slo95x100ms)
	if err != nil {
		t.Fatal(err)
	}
	if c != 50 && cMin >= 50 {
		t.Errorf("inconsistent: c=%d min=%d", c, cMin)
	}
}

func TestRequiredContainersZeroLambda(t *testing.T) {
	c, err := MinimalContainers(0, 10, slo95x100ms)
	if err != nil {
		t.Fatal(err)
	}
	if c != 0 {
		t.Errorf("idle function sized to %d containers", c)
	}
}

func TestRequiredContainersInvalid(t *testing.T) {
	if _, err := MinimalContainers(-1, 10, slo95x100ms); err == nil {
		t.Error("want error for negative lambda")
	}
	if _, err := MinimalContainers(1, 0, slo95x100ms); err == nil {
		t.Error("want error for zero mu")
	}
}

func TestQuickRequiredContainersMonotoneInLambda(t *testing.T) {
	f := func(a, b uint16) bool {
		l1 := float64(a%200) + 1
		l2 := l1 + float64(b%100)
		c1, err1 := MinimalContainers(l1, 10, slo95x100ms)
		c2, err2 := MinimalContainers(l2, 10, slo95x100ms)
		if err1 != nil || err2 != nil {
			return false
		}
		return c2 >= c1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestQuickRequiredContainersTighterSLONeedsMore(t *testing.T) {
	f := func(a uint16) bool {
		lambda := float64(a%150) + 1
		loose := SLO{Deadline: 200 * time.Millisecond, Percentile: 0.95, WaitingOnly: true}
		tight := SLO{Deadline: 50 * time.Millisecond, Percentile: 0.99, WaitingOnly: true}
		cl, err1 := MinimalContainers(lambda, 10, loose)
		ct, err2 := MinimalContainers(lambda, 10, tight)
		if err1 != nil || err2 != nil {
			return false
		}
		return ct >= cl
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestNaiveAgreesAtSmallScale(t *testing.T) {
	for _, lambda := range []float64{10, 30, 60, 120} {
		stable, err := MinimalContainers(lambda, 10, slo95x100ms)
		if err != nil {
			t.Fatal(err)
		}
		naive, err := RequiredContainersNaive(lambda, 10, slo95x100ms, 0)
		if err != nil {
			t.Fatalf("lambda=%v: naive failed in its valid range: %v", lambda, err)
		}
		if naive != stable {
			t.Errorf("lambda=%v: naive=%d stable=%d", lambda, naive, stable)
		}
	}
}

func TestNaiveFailsAtLargeScale(t *testing.T) {
	// At r = λ/μ beyond ~170 the naive factorial-based evaluation must
	// break down (Fig 5's "precision limitations"). The stable solver keeps
	// working.
	lambda, mu := 2500.0, 10.0 // needs ~250+ containers
	if _, err := RequiredContainersNaive(lambda, mu, slo95x100ms, 0); err == nil {
		t.Error("naive solver unexpectedly survived r=250")
	}
	c, err := MinimalContainers(lambda, mu, slo95x100ms)
	if err != nil {
		t.Fatalf("stable solver failed: %v", err)
	}
	if c < 250 {
		t.Errorf("stable solver returned %d < offered-load floor", c)
	}
}

func TestNaiveHealthyFlag(t *testing.T) {
	ok := NaiveMMC{Lambda: 30, Mu: 10, C: 6}
	if !ok.Healthy(0.1) {
		t.Error("small system should be healthy")
	}
	bad := NaiveMMC{Lambda: 2000, Mu: 10, C: 220}
	if bad.Healthy(0.1) {
		t.Error("r=200 should break float64 factorials")
	}
}

func TestSolverMatchesExactQuantileWithinOne(t *testing.T) {
	// Cross-check Algorithm 1 against sizing by the exact M/M/c waiting
	// quantile: they should agree within one container.
	for _, lambda := range []float64{15, 35, 55, 95} {
		mu := 10.0
		c1, err := MinimalContainers(lambda, mu, slo95x100ms)
		if err != nil {
			t.Fatal(err)
		}
		// exact: smallest c with WaitQuantile(0.95) <= 0.1
		c2 := 0
		for c := int(lambda/mu) + 1; c < 1000; c++ {
			m := MMC{Lambda: lambda, Mu: mu, C: c}
			if !m.Stable() {
				continue
			}
			tq, err := m.WaitQuantile(0.95)
			if err != nil {
				t.Fatal(err)
			}
			if tq <= 0.1 {
				c2 = c
				break
			}
		}
		if d := c1 - c2; d < -1 || d > 1 {
			t.Errorf("lambda=%v: Algorithm1 c=%d vs exact-quantile c=%d", lambda, c1, c2)
		}
	}
}

func TestGGCExponentialMatchesMMCSizing(t *testing.T) {
	// CA2 = CS2 = 1 is the M/M/c case; sizing should agree within one
	// container (the tail shape is approximated).
	for _, lambda := range []float64{20, 45, 90} {
		cm, err := MinimalContainers(lambda, 10, slo95x100ms)
		if err != nil {
			t.Fatal(err)
		}
		cg, err := RequiredContainersGGC(lambda, 10, 1, 1, slo95x100ms)
		if err != nil {
			t.Fatal(err)
		}
		if d := cm - cg; d < -1 || d > 1 {
			t.Errorf("lambda=%v: MMc=%d GGc(1,1)=%d", lambda, cm, cg)
		}
	}
}

func TestGGCDeterministicNeedsFewer(t *testing.T) {
	// Deterministic service (CS2=0) halves the Allen-Cunneen wait, so it
	// must never need more containers than exponential service.
	for _, lambda := range []float64{30, 60, 120} {
		ce, err := RequiredContainersGGC(lambda, 10, 1, 1, slo95x100ms)
		if err != nil {
			t.Fatal(err)
		}
		cd, err := RequiredContainersGGC(lambda, 10, 1, 0, slo95x100ms)
		if err != nil {
			t.Fatal(err)
		}
		if cd > ce {
			t.Errorf("lambda=%v: deterministic %d > exponential %d", lambda, cd, ce)
		}
	}
}

func TestGGCBurstyNeedsMore(t *testing.T) {
	// More arrival variability (CA2 > 1) must not reduce capacity needs.
	cp, err := RequiredContainersGGC(60, 10, 1, 1, slo95x100ms)
	if err != nil {
		t.Fatal(err)
	}
	cb, err := RequiredContainersGGC(60, 10, 4, 1, slo95x100ms)
	if err != nil {
		t.Fatal(err)
	}
	if cb < cp {
		t.Errorf("bursty %d < Poisson %d", cb, cp)
	}
}

func TestGGCZeroLambda(t *testing.T) {
	c, err := RequiredContainersGGC(0, 10, 1, 1, slo95x100ms)
	if err != nil {
		t.Fatal(err)
	}
	if c != 0 {
		t.Errorf("got %d", c)
	}
}

func TestGGCNegativeSCV(t *testing.T) {
	g := GGC{Lambda: 10, Mu: 10, C: 3, CA2: -1, CS2: 1}
	if _, err := g.MeanWait(); err == nil || !strings.Contains(err.Error(), "SCV") {
		t.Errorf("want SCV error, got %v", err)
	}
}

func TestHetSolverErrorPropagation(t *testing.T) {
	if _, err := AdditionalHetContainers(-5, nil, 10, slo95x100ms); err == nil {
		t.Error("want error for negative lambda")
	}
	if _, err := AdditionalHetContainers(5, nil, 0, slo95x100ms); err == nil {
		t.Error("want error for zero new-container rate")
	}
}

func TestHetProbWaitLEUnstableIsZero(t *testing.T) {
	if p := HetProbWaitLE(100, []float64{10}, 0.1); p != 0 {
		t.Errorf("unstable pool p=%v want 0", p)
	}
	if p := HetProbWaitLE(0, []float64{10}, 0.1); p != 1 {
		t.Errorf("idle pool p=%v want 1", p)
	}
}

func TestWaitBudgetUsesMeanServiceFallback(t *testing.T) {
	s := SLO{Deadline: 300 * time.Millisecond, Percentile: 0.95}
	b, err := s.WaitBudget(10) // mean service 0.1s
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(b-0.2) > 1e-12 {
		t.Errorf("budget=%v want 0.2", b)
	}
}
