package queuing

import (
	"fmt"
	"math"
	"sort"
)

// HetMMC models an M/M/c queue whose c servers have heterogeneous service
// rates, using the worst-case upper bounds of Alves et al. (paper §3.2,
// Eqs 5-6). LaSS needs this whenever deflation has produced containers of
// unequal size: the bound assumes the scheduler always picks the slowest
// idle container first, so provisioning against it is safe regardless of
// how the load balancer actually schedules.
type HetMMC struct {
	Lambda float64   // arrival rate, req/s
	Rates  []float64 // per-container service rates, req/s (any order)

	sorted  []float64 // ascending copy of Rates
	prefix  []float64 // prefix[k] = μ_1 + ... + μ_k (1-based, prefix[0]=0)
	logPref []float64 // logPref[k] = Σ_{j=1..k} log(prefix[j])
}

// NewHetMMC builds the model, sorting rates ascending as the worst-case
// analysis requires (slowest containers first).
func NewHetMMC(lambda float64, rates []float64) (*HetMMC, error) {
	if lambda < 0 {
		return nil, fmt.Errorf("queuing: negative arrival rate %v", lambda)
	}
	if len(rates) == 0 {
		return nil, fmt.Errorf("queuing: heterogeneous model needs at least one container")
	}
	h := &HetMMC{Lambda: lambda, Rates: rates}
	h.sorted = append([]float64(nil), rates...)
	sort.Float64s(h.sorted)
	if h.sorted[0] <= 0 {
		return nil, fmt.Errorf("queuing: non-positive service rate %v", h.sorted[0])
	}
	c := len(h.sorted)
	h.prefix = make([]float64, c+1)
	h.logPref = make([]float64, c+1)
	for k := 1; k <= c; k++ {
		h.prefix[k] = h.prefix[k-1] + h.sorted[k-1]
		h.logPref[k] = h.logPref[k-1] + math.Log(h.prefix[k])
	}
	return h, nil
}

// C returns the number of containers.
func (h *HetMMC) C() int { return len(h.sorted) }

// TotalRate returns the aggregate service rate Σ μ_j.
func (h *HetMMC) TotalRate() float64 { return h.prefix[len(h.sorted)] }

// Rho returns the utilization λ/Σμ_j.
func (h *HetMMC) Rho() float64 { return h.Lambda / h.TotalRate() }

// Stable reports whether the system has a steady state (ρ < 1).
func (h *HetMMC) Stable() bool { return h.Rho() < 1 }

// logA returns log of the unnormalized state weight a_n (P_n = P0·a_n):
//
//	n ≤ c: a_n = λ^n / Π_{k=1}^{n} S_k          (Eq 5, S_k = Σ_{j≤k} μ_j)
//	n > c: a_n = a_c · (λ/S_c)^{n-c}            (Eq 6)
func (h *HetMMC) logA(n int) float64 {
	if n == 0 {
		return 0
	}
	c := len(h.sorted)
	logLambda := math.Log(h.Lambda)
	if h.Lambda == 0 {
		return math.Inf(-1)
	}
	if n <= c {
		return float64(n)*logLambda - h.logPref[n]
	}
	logAc := float64(c)*logLambda - h.logPref[c]
	return logAc + float64(n-c)*(logLambda-math.Log(h.prefix[c]))
}

// logP0 returns log(P0) where P0 normalizes the a_n over all n >= 0.
// The tail n > c is a geometric series with ratio λ/S_c < 1.
func (h *HetMMC) logP0() (float64, error) {
	if h.Lambda == 0 {
		return 0, nil
	}
	if !h.Stable() {
		return 0, ErrUnstable
	}
	c := len(h.sorted)
	terms := make([]float64, 0, c+2)
	for n := 0; n <= c; n++ {
		terms = append(terms, h.logA(n))
	}
	// Σ_{n=c+1}^∞ a_n = a_c · x/(1-x), x = λ/S_c.
	x := h.Lambda / h.prefix[c]
	terms = append(terms, h.logA(c)+math.Log(x)-math.Log(1-x))
	return -logSumExp(terms), nil
}

// P0 returns the upper-bound empty-system probability.
func (h *HetMMC) P0() (float64, error) {
	lp, err := h.logP0()
	if err != nil {
		return 0, err
	}
	return math.Exp(lp), nil
}

// Pn returns the Alves worst-case upper bound on the probability of seeing
// n requests in the system.
func (h *HetMMC) Pn(n int) (float64, error) {
	if n < 0 {
		return 0, fmt.Errorf("queuing: negative n %d", n)
	}
	lp0, err := h.logP0()
	if err != nil {
		return 0, err
	}
	return math.Exp(lp0 + h.logA(n)), nil
}

// waitBoundStates returns L = ⌊t·S_c + c - 1⌋: with all c containers busy,
// departures occur at aggregate rate S_c, so an arrival that sees at most L
// requests has expected wait ≤ t (the heterogeneous analogue of Eq 3).
func (h *HetMMC) waitBoundStates(t float64) int {
	if t < 0 {
		t = 0
	}
	c := len(h.sorted)
	return int(math.Floor(t*h.prefix[c] + float64(c) - 1))
}

// ProbWaitLE returns the worst-case lower bound on P(Q ≤ t): the summed
// state probabilities up to L (heterogeneous analogue of Eq 4). Because the
// P_n for n > 0 are upper bounds concentrated by the worst-case scheduler,
// the resulting provisioning decision is conservative.
func (h *HetMMC) ProbWaitLE(t float64) (float64, error) {
	lp0, err := h.logP0()
	if err != nil {
		return 0, err
	}
	L := h.waitBoundStates(t)
	if L < 0 {
		return 0, nil
	}
	c := len(h.sorted)
	terms := make([]float64, 0, min(L, c)+2)
	for n := 0; n <= L && n <= c; n++ {
		terms = append(terms, h.logA(n))
	}
	if L > c {
		// Partial geometric tail Σ_{n=c+1}^{L} a_n = a_c·x(1-x^{L-c})/(1-x).
		x := h.Lambda / h.prefix[c]
		k := float64(L - c)
		if x > 0 {
			partial := h.logA(c) + math.Log(x) + math.Log1p(-math.Pow(x, k)) - math.Log(1-x)
			terms = append(terms, partial)
		}
	}
	p := math.Exp(lp0 + logSumExp(terms))
	if p > 1 {
		p = 1
	}
	return p, nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
