// Package queuing implements the queueing-theoretic capacity models at the
// core of LaSS (paper §3): the M/M/c steady-state analysis used to size
// homogeneous container pools (Eqs 1-4, Algorithm 1), the Alves et al.
// worst-case upper bounds for heterogeneous (deflated) container pools
// (Eqs 5-6), and the iterative solvers that turn an observed arrival rate, a
// service-time profile, and an SLO deadline into a container count.
//
// Two implementations of the M/M/c evaluation exist side by side:
//
//   - MMC computes steady-state probabilities in log space with log-sum-exp
//     normalization, which stays numerically exact for thousands of
//     containers. This corresponds to the paper's Julia implementation that
//     reacts in under 100 ms with 1000 running containers (Fig 5).
//   - NaiveMMC (naive.go) evaluates the textbook formulas directly in
//     float64 with explicit factorials, which overflows past 170 servers and
//     loses precision long before that. It stands in for the paper's Scala
//     implementation, which "was not able to compute the results in some
//     cases due to its precision limitations" (§6.3).
//
// All rates are in requests/second; times are in seconds unless a
// time.Duration-typed helper is used.
package queuing

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
)

// ErrUnstable is returned when a queueing system has utilization >= 1 and
// therefore no steady state: no finite container pool of the given size can
// bound waiting time.
var ErrUnstable = errors.New("queuing: system is unstable (utilization >= 1)")

// MMC is an M/M/c/FCFS queueing system: Poisson arrivals at rate Lambda,
// exponential service at rate Mu per server, C identical servers.
// In LaSS each "server" is one container running the function (§3.1).
type MMC struct {
	Lambda float64 // arrival rate, req/s
	Mu     float64 // per-container service rate, req/s
	C      int     // number of containers
}

// Validate checks structural parameters (it does not require stability).
func (m MMC) Validate() error {
	if m.Lambda < 0 {
		return fmt.Errorf("queuing: negative arrival rate %v", m.Lambda)
	}
	if m.Mu <= 0 {
		return fmt.Errorf("queuing: non-positive service rate %v", m.Mu)
	}
	if m.C < 1 {
		return fmt.Errorf("queuing: need at least 1 server, got %d", m.C)
	}
	return nil
}

// Rho returns the utilization λ/(cμ).
func (m MMC) Rho() float64 { return m.Lambda / (float64(m.C) * m.Mu) }

// Stable reports whether the system has a steady state (ρ < 1).
func (m MMC) Stable() bool { return m.Rho() < 1 }

// logSumExp returns log(Σ exp(x_i)) computed stably.
//
//lass:bitexact
func logSumExp(xs []float64) float64 {
	max := math.Inf(-1)
	for _, x := range xs {
		if x > max {
			max = x
		}
	}
	if math.IsInf(max, -1) {
		return max
	}
	var sum float64
	for _, x := range xs {
		sum += math.Exp(x - max)
	}
	return max + math.Log(sum)
}

// logFactCache is the growing shared cache of log(n!) values. The published
// table is immutable (readers index it lock-free through the atomic
// pointer); growth happens under the mutex by copying into a fresh slice,
// so each log(n!) is computed by math.Lgamma exactly once, ever. Every
// sizing epoch used to recompute these from scratch — O(c²) Lgamma calls
// per Algorithm 1 scan — which dominated the control plane at metro scale.
var logFactCache struct {
	mu  sync.Mutex
	tab atomic.Pointer[[]float64]
}

// logFactorials returns an immutable table t covering 0..n (len(t) > n)
// with t[k] = log(k!). Cached values are bit-identical to the direct
// math.Lgamma computation they replace: each entry is produced by the same
// single call the uncached form made, just once instead of every epoch.
// Callers on hot paths hoist the returned slice out of their probe loops.
func logFactorials(n int) []float64 {
	if tab := logFactCache.tab.Load(); tab != nil && n < len(*tab) {
		return *tab
	}
	return growLogFactorials(n)
}

// growLogFactorials extends the cache to cover n and returns the new table.
func growLogFactorials(n int) []float64 {
	logFactCache.mu.Lock()
	defer logFactCache.mu.Unlock()
	var cur []float64
	if tab := logFactCache.tab.Load(); tab != nil {
		cur = *tab
		if n < len(cur) {
			return cur
		}
	}
	size := 2 * len(cur)
	if size < 128 {
		size = 128
	}
	if size < n+1 {
		size = n + 1
	}
	next := make([]float64, size)
	copy(next, cur)
	for k := len(cur); k < size; k++ {
		lg, _ := math.Lgamma(float64(k) + 1)
		next[k] = lg
	}
	logFactCache.tab.Store(&next)
	return next
}

// logFactorial returns log(n!) via the log-gamma function, served from the
// shared cache.
func logFactorial(n int) float64 {
	return logFactorials(n)[n]
}

// logP0 returns log of the empty-system probability P0 (Eq 2):
//
//	P0 = [ r^c / (c!(1-ρ)) + Σ_{n=0}^{c-1} r^n/n! ]^{-1}
//
// computed entirely in log space.
//
//lass:bitexact
func (m MMC) logP0() (float64, error) {
	if err := m.Validate(); err != nil {
		return 0, err
	}
	if !m.Stable() {
		return 0, ErrUnstable
	}
	r := m.Lambda / m.Mu
	if r == 0 {
		return 0, nil // log(1): empty system with certainty
	}
	logr := math.Log(r)
	rho := m.Rho()
	lf := logFactorials(m.C) // hoisted: one cache load for the whole scan
	tail := float64(m.C)*logr - lf[m.C] - math.Log(1-rho)
	// Stream the log-sum-exp over the C+1 terms without materializing a
	// slice. The terms are regenerated in the same order the slice held
	// them (n = 0..C-1, then the tail), so the floating-point result is
	// bit-identical to the materialized form.
	max := math.Inf(-1)
	for n := 0; n < m.C; n++ {
		if x := float64(n)*logr - lf[n]; x > max {
			max = x
		}
	}
	if tail > max {
		max = tail
	}
	if math.IsInf(max, -1) {
		return -max, nil
	}
	var sum float64
	for n := 0; n < m.C; n++ {
		sum += math.Exp(float64(n)*logr - lf[n] - max)
	}
	sum += math.Exp(tail - max)
	return -(max + math.Log(sum)), nil
}

// P0 returns the steady-state probability of an empty system (Eq 2).
func (m MMC) P0() (float64, error) {
	lp, err := m.logP0()
	if err != nil {
		return 0, err
	}
	return math.Exp(lp), nil
}

// logPn returns log(P_n) per Eq 1.
func (m MMC) logPn(n int, logp0 float64) float64 {
	r := m.Lambda / m.Mu
	if r == 0 {
		if n == 0 {
			return 0
		}
		return math.Inf(-1)
	}
	logr := math.Log(r)
	if n <= m.C {
		return float64(n)*logr - logFactorial(n) + logp0
	}
	// r^n / (c^(n-c) c!) — Eq 1 second branch.
	return float64(n)*logr - float64(n-m.C)*math.Log(float64(m.C)) - logFactorial(m.C) + logp0
}

// Pn returns the steady-state probability of seeing n requests in the
// system (Eq 1).
func (m MMC) Pn(n int) (float64, error) {
	if n < 0 {
		return 0, fmt.Errorf("queuing: negative n %d", n)
	}
	lp0, err := m.logP0()
	if err != nil {
		return 0, err
	}
	return math.Exp(m.logPn(n, lp0)), nil
}

// ErlangC returns the probability that an arriving request must wait
// (all c containers busy), the classic Erlang-C formula. Used as an exact
// cross-check of the summed steady-state probabilities in tests.
func (m MMC) ErlangC() (float64, error) {
	lp0, err := m.logP0()
	if err != nil {
		return 0, err
	}
	r := m.Lambda / m.Mu
	if r == 0 {
		return 0, nil
	}
	rho := m.Rho()
	// P(wait) = r^c/(c!(1-ρ)) · P0
	lw := float64(m.C)*math.Log(r) - logFactorial(m.C) - math.Log(1-rho) + lp0
	return math.Exp(lw), nil
}

// MeanWait returns the expected queueing delay Wq = C(c,r)/(cμ-λ).
func (m MMC) MeanWait() (float64, error) {
	pw, err := m.ErlangC()
	if err != nil {
		return 0, err
	}
	return pw / (float64(m.C)*m.Mu - m.Lambda), nil
}

// MeanResponse returns the expected response time Wq + 1/μ.
func (m MMC) MeanWaitPlusService() (float64, error) {
	wq, err := m.MeanWait()
	if err != nil {
		return 0, err
	}
	return wq + 1/m.Mu, nil
}

// waitBoundStates returns L = ⌊t·c·μ + c - 1⌋, the largest number of
// requests an arrival can see in the system while its expected wait still
// fits within t (paper Eq 3 rearranged, Algorithm 1 line 4).
func (m MMC) waitBoundStates(t float64) int {
	if t < 0 {
		t = 0
	}
	return int(math.Floor(t*float64(m.C)*m.Mu + float64(m.C) - 1))
}

// ProbWaitLE returns the paper's bound on P(Q ≤ t): the probability that an
// arriving request sees no more than L = ⌊tcμ + c - 1⌋ requests already in
// the system (Eqs 3-4). This is the quantity Algorithm 1 drives to the SLO
// percentile.
//
//lass:bitexact
func (m MMC) ProbWaitLE(t float64) (float64, error) {
	lp0, err := m.logP0()
	if err != nil {
		return 0, err
	}
	L := m.waitBoundStates(t)
	if L < 0 {
		return 0, nil
	}
	// The probe loops below inline logPn with every t- and n-independent
	// quantity hoisted out of the loop: log(r), log(c), log(c!), and the
	// shared log-factorial table are each computed once per call instead of
	// once per probe. Hoisting changes where the values are computed, not
	// what they are, so every term — and the streamed log-sum-exp over them
	// — is bit-identical to the unhoisted per-probe form (the regression
	// test compares against a frozen unhoisted copy term by term).
	r := m.Lambda / m.Mu
	if r == 0 {
		return 1, nil // lp0 = 0 and only the n=0 term is finite
	}
	logr := math.Log(r)
	logc := math.Log(float64(m.C))
	lf := logFactorials(m.C)
	lfc := lf[m.C]
	logPn := func(n int) float64 {
		if n <= m.C {
			return float64(n)*logr - lf[n] + lp0
		}
		// r^n / (c^(n-c) c!) — Eq 1 second branch.
		return float64(n)*logr - float64(n-m.C)*logc - lfc + lp0
	}
	// Streamed log-sum-exp over logPn(0..L): logPn is pure, so the second
	// pass regenerates exactly the values a slice would have held, in the
	// same order — bit-identical, allocation-free at any L.
	max := math.Inf(-1)
	for n := 0; n <= L; n++ {
		if x := logPn(n); x > max {
			max = x
		}
	}
	if math.IsInf(max, -1) {
		return 0, nil
	}
	var sum float64
	for n := 0; n <= L; n++ {
		sum += math.Exp(logPn(n) - max)
	}
	p := math.Exp(max + math.Log(sum))
	if p > 1 {
		p = 1 // guard against last-ulp rounding
	}
	return p, nil
}

// ProbWaitLEExact returns the exact M/M/c waiting-time CDF
// P(W ≤ t) = 1 - C(c,r)·e^{-(cμ-λ)t}, used in tests to validate that the
// paper's discrete state-count bound is conservative and close.
func (m MMC) ProbWaitLEExact(t float64) (float64, error) {
	pw, err := m.ErlangC()
	if err != nil {
		return 0, err
	}
	if t < 0 {
		t = 0
	}
	return 1 - pw*math.Exp(-(float64(m.C)*m.Mu-m.Lambda)*t), nil
}

// WaitQuantile returns the t such that P(W ≤ t) = q under the exact
// M/M/c waiting-time distribution (0 when the quantile falls inside the
// no-wait mass).
func (m MMC) WaitQuantile(q float64) (float64, error) {
	pw, err := m.ErlangC()
	if err != nil {
		return 0, err
	}
	if q < 0 || q > 1 {
		return 0, fmt.Errorf("queuing: quantile %v out of [0,1]", q)
	}
	if 1-q >= pw {
		return 0, nil // quantile is inside P(W=0) mass
	}
	return -math.Log((1-q)/pw) / (float64(m.C)*m.Mu - m.Lambda), nil
}
