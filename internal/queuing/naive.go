package queuing

import "math"

// NaiveMMC evaluates the M/M/c steady-state formulas exactly as written in
// a textbook: explicit factorials and powers in float64. It exists to
// reproduce the paper's Figure 5 comparison, where the authors' Scala
// implementation "was not able to compute the results in some cases due to
// its precision limitations" while the Julia implementation scaled to 1000
// containers. float64 factorial overflows at 171!, and r^n overflows for
// moderate r and large n, so this implementation fails (returns NaN/Inf or
// nonsense) well before 1000 containers — exactly the failure mode the
// paper observed.
//
// Do not use NaiveMMC outside benchmarks and tests; MMC is the production
// implementation.
type NaiveMMC struct {
	Lambda float64
	Mu     float64
	C      int
}

func factorial(n int) float64 {
	f := 1.0
	for i := 2; i <= n; i++ {
		f *= float64(i)
	}
	return f
}

// P0 computes Eq 2 directly: P0 = [ r^c/(c!(1-ρ)) + Σ r^n/n! ]^{-1}.
func (m NaiveMMC) P0() float64 {
	r := m.Lambda / m.Mu
	rho := m.Lambda / (float64(m.C) * m.Mu)
	if rho >= 1 {
		return math.NaN()
	}
	sum := 0.0
	for n := 0; n < m.C; n++ {
		sum += math.Pow(r, float64(n)) / factorial(n)
	}
	sum += math.Pow(r, float64(m.C)) / (factorial(m.C) * (1 - rho))
	return 1 / sum
}

// Pn computes Eq 1 directly.
func (m NaiveMMC) Pn(n int, p0 float64) float64 {
	r := m.Lambda / m.Mu
	if n <= m.C {
		return math.Pow(r, float64(n)) / factorial(n) * p0
	}
	return math.Pow(r, float64(n)) / (math.Pow(float64(m.C), float64(n-m.C)) * factorial(m.C)) * p0
}

// ProbWaitLE computes the Eq 4 bound by direct summation.
func (m NaiveMMC) ProbWaitLE(t float64) float64 {
	p0 := m.P0()
	if math.IsNaN(p0) || math.IsInf(p0, 0) {
		return math.NaN()
	}
	L := int(math.Floor(t*float64(m.C)*m.Mu + float64(m.C) - 1))
	if L < 0 {
		return 0
	}
	sum := 0.0
	for n := 0; n <= L; n++ {
		sum += m.Pn(n, p0)
	}
	return sum
}

// Healthy reports whether the naive evaluation produced a finite,
// plausible probability for the given waiting bound. Benchmarks use this to
// count the parameter range over which the naive implementation remains
// usable.
func (m NaiveMMC) Healthy(t float64) bool {
	p := m.ProbWaitLE(t)
	return !math.IsNaN(p) && !math.IsInf(p, 0) && p >= 0 && p <= 1.0000001
}
