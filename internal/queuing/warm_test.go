package queuing

import (
	"math"
	"sync"
	"testing"
	"time"
)

// refLogFactorial is the pre-cache form: one math.Lgamma call per use.
// The cache must serve bit-identical values.
func refLogFactorial(n int) float64 {
	lg, _ := math.Lgamma(float64(n) + 1)
	return lg
}

func TestLogFactorialCacheMatchesLgamma(t *testing.T) {
	for n := 0; n <= 5000; n++ {
		if got, want := logFactorial(n), refLogFactorial(n); got != want {
			t.Fatalf("logFactorial(%d) = %v, want %v", n, got, want)
		}
	}
	// Spot-check far beyond the pre-grown range to force another growth.
	for _, n := range []int{8192, 100_000} {
		if got, want := logFactorial(n), refLogFactorial(n); got != want {
			t.Fatalf("logFactorial(%d) = %v, want %v", n, got, want)
		}
	}
}

func TestLogFactorialCacheConcurrent(t *testing.T) {
	// Concurrent readers while the table grows: run under -race in CI.
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for n := g; n < 4000; n += 3 {
				if got, want := logFactorial(n), refLogFactorial(n); got != want {
					t.Errorf("logFactorial(%d) = %v, want %v", n, got, want)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

// refProbWaitLE is the unhoisted pre-optimization ProbWaitLE, kept frozen:
// every probe re-derives log(r), log(c), and log(c!) through the logPn
// method. The production form hoists those per call and must stay
// bit-identical to this.
func refProbWaitLE(m MMC, t float64) (float64, error) {
	lp0, err := m.logP0()
	if err != nil {
		return 0, err
	}
	L := m.waitBoundStates(t)
	if L < 0 {
		return 0, nil
	}
	logPn := func(n int) float64 {
		r := m.Lambda / m.Mu
		if r == 0 {
			if n == 0 {
				return 0
			}
			return math.Inf(-1)
		}
		logr := math.Log(r)
		if n <= m.C {
			return float64(n)*logr - refLogFactorial(n) + lp0
		}
		return float64(n)*logr - float64(n-m.C)*math.Log(float64(m.C)) - refLogFactorial(m.C) + lp0
	}
	max := math.Inf(-1)
	for n := 0; n <= L; n++ {
		if x := logPn(n); x > max {
			max = x
		}
	}
	if math.IsInf(max, -1) {
		return 0, nil
	}
	var sum float64
	for n := 0; n <= L; n++ {
		sum += math.Exp(logPn(n) - max)
	}
	p := math.Exp(max + math.Log(sum))
	if p > 1 {
		p = 1
	}
	return p, nil
}

func TestProbWaitLEMatchesUnhoistedForm(t *testing.T) {
	for _, lambda := range []float64{0, 0.5, 9, 45, 120, 900, 4000} {
		for _, mu := range []float64{1, 10, 33.3} {
			for c := 1; c <= 256; c = c*2 + 1 {
				m := MMC{Lambda: lambda, Mu: mu, C: c}
				for _, tt := range []float64{0, 0.01, 0.1, 1.5} {
					want, wantErr := refProbWaitLE(m, tt)
					got, gotErr := m.ProbWaitLE(tt)
					if (wantErr == nil) != (gotErr == nil) {
						t.Fatalf("MMC%+v ProbWaitLE(%v): err %v vs reference %v", m, tt, gotErr, wantErr)
					}
					if wantErr != nil {
						continue
					}
					if got != want {
						t.Fatalf("MMC%+v ProbWaitLE(%v) = %v, reference (unhoisted) = %v: not bit-identical",
							m, tt, got, want)
					}
				}
			}
		}
	}
}

// swingLambdas is the adversarial demand trajectory the warm-sizer tests
// replay: slow drift, a 10x burst, collapse to zero, recovery, a spike
// that makes the previous epoch's count wildly unstable (rho >= 1 at the
// hint), and jitter around the stability boundary.
var swingLambdas = []float64{
	45, 46.3, 47.1, 44.9, 45.5, // slow drift: warm scan should touch O(1) candidates
	455, 470, 430, // 10x burst
	0, 0, // demand collapse: idle epochs
	45, 45.2, // recovery from zero (hint is stale high-water or zero)
	4500,           // 100x spike: hint is far below the new stability floor
	9.7, 10.3, 9.9, // near-idle jitter
	0.001, 1200, 0.5, 890, // whiplash between extremes
}

func TestWarmSizerMatchesColdUnderSwings(t *testing.T) {
	slo := SLO{Deadline: 100 * time.Millisecond, Percentile: 0.95, WaitingOnly: true}
	for _, mu := range []float64{1, 10, 31.7} {
		hint := 0
		for i, lambda := range swingLambdas {
			cold, coldErr := RequiredContainers(lambda, mu, slo, 0)
			warm, warmErr := MinimalContainersFrom(lambda, mu, slo, hint)
			if (coldErr == nil) != (warmErr == nil) {
				t.Fatalf("step %d (lambda=%v mu=%v hint=%d): warm err %v vs cold err %v",
					i, lambda, mu, hint, warmErr, coldErr)
			}
			if coldErr == nil && warm != cold {
				t.Fatalf("step %d (lambda=%v mu=%v hint=%d): warm sizer found %d, cold scan %d",
					i, lambda, mu, hint, warm, cold)
			}
			hint = warm
		}
	}
}

func TestWarmSizerMatchesColdExhaustive(t *testing.T) {
	// Every (lambda, hint) pair in a dense grid, including hints far above
	// and below the answer: the warm result must always equal the cold one.
	slo := SLO{Deadline: 50 * time.Millisecond, Percentile: 0.99, WaitingOnly: true}
	const mu = 10
	for lambda := 0.0; lambda <= 300; lambda += 7.3 {
		cold, coldErr := MinimalContainers(lambda, mu, slo)
		if coldErr != nil {
			t.Fatalf("cold sizing failed at lambda=%v: %v", lambda, coldErr)
		}
		for _, hint := range []int{0, 1, cold - 3, cold - 1, cold, cold + 1, cold + 17, 4 * cold, 1000} {
			warm, err := MinimalContainersFrom(lambda, mu, slo, hint)
			if err != nil {
				t.Fatalf("warm sizing failed at lambda=%v hint=%d: %v", lambda, hint, err)
			}
			if warm != cold {
				t.Fatalf("lambda=%v hint=%d: warm %d != cold %d", lambda, hint, warm, cold)
			}
		}
	}
}

func TestWarmHetSizerMatchesCold(t *testing.T) {
	slo := SLO{Deadline: 100 * time.Millisecond, Percentile: 0.95, WaitingOnly: true}
	// A deflated pool: 12 containers, a third of them slowed.
	existing := make([]float64, 12)
	for i := range existing {
		existing[i] = 10
		if i%3 == 0 {
			existing[i] = 7.5
		}
	}
	hint := 0
	for i, lambda := range swingLambdas {
		cold, coldErr := AdditionalHetContainersFrom(lambda, existing, 10, slo, 0)
		warm, warmErr := AdditionalHetContainersFrom(lambda, existing, 10, slo, hint)
		if (coldErr == nil) != (warmErr == nil) {
			t.Fatalf("step %d (lambda=%v hint=%d): warm err %v vs cold err %v", i, lambda, hint, warmErr, coldErr)
		}
		if coldErr == nil && warm != cold {
			t.Fatalf("step %d (lambda=%v hint=%d): warm het sizer found %d, cold scan %d",
				i, lambda, hint, warm, cold)
		}
		hint = warm
	}
	// Empty pool and absurd hints degrade to the cold answer too.
	for _, hint := range []int{0, 1, 5, 500} {
		cold, err1 := AdditionalHetContainersFrom(90, nil, 10, slo, 0)
		warm, err2 := AdditionalHetContainersFrom(90, nil, 10, slo, hint)
		if err1 != nil || err2 != nil {
			t.Fatalf("empty-pool sizing failed: %v / %v", err1, err2)
		}
		if warm != cold {
			t.Fatalf("empty pool hint=%d: warm %d != cold %d", hint, warm, cold)
		}
	}
}

func TestProbWaitLEAllocationFree(t *testing.T) {
	m := MMC{Lambda: 900, Mu: 10, C: 120}
	if _, err := m.ProbWaitLE(0.1); err != nil { // warm the factorial cache
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		if _, err := m.ProbWaitLE(0.1); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("ProbWaitLE allocated %.1f times per call; the sizing hot path must stay allocation-free", allocs)
	}
}

func TestWarmSizerAllocationFree(t *testing.T) {
	slo := SLO{Deadline: 100 * time.Millisecond, Percentile: 0.95, WaitingOnly: true}
	hint, err := MinimalContainers(45, 10, slo)
	if err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		c, err := MinimalContainersFrom(45.2, 10, slo, hint)
		if err != nil {
			t.Fatal(err)
		}
		hint = c
	})
	if allocs != 0 {
		t.Fatalf("warm-started sizing allocated %.1f times per call; want 0", allocs)
	}
}
