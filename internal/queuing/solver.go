package queuing

import (
	"fmt"
	"math"
	"time"
)

// SLO describes the latency target the solvers provision against, matching
// the paper's problem statement (§2.3): a high percentile of requests must
// start service (or complete) within the deadline.
type SLO struct {
	// Deadline is the end-to-end target d_i. When WaitingOnly is set the
	// deadline applies to queueing delay alone (the evaluation's default:
	// "95% of requests should start being processed within 100 ms", §6.1).
	Deadline time.Duration
	// Percentile is the fraction of requests that must meet the deadline,
	// e.g. 0.95 or 0.99.
	Percentile float64
	// WaitingOnly selects whether Deadline bounds just the waiting time
	// (true) or waiting plus the high-percentile service time (false). In
	// the latter case the solver uses t = d - 1/μ_p, per §3.1
	// ("t_p99 = d - 1/μ_p99").
	WaitingOnly bool
	// ServiceP is the high-percentile service time (seconds) subtracted
	// from the deadline when WaitingOnly is false. Zero means "use the
	// mean service time" as a fallback.
	ServiceP float64
}

// WaitBudget returns the waiting-time budget t (seconds) implied by the SLO
// given the mean service rate mu.
func (s SLO) WaitBudget(mu float64) (float64, error) {
	d := s.Deadline.Seconds()
	if d <= 0 {
		return 0, fmt.Errorf("queuing: non-positive SLO deadline %v", s.Deadline)
	}
	if s.Percentile <= 0 || s.Percentile >= 1 {
		return 0, fmt.Errorf("queuing: SLO percentile %v out of (0,1)", s.Percentile)
	}
	if s.WaitingOnly {
		return d, nil
	}
	sp := s.ServiceP
	if sp == 0 {
		if mu <= 0 {
			return 0, fmt.Errorf("queuing: non-positive service rate %v", mu)
		}
		sp = 1 / mu
	}
	t := d - sp
	if t <= 0 {
		return 0, fmt.Errorf("queuing: SLO deadline %v leaves no waiting budget after service time %.4fs", s.Deadline, sp)
	}
	return t, nil
}

// MaxSolverContainers bounds the container count the solvers will consider
// before giving up; it is a safety valve against pathological inputs (e.g.
// deadlines shorter than any achievable wait), not a cluster capacity limit.
const MaxSolverContainers = 1 << 20

// RequiredContainers implements the paper's Algorithm 1: starting from the
// current container count (at least the stability minimum), increment c
// until P(Q ≤ t) ≥ percentile. It returns the smallest such c found by the
// upward scan.
//
// startC is "the number of containers in the system" (Algorithm 1 line 1);
// pass 0 when sizing from scratch. The returned count is 0 when lambda is 0
// (an idle function needs no capacity by the model; minimum-pool policy is
// the controller's concern).
func RequiredContainers(lambda, mu float64, slo SLO, startC int) (int, error) {
	if lambda < 0 || mu <= 0 {
		return 0, fmt.Errorf("queuing: invalid rates lambda=%v mu=%v", lambda, mu)
	}
	if lambda == 0 {
		return 0, nil
	}
	t, err := slo.WaitBudget(mu)
	if err != nil {
		return 0, err
	}
	// Stability floor: c must exceed λ/μ.
	c := int(math.Floor(lambda/mu)) + 1
	if startC > c {
		c = startC
	}
	for ; c <= MaxSolverContainers; c++ {
		m := MMC{Lambda: lambda, Mu: mu, C: c}
		if !m.Stable() {
			continue
		}
		p, err := m.ProbWaitLE(t)
		if err != nil {
			return 0, err
		}
		if p >= slo.Percentile {
			return c, nil
		}
	}
	return 0, fmt.Errorf("queuing: no container count up to %d meets SLO (lambda=%v mu=%v t=%vs p=%v)",
		MaxSolverContainers, lambda, mu, t, slo.Percentile)
}

// MinimalContainers returns the smallest c ≥ 1 meeting the SLO, regardless
// of the current allocation. The controller uses it to compute c_new each
// epoch: unlike Algorithm 1's upward-only scan it also allows scaling down.
func MinimalContainers(lambda, mu float64, slo SLO) (int, error) {
	return MinimalContainersFrom(lambda, mu, slo, 0)
}

// MinimalContainersFrom returns exactly MinimalContainers' answer, seeding
// the c-scan at hint — a previous epoch's result for the same function.
// P(Q ≤ t) is nondecreasing in c for fixed λ, μ, t (more containers both
// drain the queue faster and raise the Eq 3 state bound L), so the set of
// SLO-satisfying counts is upward-closed and the minimal element found by
// scanning down from a satisfying hint — or up from an unsatisfying one —
// is the same count the cold scan from the stability floor finds. Each
// candidate's ProbWaitLE evaluation is independent of the scan path, so
// the result is bit-identical by construction; the warm-sizer tests assert
// the equivalence under adversarial demand swings. When successive epochs'
// rates drift slowly the scan touches O(1) candidates instead of the cold
// scan's O(c), which is what makes metro-scale control epochs cheap.
//
// A hint ≤ 0 (or below the stability floor) degenerates to the cold scan.
func MinimalContainersFrom(lambda, mu float64, slo SLO, hint int) (int, error) {
	if lambda < 0 || mu <= 0 {
		return 0, fmt.Errorf("queuing: invalid rates lambda=%v mu=%v", lambda, mu)
	}
	if lambda == 0 {
		return 0, nil
	}
	t, err := slo.WaitBudget(mu)
	if err != nil {
		return 0, err
	}
	// Stability floor: c must exceed λ/μ.
	floor := int(math.Floor(lambda/mu)) + 1
	meets := func(c int) (bool, error) {
		m := MMC{Lambda: lambda, Mu: mu, C: c}
		if !m.Stable() {
			return false, nil
		}
		p, err := m.ProbWaitLE(t)
		if err != nil {
			return false, err
		}
		return p >= slo.Percentile, nil
	}
	c := floor
	if hint > c {
		c = hint
	}
	if c > MaxSolverContainers {
		c = MaxSolverContainers
	}
	ok, err := meets(c)
	if err != nil {
		return 0, err
	}
	if ok {
		// Seeded at (or above) a satisfying count: walk down to the
		// minimal one.
		for c > floor {
			ok, err := meets(c - 1)
			if err != nil {
				return 0, err
			}
			if !ok {
				break
			}
			c--
		}
		return c, nil
	}
	for c++; c <= MaxSolverContainers; c++ {
		ok, err := meets(c)
		if err != nil {
			return 0, err
		}
		if ok {
			return c, nil
		}
	}
	return 0, fmt.Errorf("queuing: no container count up to %d meets SLO (lambda=%v mu=%v t=%vs p=%v)",
		MaxSolverContainers, lambda, mu, t, slo.Percentile)
}

// RequiredContainersNaive runs the same Algorithm 1 scan on the naive
// float64 implementation, returning an error when the arithmetic breaks
// down. It exists for the Figure 5 scalability/robustness comparison.
func RequiredContainersNaive(lambda, mu float64, slo SLO, startC int) (int, error) {
	if lambda <= 0 || mu <= 0 {
		return 0, fmt.Errorf("queuing: invalid rates lambda=%v mu=%v", lambda, mu)
	}
	t, err := slo.WaitBudget(mu)
	if err != nil {
		return 0, err
	}
	c := int(math.Floor(lambda/mu)) + 1
	if startC > c {
		c = startC
	}
	for ; c <= MaxSolverContainers; c++ {
		m := NaiveMMC{Lambda: lambda, Mu: mu, C: c}
		if lambda/(float64(c)*mu) >= 1 {
			continue
		}
		p := m.ProbWaitLE(t)
		if math.IsNaN(p) || math.IsInf(p, 0) || p < 0 || p > 1.0000001 {
			return 0, fmt.Errorf("queuing: naive evaluation lost precision at c=%d (p=%v)", c, p)
		}
		if p >= slo.Percentile {
			return c, nil
		}
	}
	return 0, fmt.Errorf("queuing: naive scan exhausted")
}

// AdditionalHetContainers sizes a heterogeneous pool (paper §3.2): given the
// service rates of the containers already running (possibly deflated) and
// the service rate a newly created standard container would have, it returns
// how many standard containers must be added so that the Alves worst-case
// bound on P(Q ≤ t) reaches the SLO percentile. existing may be empty.
func AdditionalHetContainers(lambda float64, existing []float64, newRate float64, slo SLO) (int, error) {
	return AdditionalHetContainersFrom(lambda, existing, newRate, slo, 0)
}

// AdditionalHetContainersFrom returns exactly AdditionalHetContainers'
// answer, seeding the additional-container scan at hint (a previous
// epoch's result). Adding a standard container only ever raises the Alves
// bound on P(Q ≤ t) — the pool's aggregate rate grows and the worst-case
// scheduler's options improve — so the satisfying additions are
// upward-closed and the warm scan (down from a satisfying hint, up from an
// unsatisfying one) lands on the same minimal count the cold scan from
// zero finds. Each candidate pool's evaluation is independent of the scan
// path, so the result is bit-identical by construction (asserted by the
// warm-sizer swing tests). A hint ≤ 0 degenerates to the cold scan.
func AdditionalHetContainersFrom(lambda float64, existing []float64, newRate float64, slo SLO, hint int) (int, error) {
	if lambda < 0 || newRate <= 0 {
		return 0, fmt.Errorf("queuing: invalid rates lambda=%v newRate=%v", lambda, newRate)
	}
	if lambda == 0 {
		return 0, nil
	}
	// Waiting budget from the mean rate of the would-be pool; the
	// controller passes WaitingOnly SLOs in the evaluation so this only
	// matters for end-to-end deadlines.
	t, err := slo.WaitBudget(newRate)
	if err != nil {
		return 0, err
	}
	if hint < 0 {
		hint = 0
	}
	if max := MaxSolverContainers - len(existing); hint > max {
		hint = max
		if hint < 0 {
			hint = 0
		}
	}
	rates := make([]float64, 0, len(existing)+hint+1)
	rates = append(rates, existing...)
	for i := 0; i < hint; i++ {
		rates = append(rates, newRate)
	}
	// meets evaluates the pool of existing plus add standard containers,
	// exactly as one cold-scan iteration would.
	meets := func(add int) (bool, error) {
		if len(existing)+add == 0 {
			return false, nil
		}
		h, err := NewHetMMC(lambda, rates[:len(existing)+add])
		if err != nil {
			return false, err
		}
		if !h.Stable() {
			return false, nil
		}
		p, err := h.ProbWaitLE(t)
		if err != nil {
			return false, err
		}
		return p >= slo.Percentile, nil
	}
	add := hint
	ok, err := meets(add)
	if err != nil {
		return 0, err
	}
	if ok {
		for add > 0 {
			ok, err := meets(add - 1)
			if err != nil {
				return 0, err
			}
			if !ok {
				break
			}
			add--
		}
		return add, nil
	}
	for {
		if len(existing)+add >= MaxSolverContainers {
			return 0, fmt.Errorf("queuing: heterogeneous scan exhausted (lambda=%v)", lambda)
		}
		add++
		rates = append(rates, newRate)
		ok, err := meets(add)
		if err != nil {
			return 0, err
		}
		if ok {
			return add, nil
		}
	}
}

// HetProbWaitLE is a convenience wrapper evaluating the heterogeneous bound
// for a given pool; it returns 0 for an unstable pool rather than an error,
// which is the natural reading for "does this pool meet the SLO".
func HetProbWaitLE(lambda float64, rates []float64, t float64) float64 {
	if lambda == 0 {
		return 1
	}
	h, err := NewHetMMC(lambda, rates)
	if err != nil || !h.Stable() {
		return 0
	}
	p, err := h.ProbWaitLE(t)
	if err != nil {
		return 0
	}
	return p
}
