package queuing

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

func TestMM1KnownResults(t *testing.T) {
	// For M/M/1, P0 = 1-ρ and Pn = (1-ρ)ρ^n.
	for _, rho := range []float64{0.1, 0.5, 0.9} {
		m := MMC{Lambda: rho, Mu: 1, C: 1}
		p0, err := m.P0()
		if err != nil {
			t.Fatalf("rho=%v: %v", rho, err)
		}
		if !almostEqual(p0, 1-rho, 1e-12) {
			t.Errorf("rho=%v: P0=%v want %v", rho, p0, 1-rho)
		}
		for n := 1; n <= 5; n++ {
			pn, err := m.Pn(n)
			if err != nil {
				t.Fatal(err)
			}
			want := (1 - rho) * math.Pow(rho, float64(n))
			if !almostEqual(pn, want, 1e-12) {
				t.Errorf("rho=%v n=%d: Pn=%v want %v", rho, n, pn, want)
			}
		}
	}
}

func TestErlangCKnownValue(t *testing.T) {
	// λ=μ (r=1), c=2: P0 = 1/3, Erlang-C = 1/3 (textbook value).
	m := MMC{Lambda: 1, Mu: 1, C: 2}
	p0, err := m.P0()
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(p0, 1.0/3, 1e-12) {
		t.Errorf("P0=%v want 1/3", p0)
	}
	pw, err := m.ErlangC()
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(pw, 1.0/3, 1e-12) {
		t.Errorf("ErlangC=%v want 1/3", pw)
	}
}

func TestMeanWaitMatchesErlangFormula(t *testing.T) {
	m := MMC{Lambda: 8, Mu: 1, C: 10}
	pw, err := m.ErlangC()
	if err != nil {
		t.Fatal(err)
	}
	wq, err := m.MeanWait()
	if err != nil {
		t.Fatal(err)
	}
	want := pw / (10 - 8)
	if !almostEqual(wq, want, 1e-12) {
		t.Errorf("MeanWait=%v want %v", wq, want)
	}
}

func TestProbabilitiesSumToOne(t *testing.T) {
	cases := []MMC{
		{Lambda: 5, Mu: 10, C: 2},
		{Lambda: 40, Mu: 10, C: 6},
		{Lambda: 95, Mu: 10, C: 10},
		{Lambda: 900, Mu: 10, C: 120},
	}
	for _, m := range cases {
		lp0, err := m.logP0()
		if err != nil {
			t.Fatal(err)
		}
		sum := 0.0
		// Sum explicit states up to a large N, then a geometric tail bound.
		N := m.C + 2000
		for n := 0; n <= N; n++ {
			sum += math.Exp(m.logPn(n, lp0))
		}
		if sum > 1+1e-9 {
			t.Errorf("%+v: partial sum %v exceeds 1", m, sum)
		}
		if sum < 1-1e-6 {
			t.Errorf("%+v: probabilities sum to %v, want ~1", m, sum)
		}
	}
}

func TestUnstableSystemErrors(t *testing.T) {
	m := MMC{Lambda: 100, Mu: 10, C: 10} // rho = 1
	if _, err := m.P0(); err != ErrUnstable {
		t.Errorf("want ErrUnstable, got %v", err)
	}
	m2 := MMC{Lambda: 101, Mu: 10, C: 10}
	if _, err := m2.ProbWaitLE(0.1); err != ErrUnstable {
		t.Errorf("want ErrUnstable, got %v", err)
	}
}

func TestValidateRejectsBadParams(t *testing.T) {
	for _, m := range []MMC{
		{Lambda: -1, Mu: 10, C: 1},
		{Lambda: 1, Mu: 0, C: 1},
		{Lambda: 1, Mu: 10, C: 0},
	} {
		if err := m.Validate(); err == nil {
			t.Errorf("%+v: want validation error", m)
		}
	}
}

func TestProbWaitLEMonotoneInT(t *testing.T) {
	m := MMC{Lambda: 45, Mu: 10, C: 6}
	prev := -1.0
	for _, tt := range []float64{0, 0.01, 0.05, 0.1, 0.5, 1, 5} {
		p, err := m.ProbWaitLE(tt)
		if err != nil {
			t.Fatal(err)
		}
		if p < prev {
			t.Errorf("t=%v: P=%v decreased from %v", tt, p, prev)
		}
		if p < 0 || p > 1 {
			t.Errorf("t=%v: P=%v out of [0,1]", tt, p)
		}
		prev = p
	}
}

func TestProbWaitLEMonotoneInC(t *testing.T) {
	prev := -1.0
	for c := 5; c <= 30; c++ {
		m := MMC{Lambda: 45, Mu: 10, C: c}
		p, err := m.ProbWaitLE(0.05)
		if err != nil {
			t.Fatal(err)
		}
		if p < prev-1e-12 {
			t.Errorf("c=%d: P=%v decreased from %v", c, p, prev)
		}
		prev = p
	}
}

func TestProbWaitCloseToExact(t *testing.T) {
	// The paper's discrete state-count bound should track the exact M/M/c
	// waiting CDF closely in the provisioning region.
	for _, m := range []MMC{
		{Lambda: 30, Mu: 10, C: 5},
		{Lambda: 30, Mu: 10, C: 7},
		{Lambda: 90, Mu: 10, C: 12},
	} {
		for _, tt := range []float64{0.05, 0.1, 0.2} {
			approx, err := m.ProbWaitLE(tt)
			if err != nil {
				t.Fatal(err)
			}
			exact, err := m.ProbWaitLEExact(tt)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(approx-exact) > 0.08 {
				t.Errorf("%+v t=%v: approx %v vs exact %v differ too much", m, tt, approx, exact)
			}
		}
	}
}

func TestWaitQuantileInvertsCDF(t *testing.T) {
	m := MMC{Lambda: 85, Mu: 10, C: 10}
	for _, q := range []float64{0.9, 0.95, 0.99} {
		tq, err := m.WaitQuantile(q)
		if err != nil {
			t.Fatal(err)
		}
		p, err := m.ProbWaitLEExact(tq)
		if err != nil {
			t.Fatal(err)
		}
		if !almostEqual(p, q, 1e-9) {
			t.Errorf("q=%v: CDF(quantile)=%v", q, p)
		}
	}
}

func TestWaitQuantileZeroInsideNoWaitMass(t *testing.T) {
	// Very overprovisioned: P(wait)=tiny, so the 95th pct wait is 0.
	m := MMC{Lambda: 1, Mu: 10, C: 10}
	tq, err := m.WaitQuantile(0.95)
	if err != nil {
		t.Fatal(err)
	}
	if tq != 0 {
		t.Errorf("want 0 quantile, got %v", tq)
	}
}

func TestZeroLambda(t *testing.T) {
	m := MMC{Lambda: 0, Mu: 10, C: 3}
	p0, err := m.P0()
	if err != nil {
		t.Fatal(err)
	}
	if p0 != 1 {
		t.Errorf("P0=%v want 1 for idle system", p0)
	}
	p, err := m.ProbWaitLE(0)
	if err != nil {
		t.Fatal(err)
	}
	if p != 1 {
		t.Errorf("ProbWaitLE=%v want 1 for idle system", p)
	}
}

func TestLargeScaleStability(t *testing.T) {
	// The log-space implementation must stay finite and sane at the
	// paper's Fig 5 scale (1000 containers) and beyond.
	for _, c := range []int{100, 1000, 5000} {
		lambda := 0.9 * float64(c) * 10
		m := MMC{Lambda: lambda, Mu: 10, C: c}
		p, err := m.ProbWaitLE(0.1)
		if err != nil {
			t.Fatalf("c=%d: %v", c, err)
		}
		if math.IsNaN(p) || p < 0 || p > 1 {
			t.Errorf("c=%d: P=%v not a probability", c, p)
		}
		if p < 0.5 {
			t.Errorf("c=%d: P=%v implausibly low for t=0.1", c, p)
		}
	}
}

func TestQuickProbWaitIsProbability(t *testing.T) {
	f := func(l, m uint16, c uint8, tms uint16) bool {
		lambda := float64(l%500) + 0.5
		mu := float64(m%50) + 0.5
		cc := int(c%64) + 1
		tt := float64(tms%1000) / 1000
		q := MMC{Lambda: lambda, Mu: mu, C: cc}
		if !q.Stable() {
			return true
		}
		p, err := q.ProbWaitLE(tt)
		if err != nil {
			return false
		}
		return p >= 0 && p <= 1 && !math.IsNaN(p)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestQuickP0DecreasesWithLoad(t *testing.T) {
	f := func(l uint16, c uint8) bool {
		cc := int(c%32) + 2
		mu := 10.0
		l1 := float64(l%80+1) / 100 * float64(cc) * mu // up to 0.8 utilization
		l2 := l1 / 2
		m1 := MMC{Lambda: l1, Mu: mu, C: cc}
		m2 := MMC{Lambda: l2, Mu: mu, C: cc}
		p1, err1 := m1.P0()
		p2, err2 := m2.P0()
		if err1 != nil || err2 != nil {
			return false
		}
		return p2 >= p1-1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestSLOWaitBudget(t *testing.T) {
	s := SLO{Deadline: 100 * time.Millisecond, Percentile: 0.95, WaitingOnly: true}
	b, err := s.WaitBudget(10)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(b, 0.1, 1e-12) {
		t.Errorf("budget=%v want 0.1", b)
	}

	s2 := SLO{Deadline: 300 * time.Millisecond, Percentile: 0.99, ServiceP: 0.2}
	b2, err := s2.WaitBudget(10)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(b2, 0.1, 1e-12) {
		t.Errorf("budget=%v want 0.1", b2)
	}

	// Deadline entirely consumed by service time -> error.
	s3 := SLO{Deadline: 100 * time.Millisecond, Percentile: 0.99, ServiceP: 0.2}
	if _, err := s3.WaitBudget(10); err == nil {
		t.Error("want error when service time exceeds deadline")
	}

	s4 := SLO{Deadline: 0, Percentile: 0.95}
	if _, err := s4.WaitBudget(10); err == nil {
		t.Error("want error for zero deadline")
	}
	s5 := SLO{Deadline: time.Second, Percentile: 1.5}
	if _, err := s5.WaitBudget(10); err == nil {
		t.Error("want error for percentile out of range")
	}
}
