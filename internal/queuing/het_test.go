package queuing

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestHetReducesToHomogeneous(t *testing.T) {
	// With equal rates, the Alves worst-case model is exactly M/M/c:
	// S_k = kμ so a_n = r^n/n! for n ≤ c and the tail ratio is λ/(cμ).
	lambda, mu, c := 35.0, 10.0, 5
	rates := make([]float64, c)
	for i := range rates {
		rates[i] = mu
	}
	h, err := NewHetMMC(lambda, rates)
	if err != nil {
		t.Fatal(err)
	}
	m := MMC{Lambda: lambda, Mu: mu, C: c}

	hp0, err := h.P0()
	if err != nil {
		t.Fatal(err)
	}
	mp0, err := m.P0()
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(hp0, mp0, 1e-10) {
		t.Errorf("P0: het %v vs homo %v", hp0, mp0)
	}
	for n := 0; n <= 12; n++ {
		hpn, err := h.Pn(n)
		if err != nil {
			t.Fatal(err)
		}
		mpn, err := m.Pn(n)
		if err != nil {
			t.Fatal(err)
		}
		if !almostEqual(hpn, mpn, 1e-10) {
			t.Errorf("n=%d: het %v vs homo %v", n, hpn, mpn)
		}
	}
	for _, tt := range []float64{0.01, 0.1, 0.5} {
		hp, err := h.ProbWaitLE(tt)
		if err != nil {
			t.Fatal(err)
		}
		mp, err := m.ProbWaitLE(tt)
		if err != nil {
			t.Fatal(err)
		}
		if !almostEqual(hp, mp, 1e-10) {
			t.Errorf("t=%v: het %v vs homo %v", tt, hp, mp)
		}
	}
}

func TestHetProbabilitiesSumToOne(t *testing.T) {
	h, err := NewHetMMC(20, []float64{3, 5, 7, 10, 10})
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for n := 0; n <= 4000; n++ {
		p, err := h.Pn(n)
		if err != nil {
			t.Fatal(err)
		}
		sum += p
	}
	if math.Abs(sum-1) > 1e-6 {
		t.Errorf("probabilities sum to %v", sum)
	}
}

func TestHetSortsRates(t *testing.T) {
	h1, err := NewHetMMC(10, []float64{10, 3, 7})
	if err != nil {
		t.Fatal(err)
	}
	h2, err := NewHetMMC(10, []float64{3, 7, 10})
	if err != nil {
		t.Fatal(err)
	}
	p1, _ := h1.ProbWaitLE(0.1)
	p2, _ := h2.ProbWaitLE(0.1)
	if !almostEqual(p1, p2, 1e-12) {
		t.Errorf("rate order changed result: %v vs %v", p1, p2)
	}
}

func TestHetWorstCaseIsConservative(t *testing.T) {
	// A heterogeneous pool with the same aggregate rate as a homogeneous
	// pool must never look better under the worst-case bound.
	lambda := 25.0
	homog := MMC{Lambda: lambda, Mu: 10, C: 4} // total 40
	het, err := NewHetMMC(lambda, []float64{4, 6, 10, 20})
	if err != nil {
		t.Fatal(err)
	}
	if het.TotalRate() != 40 {
		t.Fatalf("test setup: total rate %v", het.TotalRate())
	}
	for _, tt := range []float64{0.01, 0.05, 0.1, 0.3} {
		hp, err := het.ProbWaitLE(tt)
		if err != nil {
			t.Fatal(err)
		}
		mp, err := homog.ProbWaitLE(tt)
		if err != nil {
			t.Fatal(err)
		}
		if hp > mp+1e-9 {
			t.Errorf("t=%v: het bound %v better than homogeneous %v", tt, hp, mp)
		}
	}
}

func TestHetUnstable(t *testing.T) {
	h, err := NewHetMMC(100, []float64{10, 10})
	if err != nil {
		t.Fatal(err)
	}
	if h.Stable() {
		t.Fatal("should be unstable")
	}
	if _, err := h.P0(); err != ErrUnstable {
		t.Errorf("want ErrUnstable, got %v", err)
	}
}

func TestHetValidation(t *testing.T) {
	if _, err := NewHetMMC(-1, []float64{10}); err == nil {
		t.Error("want error for negative lambda")
	}
	if _, err := NewHetMMC(1, nil); err == nil {
		t.Error("want error for empty rates")
	}
	if _, err := NewHetMMC(1, []float64{0}); err == nil {
		t.Error("want error for zero rate")
	}
}

func TestHetZeroLambda(t *testing.T) {
	h, err := NewHetMMC(0, []float64{5, 10})
	if err != nil {
		t.Fatal(err)
	}
	p0, err := h.P0()
	if err != nil {
		t.Fatal(err)
	}
	if p0 != 1 {
		t.Errorf("P0=%v want 1", p0)
	}
	p, err := h.ProbWaitLE(0.1)
	if err != nil {
		t.Fatal(err)
	}
	if p != 1 {
		t.Errorf("ProbWaitLE=%v want 1", p)
	}
}

func TestQuickHetEqualRatesMatchesMMC(t *testing.T) {
	f := func(l uint16, c uint8) bool {
		cc := int(c%16) + 1
		mu := 10.0
		lambda := float64(l%90+1) / 100 * float64(cc) * mu
		rates := make([]float64, cc)
		for i := range rates {
			rates[i] = mu
		}
		h, err := NewHetMMC(lambda, rates)
		if err != nil {
			return false
		}
		m := MMC{Lambda: lambda, Mu: mu, C: cc}
		hp, err1 := h.ProbWaitLE(0.1)
		mp, err2 := m.ProbWaitLE(0.1)
		if err1 != nil || err2 != nil {
			return false
		}
		return math.Abs(hp-mp) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestQuickHetDeflationNeverImprovesBound(t *testing.T) {
	// Deflating any one container (reducing its rate) must not improve
	// the waiting-probability bound.
	f := func(l uint16, c uint8, which uint8, frac uint8) bool {
		cc := int(c%8) + 2
		mu := 10.0
		lambda := float64(l%70+1) / 100 * float64(cc) * mu
		rates := make([]float64, cc)
		for i := range rates {
			rates[i] = mu
		}
		before := HetProbWaitLE(lambda, rates, 0.1)
		idx := int(which) % cc
		f01 := 0.3 + 0.6*float64(frac)/255 // deflate to 30-90% of original
		rates[idx] = mu * f01
		after := HetProbWaitLE(lambda, rates, 0.1)
		return after <= before+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestAdditionalHetContainers(t *testing.T) {
	slo := SLO{Deadline: 100 * time.Millisecond, Percentile: 0.95, WaitingOnly: true}

	// Empty pool: behaves like sizing from scratch.
	add, err := AdditionalHetContainers(30, nil, 10, slo)
	if err != nil {
		t.Fatal(err)
	}
	homog, err := MinimalContainers(30, 10, slo)
	if err != nil {
		t.Fatal(err)
	}
	if add != homog {
		t.Errorf("empty-pool het sizing %d != homogeneous %d", add, homog)
	}

	// A pool of deflated containers needs at least as many additions as a
	// pool of full-rate containers of the same count.
	deflated := []float64{6, 6, 6}
	full := []float64{10, 10, 10}
	addDef, err := AdditionalHetContainers(30, deflated, 10, slo)
	if err != nil {
		t.Fatal(err)
	}
	addFull, err := AdditionalHetContainers(30, full, 10, slo)
	if err != nil {
		t.Fatal(err)
	}
	if addDef < addFull {
		t.Errorf("deflated pool needs %d additions < full pool %d", addDef, addFull)
	}

	// Zero lambda needs nothing.
	add0, err := AdditionalHetContainers(0, deflated, 10, slo)
	if err != nil {
		t.Fatal(err)
	}
	if add0 != 0 {
		t.Errorf("idle function wants %d additions", add0)
	}
}

func TestAdditionalHetContainersMeetsSLO(t *testing.T) {
	slo := SLO{Deadline: 100 * time.Millisecond, Percentile: 0.95, WaitingOnly: true}
	existing := []float64{7, 7, 8.5}
	lambda := 42.0
	add, err := AdditionalHetContainers(lambda, existing, 10, slo)
	if err != nil {
		t.Fatal(err)
	}
	pool := append([]float64(nil), existing...)
	for i := 0; i < add; i++ {
		pool = append(pool, 10)
	}
	if p := HetProbWaitLE(lambda, pool, 0.1); p < 0.95 {
		t.Errorf("after adding %d containers, P(wait<=0.1)=%v < 0.95", add, p)
	}
	if add > 0 {
		smaller := pool[:len(pool)-1]
		if p := HetProbWaitLE(lambda, smaller, 0.1); p >= 0.95 {
			t.Errorf("solver overshot: %d-1 containers already meet SLO (p=%v)", add, p)
		}
	}
}
