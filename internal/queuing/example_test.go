package queuing_test

import (
	"fmt"
	"time"

	"lass/internal/queuing"
)

// Size a container pool for 40 req/s with 100 ms mean service time so
// that 95% of requests start service within 100 ms — the paper's
// Algorithm 1.
func ExampleMinimalContainers() {
	slo := queuing.SLO{Deadline: 100 * time.Millisecond, Percentile: 0.95, WaitingOnly: true}
	c, err := queuing.MinimalContainers(40, 10, slo)
	if err != nil {
		panic(err)
	}
	fmt.Println(c)
	// Output: 6
}

// A pool of three containers deflated to 70% capacity cannot absorb the
// load alone; the heterogeneous solver (paper §3.2, Alves et al. bounds)
// reports how many standard containers to add.
func ExampleAdditionalHetContainers() {
	slo := queuing.SLO{Deadline: 100 * time.Millisecond, Percentile: 0.95, WaitingOnly: true}
	deflated := []float64{7, 7, 7} // req/s each (standard is 10)
	add, err := queuing.AdditionalHetContainers(40, deflated, 10, slo)
	if err != nil {
		panic(err)
	}
	fmt.Println(add)
	// Output: 4
}

// Steady-state queue metrics of an M/M/c system.
func ExampleMMC() {
	m := queuing.MMC{Lambda: 40, Mu: 10, C: 6}
	pw, _ := m.ErlangC()
	wq, _ := m.MeanWait()
	fmt.Printf("P(wait)=%.3f meanWait=%.1fms\n", pw, wq*1000)
	// Output: P(wait)=0.285 meanWait=14.2ms
}
