// Package analysis hosts lass-lint's determinism and hot-path analyzers.
//
// The simulator's headline guarantees — bit-for-bit identical output across
// heap/calendar schedulers, byte-identical serial vs. parallel sweeps, and
// an allocation-free metro hot path — are behavioural invariants that one
// stray wall-clock read, unordered map iteration, or reordered float
// reduction silently breaks. The analyzers here turn those invariants into
// compile-time checks, run by cmd/lass-lint over the whole module and
// gated in CI alongside gofmt and go vet.
//
// Analyzers communicate with the source through a small annotation
// vocabulary (always a comment starting exactly with "//lass:"):
//
//	//lass:wallclock   this line / function is a sanctioned wall-clock or
//	                   ambient-randomness site (real-time adapters, bench
//	                   timing) — detrand skips it
//	//lass:unordered   this map iteration is order-independent by
//	                   construction — maporder skips it
//	//lass:bitexact    this function's float arithmetic must be bit-exact:
//	                   floatorder forbids map iteration and goroutines in
//	                   its body
//	//lass:acquires    this function returns an owned pooled object;
//	                   donerelease tracks every local bound to its result
//	//lass:releases    this function consumes (recycles) its first
//	                   pointer argument; using the object afterwards is a
//	                   use-after-release
//	//lass:transfers   this function takes ownership of its first pointer
//	                   argument without recycling it (e.g. enqueue); the
//	                   caller's release obligation ends but the pointer
//	                   stays usable
//
// The suite loads packages with nothing beyond the standard library:
// `go list -json` enumerates the module, `go list -deps -export -json`
// yields compiled export data for every dependency, and go/types checks
// the module's own sources against that export data.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Diagnostic is one finding, positioned in the analyzed source.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Pkg is one loaded, type-checked package (its own sources, with imports
// resolved from compiled export data).
type Pkg struct {
	Path  string // import path ("lass/internal/sim"); XTest packages get a "_test" suffix
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
	Ann   *Annotations
}

// Analyzer is one lint pass over a loaded package.
type Analyzer interface {
	Name() string
	Doc() string
	Run(p *Pkg) []Diagnostic
}

// DefaultAnalyzers returns the full lass-lint suite.
func DefaultAnalyzers() []Analyzer {
	return []Analyzer{
		Detrand{},
		Maporder{},
		Donerelease{},
		Floatorder{},
		Nilness{},
	}
}

// Run loads the packages matched by patterns (rooted at dir) and applies
// every analyzer, returning diagnostics in (file, line, column, analyzer)
// order. Load or type errors abort: the linters require well-typed input.
func Run(dir string, patterns []string, tests bool, analyzers []Analyzer) ([]Diagnostic, error) {
	pkgs, err := Load(dir, patterns, tests)
	if err != nil {
		return nil, err
	}
	var ds []Diagnostic
	for _, p := range pkgs {
		for _, a := range analyzers {
			ds = append(ds, a.Run(p)...)
		}
	}
	sortDiagnostics(ds)
	return ds, nil
}

func sortDiagnostics(ds []Diagnostic) {
	sort.Slice(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
}
