package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
)

// Detrand forbids ambient time and randomness in simulation code: all time
// must flow through the engine clock (sim.Engine.Now) and all randomness
// through the seeded xrand generators, or a replayed sweep stops being a
// function of its seed. Wall-clock entry points in package time and any
// use of math/rand or math/rand/v2 are flagged unless the line or the
// enclosing function carries //lass:wallclock (real-time adapters and
// bench timing are the sanctioned exceptions).
type Detrand struct{}

func (Detrand) Name() string { return "detrand" }

func (Detrand) Doc() string {
	return "forbid wall-clock reads and unseeded randomness outside //lass:wallclock sites"
}

// wallClockFuncs are the package-time entry points that observe or depend
// on the machine clock. Pure conversions and constructors (time.Duration,
// time.Date, time.Unix) are fine: they are deterministic in their inputs.
var wallClockFuncs = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"Sleep":     true,
	"After":     true,
	"Tick":      true,
	"NewTimer":  true,
	"NewTicker": true,
	"AfterFunc": true,
}

func (Detrand) Run(p *Pkg) []Diagnostic {
	var ds []Diagnostic
	for _, f := range p.Files {
		// Walk declaration by declaration so every finding knows its
		// enclosing function (for function-level sanctions).
		for _, decl := range f.Decls {
			fd, _ := decl.(*ast.FuncDecl)
			ast.Inspect(decl, func(n ast.Node) bool {
				id, ok := n.(*ast.Ident)
				if !ok {
					return true
				}
				obj := p.Info.Uses[id]
				if obj == nil || obj.Pkg() == nil {
					return true
				}
				var msg string
				switch obj.Pkg().Path() {
				case "time":
					if wallClockFuncs[obj.Name()] {
						msg = fmt.Sprintf("time.%s reads the wall clock; simulation time must come from the engine clock (annotate //lass:wallclock if this site is sanctioned)", obj.Name())
					}
				case "math/rand", "math/rand/v2":
					msg = fmt.Sprintf("%s.%s is ambient randomness; use a seeded xrand generator (annotate //lass:wallclock if this site is sanctioned)", obj.Pkg().Path(), obj.Name())
				}
				if msg == "" {
					return true
				}
				if p.Ann.Sanctioned(id.Pos(), AnnWallclock, fd) {
					return true
				}
				ds = append(ds, Diagnostic{
					Pos:      p.Fset.Position(id.Pos()),
					Analyzer: "detrand",
					Message:  msg,
				})
				return true
			})
		}
	}
	return ds
}

// floatType reports whether t's core type is a floating-point or complex
// scalar (shared by maporder and floatorder).
func floatType(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&(types.IsFloat|types.IsComplex) != 0
}
