package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Donerelease is a CFG-based must-release check for pooled-object
// lifecycles (the dispatch.Request pool on the hot path). Providers are
// annotated in-source: a //lass:acquires function returns an owned pooled
// object, //lass:releases recycles its first pointer argument, and
// //lass:transfers takes ownership without recycling (enqueue). For every
// local bound to an acquiring call the analyzer checks, path by path, that
// the object is released or transferred exactly once before the function
// returns, is not released twice, and is not used after release.
//
// The analysis is intra-procedural and intra-package (annotations on
// imported functions are not visible in export data). A value that
// escapes — stored to a field or container, passed to an unannotated
// call, captured by a closure — transfers its obligation to the escapee
// and is no longer tracked; functions using goto, labeled branches, or
// select are skipped rather than reasoned about unsoundly.
type Donerelease struct{}

func (Donerelease) Name() string { return "donerelease" }

func (Donerelease) Doc() string {
	return "every path releases an acquired pooled object exactly once, with no use after release"
}

// ownState is a may-analysis bitmask over the states a tracked variable
// can be in at a program point.
type ownState uint8

const (
	stUnborn   ownState = 1 << iota // before the acquiring call
	stOwned                         // holds the pooled object, release pending
	stReleased                      // recycled to the pool; any use is a bug
	stEscaped                       // ownership handed elsewhere; unconstrained
)

func (Donerelease) Run(p *Pkg) []Diagnostic {
	marked := markedFuncs(p)
	if len(marked.acquires) == 0 {
		return nil
	}
	var ds []Diagnostic
	eachFuncDecl(p, func(fd *ast.FuncDecl) {
		ds = append(ds, checkFunc(p, marked, fd)...)
	})
	return ds
}

// markedSet indexes the package's annotated provider functions by their
// types.Object.
type markedSet struct {
	acquires  map[types.Object]bool
	releases  map[types.Object]bool
	transfers map[types.Object]bool
}

func markedFuncs(p *Pkg) markedSet {
	m := markedSet{
		acquires:  make(map[types.Object]bool),
		releases:  make(map[types.Object]bool),
		transfers: make(map[types.Object]bool),
	}
	eachFuncDecl(p, func(fd *ast.FuncDecl) {
		obj := p.Info.Defs[fd.Name]
		if obj == nil {
			return
		}
		if p.Ann.FuncHas(fd, AnnAcquires) {
			m.acquires[obj] = true
		}
		if p.Ann.FuncHas(fd, AnnReleases) {
			m.releases[obj] = true
		}
		if p.Ann.FuncHas(fd, AnnTransfers) {
			m.transfers[obj] = true
		}
	})
	return m
}

func checkFunc(p *Pkg, marked markedSet, fd *ast.FuncDecl) []Diagnostic {
	// Collect the locals bound to acquiring calls.
	var tracked []types.Object
	seen := map[types.Object]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return true
		}
		if !isMarkedCall(p, marked.acquires, as.Rhs[0]) {
			return true
		}
		id, ok := as.Lhs[0].(*ast.Ident)
		if !ok || id.Name == "_" {
			return true
		}
		obj := p.Info.Defs[id]
		if obj == nil {
			obj = p.Info.Uses[id]
		}
		if obj != nil && !seen[obj] {
			seen[obj] = true
			tracked = append(tracked, obj)
		}
		return true
	})
	if len(tracked) == 0 {
		return nil
	}
	g := buildCFG(fd.Body)
	if !g.ok {
		return nil
	}
	var ds []Diagnostic
	for _, obj := range tracked {
		ds = append(ds, analyzeVar(p, marked, g, obj)...)
	}
	return ds
}

func isMarkedCall(p *Pkg, set map[types.Object]bool, e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	var id *ast.Ident
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return false
	}
	return set[p.Info.Uses[id]]
}

// varFlow is the per-variable dataflow over one CFG.
type varFlow struct {
	p      *Pkg
	marked markedSet
	obj    types.Object
	// deferredRelease is set when a `defer release(obj)` guarantees the
	// exit-time release on every path.
	deferredRelease bool
	report          func(pos token.Pos, msg string)
}

func analyzeVar(p *Pkg, marked markedSet, g *funcCFG, obj types.Object) []Diagnostic {
	var ds []Diagnostic
	dedup := map[string]bool{}
	vf := &varFlow{p: p, marked: marked, obj: obj}
	vf.report = func(pos token.Pos, msg string) {
		d := Diagnostic{Pos: p.Fset.Position(pos), Analyzer: "donerelease", Message: msg}
		if key := d.String(); !dedup[key] {
			dedup[key] = true
			ds = append(ds, d)
		}
	}

	// Pre-scan for a deferred release of obj.
	for _, b := range g.blocks {
		for _, s := range b.stmts {
			if def, ok := s.(*ast.DeferStmt); ok {
				if isMarkedCall(p, marked.releases, def.Call) && len(def.Call.Args) > 0 && vf.isVar(def.Call.Args[0]) {
					vf.deferredRelease = true
				}
			}
		}
	}

	// Fixpoint over union-merged states.
	in := make(map[*cfgBlock]ownState, len(g.blocks))
	out := make(map[*cfgBlock]ownState, len(g.blocks))
	in[g.entry] = stUnborn
	work := []*cfgBlock{g.entry}
	for len(work) > 0 {
		b := work[len(work)-1]
		work = work[:len(work)-1]
		o := vf.transfer(b, in[b], nil)
		if o == out[b] {
			continue
		}
		out[b] = o
		for _, s := range b.succs {
			if in[s]|o != in[s] {
				in[s] |= o
				work = append(work, s)
			}
		}
	}

	// Reporting pass: rerun each reachable block's transfer with the
	// fixpoint in-state, emitting diagnostics exactly once.
	for _, b := range g.blocks {
		if st, reached := in[b]; reached {
			vf.transfer(b, st, vf.report)
		}
	}

	// Leak check: a path reaching the exit while still owning the object
	// never released it.
	if !vf.deferredRelease {
		for _, b := range g.blocks {
			if _, reached := in[b]; !reached {
				continue
			}
			exits := false
			for _, s := range b.succs {
				if s == g.exit {
					exits = true
				}
			}
			// Blocks with no successors ended in panic (or a skipped
			// branch): no obligation on those paths.
			if !exits {
				continue
			}
			if out[b]&stOwned != 0 {
				pos := obj.Pos()
				if b.returns != nil {
					pos = b.returns.Pos()
				}
				vf.report(pos, fmt.Sprintf("pooled %s may reach return without being released or transferred on this path", vf.obj.Name()))
			}
		}
	}
	return ds
}

// transfer applies one block's statements to the incoming state. When
// report is non-nil the pass also emits diagnostics.
func (vf *varFlow) transfer(b *cfgBlock, st ownState, report func(token.Pos, string)) ownState {
	for _, s := range b.stmts {
		st = vf.stmtEffect(s, st, report)
	}
	return st
}

func (vf *varFlow) stmtEffect(s ast.Stmt, st ownState, report func(token.Pos, string)) ownState {
	// Acquire?
	if as, ok := s.(*ast.AssignStmt); ok && len(as.Lhs) == 1 && len(as.Rhs) == 1 {
		if id, ok := as.Lhs[0].(*ast.Ident); ok && vf.identIsVar(id) {
			if isMarkedCall(vf.p, vf.marked.acquires, as.Rhs[0]) {
				return stOwned
			}
			// Reassigned from something else: stop tracking.
			return stEscaped
		}
	}
	// Deferred closures or deferred releases.
	if def, ok := s.(*ast.DeferStmt); ok {
		if isMarkedCall(vf.p, vf.marked.releases, def.Call) && len(def.Call.Args) > 0 && vf.isVar(def.Call.Args[0]) {
			return st // accounted for by deferredRelease
		}
		if vf.mentionsVar(def.Call) {
			return stEscaped
		}
		return st
	}

	// Release / transfer calls anywhere in the statement.
	released, transferred := false, false
	var releasePos token.Pos
	ast.Inspect(s, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) == 0 || !vf.isVar(call.Args[0]) {
			return true
		}
		if isMarkedCall(vf.p, vf.marked.releases, call) {
			released = true
			releasePos = call.Pos()
		} else if isMarkedCall(vf.p, vf.marked.transfers, call) {
			transferred = true
		}
		return true
	})
	if released {
		if report != nil && st != 0 && st&(stOwned|stEscaped|stUnborn) == 0 {
			report(releasePos, fmt.Sprintf("%s is released again after already being released on every path here", vf.obj.Name()))
		}
		return stReleased
	}
	if transferred {
		return stEscaped
	}

	if !vf.mentionsVar(s) {
		return st
	}

	// Any other mention: a use-after-release when the object can only be
	// released here, an escape when it leaves through an unannotated
	// call, a store, a closure, or address-taking.
	if st != 0 && st&(stOwned|stEscaped|stUnborn) == 0 {
		if report != nil {
			report(vf.firstMention(s), fmt.Sprintf("%s is used after being released to the pool", vf.obj.Name()))
		}
		return stEscaped // silence cascading reports downstream
	}
	if vf.escapes(s) {
		return stEscaped
	}
	return st
}

// escapes reports whether the statement hands the variable to code the
// analysis cannot see: argument to an unannotated call, stored anywhere,
// returned, captured, or address-taken.
func (vf *varFlow) escapes(s ast.Stmt) bool {
	esc := false
	ast.Inspect(s, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			for _, a := range n.Args {
				if vf.mentionsVar(a) {
					esc = true
				}
			}
		case *ast.AssignStmt:
			// Storing the variable anywhere (e.inflight = r, s = append(s, r),
			// m[k] = r) hands the obligation to the store's owner. Mentions on
			// the left (m[r.ID] = x) are reads, not stores.
			for i := range n.Lhs {
				if i < len(n.Rhs) && vf.mentionsVar(n.Rhs[i]) {
					if id, ok := n.Lhs[i].(*ast.Ident); !ok || !vf.identIsVar(id) {
						esc = true
					}
				}
			}
		case *ast.ReturnStmt:
			for _, r := range n.Results {
				if vf.mentionsVar(r) {
					esc = true
				}
			}
		case *ast.UnaryExpr:
			if n.Op == token.AND && vf.mentionsVar(n.X) {
				esc = true
			}
		case *ast.FuncLit:
			if vf.mentionsVar(n) {
				esc = true
			}
			return false
		case *ast.SendStmt:
			if vf.mentionsVar(n.Value) {
				esc = true
			}
		case *ast.CompositeLit:
			if vf.mentionsVar(n) {
				esc = true
			}
			return false
		}
		return !esc
	})
	return esc
}

func (vf *varFlow) isVar(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && vf.identIsVar(id)
}

func (vf *varFlow) identIsVar(id *ast.Ident) bool {
	return vf.p.Info.Uses[id] == vf.obj || vf.p.Info.Defs[id] == vf.obj
}

func (vf *varFlow) mentionsVar(n ast.Node) bool {
	found := false
	ast.Inspect(n, func(c ast.Node) bool {
		if id, ok := c.(*ast.Ident); ok && vf.identIsVar(id) {
			found = true
		}
		return !found
	})
	return found
}

func (vf *varFlow) firstMention(s ast.Stmt) token.Pos {
	pos := s.Pos()
	done := false
	ast.Inspect(s, func(c ast.Node) bool {
		if done {
			return false
		}
		if id, ok := c.(*ast.Ident); ok && vf.identIsVar(id) {
			pos = id.Pos()
			done = true
		}
		return !done
	})
	return pos
}
