package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	ImportPath   string
	Dir          string
	Export       string
	GoFiles      []string
	TestGoFiles  []string
	XTestGoFiles []string
	Imports      []string
	TestImports  []string
	XTestImports []string
}

// Load enumerates the packages matched by patterns (resolved relative to
// dir, which must sit inside the module), parses their sources, and
// type-checks them against compiled export data obtained from
// `go list -deps -export -json`. With tests set, in-package _test.go files
// are checked together with the package and external test packages
// (package foo_test) are returned as their own *Pkg with a "_test" path
// suffix. Everything runs on the standard toolchain and library alone.
func Load(dir string, patterns []string, tests bool) ([]*Pkg, error) {
	mod, err := goList(dir, append([]string{
		"-json=ImportPath,Dir,GoFiles,TestGoFiles,XTestGoFiles,Imports,TestImports,XTestImports",
		"--",
	}, patterns...))
	if err != nil {
		return nil, err
	}

	// One export-data sweep covers the transitive closure of everything
	// any analyzed file imports: package, in-package test, and external
	// test imports alike.
	need := make(map[string]bool)
	for _, p := range mod {
		lists := [][]string{p.Imports}
		if tests {
			lists = append(lists, p.TestImports, p.XTestImports)
		}
		for _, l := range lists {
			for _, imp := range l {
				if imp != "C" && imp != "unsafe" {
					need[imp] = true
				}
			}
		}
	}
	exports, err := exportData(dir, need)
	if err != nil {
		return nil, err
	}

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok || f == "" {
			return nil, fmt.Errorf("lass-lint: no export data for %q", path)
		}
		return os.Open(f)
	})

	var pkgs []*Pkg
	for _, lp := range mod {
		files := append([]string{}, lp.GoFiles...)
		if tests {
			files = append(files, lp.TestGoFiles...)
		}
		if len(files) > 0 {
			p, err := checkPackage(fset, imp, lp.ImportPath, lp.Dir, files)
			if err != nil {
				return nil, err
			}
			pkgs = append(pkgs, p)
		}
		if tests && len(lp.XTestGoFiles) > 0 {
			p, err := checkPackage(fset, imp, lp.ImportPath+"_test", lp.Dir, lp.XTestGoFiles)
			if err != nil {
				return nil, err
			}
			pkgs = append(pkgs, p)
		}
	}
	return pkgs, nil
}

// checkPackage parses and type-checks one package's worth of files.
func checkPackage(fset *token.FileSet, imp types.Importer, path, dir string, names []string) (*Pkg, error) {
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("lass-lint: parse %s: %w", name, err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	var typeErrs []error
	conf := types.Config{
		Importer: imp,
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	tpkg, _ := conf.Check(path, fset, files, info)
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("lass-lint: type-checking %s: %v (and %d more)", path, typeErrs[0], len(typeErrs)-1)
	}
	return &Pkg{
		Path:  path,
		Dir:   dir,
		Fset:  fset,
		Files: files,
		Types: tpkg,
		Info:  info,
		Ann:   buildAnnotations(fset, files),
	}, nil
}

// exportData maps every package in the transitive closure of paths to its
// compiled export data file.
func exportData(dir string, paths map[string]bool) (map[string]string, error) {
	if len(paths) == 0 {
		return map[string]string{}, nil
	}
	sorted := make([]string, 0, len(paths))
	for p := range paths {
		sorted = append(sorted, p)
	}
	sort.Strings(sorted)
	deps, err := goList(dir, append([]string{"-deps", "-export", "-json=ImportPath,Export", "--"}, sorted...))
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string, len(deps))
	for _, p := range deps {
		exports[p.ImportPath] = p.Export
	}
	return exports, nil
}

func goList(dir string, args []string) ([]*listPkg, error) {
	cmd := exec.Command("go", append([]string{"list"}, args...)...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("lass-lint: go list: %w\n%s", err, strings.TrimSpace(stderr.String()))
	}
	var pkgs []*listPkg
	dec := json.NewDecoder(&stdout)
	for {
		p := new(listPkg)
		if err := dec.Decode(p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lass-lint: decoding go list output: %w", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}
