package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Nilness is the lightweight nilness-class check the stock `go vet` suite
// lacks: it flags a pointer that is checked against nil and then
// dereferenced immediately afterwards as if the check had concluded the
// opposite. The shape it catches:
//
//	if p == nil {
//	    log.Printf("no p") // no return, no assignment to p
//	}
//	use(p.Field) // p may still be nil here
//
// To stay near-zero-noise the check is deliberately narrow: the nil-check
// body must neither terminate the path (return/break/continue/panic/
// os.Exit/t.Fatal*) nor assign to the variable, and only the statement
// directly following the if is inspected for a dereference.
type Nilness struct{}

func (Nilness) Name() string { return "nilness" }

func (Nilness) Doc() string {
	return "flag dereference of a variable immediately after an ineffective nil check"
}

func (Nilness) Run(p *Pkg) []Diagnostic {
	n := &nilnessPass{p: p}
	eachFuncDecl(p, func(fd *ast.FuncDecl) {
		ast.Inspect(fd.Body, func(node ast.Node) bool {
			if b, ok := node.(*ast.BlockStmt); ok {
				n.checkBlock(b.List)
			}
			if cc, ok := node.(*ast.CaseClause); ok {
				n.checkBlock(cc.Body)
			}
			return true
		})
	})
	return n.ds
}

type nilnessPass struct {
	p  *Pkg
	ds []Diagnostic
}

func (n *nilnessPass) checkBlock(list []ast.Stmt) {
	for i, s := range list {
		ifs, ok := s.(*ast.IfStmt)
		if !ok || ifs.Init != nil || ifs.Else != nil || i+1 >= len(list) {
			continue
		}
		obj := n.nilCheckedVar(ifs.Cond)
		if obj == nil {
			continue
		}
		if n.bodyGuards(ifs.Body, obj) {
			continue
		}
		if pos, expr := n.derefOf(list[i+1], obj); pos.IsValid() {
			n.ds = append(n.ds, Diagnostic{
				Pos:      n.p.Fset.Position(pos),
				Analyzer: "nilness",
				Message:  fmt.Sprintf("%s is dereferenced immediately after a nil check that neither returns nor assigns it (%s may be nil here)", expr, obj.Name()),
			})
		}
	}
}

// nilCheckedVar matches `x == nil` over a nil-able local x.
func (n *nilnessPass) nilCheckedVar(cond ast.Expr) types.Object {
	be, ok := cond.(*ast.BinaryExpr)
	if !ok || be.Op != token.EQL {
		return nil
	}
	var id *ast.Ident
	if x, ok := be.X.(*ast.Ident); ok && isNilIdent(n.p, be.Y) {
		id = x
	} else if y, ok := be.Y.(*ast.Ident); ok && isNilIdent(n.p, be.X) {
		id = y
	}
	if id == nil {
		return nil
	}
	obj, ok := n.p.Info.Uses[id].(*types.Var)
	if !ok {
		return nil
	}
	switch obj.Type().Underlying().(type) {
	case *types.Pointer, *types.Slice, *types.Interface, *types.Signature, *types.Chan:
		return obj
	}
	return nil
}

func isNilIdent(p *Pkg, e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	if !ok {
		return false
	}
	_, isNil := p.Info.Uses[id].(*types.Nil)
	return isNil
}

// bodyGuards reports whether the nil-check body ends the path or changes
// the variable, making the later dereference safe.
func (n *nilnessPass) bodyGuards(body *ast.BlockStmt, obj types.Object) bool {
	guarded := false
	ast.Inspect(body, func(node ast.Node) bool {
		switch node := node.(type) {
		case *ast.ReturnStmt, *ast.BranchStmt:
			guarded = true
		case *ast.CallExpr:
			if isPanicCall(node) || isTerminalCall(n.p, node) {
				guarded = true
			}
		case *ast.AssignStmt:
			for _, lhs := range node.Lhs {
				if id, ok := lhs.(*ast.Ident); ok && n.p.Info.Uses[id] == obj {
					guarded = true
				}
			}
		case *ast.UnaryExpr:
			if node.Op == token.AND {
				if id, ok := node.X.(*ast.Ident); ok && n.p.Info.Uses[id] == obj {
					guarded = true // &x: may be assigned through the pointer
				}
			}
		}
		return !guarded
	})
	return guarded
}

// isTerminalCall recognizes the common does-not-return calls: os.Exit,
// runtime.Goexit, log.Fatal*, log.Panic*, and testing's t.Fatal*/t.Skip*.
func isTerminalCall(p *Pkg, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := p.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return false
	}
	name := fn.Name()
	switch fn.Pkg().Path() {
	case "os":
		return name == "Exit"
	case "runtime":
		return name == "Goexit"
	case "log":
		return name == "Fatal" || name == "Fatalf" || name == "Fatalln" ||
			name == "Panic" || name == "Panicf" || name == "Panicln"
	case "testing":
		return name == "Fatal" || name == "Fatalf" || name == "Skip" ||
			name == "Skipf" || name == "SkipNow" || name == "FailNow"
	}
	return false
}

// derefOf finds a dereference of obj in stmt: selector on a pointer,
// unary *, index of a slice, or call of a func value.
func (n *nilnessPass) derefOf(stmt ast.Stmt, obj types.Object) (token.Pos, string) {
	var pos token.Pos
	var expr string
	ast.Inspect(stmt, func(node ast.Node) bool {
		if pos.IsValid() {
			return false
		}
		switch node := node.(type) {
		case *ast.SelectorExpr:
			if id, ok := node.X.(*ast.Ident); ok && n.p.Info.Uses[id] == obj {
				if _, isPtr := obj.Type().Underlying().(*types.Pointer); isPtr {
					// Method values on non-pointer receivers would not
					// dereference; keep it simple and only report field or
					// method access through a pointer.
					pos, expr = node.Pos(), id.Name+"."+node.Sel.Name
				}
			}
		case *ast.StarExpr:
			if id, ok := node.X.(*ast.Ident); ok && n.p.Info.Uses[id] == obj {
				pos, expr = node.Pos(), "*"+id.Name
			}
		case *ast.IndexExpr:
			if id, ok := node.X.(*ast.Ident); ok && n.p.Info.Uses[id] == obj {
				if _, isSlice := obj.Type().Underlying().(*types.Slice); isSlice {
					pos, expr = node.Pos(), id.Name+"[...]"
				}
			}
		case *ast.CallExpr:
			if id, ok := node.Fun.(*ast.Ident); ok && n.p.Info.Uses[id] == obj {
				pos, expr = node.Pos(), id.Name+"(...)"
			}
		}
		return !pos.IsValid()
	})
	return pos, expr
}
