// Package floatorder seeds reordered float accumulation for the
// floatorder analyzer's fixture test: a //lass:bitexact function may not
// iterate maps or start goroutines.
package floatorder

// badMap orders its accumulation by map iteration.
//
//lass:bitexact
func badMap(m map[string]float64) float64 {
	var total float64
	for _, v := range m { // want `bitexact function badMap iterates a map`
		total += v
	}
	return total
}

// badGo lets the scheduler interleave its accumulation.
//
//lass:bitexact
func badGo(xs []float64) float64 {
	var total float64
	done := make(chan struct{})
	go func() { // want `bitexact function badGo starts a goroutine`
		for _, x := range xs {
			total += x
		}
		close(done)
	}()
	<-done
	return total
}

// good accumulates in slice order: deterministic, no findings.
//
//lass:bitexact
func good(xs []float64) float64 {
	var total float64
	for _, x := range xs {
		total += x
	}
	return total
}

// unannotated is not bitexact; its map iteration is maporder's concern,
// not floatorder's (and the sum feeds nothing here).
func unannotated(m map[string]float64) int {
	n := 0
	for range m {
		n++
	}
	return n
}
