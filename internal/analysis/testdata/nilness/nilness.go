// Package nilness seeds ineffective nil checks for the nilness analyzer's
// fixture test: a nil check whose body neither ends the path nor assigns
// the variable, immediately followed by a dereference.
package nilness

import (
	"fmt"
	"log"
)

type thing struct{ n int }

func ineffectiveCheck(t *thing) {
	if t == nil {
		fmt.Println("t is nil")
	}
	fmt.Println(t.n) // want `t\.n is dereferenced immediately after a nil check`
}

func ineffectiveCheckSlice(xs []int) {
	if xs == nil {
		fmt.Println("empty")
	}
	_ = xs[0] // want `xs\[\.\.\.\] is dereferenced immediately after a nil check`
}

func guardedByReturn(t *thing) {
	if t == nil {
		return
	}
	fmt.Println(t.n)
}

func guardedByAssign(t *thing) {
	if t == nil {
		t = &thing{}
	}
	fmt.Println(t.n)
}

func guardedByFatal(t *thing) {
	if t == nil {
		log.Fatal("no thing")
	}
	fmt.Println(t.n)
}

func checkWithElse(t *thing) int {
	// An else branch means the dereference is not on the fallthrough
	// path shape this analyzer models; stay quiet.
	if t == nil {
		return 0
	} else {
		fmt.Println(t.n)
	}
	return t.n
}
