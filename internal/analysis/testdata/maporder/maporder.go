// Package maporder seeds map-iteration-order leaks for the maporder
// analyzer's fixture test: emitted output, unsorted appends, float
// accumulation, order-dependent winners, and engine scheduling inside
// `range m`, plus the sanctioned shapes that must stay quiet.
package maporder

import (
	"fmt"
	"sort"
	"time"

	"lass/internal/sim"
)

func emit(m map[string]int) {
	for k, v := range m {
		fmt.Println(k, v) // want `emits output \(fmt\.Println\) in map iteration order`
	}
}

func appendNoSort(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k) // want `appends to out in map iteration order and never sorts it`
	}
	return out
}

func appendThenSort(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func floatSum(m map[string]float64) float64 {
	var total float64
	for _, v := range m {
		total += v // want `accumulates float total in map iteration order`
	}
	return total
}

func intSum(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v // integer addition commutes: not flagged
	}
	return total
}

func argmin(m map[string]int) string {
	best := ""
	for k := range m {
		if best == "" || m[k] < m[best] {
			best = k // want `conditionally assigns a map element to best`
		}
	}
	return best
}

func schedule(e *sim.Engine, m map[string]time.Duration) {
	for _, d := range m {
		e.After(d, func() {}) // want `schedules engine events \(After\) in map iteration order`
	}
}

func sanctioned(m map[string]float64) float64 {
	var total float64
	//lass:unordered fixture: the sum is discarded
	for _, v := range m {
		total += v
	}
	return total
}
