// Package detrand seeds wall-clock and ambient-randomness violations for
// the detrand analyzer's fixture test. Every `want` comment is a regexp
// the analyzer must match on that line; lines without one must stay quiet.
package detrand

import (
	"math/rand"
	"time"
)

func violations() time.Duration {
	start := time.Now()          // want `time\.Now reads the wall clock`
	time.Sleep(time.Millisecond) // want `time\.Sleep reads the wall clock`
	_ = rand.Intn(10)            // want `math/rand\.Intn is ambient randomness`
	return time.Since(start)     // want `time\.Since reads the wall clock`
}

func timerViolations() {
	t := time.NewTimer(time.Second) // want `time\.NewTimer reads the wall clock`
	<-t.C
	<-time.After(time.Second) // want `time\.After reads the wall clock`
}

// sanctionedFunc carries the function-level annotation: nothing inside is
// flagged.
//
//lass:wallclock
func sanctionedFunc() time.Duration {
	start := time.Now()
	time.Sleep(time.Millisecond)
	return time.Since(start)
}

func sanctionedLines() int64 {
	//lass:wallclock bench timing is allowed to read the machine clock
	a := time.Now().UnixNano()
	b := time.Now().UnixNano() //lass:wallclock trailing form
	return a + b
}

// deterministicUses exercises package time's pure API: conversions and
// constructors are deterministic in their inputs and must not be flagged.
func deterministicUses() time.Duration {
	d := 3 * time.Second
	at := time.Date(2021, time.June, 21, 0, 0, 0, 0, time.UTC)
	return d + time.Duration(at.Unix())
}

// geSamplerViolations mimics a chaos-engine Gilbert-Elliott holding-time
// sampler written the wrong way — wall-clock seeding and ambient draws
// would make failure realizations irreproducible, the exact bug
// internal/chaos exists to rule out (its draws flow through the config's
// seeded, forked xrand streams; TestChaosPackagesAreDetrandClean pins
// that). Constructors, method calls on an ambient rand.Rand, and the
// exponential holding-time draw must all be flagged.
func geSamplerViolations() time.Duration {
	seed := time.Now().UnixNano() // want `time\.Now reads the wall clock`
	src := rand.NewSource(seed)   // want `math/rand\.NewSource is ambient randomness`
	r := rand.New(src)            // want `math/rand\.New is ambient randomness`
	if r.Intn(2) == 0 {           // want `math/rand\.Intn is ambient randomness`
		hold := rand.ExpFloat64() // want `math/rand\.ExpFloat64 is ambient randomness`
		return time.Duration(hold * float64(time.Second))
	}
	return 0
}
