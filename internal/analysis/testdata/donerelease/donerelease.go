// Package donerelease seeds pooled-object lifecycle bugs for the
// donerelease analyzer's fixture test. The pool is self-contained: the
// annotated providers below play the role of dispatch's request pool
// (//lass:acquires alloc, //lass:releases release, //lass:transfers
// enqueue).
package donerelease

type request struct {
	id   int
	busy bool
}

var pool []*request

// alloc hands out an owned request.
//
//lass:acquires
func alloc() *request {
	if n := len(pool); n > 0 {
		r := pool[n-1]
		pool = pool[:n-1]
		return r
	}
	return &request{}
}

// release recycles a request to the pool.
//
//lass:releases
func release(r *request) {
	r.busy = false
	pool = append(pool, r)
}

// enqueue takes ownership without recycling.
//
//lass:transfers
func enqueue(r *request) {}

func balanced(cond bool) {
	r := alloc()
	r.busy = true
	if cond {
		release(r)
		return
	}
	enqueue(r)
}

func deferred() int {
	r := alloc()
	defer release(r)
	return r.id
}

func leakOnEarlyReturn(cond bool) {
	r := alloc()
	if cond {
		return // want `pooled r may reach return without being released or transferred`
	}
	release(r)
}

func doubleRelease() {
	r := alloc()
	release(r)
	release(r) // want `r is released again after already being released`
}

func useAfterRelease() int {
	r := alloc()
	release(r)
	return r.id // want `r is used after being released to the pool`
}

func escapeIsNotALeak(sink func(*request)) {
	r := alloc()
	sink(r) // unannotated callee takes the obligation with the value
}
