package analysis

import (
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestModuleIsClean is the dogfood gate: the full analyzer suite must run
// clean over this module, tests included — the same invocation CI runs as
// `go run ./cmd/lass-lint ./...`. A failure here means either a real
// determinism regression or a new sanctioned site missing its annotation.
func TestModuleIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short")
	}
	out, err := exec.Command("go", "env", "GOMOD").Output()
	if err != nil {
		t.Fatal(err)
	}
	gomod := strings.TrimSpace(string(out))
	if gomod == "" || gomod == "/dev/null" {
		t.Fatal("not inside a module")
	}
	root := filepath.Dir(gomod)
	ds, err := Run(root, []string{"./..."}, true, DefaultAnalyzers())
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range ds {
		t.Errorf("%s", d.String())
	}
}
