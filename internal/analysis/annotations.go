package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// Annotation tags understood by the suite. The comment text must start
// exactly with "//lass:<tag>"; anything after the tag (rationale) is free
// form and encouraged.
const (
	AnnWallclock = "wallclock"
	AnnUnordered = "unordered"
	AnnBitexact  = "bitexact"
	AnnAcquires  = "acquires"
	AnnReleases  = "releases"
	AnnTransfers = "transfers"
)

// Annotations indexes every //lass: comment in a package two ways: by
// (file, line) for statement-level sanctions, and by function declaration
// for whole-function ones.
type Annotations struct {
	fset *token.FileSet
	// lines maps file -> line -> set of tags. A tag on line L applies to
	// lines L and L+1, so both trailing comments and a lead comment on
	// its own line sanction the statement they accompany.
	lines map[string]map[int]map[string]bool
	// funcs maps a FuncDecl (by its Pos) to the tags in its doc comment.
	funcs map[token.Pos]map[string]bool
}

func buildAnnotations(fset *token.FileSet, files []*ast.File) *Annotations {
	a := &Annotations{
		fset:  fset,
		lines: make(map[string]map[int]map[string]bool),
		funcs: make(map[token.Pos]map[string]bool),
	}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				tag, ok := parseTag(c.Text)
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				byLine := a.lines[pos.Filename]
				if byLine == nil {
					byLine = make(map[int]map[string]bool)
					a.lines[pos.Filename] = byLine
				}
				if byLine[pos.Line] == nil {
					byLine[pos.Line] = make(map[string]bool)
				}
				byLine[pos.Line][tag] = true
			}
		}
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Doc == nil {
				continue
			}
			for _, c := range fd.Doc.List {
				if tag, ok := parseTag(c.Text); ok {
					if a.funcs[fd.Pos()] == nil {
						a.funcs[fd.Pos()] = make(map[string]bool)
					}
					a.funcs[fd.Pos()][tag] = true
				}
			}
		}
	}
	return a
}

func parseTag(text string) (string, bool) {
	const prefix = "//lass:"
	if !strings.HasPrefix(text, prefix) {
		return "", false
	}
	rest := text[len(prefix):]
	if i := strings.IndexFunc(rest, func(r rune) bool {
		return r == ' ' || r == '\t'
	}); i >= 0 {
		rest = rest[:i]
	}
	return rest, rest != ""
}

// OnLine reports whether tag annotates the line holding pos (either as a
// trailing comment on the same line or as a lead comment on the line
// above).
func (a *Annotations) OnLine(pos token.Pos, tag string) bool {
	p := a.fset.Position(pos)
	byLine := a.lines[p.Filename]
	if byLine == nil {
		return false
	}
	return byLine[p.Line][tag] || byLine[p.Line-1][tag]
}

// FuncHas reports whether the function's doc comment carries tag.
func (a *Annotations) FuncHas(fd *ast.FuncDecl, tag string) bool {
	if fd == nil {
		return false
	}
	return a.funcs[fd.Pos()][tag]
}

// Sanctioned reports whether pos is covered by tag either on its own line
// or at the level of the enclosing function declaration.
func (a *Annotations) Sanctioned(pos token.Pos, tag string, enclosing *ast.FuncDecl) bool {
	return a.OnLine(pos, tag) || a.FuncHas(enclosing, tag)
}

// eachFuncDecl invokes fn for every function declaration with a body.
func eachFuncDecl(p *Pkg, fn func(*ast.FuncDecl)) {
	for _, f := range p.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				fn(fd)
			}
		}
	}
}
