package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
)

// Floatorder guards functions whose floating-point results must be
// bit-exact across runs and schedulers — the streamed log-sum-exp in
// queuing.MMC, the WRR weight accumulation on the dispatch hot path. A
// function annotated //lass:bitexact may not:
//
//   - iterate a map (iteration order would reorder the accumulation), or
//   - start goroutines (interleaving would reorder it).
//
// The check is intra-procedural: it pins the accumulation order inside the
// annotated function; callees touching floats should carry their own
// annotation.
type Floatorder struct{}

func (Floatorder) Name() string { return "floatorder" }

func (Floatorder) Doc() string {
	return "//lass:bitexact functions may not order float work by map iteration or goroutines"
}

func (Floatorder) Run(p *Pkg) []Diagnostic {
	var ds []Diagnostic
	eachFuncDecl(p, func(fd *ast.FuncDecl) {
		if !p.Ann.FuncHas(fd, AnnBitexact) {
			return
		}
		name := fd.Name.Name
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.RangeStmt:
				t := p.Info.TypeOf(n.X)
				if t == nil {
					return true
				}
				if _, isMap := t.Underlying().(*types.Map); isMap {
					ds = append(ds, Diagnostic{
						Pos:      p.Fset.Position(n.Pos()),
						Analyzer: "floatorder",
						Message:  fmt.Sprintf("bitexact function %s iterates a map: accumulation order would follow the randomized iteration order (iterate a sorted or insertion-ordered slice instead)", name),
					})
				}
			case *ast.GoStmt:
				ds = append(ds, Diagnostic{
					Pos:      p.Fset.Position(n.Pos()),
					Analyzer: "floatorder",
					Message:  fmt.Sprintf("bitexact function %s starts a goroutine: interleaving would reorder its float accumulation", name),
				})
			}
			return true
		})
	})
	return ds
}
