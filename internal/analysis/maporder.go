package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Maporder flags `range` over a map whose body leaks the (randomized)
// iteration order into observable state — the classic source of
// non-byte-identical sweep output. A loop is flagged when its body:
//
//   - appends to a slice declared outside the loop, unless a later
//     statement in the same block sorts that slice (the sanctioned
//     collect-then-sort idiom),
//   - prints through fmt or the print/println builtins,
//   - schedules events on the simulation engine (order of same-timestamp
//     events is FIFO, so scheduling order is outcome order),
//   - accumulates into a float declared outside the loop (float addition
//     does not commute under rounding), or
//   - selects an element by iteration order: returns the key/value, or
//     conditionally assigns them to an outer variable.
//
// Iterations that are order-independent by construction carry a justified
// //lass:unordered on the range statement.
type Maporder struct{}

func (Maporder) Name() string { return "maporder" }

func (Maporder) Doc() string {
	return "flag map iterations whose order escapes into output, events, floats, or selections"
}

func (Maporder) Run(p *Pkg) []Diagnostic {
	m := &maporderPass{p: p}
	eachFuncDecl(p, func(fd *ast.FuncDecl) {
		m.walkStmts(fd.Body.List)
	})
	return m.ds
}

type maporderPass struct {
	p  *Pkg
	ds []Diagnostic
}

// walkStmts scans a statement list for map ranges, keeping the remainder
// of each enclosing block in hand for the sort-after-append suppression.
func (m *maporderPass) walkStmts(list []ast.Stmt) {
	m.checkLevel(list)
	for _, s := range list {
		// Recurse into every nested block (including range bodies, for
		// ranges nested deeper). Each BlockStmt / clause body is visited
		// exactly once, so no range is checked twice.
		ast.Inspect(s, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BlockStmt:
				if n != nil && !sameStmts(n.List, list) {
					m.checkLevel(n.List)
				}
			case *ast.CaseClause:
				m.checkLevel(n.Body)
			case *ast.CommClause:
				m.checkLevel(n.Body)
			}
			return true
		})
	}
}

// checkLevel checks the map ranges sitting directly in one statement
// list, with the rest of the list in hand for the sort suppression.
func (m *maporderPass) checkLevel(list []ast.Stmt) {
	for i, s := range list {
		if ls, ok := s.(*ast.LabeledStmt); ok {
			s = ls.Stmt
		}
		if rs, ok := s.(*ast.RangeStmt); ok && m.isMapRange(rs) {
			if !m.p.Ann.OnLine(rs.Pos(), AnnUnordered) {
				m.checkMapRange(rs, list[i+1:])
			}
		}
	}
}

func (m *maporderPass) isMapRange(rs *ast.RangeStmt) bool {
	t := m.p.Info.TypeOf(rs.X)
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

func (m *maporderPass) checkMapRange(rs *ast.RangeStmt, rest []ast.Stmt) {
	keyObj := m.rangeVarObj(rs.Key)
	valObj := m.rangeVarObj(rs.Value)
	m.checkBody(rs, rs.Body.List, rest, keyObj, valObj, false)
}

func (m *maporderPass) rangeVarObj(e ast.Expr) types.Object {
	id, ok := e.(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil
	}
	if obj := m.p.Info.Defs[id]; obj != nil {
		return obj
	}
	return m.p.Info.Uses[id]
}

// checkBody walks the loop body, tracking whether execution is under a
// condition (where assignments become order-dependent selections).
func (m *maporderPass) checkBody(rs *ast.RangeStmt, list []ast.Stmt, rest []ast.Stmt, keyObj, valObj types.Object, cond bool) {
	for _, s := range list {
		switch s := s.(type) {
		case *ast.AssignStmt:
			m.checkAssign(rs, s, rest, keyObj, valObj, cond)
		case *ast.ExprStmt:
			m.checkCalls(rs, s.X)
		case *ast.ReturnStmt:
			for _, r := range s.Results {
				if m.mentions(r, keyObj, valObj) {
					m.report(s.Pos(), "returns an element chosen by map iteration order (iterate sorted keys, or //lass:unordered)")
					break
				}
			}
			for _, r := range s.Results {
				m.checkCalls(rs, r)
			}
		case *ast.IfStmt:
			m.checkCalls(rs, s.Cond)
			m.checkBody(rs, s.Body.List, rest, keyObj, valObj, true)
			switch e := s.Else.(type) {
			case *ast.BlockStmt:
				m.checkBody(rs, e.List, rest, keyObj, valObj, true)
			case *ast.IfStmt:
				m.checkBody(rs, []ast.Stmt{e}, rest, keyObj, valObj, cond)
			}
		case *ast.BlockStmt:
			m.checkBody(rs, s.List, rest, keyObj, valObj, cond)
		case *ast.ForStmt:
			m.checkBody(rs, s.Body.List, rest, keyObj, valObj, cond)
		case *ast.RangeStmt:
			m.checkBody(rs, s.Body.List, rest, keyObj, valObj, cond)
		case *ast.SwitchStmt:
			for _, c := range s.Body.List {
				if cc, ok := c.(*ast.CaseClause); ok {
					m.checkBody(rs, cc.Body, rest, keyObj, valObj, true)
				}
			}
		case *ast.DeferStmt:
			m.checkCalls(rs, s.Call)
		case *ast.GoStmt:
			m.checkCalls(rs, s.Call)
		case *ast.DeclStmt, *ast.IncDecStmt, *ast.BranchStmt, *ast.LabeledStmt,
			*ast.SendStmt, *ast.SelectStmt, *ast.TypeSwitchStmt, *ast.EmptyStmt:
			// IncDec on ints is order-independent; the rest carry no
			// heuristic of their own (nested calls in sends/selects are
			// rare enough in this codebase to ignore).
		}
	}
}

func (m *maporderPass) checkAssign(rs *ast.RangeStmt, s *ast.AssignStmt, rest []ast.Stmt, keyObj, valObj types.Object, cond bool) {
	for _, r := range s.Rhs {
		m.checkCalls(rs, r)
	}
	switch s.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
		if id, ok := s.Lhs[0].(*ast.Ident); ok {
			obj := m.p.Info.Uses[id]
			if obj != nil && m.declaredOutside(obj, rs) && floatType(obj.Type()) {
				m.report(s.Pos(), fmt.Sprintf("accumulates float %s in map iteration order; float addition does not commute under rounding (iterate sorted keys, or //lass:unordered)", id.Name))
				return
			}
		}
	case token.ASSIGN, token.DEFINE:
		// Appends to outer slices (suppressed when the block sorts the
		// slice afterwards), x = x + f float accumulation, and
		// conditional selection of the key/value into outer state.
		for i, lhs := range s.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok {
				continue
			}
			obj := m.p.Info.Uses[id]
			if obj == nil || !m.declaredOutside(obj, rs) {
				continue
			}
			if i < len(s.Rhs) {
				if call, ok := s.Rhs[i].(*ast.CallExpr); ok && m.isAppend(call) {
					if !sortFollows(m.p, rest, obj) {
						m.report(s.Pos(), fmt.Sprintf("appends to %s in map iteration order and never sorts it (sort after the loop, or //lass:unordered)", id.Name))
					}
					continue
				}
				if floatType(obj.Type()) && mentionsObj(m.p, s.Rhs[i], obj) {
					m.report(s.Pos(), fmt.Sprintf("accumulates float %s in map iteration order; float addition does not commute under rounding (iterate sorted keys, or //lass:unordered)", id.Name))
					continue
				}
			}
			if cond && i < len(s.Rhs) && m.mentions(s.Rhs[i], keyObj, valObj) {
				m.report(s.Pos(), fmt.Sprintf("conditionally assigns a map element to %s: the winner depends on iteration order (iterate sorted keys with a total tie-break, or //lass:unordered)", id.Name))
			}
		}
	}
}

// checkCalls flags output and engine-scheduling calls inside an
// expression.
func (m *maporderPass) checkCalls(rs *ast.RangeStmt, e ast.Expr) {
	ast.Inspect(e, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch fn := m.calleeFunc(call); {
		case fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" && printFuncs[fn.Name()]:
			m.report(call.Pos(), fmt.Sprintf("emits output (fmt.%s) in map iteration order (iterate sorted keys, or //lass:unordered)", fn.Name()))
		case fn != nil && m.isEngineSchedule(fn):
			m.report(call.Pos(), fmt.Sprintf("schedules engine events (%s) in map iteration order; same-timestamp events fire in scheduling order (iterate sorted keys, or //lass:unordered)", fn.Name()))
		case fn == nil:
			if id, ok := call.Fun.(*ast.Ident); ok && (id.Name == "print" || id.Name == "println") {
				if _, isBuiltin := m.p.Info.Uses[id].(*types.Builtin); isBuiltin {
					m.report(call.Pos(), fmt.Sprintf("emits output (%s) in map iteration order (iterate sorted keys, or //lass:unordered)", id.Name))
				}
			}
		}
		return true
	})
}

var printFuncs = map[string]bool{
	"Print": true, "Printf": true, "Println": true,
	"Fprint": true, "Fprintf": true, "Fprintln": true,
}

func (m *maporderPass) calleeFunc(call *ast.CallExpr) *types.Func {
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		if fn, ok := m.p.Info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	case *ast.Ident:
		if fn, ok := m.p.Info.Uses[fun].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

var engineScheduleFuncs = map[string]bool{
	"Schedule": true, "After": true, "Every": true, "EveryFrom": true,
}

func (m *maporderPass) isEngineSchedule(fn *types.Func) bool {
	if !engineScheduleFuncs[fn.Name()] {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Pkg().Path() == "lass/internal/sim" && named.Obj().Name() == "Engine"
}

func (m *maporderPass) isAppend(call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	_, isBuiltin := m.p.Info.Uses[id].(*types.Builtin)
	return isBuiltin && id.Name == "append"
}

func (m *maporderPass) declaredOutside(obj types.Object, rs *ast.RangeStmt) bool {
	return obj.Pos() < rs.Pos() || obj.Pos() > rs.End()
}

func (m *maporderPass) mentions(e ast.Expr, objs ...types.Object) bool {
	for _, o := range objs {
		if o != nil && mentionsObj(m.p, e, o) {
			return true
		}
	}
	return false
}

func mentionsObj(p *Pkg, e ast.Expr, obj types.Object) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && p.Info.Uses[id] == obj {
			found = true
		}
		return !found
	})
	return found
}

// sortFollows reports whether the statements after the loop sort the
// appended slice (or a slice derived from it, e.g. tail := dst[start:]).
func sortFollows(p *Pkg, rest []ast.Stmt, obj types.Object) bool {
	derived := map[types.Object]bool{obj: true}
	mentionsDerived := func(e ast.Expr) bool {
		hit := false
		ast.Inspect(e, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok && derived[p.Info.Uses[id]] {
				hit = true
			}
			return !hit
		})
		return hit
	}
	for _, s := range rest {
		sorted := false
		ast.Inspect(s, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || sorted {
				return !sorted
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := p.Info.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil {
				return true
			}
			pkg := fn.Pkg().Path()
			if (pkg != "sort" && pkg != "slices") || len(call.Args) == 0 {
				return true
			}
			if mentionsDerived(call.Args[0]) {
				sorted = true
			}
			return true
		})
		if sorted {
			return true
		}
		if as, ok := s.(*ast.AssignStmt); ok {
			for i, lhs := range as.Lhs {
				if i >= len(as.Rhs) || !mentionsDerived(as.Rhs[i]) {
					continue
				}
				if id, ok := lhs.(*ast.Ident); ok {
					if o := p.Info.Defs[id]; o != nil {
						derived[o] = true
					} else if o := p.Info.Uses[id]; o != nil {
						derived[o] = true
					}
				}
			}
		}
	}
	return false
}

func (m *maporderPass) report(pos token.Pos, msg string) {
	m.ds = append(m.ds, Diagnostic{
		Pos:      m.p.Fset.Position(pos),
		Analyzer: "maporder",
		Message:  "range over map " + msg,
	})
}

func sameStmts(a, b []ast.Stmt) bool {
	return len(a) == len(b) && (len(a) == 0 || a[0] == b[0])
}
