package analysis

import (
	"go/ast"
)

// cfgBlock is one basic block of the intra-procedural control-flow graph:
// a run of statements executed in order, then edges to successors. A block
// ending the function (return, panic, or falling off the body) points to
// the shared exit block.
type cfgBlock struct {
	stmts []ast.Stmt
	succs []*cfgBlock
	// returns holds the terminating ReturnStmt when this block ends in
	// one (the leak check anchors its diagnostic there).
	returns *ast.ReturnStmt
}

// funcCFG is the control-flow graph of one function body.
type funcCFG struct {
	entry  *cfgBlock
	exit   *cfgBlock // synthetic: every normal termination flows here
	blocks []*cfgBlock
	ok     bool // false when the body uses control flow the builder skips
}

// buildCFG converts a function body into basic blocks. The builder covers
// the control flow the simulator actually uses — blocks, if/else, for,
// range, switch, type switch, break/continue (unlabeled), return, and
// panic — and reports ok=false on goto, labeled branches, select, and
// fallthrough, making analyses that depend on it skip the function rather
// than reason unsoundly.
func buildCFG(body *ast.BlockStmt) *funcCFG {
	g := &funcCFG{ok: true}
	g.exit = g.newBlock()
	g.entry = g.newBlock()
	last := g.stmtList(g.entry, body.List, nil)
	if last != nil {
		g.edge(last, g.exit)
	}
	return g
}

func (g *funcCFG) newBlock() *cfgBlock {
	b := &cfgBlock{}
	g.blocks = append(g.blocks, b)
	return b
}

func (g *funcCFG) edge(from, to *cfgBlock) {
	from.succs = append(from.succs, to)
}

// loopCtx carries the targets of unlabeled break/continue.
type loopCtx struct {
	breakTo    *cfgBlock
	continueTo *cfgBlock
	isSwitch   bool
	outer      *loopCtx
}

func (l *loopCtx) loop() *loopCtx {
	for c := l; c != nil; c = c.outer {
		if !c.isSwitch {
			return c
		}
	}
	return nil
}

// stmtList threads cur through the statements; a nil return means the
// path terminated (return/panic/branch).
func (g *funcCFG) stmtList(cur *cfgBlock, list []ast.Stmt, ctx *loopCtx) *cfgBlock {
	for _, s := range list {
		if cur == nil {
			// Unreachable code after a terminator; ignore it.
			return nil
		}
		cur = g.stmt(cur, s, ctx)
		if !g.ok {
			return nil
		}
	}
	return cur
}

func (g *funcCFG) stmt(cur *cfgBlock, s ast.Stmt, ctx *loopCtx) *cfgBlock {
	switch s := s.(type) {
	case *ast.BlockStmt:
		return g.stmtList(cur, s.List, ctx)

	case *ast.IfStmt:
		if s.Init != nil {
			cur.stmts = append(cur.stmts, s.Init)
		}
		cur.stmts = append(cur.stmts, &ast.ExprStmt{X: s.Cond})
		thenB := g.newBlock()
		g.edge(cur, thenB)
		thenEnd := g.stmtList(thenB, s.Body.List, ctx)
		join := g.newBlock()
		if thenEnd != nil {
			g.edge(thenEnd, join)
		}
		if s.Else != nil {
			elseB := g.newBlock()
			g.edge(cur, elseB)
			elseEnd := g.stmt(elseB, s.Else, ctx)
			if elseEnd != nil {
				g.edge(elseEnd, join)
			}
		} else {
			g.edge(cur, join)
		}
		return join

	case *ast.ForStmt:
		if s.Init != nil {
			cur.stmts = append(cur.stmts, s.Init)
		}
		head := g.newBlock()
		g.edge(cur, head)
		if s.Cond != nil {
			head.stmts = append(head.stmts, &ast.ExprStmt{X: s.Cond})
		}
		after := g.newBlock()
		post := g.newBlock()
		body := g.newBlock()
		g.edge(head, body)
		if s.Cond != nil {
			g.edge(head, after) // condition false
		}
		inner := &loopCtx{breakTo: after, continueTo: post, outer: ctx}
		bodyEnd := g.stmtList(body, s.Body.List, inner)
		if bodyEnd != nil {
			g.edge(bodyEnd, post)
		}
		if s.Post != nil {
			post.stmts = append(post.stmts, s.Post)
		}
		g.edge(post, head)
		return after

	case *ast.RangeStmt:
		// Model the range as: eval X; loop { bind key/value; body }.
		cur.stmts = append(cur.stmts, &ast.ExprStmt{X: s.X})
		head := g.newBlock()
		g.edge(cur, head)
		after := g.newBlock()
		g.edge(head, after) // zero iterations
		body := g.newBlock()
		g.edge(head, body)
		body.stmts = append(body.stmts, s) // the RangeStmt itself stands for the per-iteration binding
		inner := &loopCtx{breakTo: after, continueTo: head, outer: ctx}
		bodyEnd := g.stmtList(body, s.Body.List, inner)
		if bodyEnd != nil {
			g.edge(bodyEnd, head)
		}
		return after

	case *ast.SwitchStmt:
		if s.Init != nil {
			cur.stmts = append(cur.stmts, s.Init)
		}
		if s.Tag != nil {
			cur.stmts = append(cur.stmts, &ast.ExprStmt{X: s.Tag})
		}
		return g.switchBody(cur, s.Body, ctx)

	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			cur.stmts = append(cur.stmts, s.Init)
		}
		cur.stmts = append(cur.stmts, s.Assign)
		return g.switchBody(cur, s.Body, ctx)

	case *ast.ReturnStmt:
		cur.stmts = append(cur.stmts, s)
		cur.returns = s
		g.edge(cur, g.exit)
		return nil

	case *ast.BranchStmt:
		if s.Label != nil {
			g.ok = false
			return nil
		}
		switch s.Tok.String() {
		case "break":
			if ctx == nil {
				g.ok = false
				return nil
			}
			g.edge(cur, ctx.breakTo)
			return nil
		case "continue":
			l := ctx.loop()
			if l == nil {
				g.ok = false
				return nil
			}
			g.edge(cur, l.continueTo)
			return nil
		default: // goto, fallthrough
			g.ok = false
			return nil
		}

	case *ast.ExprStmt:
		cur.stmts = append(cur.stmts, s)
		if isPanicCall(s.X) {
			// A panicking path carries no release obligation.
			return nil
		}
		return cur

	case *ast.LabeledStmt, *ast.SelectStmt:
		g.ok = false
		return nil

	default:
		// Assignments, declarations, go/defer, send, incdec, empty:
		// straight-line.
		cur.stmts = append(cur.stmts, s)
		return cur
	}
}

func (g *funcCFG) switchBody(cur *cfgBlock, body *ast.BlockStmt, ctx *loopCtx) *cfgBlock {
	join := g.newBlock()
	inner := &loopCtx{breakTo: join, isSwitch: true, outer: ctx}
	hasDefault := false
	for _, c := range body.List {
		cc, ok := c.(*ast.CaseClause)
		if !ok {
			g.ok = false
			return nil
		}
		if cc.List == nil {
			hasDefault = true
		}
		caseB := g.newBlock()
		for _, e := range cc.List {
			caseB.stmts = append(caseB.stmts, &ast.ExprStmt{X: e})
		}
		g.edge(cur, caseB)
		end := g.stmtList(caseB, cc.Body, inner)
		if end != nil {
			g.edge(end, join)
		}
	}
	if !hasDefault {
		g.edge(cur, join)
	}
	return join
}

func isPanicCall(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
		return true
	}
	return false
}
