package analysis

import (
	"fmt"
	"go/importer"
	"go/parser"
	"go/token"
	"io"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"
)

// Each analyzer has a golden fixture package under testdata/<name>: seeded
// violations carry trailing "// want `regexp`" comments, and every line
// without one must stay quiet. The fixture is loaded with the same
// machinery the real driver uses (export-data importer over `go list`),
// so the test exercises the loader as well as the analyzer.
func TestFixtures(t *testing.T) {
	for _, a := range DefaultAnalyzers() {
		t.Run(a.Name(), func(t *testing.T) {
			dir := filepath.Join("testdata", a.Name())
			p := loadFixture(t, dir)
			checkAgainstWants(t, p, a.Run(p))
		})
	}
}

// loadFixture parses and type-checks one testdata directory as a package.
func loadFixture(t *testing.T, dir string) *Pkg {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			names = append(names, e.Name())
		}
	}
	if len(names) == 0 {
		t.Fatalf("no fixture files in %s", dir)
	}
	sort.Strings(names)

	// Collect the fixture's imports, then resolve them through compiled
	// export data exactly like Load does.
	need := make(map[string]bool)
	impFset := token.NewFileSet()
	for _, name := range names {
		f, err := parser.ParseFile(impFset, filepath.Join(dir, name), nil, parser.ImportsOnly)
		if err != nil {
			t.Fatal(err)
		}
		for _, spec := range f.Imports {
			path := strings.Trim(spec.Path.Value, `"`)
			if path != "C" && path != "unsafe" {
				need[path] = true
			}
		}
	}
	exports, err := exportData(dir, need)
	if err != nil {
		t.Fatal(err)
	}
	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok || f == "" {
			t.Fatalf("no export data for %q", path)
		}
		return os.Open(f)
	})
	p, err := checkPackage(fset, imp, "fixture/"+filepath.Base(dir), dir, names)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

var wantRe = regexp.MustCompile("// want `([^`]+)`")

// checkAgainstWants matches diagnostics against the fixture's want
// comments 1:1 by (file, line): every want must be hit by a matching
// diagnostic and every diagnostic must be expected by a want.
func checkAgainstWants(t *testing.T, p *Pkg, ds []Diagnostic) {
	t.Helper()
	type key struct {
		file string
		line int
	}
	wants := make(map[key][]*regexp.Regexp)
	total := 0
	for _, f := range p.Files {
		name := p.Fset.Position(f.Pos()).Filename
		src, err := os.ReadFile(name)
		if err != nil {
			t.Fatal(err)
		}
		for i, line := range strings.Split(string(src), "\n") {
			for _, m := range wantRe.FindAllStringSubmatch(line, -1) {
				re, err := regexp.Compile(m[1])
				if err != nil {
					t.Fatalf("%s:%d: bad want regexp %q: %v", name, i+1, m[1], err)
				}
				k := key{name, i + 1}
				wants[k] = append(wants[k], re)
				total++
			}
		}
	}
	if total == 0 {
		t.Fatal("fixture has no want comments; the test would pass vacuously")
	}

	for _, d := range ds {
		k := key{d.Pos.Filename, d.Pos.Line}
		matched := false
		for i, re := range wants[k] {
			if re.MatchString(d.Message) {
				wants[k] = append(wants[k][:i], wants[k][i+1:]...)
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d.String())
		}
		if len(wants[k]) == 0 {
			delete(wants, k)
		}
	}
	missed := make([]string, 0, len(wants))
	for k, res := range wants {
		for _, re := range res {
			missed = append(missed, fmt.Sprintf("%s:%d: no diagnostic matched `%s`", k.file, k.line, re))
		}
	}
	sort.Strings(missed)
	for _, m := range missed {
		t.Error(m)
	}
}
