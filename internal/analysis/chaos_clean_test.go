package analysis

import (
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestChaosPackagesAreDetrandClean pins the chaos subsystem's headline
// guarantee — failure realizations are a pure function of the declared
// seed — at the static level: the detrand analyzer must find zero
// wall-clock or ambient-randomness sites in internal/chaos and
// internal/scenario, tests included and with no //lass:wallclock
// sanctions in play. TestModuleIsClean covers the same files as part of
// the whole-module gate; this test keeps the chaos guarantee from being
// quietly weakened by a future sanctioned-site annotation there.
func TestChaosPackagesAreDetrandClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks packages via go list; skipped in -short")
	}
	out, err := exec.Command("go", "env", "GOMOD").Output()
	if err != nil {
		t.Fatal(err)
	}
	gomod := strings.TrimSpace(string(out))
	if gomod == "" || gomod == "/dev/null" {
		t.Fatal("not inside a module")
	}
	root := filepath.Dir(gomod)
	ds, err := Run(root, []string{"./internal/chaos/...", "./internal/scenario/..."},
		true, []Analyzer{Detrand{}})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range ds {
		t.Errorf("chaos subsystem must stay detrand-clean: %s", d.String())
	}
	// A sanctioned wall-clock site in these packages would silently pass
	// the analyzer; grep the sources so the sanction itself is flagged.
	for _, dir := range []string{"internal/chaos", "internal/scenario"} {
		g, err := exec.Command("grep", "-rn", "lass:wallclock", filepath.Join(root, dir)).Output()
		if err == nil && len(g) > 0 {
			t.Errorf("%s carries a //lass:wallclock sanction; the chaos subsystem must not need one:\n%s", dir, g)
		}
	}
}
