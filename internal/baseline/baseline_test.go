package baseline

import (
	"testing"
	"time"

	"lass/internal/functions"
	"lass/internal/workload"
)

func TestValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("want error for zero config")
	}
	p, err := New(Default())
	if err != nil {
		t.Fatal(err)
	}
	spec := functions.MicroBenchmark(100 * time.Millisecond)
	if err := p.Register(spec, 100*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if err := p.Register(spec, 100*time.Millisecond); err == nil {
		t.Error("want error for duplicate registration")
	}
	bad := spec
	bad.CPUMillis = 0
	if err := p.Register(bad, time.Second); err == nil {
		t.Error("want error for invalid spec")
	}
	if _, err := p.Run(map[string]*workload.Schedule{"ghost": nil}, time.Second); err == nil {
		t.Error("want error for unregistered schedule")
	}
}

func TestLightLoadWorksFine(t *testing.T) {
	// Vanilla OpenWhisk is perfectly healthy when one small function
	// trickles along: the baseline must not fail spuriously.
	p, err := New(Default())
	if err != nil {
		t.Fatal(err)
	}
	spec, _ := functions.ByName("geofence")
	p.Register(spec, 100*time.Millisecond)
	wl, _ := workload.NewStatic(20)
	res, err := p.Run(map[string]*workload.Schedule{spec.Name: wl}, 2*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cascaded || res.ResponsiveNodes != 3 {
		t.Errorf("healthy workload killed nodes: cascaded=%v responsive=%d", res.Cascaded, res.ResponsiveNodes)
	}
	if res.Completed[spec.Name] < 2000 {
		t.Errorf("completed=%d want ~2400", res.Completed[spec.Name])
	}
	if res.Hung[spec.Name] != 0 {
		t.Errorf("hung=%d", res.Hung[spec.Name])
	}
}

func TestMLWorkloadCascadesFailure(t *testing.T) {
	// §6.6: "Soon after the ML workload starts, all invokers become
	// unresponsive ... eventually causing all the invokers to fail."
	// Memory-only packing lets ~16 MobileNet containers (2 vCPU each)
	// pile onto one 4-core node.
	p, err := New(Default())
	if err != nil {
		t.Fatal(err)
	}
	malware, _ := functions.ByName("binaryalert")
	mobile, _ := functions.ByName("mobilenet-v2")
	p.Register(malware, 100*time.Millisecond)
	p.Register(mobile, 100*time.Millisecond)

	mw, _ := workload.NewStatic(30)
	ml, _ := workload.NewStatic(40) // heavy DNN load: demands ~20 vCPU
	res, err := p.Run(map[string]*workload.Schedule{
		malware.Name: mw,
		mobile.Name:  ml,
	}, 10*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if res.ResponsiveNodes != 0 {
		t.Errorf("responsive nodes=%d; cascade did not complete", res.ResponsiveNodes)
	}
	if !res.Cascaded {
		t.Error("cascade flag not set")
	}
	if res.FirstDeathAt == 0 || res.FirstDeathAt > 3*time.Minute {
		t.Errorf("first invoker death at %v; expected early failure", res.FirstDeathAt)
	}
	if res.Hung[mobile.Name] == 0 {
		t.Error("no hung requests despite unresponsive invokers")
	}
	// The malware function is collateral damage: its requests get
	// dropped or hung once every invoker dies.
	if res.Dropped[malware.Name] == 0 && res.Hung[malware.Name] == 0 {
		t.Error("co-located function unaffected by cascade")
	}
}

func TestOversubscriptionStretchesService(t *testing.T) {
	// Below the death threshold, CPU oversubscription slows service
	// (requests on an overloaded node take longer).
	cfg := Default()
	cfg.Oversubscription = 100 // effectively never die
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	mobile, _ := functions.ByName("mobilenet-v2")
	p.Register(mobile, 100*time.Millisecond)
	wl, _ := workload.NewStatic(40)
	res, err := p.Run(map[string]*workload.Schedule{mobile.Name: wl}, 3*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed[mobile.Name] == 0 {
		t.Fatal("nothing completed")
	}
	// Offered: 40 req/s × 0.25s = 10 vCPU-equivalents on a 12-vCPU
	// cluster packed by memory onto fewer nodes: throughput collapses
	// below offered load.
	offered := 40.0 * 180
	if float64(res.Completed[mobile.Name]) > 0.9*offered {
		t.Errorf("completed %d of %v offered; oversubscription should throttle throughput",
			res.Completed[mobile.Name], offered)
	}
}

func TestIdleReap(t *testing.T) {
	cfg := Default()
	cfg.IdleTTL = 30 * time.Second
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	spec, _ := functions.ByName("geofence")
	p.Register(spec, 100*time.Millisecond)
	// One minute of traffic, then nine minutes idle.
	wl, _ := workload.NewSteps([]workload.Step{{Start: 0, Rate: 20}, {Start: time.Minute, Rate: 0}})
	if _, err := p.Run(map[string]*workload.Schedule{spec.Name: wl}, 10*time.Minute); err != nil {
		t.Fatal(err)
	}
	for _, n := range p.nodes {
		if len(n.containers) != 0 {
			t.Errorf("node %d still has %d containers after idle reap", n.id, len(n.containers))
		}
		if n.memUsed != 0 {
			t.Errorf("node %d memUsed=%d", n.id, n.memUsed)
		}
	}
}

// TestRunDeterministic is the regression test for the map-iteration
// nondeterminism lass-lint flagged in this package: node.containers was a
// set-typed map, so findIdle handed requests to an arbitrary idle container
// and the lastUsed-driven keep-alive reap diverged run to run. With the
// creation-ordered slice, two runs from the same seed must agree
// bit-for-bit on every committed output.
func TestRunDeterministic(t *testing.T) {
	run := func() (*Result, []string) {
		cfg := Default()
		cfg.Seed = 42
		cfg.IdleTTL = 30 * time.Second // exercise the reap path
		p, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		names := []string{"mobilenet-v2", "shufflenet-v2", "geofence"}
		schedules := make(map[string]*workload.Schedule)
		for _, name := range names {
			spec, err := functions.ByName(name)
			if err != nil {
				t.Fatal(err)
			}
			if err := p.Register(spec, 500*time.Millisecond); err != nil {
				t.Fatal(err)
			}
			// Bursty enough that containers go idle and get reaped.
			wl, err := workload.NewSteps([]workload.Step{
				{Start: 0, Rate: 8},
				{Start: 2 * time.Minute, Rate: 0.5},
				{Start: 4 * time.Minute, Rate: 8},
			})
			if err != nil {
				t.Fatal(err)
			}
			schedules[name] = wl
		}
		res, err := p.Run(schedules, 6*time.Minute)
		if err != nil {
			t.Fatal(err)
		}
		return res, names
	}

	a, names := run()
	b, _ := run()
	for _, name := range names {
		if a.Completed[name] != b.Completed[name] {
			t.Errorf("%s: completed %d vs %d across identical seeds", name, a.Completed[name], b.Completed[name])
		}
		if a.Dropped[name] != b.Dropped[name] {
			t.Errorf("%s: dropped %d vs %d", name, a.Dropped[name], b.Dropped[name])
		}
		if a.Hung[name] != b.Hung[name] {
			t.Errorf("%s: hung %d vs %d", name, a.Hung[name], b.Hung[name])
		}
		wa, wb := a.Waits[name], b.Waits[name]
		if wa.Count() != wb.Count() || wa.Sum() != wb.Sum() {
			t.Errorf("%s: wait digest (%d, %v) vs (%d, %v)", name, wa.Count(), wa.Sum(), wb.Count(), wb.Sum())
		}
		for _, q := range []float64{0.5, 0.95, 0.99} {
			if wa.Quantile(q) != wb.Quantile(q) {
				t.Errorf("%s: p%v %v vs %v", name, q*100, wa.Quantile(q), wb.Quantile(q))
			}
		}
		if a.SLO[name].Violations() != b.SLO[name].Violations() {
			t.Errorf("%s: SLO violations %d vs %d", name, a.SLO[name].Violations(), b.SLO[name].Violations())
		}
	}
	if a.FirstDeathAt != b.FirstDeathAt || a.Cascaded != b.Cascaded {
		t.Errorf("health trajectory diverged: (%v, %v) vs (%v, %v)",
			a.FirstDeathAt, a.Cascaded, b.FirstDeathAt, b.Cascaded)
	}
}
