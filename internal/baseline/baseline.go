// Package baseline models vanilla Apache OpenWhisk's sharding-pool load
// balancer, the comparison system of §6.6. The paper reports that
// off-the-shelf OpenWhisk "failed to finish the experiment": its scheduler
// packs each function onto a "home" invoker chosen by hash, considers only
// memory when packing, and ignores CPU requirements entirely. Under the
// Fig 8 workload one invoker gets over-packed with MobileNet containers,
// becomes unresponsive, the controller shifts the load to the next
// invoker, and the failure cascades across the cluster.
//
// The model here reproduces that mechanism rather than the Scala code:
//
//   - per-function home invoker (stable hash), memory-only admission;
//   - a new container is created on demand when no idle one exists
//     (OpenWhisk's on-request auto-scaling);
//   - each node tracks the aggregate CPU its busy containers want; when
//     demand exceeds Oversubscription × capacity the node becomes
//     (stickily) unresponsive: in-flight requests hang and the node
//     accepts no further work;
//   - requests that cannot be placed anywhere are dropped.
package baseline

import (
	"fmt"
	"hash/fnv"
	"sort"
	"time"

	"lass/internal/functions"
	"lass/internal/metrics"
	"lass/internal/sim"
	"lass/internal/workload"
	"lass/internal/xrand"
)

// Config describes the baseline deployment.
type Config struct {
	Nodes      int
	CPUPerNode int64 // millicores
	MemPerNode int64 // MiB
	// Oversubscription is how far past its CPU capacity a node's busy
	// demand can grow before the invoker becomes unresponsive. OpenWhisk
	// survives mild oversubscription (containers just slow down); the
	// default 2.0 marks a node dead when busy demand is twice capacity.
	Oversubscription float64
	// IdleTTL terminates containers idle longer than this (OpenWhisk's
	// pause/remove behaviour). Zero disables.
	IdleTTL time.Duration
	Seed    uint64
}

// Default mirrors the paper's 3-node testbed.
func Default() Config {
	return Config{Nodes: 3, CPUPerNode: 4000, MemPerNode: 16384, Oversubscription: 2.0}
}

type containerState int

const (
	idle containerState = iota
	busy
)

type container struct {
	fn       *bfunc
	node     *node
	state    containerState
	lastUsed time.Duration
	done     sim.Event
	req      *request
}

type node struct {
	id         int
	memCap     int64
	memUsed    int64
	cpuCap     int64
	responsive bool
	// containers is kept in creation order. Iterating a set-typed map
	// here made findIdle hand requests to an arbitrary idle container,
	// which skewed lastUsed and therefore keep-alive reaping run to run;
	// a slice makes the whole baseline a pure function of its seed.
	containers []*container
}

// busyCPUDemand sums the standard-size CPU wanted by busy containers: the
// quantity OpenWhisk never looks at, and the one that kills the invoker.
func (n *node) busyCPUDemand() int64 {
	var d int64
	for _, c := range n.containers {
		if c.state == busy {
			d += c.fn.spec.CPUMillis
		}
	}
	return d
}

type request struct {
	arrival time.Duration
}

type bfunc struct {
	spec     functions.Spec
	home     int
	queue    []*request
	Waits    *metrics.Reservoir
	SLO      *metrics.SLOTracker
	complete uint64
	dropped  uint64
	hung     uint64
}

// Platform is the assembled vanilla-OpenWhisk simulation.
type Platform struct {
	Engine *sim.Engine
	cfg    Config
	nodes  []*node
	funcs  map[string]*bfunc
	order  []string
	rng    *xrand.Rand
}

// New builds the baseline platform.
func New(cfg Config) (*Platform, error) {
	if cfg.Nodes < 1 || cfg.CPUPerNode <= 0 || cfg.MemPerNode <= 0 {
		return nil, fmt.Errorf("baseline: invalid cluster config %+v", cfg)
	}
	if cfg.Oversubscription <= 0 {
		cfg.Oversubscription = 2.0
	}
	p := &Platform{
		Engine: sim.NewEngine(),
		cfg:    cfg,
		funcs:  make(map[string]*bfunc),
		rng:    xrand.New(cfg.Seed ^ 0xba5e11e),
	}
	for i := 0; i < cfg.Nodes; i++ {
		p.nodes = append(p.nodes, &node{
			id:         i,
			memCap:     cfg.MemPerNode,
			cpuCap:     cfg.CPUPerNode,
			responsive: true,
		})
	}
	return p, nil
}

// Register adds a function, assigning its home invoker by hash (the
// sharding-pool scheme).
func (p *Platform) Register(spec functions.Spec, sloDeadline time.Duration) error {
	if err := spec.Validate(); err != nil {
		return err
	}
	if _, dup := p.funcs[spec.Name]; dup {
		return fmt.Errorf("baseline: duplicate function %q", spec.Name)
	}
	h := fnv.New32a()
	h.Write([]byte(spec.Name))
	p.funcs[spec.Name] = &bfunc{
		spec:  spec,
		home:  int(h.Sum32()) % len(p.nodes),
		Waits: metrics.NewReservoir(),
		SLO:   metrics.NewSLOTracker(sloDeadline),
	}
	p.order = append(p.order, spec.Name)
	return nil
}

// checkHealth marks a node unresponsive (stickily) when its busy CPU
// demand exceeds the oversubscription limit, hanging in-flight requests.
func (p *Platform) checkHealth(n *node) {
	if !n.responsive {
		return
	}
	limit := int64(float64(n.cpuCap) * p.cfg.Oversubscription)
	if n.busyCPUDemand() <= limit {
		return
	}
	n.responsive = false
	for _, c := range n.containers {
		if c.state == busy {
			c.done.Cancel() // the request hangs forever
			c.fn.hung++
		}
	}
}

// findIdle returns an idle container for fn on a responsive node.
func (p *Platform) findIdle(f *bfunc) *container {
	for offset := 0; offset < len(p.nodes); offset++ {
		n := p.nodes[(f.home+offset)%len(p.nodes)]
		if !n.responsive {
			continue
		}
		for _, c := range n.containers {
			if c.fn == f && c.state == idle {
				return c
			}
		}
	}
	return nil
}

// createContainer places a new container for fn by MEMORY ONLY, starting
// at the home invoker and overflowing cyclically — the §6.6 failure
// ingredient.
func (p *Platform) createContainer(f *bfunc) *container {
	for offset := 0; offset < len(p.nodes); offset++ {
		n := p.nodes[(f.home+offset)%len(p.nodes)]
		if !n.responsive {
			continue
		}
		if n.memCap-n.memUsed < f.spec.MemoryMiB {
			continue
		}
		c := &container{fn: f, node: n, state: idle, lastUsed: p.Engine.Now()}
		n.memUsed += f.spec.MemoryMiB
		n.containers = append(n.containers, c)
		return c
	}
	return nil
}

// dispatch runs r on c; service time stretches with the node's CPU
// oversubscription at dispatch time (containers share the node's cores).
func (p *Platform) dispatch(f *bfunc, c *container, r *request) {
	now := p.Engine.Now()
	wait := now - r.arrival
	f.Waits.AddDuration(wait)
	f.SLO.Observe(wait)
	c.state = busy
	c.req = r
	demand := c.node.busyCPUDemand()
	stretch := 1.0
	if demand > c.node.cpuCap {
		stretch = float64(demand) / float64(c.node.cpuCap)
	}
	service := time.Duration(float64(f.spec.SampleServiceTime(p.rng, 1.0)) * stretch)
	c.done = p.Engine.After(service, func() {
		c.state = idle
		c.req = nil
		c.lastUsed = p.Engine.Now()
		f.complete++
		p.pump(f)
	})
	p.checkHealth(c.node)
}

// pump serves queued requests for fn.
func (p *Platform) pump(f *bfunc) {
	for len(f.queue) > 0 {
		c := p.findIdle(f)
		if c == nil {
			c = p.createContainer(f)
		}
		if c == nil {
			return // nowhere to run; stay queued
		}
		r := f.queue[0]
		f.queue = f.queue[1:]
		p.dispatch(f, c, r)
	}
}

// arrive handles one invocation.
func (p *Platform) arrive(f *bfunc) {
	r := &request{arrival: p.Engine.Now()}
	if p.responsiveNodes() == 0 {
		f.dropped++
		return
	}
	f.queue = append(f.queue, r)
	p.pump(f)
}

func (p *Platform) responsiveNodes() int {
	n := 0
	for _, nd := range p.nodes {
		if nd.responsive {
			n++
		}
	}
	return n
}

// reapIdle terminates long-idle containers.
func (p *Platform) reapIdle() {
	if p.cfg.IdleTTL == 0 {
		return
	}
	now := p.Engine.Now()
	for _, n := range p.nodes {
		live := n.containers[:0]
		for _, c := range n.containers {
			if c.state == idle && now-c.lastUsed >= p.cfg.IdleTTL {
				n.memUsed -= c.fn.spec.MemoryMiB
				continue
			}
			live = append(live, c)
		}
		for i := len(live); i < len(n.containers); i++ {
			n.containers[i] = nil
		}
		n.containers = live
	}
}

// Result summarizes a baseline run.
type Result struct {
	Completed       map[string]uint64
	Dropped         map[string]uint64
	Hung            map[string]uint64
	Waits           map[string]*metrics.Reservoir
	SLO             map[string]*metrics.SLOTracker
	ResponsiveNodes int
	Cascaded        bool // every invoker unresponsive at some point
	FirstDeathAt    time.Duration
}

// Run drives per-function workload schedules for the given duration.
func (p *Platform) Run(schedules map[string]*workload.Schedule, duration time.Duration) (*Result, error) {
	names := make([]string, 0, len(schedules))
	for name := range schedules {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if _, ok := p.funcs[name]; !ok {
			return nil, fmt.Errorf("baseline: schedule for unregistered function %q", name)
		}
	}
	var firstDeath time.Duration
	deadAll := false
	for _, name := range p.order {
		sched, ok := schedules[name]
		if !ok {
			continue
		}
		f := p.funcs[name]
		arr := workload.NewArrivals(sched, p.rng.Fork())
		var fire func(at time.Duration)
		fire = func(at time.Duration) {
			p.Engine.Schedule(at, func() {
				p.arrive(f)
				if next, ok := arr.Next(p.Engine.Now()); ok {
					fire(next)
				}
			})
		}
		if first, ok := arr.Next(0); ok {
			fire(first)
		}
	}
	p.Engine.Every(10*time.Second, func() {
		p.reapIdle()
		if p.responsiveNodes() < len(p.nodes) && firstDeath == 0 {
			firstDeath = p.Engine.Now()
		}
		if p.responsiveNodes() == 0 {
			deadAll = true
		}
	})
	p.Engine.RunUntil(duration)
	res := &Result{
		Completed:       make(map[string]uint64),
		Dropped:         make(map[string]uint64),
		Hung:            make(map[string]uint64),
		Waits:           make(map[string]*metrics.Reservoir),
		SLO:             make(map[string]*metrics.SLOTracker),
		ResponsiveNodes: p.responsiveNodes(),
		Cascaded:        deadAll,
		FirstDeathAt:    firstDeath,
	}
	for name, f := range p.funcs {
		res.Completed[name] = f.complete
		res.Dropped[name] = f.dropped + uint64(len(f.queue)) // still stuck at end
		res.Hung[name] = f.hung
		res.Waits[name] = f.Waits
		res.SLO[name] = f.SLO
	}
	return res, nil
}
