// Package realtime runs the LaSS control plane against the wall clock: a
// small Function-as-a-Service runtime where "containers" are worker
// goroutines executing registered Go handlers, the dispatcher is the same
// weighted-round-robin FCFS queue design as the simulation's data path,
// and the identical controller code (internal/controller) estimates rates
// and reconciles pools every evaluation interval.
//
// It exists to demonstrate that the reproduction is a real platform, not
// only a simulator: cmd/lass-server exposes it over HTTP and
// examples/edgeserver drives it programmatically. CPU enforcement is
// advisory — handlers receive their container's current CPU fraction and
// are expected to self-throttle (a production deployment would use cgroup
// quotas, as the paper's Docker-based prototype does).
package realtime

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"lass/internal/cluster"
	"lass/internal/controller"
	"lass/internal/functions"
	"lass/internal/metrics"
	"lass/internal/queuing"
)

// Handler executes one invocation. The context carries the container's
// CPU fraction (CPUFraction(ctx)); implementations emulating CPU-bound
// work should scale their effort by it.
type Handler func(ctx context.Context, payload []byte) ([]byte, error)

type ctxKey int

const cpuFractionKey ctxKey = iota

// CPUFraction returns the executing container's current CPU allocation as
// a fraction of its standard size (1.0 outside a handler).
func CPUFraction(ctx context.Context) float64 {
	if v, ok := ctx.Value(cpuFractionKey).(float64); ok {
		return v
	}
	return 1
}

// invocation is one queued request.
type invocation struct {
	payload []byte
	arrived time.Duration
	done    chan result
}

type result struct {
	out []byte
	err error
}

// worker is the run-time state of one container.
type worker struct {
	c       *cluster.Container
	busy    bool
	current float64 // smooth-WRR counter
	cancel  context.CancelFunc
}

// fnState is one registered function.
type fnState struct {
	spec    functions.Spec
	handler Handler
	queue   []*invocation
	workers map[cluster.ContainerID]*worker

	waits *metrics.Reservoir
	slo   *metrics.SLOTracker
}

// Config tunes the runtime.
type Config struct {
	Cluster    cluster.Config
	Controller controller.Config
}

// Platform is the wall-clock LaSS runtime.
type Platform struct {
	mu      sync.Mutex
	cl      *cluster.Cluster
	ctl     *controller.Controller
	fns     map[string]*fnState
	origin  time.Time
	stopCh  chan struct{}
	stopped bool
	wg      sync.WaitGroup
}

// ErrStopped is returned by Invoke after Stop.
var ErrStopped = errors.New("realtime: platform stopped")

// New builds and starts the runtime; the controller begins stepping
// immediately.
//
//lass:wallclock the real-time platform serves live traffic on the machine clock.
func New(cfg Config) (*Platform, error) {
	cl, err := cluster.New(cfg.Cluster)
	if err != nil {
		return nil, err
	}
	p := &Platform{
		cl:     cl,
		fns:    make(map[string]*fnState),
		origin: time.Now(),
		stopCh: make(chan struct{}),
	}
	hooks := controller.Hooks{
		Now: func() time.Duration { return time.Since(p.origin) },
		ScheduleColdStart: func(c *cluster.Container, delay time.Duration, ready func()) {
			timer := time.AfterFunc(delay, func() {
				p.mu.Lock()
				defer p.mu.Unlock()
				ready()
			})
			_ = timer
		},
		// Hooks run with p.mu held (controller calls happen under it).
		OnReady: func(c *cluster.Container) {
			if f, ok := p.fns[c.Function]; ok {
				f.workers[c.ID] = &worker{c: c}
				p.pumpLocked(f)
			}
		},
		OnRemove: func(c *cluster.Container) {
			if f, ok := p.fns[c.Function]; ok {
				if w := f.workers[c.ID]; w != nil {
					if w.cancel != nil {
						w.cancel() // in-flight handler is cancelled
					}
					delete(f.workers, c.ID)
				}
			}
		},
		OnResize: func(c *cluster.Container) {},
	}
	ctl, err := controller.New(cfg.Controller, cl, hooks)
	if err != nil {
		return nil, err
	}
	p.ctl = ctl
	interval := ctl.Config().EvalInterval
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		for {
			select {
			case <-p.stopCh:
				return
			case <-ticker.C:
				p.mu.Lock()
				_ = p.ctl.Step()
				for _, f := range p.fns {
					p.pumpLocked(f)
				}
				p.mu.Unlock()
			}
		}
	}()
	return p, nil
}

// Register adds a function with its handler. A zero SLO uses the
// controller default.
func (p *Platform) Register(spec functions.Spec, handler Handler, slo queuing.SLO) error {
	if handler == nil {
		return fmt.Errorf("realtime: nil handler for %s", spec.Name)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	f, err := p.ctl.Register(spec, "", 0, slo)
	if err != nil {
		return err
	}
	p.fns[spec.Name] = &fnState{
		spec:    spec,
		handler: handler,
		workers: make(map[cluster.ContainerID]*worker),
		waits:   metrics.NewReservoir(),
		slo:     metrics.NewSLOTracker(f.SLO.Deadline),
	}
	return nil
}

// Provision pre-warms n containers for a function.
func (p *Platform) Provision(function string, n int) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.ctl.Provision(function, n)
}

// Invoke runs one invocation, blocking until it completes or ctx is done.
//
//lass:wallclock live-request arrival timestamps come from the machine clock.
func (p *Platform) Invoke(ctx context.Context, function string, payload []byte) ([]byte, error) {
	p.mu.Lock()
	if p.stopped {
		p.mu.Unlock()
		return nil, ErrStopped
	}
	f, ok := p.fns[function]
	if !ok {
		p.mu.Unlock()
		return nil, fmt.Errorf("realtime: unknown function %q", function)
	}
	inv := &invocation{
		payload: payload,
		arrived: time.Since(p.origin),
		done:    make(chan result, 1),
	}
	p.ctl.RecordArrival(function)
	f.queue = append(f.queue, inv)
	p.pumpLocked(f)
	p.mu.Unlock()

	select {
	case r := <-inv.done:
		return r.out, r.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// pumpLocked dispatches queued invocations to idle workers (caller holds
// p.mu).
func (p *Platform) pumpLocked(f *fnState) {
	for len(f.queue) > 0 {
		w := p.selectIdleLocked(f)
		if w == nil {
			return
		}
		inv := f.queue[0]
		f.queue = f.queue[1:]
		p.startLocked(f, w, inv)
	}
}

// selectIdleLocked is smooth WRR over idle workers, weighted by current
// CPU (identical to the simulation's data path).
func (p *Platform) selectIdleLocked(f *fnState) *worker {
	var total float64
	var best *worker
	// Live traffic: worker selection races arrivals anyway, and the
	// smooth-WRR winner is order-independent given the ID tie-break below.
	//lass:unordered
	for _, w := range f.workers {
		if w.busy || !w.c.Servable() {
			continue
		}
		wt := float64(w.c.CPUCurrent)
		w.current += wt
		total += wt
		if best == nil || w.current > best.current ||
			(w.current == best.current && w.c.ID < best.c.ID) {
			best = w
		}
	}
	if best != nil {
		best.current -= total
	}
	return best
}

//lass:wallclock live service timing and learner observations use the machine clock.
func (p *Platform) startLocked(f *fnState, w *worker, inv *invocation) {
	now := time.Since(p.origin)
	wait := now - inv.arrived
	f.waits.AddDuration(wait)
	f.slo.Observe(wait)
	w.busy = true
	frac := w.c.CPUFraction()
	ctx, cancel := context.WithCancel(context.WithValue(context.Background(), cpuFractionKey, frac))
	w.cancel = cancel
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		started := time.Now()
		out, err := f.handler(ctx, inv.payload)
		cancel()
		inv.done <- result{out: out, err: err}
		p.mu.Lock()
		w.busy = false
		w.cancel = nil
		if lf, ok := p.ctl.Function(f.spec.Name); ok {
			lf.Learner().Observe(frac, time.Since(started))
		}
		p.pumpLocked(f)
		p.mu.Unlock()
	}()
}

// Snapshot reports a function's current state.
type Snapshot struct {
	Function   string
	Containers int
	CPUMillis  int64
	QueueLen   int
	LambdaHat  float64
	Desired    int
	P95Wait    time.Duration
	Attainment float64
}

// Stats returns a snapshot for one function.
func (p *Platform) Stats(function string) (Snapshot, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	f, ok := p.fns[function]
	if !ok {
		return Snapshot{}, fmt.Errorf("realtime: unknown function %q", function)
	}
	s := Snapshot{
		Function:   function,
		Containers: len(f.workers),
		CPUMillis:  p.cl.CPUOf(function),
		QueueLen:   len(f.queue),
		P95Wait:    time.Duration(f.waits.Quantile(0.95) * float64(time.Second)),
		Attainment: f.slo.Attainment(),
	}
	if lf, ok := p.ctl.Function(function); ok {
		s.LambdaHat = lf.LambdaHat
		s.Desired = lf.Desired
	}
	return s, nil
}

// Utilization returns the cluster's current CPU allocation fraction.
func (p *Platform) Utilization() float64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.cl.CPUUtilization()
}

// Stop shuts the platform down. Queued invocations fail with ErrStopped;
// in-flight handlers are cancelled.
func (p *Platform) Stop() {
	p.mu.Lock()
	if p.stopped {
		p.mu.Unlock()
		return
	}
	p.stopped = true
	close(p.stopCh)
	for _, f := range p.fns {
		for _, inv := range f.queue {
			inv.done <- result{err: ErrStopped}
		}
		f.queue = nil
		for _, w := range f.workers {
			if w.cancel != nil {
				w.cancel()
			}
		}
	}
	p.mu.Unlock()
	p.wg.Wait()
}
