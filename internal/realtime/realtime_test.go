package realtime

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"lass/internal/cluster"
	"lass/internal/controller"
	"lass/internal/functions"
	"lass/internal/queuing"
)

// fastConfig keeps wall-clock test time low: 100ms epochs, short windows.
func fastConfig() Config {
	return Config{
		Cluster: cluster.PaperCluster(),
		Controller: controller.Config{
			EvalInterval: 100 * time.Millisecond,
			Windows: controller.DualWindowConfig{
				Short: 2 * time.Second, Long: 10 * time.Second, BurstFactor: 2,
			},
			MinContainers: 1,
		},
	}
}

func echoSpec() functions.Spec {
	s := functions.MicroBenchmark(5 * time.Millisecond)
	s.ColdStart = 10 * time.Millisecond
	return s
}

//lass:wallclock exercises the live platform in real time.
func TestInvokeEndToEnd(t *testing.T) {
	p, err := New(fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer p.Stop()
	var executed atomic.Int64
	handler := func(ctx context.Context, payload []byte) ([]byte, error) {
		executed.Add(1)
		time.Sleep(2 * time.Millisecond)
		return append([]byte("echo:"), payload...), nil
	}
	if err := p.Register(echoSpec(), handler, queuing.SLO{}); err != nil {
		t.Fatal(err)
	}
	if err := p.Provision("micro-benchmark", 2); err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond) // cold start
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	out, err := p.Invoke(ctx, "micro-benchmark", []byte("hi"))
	if err != nil {
		t.Fatal(err)
	}
	if string(out) != "echo:hi" {
		t.Errorf("out=%q", out)
	}
	if executed.Load() != 1 {
		t.Errorf("executed=%d", executed.Load())
	}
}

func TestInvokeUnknownFunction(t *testing.T) {
	p, err := New(fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer p.Stop()
	if _, err := p.Invoke(context.Background(), "ghost", nil); err == nil {
		t.Error("want error for unknown function")
	}
}

func TestRegisterValidation(t *testing.T) {
	p, err := New(fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer p.Stop()
	if err := p.Register(echoSpec(), nil, queuing.SLO{}); err == nil {
		t.Error("want error for nil handler")
	}
	h := func(ctx context.Context, b []byte) ([]byte, error) { return b, nil }
	if err := p.Register(echoSpec(), h, queuing.SLO{}); err != nil {
		t.Fatal(err)
	}
	if err := p.Register(echoSpec(), h, queuing.SLO{}); err == nil {
		t.Error("want error for duplicate registration")
	}
}

//lass:wallclock exercises the live platform in real time.
func TestConcurrentInvocationsAutoScale(t *testing.T) {
	p, err := New(fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer p.Stop()
	handler := func(ctx context.Context, payload []byte) ([]byte, error) {
		time.Sleep(3 * time.Millisecond)
		return payload, nil
	}
	if err := p.Register(echoSpec(), handler, queuing.SLO{}); err != nil {
		t.Fatal(err)
	}
	if err := p.Provision("micro-benchmark", 1); err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond)

	var wg sync.WaitGroup
	var ok atomic.Int64
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			if _, err := p.Invoke(ctx, "micro-benchmark", []byte("x")); err == nil {
				ok.Add(1)
			}
		}()
		time.Sleep(5 * time.Millisecond) // ~200 req/s offered
	}
	wg.Wait()
	if ok.Load() < 300 {
		t.Fatalf("completed=%d", ok.Load())
	}
	st, err := p.Stats("micro-benchmark")
	if err != nil {
		t.Fatal(err)
	}
	if st.LambdaHat <= 0 {
		t.Errorf("controller never estimated a rate: %+v", st)
	}
	if st.Containers < 1 {
		t.Errorf("no workers: %+v", st)
	}
	if p.Utilization() <= 0 {
		t.Error("zero utilization with live containers")
	}
}

//lass:wallclock exercises the live platform in real time.
func TestCPUFractionInContext(t *testing.T) {
	p, err := New(fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer p.Stop()
	got := make(chan float64, 1)
	handler := func(ctx context.Context, payload []byte) ([]byte, error) {
		got <- CPUFraction(ctx)
		return nil, nil
	}
	if err := p.Register(echoSpec(), handler, queuing.SLO{}); err != nil {
		t.Fatal(err)
	}
	p.Provision("micro-benchmark", 1)
	time.Sleep(50 * time.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if _, err := p.Invoke(ctx, "micro-benchmark", nil); err != nil {
		t.Fatal(err)
	}
	if f := <-got; f != 1.0 {
		t.Errorf("fraction=%v want 1.0 (standard container)", f)
	}
	if CPUFraction(context.Background()) != 1 {
		t.Error("default fraction should be 1")
	}
}

//lass:wallclock exercises the live platform in real time.
func TestStopFailsPendingInvocations(t *testing.T) {
	p, err := New(fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	handler := func(ctx context.Context, payload []byte) ([]byte, error) {
		<-ctx.Done()
		return nil, ctx.Err()
	}
	if err := p.Register(echoSpec(), handler, queuing.SLO{}); err != nil {
		t.Fatal(err)
	}
	// No containers: the invocation stays queued.
	errCh := make(chan error, 1)
	go func() {
		_, err := p.Invoke(context.Background(), "micro-benchmark", nil)
		errCh <- err
	}()
	time.Sleep(20 * time.Millisecond)
	p.Stop()
	select {
	case err := <-errCh:
		if err != ErrStopped {
			t.Errorf("err=%v want ErrStopped", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("queued invocation not released on Stop")
	}
	if _, err := p.Invoke(context.Background(), "micro-benchmark", nil); err != ErrStopped {
		t.Errorf("post-stop err=%v", err)
	}
	p.Stop() // double stop is a no-op
}

func TestStatsUnknownFunction(t *testing.T) {
	p, err := New(fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer p.Stop()
	if _, err := p.Stats("ghost"); err == nil {
		t.Error("want error")
	}
}
