package cluster

import (
	"errors"
	"testing"
	"testing/quick"

	"lass/internal/xrand"
)

func newTestCluster(t *testing.T) *Cluster {
	t.Helper()
	cl, err := New(PaperCluster())
	if err != nil {
		t.Fatal(err)
	}
	return cl
}

func TestPaperClusterShape(t *testing.T) {
	cl := newTestCluster(t)
	if len(cl.Nodes()) != 3 {
		t.Fatalf("nodes=%d", len(cl.Nodes()))
	}
	if cl.TotalCPU() != 12000 {
		t.Errorf("total CPU=%d want 12000", cl.TotalCPU())
	}
	if cl.TotalMem() != 3*16384 {
		t.Errorf("total mem=%d", cl.TotalMem())
	}
	if cl.UsedCPU() != 0 || cl.CPUUtilization() != 0 {
		t.Error("fresh cluster should be empty")
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{Nodes: 0, CPUPerNode: 1, MemPerNode: 1}); err == nil {
		t.Error("want error for zero nodes")
	}
	if _, err := New(Config{Nodes: 1, CPUPerNode: 0, MemPerNode: 1}); err == nil {
		t.Error("want error for zero CPU")
	}
}

func TestPlaceLifecycle(t *testing.T) {
	cl := newTestCluster(t)
	c, err := cl.Place("f", 1000, 512)
	if err != nil {
		t.Fatal(err)
	}
	if c.State() != Starting {
		t.Errorf("state=%v want starting", c.State())
	}
	if c.Servable() {
		t.Error("starting container should not be servable")
	}
	if cl.UsedCPU() != 1000 {
		t.Errorf("used=%d", cl.UsedCPU())
	}
	if err := cl.MarkRunning(c); err != nil {
		t.Fatal(err)
	}
	if !c.Servable() || c.State() != Running {
		t.Error("should be running")
	}
	if err := cl.MarkDraining(c); err != nil {
		t.Fatal(err)
	}
	if !c.Servable() {
		t.Error("draining container must keep serving")
	}
	if err := cl.Revive(c); err != nil {
		t.Fatal(err)
	}
	if c.State() != Running {
		t.Error("revive failed")
	}
	if err := cl.Terminate(c); err != nil {
		t.Fatal(err)
	}
	if cl.UsedCPU() != 0 || c.Alive() || c.Node() != nil {
		t.Error("terminate did not release resources")
	}
	if err := cl.Terminate(c); err == nil {
		t.Error("double terminate should error")
	}
}

func TestStateTransitionErrors(t *testing.T) {
	cl := newTestCluster(t)
	c, _ := cl.Place("f", 100, 64)
	if err := cl.MarkDraining(c); err == nil {
		t.Error("draining a starting container should error")
	}
	if err := cl.Revive(c); err == nil {
		t.Error("reviving a starting container should error")
	}
	cl.MarkRunning(c)
	if err := cl.MarkRunning(c); err == nil {
		t.Error("double MarkRunning should error")
	}
}

func TestPlaceRejectsOversized(t *testing.T) {
	cl := newTestCluster(t)
	if _, err := cl.Place("f", 5000, 64); err == nil {
		t.Error("want ErrNoCapacity for >node CPU")
	}
	var nc ErrNoCapacity
	_, err := cl.Place("f", 5000, 64)
	if !errors.As(err, &nc) {
		t.Errorf("want ErrNoCapacity, got %T", err)
	}
	if _, err := cl.Place("f", 0, 64); err == nil {
		t.Error("want error for zero CPU")
	}
}

func TestClusterFillsCompletely(t *testing.T) {
	cl := newTestCluster(t)
	// 12 x 1000mC fills the 12000mC cluster exactly.
	for i := 0; i < 12; i++ {
		if _, err := cl.Place("f", 1000, 512); err != nil {
			t.Fatalf("placement %d: %v", i, err)
		}
	}
	if cl.CPUUtilization() != 1 {
		t.Errorf("utilization=%v", cl.CPUUtilization())
	}
	if _, err := cl.Place("f", 1000, 512); err == nil {
		t.Error("13th container should not fit")
	}
	if cl.LiveContainers() != 12 {
		t.Errorf("live=%d", cl.LiveContainers())
	}
}

func TestPlacementPolicies(t *testing.T) {
	mk := func(policy PlacementPolicy) *Cluster {
		cl, err := New(Config{Nodes: 3, CPUPerNode: 4000, MemPerNode: 16384, Policy: policy})
		if err != nil {
			t.Fatal(err)
		}
		// Pre-load node 0 with 3000, node 1 with 1000, node 2 empty: done
		// via first-fit-order placements of distinct sizes.
		a, _ := cl.Place("seed", 3000, 64) // worst-fit would pick node 0 anyway (all equal)
		_ = a
		return cl
	}

	// FirstFit: next 500mC goes to node 0 (still has 1000 free).
	cl := mk(FirstFit)
	c, err := cl.Place("f", 500, 64)
	if err != nil {
		t.Fatal(err)
	}
	if c.Node().ID != 0 {
		t.Errorf("first-fit chose node %d want 0", c.Node().ID)
	}

	// BestFit: node 0 has 1000 free (smallest sufficient) -> node 0.
	cl = mk(BestFit)
	c, err = cl.Place("f", 500, 64)
	if err != nil {
		t.Fatal(err)
	}
	if c.Node().ID != 0 {
		t.Errorf("best-fit chose node %d want 0", c.Node().ID)
	}

	// WorstFit: nodes 1/2 have 4000 free -> node 1 (first of the emptiest).
	cl = mk(WorstFit)
	c, err = cl.Place("f", 500, 64)
	if err != nil {
		t.Fatal(err)
	}
	if c.Node().ID != 1 {
		t.Errorf("worst-fit chose node %d want 1", c.Node().ID)
	}
}

func TestFragmentationStandardContainerCannotFit(t *testing.T) {
	// Fig 8b's phenomenon: aggregate free CPU is sufficient but no single
	// node can host a standard container.
	cl, err := New(Config{Nodes: 3, CPUPerNode: 1000, MemPerNode: 4096, Policy: FirstFit})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := cl.Place("filler", 700, 64); err != nil {
			t.Fatal(err)
		}
	}
	// 900mC free in aggregate, 300 per node.
	if free := cl.TotalCPU() - cl.UsedCPU(); free != 900 {
		t.Fatalf("free=%d", free)
	}
	if cl.LargestFreeCPU() != 300 {
		t.Errorf("largest free block=%d", cl.LargestFreeCPU())
	}
	if _, err := cl.Place("f", 500, 64); err == nil {
		t.Error("500mC container should not fit despite 900mC aggregate free")
	}
	// But a deflated 300mC container does fit — deflation defeats
	// fragmentation (Fig 8c).
	c, err := cl.PlaceDeflated("f", 500, 300, 64)
	if err != nil {
		t.Fatal(err)
	}
	if c.CPUFraction() != 0.6 {
		t.Errorf("fraction=%v", c.CPUFraction())
	}
	if !c.Deflated() {
		t.Error("should report deflated")
	}
}

func TestPlaceDeflatedValidation(t *testing.T) {
	cl := newTestCluster(t)
	if _, err := cl.PlaceDeflated("f", 1000, 0, 64); err == nil {
		t.Error("want error for zero current CPU")
	}
	if _, err := cl.PlaceDeflated("f", 1000, 1500, 64); err == nil {
		t.Error("want error for current > standard")
	}
}

func TestResizeDeflateInflate(t *testing.T) {
	cl := newTestCluster(t)
	c, _ := cl.Place("f", 2000, 1024)
	cl.MarkRunning(c)
	if err := cl.Resize(c, 1400); err != nil {
		t.Fatal(err)
	}
	if c.CPUCurrent != 1400 || !c.Deflated() {
		t.Errorf("current=%d", c.CPUCurrent)
	}
	if cl.UsedCPU() != 1400 {
		t.Errorf("used=%d want 1400 (deflation frees CPU)", cl.UsedCPU())
	}
	// Inflate back.
	if err := cl.Resize(c, 2000); err != nil {
		t.Fatal(err)
	}
	if c.Deflated() || cl.UsedCPU() != 2000 {
		t.Error("inflation failed")
	}
	// Beyond standard: rejected.
	if err := cl.Resize(c, 2500); err == nil {
		t.Error("want error inflating beyond standard size")
	}
	if err := cl.Resize(c, 0); err == nil {
		t.Error("want error for zero size")
	}
}

func TestResizeInflateBlockedByNodeCapacity(t *testing.T) {
	cl, err := New(Config{Nodes: 1, CPUPerNode: 2000, MemPerNode: 4096, Policy: FirstFit})
	if err != nil {
		t.Fatal(err)
	}
	a, _ := cl.Place("a", 1500, 64)
	cl.Resize(a, 800) // deflate to free 700
	b, _ := cl.Place("b", 1200, 64)
	_ = b
	// Node now 800+1200=2000 used; inflating a back needs 700 free.
	if err := cl.Resize(a, 1500); err == nil {
		t.Error("inflation should fail without node headroom")
	}
}

func TestTerminateFreesCurrentNotStandard(t *testing.T) {
	cl := newTestCluster(t)
	c, _ := cl.Place("f", 2000, 1024)
	cl.Resize(c, 1000)
	used := cl.UsedCPU()
	cl.Terminate(c)
	if cl.UsedCPU() != used-1000 {
		t.Errorf("terminate freed %d want 1000", used-cl.UsedCPU())
	}
}

func TestContainersOfAndCPUOf(t *testing.T) {
	cl := newTestCluster(t)
	cl.Place("a", 1000, 512)
	cl.Place("b", 500, 256)
	c3, _ := cl.Place("a", 1000, 512)
	cl.Resize(c3, 600)
	if got := len(cl.ContainersOf("a")); got != 2 {
		t.Errorf("a has %d containers", got)
	}
	if got := cl.CPUOf("a"); got != 1600 {
		t.Errorf("a CPU=%d want 1600", got)
	}
	if got := cl.CPUOf("b"); got != 500 {
		t.Errorf("b CPU=%d", got)
	}
	if got := cl.CPUOf("none"); got != 0 {
		t.Errorf("unknown function CPU=%d", got)
	}
	fns := cl.Functions()
	if len(fns) != 2 || fns[0] != "a" || fns[1] != "b" {
		t.Errorf("functions=%v", fns)
	}
	cl.Terminate(c3)
	if got := cl.CPUOf("a"); got != 1000 {
		t.Errorf("after terminate a CPU=%d", got)
	}
}

func TestContainersOfIDOrder(t *testing.T) {
	cl := newTestCluster(t)
	for i := 0; i < 5; i++ {
		cl.Place("f", 100, 64)
	}
	cs := cl.ContainersOf("f")
	for i := 1; i < len(cs); i++ {
		if cs[i].ID <= cs[i-1].ID {
			t.Fatal("not in ID order")
		}
	}
}

func TestQuickResourceConservation(t *testing.T) {
	// Invariant: node used counters always equal the sum of their
	// containers' current sizes, never exceed capacity, never go negative.
	rng := xrand.New(2024)
	f := func(ops uint8) bool {
		cl, err := New(Config{Nodes: 3, CPUPerNode: 4000, MemPerNode: 8192, Policy: PlacementPolicy(rng.Intn(3))})
		if err != nil {
			return false
		}
		var live []*Container
		for i := 0; i < int(ops); i++ {
			switch rng.Intn(4) {
			case 0: // place
				cpu := int64(rng.Intn(2000) + 100)
				c, err := cl.Place("f", cpu, int64(rng.Intn(512)+64))
				if err == nil {
					live = append(live, c)
				}
			case 1: // terminate
				if len(live) > 0 {
					i := rng.Intn(len(live))
					cl.Terminate(live[i])
					live = append(live[:i], live[i+1:]...)
				}
			case 2: // deflate
				if len(live) > 0 {
					c := live[rng.Intn(len(live))]
					newCPU := c.CPUCurrent * int64(rng.Intn(50)+50) / 100
					if newCPU > 0 {
						cl.Resize(c, newCPU)
					}
				}
			case 3: // inflate toward standard
				if len(live) > 0 {
					c := live[rng.Intn(len(live))]
					cl.Resize(c, c.CPUStandard) // may fail; fine
				}
			}
		}
		var sumContainers int64
		for _, n := range cl.Nodes() {
			var nodeSum int64
			for _, c := range n.Containers() {
				nodeSum += c.CPUCurrent
			}
			if nodeSum != n.CPUUsed() {
				return false
			}
			if n.CPUUsed() < 0 || n.CPUUsed() > n.CPUCapacity {
				return false
			}
			if n.MemUsed() < 0 || n.MemUsed() > n.MemCapacity {
				return false
			}
			sumContainers += nodeSum
		}
		return sumContainers == cl.UsedCPU()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestStateStrings(t *testing.T) {
	if Starting.String() != "starting" || Running.String() != "running" ||
		Draining.String() != "draining" || Terminated.String() != "terminated" {
		t.Error("state strings wrong")
	}
	if FirstFit.String() != "first-fit" || BestFit.String() != "best-fit" || WorstFit.String() != "worst-fit" {
		t.Error("policy strings wrong")
	}
}
