// Package cluster is the edge-cluster substrate: worker nodes with finite
// CPU/memory capacity hosting function containers that can be created,
// terminated, and — the mechanism behind LaSS's deflation policy — resized
// in place.
//
// It substitutes for the paper's 3-node OpenWhisk/Docker testbed (§6.1,
// DESIGN.md §1). The package is pure resource accounting and lifecycle
// state: time (cold starts) and request flow live in the platform and
// dispatch layers, so the same cluster code serves both the discrete-event
// simulation and the wall-clock runtime.
package cluster

import (
	"fmt"
	"slices"
	"sort"
)

// State is the lifecycle state of a container.
type State int

const (
	// Starting means the container was placed but is still cold-starting
	// and cannot serve requests yet.
	Starting State = iota
	// Running means the container is serving requests.
	Running
	// Draining means the container is marked for lazy termination (§3.3:
	// "containers marked for termination are reclaimed in a lazy fashion
	// and only when needed"). It continues to serve requests and can be
	// revived if load rises again.
	Draining
	// Terminated means the container's resources have been reclaimed.
	Terminated
)

// String returns the state name.
func (s State) String() string {
	switch s {
	case Starting:
		return "starting"
	case Running:
		return "running"
	case Draining:
		return "draining"
	case Terminated:
		return "terminated"
	}
	return fmt.Sprintf("state(%d)", int(s))
}

// ContainerID uniquely identifies a container within a Cluster.
type ContainerID uint64

// Container is one function instance. CPU is in millicores; a container
// created at CPUStandard can be deflated down (and re-inflated up to, but
// never beyond, its standard size). Memory is fixed for the container's
// lifetime: the prototype deliberately implements CPU-only deflation
// because shrinking memory can OOM-kill the function (§5).
type Container struct {
	ID          ContainerID
	Function    string
	CPUStandard int64
	CPUCurrent  int64
	MemoryMiB   int64

	node  *Node
	state State
}

// State returns the container's lifecycle state.
func (c *Container) State() State { return c.state }

// Node returns the node hosting the container (nil once terminated).
func (c *Container) Node() *Node { return c.node }

// CPUFraction returns CPUCurrent/CPUStandard, the input to the
// service-degradation model.
func (c *Container) CPUFraction() float64 {
	return float64(c.CPUCurrent) / float64(c.CPUStandard)
}

// Deflated reports whether the container currently runs below its standard
// CPU size.
func (c *Container) Deflated() bool { return c.CPUCurrent < c.CPUStandard }

// Alive reports whether the container still occupies resources
// (any state except Terminated).
func (c *Container) Alive() bool { return c.state != Terminated }

// Servable reports whether the container can accept requests
// (Running or Draining).
func (c *Container) Servable() bool { return c.state == Running || c.state == Draining }

// Node is one edge server.
type Node struct {
	ID          int
	CPUCapacity int64 // millicores
	MemCapacity int64 // MiB

	cpuUsed    int64
	memUsed    int64
	containers map[ContainerID]*Container
}

// CPUFree returns unallocated CPU millicores on the node.
func (n *Node) CPUFree() int64 { return n.CPUCapacity - n.cpuUsed }

// MemFree returns unallocated memory MiB on the node.
func (n *Node) MemFree() int64 { return n.MemCapacity - n.memUsed }

// CPUUsed returns allocated CPU millicores.
func (n *Node) CPUUsed() int64 { return n.cpuUsed }

// MemUsed returns allocated memory MiB.
func (n *Node) MemUsed() int64 { return n.memUsed }

// Containers returns the live containers on the node in ID order.
func (n *Node) Containers() []*Container {
	out := make([]*Container, 0, len(n.containers))
	for _, c := range n.containers {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Fits reports whether a container of the given size can be placed.
func (n *Node) Fits(cpu, mem int64) bool {
	return n.CPUFree() >= cpu && n.MemFree() >= mem
}

// PlacementPolicy selects which node receives a new container.
type PlacementPolicy int

const (
	// FirstFit places on the lowest-numbered node with room.
	FirstFit PlacementPolicy = iota
	// BestFit places on the node whose free CPU is smallest but
	// sufficient, concentrating fragmentation.
	BestFit
	// WorstFit places on the node with the most free CPU, spreading load.
	WorstFit
)

// String returns the policy name.
func (p PlacementPolicy) String() string {
	switch p {
	case FirstFit:
		return "first-fit"
	case BestFit:
		return "best-fit"
	case WorstFit:
		return "worst-fit"
	}
	return fmt.Sprintf("policy(%d)", int(p))
}

// Cluster is a set of nodes with a placement policy.
type Cluster struct {
	site   string
	nodes  []*Node
	policy PlacementPolicy
	nextID ContainerID
	byFunc map[string]map[ContainerID]*Container
}

// Config describes a cluster to build.
type Config struct {
	// Site names the deployment this cluster belongs to. A single-cluster
	// run can leave it empty; the federation layer names each edge site so
	// placement decisions and results are attributable.
	Site       string
	Nodes      int
	CPUPerNode int64 // millicores
	MemPerNode int64 // MiB
	Policy     PlacementPolicy
}

// PaperCluster returns the evaluation testbed of §6.1: 3 nodes, 4 cores
// (4000 millicores) and 16 GiB each.
func PaperCluster() Config {
	return Config{Nodes: 3, CPUPerNode: 4000, MemPerNode: 16384, Policy: WorstFit}
}

// New builds a cluster.
func New(cfg Config) (*Cluster, error) {
	if cfg.Nodes < 1 {
		return nil, fmt.Errorf("cluster: need at least one node, got %d", cfg.Nodes)
	}
	if cfg.CPUPerNode <= 0 || cfg.MemPerNode <= 0 {
		return nil, fmt.Errorf("cluster: non-positive node capacity (%d mC, %d MiB)", cfg.CPUPerNode, cfg.MemPerNode)
	}
	c := &Cluster{site: cfg.Site, policy: cfg.Policy, byFunc: make(map[string]map[ContainerID]*Container)}
	for i := 0; i < cfg.Nodes; i++ {
		c.nodes = append(c.nodes, &Node{
			ID:          i,
			CPUCapacity: cfg.CPUPerNode,
			MemCapacity: cfg.MemPerNode,
			containers:  make(map[ContainerID]*Container),
		})
	}
	return c, nil
}

// Site returns the name of the deployment site this cluster belongs to
// ("" for a standalone single-cluster run).
func (cl *Cluster) Site() string { return cl.site }

// Nodes returns the cluster's nodes.
func (cl *Cluster) Nodes() []*Node { return cl.nodes }

// TotalCPU returns aggregate CPU capacity in millicores.
func (cl *Cluster) TotalCPU() int64 {
	var t int64
	for _, n := range cl.nodes {
		t += n.CPUCapacity
	}
	return t
}

// UsedCPU returns aggregate allocated CPU in millicores.
func (cl *Cluster) UsedCPU() int64 {
	var t int64
	for _, n := range cl.nodes {
		t += n.cpuUsed
	}
	return t
}

// TotalMem returns aggregate memory capacity in MiB.
func (cl *Cluster) TotalMem() int64 {
	var t int64
	for _, n := range cl.nodes {
		t += n.MemCapacity
	}
	return t
}

// CPUUtilization returns UsedCPU/TotalCPU in [0,1] — the "system
// utilization" metric of Figs 8 and 9.
func (cl *Cluster) CPUUtilization() float64 {
	return float64(cl.UsedCPU()) / float64(cl.TotalCPU())
}

// LargestFreeCPU returns the largest contiguous free CPU block (the most
// free CPU on any single node): whether a standard container "fits" is a
// per-node question, which is exactly the fragmentation the termination
// policy suffers from in Fig 8b.
func (cl *Cluster) LargestFreeCPU() int64 {
	var m int64
	for _, n := range cl.nodes {
		if f := n.CPUFree(); f > m {
			m = f
		}
	}
	return m
}

// selectNode applies the placement policy; nil when nothing fits.
func (cl *Cluster) selectNode(cpu, mem int64) *Node {
	var chosen *Node
	for _, n := range cl.nodes {
		if !n.Fits(cpu, mem) {
			continue
		}
		switch cl.policy {
		case FirstFit:
			return n
		case BestFit:
			if chosen == nil || n.CPUFree() < chosen.CPUFree() {
				chosen = n
			}
		case WorstFit:
			if chosen == nil || n.CPUFree() > chosen.CPUFree() {
				chosen = n
			}
		}
	}
	return chosen
}

// ErrNoCapacity is returned by Place when no node can host the container.
type ErrNoCapacity struct {
	CPU, Mem int64
}

func (e ErrNoCapacity) Error() string {
	return fmt.Sprintf("cluster: no node fits container (%d mC, %d MiB)", e.CPU, e.Mem)
}

// Place creates a container of the given size for the function, in
// Starting state, on a node chosen by the placement policy.
func (cl *Cluster) Place(function string, cpu, mem int64) (*Container, error) {
	if cpu <= 0 || mem <= 0 {
		return nil, fmt.Errorf("cluster: invalid container size (%d mC, %d MiB)", cpu, mem)
	}
	n := cl.selectNode(cpu, mem)
	if n == nil {
		return nil, ErrNoCapacity{CPU: cpu, Mem: mem}
	}
	cl.nextID++
	c := &Container{
		ID:          cl.nextID,
		Function:    function,
		CPUStandard: cpu,
		CPUCurrent:  cpu,
		MemoryMiB:   mem,
		node:        n,
		state:       Starting,
	}
	n.cpuUsed += cpu
	n.memUsed += mem
	n.containers[c.ID] = c
	fn := cl.byFunc[function]
	if fn == nil {
		fn = make(map[ContainerID]*Container)
		cl.byFunc[function] = fn
	}
	fn[c.ID] = c
	return c, nil
}

// PlaceDeflated creates a container already running below its standard
// size: the deflation policy does this when only a fragment of capacity is
// available but a smaller container is still worth creating.
func (cl *Cluster) PlaceDeflated(function string, cpuStandard, cpuCurrent, mem int64) (*Container, error) {
	if cpuCurrent <= 0 || cpuCurrent > cpuStandard {
		return nil, fmt.Errorf("cluster: deflated size %d out of (0,%d]", cpuCurrent, cpuStandard)
	}
	n := cl.selectNode(cpuCurrent, mem)
	if n == nil {
		return nil, ErrNoCapacity{CPU: cpuCurrent, Mem: mem}
	}
	cl.nextID++
	c := &Container{
		ID:          cl.nextID,
		Function:    function,
		CPUStandard: cpuStandard,
		CPUCurrent:  cpuCurrent,
		MemoryMiB:   mem,
		node:        n,
		state:       Starting,
	}
	n.cpuUsed += cpuCurrent
	n.memUsed += mem
	n.containers[c.ID] = c
	fn := cl.byFunc[function]
	if fn == nil {
		fn = make(map[ContainerID]*Container)
		cl.byFunc[function] = fn
	}
	fn[c.ID] = c
	return c, nil
}

// MarkRunning transitions a Starting container to Running (cold start
// complete).
func (cl *Cluster) MarkRunning(c *Container) error {
	if c.state != Starting {
		return fmt.Errorf("cluster: container %d is %v, not starting", c.ID, c.state)
	}
	c.state = Running
	return nil
}

// MarkDraining marks a Running container for lazy termination.
func (cl *Cluster) MarkDraining(c *Container) error {
	if c.state != Running {
		return fmt.Errorf("cluster: container %d is %v, not running", c.ID, c.state)
	}
	c.state = Draining
	return nil
}

// Revive returns a Draining container to Running (load rose again before
// the lazy reclaim fired, §3.3: "allows them to be reused").
func (cl *Cluster) Revive(c *Container) error {
	if c.state != Draining {
		return fmt.Errorf("cluster: container %d is %v, not draining", c.ID, c.state)
	}
	c.state = Running
	return nil
}

// Terminate reclaims the container's resources immediately.
func (cl *Cluster) Terminate(c *Container) error {
	if c.state == Terminated {
		return fmt.Errorf("cluster: container %d already terminated", c.ID)
	}
	n := c.node
	n.cpuUsed -= c.CPUCurrent
	n.memUsed -= c.MemoryMiB
	delete(n.containers, c.ID)
	delete(cl.byFunc[c.Function], c.ID)
	c.state = Terminated
	c.node = nil
	return nil
}

// Resize changes the container's CPU allocation in place — deflation when
// newCPU < CPUCurrent, inflation when above. Inflation is bounded by the
// standard size and by the node's free CPU.
func (cl *Cluster) Resize(c *Container, newCPU int64) error {
	if c.state == Terminated {
		return fmt.Errorf("cluster: container %d is terminated", c.ID)
	}
	if newCPU <= 0 {
		return fmt.Errorf("cluster: resize to non-positive CPU %d", newCPU)
	}
	if newCPU > c.CPUStandard {
		return fmt.Errorf("cluster: resize %d above standard size %d", newCPU, c.CPUStandard)
	}
	delta := newCPU - c.CPUCurrent
	if delta > c.node.CPUFree() {
		return fmt.Errorf("cluster: node %d lacks %d mC to inflate container %d", c.node.ID, delta, c.ID)
	}
	c.node.cpuUsed += delta
	c.CPUCurrent = newCPU
	return nil
}

// ContainersOf returns the live containers of a function in ID order.
func (cl *Cluster) ContainersOf(function string) []*Container {
	return cl.AppendContainersOf(function, make([]*Container, 0, len(cl.byFunc[function])))
}

// AppendContainersOf appends the live containers of a function to dst in
// ID order and returns the extended slice, allocating only when dst lacks
// capacity. Hot-path callers pass a reused scratch buffer (dst[:0]) to
// keep the per-epoch reconcile loops allocation-free; the appended run is
// sorted on its own, so dst may already hold unrelated entries.
func (cl *Cluster) AppendContainersOf(function string, dst []*Container) []*Container {
	start := len(dst)
	for _, c := range cl.byFunc[function] {
		dst = append(dst, c)
	}
	tail := dst[start:]
	slices.SortFunc(tail, func(a, b *Container) int {
		switch {
		case a.ID < b.ID:
			return -1
		case a.ID > b.ID:
			return 1
		}
		return 0
	})
	return dst
}

// EachContainerOf calls f for every live container of a function without
// allocating. Iteration order is unspecified (it walks the internal map),
// so callers must fold order-independent aggregates — anything
// order-sensitive should use ContainersOf, which sorts by ID.
func (cl *Cluster) EachContainerOf(function string, f func(*Container)) {
	for _, c := range cl.byFunc[function] {
		f(c)
	}
}

// CPUOf returns the aggregate current CPU allocated to a function.
func (cl *Cluster) CPUOf(function string) int64 {
	var t int64
	for _, c := range cl.byFunc[function] {
		t += c.CPUCurrent
	}
	return t
}

// Functions returns the names of functions with live containers, sorted.
func (cl *Cluster) Functions() []string {
	out := make([]string, 0, len(cl.byFunc))
	for f, m := range cl.byFunc {
		if len(m) > 0 {
			out = append(out, f)
		}
	}
	sort.Strings(out)
	return out
}

// LiveContainers returns the total number of live containers.
func (cl *Cluster) LiveContainers() int {
	t := 0
	for _, n := range cl.nodes {
		t += len(n.containers)
	}
	return t
}
