package allocation

import (
	"fmt"
	"sort"
	"testing"

	"lass/internal/fairshare"
	"lass/internal/xrand"
)

// referenceAllocate is the pre-Allocator one-shot implementation, frozen
// verbatim: every epoch rebuilds every map, subtree, and sorted slice from
// scratch. The incremental Allocator must reproduce its output bit-for-bit
// across arbitrary epoch sequences — that is the contract the differential
// fuzz below enforces.
func referenceAllocate(sites []SiteDemand, capped bool) (*Result, error) {
	if err := validate(sites); err != nil {
		return nil, err
	}
	res := &Result{}
	for _, s := range sites {
		res.TotalCapacityCPU += s.CapacityCPU
		for _, fd := range s.Functions {
			res.TotalDesiredCPU += fd.DesiredCPU
		}
	}

	// Pass 1 — entitlement: capped water-filling over the federation's
	// total edge capacity, site → user → function.
	root := &fairshare.Node{ID: "::federation"}
	for _, s := range sites {
		w := s.Weight
		if w == 0 {
			w = 1
		}
		root.Children = append(root.Children, subtree(s, "site:"+s.Site, w, nil))
	}
	entitled, err := fairshare.AllocateTree(root, res.TotalCapacityCPU, capped)
	if err != nil {
		return nil, err
	}

	// Pass 2 — feasibility: clamp each site's enforceable grants to its
	// physical capacity.
	granted := make(map[string]map[string]int64, len(sites))
	spare := make(map[string]int64, len(sites))
	for _, s := range sites {
		id := "site:" + s.Site
		want := make(map[string]int64, len(s.Functions))
		for _, fd := range s.Functions {
			e := entitled[id+"/"+fd.Name]
			if e > fd.DesiredCPU {
				e = fd.DesiredCPU
			}
			want[fd.Name] = e
		}
		g, err := fairshare.AllocateTree(subtree(s, id, 1, want), s.CapacityCPU, capped)
		if err != nil {
			return nil, err
		}
		siteGrant := make(map[string]int64, len(s.Functions))
		var sum int64
		for _, fd := range s.Functions {
			siteGrant[fd.Name] = g[id+"/"+fd.Name]
			sum += siteGrant[fd.Name]
		}
		granted[s.Site] = siteGrant
		spare[s.Site] = s.CapacityCPU - sum
	}

	// Pass 3 — spreading.
	type spreadDemand struct {
		fn     string
		need   int64
		weight float64
	}
	overflowOf := make(map[string]*spreadDemand)
	var overflow []*spreadDemand
	for _, s := range sites {
		id := "site:" + s.Site
		for _, fd := range s.Functions {
			e := entitled[id+"/"+fd.Name]
			if e > fd.DesiredCPU {
				e = fd.DesiredCPU
			}
			if miss := e - granted[s.Site][fd.Name]; miss > 0 {
				d := overflowOf[fd.Name]
				if d == nil {
					d = &spreadDemand{fn: fd.Name, weight: fd.Weight}
					overflowOf[fd.Name] = d
					overflow = append(overflow, d)
				}
				d.need += miss
				if fd.Weight > d.weight {
					d.weight = fd.Weight
				}
			}
		}
	}
	sort.Slice(overflow, func(i, j int) bool {
		if overflow[i].weight != overflow[j].weight {
			return overflow[i].weight > overflow[j].weight
		}
		return overflow[i].fn < overflow[j].fn
	})
	type host struct {
		site  string
		spare int64
		order int
	}
	hostsOf := func(fn string) ([]host, int64) {
		var hosts []host
		var total int64
		for i, s := range sites {
			if spare[s.Site] <= 0 {
				continue
			}
			for _, fd := range s.Functions {
				if fd.Name == fn {
					hosts = append(hosts, host{s.Site, spare[s.Site], i})
					total += spare[s.Site]
					break
				}
			}
		}
		sort.Slice(hosts, func(i, j int) bool {
			if hosts[i].spare != hosts[j].spare {
				return hosts[i].spare > hosts[j].spare
			}
			return hosts[i].order < hosts[j].order
		})
		return hosts, total
	}
	for {
		var demands []fairshare.Demand
		var pool int64
		inPool := make(map[string]bool)
		for _, d := range overflow {
			if d.need <= 0 {
				continue
			}
			hosts, hostSpare := hostsOf(d.fn)
			if hostSpare == 0 {
				continue
			}
			want := d.need
			if want > hostSpare {
				want = hostSpare
			}
			demands = append(demands, fairshare.Demand{ID: d.fn, Weight: d.weight, Desired: want})
			for _, h := range hosts {
				if !inPool[h.site] {
					inPool[h.site] = true
					pool += spare[h.site]
				}
			}
		}
		if len(demands) == 0 {
			break
		}
		allocs, err := fairshare.AdjustCapped(demands, pool)
		if err != nil {
			return nil, err
		}
		progress := false
		for _, a := range allocs {
			hosts, hostSpare := hostsOf(a.ID)
			amount := a.Adjusted
			if amount > hostSpare {
				amount = hostSpare
			}
			if amount <= 0 {
				continue
			}
			rem := amount
			for _, h := range hosts {
				take := amount * h.spare / hostSpare
				granted[h.site][a.ID] += take
				spare[h.site] -= take
				rem -= take
			}
			for _, h := range hosts {
				if rem == 0 {
					break
				}
				take := spare[h.site]
				if take > rem {
					take = rem
				}
				if take > 0 {
					granted[h.site][a.ID] += take
					spare[h.site] -= take
					rem -= take
				}
			}
			overflowOf[a.ID].need -= amount
			progress = true
		}
		if !progress {
			break
		}
	}

	var totalSpare, totalUnmet int64
	perFnDesired := make(map[string]int64)
	perFnGranted := make(map[string]int64)
	for _, s := range sites {
		totalSpare += spare[s.Site]
		for _, fd := range s.Functions {
			perFnDesired[fd.Name] += fd.DesiredCPU
			perFnGranted[fd.Name] += granted[s.Site][fd.Name]
		}
	}
	for fn, d := range perFnDesired {
		if miss := d - perFnGranted[fn]; miss > 0 {
			totalUnmet += miss
		}
	}
	res.StrandedCPU = totalSpare
	if totalUnmet < totalSpare {
		res.StrandedCPU = totalUnmet
	}

	for _, s := range sites {
		id := "site:" + s.Site
		local, err := fairshare.AllocateTree(subtree(s, id, 1, nil), s.CapacityCPU, capped)
		if err != nil {
			return nil, err
		}
		for _, fd := range s.Functions {
			d := granted[s.Site][fd.Name] - local[id+"/"+fd.Name]
			if d < 0 {
				d = -d
			}
			res.DriftCPU += d
		}
	}

	for _, s := range sites {
		id := "site:" + s.Site
		for _, fd := range s.Functions {
			res.Grants = append(res.Grants, Grant{
				Site:        s.Site,
				Function:    fd.Name,
				DesiredCPU:  fd.DesiredCPU,
				EntitledCPU: entitled[id+"/"+fd.Name],
				GrantedCPU:  granted[s.Site][fd.Name],
			})
		}
	}
	return res, nil
}

func diffResults(want, got *Result) string {
	if want.TotalCapacityCPU != got.TotalCapacityCPU || want.TotalDesiredCPU != got.TotalDesiredCPU ||
		want.StrandedCPU != got.StrandedCPU || want.DriftCPU != got.DriftCPU {
		return fmt.Sprintf("summary mismatch: want cap=%d des=%d stranded=%d drift=%d, got cap=%d des=%d stranded=%d drift=%d",
			want.TotalCapacityCPU, want.TotalDesiredCPU, want.StrandedCPU, want.DriftCPU,
			got.TotalCapacityCPU, got.TotalDesiredCPU, got.StrandedCPU, got.DriftCPU)
	}
	if len(want.Grants) != len(got.Grants) {
		return fmt.Sprintf("grant count mismatch: want %d, got %d", len(want.Grants), len(got.Grants))
	}
	for i := range want.Grants {
		if want.Grants[i] != got.Grants[i] {
			return fmt.Sprintf("grant %d mismatch: want %+v, got %+v", i, want.Grants[i], got.Grants[i])
		}
	}
	return ""
}

// fuzzFederation generates a random valid federation: sites drawing
// functions from a shared pool (so the spread pass has cross-site hosts),
// occasional user namespaces, per-site weight disagreements, zero desires,
// and zero-capacity sites.
func fuzzFederation(rng *xrand.Rand) []SiteDemand {
	fnPool := []string{"auth", "encode", "infer", "ocr", "resize", "translate"}
	n := 2 + rng.Intn(9)
	sites := make([]SiteDemand, 0, n)
	for i := 0; i < n; i++ {
		s := SiteDemand{
			Site:        fmt.Sprintf("s%02d", i),
			Weight:      float64(rng.Intn(4)), // 0 means "default 1"
			CapacityCPU: int64(rng.Intn(6)) * 1000,
		}
		k := 1 + rng.Intn(len(fnPool))
		for f := 0; f < k; f++ {
			fd := FunctionDemand{
				Name:       fnPool[f],
				Weight:     0.5 + float64(rng.Intn(8))/2,
				DesiredCPU: int64(rng.Intn(7)) * 500,
			}
			if rng.Intn(3) == 0 {
				fd.User = fmt.Sprintf("u%d", rng.Intn(2))
				fd.UserWeight = float64(rng.Intn(3))
			}
			s.Functions = append(s.Functions, fd)
		}
		sites = append(sites, s)
	}
	return sites
}

// mutate evolves the federation between epochs: often nothing changes (the
// steady state the fast path serves), otherwise a random subset of sites
// shifts demand, sites appear/disappear/reorder, or the input is made
// invalid to exercise error parity and cache invalidation.
func mutate(rng *xrand.Rand, sites []SiteDemand) []SiteDemand {
	switch rng.Intn(10) {
	case 0, 1, 2: // steady state: nothing changes
		return sites
	case 3: // full regeneration
		return fuzzFederation(rng)
	case 4: // reorder sites without touching content
		if len(sites) > 1 {
			i, j := rng.Intn(len(sites)), rng.Intn(len(sites))
			sites[i], sites[j] = sites[j], sites[i]
		}
		return sites
	case 5: // drop a site
		if len(sites) > 1 {
			i := rng.Intn(len(sites))
			sites = append(sites[:i], sites[i+1:]...)
		}
		return sites
	case 6: // invalid input: negative desire on a random function
		i := rng.Intn(len(sites))
		if len(sites[i].Functions) > 0 {
			sites[i].Functions[rng.Intn(len(sites[i].Functions))].DesiredCPU = -1
		}
		return sites
	default: // shift demand at a random subset of sites
		k := 1 + rng.Intn(len(sites))
		for m := 0; m < k; m++ {
			i := rng.Intn(len(sites))
			s := &sites[i]
			if len(s.Functions) == 0 {
				continue
			}
			j := rng.Intn(len(s.Functions))
			s.Functions[j].DesiredCPU = int64(rng.Intn(7)) * 500
			if rng.Intn(4) == 0 {
				s.CapacityCPU = int64(rng.Intn(6)) * 1000
			}
		}
		return sites
	}
}

func cloneSites(sites []SiteDemand) []SiteDemand {
	out := make([]SiteDemand, len(sites))
	for i, s := range sites {
		out[i] = s
		out[i].Functions = append([]FunctionDemand(nil), s.Functions...)
	}
	return out
}

// TestAllocatorMatchesReferenceFuzz replays randomized epoch sequences —
// steady states, partial demand shifts, site churn, reorders, capped-flag
// flips, and invalid inputs — through four implementations that must agree
// exactly: the frozen reference, the one-shot Allocate, an incremental
// serial Allocator, and an incremental parallel Allocator.
func TestAllocatorMatchesReferenceFuzz(t *testing.T) {
	for seed := uint64(1); seed <= 8; seed++ {
		rng := xrand.New(seed)
		sites := fuzzFederation(rng)
		serial := NewAllocator()
		par := NewAllocator()
		par.Workers = 8
		capped := true
		for epoch := 0; epoch < 40; epoch++ {
			sites = mutate(rng, sites)
			if rng.Intn(12) == 0 {
				capped = !capped
			}
			// The Allocator may retain references into its own copies but
			// must never depend on the caller's backing arrays staying
			// alive or unchanged; hand each implementation the same values
			// through an independent clone to prove it.
			want, wantErr := referenceAllocate(cloneSites(sites), capped)
			oneshot, oneErr := Allocate(cloneSites(sites), capped)
			gotS, serErr := serial.Allocate(cloneSites(sites), capped)
			gotP, parErr := par.Allocate(cloneSites(sites), capped)
			for _, impl := range []struct {
				name string
				err  error
			}{{"oneshot", oneErr}, {"serial", serErr}, {"parallel", parErr}} {
				if (wantErr == nil) != (impl.err == nil) {
					t.Fatalf("seed %d epoch %d: %s error %v, reference error %v", seed, epoch, impl.name, impl.err, wantErr)
				}
				if wantErr != nil && impl.err.Error() != wantErr.Error() {
					t.Fatalf("seed %d epoch %d: %s error %q, reference %q", seed, epoch, impl.name, impl.err, wantErr)
				}
			}
			if wantErr != nil {
				// The invalid epoch invalidated every cache; restart from a
				// fresh valid federation so later epochs stay interesting.
				sites = fuzzFederation(rng)
				continue
			}
			if d := diffResults(want, oneshot); d != "" {
				t.Fatalf("seed %d epoch %d: one-shot diverged: %s", seed, epoch, d)
			}
			if d := diffResults(want, gotS); d != "" {
				t.Fatalf("seed %d epoch %d: incremental serial diverged: %s", seed, epoch, d)
			}
			if d := diffResults(want, gotP); d != "" {
				t.Fatalf("seed %d epoch %d: incremental parallel diverged: %s", seed, epoch, d)
			}
		}
	}
}

// TestAllocatorParallelMatchesSerial drives a wide all-dirty federation —
// every epoch every site changes, so every pass-2 clamp reruns — through
// worker counts 1, 2, and 8. The committed output must be identical: the
// pool only reorders wall-clock, never results.
func TestAllocatorParallelMatchesSerial(t *testing.T) {
	rng := xrand.New(42)
	allocs := []*Allocator{NewAllocator(), NewAllocator(), NewAllocator()}
	allocs[1].Workers = 2
	allocs[2].Workers = 8
	sites := fuzzFederation(rng)
	for epoch := 0; epoch < 20; epoch++ {
		for i := range sites {
			for j := range sites[i].Functions {
				sites[i].Functions[j].DesiredCPU = int64(rng.Intn(7)) * 500
			}
		}
		want, err := allocs[0].Allocate(cloneSites(sites), true)
		if err != nil {
			t.Fatalf("epoch %d: serial: %v", epoch, err)
		}
		for k, a := range allocs[1:] {
			got, err := a.Allocate(cloneSites(sites), true)
			if err != nil {
				t.Fatalf("epoch %d: workers=%d: %v", epoch, a.Workers, err)
			}
			if d := diffResults(want, got); d != "" {
				t.Fatalf("epoch %d: workers=%d diverged from serial: %s (k=%d)", epoch, a.Workers, d, k)
			}
		}
	}
}

// TestAllocatorSteadyStateZeroAllocs is the perf contract the federation
// epoch loop relies on: when no site's demand report changed since the last
// epoch, Allocate performs zero heap allocations.
func TestAllocatorSteadyStateZeroAllocs(t *testing.T) {
	rng := xrand.New(7)
	sites := fuzzFederation(rng)
	a := NewAllocator()
	a.Workers = 8
	if _, err := a.Allocate(sites, true); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		res, err := a.Allocate(sites, true)
		if err != nil {
			panic(err)
		}
		if res == nil {
			panic("nil result")
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state Allocate allocated %.1f times per epoch; want 0", allocs)
	}
}
