package allocation

import (
	"testing"
)

func grantOf(t *testing.T, res *Result, site, fn string) Grant {
	t.Helper()
	for _, g := range res.Grants {
		if g.Site == site && g.Function == fn {
			return g
		}
	}
	t.Fatalf("no grant for %s/%s", site, fn)
	return Grant{}
}

// A federation with no pressure anywhere grants every desire, drifts
// nothing, and strands nothing.
func TestAllocateNoPressure(t *testing.T) {
	sites := []SiteDemand{
		{Site: "a", CapacityCPU: 4000, Functions: []FunctionDemand{
			{Name: "f", Weight: 1, DesiredCPU: 2000},
			{Name: "g", Weight: 1, DesiredCPU: 1000},
		}},
		{Site: "b", CapacityCPU: 4000, Functions: []FunctionDemand{
			{Name: "f", Weight: 1, DesiredCPU: 500},
		}},
	}
	res, err := Allocate(sites, true)
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range res.Grants {
		if g.GrantedCPU != g.DesiredCPU {
			t.Errorf("%s/%s granted %d want desire %d", g.Site, g.Function, g.GrantedCPU, g.DesiredCPU)
		}
	}
	if res.DriftCPU != 0 {
		t.Errorf("drift %d want 0", res.DriftCPU)
	}
	if res.StrandedCPU != 0 {
		t.Errorf("stranded %d want 0", res.StrandedCPU)
	}
}

// A site overloaded beyond its physical capacity has its enforceable
// grants clamped to capacity, and the displaced entitlement is spread to a
// peer that serves the same function and has idle capacity — the peer's
// grant exceeds its own desire (pre-provisioning for offloads).
func TestAllocateSpreadsDisplacedDemand(t *testing.T) {
	sites := []SiteDemand{
		{Site: "hot", CapacityCPU: 4000, Functions: []FunctionDemand{
			{Name: "f", Weight: 1, DesiredCPU: 7000},
		}},
		{Site: "cold", CapacityCPU: 4000, Functions: []FunctionDemand{
			{Name: "f", Weight: 1, DesiredCPU: 1000},
		}},
	}
	res, err := Allocate(sites, true)
	if err != nil {
		t.Fatal(err)
	}
	hot := grantOf(t, res, "hot", "f")
	if hot.GrantedCPU != 4000 {
		t.Errorf("hot granted %d want clamp at capacity 4000", hot.GrantedCPU)
	}
	if hot.EntitledCPU <= 4000 {
		t.Errorf("hot entitled %d want > capacity (federation owes it elsewhere)", hot.EntitledCPU)
	}
	cold := grantOf(t, res, "cold", "f")
	if cold.GrantedCPU <= cold.DesiredCPU {
		t.Errorf("cold granted %d want > its own desire %d (spread)", cold.GrantedCPU, cold.DesiredCPU)
	}
	// Total demand 8000 = total capacity 8000: everything should be
	// granted somewhere, nothing stranded.
	if res.StrandedCPU != 0 {
		t.Errorf("stranded %d want 0", res.StrandedCPU)
	}
	if res.DriftCPU == 0 {
		t.Error("drift 0: global allocation should differ from local here")
	}
	var grantedF int64
	for _, g := range res.Grants {
		grantedF += g.GrantedCPU
	}
	if grantedF != 8000 {
		t.Errorf("total granted %d want 8000", grantedF)
	}
}

// Capacity is stranded when the displaced function is not deployed at the
// idle site.
func TestAllocateStrandedWhenFunctionAbsent(t *testing.T) {
	sites := []SiteDemand{
		{Site: "hot", CapacityCPU: 2000, Functions: []FunctionDemand{
			{Name: "f", Weight: 1, DesiredCPU: 5000},
		}},
		{Site: "other", CapacityCPU: 4000, Functions: []FunctionDemand{
			{Name: "g", Weight: 1, DesiredCPU: 1000},
		}},
	}
	res, err := Allocate(sites, true)
	if err != nil {
		t.Fatal(err)
	}
	// f misses 3000, "other" has 3000 idle, but does not serve f.
	if res.StrandedCPU != 3000 {
		t.Errorf("stranded %d want 3000", res.StrandedCPU)
	}
	if g := grantOf(t, res, "other", "g"); g.GrantedCPU != 1000 {
		t.Errorf("other/g granted %d want 1000", g.GrantedCPU)
	}
}

// Zero-demand sites donate their whole capacity via spreading.
func TestAllocateZeroDemandSite(t *testing.T) {
	sites := []SiteDemand{
		{Site: "hot", CapacityCPU: 2000, Functions: []FunctionDemand{
			{Name: "f", Weight: 1, DesiredCPU: 6000},
		}},
		{Site: "idle", CapacityCPU: 4000, Functions: []FunctionDemand{
			{Name: "f", Weight: 1, DesiredCPU: 0},
		}},
		{Site: "empty", CapacityCPU: 1000}, // registers no functions at all
	}
	res, err := Allocate(sites, true)
	if err != nil {
		t.Fatal(err)
	}
	idle := grantOf(t, res, "idle", "f")
	if idle.GrantedCPU != 4000 {
		t.Errorf("idle granted %d want its full 4000 via spread", idle.GrantedCPU)
	}
	// 6000 desired ≤ 2000 + 4000 granted; the functionless site's 1000 is
	// idle but no demand remains unmet by a deployable function.
	if res.StrandedCPU != 0 {
		t.Errorf("stranded %d want 0", res.StrandedCPU)
	}
}

// Site weights shift entitlement: with a heavy root weight, a site's
// functions win the federation-level arbitration during global overload,
// and the light site's functions are held below their local fair share.
func TestAllocateSiteWeights(t *testing.T) {
	mk := func(heavyWeight float64) []SiteDemand {
		return []SiteDemand{
			{Site: "a", Weight: heavyWeight, CapacityCPU: 4000, Functions: []FunctionDemand{
				{Name: "f", Weight: 1, DesiredCPU: 5000},
			}},
			{Site: "b", Weight: 1, CapacityCPU: 4000, Functions: []FunctionDemand{
				{Name: "g", Weight: 1, DesiredCPU: 5000},
			}},
		}
	}
	even, err := Allocate(mk(1), true)
	if err != nil {
		t.Fatal(err)
	}
	skew, err := Allocate(mk(3), true)
	if err != nil {
		t.Fatal(err)
	}
	evenB := grantOf(t, even, "b", "g").GrantedCPU
	skewB := grantOf(t, skew, "b", "g").GrantedCPU
	if skewB >= evenB {
		t.Errorf("b/g granted %d under 3:1 site weights, want < %d (even weights)", skewB, evenB)
	}
	// a cannot physically host more than 4000 regardless of weight.
	if a := grantOf(t, skew, "a", "f").GrantedCPU; a != 4000 {
		t.Errorf("a/f granted %d want clamp at 4000", a)
	}
}

// User namespaces arbitrate inside each site exactly as the §5 two-level
// tree does.
func TestAllocateUserHierarchy(t *testing.T) {
	sites := []SiteDemand{
		{Site: "a", CapacityCPU: 3000, Functions: []FunctionDemand{
			{Name: "f", User: "u1", UserWeight: 2, Weight: 1, DesiredCPU: 3000},
			{Name: "g", User: "u2", UserWeight: 1, Weight: 1, DesiredCPU: 3000},
		}},
	}
	res, err := Allocate(sites, true)
	if err != nil {
		t.Fatal(err)
	}
	f := grantOf(t, res, "a", "f").GrantedCPU
	g := grantOf(t, res, "a", "g").GrantedCPU
	if f != 2000 || g != 1000 {
		t.Errorf("grants f=%d g=%d want 2000/1000 (2:1 user weights)", f, g)
	}
}

// Two equal-demand functions of unequal weight overflow the same hot site
// and compete for one undersized spread host: the spread pass must divide
// the pool weight-proportionally (a second water-filling), not hand it to
// whichever function sorts first by name. The scenario pins the numbers:
// the hot site (1000 mC) grants 750/250 locally (3:1 weights), the spread
// host has 500 mC spare against 562+187 of overflow, and the third site's
// spare is unreachable (it does not serve either function).
func TestAllocateSpreadWeightProportional(t *testing.T) {
	sites := []SiteDemand{
		{Site: "hot", CapacityCPU: 1000, Functions: []FunctionDemand{
			{Name: "f-heavy", Weight: 3, DesiredCPU: 4000},
			{Name: "f-light", Weight: 1, DesiredCPU: 4000},
		}},
		{Site: "host", CapacityCPU: 500, Functions: []FunctionDemand{
			{Name: "f-heavy", Weight: 3, DesiredCPU: 0},
			{Name: "f-light", Weight: 1, DesiredCPU: 0},
		}},
		{Site: "other", CapacityCPU: 2000, Functions: []FunctionDemand{
			{Name: "f-other", Weight: 1, DesiredCPU: 2000},
		}},
	}
	res, err := Allocate(sites, true)
	if err != nil {
		t.Fatal(err)
	}
	heavy := grantOf(t, res, "host", "f-heavy").GrantedCPU
	light := grantOf(t, res, "host", "f-light").GrantedCPU
	if light == 0 {
		t.Fatal("f-light spread grant is 0: name-order arbitration starved the lighter function")
	}
	if heavy != 375 || light != 125 {
		t.Errorf("spread grants heavy=%d light=%d want 375/125 (3:1 water-filling over the 500 mC pool)",
			heavy, light)
	}
	if heavy+light != 500 {
		t.Errorf("spread used %d of the 500 mC host", heavy+light)
	}
}

func TestAllocateValidation(t *testing.T) {
	cases := []struct {
		name  string
		sites []SiteDemand
	}{
		{"no sites", nil},
		{"dup site", []SiteDemand{{Site: "a"}, {Site: "a"}}},
		{"negative capacity", []SiteDemand{{Site: "a", CapacityCPU: -1}}},
		{"dup function", []SiteDemand{{Site: "a", CapacityCPU: 1, Functions: []FunctionDemand{
			{Name: "f", Weight: 1}, {Name: "f", Weight: 1}}}}},
		{"bad weight", []SiteDemand{{Site: "a", CapacityCPU: 1, Functions: []FunctionDemand{
			{Name: "f", Weight: 0}}}}},
		{"negative desire", []SiteDemand{{Site: "a", CapacityCPU: 1, Functions: []FunctionDemand{
			{Name: "f", Weight: 1, DesiredCPU: -5}}}}},
	}
	for _, c := range cases {
		if _, err := Allocate(c.sites, true); err == nil {
			t.Errorf("%s: want error", c.name)
		}
	}
}
