// Package allocation lifts LaSS's §4.1 weighted fair-share allocator from
// a single edge cluster to the whole federation. Each epoch a coordinator
// gathers per-function demand and weight from every site's controller and
// divides the federation's *total* edge capacity — rather than each site
// dividing its own — so a function's weight governs its aggregate share of
// edge capacity, the ROADMAP's "cross-site fair share".
//
// The allocator runs three passes:
//
//  1. Entitlement: capped water-filling over the federation's total edge
//     capacity on the site → user → function tree
//     (fairshare.AllocateTree). A site's entitlement may exceed its
//     physical capacity — the excess is demand the federation owes it
//     somewhere else.
//  2. Feasibility: each site's enforceable grants are clamped to its
//     physical capacity by re-running the site's subtree against that
//     capacity, fair-sharing any shortfall with the same weights.
//  3. Spreading: entitlement displaced by the physical clamp is offered to
//     other sites that serve the same function and still have idle
//     capacity. Functions competing for the same spread pool are
//     arbitrated by a second weight-proportional water-filling (not name
//     order), and each function's share lands on its candidate hosts in
//     proportion to their spare. Those grants let peer sites pre-provision
//     containers for offloaded work before it arrives — capacity that
//     per-site-local allocation leaves stranded under skewed load (cf.
//     Das et al., dynamic edge–cloud task placement).
//
// The result also quantifies what global allocation bought: StrandedCPU is
// capacity still idle while demand elsewhere stays unmet (zero when the
// spread pass could move everything), and DriftCPU is the L1 distance
// between the global grants and the allocations each site would have
// computed on its own — the cross-site allocation drift reported by the
// federation-fairshare sweep.
package allocation

import (
	"fmt"

	"lass/internal/fairshare"
)

// FunctionDemand is one function's demand at one site: the §4.1 inputs
// (desire and weights) the site's controller estimated for the next epoch.
type FunctionDemand struct {
	Name       string
	User       string  // namespace for hierarchical shares ("" = flat)
	Weight     float64 // function fair-share weight ω_i
	UserWeight float64 // weight of the User namespace (ignored when flat)
	DesiredCPU int64   // model-computed desire in CPU millicores
}

// SiteDemand is one edge site's demand report for a global epoch.
type SiteDemand struct {
	Site        string
	Weight      float64 // site weight at the tree root (0 → 1)
	CapacityCPU int64   // the site's physical CPU capacity, millicores
	Functions   []FunctionDemand
}

// Grant is the allocator's decision for one function at one site.
type Grant struct {
	Site     string
	Function string
	// DesiredCPU is the site's own model-computed desire.
	DesiredCPU int64
	// EntitledCPU is the function-at-site's fair share of the federation's
	// total edge capacity (pass 1); it may exceed the site's capacity.
	EntitledCPU int64
	// GrantedCPU is the enforceable grant pushed down to the site's
	// controller: per site these sum to at most the site's capacity. It
	// exceeds DesiredCPU when the spread pass pre-provisions this site for
	// another site's displaced demand.
	GrantedCPU int64
	// DeservedCPU is the function-at-site's demand-independent quota under
	// a hierarchical federation: its weight share of the site's share of
	// the metro's share (and so on up the tree) of total edge capacity.
	// Zero for flat federations.
	DeservedCPU int64
	// BorrowedCPU is max(0, GrantedCPU − DeservedCPU) under a hierarchical
	// federation — the revocable over-quota portion cross-site reclaim may
	// preempt. Zero for flat federations.
	BorrowedCPU int64
}

// Result is one global allocation epoch's outcome.
type Result struct {
	Grants []Grant
	// TotalCapacityCPU and TotalDesiredCPU summarize the epoch's inputs.
	TotalCapacityCPU int64
	TotalDesiredCPU  int64
	// StrandedCPU is capacity left idle across the federation while
	// demand elsewhere remains unmet even after the spread pass — the
	// waste global allocation could not recover (typically because the
	// demanding function is not deployed at the idle sites).
	StrandedCPU int64
	// DriftCPU is the L1 distance between the global grants and the
	// allocations each site would have computed locally from the same
	// demands — how much capacity the global allocator actually moved.
	DriftCPU int64
	// ReclaimedCPU totals the capacity moved by cross-site reclaim this
	// epoch; Reclaims lists the individual transfers in the deterministic
	// order they were applied. Both are empty for flat federations and for
	// hierarchies with reclaim disabled.
	ReclaimedCPU int64
	Reclaims     []Reclaim
}

// SiteGrants returns the granted CPU per function for one site.
func (r *Result) SiteGrants(site string) map[string]int64 {
	out := make(map[string]int64)
	for _, g := range r.Grants {
		if g.Site == site {
			out[g.Function] = g.GrantedCPU
		}
	}
	return out
}

// subtree builds one site's user → function subtree. desire maps the leaf
// desire per function; when nil the raw demands are used.
func subtree(s SiteDemand, id string, weight float64, desire map[string]int64) *fairshare.Node {
	site := &fairshare.Node{ID: id, Weight: weight}
	userNodes := make(map[string]*fairshare.Node)
	for _, fd := range s.Functions {
		user, uw := fd.User, fd.UserWeight
		if user == "" {
			user, uw = "::default", 1
		}
		if uw <= 0 {
			uw = 1
		}
		un := userNodes[user]
		if un == nil {
			un = &fairshare.Node{ID: id + "/user:" + user, Weight: uw}
			userNodes[user] = un
			site.Children = append(site.Children, un)
		}
		d := fd.DesiredCPU
		if desire != nil {
			d = desire[fd.Name]
		}
		un.Children = append(un.Children, &fairshare.Node{
			ID:      id + "/" + fd.Name,
			Weight:  fd.Weight,
			Desired: d,
		})
	}
	return site
}

func validate(sites []SiteDemand) error {
	if len(sites) == 0 {
		return fmt.Errorf("allocation: no sites")
	}
	seenSite := make(map[string]bool, len(sites))
	for _, s := range sites {
		if s.Site == "" {
			return fmt.Errorf("allocation: site with empty name")
		}
		if seenSite[s.Site] {
			return fmt.Errorf("allocation: duplicate site %q", s.Site)
		}
		seenSite[s.Site] = true
		if s.CapacityCPU < 0 {
			return fmt.Errorf("allocation: site %q has negative capacity %d", s.Site, s.CapacityCPU)
		}
		if s.Weight < 0 {
			return fmt.Errorf("allocation: site %q has negative weight %v", s.Site, s.Weight)
		}
		seenFn := make(map[string]bool, len(s.Functions))
		for _, fd := range s.Functions {
			if fd.Name == "" {
				return fmt.Errorf("allocation: site %q has a function with empty name", s.Site)
			}
			if seenFn[fd.Name] {
				return fmt.Errorf("allocation: site %q has duplicate function %q", s.Site, fd.Name)
			}
			seenFn[fd.Name] = true
			if fd.Weight <= 0 {
				return fmt.Errorf("allocation: site %q function %q has non-positive weight %v", s.Site, fd.Name, fd.Weight)
			}
			if fd.DesiredCPU < 0 {
				return fmt.Errorf("allocation: site %q function %q has negative desire %d", s.Site, fd.Name, fd.DesiredCPU)
			}
		}
	}
	return nil
}

// Allocate runs one global allocation epoch over the sites' demand
// reports. capped selects the water-filling AdjustCapped refinement (true,
// the controller default) or the paper-faithful Adjust at every tree
// level.
//
// Allocate is the one-shot form: it runs a fresh Allocator and drops it, so
// the caller owns the returned Result. Epoch loops should hold a single
// Allocator instead and let unchanged sites reuse their previous work.
func Allocate(sites []SiteDemand, capped bool) (*Result, error) {
	return NewAllocator().Allocate(sites, capped)
}
