// Package allocation lifts LaSS's §4.1 weighted fair-share allocator from
// a single edge cluster to the whole federation. Each epoch a coordinator
// gathers per-function demand and weight from every site's controller and
// divides the federation's *total* edge capacity — rather than each site
// dividing its own — so a function's weight governs its aggregate share of
// edge capacity, the ROADMAP's "cross-site fair share".
//
// The allocator runs three passes:
//
//  1. Entitlement: capped water-filling over the federation's total edge
//     capacity on the site → user → function tree
//     (fairshare.AllocateTree). A site's entitlement may exceed its
//     physical capacity — the excess is demand the federation owes it
//     somewhere else.
//  2. Feasibility: each site's enforceable grants are clamped to its
//     physical capacity by re-running the site's subtree against that
//     capacity, fair-sharing any shortfall with the same weights.
//  3. Spreading: entitlement displaced by the physical clamp is offered to
//     other sites that serve the same function and still have idle
//     capacity. Functions competing for the same spread pool are
//     arbitrated by a second weight-proportional water-filling (not name
//     order), and each function's share lands on its candidate hosts in
//     proportion to their spare. Those grants let peer sites pre-provision
//     containers for offloaded work before it arrives — capacity that
//     per-site-local allocation leaves stranded under skewed load (cf.
//     Das et al., dynamic edge–cloud task placement).
//
// The result also quantifies what global allocation bought: StrandedCPU is
// capacity still idle while demand elsewhere stays unmet (zero when the
// spread pass could move everything), and DriftCPU is the L1 distance
// between the global grants and the allocations each site would have
// computed on its own — the cross-site allocation drift reported by the
// federation-fairshare sweep.
package allocation

import (
	"fmt"
	"sort"

	"lass/internal/fairshare"
)

// FunctionDemand is one function's demand at one site: the §4.1 inputs
// (desire and weights) the site's controller estimated for the next epoch.
type FunctionDemand struct {
	Name       string
	User       string  // namespace for hierarchical shares ("" = flat)
	Weight     float64 // function fair-share weight ω_i
	UserWeight float64 // weight of the User namespace (ignored when flat)
	DesiredCPU int64   // model-computed desire in CPU millicores
}

// SiteDemand is one edge site's demand report for a global epoch.
type SiteDemand struct {
	Site        string
	Weight      float64 // site weight at the tree root (0 → 1)
	CapacityCPU int64   // the site's physical CPU capacity, millicores
	Functions   []FunctionDemand
}

// Grant is the allocator's decision for one function at one site.
type Grant struct {
	Site     string
	Function string
	// DesiredCPU is the site's own model-computed desire.
	DesiredCPU int64
	// EntitledCPU is the function-at-site's fair share of the federation's
	// total edge capacity (pass 1); it may exceed the site's capacity.
	EntitledCPU int64
	// GrantedCPU is the enforceable grant pushed down to the site's
	// controller: per site these sum to at most the site's capacity. It
	// exceeds DesiredCPU when the spread pass pre-provisions this site for
	// another site's displaced demand.
	GrantedCPU int64
}

// Result is one global allocation epoch's outcome.
type Result struct {
	Grants []Grant
	// TotalCapacityCPU and TotalDesiredCPU summarize the epoch's inputs.
	TotalCapacityCPU int64
	TotalDesiredCPU  int64
	// StrandedCPU is capacity left idle across the federation while
	// demand elsewhere remains unmet even after the spread pass — the
	// waste global allocation could not recover (typically because the
	// demanding function is not deployed at the idle sites).
	StrandedCPU int64
	// DriftCPU is the L1 distance between the global grants and the
	// allocations each site would have computed locally from the same
	// demands — how much capacity the global allocator actually moved.
	DriftCPU int64
}

// SiteGrants returns the granted CPU per function for one site.
func (r *Result) SiteGrants(site string) map[string]int64 {
	out := make(map[string]int64)
	for _, g := range r.Grants {
		if g.Site == site {
			out[g.Function] = g.GrantedCPU
		}
	}
	return out
}

// subtree builds one site's user → function subtree. desire maps the leaf
// desire per function; when nil the raw demands are used.
func subtree(s SiteDemand, id string, weight float64, desire map[string]int64) *fairshare.Node {
	site := &fairshare.Node{ID: id, Weight: weight}
	userNodes := make(map[string]*fairshare.Node)
	for _, fd := range s.Functions {
		user, uw := fd.User, fd.UserWeight
		if user == "" {
			user, uw = "::default", 1
		}
		if uw <= 0 {
			uw = 1
		}
		un := userNodes[user]
		if un == nil {
			un = &fairshare.Node{ID: id + "/user:" + user, Weight: uw}
			userNodes[user] = un
			site.Children = append(site.Children, un)
		}
		d := fd.DesiredCPU
		if desire != nil {
			d = desire[fd.Name]
		}
		un.Children = append(un.Children, &fairshare.Node{
			ID:      id + "/" + fd.Name,
			Weight:  fd.Weight,
			Desired: d,
		})
	}
	return site
}

func validate(sites []SiteDemand) error {
	if len(sites) == 0 {
		return fmt.Errorf("allocation: no sites")
	}
	seenSite := make(map[string]bool, len(sites))
	for _, s := range sites {
		if s.Site == "" {
			return fmt.Errorf("allocation: site with empty name")
		}
		if seenSite[s.Site] {
			return fmt.Errorf("allocation: duplicate site %q", s.Site)
		}
		seenSite[s.Site] = true
		if s.CapacityCPU < 0 {
			return fmt.Errorf("allocation: site %q has negative capacity %d", s.Site, s.CapacityCPU)
		}
		if s.Weight < 0 {
			return fmt.Errorf("allocation: site %q has negative weight %v", s.Site, s.Weight)
		}
		seenFn := make(map[string]bool, len(s.Functions))
		for _, fd := range s.Functions {
			if fd.Name == "" {
				return fmt.Errorf("allocation: site %q has a function with empty name", s.Site)
			}
			if seenFn[fd.Name] {
				return fmt.Errorf("allocation: site %q has duplicate function %q", s.Site, fd.Name)
			}
			seenFn[fd.Name] = true
			if fd.Weight <= 0 {
				return fmt.Errorf("allocation: site %q function %q has non-positive weight %v", s.Site, fd.Name, fd.Weight)
			}
			if fd.DesiredCPU < 0 {
				return fmt.Errorf("allocation: site %q function %q has negative desire %d", s.Site, fd.Name, fd.DesiredCPU)
			}
		}
	}
	return nil
}

// Allocate runs one global allocation epoch over the sites' demand
// reports. capped selects the water-filling AdjustCapped refinement (true,
// the controller default) or the paper-faithful Adjust at every tree
// level.
func Allocate(sites []SiteDemand, capped bool) (*Result, error) {
	if err := validate(sites); err != nil {
		return nil, err
	}
	res := &Result{}
	for _, s := range sites {
		res.TotalCapacityCPU += s.CapacityCPU
		for _, fd := range s.Functions {
			res.TotalDesiredCPU += fd.DesiredCPU
		}
	}

	// Pass 1 — entitlement: capped water-filling over the federation's
	// total edge capacity, site → user → function.
	root := &fairshare.Node{ID: "::federation"}
	for _, s := range sites {
		w := s.Weight
		if w == 0 {
			w = 1
		}
		root.Children = append(root.Children, subtree(s, "site:"+s.Site, w, nil))
	}
	entitled, err := fairshare.AllocateTree(root, res.TotalCapacityCPU, capped)
	if err != nil {
		return nil, err
	}

	// Pass 2 — feasibility: clamp each site's enforceable grants to its
	// physical capacity. Re-running the subtree with desires capped at the
	// entitlement keeps the shortfall division on the same weights; when
	// the capped desires already fit, every function simply receives
	// min(desire, entitlement).
	granted := make(map[string]map[string]int64, len(sites))
	spare := make(map[string]int64, len(sites))
	for _, s := range sites {
		id := "site:" + s.Site
		want := make(map[string]int64, len(s.Functions))
		for _, fd := range s.Functions {
			e := entitled[id+"/"+fd.Name]
			if e > fd.DesiredCPU {
				e = fd.DesiredCPU
			}
			want[fd.Name] = e
		}
		g, err := fairshare.AllocateTree(subtree(s, id, 1, want), s.CapacityCPU, capped)
		if err != nil {
			return nil, err
		}
		siteGrant := make(map[string]int64, len(s.Functions))
		var sum int64
		for _, fd := range s.Functions {
			siteGrant[fd.Name] = g[id+"/"+fd.Name]
			sum += siteGrant[fd.Name]
		}
		granted[s.Site] = siteGrant
		spare[s.Site] = s.CapacityCPU - sum
	}

	// Pass 3 — spreading: entitlement displaced by the physical clamp is
	// granted at other sites that serve the same function and have idle
	// capacity — proportionally to their spare, so one nearby peer is not
	// packed solid while others idle — letting those sites pre-provision
	// for the offloads that will follow. When several functions compete
	// for the same spread pool, the pool is divided by a second
	// water-filling over the overflow demands in proportion to function
	// weight (AdjustCapped over the reachable spare), not by name order:
	// a heavy function displaced from its hot site keeps its weight
	// advantage wherever its overflow lands. Functions whose host sets
	// run dry return their unplaced share to the next round, until no
	// placement makes progress.
	type spreadDemand struct {
		fn     string
		need   int64
		weight float64
	}
	overflowOf := make(map[string]*spreadDemand)
	var overflow []*spreadDemand
	for _, s := range sites {
		id := "site:" + s.Site
		for _, fd := range s.Functions {
			e := entitled[id+"/"+fd.Name]
			if e > fd.DesiredCPU {
				e = fd.DesiredCPU
			}
			if miss := e - granted[s.Site][fd.Name]; miss > 0 {
				d := overflowOf[fd.Name]
				if d == nil {
					d = &spreadDemand{fn: fd.Name, weight: fd.Weight}
					overflowOf[fd.Name] = d
					overflow = append(overflow, d)
				}
				d.need += miss
				if fd.Weight > d.weight {
					// Sites may weight the same function differently; the
					// heaviest overflowing claim arbitrates for all of them
					// (deterministic, and never understates a priority).
					d.weight = fd.Weight
				}
			}
		}
	}
	// Heaviest first, ties by name, so host placement order — which
	// mutates spare between functions — follows the same priority the
	// water-filling grants capacity by.
	sort.Slice(overflow, func(i, j int) bool {
		if overflow[i].weight != overflow[j].weight {
			return overflow[i].weight > overflow[j].weight
		}
		return overflow[i].fn < overflow[j].fn
	})
	type host struct {
		site  string
		spare int64
		order int
	}
	// hostsOf returns the sites serving fn with spare capacity, most spare
	// first (ties by site order for determinism), plus their total spare.
	hostsOf := func(fn string) ([]host, int64) {
		var hosts []host
		var total int64
		for i, s := range sites {
			if spare[s.Site] <= 0 {
				continue
			}
			for _, fd := range s.Functions {
				if fd.Name == fn {
					hosts = append(hosts, host{s.Site, spare[s.Site], i})
					total += spare[s.Site]
					break
				}
			}
		}
		sort.Slice(hosts, func(i, j int) bool {
			if hosts[i].spare != hosts[j].spare {
				return hosts[i].spare > hosts[j].spare
			}
			return hosts[i].order < hosts[j].order
		})
		return hosts, total
	}
	for {
		// One water-filling round: each function's demand is its remaining
		// overflow capped at what its hosts could physically take, and the
		// pool is the union of every competing function's reachable spare.
		var demands []fairshare.Demand
		var pool int64
		inPool := make(map[string]bool)
		for _, d := range overflow {
			if d.need <= 0 {
				continue
			}
			hosts, hostSpare := hostsOf(d.fn)
			if hostSpare == 0 {
				continue
			}
			want := d.need
			if want > hostSpare {
				want = hostSpare
			}
			demands = append(demands, fairshare.Demand{ID: d.fn, Weight: d.weight, Desired: want})
			for _, h := range hosts {
				if !inPool[h.site] {
					inPool[h.site] = true
					pool += spare[h.site]
				}
			}
		}
		if len(demands) == 0 {
			break
		}
		allocs, err := fairshare.AdjustCapped(demands, pool)
		if err != nil {
			return nil, err
		}
		progress := false
		for _, a := range allocs {
			// Place this function's share on its hosts: a proportional
			// first pass, then a largest-spare-first mop-up for the
			// flooring remainder.
			hosts, hostSpare := hostsOf(a.ID)
			amount := a.Adjusted
			if amount > hostSpare {
				amount = hostSpare
			}
			if amount <= 0 {
				continue
			}
			rem := amount
			for _, h := range hosts {
				take := amount * h.spare / hostSpare
				granted[h.site][a.ID] += take
				spare[h.site] -= take
				rem -= take
			}
			for _, h := range hosts {
				if rem == 0 {
					break
				}
				take := spare[h.site]
				if take > rem {
					take = rem
				}
				if take > 0 {
					granted[h.site][a.ID] += take
					spare[h.site] -= take
					rem -= take
				}
			}
			overflowOf[a.ID].need -= amount
			progress = true
		}
		if !progress {
			break
		}
	}

	// Stranded capacity: idle CPU that even spreading could not pair with
	// the demand still unmet federation-wide.
	var totalSpare, totalUnmet int64
	perFnDesired := make(map[string]int64)
	perFnGranted := make(map[string]int64)
	for _, s := range sites {
		totalSpare += spare[s.Site]
		for _, fd := range s.Functions {
			perFnDesired[fd.Name] += fd.DesiredCPU
			perFnGranted[fd.Name] += granted[s.Site][fd.Name]
		}
	}
	for fn, d := range perFnDesired {
		if miss := d - perFnGranted[fn]; miss > 0 {
			totalUnmet += miss
		}
	}
	res.StrandedCPU = totalSpare
	if totalUnmet < totalSpare {
		res.StrandedCPU = totalUnmet
	}

	// Drift: L1 distance to the allocation each site would have computed
	// locally from the same demands (its own subtree over its own
	// capacity) — zero when global allocation changes nothing.
	for _, s := range sites {
		id := "site:" + s.Site
		local, err := fairshare.AllocateTree(subtree(s, id, 1, nil), s.CapacityCPU, capped)
		if err != nil {
			return nil, err
		}
		for _, fd := range s.Functions {
			d := granted[s.Site][fd.Name] - local[id+"/"+fd.Name]
			if d < 0 {
				d = -d
			}
			res.DriftCPU += d
		}
	}

	for _, s := range sites {
		id := "site:" + s.Site
		for _, fd := range s.Functions {
			res.Grants = append(res.Grants, Grant{
				Site:        s.Site,
				Function:    fd.Name,
				DesiredCPU:  fd.DesiredCPU,
				EntitledCPU: entitled[id+"/"+fd.Name],
				GrantedCPU:  granted[s.Site][fd.Name],
			})
		}
	}
	return res, nil
}
