package allocation

import (
	"fmt"
	"sort"

	"lass/internal/fairshare"
)

// Hierarchy arranges a federation's sites into an explicit capacity tree —
// region → metro → site in the common case, arbitrary depth in general.
// Interior Groups split their parent's capacity by weight exactly like
// sites do today; leaf Groups ("metros") list the member sites by name.
//
// Two quota semantics fall out of the tree (KAI-Scheduler's queue model):
//
//   - Deserved: every node's unconditional share of its parent's deserved
//     capacity, ⌊ω/Σω_siblings · parent⌋ cascaded from the federation's
//     total edge capacity down to each function leaf. A function is owed
//     its deserved quota regardless of what siblings demand.
//   - Borrowed: anything granted above deserved. Idle capacity below one
//     branch is borrowable by over-quota cousins, water-filled level by
//     level — first inside the metro, then the region, then globally.
//     Borrowed grants are revocable: cross-site reclaim (Allocator with
//     reclaim enabled) preempts them at a peer when a function's deserved
//     share is starved at its home site.
//
// A Hierarchy whose root is a single leaf Group over every site is
// depth-1 and reproduces the flat federation allocator bit for bit.
type Hierarchy struct {
	Root *Group
}

// Group is one vertex of the hierarchy: either an interior node
// (Children) or a leaf metro (Sites). Exactly one of the two must be
// non-empty. Weight 0 means the default weight 1, matching the site
// convention; negative weights are rejected.
type Group struct {
	ID       string
	Weight   float64
	Children []*Group
	Sites    []string
}

// Validate checks the tree's structure: a non-nil root, every group
// either interior or leaf (never both, never neither), unique group IDs,
// unique site assignment, and no negative weights — at any depth.
func (h *Hierarchy) Validate() error {
	if h == nil || h.Root == nil {
		return fmt.Errorf("allocation: hierarchy has no root group")
	}
	groups := make(map[string]bool)
	sites := make(map[string]bool)
	return h.Root.validate(groups, sites)
}

func (g *Group) validate(groups, sites map[string]bool) error {
	if g.Weight < 0 {
		return fmt.Errorf("allocation: hierarchy group %q has negative weight %v", g.ID, g.Weight)
	}
	if groups[g.ID] {
		return fmt.Errorf("allocation: duplicate hierarchy group id %q", g.ID)
	}
	groups[g.ID] = true
	if len(g.Children) > 0 && len(g.Sites) > 0 {
		return fmt.Errorf("allocation: hierarchy group %q has both children and sites", g.ID)
	}
	if len(g.Children) == 0 && len(g.Sites) == 0 {
		return fmt.Errorf("allocation: hierarchy group %q is empty", g.ID)
	}
	for _, s := range g.Sites {
		if sites[s] {
			return fmt.Errorf("allocation: site %q assigned to more than one hierarchy group", s)
		}
		sites[s] = true
	}
	for _, c := range g.Children {
		if err := c.validate(groups, sites); err != nil {
			return err
		}
	}
	return nil
}

// Levels reports, for each assigned site, its metro index (leaf groups in
// depth-first declaration order) and region index (the root's immediate
// branch the site falls under; 0 everywhere when the root is itself a
// leaf). Topology generators key RTT classes on these.
func (h *Hierarchy) Levels() map[string]Level {
	out := make(map[string]Level)
	if h == nil || h.Root == nil {
		return out
	}
	metro := 0
	if len(h.Root.Sites) > 0 {
		h.Root.levels(0, &metro, out)
		return out
	}
	for region, c := range h.Root.Children {
		c.levels(region, &metro, out)
	}
	return out
}

// Level locates one site in the hierarchy: which leaf group (metro) holds
// it and which top-level branch (region) that group sits under.
type Level struct {
	Metro  int
	Region int
}

func (g *Group) levels(region int, metro *int, out map[string]Level) {
	if len(g.Sites) > 0 {
		for _, s := range g.Sites {
			out[s] = Level{Metro: *metro, Region: region}
		}
		*metro++
		return
	}
	for _, c := range g.Children {
		c.levels(region, metro, out)
	}
}

// Covers verifies every named site is assigned to some leaf group — the
// per-epoch precondition for hierarchical allocation. Hierarchy entries
// naming sites absent from the list are permitted (and contribute
// nothing), so one hierarchy can describe a superset fleet.
func (h *Hierarchy) Covers(siteNames []string) error {
	assigned := h.Levels()
	for _, name := range siteNames {
		if _, ok := assigned[name]; !ok {
			return fmt.Errorf("allocation: site %q not assigned to any hierarchy group", name)
		}
	}
	return nil
}

// Reclaim records one cross-site reclamation inside a metro: borrowed
// (over-quota) capacity preempted from function From at peer Site and
// re-granted there to function To, whose deserved share was starved at
// HomeSite. The federation charges these transfers a reclaim latency on
// top of the grant round trip.
type Reclaim struct {
	Group    string // leaf group (metro) the transfer stayed inside
	Site     string // peer site where the borrowed capacity was preempted
	HomeSite string // starved function's home site
	From     string // preempted over-quota function at Site
	To       string // starved function granted the capacity at Site
	CPU      int64  // millicores moved
}

// mountHier builds the pass-1 fair-share tree for the hierarchy: group
// vertices become internal nodes (IDs prefixed "group:" so they can never
// collide with "site:..." subtree IDs) and each leaf group's member sites
// mount their cached subtrees as children. A root that is itself a leaf
// group mounts the site trees directly under the federation root —
// exactly the flat tree, which is what makes depth-1 bit-identical.
// Nodes are rebuilt per epoch; steady-state epochs never reach pass 1.
func (a *Allocator) mountHier(g *Group) *fairshare.Node {
	w := g.Weight
	if w == 0 {
		w = 1
	}
	n := &fairshare.Node{ID: "group:" + g.ID, Weight: w}
	a.mountHierChildren(g, n)
	return n
}

func (a *Allocator) mountHierChildren(g *Group, n *fairshare.Node) {
	for _, name := range g.Sites {
		if c, ok := a.caches[name]; ok {
			n.Children = append(n.Children, c.tree)
		}
	}
	for _, c := range g.Children {
		n.Children = append(n.Children, a.mountHier(c))
	}
}

// cascadeDeserved walks the mounted tree assigning every node its
// deserved quota — ⌊ω/Σω_siblings · parent's deserved⌋ — and records the
// per-leaf result. Unlike the entitlement pass this ignores demand
// entirely: deserved is what a queue is owed unconditionally.
func (a *Allocator) cascadeDeserved(n *fairshare.Node, share int64) {
	if n.Leaf() {
		a.deserved[n.ID] = share
		return
	}
	var w float64
	for _, c := range n.Children {
		w += c.Weight
	}
	for _, c := range n.Children {
		a.cascadeDeserved(c, int64(float64(share)*c.Weight/w))
	}
}

// metroScope is one leaf group resolved against this epoch's site list.
type metroScope struct {
	g    *Group
	idxs []int // member positions in the epoch's sites slice, ascending
}

// spreadHier runs the pass-3 overflow spread level by level, bottom-up:
// each leaf group spreads its members' displaced entitlement inside the
// metro first, parents re-spread whatever is still missing across the
// wider scope, and the root scope (every site) finishes globally. Misses
// are recomputed from want−grants at each scope, so capacity satisfied
// deeper down never escalates. Returns the subtree's member indices.
func (a *Allocator) spreadHier(sites []SiteDemand, g *Group, capped bool) ([]int, error) {
	var idxs []int
	if len(g.Sites) > 0 {
		for _, name := range g.Sites {
			if i, ok := a.sitePos[name]; ok {
				idxs = append(idxs, i)
			}
		}
		sort.Ints(idxs)
		a.metros = append(a.metros, metroScope{g: g, idxs: idxs})
	} else {
		for _, c := range g.Children {
			ci, err := a.spreadHier(sites, c, capped)
			if err != nil {
				return nil, err
			}
			idxs = append(idxs, ci...)
		}
		sort.Ints(idxs)
	}
	if err := a.spread(sites, idxs, capped); err != nil {
		return nil, err
	}
	return idxs, nil
}

// reclaimVictim is one over-quota (site, function) holding that metro's
// borrowed capacity, snapshotted before any transfer.
type reclaimVictim struct {
	site     int // position in the epoch's sites slice
	fn       int // position in that site's Functions
	borrowed int64
}

// runReclaim preempts borrowed capacity inside each metro for functions
// whose deserved share is starved at their home site. Victims are
// snapshotted per metro and drained largest-borrowed first (ties: site
// order, then function name); starved claims proceed in site order then
// function order, each taking min(shortfall, borrowed) from peers that
// also serve the starved function. The transfer re-grants the capacity to
// the starved function at the victim's site — the container runs there
// and the placer offloads the home site's traffic to it.
func (a *Allocator) runReclaim(sites []SiteDemand) {
	for _, m := range a.metros {
		if len(m.idxs) < 2 {
			continue // reclaim is cross-site; a one-site metro has no peers
		}
		a.victims = a.victims[:0]
		for _, i := range m.idxs {
			c := a.caches[sites[i].Site]
			for j := range c.prev.Functions {
				if b := c.grants[j] - a.deserved[c.leafIDs[j]]; b > 0 {
					a.victims = append(a.victims, reclaimVictim{site: i, fn: j, borrowed: b})
				}
			}
		}
		if len(a.victims) == 0 {
			continue
		}
		sort.Slice(a.victims, func(x, y int) bool {
			vx, vy := &a.victims[x], &a.victims[y]
			if vx.borrowed != vy.borrowed {
				return vx.borrowed > vy.borrowed
			}
			if vx.site != vy.site {
				return vx.site < vy.site
			}
			nx := a.caches[sites[vx.site].Site].prev.Functions[vx.fn].Name
			ny := a.caches[sites[vy.site].Site].prev.Functions[vy.fn].Name
			return nx < ny
		})
		for _, i := range m.idxs {
			c := a.caches[sites[i].Site]
			for j, fd := range c.prev.Functions {
				owed := a.deserved[c.leafIDs[j]]
				if fd.DesiredCPU < owed {
					owed = fd.DesiredCPU // never reclaim beyond actual demand
				}
				short := owed - c.grants[j]
				if short <= 0 {
					continue
				}
				// Net out compensation the function already holds at metro
				// peers beyond their own deserved-capped desire — the spread
				// pass (or an earlier reclaim) may have re-granted this
				// site's displaced share there already; claiming it again
				// would over-grant the function past its desire.
				for _, p := range m.idxs {
					if p == i {
						continue
					}
					pc := a.caches[sites[p].Site]
					pj, ok := pc.fnIndex[fd.Name]
					if !ok {
						continue
					}
					powed := a.deserved[pc.leafIDs[pj]]
					if d := pc.prev.Functions[pj].DesiredCPU; d < powed {
						powed = d
					}
					if extra := pc.grants[pj] - powed; extra > 0 {
						short -= extra
					}
				}
				if short <= 0 {
					continue
				}
				for k := range a.victims {
					v := &a.victims[k]
					if v.borrowed <= 0 || v.site == i {
						continue
					}
					vc := a.caches[sites[v.site].Site]
					if vc.prev.Functions[v.fn].Name == fd.Name {
						continue // moving a grant to itself is a no-op
					}
					tj, serves := vc.fnIndex[fd.Name]
					if !serves {
						continue // the peer cannot host the starved function
					}
					t := short
					if v.borrowed < t {
						t = v.borrowed
					}
					vc.grants[v.fn] -= t
					vc.grants[tj] += t
					v.borrowed -= t
					short -= t
					a.res.Reclaims = append(a.res.Reclaims, Reclaim{
						Group:    m.g.ID,
						Site:     sites[v.site].Site,
						HomeSite: sites[i].Site,
						From:     vc.prev.Functions[v.fn].Name,
						To:       fd.Name,
						CPU:      t,
					})
					a.res.ReclaimedCPU += t
					if short == 0 {
						break
					}
				}
			}
		}
	}
}

// AllocateHierarchical runs one hierarchical allocation epoch from
// scratch — the one-shot convenience mirroring Allocate for flat site
// lists. Long-lived callers should hold an Allocator and SetHierarchy
// once instead.
func AllocateHierarchical(h *Hierarchy, sites []SiteDemand, capped, reclaim bool) (*Result, error) {
	a := NewAllocator()
	if err := a.SetHierarchy(h, reclaim); err != nil {
		return nil, err
	}
	return a.Allocate(sites, capped)
}
