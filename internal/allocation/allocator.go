package allocation

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"lass/internal/fairshare"
)

// Allocator runs global allocation epochs incrementally. It produces results
// bit-identical to the one-shot Allocate — the differential fuzz in
// allocator_test.go replays randomized epoch sequences against a frozen copy
// of the original implementation — while reusing everything an epoch shares
// with the previous one:
//
//   - Sites whose SiteDemand is unchanged keep their cached pass-1 subtree,
//     their drift-pass local allocation, and — when their pass-2 clamp input
//     (the per-function min(entitlement, desire) vector) is also unchanged —
//     their pass-2 feasibility clamp.
//   - Scratch buffers (result slice, entitlement map, spare/overflow/host
//     scratch) persist across epochs, so an epoch whose inputs are entirely
//     unchanged — the steady state between demand shifts — performs zero
//     heap allocations and returns the previous result.
//   - Dirty-site pass-2 clamps are independent subproblems (one subtree, one
//     capacity each); with Workers > 1 they run on a deterministic worker
//     pool and are committed in site order, so serial and parallel output
//     are byte-identical (same discipline as the experiments sweep runner).
//
// An Allocator is not safe for concurrent use. The returned Result is owned
// by the Allocator and valid until the next Allocate call.
type Allocator struct {
	// Workers bounds the goroutines used for dirty-site pass-2 clamps.
	// Values <= 1 run the clamps serially; the output is identical either
	// way, only wall-clock changes.
	Workers int

	havePrev bool
	capped   bool
	order    []*siteCache // last epoch's caches in site order, for the fast path

	caches map[string]*siteCache
	res    Result

	root     *fairshare.Node
	entitled map[string]int64
	spare    map[string]int64

	dirty []bool
	work  []int
	errs  []error

	overflow   []spreadDemand
	overflowOf map[string]int
	hosts      []host
	demands    []fairshare.Demand
	inPool     map[string]bool

	perFnDesired map[string]int64
	perFnGranted map[string]int64
	nameSet      map[string]bool

	// Hierarchical mode (SetHierarchy): the capacity tree, the per-leaf
	// deserved quotas cascaded from it, and the reclaim scratch. All nil /
	// unused for flat federations, whose code path is unchanged.
	hier      *Hierarchy
	reclaim   bool
	deserved  map[string]int64
	sitePos   map[string]int
	allIdx    []int
	metros    []metroScope
	victims   []reclaimVictim
	hierSites map[string]Level
}

// siteCache holds everything one site's epoch work that can survive to the
// next epoch, keyed by site name so sites may reorder without invalidation.
type siteCache struct {
	// prev is a deep copy of the site's last demand report (the Functions
	// backing array is owned by the cache), compared against the incoming
	// report to decide dirtiness.
	prev SiteDemand

	// tree is the site's scheduling subtree with raw desires at the leaves.
	// Pass 1 mounts it under the federation root (its weight is the site
	// weight) and the drift pass re-divides it against the site's own
	// capacity — AllocateTree never reads the root node's weight, so one
	// tree serves both, exactly as two separately built subtrees would.
	tree     *fairshare.Node
	wantTree *fairshare.Node   // same shape; leaves carry the clamp input
	leaves   []*fairshare.Node // wantTree leaves, in Functions order
	leafIDs  []string          // "site:<name>/<fn>", in Functions order
	fnIndex  map[string]int    // function name → Functions index

	want     []int64 // last clamp input: min(entitled, desired) per function
	wantNext []int64 // this epoch's clamp input, swapped into want
	haveWant bool

	clamp    []int64 // pass-2 clamp result per function — the reusable value
	sum      int64   // Σ clamp
	grants   []int64 // working grants this epoch: clamp plus pass-3 spread
	clampMap map[string]int64

	localMap  map[string]int64 // drift pass: the site's own local allocation
	haveLocal bool
}

type spreadDemand struct {
	fn     string
	need   int64
	weight float64
}

type host struct {
	site  string
	spare int64
	order int
}

// NewAllocator returns an empty Allocator; the first Allocate call behaves
// exactly like the one-shot Allocate and primes the caches.
func NewAllocator() *Allocator {
	return &Allocator{
		caches:       make(map[string]*siteCache),
		entitled:     make(map[string]int64),
		spare:        make(map[string]int64),
		overflowOf:   make(map[string]int),
		inPool:       make(map[string]bool),
		perFnDesired: make(map[string]int64),
		perFnGranted: make(map[string]int64),
		nameSet:      make(map[string]bool),
		root:         &fairshare.Node{ID: "::federation"},
	}
}

// SetHierarchy switches the allocator between the flat federation (nil)
// and a region→metro→site capacity tree: pass 1 mounts site subtrees
// under the hierarchy's groups, pass 3 water-fills displaced entitlement
// level by level (metro first, then outward), and — with reclaim enabled —
// a final pass preempts borrowed capacity at metro peers for functions
// starved of their deserved quota. The previous result is invalidated so
// the steady-state fast path can never serve an answer computed under a
// different tree; per-site clamp and local-allocation caches stay valid
// (they depend only on each site's own demand and want vector).
func (a *Allocator) SetHierarchy(h *Hierarchy, reclaim bool) error {
	if h != nil {
		if err := h.Validate(); err != nil {
			return err
		}
	}
	a.hier = h
	a.reclaim = reclaim && h != nil
	a.havePrev = false
	if h != nil {
		a.hierSites = h.Levels()
		if a.deserved == nil {
			a.deserved = make(map[string]int64)
		}
		if a.sitePos == nil {
			a.sitePos = make(map[string]int)
		}
	} else {
		a.hierSites = nil
	}
	return nil
}

func siteEqual(a *SiteDemand, b *SiteDemand) bool {
	if a.Site != b.Site || a.Weight != b.Weight ||
		a.CapacityCPU != b.CapacityCPU || len(a.Functions) != len(b.Functions) {
		return false
	}
	for i := range a.Functions {
		if a.Functions[i] != b.Functions[i] {
			return false
		}
	}
	return true
}

func int64sEqual(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// fail invalidates every cached intermediate before surfacing err: an epoch
// abandoned partway may have swapped want vectors or rebuilt trees without
// committing matching grants, so nothing may be reused afterwards.
func (a *Allocator) fail(err error) (*Result, error) {
	a.havePrev = false
	for _, c := range a.caches {
		c.haveWant = false
		c.haveLocal = false
	}
	return nil, err
}

// rebuild refreshes c from s: deep-copies the demand report and rebuilds the
// subtrees, leaf index, and per-function scratch. Called only for new or
// dirty sites — clean sites reuse everything.
func (c *siteCache) rebuild(s *SiteDemand) {
	c.prev.Site = s.Site
	c.prev.Weight = s.Weight
	c.prev.CapacityCPU = s.CapacityCPU
	c.prev.Functions = append(c.prev.Functions[:0], s.Functions...)

	id := "site:" + s.Site
	w := s.Weight
	if w == 0 {
		w = 1
	}
	c.tree = subtree(c.prev, id, w, nil)
	c.wantTree = subtree(c.prev, id, 1, nil)

	c.leafIDs = c.leafIDs[:0]
	for _, fd := range c.prev.Functions {
		c.leafIDs = append(c.leafIDs, id+"/"+fd.Name)
	}
	c.leaves = c.leaves[:0]
	if c.fnIndex == nil {
		c.fnIndex = make(map[string]int, len(c.prev.Functions))
	}
	clear(c.fnIndex)
	byID := make(map[string]*fairshare.Node, len(c.prev.Functions))
	collectLeaves(c.wantTree, byID)
	for j, fd := range c.prev.Functions {
		c.leaves = append(c.leaves, byID[c.leafIDs[j]])
		c.fnIndex[fd.Name] = j
	}
	if c.clampMap == nil {
		c.clampMap = make(map[string]int64, len(c.prev.Functions))
	}
	if c.localMap == nil {
		c.localMap = make(map[string]int64, len(c.prev.Functions))
	}
	c.haveWant = false
	c.haveLocal = false
}

func collectLeaves(n *fairshare.Node, byID map[string]*fairshare.Node) {
	if n.Leaf() {
		byID[n.ID] = n
		return
	}
	for _, child := range n.Children {
		collectLeaves(child, byID)
	}
}

// clampSite runs one site's pass-2 feasibility clamp: the site subtree with
// desires capped at the entitlement, divided over the site's physical
// capacity. Sites are independent subproblems, so clampSite may run on any
// goroutine of the worker pool; it writes only its own site's cache.
//
//lass:bitexact
func (c *siteCache) clampSite(capped bool) error {
	for j := range c.leaves {
		c.leaves[j].Desired = c.want[j]
	}
	if err := fairshare.AllocateTreeInto(c.wantTree, c.prev.CapacityCPU, capped, c.clampMap); err != nil {
		return err
	}
	c.clamp = c.clamp[:0]
	c.sum = 0
	for j := range c.leafIDs {
		g := c.clampMap[c.leafIDs[j]]
		c.clamp = append(c.clamp, g)
		c.sum += g
	}
	return nil
}

// runClamps executes the dirty-site clamps in a.work, serially or on a
// bounded worker pool. Parallel runs commit nothing out of order: each clamp
// writes only its own siteCache, errors are collected per work index, and
// the lowest-index error is returned — the same fail-fast result the serial
// loop produces.
func (a *Allocator) runClamps(sites []SiteDemand, capped bool) error {
	if a.Workers <= 1 || len(a.work) <= 1 {
		for _, i := range a.work {
			if err := a.caches[sites[i].Site].clampSite(capped); err != nil {
				return err
			}
		}
		return nil
	}
	workers := a.Workers
	if workers > len(a.work) {
		workers = len(a.work)
	}
	a.errs = a.errs[:0]
	for range a.work {
		a.errs = append(a.errs, nil)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				k := int(next.Add(1)) - 1
				if k >= len(a.work) {
					return
				}
				a.errs[k] = a.caches[sites[a.work[k]].Site].clampSite(capped)
			}
		}()
	}
	wg.Wait()
	for _, err := range a.errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Allocate runs one global allocation epoch, reusing whatever the previous
// epoch already established. The semantics — and the bits of the result —
// are exactly Allocate's; see the package comment for the three passes.
func (a *Allocator) Allocate(sites []SiteDemand, capped bool) (*Result, error) {
	// Fast path: inputs identical to the previous successful epoch — the
	// steady state between demand shifts. The cached result is that epoch's
	// answer, which is the answer for these inputs too; nothing allocates.
	if a.havePrev && capped == a.capped && len(sites) == len(a.order) {
		same := true
		for i := range sites {
			if !siteEqual(&a.order[i].prev, &sites[i]) {
				same = false
				break
			}
		}
		if same {
			return &a.res, nil
		}
	}

	if err := validate(sites); err != nil {
		return a.fail(err)
	}
	if a.hier != nil {
		for i := range sites {
			if _, ok := a.hierSites[sites[i].Site]; !ok {
				return a.fail(fmt.Errorf("allocation: site %q not assigned to any hierarchy group", sites[i].Site))
			}
		}
	}
	if capped != a.capped {
		// The water-filling refinement changes every division; nothing
		// cached under the other flag may be reused.
		for _, c := range a.caches {
			c.haveWant = false
			c.haveLocal = false
		}
		a.capped = capped
	}

	// Refresh per-site caches and mark dirty sites.
	a.dirty = a.dirty[:0]
	for i := range sites {
		s := &sites[i]
		c := a.caches[s.Site]
		d := false
		if c == nil {
			c = &siteCache{}
			a.caches[s.Site] = c
			c.rebuild(s)
			d = true
		} else if !siteEqual(&c.prev, s) {
			c.rebuild(s)
			d = true
		}
		a.dirty = append(a.dirty, d)
	}
	if len(a.caches) > len(sites) {
		clear(a.nameSet)
		for i := range sites {
			a.nameSet[sites[i].Site] = true
		}
		for name := range a.caches {
			if !a.nameSet[name] {
				delete(a.caches, name)
			}
		}
	}

	a.res.Grants = a.res.Grants[:0]
	a.res.TotalCapacityCPU = 0
	a.res.TotalDesiredCPU = 0
	a.res.StrandedCPU = 0
	a.res.DriftCPU = 0
	a.res.ReclaimedCPU = 0
	a.res.Reclaims = a.res.Reclaims[:0]
	for i := range sites {
		a.res.TotalCapacityCPU += sites[i].CapacityCPU
		for _, fd := range sites[i].Functions {
			a.res.TotalDesiredCPU += fd.DesiredCPU
		}
	}

	// Pass 1 — entitlement: capped water-filling over the federation's
	// total edge capacity, site → user → function. Clean sites mount their
	// cached subtree unchanged; only the root's child list is rebuilt (the
	// site order may have changed even when no site's content did). In
	// hierarchical mode the site trees mount under their group vertices
	// instead — a depth-1 hierarchy (one leaf group over every site)
	// collapses to the identical flat tree, which is what keeps it
	// bit-for-bit with the flat allocator.
	a.root.Children = a.root.Children[:0]
	if a.hier == nil {
		for i := range sites {
			a.root.Children = append(a.root.Children, a.caches[sites[i].Site].tree)
		}
	} else {
		a.mountHierChildren(a.hier.Root, a.root)
	}
	if err := fairshare.AllocateTreeInto(a.root, a.res.TotalCapacityCPU, capped, a.entitled); err != nil {
		return a.fail(err)
	}
	if a.hier != nil {
		// Deserved quotas: demand-independent guaranteed shares cascaded
		// down the same tree the entitlement pass just divided.
		clear(a.deserved)
		a.cascadeDeserved(a.root, a.res.TotalCapacityCPU)
	}

	// Pass 2 — feasibility: clamp each site's enforceable grants to its
	// physical capacity. The clamp input is the per-function
	// min(entitlement, desire) vector; a clean site whose vector is
	// unchanged — entitlements depend on every site, so dirtiness elsewhere
	// can shift it — reuses last epoch's clamp verbatim. The rest are
	// recomputed, in parallel when Workers allows.
	a.work = a.work[:0]
	for i := range sites {
		c := a.caches[sites[i].Site]
		c.wantNext = c.wantNext[:0]
		for j, fd := range c.prev.Functions {
			e := a.entitled[c.leafIDs[j]]
			if e > fd.DesiredCPU {
				e = fd.DesiredCPU
			}
			c.wantNext = append(c.wantNext, e)
		}
		if a.dirty[i] || !c.haveWant || !int64sEqual(c.wantNext, c.want) {
			a.work = append(a.work, i)
		}
		c.want, c.wantNext = c.wantNext, c.want
		c.haveWant = true
	}
	if err := a.runClamps(sites, capped); err != nil {
		return a.fail(err)
	}
	clear(a.spare)
	for i := range sites {
		c := a.caches[sites[i].Site]
		// The pass-3 spread mutates the working grants in place; the pure
		// clamp result stays in c.clamp so clean sites can reuse it next
		// epoch.
		c.grants = append(c.grants[:0], c.clamp...)
		a.spare[sites[i].Site] = sites[i].CapacityCPU - c.sum
	}

	// Pass 3 — spreading: entitlement displaced by the physical clamp is
	// granted at other sites that serve the same function and have idle
	// capacity, arbitrated by a second weight-proportional water-filling.
	// Flat federations spread over every site at once; hierarchies spread
	// level by level, metro scopes first (spreadHier), and reclaim — when
	// enabled — then preempts borrowed capacity for starved deserved
	// quotas before stranded/drift accounting sees the grants.
	if a.hier == nil {
		a.allIdx = a.allIdx[:0]
		for i := range sites {
			a.allIdx = append(a.allIdx, i)
		}
		if err := a.spread(sites, a.allIdx, capped); err != nil {
			return a.fail(err)
		}
	} else {
		clear(a.sitePos)
		for i := range sites {
			a.sitePos[sites[i].Site] = i
		}
		a.metros = a.metros[:0]
		if _, err := a.spreadHier(sites, a.hier.Root, capped); err != nil {
			return a.fail(err)
		}
		if a.reclaim {
			a.runReclaim(sites)
		}
	}

	return a.finish(sites, capped)
}

// spread runs one scope of the pass-3 overflow water-filling over the
// sites at positions idxs (ascending): identical round structure and
// orderings to the one-shot allocator — overflow heaviest-first (ties by
// name), hosts most-spare-first (ties by site order). The flat federation
// is a single scope over every site.
func (a *Allocator) spread(sites []SiteDemand, idxs []int, capped bool) error {
	a.overflow = a.overflow[:0]
	clear(a.overflowOf)
	for _, i := range idxs {
		c := a.caches[sites[i].Site]
		for j, fd := range c.prev.Functions {
			if miss := c.want[j] - c.grants[j]; miss > 0 {
				k, ok := a.overflowOf[fd.Name]
				if !ok {
					k = len(a.overflow)
					a.overflowOf[fd.Name] = k
					a.overflow = append(a.overflow, spreadDemand{fn: fd.Name, weight: fd.Weight})
				}
				a.overflow[k].need += miss
				if fd.Weight > a.overflow[k].weight {
					// Sites may weight the same function differently; the
					// heaviest overflowing claim arbitrates for all of them.
					a.overflow[k].weight = fd.Weight
				}
			}
		}
	}
	sort.Slice(a.overflow, func(i, j int) bool {
		if a.overflow[i].weight != a.overflow[j].weight {
			return a.overflow[i].weight > a.overflow[j].weight
		}
		return a.overflow[i].fn < a.overflow[j].fn
	})
	// The sort moved elements; rebuild the name index before placement
	// rounds look functions up by ID.
	for k := range a.overflow {
		a.overflowOf[a.overflow[k].fn] = k
	}
	hostsOf := func(fn string) ([]host, int64) {
		a.hosts = a.hosts[:0]
		var total int64
		for _, i := range idxs {
			if a.spare[sites[i].Site] <= 0 {
				continue
			}
			c := a.caches[sites[i].Site]
			if _, serves := c.fnIndex[fn]; serves {
				a.hosts = append(a.hosts, host{sites[i].Site, a.spare[sites[i].Site], i})
				total += a.spare[sites[i].Site]
			}
		}
		sort.Slice(a.hosts, func(i, j int) bool {
			if a.hosts[i].spare != a.hosts[j].spare {
				return a.hosts[i].spare > a.hosts[j].spare
			}
			return a.hosts[i].order < a.hosts[j].order
		})
		return a.hosts, total
	}
	for {
		a.demands = a.demands[:0]
		var pool int64
		clear(a.inPool)
		for k := range a.overflow {
			d := &a.overflow[k]
			if d.need <= 0 {
				continue
			}
			hosts, hostSpare := hostsOf(d.fn)
			if hostSpare == 0 {
				continue
			}
			want := d.need
			if want > hostSpare {
				want = hostSpare
			}
			a.demands = append(a.demands, fairshare.Demand{ID: d.fn, Weight: d.weight, Desired: want})
			for _, h := range hosts {
				if !a.inPool[h.site] {
					a.inPool[h.site] = true
					pool += a.spare[h.site]
				}
			}
		}
		if len(a.demands) == 0 {
			break
		}
		allocs, err := fairshare.AdjustCapped(a.demands, pool)
		if err != nil {
			return err
		}
		progress := false
		for _, al := range allocs {
			hosts, hostSpare := hostsOf(al.ID)
			amount := al.Adjusted
			if amount > hostSpare {
				amount = hostSpare
			}
			if amount <= 0 {
				continue
			}
			rem := amount
			for _, h := range hosts {
				take := amount * h.spare / hostSpare
				hc := a.caches[h.site]
				hc.grants[hc.fnIndex[al.ID]] += take
				a.spare[h.site] -= take
				rem -= take
			}
			for _, h := range hosts {
				if rem == 0 {
					break
				}
				take := a.spare[h.site]
				if take > rem {
					take = rem
				}
				if take > 0 {
					hc := a.caches[h.site]
					hc.grants[hc.fnIndex[al.ID]] += take
					a.spare[h.site] -= take
					rem -= take
				}
			}
			a.overflow[a.overflowOf[al.ID]].need -= amount
			progress = true
		}
		if !progress {
			break
		}
	}
	return nil
}

// finish computes the stranded/drift accounting and materializes the
// result rows from the per-site working grants — common to flat and
// hierarchical epochs, always over the final (post-spread, post-reclaim)
// grants.
func (a *Allocator) finish(sites []SiteDemand, capped bool) (*Result, error) {
	// Stranded capacity: idle CPU that even spreading could not pair with
	// the demand still unmet federation-wide.
	var totalSpare, totalUnmet int64
	clear(a.perFnDesired)
	clear(a.perFnGranted)
	for i := range sites {
		totalSpare += a.spare[sites[i].Site]
		c := a.caches[sites[i].Site]
		for j, fd := range c.prev.Functions {
			a.perFnDesired[fd.Name] += fd.DesiredCPU
			a.perFnGranted[fd.Name] += c.grants[j]
		}
	}
	for fn, d := range a.perFnDesired {
		if miss := d - a.perFnGranted[fn]; miss > 0 {
			totalUnmet += miss
		}
	}
	a.res.StrandedCPU = totalSpare
	if totalUnmet < totalSpare {
		a.res.StrandedCPU = totalUnmet
	}

	// Drift: L1 distance to the allocation each site would have computed
	// locally from the same demands. The local division depends only on the
	// site's own demand report, so clean sites reuse last epoch's.
	for i := range sites {
		c := a.caches[sites[i].Site]
		if !c.haveLocal {
			if err := fairshare.AllocateTreeInto(c.tree, c.prev.CapacityCPU, capped, c.localMap); err != nil {
				return a.fail(err)
			}
			c.haveLocal = true
		}
		for j := range c.leafIDs {
			d := c.grants[j] - c.localMap[c.leafIDs[j]]
			if d < 0 {
				d = -d
			}
			a.res.DriftCPU += d
		}
	}

	for i := range sites {
		c := a.caches[sites[i].Site]
		for j, fd := range c.prev.Functions {
			g := Grant{
				Site:        sites[i].Site,
				Function:    fd.Name,
				DesiredCPU:  fd.DesiredCPU,
				EntitledCPU: a.entitled[c.leafIDs[j]],
				GrantedCPU:  c.grants[j],
			}
			if a.hier != nil {
				// Deserved is the demand-independent quota; anything
				// granted above it is borrowed (and revocable by reclaim).
				// Flat federations leave both fields zero.
				g.DeservedCPU = a.deserved[c.leafIDs[j]]
				if b := g.GrantedCPU - g.DeservedCPU; b > 0 {
					g.BorrowedCPU = b
				}
			}
			a.res.Grants = append(a.res.Grants, g)
		}
	}

	a.order = a.order[:0]
	for i := range sites {
		a.order = append(a.order, a.caches[sites[i].Site])
	}
	a.havePrev = true
	return &a.res, nil
}
