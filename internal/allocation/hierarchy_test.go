package allocation

import (
	"fmt"
	"testing"

	"lass/internal/xrand"
)

func TestHierarchyValidate(t *testing.T) {
	cases := []struct {
		name string
		h    *Hierarchy
	}{
		{"nil root", &Hierarchy{}},
		{"empty group", &Hierarchy{Root: &Group{ID: "r"}}},
		{"both children and sites", &Hierarchy{Root: &Group{ID: "r",
			Children: []*Group{{ID: "m", Sites: []string{"a"}}}, Sites: []string{"b"}}}},
		{"duplicate group id", &Hierarchy{Root: &Group{ID: "r", Children: []*Group{
			{ID: "m", Sites: []string{"a"}},
			{ID: "m", Sites: []string{"b"}},
		}}}},
		{"duplicate site assignment", &Hierarchy{Root: &Group{ID: "r", Children: []*Group{
			{ID: "m1", Sites: []string{"a"}},
			{ID: "m2", Sites: []string{"a"}},
		}}}},
		{"negative weight deep", &Hierarchy{Root: &Group{ID: "r", Children: []*Group{
			{ID: "g", Children: []*Group{{ID: "m", Weight: -1, Sites: []string{"a"}}}},
		}}}},
	}
	for _, tc := range cases {
		if err := tc.h.Validate(); err == nil {
			t.Errorf("%s: want validation error", tc.name)
		}
	}
	ok := &Hierarchy{Root: &Group{ID: "r", Children: []*Group{
		{ID: "west", Children: []*Group{
			{ID: "sea", Sites: []string{"a", "b"}},
			{ID: "pdx", Sites: []string{"c"}},
		}},
		{ID: "east", Sites: []string{"d"}},
	}}}
	if err := ok.Validate(); err != nil {
		t.Fatalf("valid hierarchy rejected: %v", err)
	}
	lv := ok.Levels()
	want := map[string]Level{
		"a": {Metro: 0, Region: 0}, "b": {Metro: 0, Region: 0},
		"c": {Metro: 1, Region: 0}, "d": {Metro: 2, Region: 1},
	}
	for site, w := range want {
		if lv[site] != w {
			t.Errorf("Levels()[%q] = %+v, want %+v", site, lv[site], w)
		}
	}
	if err := ok.Covers([]string{"a", "d"}); err != nil {
		t.Errorf("Covers subset: %v", err)
	}
	if err := ok.Covers([]string{"a", "zz"}); err == nil {
		t.Error("Covers must reject an unassigned site")
	}
}

// depth1 builds the degenerate hierarchy — one leaf group over every site
// name the fuzz can generate — which must reproduce the flat allocator
// bit for bit on everything the flat allocator computes.
func depth1() *Hierarchy {
	g := &Group{ID: "all"}
	for i := 0; i < 12; i++ {
		g.Sites = append(g.Sites, fmt.Sprintf("s%02d", i))
	}
	return &Hierarchy{Root: g}
}

// diffFlatFields compares the fields the flat allocator produces; the
// hierarchy additionally fills DeservedCPU/BorrowedCPU, which flat mode
// leaves zero, so the comparison masks them.
func diffFlatFields(want, got *Result) string {
	if want.TotalCapacityCPU != got.TotalCapacityCPU ||
		want.TotalDesiredCPU != got.TotalDesiredCPU ||
		want.StrandedCPU != got.StrandedCPU ||
		want.DriftCPU != got.DriftCPU {
		return fmt.Sprintf("summary: want %+v got %+v",
			[4]int64{want.TotalCapacityCPU, want.TotalDesiredCPU, want.StrandedCPU, want.DriftCPU},
			[4]int64{got.TotalCapacityCPU, got.TotalDesiredCPU, got.StrandedCPU, got.DriftCPU})
	}
	if len(want.Grants) != len(got.Grants) {
		return fmt.Sprintf("grant count: want %d got %d", len(want.Grants), len(got.Grants))
	}
	for i := range want.Grants {
		w, g := want.Grants[i], got.Grants[i]
		if w.Site != g.Site || w.Function != g.Function || w.DesiredCPU != g.DesiredCPU ||
			w.EntitledCPU != g.EntitledCPU || w.GrantedCPU != g.GrantedCPU {
			return fmt.Sprintf("grant %d: want %+v got %+v", i, w, g)
		}
	}
	return ""
}

// TestDepth1HierarchyMatchesFlatFuzz is the PR's differential guard: a
// depth-1 hierarchy (one leaf group over every site, reclaim off) mounts
// the identical pass-1 tree and runs a single spread scope, so its output
// must match the flat incremental allocator — which the flat fuzz in turn
// pins to the frozen one-shot reference — on every flat field, across
// randomized epoch sequences, including error parity.
func TestDepth1HierarchyMatchesFlatFuzz(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		rng := xrand.New(uint64(seed))
		flat := NewAllocator()
		hier := NewAllocator()
		if err := hier.SetHierarchy(depth1(), false); err != nil {
			t.Fatal(err)
		}
		sites := fuzzFederation(rng)
		for epoch := 0; epoch < 40; epoch++ {
			capped := rng.Intn(4) != 0
			fres, ferr := flat.Allocate(sites, capped)
			hres, herr := hier.Allocate(cloneSites(sites), capped)
			if (ferr == nil) != (herr == nil) {
				t.Fatalf("seed %d epoch %d: error divergence flat=%v hier=%v", seed, epoch, ferr, herr)
			}
			if ferr != nil {
				if ferr.Error() != herr.Error() {
					t.Fatalf("seed %d epoch %d: error text flat=%q hier=%q", seed, epoch, ferr, herr)
				}
			} else {
				if d := diffFlatFields(fres, hres); d != "" {
					t.Fatalf("seed %d epoch %d: %s", seed, epoch, d)
				}
				if len(hres.Reclaims) != 0 || hres.ReclaimedCPU != 0 {
					t.Fatalf("seed %d epoch %d: reclaim-off epoch recorded reclaims", seed, epoch)
				}
				for _, g := range hres.Grants {
					if g.DeservedCPU < 0 {
						t.Fatalf("seed %d epoch %d: negative deserved %+v", seed, epoch, g)
					}
					wantB := g.GrantedCPU - g.DeservedCPU
					if wantB < 0 {
						wantB = 0
					}
					if g.BorrowedCPU != wantB {
						t.Fatalf("seed %d epoch %d: borrowed %+v", seed, epoch, g)
					}
				}
			}
			sites = mutate(rng, sites)
		}
	}
}

// hierReclaimSites is the canonical starvation scenario: site tiny's
// deserved share dwarfs its physical capacity, peer big is saturated with
// over-quota grants for bulk, and the idle site's spare cannot host f —
// so the spread pass strands f's displaced share and only reclaim (which
// revokes granted, not idle, capacity) can recover it.
func hierReclaimSites() []SiteDemand {
	return []SiteDemand{
		{Site: "tiny", Weight: 1, CapacityCPU: 100, Functions: []FunctionDemand{
			{Name: "f", Weight: 1, DesiredCPU: 1000},
		}},
		{Site: "big", Weight: 1, CapacityCPU: 1000, Functions: []FunctionDemand{
			{Name: "f", Weight: 1, DesiredCPU: 0},
			{Name: "bulk", Weight: 1, DesiredCPU: 2000},
		}},
		{Site: "idle", Weight: 1, CapacityCPU: 1000, Functions: []FunctionDemand{
			{Name: "other", Weight: 1, DesiredCPU: 100},
		}},
	}
}

func hierOneMetro() *Hierarchy {
	return &Hierarchy{Root: &Group{ID: "metro", Sites: []string{"tiny", "big", "idle"}}}
}

func TestHierarchyReclaimMovesBorrowed(t *testing.T) {
	sites := hierReclaimSites()
	borrow, err := AllocateHierarchical(hierOneMetro(), cloneSites(sites), true, false)
	if err != nil {
		t.Fatal(err)
	}
	// Borrow-only: f's displaced share is stranded (idle doesn't serve f,
	// big has no spare) and bulk holds big's capacity above its deserved.
	if g := grantOf(t, borrow, "big", "bulk"); g.BorrowedCPU == 0 {
		t.Fatalf("bulk at big should be over quota, got %+v", g)
	}
	borrowF := grantOf(t, borrow, "tiny", "f").GrantedCPU + grantOf(t, borrow, "big", "f").GrantedCPU

	reclaim, err := AllocateHierarchical(hierOneMetro(), cloneSites(sites), true, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(reclaim.Reclaims) == 0 || reclaim.ReclaimedCPU == 0 {
		t.Fatalf("want reclaims, got %+v", reclaim.Reclaims)
	}
	r := reclaim.Reclaims[0]
	if r.Group != "metro" || r.Site != "big" || r.HomeSite != "tiny" || r.From != "bulk" || r.To != "f" {
		t.Fatalf("unexpected reclaim directive %+v", r)
	}
	reclaimF := grantOf(t, reclaim, "tiny", "f").GrantedCPU + grantOf(t, reclaim, "big", "f").GrantedCPU
	if reclaimF <= borrowF {
		t.Fatalf("reclaim must strictly raise f's granted capacity: borrow-only %d, reclaim %d", borrowF, reclaimF)
	}
	// The starved function never ends above its deserved-capped desire,
	// and the transfer is zero-sum per site.
	deservedF := grantOf(t, reclaim, "tiny", "f").DeservedCPU
	if reclaimF > deservedF {
		t.Fatalf("f granted %d across the metro, above its home deserved %d", reclaimF, deservedF)
	}
	for _, s := range sites {
		var sum int64
		for _, g := range reclaim.Grants {
			if g.Site == s.Site {
				sum += g.GrantedCPU
			}
		}
		if sum > s.CapacityCPU {
			t.Fatalf("site %s granted %d above capacity %d after reclaim", s.Site, sum, s.CapacityCPU)
		}
	}
	// Running the same epoch again through the incremental fast path must
	// return the identical reclaim result.
	a := NewAllocator()
	if err := a.SetHierarchy(hierOneMetro(), true); err != nil {
		t.Fatal(err)
	}
	first, err := a.Allocate(cloneSites(sites), true)
	if err != nil {
		t.Fatal(err)
	}
	n := len(first.Reclaims)
	again, err := a.Allocate(cloneSites(sites), true)
	if err != nil {
		t.Fatal(err)
	}
	if len(again.Reclaims) != n {
		t.Fatalf("fast-path epoch changed reclaims: %d → %d", n, len(again.Reclaims))
	}
}

// fuzzHierarchy partitions the fuzz site-name space into 1–3 metros under
// 1–2 regions.
func fuzzHierarchy(rng *xrand.Rand) *Hierarchy {
	metros := 1 + rng.Intn(3)
	groups := make([]*Group, metros)
	for m := range groups {
		groups[m] = &Group{ID: fmt.Sprintf("m%d", m), Weight: float64(1 + rng.Intn(3))}
	}
	for i := 0; i < 12; i++ {
		m := rng.Intn(metros)
		groups[m].Sites = append(groups[m].Sites, fmt.Sprintf("s%02d", i))
	}
	if metros == 1 {
		return &Hierarchy{Root: groups[0]}
	}
	if rng.Intn(2) == 0 {
		return &Hierarchy{Root: &Group{ID: "root", Children: groups}}
	}
	return &Hierarchy{Root: &Group{ID: "root", Children: []*Group{
		{ID: "r0", Weight: 2, Children: groups[:1]},
		{ID: "r1", Weight: 1, Children: groups[1:]},
	}}}
}

// TestHierarchyFuzzInvariants drives random hierarchies over random epoch
// sequences and asserts the structural invariants reclaim must preserve:
// grants stay non-negative, per-site totals never exceed capacity,
// borrowed is exactly the over-deserved excess, reclaim totals match the
// directives, and serial and 8-worker allocators agree bit for bit.
func TestHierarchyFuzzInvariants(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		rng := xrand.New(0x41e ^ uint64(seed))
		h := fuzzHierarchy(rng)
		serial := NewAllocator()
		parallel := NewAllocator()
		parallel.Workers = 8
		reclaim := seed%2 == 0
		if err := serial.SetHierarchy(h, reclaim); err != nil {
			t.Fatal(err)
		}
		if err := parallel.SetHierarchy(h, reclaim); err != nil {
			t.Fatal(err)
		}
		sites := fuzzFederation(rng)
		for epoch := 0; epoch < 30; epoch++ {
			sres, serr := serial.Allocate(sites, true)
			pres, perr := parallel.Allocate(cloneSites(sites), true)
			if (serr == nil) != (perr == nil) {
				t.Fatalf("seed %d epoch %d: serial err %v parallel err %v", seed, epoch, serr, perr)
			}
			if serr == nil {
				if d := diffResults(sres, pres); d != "" {
					t.Fatalf("seed %d epoch %d: serial vs parallel: %s", seed, epoch, d)
				}
				checkHierInvariants(t, seed, epoch, sites, sres)
			}
			sites = mutate(rng, sites)
		}
	}
}

func checkHierInvariants(t *testing.T, seed int64, epoch int, sites []SiteDemand, res *Result) {
	t.Helper()
	siteCap := map[string]int64{}
	siteSum := map[string]int64{}
	for _, s := range sites {
		siteCap[s.Site] = s.CapacityCPU
	}
	for _, g := range res.Grants {
		if g.GrantedCPU < 0 || g.DeservedCPU < 0 {
			t.Fatalf("seed %d epoch %d: negative grant %+v", seed, epoch, g)
		}
		wantB := g.GrantedCPU - g.DeservedCPU
		if wantB < 0 {
			wantB = 0
		}
		if g.BorrowedCPU != wantB {
			t.Fatalf("seed %d epoch %d: borrowed mismatch %+v", seed, epoch, g)
		}
		siteSum[g.Site] += g.GrantedCPU
	}
	for _, s := range sites {
		if siteSum[s.Site] > siteCap[s.Site] {
			t.Fatalf("seed %d epoch %d: site %s granted %d over capacity %d",
				seed, epoch, s.Site, siteSum[s.Site], siteCap[s.Site])
		}
	}
	var moved int64
	for _, r := range res.Reclaims {
		if r.CPU <= 0 || r.Site == r.HomeSite || r.From == r.To {
			t.Fatalf("seed %d epoch %d: malformed reclaim %+v", seed, epoch, r)
		}
		moved += r.CPU
	}
	if moved != res.ReclaimedCPU {
		t.Fatalf("seed %d epoch %d: ReclaimedCPU %d != sum of directives %d",
			seed, epoch, res.ReclaimedCPU, moved)
	}
}

func TestHierarchyUnassignedSiteRejected(t *testing.T) {
	a := NewAllocator()
	h := &Hierarchy{Root: &Group{ID: "m", Sites: []string{"a"}}}
	if err := a.SetHierarchy(h, false); err != nil {
		t.Fatal(err)
	}
	sites := []SiteDemand{
		{Site: "a", CapacityCPU: 100, Functions: []FunctionDemand{{Name: "f", Weight: 1, DesiredCPU: 10}}},
		{Site: "b", CapacityCPU: 100, Functions: []FunctionDemand{{Name: "f", Weight: 1, DesiredCPU: 10}}},
	}
	if _, err := a.Allocate(sites, true); err == nil {
		t.Fatal("want error for a site missing from the hierarchy")
	}
}

// TestHierarchySteadyStateZeroAllocs: the unchanged-input fast path is
// mode-independent, so hierarchical steady-state epochs stay allocation
// free exactly like flat ones.
func TestHierarchySteadyStateZeroAllocs(t *testing.T) {
	a := NewAllocator()
	a.Workers = 8
	if err := a.SetHierarchy(hierOneMetro(), true); err != nil {
		t.Fatal(err)
	}
	sites := hierReclaimSites()
	if _, err := a.Allocate(sites, true); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := a.Allocate(sites, true); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("hierarchical steady-state epochs allocated %.1f times, want 0", allocs)
	}
}

// BenchmarkHierarchicalAllocator measures all-dirty hierarchical epochs
// (the expensive end: every pass runs, including metro-scoped spreading
// and reclaim) on a 32-site, 4-metro federation.
func BenchmarkHierarchicalAllocator(b *testing.B) {
	const nsites, nmetros = 32, 4
	h := &Hierarchy{Root: &Group{ID: "root"}}
	for m := 0; m < nmetros; m++ {
		h.Root.Children = append(h.Root.Children, &Group{ID: fmt.Sprintf("m%d", m)})
	}
	var sites []SiteDemand
	for i := 0; i < nsites; i++ {
		g := h.Root.Children[i%nmetros]
		name := fmt.Sprintf("s%02d", i)
		g.Sites = append(g.Sites, name)
		sites = append(sites, SiteDemand{
			Site: name, Weight: 1, CapacityCPU: int64(1000 + 100*(i%7)),
			Functions: []FunctionDemand{
				{Name: "auth", Weight: 2, DesiredCPU: int64(400 * (i % 5))},
				{Name: "encode", Weight: 1, DesiredCPU: int64(300 * ((i + 2) % 4))},
				{Name: "infer", Weight: 3, DesiredCPU: int64(250 * ((i + 1) % 6))},
			},
		})
	}
	a := NewAllocator()
	if err := a.SetHierarchy(h, true); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Shift one site's demand every iteration so no epoch takes the
		// unchanged fast path.
		sites[i%nsites].Functions[0].DesiredCPU += int64(1 + i%3)
		if _, err := a.Allocate(sites, true); err != nil {
			b.Fatal(err)
		}
	}
}
