package federation

import (
	"math"
	"reflect"
	"strings"
	"testing"
	"time"

	"lass/internal/azure"
	"lass/internal/cluster"
	"lass/internal/controller"
	"lass/internal/core"
	"lass/internal/functions"
	"lass/internal/workload"
	"lass/internal/xrand"
)

// legacyEnumPlacer freezes the hard-coded place() switch the federation
// shipped before the Placer API (PR 1–3), expressed against the same
// internal helpers the built-in placers use. The equivalence test runs it
// against each built-in placer and demands bit-for-bit identical results,
// so a drive-by edit to a built-in policy cannot silently change the
// historical enum behaviour.
type legacyEnumPlacer struct{ policy Policy }

func (l legacyEnumPlacer) Name() string { return "legacy-" + l.policy.String() }

func (l legacyEnumPlacer) Place(ctx *PlacementContext) Decision {
	f, s, q := ctx.f, ctx.origin, ctx.q
	fn := q.Spec().Name
	if ctx.sheddable {
		switch l.policy {
		case Never:
			return Reject()
		case CloudOnly:
			if f.cloudAdmits(q) {
				return ToCloud()
			}
			return Reject()
		case NearestPeer:
			if p := f.selectPeer(s, fn); p != nil {
				return ToSite(p.Index)
			}
			if f.cloudAdmits(q) {
				return ToCloud()
			}
			return Reject()
		case ModelDriven:
			deadline := f.cfg.ResponseSLO.Seconds()
			var best *Site
			bestResp := math.Inf(1)
			for _, p := range s.peers {
				legs := f.rtt(s.Index, p.Index) + f.rtt(p.Index, s.Index)
				if resp := f.predictResponse(p, fn, legs); resp < bestResp {
					best, bestResp = p, resp
				}
			}
			if cloud := f.predictCloud(q); cloud < bestResp {
				if cloud <= deadline && f.cloudAdmits(q) {
					return ToCloud()
				}
				return Reject()
			}
			if bestResp <= deadline {
				return ToSite(best.Index)
			}
			return Reject()
		}
	}
	switch l.policy {
	case CloudOnly:
		if f.overloaded(s, fn) {
			return ToCloud()
		}
	case NearestPeer:
		if !f.overloaded(s, fn) {
			return Local()
		}
		if p := f.selectPeer(s, fn); p != nil {
			return ToSite(p.Index)
		}
		return ToCloud()
	case ModelDriven:
		deadline := f.cfg.ResponseSLO.Seconds()
		local := f.predictResponse(s, fn, 0)
		if local <= deadline {
			return Local()
		}
		var best *Site
		bestResp := local
		for _, p := range s.peers {
			legs := f.rtt(s.Index, p.Index) + f.rtt(p.Index, s.Index)
			if resp := f.predictResponse(p, fn, legs); resp < bestResp {
				best, bestResp = p, resp
			}
		}
		if f.predictCloud(q) < bestResp {
			return ToCloud()
		}
		if best != nil {
			return ToSite(best.Index)
		}
	}
	return Local()
}

// traceSites synthesizes the federation-trace workload (one bursty hot
// site over capacity, two steady peers with headroom) the equivalence
// suite drives placers with.
func traceSites(t *testing.T, seed uint64, minutes int) []core.Config {
	t.Helper()
	spec, err := functions.ByName("squeezenet")
	if err != nil {
		t.Fatal(err)
	}
	rng := xrand.New(seed ^ 0x7ace)
	shapes := []struct {
		archetype azure.Archetype
		mean      float64
	}{
		{azure.Bursty, 1200},
		{azure.Steady, 600},
		{azure.Steady, 600},
	}
	var rows []azure.Row
	for _, sh := range shapes {
		row, err := azure.Synthesize(rng, azure.SynthConfig{Archetype: sh.archetype, MeanPerMinute: sh.mean})
		if err != nil {
			t.Fatal(err)
		}
		rows = append(rows, row)
	}
	start := azure.FindActiveWindow(rows[0].Counts, minutes)
	var sites []core.Config
	for i, row := range rows {
		wl, err := workload.FromPerMinuteCounts(row.Window(start, start+minutes))
		if err != nil {
			t.Fatal(err)
		}
		sites = append(sites, core.Config{
			Cluster:    cluster.Config{Nodes: 1, CPUPerNode: 4000, MemPerNode: 8192, Policy: cluster.WorstFit},
			Controller: controller.Config{MinContainers: 1},
			Seed:       seed ^ uint64(0xace1+i),
			Functions:  []core.FunctionConfig{{Spec: spec, Workload: wl, Prewarm: 1}},
		})
	}
	return sites
}

// runCounters runs one federated configuration and flattens every per-site
// and aggregate counter the sweep reports into a comparable struct slice.
type siteCounters struct {
	ServedLocal, OffloadedPeer, OffloadedCloud, PeerServed, Rejected uint64
	CloudColdStarts, CloudTimedOut, CloudQueued                      uint64
	CloudCost                                                        float64
	Violations, Total, Unresolved, Arrivals                          uint64
	P95                                                              float64
}

func runCounters(t *testing.T, cfg Config, dur time.Duration) ([]siteCounters, uint64) {
	t.Helper()
	fed, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := fed.Run(dur)
	if err != nil {
		t.Fatal(err)
	}
	var out []siteCounters
	for _, s := range res.Sites {
		var arrivals uint64
		for _, fr := range s.Core.Functions {
			arrivals += fr.Arrivals
		}
		out = append(out, siteCounters{
			ServedLocal:     s.ServedLocal,
			OffloadedPeer:   s.OffloadedPeer,
			OffloadedCloud:  s.OffloadedCloud,
			PeerServed:      s.PeerServed,
			Rejected:        s.Rejected,
			CloudColdStarts: s.CloudColdStarts,
			CloudTimedOut:   s.CloudTimedOut,
			CloudQueued:     s.CloudQueued,
			CloudCost:       s.CloudCost,
			Violations:      s.Violations(),
			Total:           s.SLO.Total(),
			Unresolved:      s.Unresolved,
			Arrivals:        arrivals,
			P95:             s.Responses.Quantile(0.95),
		})
	}
	return out, res.CloudServed
}

// TestBuiltinPlacersMatchLegacyEnum is the placer/enum equivalence guard
// the API redesign promised: each built-in placer, selected through the
// deprecated enum shim, produces bit-for-bit the per-site
// violation/offload/reject counters of the frozen pre-API place() switch
// on the federation-trace workload — across plain placement, offload-aware
// admission, the global fair-share allocator, power-of-two-choices peer
// selection, and a throttled cloud.
func TestBuiltinPlacersMatchLegacyEnum(t *testing.T) {
	const dur = 6 * time.Minute
	variants := []struct {
		name   string
		mutate func(*Config)
	}{
		{"base", func(*Config) {}},
		{"admission", func(c *Config) { c.OffloadAwareAdmission = true }},
		{"admission+global", func(c *Config) {
			c.OffloadAwareAdmission = true
			c.GlobalFairShare = true
		}},
		{"admission+p2c+throttled", func(c *Config) {
			c.OffloadAwareAdmission = true
			c.PeerSelection = PowerOfTwoChoices
			c.CloudMaxConcurrency = 2
		}},
	}
	for _, policy := range Policies() {
		for _, v := range variants {
			base := Config{Policy: policy, Seed: 7}
			v.mutate(&base)

			enumCfg := base
			enumCfg.Sites = traceSites(t, 11, 6)
			gotSites, gotCloud := runCounters(t, enumCfg, dur)

			legacyCfg := base
			legacyCfg.Sites = traceSites(t, 11, 6)
			legacyCfg.Placer = legacyEnumPlacer{policy: policy}
			wantSites, wantCloud := runCounters(t, legacyCfg, dur)

			if !reflect.DeepEqual(gotSites, wantSites) {
				t.Errorf("%s/%s: built-in placer diverged from legacy enum behaviour:\n got %+v\nwant %+v",
					policy, v.name, gotSites, wantSites)
			}
			if gotCloud != wantCloud {
				t.Errorf("%s/%s: cloud served %d via placer, %d via legacy", policy, v.name, gotCloud, wantCloud)
			}
		}
	}
}

// TestGrantAwareMatchesModelDrivenWithoutGrants: with per-site-local
// allocation there are no grants to fold in, so the grant-aware policy
// must degrade to exactly model-driven — bit-for-bit.
func TestGrantAwareMatchesModelDrivenWithoutGrants(t *testing.T) {
	const dur = 6 * time.Minute
	run := func(name string) ([]siteCounters, uint64) {
		p, err := PlacerByName(name)
		if err != nil {
			t.Fatal(err)
		}
		return runCounters(t, Config{Sites: traceSites(t, 13, 6), Placer: p, Seed: 7}, dur)
	}
	modelSites, modelCloud := run("model-driven")
	grantSites, grantCloud := run("grant-aware")
	if !reflect.DeepEqual(modelSites, grantSites) || modelCloud != grantCloud {
		t.Errorf("grant-aware diverged from model-driven without global grants:\n got %+v\nwant %+v",
			grantSites, modelSites)
	}
}

// TestCostBoundedPrefersFreePeer: with a well-provisioned free peer
// available, the cost-bounded policy routes the overflow there and pays
// the cloud only for the prediction spikes no free candidate covers — a
// strictly smaller bill than model-driven's on the same scenario, with no
// more violations.
func TestCostBoundedPrefersFreePeer(t *testing.T) {
	run := func(name string) (SiteResult, float64) {
		p, err := PlacerByName(name)
		if err != nil {
			t.Fatal(err)
		}
		helper := staticSite(t, "squeezenet", 2, 44, cluster.PaperCluster())
		// Provision the peer for the whole shed load up front, so its
		// prediction meets the deadline from the first offload on.
		helper.Controller.MinContainers = 8
		helper.Functions[0].Prewarm = 8
		fed, err := New(Config{
			Sites: []core.Config{
				staticSite(t, "squeezenet", 60, 33, tinyCluster()),
				helper,
			},
			Placer: p,
			Seed:   7,
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := fed.Run(2 * time.Minute)
		if err != nil {
			t.Fatal(err)
		}
		return res.Sites[0], res.CloudCost
	}
	cost, costBill := run("cost-bounded")
	model, modelBill := run("model-driven")
	if cost.OffloadedPeer == 0 {
		t.Fatalf("cost-bounded shed nothing to the free peer: %+v", cost)
	}
	if cost.OffloadedPeer <= cost.OffloadedCloud {
		t.Errorf("cost-bounded preferred the cloud (%d) over the free peer (%d)",
			cost.OffloadedCloud, cost.OffloadedPeer)
	}
	if costBill >= modelBill {
		t.Errorf("cost-bounded bill $%.6f not below model-driven's $%.6f", costBill, modelBill)
	}
	if cost.Violations() > model.Violations() {
		t.Errorf("cost-bounded traded its $%.6f saving for more violations: %d vs %d",
			modelBill-costBill, cost.Violations(), model.Violations())
	}
}

// TestCostBoundedPaysCloudWhenNoPeerMeetsSLO: alone in the federation with
// an overloaded cluster, the cheapest candidate meeting the SLO is the
// cloud — cost-bounded must pay rather than violate.
func TestCostBoundedPaysCloudWhenNoPeerMeetsSLO(t *testing.T) {
	p, err := PlacerByName("cost-bounded")
	if err != nil {
		t.Fatal(err)
	}
	fed, err := New(Config{
		Sites:  []core.Config{staticSite(t, "squeezenet", 60, 33, tinyCluster())},
		Placer: p,
		Seed:   7,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := fed.Run(2 * time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if res.Sites[0].OffloadedCloud == 0 || res.CloudCost == 0 {
		t.Errorf("cost-bounded never paid the cloud on a hopelessly overloaded lone site: %+v", res.Sites[0])
	}
}

// TestPlacerRegistry covers the registry contract: built-ins resolvable,
// case-insensitive lookup, unknown names and duplicate/invalid
// registrations rejected, custom placers selectable end-to-end.
func TestPlacerRegistry(t *testing.T) {
	for _, name := range BuiltinPlacerNames {
		p, err := PlacerByName(name)
		if err != nil {
			t.Fatalf("built-in %q not registered: %v", name, err)
		}
		if p.Name() != name {
			t.Errorf("placer %q reports name %q", name, p.Name())
		}
	}
	if p, err := PlacerByName("Model-Driven"); err != nil || p.Name() != "model-driven" {
		t.Errorf("case-insensitive lookup failed: %v, %v", p, err)
	}
	if p, err := ParsePlacer(" nearest-peer "); err != nil || p.Name() != "nearest-peer" {
		t.Errorf("whitespace-trimmed lookup failed: %v, %v", p, err)
	}
	if _, err := PlacerByName("bogus"); err == nil {
		t.Error("unknown placer name accepted")
	}
	if err := RegisterPlacer(neverPlacer{}); err == nil {
		t.Error("duplicate registration accepted")
	}
	if err := RegisterPlacer(badNamePlacer{}); err == nil {
		t.Error("whitespace placer name accepted")
	}
	if err := RegisterPlacer(nil); err == nil {
		t.Error("nil placer accepted")
	}

	registerForTest(t, stickyFirstPeer{})
	names := PlacerNames()
	if names[len(names)-1] != "sticky-first-peer" {
		t.Fatalf("custom placer missing from PlacerNames: %v", names)
	}
	p, err := PlacerByName("sticky-first-peer")
	if err != nil {
		t.Fatal(err)
	}
	fed, err := New(Config{
		Sites: []core.Config{
			staticSite(t, "squeezenet", 60, 33, tinyCluster()),
			staticSite(t, "squeezenet", 2, 44, cluster.PaperCluster()),
		},
		Placer: p,
		Seed:   7,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := fed.Run(time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if res.Placer != "sticky-first-peer" {
		t.Errorf("result reports placer %q", res.Placer)
	}
	if res.Sites[0].OffloadedPeer == 0 {
		t.Errorf("custom placer never offloaded: %+v", res.Sites[0])
	}
	if res.Sites[0].OffloadedCloud != 0 {
		t.Errorf("sticky placer used the cloud: %+v", res.Sites[0])
	}
}

// registerForTest registers a test placer, tolerating the duplicate-name
// error so repeated runs in one process (go test -count=N) still pass —
// the registry is process-global and has no unregister.
func registerForTest(t *testing.T, p Placer) {
	t.Helper()
	if err := RegisterPlacer(p); err != nil && !strings.Contains(err.Error(), "already registered") {
		t.Fatal(err)
	}
}

type badNamePlacer struct{}

func (badNamePlacer) Name() string                     { return "has space" }
func (badNamePlacer) Place(*PlacementContext) Decision { return Local() }

// stickyFirstPeer always sheds overload to the nearest peer, cloud never —
// a minimal custom policy exercising registration end to end.
type stickyFirstPeer struct{}

func (stickyFirstPeer) Name() string { return "sticky-first-peer" }

func (stickyFirstPeer) Place(ctx *PlacementContext) Decision {
	if !ctx.Overloaded(ctx.Origin()) {
		return Local()
	}
	if peers := ctx.PeersByRTT(); len(peers) > 0 {
		return ToSite(peers[0])
	}
	return Local()
}

// TestDecisionSanitized: a placer that probes every context accessor on
// every site — including a peer that serves a different function — and
// returns nonsense targets (out of range, the origin itself, a
// non-serving peer) must degrade to local service, not crash or
// mis-route. This is the no-bounds-obligation contract of the
// PlacementContext.
func TestDecisionSanitized(t *testing.T) {
	fed, err := New(Config{
		Sites: []core.Config{
			staticSite(t, "squeezenet", 20, 33, cluster.PaperCluster()),
			staticSite(t, "geofence", 2, 44, cluster.PaperCluster()),
		},
		Placer: selfTargetPlacer{},
		Seed:   7,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := fed.Run(time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	s := res.Sites[0]
	if s.OffloadedPeer != 0 || s.OffloadedCloud != 0 {
		t.Errorf("invalid targets were routed: %+v", s)
	}
	if s.ServedLocal == 0 {
		t.Error("nothing served locally after sanitizing invalid targets")
	}
}

// selfTargetPlacer sweeps every accessor over every site index (in range
// and out), then alternates between offloading to the origin itself, an
// out-of-range site, and a peer that does not serve the function — all
// invalid.
type selfTargetPlacer struct{}

func (selfTargetPlacer) Name() string { return "self-target" }

func (p selfTargetPlacer) Place(ctx *PlacementContext) Decision {
	for site := -1; site <= ctx.NumSites(); site++ {
		ctx.Overloaded(site)
		ctx.Accepts(site)
		ctx.Serves(site)
		ctx.PredictResponse(site)
		ctx.Headroom(site)
		ctx.QueueLength(site)
		ctx.Backlog(site)
		ctx.Containers(site)
		ctx.IdleContainers(site)
		ctx.ServiceCapacity(site)
		ctx.GrantedCPU(site)
		ctx.DesiredCPU(site)
		ctx.RTT(ctx.Origin(), site)
	}
	switch ctx.Backlog(ctx.Origin()) % 3 {
	case 0:
		return ToSite(ctx.Origin())
	case 1:
		return ToSite(1 << 20)
	}
	return ToSite(1) // in range, but site 1 serves geofence, not squeezenet
}

// TestBuiltinPlacerNamesGenerated guards the committed generated name list
// (placer_names_gen.go) against drifting from the live registry:
// regenerate with go generate ./internal/federation.
func TestBuiltinPlacerNamesGenerated(t *testing.T) {
	names := PlacerNames()
	if len(names) < len(BuiltinPlacerNames) {
		t.Fatalf("registry has %d placers, generated list %d", len(names), len(BuiltinPlacerNames))
	}
	// Built-ins register first (init), so they are a prefix of the
	// registration order even after tests add custom placers.
	if !reflect.DeepEqual(names[:len(BuiltinPlacerNames)], BuiltinPlacerNames) {
		t.Errorf("generated BuiltinPlacerNames %v stale vs registry %v — run go generate ./internal/federation",
			BuiltinPlacerNames, names[:len(BuiltinPlacerNames)])
	}
}
