package federation

import (
	"math"
	"testing"
	"time"

	"lass/internal/cluster"
	"lass/internal/core"
	"lass/internal/functions"
	"lass/internal/workload"
)

// detSpec is a deterministic-service-time function (SCV 0), so cloud
// response times are exact: 2×CloudRTT + optional cold start + mean.
func detSpec(mean time.Duration) functions.Spec {
	return functions.Spec{
		Name: "det", Language: "Go", CPUMillis: 1000, MemoryMiB: 512,
		MeanServiceTime: mean, SCV: 0, Slack: 0.25,
		ColdStart: 400 * time.Millisecond, Weight: 1,
	}
}

// shedAllSite builds a site whose cluster cannot host a single container,
// so every arrival is shed by the placement layer.
func shedAllSite(t *testing.T, spec functions.Spec, rate float64, seed uint64, timeLimit time.Duration) core.Config {
	t.Helper()
	wl, err := workload.NewStatic(rate)
	if err != nil {
		t.Fatal(err)
	}
	return core.Config{
		Cluster: cluster.Config{Nodes: 1, CPUPerNode: 100, MemPerNode: 64, Policy: cluster.WorstFit},
		Seed:    seed,
		Functions: []core.FunctionConfig{{
			Spec: spec, Workload: wl, TimeLimit: timeLimit,
		}},
	}
}

// TestCloudColdStartAndWarmReuse pins the warm-pool model: the first
// request after idle pays the function's cold start behind the cloud RTT,
// subsequent requests within the warm window are served warm, and the
// accrued cost matches the configured price points exactly.
func TestCloudColdStartAndWarmReuse(t *testing.T) {
	spec := detSpec(50 * time.Millisecond)
	fed, err := New(Config{
		Sites:  []core.Config{shedAllSite(t, spec, 2, 9, 0)},
		Policy: CloudOnly,
		Seed:   7,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := fed.Run(30 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	s := res.Sites[0]
	if s.OffloadedCloud == 0 {
		t.Fatalf("nothing offloaded to the cloud: %+v", s)
	}
	if s.CloudColdStarts == 0 {
		t.Error("no cloud cold starts: the first request after idle must pay one")
	}
	if s.CloudColdStarts >= s.OffloadedCloud {
		t.Errorf("every request cold-started (%d/%d): the warm window is not reusing instances",
			s.CloudColdStarts, s.OffloadedCloud)
	}
	// SCV 0 makes response times exact: warm = 2×50ms RTT + 50ms = 150ms,
	// cold = warm + 400ms cold start = 550ms.
	const eps = 1e-9
	if got := s.Responses.Min(); math.Abs(got-0.150) > eps {
		t.Errorf("warm cloud response %.6fs, want 0.150s", got)
	}
	if got := s.Responses.Max(); math.Abs(got-0.550) > eps {
		t.Errorf("cold cloud response %.6fs, want 0.550s", got)
	}
	// Cost accrues per offload at the default price points: invocation
	// price plus 50ms of billed execution at 0.5 GB.
	perReq := defaultCloudPricePerInvocation + 0.050*defaultCloudPricePerGBSecond*0.5
	want := float64(s.OffloadedCloud) * perReq
	if math.Abs(s.CloudCost-want) > 1e-12 {
		t.Errorf("cloud cost %.12f, want %.12f (%d offloads)", s.CloudCost, want, s.OffloadedCloud)
	}
	if res.CloudColdStarts != s.CloudColdStarts || math.Abs(res.CloudCost-s.CloudCost) > 1e-12 {
		t.Errorf("aggregate cloud counters %d/%f != site %d/%f",
			res.CloudColdStarts, res.CloudCost, s.CloudColdStarts, s.CloudCost)
	}
}

// TestCloudNoKeepAlive pins the negative-warm-window semantics: with no
// keep-alive, every cloud offload pays a cold start.
func TestCloudNoKeepAlive(t *testing.T) {
	spec := detSpec(50 * time.Millisecond)
	fed, err := New(Config{
		Sites:           []core.Config{shedAllSite(t, spec, 2, 9, 0)},
		Policy:          CloudOnly,
		CloudWarmWindow: -1,
		Seed:            7,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := fed.Run(30 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	s := res.Sites[0]
	if s.OffloadedCloud == 0 || s.CloudColdStarts != s.OffloadedCloud {
		t.Errorf("no-keep-alive cloud cold-started %d of %d offloads; want all",
			s.CloudColdStarts, s.OffloadedCloud)
	}
}

// TestCloudAlwaysWarmRestoresLegacyModel checks the opt-out: with
// CloudAlwaysWarm no request cold-starts and every response is exactly
// 2×RTT + service.
func TestCloudAlwaysWarmRestoresLegacyModel(t *testing.T) {
	spec := detSpec(50 * time.Millisecond)
	fed, err := New(Config{
		Sites:           []core.Config{shedAllSite(t, spec, 2, 9, 0)},
		Policy:          CloudOnly,
		CloudAlwaysWarm: true,
		Seed:            7,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := fed.Run(30 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	s := res.Sites[0]
	if s.CloudColdStarts != 0 {
		t.Errorf("always-warm cloud cold-started %d times", s.CloudColdStarts)
	}
	const eps = 1e-9
	if got := s.Responses.Max(); s.Responses.Count() == 0 || math.Abs(got-0.150) > eps {
		t.Errorf("always-warm response max %.6fs, want exactly 0.150s", got)
	}
	if s.CloudCost <= 0 {
		t.Error("always-warm cloud must still accrue cost")
	}
	// Negative prices are the explicit free tier: combined with
	// always-warm this is exactly the legacy idealized cloud.
	free, err := New(Config{
		Sites:                   []core.Config{shedAllSite(t, spec, 2, 9, 0)},
		Policy:                  CloudOnly,
		CloudAlwaysWarm:         true,
		CloudPricePerInvocation: -1,
		CloudPricePerGBSecond:   -1,
		Seed:                    7,
	})
	if err != nil {
		t.Fatal(err)
	}
	fres, err := free.Run(30 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if got := fres.Sites[0]; got.CloudCost != 0 || got.OffloadedCloud == 0 {
		t.Errorf("free-tier cloud accrued cost %.12f over %d offloads", got.CloudCost, got.OffloadedCloud)
	}
}

// TestCloudEnforcesTimeLimit covers the hard execution limit (§2.1) on the
// cloud path: a function whose service time exceeds its limit is killed in
// the cloud, never completes, and stays an SLO violation at the origin.
func TestCloudEnforcesTimeLimit(t *testing.T) {
	spec := detSpec(300 * time.Millisecond)
	fed, err := New(Config{
		Sites:  []core.Config{shedAllSite(t, spec, 2, 9, 100*time.Millisecond)},
		Policy: CloudOnly,
		Seed:   7,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := fed.Run(30 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	s := res.Sites[0]
	if s.OffloadedCloud == 0 {
		t.Fatalf("nothing offloaded to the cloud: %+v", s)
	}
	if s.CloudTimedOut != s.OffloadedCloud {
		t.Errorf("cloud killed %d of %d over-limit requests; all must be killed",
			s.CloudTimedOut, s.OffloadedCloud)
	}
	if s.Responses.Count() != 0 {
		t.Errorf("%d killed requests recorded responses", s.Responses.Count())
	}
	// Killed requests never complete, so they are all unresolved and all
	// count as violations — the origin is not flattered by the kills.
	if s.Unresolved < s.CloudTimedOut {
		t.Errorf("unresolved %d < cloud-killed %d", s.Unresolved, s.CloudTimedOut)
	}
	if s.Violations() < s.CloudTimedOut {
		t.Errorf("violations %d < cloud-killed %d", s.Violations(), s.CloudTimedOut)
	}
	if res.CloudTimedOut != s.CloudTimedOut {
		t.Errorf("aggregate CloudTimedOut %d != site %d", res.CloudTimedOut, s.CloudTimedOut)
	}
	// Billed execution truncates at the limit: 100ms, not 300ms.
	perReq := defaultCloudPricePerInvocation + 0.100*defaultCloudPricePerGBSecond*0.5
	want := float64(s.OffloadedCloud) * perReq
	if math.Abs(s.CloudCost-want) > 1e-12 {
		t.Errorf("cloud cost %.12f, want %.12f (billing must stop at the limit)", s.CloudCost, want)
	}
}

// TestPredictResponseDeflatedPool checks the placement predictor on a
// heterogeneous pool: with a standard and a half-size container attached,
// the predicted response must use the pool's aggregate (deflation-aware)
// service capacity, not the standard-size rate.
func TestPredictResponseDeflatedPool(t *testing.T) {
	site := staticSite(t, "squeezenet", 1, 5, cluster.PaperCluster())
	site.Functions[0].Prewarm = 0 // the pool is assembled by hand below
	fed, err := New(Config{Sites: []core.Config{site}, Policy: Never, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	s := fed.Sites[0]
	spec := site.Functions[0].Spec
	q := s.Platform.Queues[spec.Name]
	cl := s.Platform.Cluster
	// One standard container plus one deflated to half size.
	std, err := cl.Place(spec.Name, spec.CPUMillis, spec.MemoryMiB)
	if err != nil {
		t.Fatal(err)
	}
	defl, err := cl.PlaceDeflated(spec.Name, spec.CPUMillis, spec.CPUMillis/2, spec.MemoryMiB)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range []*cluster.Container{std, defl} {
		if err := cl.MarkRunning(c); err != nil {
			t.Fatal(err)
		}
		if err := q.AddContainer(c); err != nil {
			t.Fatal(err)
		}
	}
	capacity := spec.RateAt(1.0) + spec.RateAt(0.5)
	extraRTT := 10 * time.Millisecond
	want := extraRTT.Seconds() + (0+2)/capacity
	got := fed.predictResponse(s, spec.Name, extraRTT)
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("predictResponse on deflated pool = %.6fs, want %.6fs", got, want)
	}
	// The deflated pool must predict slower than a hypothetical pool of
	// two standard containers — the deflation penalty is the point.
	homog := extraRTT.Seconds() + 2/(2*spec.RateAt(1.0))
	if got <= homog {
		t.Errorf("deflated prediction %.6fs not above homogeneous %.6fs", got, homog)
	}
	// Unknown functions and empty pools are unplaceable.
	if v := fed.predictResponse(s, "ghost", 0); !math.IsInf(v, 1) {
		t.Errorf("unknown function predicted %.6f, want +Inf", v)
	}
}

// TestCloudPoolConcurrencyCapFIFO pins the capped pool's arithmetic: at
// the cap a request waits exactly until the earliest-free instance hands
// over, hand-offs are warm (no cold start), and predictWait agrees with
// what acquire then charges.
func TestCloudPoolConcurrencyCapFIFO(t *testing.T) {
	p := &cloudPool{}
	const (
		run  = 100 * time.Millisecond
		cold = 50 * time.Millisecond
		warm = time.Minute
	)
	// First request provisions the only allowed instance: cold, no wait.
	wait, gotCold := p.acquire(0, run, cold, warm, 1)
	if wait != 0 || gotCold != cold {
		t.Fatalf("first acquire: wait=%v cold=%v want 0/%v", wait, gotCold, cold)
	}
	// busy until 150ms. A request at 10ms must wait 140ms and start warm.
	if w := p.predictWait(10*time.Millisecond, 1); w != 140*time.Millisecond {
		t.Errorf("predictWait = %v want 140ms", w)
	}
	wait, gotCold = p.acquire(10*time.Millisecond, run, cold, warm, 1)
	if wait != 140*time.Millisecond || gotCold != 0 {
		t.Errorf("capped acquire: wait=%v cold=%v want 140ms/0", wait, gotCold)
	}
	// Now busy until 250ms; FIFO means the next arrival queues behind both.
	wait, gotCold = p.acquire(20*time.Millisecond, run, cold, warm, 1)
	if wait != 230*time.Millisecond || gotCold != 0 {
		t.Errorf("second capped acquire: wait=%v cold=%v want 230ms/0", wait, gotCold)
	}
	// Uncapped pools never wait.
	if w := p.predictWait(20*time.Millisecond, 0); w != 0 {
		t.Errorf("uncapped predictWait = %v want 0", w)
	}
	// After the backlog drains, an idle warm instance is reused directly.
	wait, gotCold = p.acquire(time.Second, run, cold, warm, 1)
	if wait != 0 || gotCold != 0 {
		t.Errorf("post-drain acquire: wait=%v cold=%v want 0/0 (warm reuse)", wait, gotCold)
	}
}

// TestCloudConcurrencyCapCountsQueueWait: end to end, a throttled cloud
// queues offloads (CloudQueued counters) and the waits land in the
// observed response times.
func TestCloudConcurrencyCapCountsQueueWait(t *testing.T) {
	spec := detSpec(100 * time.Millisecond)
	build := func(cap int) *Federation {
		fed, err := New(Config{
			Sites:               []core.Config{shedAllSite(t, spec, 20, 7, 0)},
			Policy:              CloudOnly,
			CloudMaxConcurrency: cap,
			Seed:                13,
		})
		if err != nil {
			t.Fatal(err)
		}
		return fed
	}
	uncapped := build(0)
	ures, err := uncapped.Run(30 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	capped := build(1)
	cres, err := capped.Run(30 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if ures.CloudQueued != 0 {
		t.Errorf("uncapped cloud queued %d", ures.CloudQueued)
	}
	if cres.CloudQueued == 0 {
		t.Fatal("capped cloud never queued at 20 req/s over a 1-instance, 10 req/s throttle")
	}
	up95 := ures.Sites[0].Responses.Quantile(0.95)
	cp95 := cres.Sites[0].Responses.Quantile(0.95)
	if cp95 <= up95 {
		t.Errorf("capped P95 %.3fs not above uncapped %.3fs: queue wait not in response time", cp95, up95)
	}
}
