package federation

import (
	"testing"
	"time"

	"lass/internal/cluster"
	"lass/internal/core"
)

// TestGlobalFairShareAppliesGrants: with the global allocator on, epochs
// run, grants reach every site's controller, and the run reports the
// allocator's epoch count.
func TestGlobalFairShareAppliesGrants(t *testing.T) {
	cfg := Config{
		Sites: []core.Config{
			staticSite(t, "squeezenet", 30, 1, cluster.PaperCluster()),
			staticSite(t, "squeezenet", 5, 2, cluster.PaperCluster()),
		},
		Policy:          NearestPeer,
		GlobalFairShare: true,
		Seed:            9,
	}
	fed, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := fed.Run(time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if res.AllocEpochs == 0 {
		t.Fatal("no global allocation epochs ran")
	}
	if !res.GlobalFairShare {
		t.Error("result does not report global fair share")
	}
	for i, s := range fed.Sites {
		if !s.Platform.Controller.GrantedExternally() {
			t.Errorf("site %d controller never received grants", i)
		}
	}
}

// TestGrantsChargedCoordinationRTT: every leg of the coordination round
// trip is charged through the topology matrix, the demand upload
// included. With a 30s one-way RTT the coordinator cannot compute before
// the remote site's t=0 demand report arrives at t=30s — so even the
// coordinator site itself (zero return leg) holds no grants at t=20s —
// and the remote site, one more 30s return leg away, still has none at
// t=40s when the coordinator site does.
func TestGrantsChargedCoordinationRTT(t *testing.T) {
	build := func() *Federation {
		fed, err := New(Config{
			Sites: []core.Config{
				staticSite(t, "squeezenet", 10, 1, cluster.PaperCluster()),
				staticSite(t, "squeezenet", 10, 2, cluster.PaperCluster()),
			},
			Policy:          Never,
			GlobalFairShare: true,
			AllocEpoch:      5 * time.Second,
			PeerRTT:         30 * time.Second, // one-way 30s, round trip 60s
			Seed:            9,
		})
		if err != nil {
			t.Fatal(err)
		}
		return fed
	}

	fed := build()
	if _, err := fed.Run(20 * time.Second); err != nil {
		t.Fatal(err)
	}
	if fed.Sites[0].Platform.Controller.GrantedExternally() {
		t.Error("coordinator site held grants before the slowest demand upload (30s) arrived")
	}

	fed = build()
	res, err := fed.Run(40 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !fed.Sites[0].Platform.Controller.GrantedExternally() {
		t.Error("coordinator site (zero return leg) never received grants after the gather elapsed")
	}
	if fed.Sites[1].Platform.Controller.GrantedExternally() {
		t.Error("remote site received grants before the full gather+return round trip elapsed")
	}
	// Only landed deliveries count toward the mean delay: every delivery
	// that fit in the run was the coordinator site's 30s-gather + 0s
	// return; the remote site's 60s deliveries never arrived.
	if res.MeanGrantDelay != 30*time.Second {
		t.Errorf("MeanGrantDelay = %v counting undelivered grants, want 30s", res.MeanGrantDelay)
	}
}

// TestPowerOfTwoChoicesSpreadsPeerLoad: under strict RTT order a short
// overload burst lands entirely on the first peer in scan order; under
// power-of-two-choices the same burst is spread across both peers.
func TestPowerOfTwoChoicesSpreadsPeerLoad(t *testing.T) {
	build := func(sel PeerSelection) *Federation {
		cfg := Config{
			Sites: []core.Config{
				staticSite(t, "squeezenet", 120, 3, tinyCluster()), // 3x capacity
				staticSite(t, "squeezenet", 1, 4, cluster.PaperCluster()),
				staticSite(t, "squeezenet", 1, 5, cluster.PaperCluster()),
			},
			Policy:        NearestPeer,
			PeerSelection: sel,
			Seed:          11,
		}
		fed, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return fed
	}

	fed := build(NearestFirst)
	if _, err := fed.Run(time.Minute); err != nil {
		t.Fatal(err)
	}
	nearestFirstPeer := fed.Sites[1].PeerServed
	nearestSecondPeer := fed.Sites[2].PeerServed
	if nearestFirstPeer == 0 {
		t.Fatal("nearest-first shed nothing to its first peer")
	}

	fed = build(PowerOfTwoChoices)
	if _, err := fed.Run(time.Minute); err != nil {
		t.Fatal(err)
	}
	p1, p2 := fed.Sites[1].PeerServed, fed.Sites[2].PeerServed
	if p1 == 0 || p2 == 0 {
		t.Fatalf("p2c did not use both peers: %d / %d", p1, p2)
	}
	// p2c must spread strictly better than the strict-RTT scan: its
	// larger share is smaller than nearest-first's larger share.
	maxNearest, maxP2C := nearestFirstPeer, p1
	if nearestSecondPeer > maxNearest {
		maxNearest = nearestSecondPeer
	}
	if p2 > maxP2C {
		maxP2C = p2
	}
	if maxP2C >= maxNearest {
		t.Errorf("p2c max peer share %d not below nearest-first max %d (nearest %d/%d, p2c %d/%d)",
			maxP2C, maxNearest, nearestFirstPeer, nearestSecondPeer, p1, p2)
	}
}

// TestAdmissionRejectsOnlyWithoutHeadroom: §3.4 admission under policy
// Never rejects sheddable requests at an overloaded origin; the same
// overload under NearestPeer is absorbed by an idle peer instead, and
// nothing is rejected while a grant somewhere has headroom.
func TestAdmissionRejectsOnlyWithoutHeadroom(t *testing.T) {
	sites := func() []core.Config {
		return []core.Config{
			staticSite(t, "squeezenet", 60, 3, tinyCluster()),
			staticSite(t, "squeezenet", 1, 4, cluster.PaperCluster()),
		}
	}

	fed, err := New(Config{Sites: sites(), Policy: Never, OffloadAwareAdmission: true, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	res, err := fed.Run(time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rejected == 0 {
		t.Error("policy never + admission: overloaded origin rejected nothing")
	}
	if res.Sites[0].Rejected != res.Rejected {
		t.Error("rejections not attributed to the overloaded origin")
	}

	// CloudAlwaysWarm keeps the cloud's latency floor (2×RTT + mean
	// service) inside the SLO: admission now honestly rejects a cloud
	// landing whose cold start alone would guarantee a miss, and this
	// test is about grant headroom, not cold-start realism.
	fed, err = New(Config{Sites: sites(), Policy: NearestPeer, OffloadAwareAdmission: true,
		CloudAlwaysWarm: true, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	res, err = fed.Run(time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rejected != 0 {
		t.Errorf("nearest-peer + admission rejected %d with an idle peer and an unbounded warm cloud", res.Rejected)
	}
	if res.Sites[0].OffloadedPeer == 0 && res.Sites[0].OffloadedCloud == 0 {
		t.Error("overloaded origin offloaded nothing")
	}
}

// TestAdmissionRejectsWhenCloudThrottled: with no peers and a cloud
// throttled to one instance, the projected queue wait quickly exceeds the
// SLO and admission rejects rather than stranding work in a hopeless
// queue.
func TestAdmissionRejectsWhenCloudThrottled(t *testing.T) {
	fed, err := New(Config{
		Sites: []core.Config{
			staticSite(t, "squeezenet", 60, 3, tinyCluster()),
		},
		Policy:                NearestPeer,
		OffloadAwareAdmission: true,
		CloudMaxConcurrency:   1,
		// Always-warm isolates the throttle gate under test: with cold
		// starts modelled, admission's latency floor would reject every
		// cloud landing before a queue could ever form at the cap.
		CloudAlwaysWarm: true,
		Seed:            5,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := fed.Run(time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rejected == 0 {
		t.Error("throttled cloud with no peers: admission rejected nothing")
	}
	if res.CloudQueued == 0 {
		t.Error("no cloud offload ever queued at the concurrency cap")
	}
}
