package federation

import (
	"time"
)

// Default cloud price points: the common on-demand FaaS rates ($0.20 per
// million invocations, ~$0.0000166667 per GB-second of execution), used
// when the Config leaves the price fields zero.
const (
	defaultCloudPricePerInvocation = 0.20 / 1e6
	defaultCloudPricePerGBSecond   = 1.0 / 60_000
)

// zeroDefault applies the cloud knobs' shared sentinel convention: a zero
// value selects def, a negative value means an explicit zero.
func zeroDefault[T ~int64 | ~float64](v, def T) T {
	switch {
	case v == 0:
		return def
	case v < 0:
		return 0
	}
	return v
}

// cloudInstance is one execution slot of the cloud backend's per-function
// warm pool: busy until busyUntil, then idle-but-warm until warmUntil.
type cloudInstance struct {
	busyUntil time.Duration
	warmUntil time.Duration
}

// cloudPool models the warm-window behaviour of a FaaS cloud backend for
// one function. Capacity is still unbounded — a new instance can always be
// created — but a request that cannot reuse an idle warm instance pays the
// function's cold-start latency first, so the cloud is no longer flattered
// as an always-warm free absorber. Reuse is most-recently-used (the
// instance with the latest warm deadline), the policy real platforms use
// so that surplus instances age out.
type cloudPool struct {
	instances []*cloudInstance
}

// hasWarm reports whether a request arriving at time at would find an
// idle warm instance (i.e. would skip the cold start).
func (p *cloudPool) hasWarm(at time.Duration) bool {
	for _, in := range p.instances {
		if in.busyUntil <= at && in.warmUntil >= at {
			return true
		}
	}
	return false
}

// acquire reserves an instance for a request arriving at time at that will
// execute for run, and returns the cold-start delay the request pays: zero
// when an idle warm instance is reused, coldStart when a fresh instance
// must be provisioned. The chosen instance is busy for (cold + run) and
// then stays warm for warmWindow.
func (p *cloudPool) acquire(at, run, coldStart, warmWindow time.Duration) time.Duration {
	// Drop instances whose warm window has lapsed; a busy instance is
	// always within its window (warmUntil >= busyUntil), so nothing
	// in-flight can be dropped.
	live := p.instances[:0]
	for _, in := range p.instances {
		if in.warmUntil >= at {
			live = append(live, in)
		}
	}
	p.instances = live

	var best *cloudInstance
	for _, in := range p.instances {
		if in.busyUntil > at {
			continue
		}
		if best == nil || in.warmUntil > best.warmUntil {
			best = in
		}
	}
	cold := time.Duration(0)
	if best == nil {
		cold = coldStart
		best = &cloudInstance{}
		p.instances = append(p.instances, best)
	}
	best.busyUntil = at + cold + run
	best.warmUntil = best.busyUntil + warmWindow
	return cold
}
