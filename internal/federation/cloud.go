package federation

import (
	"time"
)

// Default cloud price points: the common on-demand FaaS rates ($0.20 per
// million invocations, ~$0.0000166667 per GB-second of execution), used
// when the Config leaves the price fields zero.
const (
	defaultCloudPricePerInvocation = 0.20 / 1e6
	defaultCloudPricePerGBSecond   = 1.0 / 60_000
)

// zeroDefault applies the cloud knobs' shared sentinel convention: a zero
// value selects def, a negative value means an explicit zero.
func zeroDefault[T ~int64 | ~float64](v, def T) T {
	switch {
	case v == 0:
		return def
	case v < 0:
		return 0
	}
	return v
}

// cloudInstance is one execution slot of the cloud backend's per-function
// warm pool: busy until busyUntil, then idle-but-warm until warmUntil.
type cloudInstance struct {
	busyUntil time.Duration
	warmUntil time.Duration
}

// cloudPool models the warm-window behaviour of a FaaS cloud backend for
// one function. A request that cannot reuse an idle warm instance pays the
// function's cold-start latency first, so the cloud is no longer flattered
// as an always-warm free absorber; with a concurrency cap (the real FaaS
// throttle) instance creation is bounded too, and requests at the cap
// queue FIFO for the next instance to free up. Reuse is
// most-recently-used (the instance with the latest warm deadline), the
// policy real platforms use so that surplus instances age out.
type cloudPool struct {
	instances []*cloudInstance
}

// hasWarm reports whether a request arriving at time at would find an
// idle warm instance (i.e. would skip the cold start).
func (p *cloudPool) hasWarm(at time.Duration) bool {
	for _, in := range p.instances {
		if in.busyUntil <= at && in.warmUntil >= at {
			return true
		}
	}
	return false
}

// acquire reserves an instance for a request arriving at time at that will
// execute for run. It returns the queueing delay the request pays at the
// concurrency cap (zero when uncapped or a slot is free) and the
// cold-start delay (zero when an idle warm instance is reused, coldStart
// when a fresh instance must be provisioned). With maxConc > 0 the pool
// never exceeds that many instances: a request finding all of them busy
// waits FIFO for the earliest-free instance and starts on it warm — the
// handoff is instance reuse, not a fresh provision. The chosen instance
// is busy until wait + cold + run after arrival and then stays warm for
// warmWindow.
func (p *cloudPool) acquire(at, run, coldStart, warmWindow time.Duration, maxConc int) (wait, cold time.Duration) {
	// Drop instances whose warm window has lapsed; a busy instance is
	// always within its window (warmUntil >= busyUntil), so nothing
	// in-flight can be dropped.
	live := p.instances[:0]
	for _, in := range p.instances {
		if in.warmUntil >= at {
			live = append(live, in)
		}
	}
	p.instances = live

	var best *cloudInstance
	for _, in := range p.instances {
		if in.busyUntil > at {
			continue
		}
		if best == nil || in.warmUntil > best.warmUntil {
			best = in
		}
	}
	if best == nil {
		if maxConc > 0 && len(p.instances) >= maxConc {
			// At the cap: queue for the instance that frees first.
			// Arrivals are processed in time order, so bumping its busy
			// horizon keeps the hand-offs FIFO.
			soonest := p.instances[0]
			for _, in := range p.instances[1:] {
				if in.busyUntil < soonest.busyUntil {
					soonest = in
				}
			}
			wait = soonest.busyUntil - at
			soonest.busyUntil += run
			soonest.warmUntil = soonest.busyUntil + warmWindow
			return wait, 0
		}
		cold = coldStart
		best = &cloudInstance{}
		p.instances = append(p.instances, best)
	}
	best.busyUntil = at + cold + run
	best.warmUntil = best.busyUntil + warmWindow
	return 0, cold
}

// predictWait returns the queueing delay a request arriving at time at
// would pay before starting execution: zero when uncapped, when an idle
// warm instance exists, or when the pool may still grow; otherwise the
// time until the earliest-free instance hands over.
func (p *cloudPool) predictWait(at time.Duration, maxConc int) time.Duration {
	if maxConc <= 0 {
		return 0
	}
	live := 0
	var soonest time.Duration = -1
	for _, in := range p.instances {
		if in.warmUntil < at {
			continue
		}
		live++
		if in.busyUntil <= at {
			return 0 // idle warm instance: immediate start
		}
		if soonest < 0 || in.busyUntil < soonest {
			soonest = in.busyUntil
		}
	}
	if live < maxConc {
		return 0
	}
	return soonest - at
}
