package federation

import (
	"testing"
	"time"

	"lass/internal/cluster"
	"lass/internal/core"
)

// asymmetricStar builds the four-site matrix the coordinator tests run
// on: site 1 is the natural centroid, site 0 hangs off a long spoke.
func asymmetricStar(t *testing.T) *Topology {
	t.Helper()
	ms := time.Millisecond
	topo, err := NewTopology([][]time.Duration{
		{0, 25 * ms, 28 * ms, 30 * ms},
		{20 * ms, 0, 3 * ms, 5 * ms},
		{24 * ms, 4 * ms, 0, 9 * ms},
		{26 * ms, 6 * ms, 11 * ms, 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	return topo
}

func fourSites(t *testing.T, seed uint64) []core.Config {
	t.Helper()
	return []core.Config{
		staticSite(t, "squeezenet", 30, seed, cluster.PaperCluster()),
		staticSite(t, "squeezenet", 5, seed+1, cluster.PaperCluster()),
		staticSite(t, "squeezenet", 5, seed+2, cluster.PaperCluster()),
		staticSite(t, "squeezenet", 5, seed+3, cluster.PaperCluster()),
	}
}

// TestCoordinatorElection: Fixed keeps the configured index (the zero
// value reproduces today's site-0 default), RTTCentroid elects the
// topology's weighted round-trip centroid, and the run's Result reports
// both the seat and the mode.
func TestCoordinatorElection(t *testing.T) {
	build := func(el CoordinatorElection) *Federation {
		fed, err := New(Config{
			Sites:               fourSites(t, 21),
			Policy:              Never,
			Topology:            asymmetricStar(t),
			GlobalFairShare:     true,
			CoordinatorElection: el,
			Seed:                3,
		})
		if err != nil {
			t.Fatal(err)
		}
		return fed
	}

	fed := build(Fixed)
	if fed.Coordinator() != 0 {
		t.Errorf("Fixed election seated site %d, want the configured default 0", fed.Coordinator())
	}

	fed = build(RTTCentroid)
	if fed.Coordinator() != 1 {
		t.Errorf("RTTCentroid seated site %d, want the hub 1", fed.Coordinator())
	}
	res, err := fed.Run(30 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if res.Coordinator != 1 || res.Election != RTTCentroid {
		t.Errorf("Result reports coordinator %d/%v, want 1/centroid", res.Coordinator, res.Election)
	}
	if res.MeanGrantDelay <= 0 {
		t.Error("no mean grant-delivery delay reported")
	}
}

// TestCentroidElectionReducesGrantDelay: on the asymmetric star the
// centroid seat must strictly beat the fixed far-spoke seat on mean
// grant-delivery delay (gather + return leg).
func TestCentroidElectionReducesGrantDelay(t *testing.T) {
	run := func(el CoordinatorElection) *Result {
		fed, err := New(Config{
			Sites:               fourSites(t, 43),
			Policy:              Never,
			Topology:            asymmetricStar(t),
			GlobalFairShare:     true,
			CoordinatorElection: el,
			Seed:                3,
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := fed.Run(30 * time.Second)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	fixed, centroid := run(Fixed), run(RTTCentroid)
	if centroid.MeanGrantDelay >= fixed.MeanGrantDelay {
		t.Errorf("centroid mean grant delay %v not below fixed %v",
			centroid.MeanGrantDelay, fixed.MeanGrantDelay)
	}
}

// TestCoordinatorOutagesMissEpochs: epochs that fire while the
// coordinator is dark produce no grants and are counted — an outage
// covering the whole run means global governance never engages.
func TestCoordinatorOutagesMissEpochs(t *testing.T) {
	fed, err := New(Config{
		Sites: []core.Config{
			staticSite(t, "squeezenet", 30, 11, cluster.PaperCluster()),
			staticSite(t, "squeezenet", 5, 12, cluster.PaperCluster()),
		},
		Policy:             Never,
		GlobalFairShare:    true,
		CoordinatorOutages: []Window{{Start: 0, End: time.Hour}},
		Seed:               9,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := fed.Run(30 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if res.AllocEpochs != 0 {
		t.Errorf("%d allocation epochs completed inside a run-long outage", res.AllocEpochs)
	}
	// Epochs fire at 0, 5, ..., 30s: seven boundaries inside the window.
	if res.MissedAllocEpochs != 7 {
		t.Errorf("MissedAllocEpochs = %d, want 7", res.MissedAllocEpochs)
	}
	for i, s := range fed.Sites {
		if s.Platform.Controller.GrantedExternally() {
			t.Errorf("site %d received grants from a dark coordinator", i)
		}
	}
}

// TestOutageCoversComputeMoment: the coordinator acts one gather after
// the epoch boundary, so an outage that begins after the boundary but
// covers the compute moment still misses the epoch — a coordinator that
// went dark while the demand reports were in flight cannot compute.
func TestOutageCoversComputeMoment(t *testing.T) {
	fed, err := New(Config{
		Sites: []core.Config{
			staticSite(t, "squeezenet", 10, 11, cluster.PaperCluster()),
			staticSite(t, "squeezenet", 10, 12, cluster.PaperCluster()),
		},
		Policy:          Never,
		GlobalFairShare: true,
		PeerRTT:         30 * time.Second, // gather = 30s
		// Clear at every epoch boundary (0, 5, ... mod nothing — starts at
		// 1s), dark at every compute moment (boundary + 30s).
		CoordinatorOutages: []Window{{Start: time.Second, End: 2 * time.Hour}},
		Seed:               9,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := fed.Run(40 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if res.AllocEpochs != 0 {
		t.Errorf("%d epochs computed by a coordinator dark at every compute moment", res.AllocEpochs)
	}
	// The t=0 boundary is outside the window; its compute moment (t=30s)
	// is inside. Boundaries at 5..40s are inside directly.
	if res.MissedAllocEpochs != 9 {
		t.Errorf("MissedAllocEpochs = %d, want 9 (one missed at compute time, eight at the boundary)", res.MissedAllocEpochs)
	}
	if fed.Sites[0].Platform.Controller.GrantedExternally() {
		t.Error("grants delivered from an epoch whose compute moment fell in an outage")
	}
}

// TestOutageWindowValidation: a backwards or negative outage window is a
// configuration error, not a silent no-op.
func TestOutageWindowValidation(t *testing.T) {
	for _, w := range []Window{
		{Start: 10 * time.Second, End: 5 * time.Second},
		{Start: -time.Second, End: time.Second},
		{Start: time.Second, End: time.Second},
	} {
		_, err := New(Config{
			Sites:              fourSites(t, 77),
			GlobalFairShare:    true,
			CoordinatorOutages: []Window{w},
		})
		if err == nil {
			t.Errorf("New accepted outage window %+v", w)
		}
	}
}

// TestGrantLeaseFallbackDuringOutage is the federation-level lease test:
// an outage longer than the lease triggers fallback to local enforcement
// at every site (counted per site and in the aggregate), while the
// unleased legacy (GrantLease < 0) stays frozen on its stale grants for
// the rest of the run.
func TestGrantLeaseFallbackDuringOutage(t *testing.T) {
	run := func(lease time.Duration) (*Federation, *Result) {
		fed, err := New(Config{
			Sites: []core.Config{
				staticSite(t, "squeezenet", 30, 31, cluster.PaperCluster()),
				staticSite(t, "squeezenet", 5, 32, cluster.PaperCluster()),
			},
			Policy:          Never,
			GlobalFairShare: true,
			// Epochs at 0, 5, 10s deliver; every epoch from 12s on is
			// missed, so the 10s default lease (2×epoch) lapses at ~20s.
			CoordinatorOutages: []Window{{Start: 12 * time.Second, End: time.Hour}},
			GrantLease:         lease,
			Seed:               9,
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := fed.Run(60 * time.Second)
		if err != nil {
			t.Fatal(err)
		}
		return fed, res
	}

	fed, res := run(0) // default 2×AllocEpoch
	if res.MissedAllocEpochs == 0 {
		t.Fatal("outage missed no epochs")
	}
	for i, s := range fed.Sites {
		if s.Platform.Controller.GrantedExternally() {
			t.Errorf("site %d still enforcing grants long after its lease lapsed", i)
		}
		if s.GrantLeaseExpirations == 0 {
			t.Errorf("site %d recorded no lease expiration", i)
		}
	}
	if want := fed.Sites[0].GrantLeaseExpirations + fed.Sites[1].GrantLeaseExpirations; res.GrantLeaseExpirations != want {
		t.Errorf("aggregate GrantLeaseExpirations %d != per-site sum %d", res.GrantLeaseExpirations, want)
	}

	fed, res = run(-1) // frozen: no lease at all
	if res.GrantLeaseExpirations != 0 {
		t.Errorf("unleased run recorded %d lease expirations", res.GrantLeaseExpirations)
	}
	for i, s := range fed.Sites {
		if !s.Platform.Controller.GrantedExternally() {
			t.Errorf("unleased site %d dropped its grants without a lease to expire", i)
		}
	}
}

// TestFirstEpochGrantsBeforeSecondBoundary pins the epoch-timing fix:
// under GlobalFairShare the first allocation epoch fires at t≈0, so every
// site holds grants well before the second epoch boundary (t=5s) instead
// of running ungoverned-local for a full epoch.
func TestFirstEpochGrantsBeforeSecondBoundary(t *testing.T) {
	fed, err := New(Config{
		Sites: []core.Config{
			staticSite(t, "squeezenet", 30, 11, cluster.PaperCluster()),
			staticSite(t, "squeezenet", 5, 12, cluster.PaperCluster()),
		},
		Policy:          Never,
		GlobalFairShare: true,
		Seed:            9,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := fed.Run(4 * time.Second) // strictly before the second boundary
	if err != nil {
		t.Fatal(err)
	}
	if res.AllocEpochs != 1 {
		t.Errorf("AllocEpochs = %d before the second boundary, want exactly the t=0 epoch", res.AllocEpochs)
	}
	for i, s := range fed.Sites {
		if !s.Platform.Controller.GrantedExternally() {
			t.Errorf("site %d ungoverned before the second epoch boundary", i)
		}
	}
}

// TestFirstEpochPreservesPrewarmedPools is the regression for the t≈0
// epoch's bootstrap grants: with the controller's documented default
// MinContainers=0, a pre-first-Step demand report must reflect the live
// (prewarmed) pool capacity, not zero — otherwise the t=0 epoch's capped
// water-filling would emit zero grants and the first Step would shrink
// every prewarmed pool to nothing.
func TestFirstEpochPreservesPrewarmedPools(t *testing.T) {
	site := func(rate float64, seed uint64) core.Config {
		cfg := staticSite(t, "squeezenet", rate, seed, cluster.PaperCluster())
		cfg.Controller.MinContainers = 0 // the controller default
		cfg.Functions[0].Prewarm = 2
		return cfg
	}
	fed, err := New(Config{
		Sites:           []core.Config{site(20, 81), site(10, 82)},
		Policy:          Never,
		GlobalFairShare: true,
		Seed:            9,
	})
	if err != nil {
		t.Fatal(err)
	}
	// 7s crosses the first Step (t=5s), which enforces the t=0 grants.
	if _, err := fed.Run(7 * time.Second); err != nil {
		t.Fatal(err)
	}
	for i, s := range fed.Sites {
		if n := s.Platform.Queues["squeezenet"].Containers(); n == 0 {
			t.Errorf("site %d: bootstrap grants destroyed the prewarmed pool (0 containers after the first Step)", i)
		}
	}
}

// TestDefaultConfigMatchesExplicitLegacyKnobs is the acceptance
// regression for the coordinator tentpole: Fixed election with no outages
// and an infinite lease must reproduce a default-config global-fair-share
// run bit-for-bit — in steady state grants renew every epoch, so the
// default 2×epoch lease must never perturb results.
func TestDefaultConfigMatchesExplicitLegacyKnobs(t *testing.T) {
	run := func(legacy bool) *Result {
		cfg := Config{
			Sites: []core.Config{
				staticSite(t, "squeezenet", 60, 51, tinyCluster()),
				staticSite(t, "squeezenet", 5, 52, cluster.PaperCluster()),
				staticSite(t, "squeezenet", 5, 53, cluster.PaperCluster()),
			},
			Policy:                ModelDriven,
			GlobalFairShare:       true,
			OffloadAwareAdmission: true,
			CloudMaxConcurrency:   2,
			Seed:                  13,
		}
		if legacy {
			cfg.CoordinatorElection = Fixed
			cfg.Coordinator = 0
			cfg.CoordinatorOutages = nil
			cfg.GrantLease = -1 // infinite: never expires
		}
		fed, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := fed.Run(2 * time.Minute)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(false), run(true)
	if a.AllocEpochs != b.AllocEpochs || a.MissedAllocEpochs != b.MissedAllocEpochs {
		t.Errorf("epoch counts differ: %d/%d vs %d/%d",
			a.AllocEpochs, a.MissedAllocEpochs, b.AllocEpochs, b.MissedAllocEpochs)
	}
	if a.CloudServed != b.CloudServed || a.Rejected != b.Rejected {
		t.Errorf("aggregate counters differ: cloud %d vs %d, rejected %d vs %d",
			a.CloudServed, b.CloudServed, a.Rejected, b.Rejected)
	}
	for i := range a.Sites {
		sa, sb := a.Sites[i], b.Sites[i]
		if sa.ServedLocal != sb.ServedLocal || sa.OffloadedPeer != sb.OffloadedPeer ||
			sa.OffloadedCloud != sb.OffloadedCloud || sa.PeerServed != sb.PeerServed ||
			sa.Rejected != sb.Rejected || sa.Unresolved != sb.Unresolved {
			t.Errorf("site %d placement counters differ: %+v vs %+v", i, sa, sb)
		}
		if sa.SLO.Total() != sb.SLO.Total() || sa.SLO.Violations() != sb.SLO.Violations() {
			t.Errorf("site %d SLO accounting differs", i)
		}
		if ga, gb := sa.Responses.Quantile(0.95), sb.Responses.Quantile(0.95); ga != gb {
			t.Errorf("site %d P95 response %v != %v", i, ga, gb)
		}
	}
}

// TestSiteWeightValidation: a negative site weight is rejected at
// assembly, and an explicit zero weight means exactly the documented
// "default weight 1" — bit-for-bit the same run as spelling out 1.
func TestSiteWeightValidation(t *testing.T) {
	build := func(weights []float64) (*Federation, error) {
		return New(Config{
			Sites: []core.Config{
				staticSite(t, "squeezenet", 30, 61, cluster.PaperCluster()),
				staticSite(t, "squeezenet", 5, 62, cluster.PaperCluster()),
			},
			Policy:          Never,
			GlobalFairShare: true,
			SiteWeights:     weights,
			Seed:            9,
		})
	}
	if _, err := build([]float64{1, -0.5}); err == nil {
		t.Error("New accepted a negative site weight")
	}

	run := func(weights []float64) *Result {
		fed, err := build(weights)
		if err != nil {
			t.Fatal(err)
		}
		res, err := fed.Run(30 * time.Second)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	zero, one := run([]float64{0, 1}), run([]float64{1, 1})
	for i := range zero.Sites {
		za, oa := zero.Sites[i], one.Sites[i]
		if za.SLO.Total() != oa.SLO.Total() || za.SLO.Violations() != oa.SLO.Violations() ||
			za.ServedLocal != oa.ServedLocal {
			t.Errorf("site %d differs between weight 0 and weight 1: %+v vs %+v", i, za, oa)
		}
	}
}

// TestCloudAdmitsLatencyFloor is the regression for the admission bug: a
// cold, empty cloud pool whose 2×CloudRTT + ColdStart + mean service
// already exceeds the SLO is a guaranteed violation and must be rejected,
// not admitted just because no queue has formed yet.
func TestCloudAdmitsLatencyFloor(t *testing.T) {
	build := func(slo time.Duration, alwaysWarm bool) *Federation {
		fed, err := New(Config{
			Sites:           []core.Config{staticSite(t, "squeezenet", 10, 71, cluster.PaperCluster())},
			Policy:          CloudOnly,
			ResponseSLO:     slo,
			CloudAlwaysWarm: alwaysWarm,
			Seed:            9,
		})
		if err != nil {
			t.Fatal(err)
		}
		return fed
	}
	// SqueezeNet cold floor: 2×50ms RTT + 400ms cold start + 100ms mean
	// service = 600ms. A 250ms SLO cannot be met by a cold pool.
	fed := build(250*time.Millisecond, false)
	if fed.cloudAdmits(fed.Sites[0].Platform.Queues["squeezenet"]) {
		t.Error("cloudAdmits admitted a cold pool whose latency floor (600ms) exceeds the 250ms SLO")
	}
	// The same tight SLO is reachable warm (200ms floor)…
	fed = build(250*time.Millisecond, true)
	if !fed.cloudAdmits(fed.Sites[0].Platform.Queues["squeezenet"]) {
		t.Error("cloudAdmits rejected an always-warm pool inside its 200ms floor")
	}
	// …and a cold pool is fine under a loose SLO.
	fed = build(time.Second, false)
	if !fed.cloudAdmits(fed.Sites[0].Platform.Queues["squeezenet"]) {
		t.Error("cloudAdmits rejected a cold pool whose 600ms floor fits a 1s SLO")
	}
}
