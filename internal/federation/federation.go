// Package federation simulates a multi-cluster edge–cloud deployment: N
// edge sites, each running the unmodified LaSS controller/cluster/dispatch
// stack, plus an elastic but high-latency cloud backend. A per-request
// placement layer decides at each site's ingress whether to serve locally,
// offload to a peer edge site (paying an RTT penalty), or fall back to the
// cloud when the local site is over capacity or the backlog predicts an
// SLO miss.
//
// The paper (§3.4) evaluates admission control on a single
// resource-constrained cluster; this package opens the scenario family of
// Das et al., "Performance Optimization for Edge-Cloud Serverless
// Platforms via Dynamic Task Placement" (2020): dynamic edge↔cloud
// placement. Every site shares one deterministic sim.Engine, so federated
// runs are exactly reproducible, and with Policy Never each site behaves
// bit-for-bit like a standalone single-cluster simulation.
//
// Inter-site latency comes from an explicit Topology: a validated one-way
// latency matrix (optionally asymmetric, after the measured edge-platform
// RTT heterogeneity of Javed et al. 2021). Configurations that set no
// Topology get the original ring — sites at ring distance d are
// d×Config.PeerRTT apart — so "nearest peer" keeps its historical meaning.
//
// The cloud is modelled as unbounded standard-size capacity behind
// Config.CloudRTT, but it is neither always-warm nor free: each function
// has a warm-instance pool with a keep-alive window, the first request
// after idle pays the function's cold-start latency behind the RTT, and
// every invocation accrues cost at configurable FaaS price points. Cloud
// executions also honour the function's hard execution limit (§2.1) —
// a request whose sampled service time exceeds the limit is killed and
// counted as a violation at its origin site.
package federation

import (
	"fmt"
	"math"
	"sort"
	"time"

	"lass/internal/core"
	"lass/internal/dispatch"
	"lass/internal/metrics"
	"lass/internal/sim"
	"lass/internal/xrand"
)

// Policy selects the per-request offload placement policy.
type Policy int

const (
	// Never serves every request at its ingress site — the single-cluster
	// baseline.
	Never Policy = iota
	// CloudOnly sheds to the cloud when the ingress site is overloaded.
	CloudOnly
	// NearestPeer sheds to the closest peer site with headroom, falling
	// back to the cloud when no peer can absorb the work.
	NearestPeer
	// ModelDriven predicts the response time at every candidate location
	// (backlog drain time plus RTT) and offloads to the best one whenever
	// the local prediction misses the response SLO.
	ModelDriven
)

// String returns the policy name.
func (p Policy) String() string {
	switch p {
	case Never:
		return "never"
	case CloudOnly:
		return "cloud-only"
	case NearestPeer:
		return "nearest-peer"
	case ModelDriven:
		return "model-driven"
	}
	return fmt.Sprintf("policy(%d)", int(p))
}

// ParsePolicy returns the policy named by s.
func ParsePolicy(s string) (Policy, error) {
	for _, p := range Policies() {
		if p.String() == s {
			return p, nil
		}
	}
	return 0, fmt.Errorf("federation: unknown offload policy %q", s)
}

// Policies returns all placement policies in sweep order.
func Policies() []Policy { return []Policy{Never, CloudOnly, NearestPeer, ModelDriven} }

// Config describes a federated deployment.
type Config struct {
	// Sites configures one core platform per edge site. Site i's cluster
	// is named "edge-i" unless its Cluster.Site is already set. Any
	// Engine set on a site config is replaced by the federation's shared
	// engine.
	Sites []core.Config
	// Policy is the placement policy applied at every site's ingress.
	Policy Policy
	// Topology, when set, is the explicit one-way inter-site latency
	// matrix; its size must match Sites. When nil, the federation uses
	// Ring(len(Sites), PeerRTT) — the original ring-distance model.
	Topology *Topology
	// PeerRTT is the one-way RTT between ring-adjacent edge sites
	// (default 5ms); sites at ring distance d pay d×PeerRTT each way.
	// Ignored when Topology is set.
	PeerRTT time.Duration
	// CloudRTT is the one-way RTT from any edge site to the cloud
	// backend (default 50ms).
	CloudRTT time.Duration
	// CloudWarmWindow is how long an idle cloud instance stays warm
	// after finishing a request (default 10m). A request that finds no
	// idle warm instance pays its function's Spec.ColdStart behind the
	// cloud RTT before executing. A negative value means no keep-alive
	// at all — every idle gap cold-starts; zero selects the default.
	CloudWarmWindow time.Duration
	// CloudAlwaysWarm restores the legacy idealized cloud: no cold
	// starts are modelled (invocations still accrue cost).
	CloudAlwaysWarm bool
	// CloudPricePerInvocation and CloudPricePerGBSecond set the cost
	// axis for cloud offloads (defaults: $0.20 per million requests and
	// $0.0000166667 per GB-second of billed execution, the common
	// on-demand FaaS price points). Billed execution is the sampled
	// service time, truncated at the function's hard execution limit.
	// A negative value means an explicit zero price (a free tier) —
	// zero itself selects the default.
	CloudPricePerInvocation float64
	CloudPricePerGBSecond   float64
	// ResponseSLO is the end-to-end response deadline the federation
	// accounts violations against, network RTT included (default 250ms).
	// This is deliberately a response-time SLO, unlike the controller's
	// waiting-time SLO: offloading trades queueing delay for network
	// delay, and only an end-to-end metric ranks that trade fairly.
	ResponseSLO time.Duration
	// OverloadQueueDepth is the per-container backlog beyond which an
	// epoch-level overloaded site starts shedding (default 4).
	OverloadQueueDepth int
	// Seed drives the cloud backend's service-time sampling.
	Seed uint64
}

func (c *Config) fillDefaults() {
	if c.PeerRTT == 0 {
		c.PeerRTT = 5 * time.Millisecond
	}
	if c.CloudRTT == 0 {
		c.CloudRTT = 50 * time.Millisecond
	}
	// Cloud knobs share one sentinel convention: zero selects the
	// default, negative means an explicit zero (free tier / no
	// keep-alive). With a zero warm window warmUntil collapses to
	// busyUntil, so the pool invariant (warmUntil >= busyUntil) holds.
	c.CloudWarmWindow = zeroDefault(c.CloudWarmWindow, 10*time.Minute)
	c.CloudPricePerInvocation = zeroDefault(c.CloudPricePerInvocation, defaultCloudPricePerInvocation)
	c.CloudPricePerGBSecond = zeroDefault(c.CloudPricePerGBSecond, defaultCloudPricePerGBSecond)
	if c.ResponseSLO == 0 {
		c.ResponseSLO = 250 * time.Millisecond
	}
	if c.OverloadQueueDepth == 0 {
		c.OverloadQueueDepth = 4
	}
}

// Site is one edge deployment inside the federation.
type Site struct {
	Name     string
	Index    int
	Platform *core.Platform

	// Responses and SLO account end-to-end latency (RTT included) for
	// every request that entered the federation at this site, wherever
	// it was served.
	Responses *metrics.Reservoir
	SLO       *metrics.SLOTracker

	// ServedLocal counts ingress requests served on this site's own
	// cluster; OffloadedPeer and OffloadedCloud count ingress requests
	// placed elsewhere; PeerServed counts requests this site absorbed on
	// behalf of overloaded peers.
	ServedLocal    uint64
	OffloadedPeer  uint64
	OffloadedCloud uint64
	PeerServed     uint64

	// CloudColdStarts counts this site's cloud offloads that paid a cold
	// start; CloudTimedOut counts those killed by the function's hard
	// execution limit (they never complete, so they stay violations);
	// CloudCost is the accumulated cloud bill for this site's offloads.
	CloudColdStarts uint64
	CloudTimedOut   uint64
	CloudCost       float64

	peers []*Site // other sites, ascending RTT, ties by index
}

// Federation is an assembled multi-cluster deployment.
type Federation struct {
	Engine *sim.Engine
	Sites  []*Site

	cfg         Config
	cloudRng    *xrand.Rand
	cloudServed uint64
	cloudPools  map[string]*cloudPool // per-function warm-instance pools
}

// New assembles a federation: every site's platform is built on one shared
// engine and its dispatch queues are wired to the placement layer.
func New(cfg Config) (*Federation, error) {
	if len(cfg.Sites) == 0 {
		return nil, fmt.Errorf("federation: no sites configured")
	}
	cfg.fillDefaults()
	if cfg.Topology == nil {
		ring, err := Ring(len(cfg.Sites), cfg.PeerRTT)
		if err != nil {
			return nil, err
		}
		cfg.Topology = ring
	} else if cfg.Topology.Size() != len(cfg.Sites) {
		return nil, fmt.Errorf("federation: topology is %d sites, config has %d",
			cfg.Topology.Size(), len(cfg.Sites))
	}
	engine := sim.NewEngine()
	f := &Federation{
		Engine:     engine,
		cfg:        cfg,
		cloudRng:   xrand.New(cfg.Seed ^ 0xfed0),
		cloudPools: make(map[string]*cloudPool),
	}
	for i, sc := range cfg.Sites {
		sc.Engine = engine
		if sc.Cluster.Site == "" {
			sc.Cluster.Site = fmt.Sprintf("edge-%d", i)
		}
		p, err := core.New(sc)
		if err != nil {
			return nil, fmt.Errorf("federation: site %d: %w", i, err)
		}
		s := &Site{
			Name:      sc.Cluster.Site,
			Index:     i,
			Platform:  p,
			Responses: metrics.NewReservoir(),
			SLO:       metrics.NewSLOTracker(cfg.ResponseSLO),
		}
		f.Sites = append(f.Sites, s)
	}
	for _, s := range f.Sites {
		s.peers = f.peersByRTT(s)
		for _, fc := range f.cfg.Sites[s.Index].Functions {
			f.wire(s, s.Platform.Queues[fc.Spec.Name])
		}
	}
	return f, nil
}

// rtt returns the one-way latency from edge site i to edge site j, read
// from the topology matrix (the ring formula when none was configured).
func (f *Federation) rtt(i, j int) time.Duration {
	return f.cfg.Topology.RTT(i, j)
}

// peersByRTT returns the other sites ordered by ascending RTT from s,
// breaking ties by site index, so "nearest peer" scans are deterministic.
func (f *Federation) peersByRTT(s *Site) []*Site {
	peers := make([]*Site, 0, len(f.Sites)-1)
	for _, p := range f.Sites {
		if p != s {
			peers = append(peers, p)
		}
	}
	sort.SliceStable(peers, func(i, j int) bool {
		ri, rj := f.rtt(s.Index, peers[i].Index), f.rtt(s.Index, peers[j].Index)
		if ri != rj {
			return ri < rj
		}
		return peers[i].Index < peers[j].Index
	})
	return peers
}

// wire installs the placement hook on one site queue.
func (f *Federation) wire(s *Site, q *dispatch.Queue) {
	q.Offload = func(r *dispatch.Request) bool {
		target, toCloud := f.place(s, q)
		switch {
		case toCloud:
			f.offloadToCloud(s, q, r)
			return true
		case target != nil:
			f.offloadToPeer(s, target, q.Spec().Name, r)
			return true
		default:
			s.ServedLocal++
			r.Done = func(r *dispatch.Request) { s.observe(r.Response()) }
			return false
		}
	}
}

// observe records one end-to-end response attributed to the ingress site.
func (s *Site) observe(resp time.Duration) {
	s.Responses.AddDuration(resp)
	s.SLO.Observe(resp)
}

// overloaded reports whether site s cannot absorb more work for fn right
// now: nothing servable with work already waiting, or the controller's
// capacity headroom is exhausted and the backlog exceeds the shed depth.
func (f *Federation) overloaded(s *Site, fn string) bool {
	q := s.Platform.Queues[fn]
	n := q.Containers()
	if n == 0 {
		// An empty pool can serve nothing: shed immediately (and refuse
		// peer work) rather than strand requests in a queue no container
		// may ever drain.
		return true
	}
	if !s.Platform.Controller.Overloaded() {
		return false
	}
	return q.QueueLength() >= f.cfg.OverloadQueueDepth*n
}

// accepts reports whether peer p can take offloaded fn work: it serves the
// function, is not itself overloaded, and its controller reports spare
// capacity.
func (f *Federation) accepts(p *Site, fn string) bool {
	if _, ok := p.Platform.Queues[fn]; !ok {
		return false
	}
	return !f.overloaded(p, fn) && p.Platform.Controller.Headroom() > 0
}

// predictResponse estimates the end-to-end response time (seconds) of
// serving one more fn request at site s, extraRTT included: current
// backlog drained at the pool's aggregate service rate, plus one mean
// service time.
func (f *Federation) predictResponse(s *Site, fn string, extraRTT time.Duration) float64 {
	q, ok := s.Platform.Queues[fn]
	if !ok {
		return math.Inf(1)
	}
	capacity := q.ServiceCapacity()
	if capacity <= 0 {
		return math.Inf(1)
	}
	backlog := float64(q.QueueLength() + q.InFlight())
	// The request's own service term uses the pool's average per-container
	// rate (n/capacity), not the standard-size mean, so predictions stay
	// honest on deflated pools — which are exactly the overloaded sites
	// where the placement decision matters. For an undeflated pool this
	// reduces to the standard mean service time.
	return extraRTT.Seconds() + (backlog+float64(q.Containers()))/capacity
}

// place decides where an ingress request at site s should be served:
// locally (nil, false), at a peer (peer, false), or in the cloud
// (nil, true).
func (f *Federation) place(s *Site, q *dispatch.Queue) (*Site, bool) {
	fn := q.Spec().Name
	switch f.cfg.Policy {
	case CloudOnly:
		if f.overloaded(s, fn) {
			return nil, true
		}
	case NearestPeer:
		if !f.overloaded(s, fn) {
			return nil, false
		}
		for _, p := range s.peers {
			if f.accepts(p, fn) {
				return p, false
			}
		}
		return nil, true
	case ModelDriven:
		deadline := f.cfg.ResponseSLO.Seconds()
		local := f.predictResponse(s, fn, 0)
		if local <= deadline {
			return nil, false
		}
		// Predicted SLO miss: pick the fastest alternative, local
		// included — offloading must actually help. Peer predictions pay
		// both network legs, which may differ under an asymmetric
		// topology.
		var best *Site
		bestResp := local
		for _, p := range s.peers {
			legs := f.rtt(s.Index, p.Index) + f.rtt(p.Index, s.Index)
			if resp := f.predictResponse(p, fn, legs); resp < bestResp {
				best, bestResp = p, resp
			}
		}
		if f.predictCloud(q) < bestResp {
			return nil, true
		}
		return best, false
	}
	return nil, false
}

// offloadToPeer ships the request to the target site: it arrives there one
// RTT later, counts toward the target's rate estimator (the target must
// provision for it), and its recorded end-to-end response includes both
// network legs — which may differ under an asymmetric topology.
func (f *Federation) offloadToPeer(origin, target *Site, fn string, r *dispatch.Request) {
	origin.OffloadedPeer++
	out := f.rtt(origin.Index, target.Index)
	back := f.rtt(target.Index, origin.Index)
	arrival := r.Arrival
	f.Engine.After(out, func() {
		target.PeerServed++
		target.Platform.Controller.RecordArrival(fn)
		pr := target.Platform.Queues[fn].ArriveOffloaded()
		pr.Done = func(pr *dispatch.Request) {
			origin.observe(pr.Finish - arrival + back)
		}
	})
}

// predictCloud estimates the end-to-end response time (seconds) of serving
// one request in the cloud right now: both network legs, the mean standard
// service time, and — unless the cloud is configured always-warm — the
// cold start the request would pay if no idle warm instance will greet it.
func (f *Federation) predictCloud(q *dispatch.Queue) float64 {
	spec := q.Spec()
	resp := 2*f.cfg.CloudRTT + spec.MeanServiceTimeAt(1.0)
	if !f.cfg.CloudAlwaysWarm {
		pool := f.cloudPools[spec.Name]
		if pool == nil || !pool.hasWarm(f.Engine.Now()+f.cfg.CloudRTT) {
			resp += spec.ColdStart
		}
	}
	return resp.Seconds()
}

// offloadToCloud serves the request on the cloud backend: it reaches the
// cloud one RTT later, reuses an idle warm instance when one exists
// (otherwise paying the function's cold start), executes a sampled
// standard-size service time capped by the function's hard execution
// limit, and accrues the invocation's cost at the origin site. A request
// killed by the limit never completes: it is counted in CloudTimedOut and
// remains an SLO violation at the origin (via the unresolved accounting).
func (f *Federation) offloadToCloud(origin *Site, q *dispatch.Queue, r *dispatch.Request) {
	spec := q.Spec()
	origin.OffloadedCloud++
	f.cloudServed++
	service := spec.SampleServiceTime(f.cloudRng, 1.0)
	run := service
	killed := false
	if tl := q.TimeLimit; tl > 0 && service > tl {
		run = tl
		killed = true
	}
	var cold time.Duration
	if !f.cfg.CloudAlwaysWarm {
		pool := f.cloudPools[spec.Name]
		if pool == nil {
			pool = &cloudPool{}
			f.cloudPools[spec.Name] = pool
		}
		cold = pool.acquire(f.Engine.Now()+f.cfg.CloudRTT, run, spec.ColdStart, f.cfg.CloudWarmWindow)
		if cold > 0 {
			origin.CloudColdStarts++
		}
	}
	origin.CloudCost += f.cfg.CloudPricePerInvocation +
		run.Seconds()*f.cfg.CloudPricePerGBSecond*float64(spec.MemoryMiB)/1024
	if killed {
		origin.CloudTimedOut++
		return
	}
	arrival := r.Arrival
	f.Engine.After(2*f.cfg.CloudRTT+cold+service, func() {
		origin.observe(f.Engine.Now() - arrival)
	})
}

// SiteResult is one site's view of a federated run.
type SiteResult struct {
	Name string
	// Core holds the site's standalone-platform results: queue latency,
	// allocation series, controller stats for the locally served share.
	Core *core.Result
	// Responses and SLO are the end-to-end measurements for ingress at
	// this site, wherever the requests were served.
	Responses *metrics.Reservoir
	SLO       *metrics.SLOTracker

	ServedLocal    uint64
	OffloadedPeer  uint64
	OffloadedCloud uint64
	PeerServed     uint64

	// CloudColdStarts, CloudTimedOut, and CloudCost mirror the Site
	// counters: cold starts paid, hard-limit kills, and accumulated cloud
	// bill for this site's offloads.
	CloudColdStarts uint64
	CloudTimedOut   uint64
	CloudCost       float64

	// Unresolved counts ingress requests that never completed before the
	// run ended — still queued, in service, in the network, or killed by
	// a time limit (local or cloud). They are excluded from Responses/SLO
	// (which observe completions only); a backlogged policy can strand
	// thousands of its worst-latency requests here, so honest SLO
	// comparisons must count them as misses rather than ignore them.
	// Cloud-killed requests are a subset of Unresolved, so they are
	// already counted as violations.
	Unresolved uint64
}

// Violations returns the SLO miss count with unresolved ingress requests
// counted as misses: a request still unserved when the run ends has, by
// construction, not met a response deadline shorter than the run.
func (r SiteResult) Violations() uint64 { return r.SLO.Violations() + r.Unresolved }

// ViolationRate returns Violations over all accounted ingress requests
// (completed plus unresolved), or 0 when nothing arrived.
func (r SiteResult) ViolationRate() float64 {
	total := r.SLO.Total() + r.Unresolved
	if total == 0 {
		return 0
	}
	return float64(r.Violations()) / float64(total)
}

// Result is the outcome of a federated run.
type Result struct {
	Policy      Policy
	Duration    time.Duration
	Sites       []SiteResult
	CloudServed uint64
	// CloudColdStarts, CloudTimedOut, and CloudCost aggregate the
	// per-site cloud realism counters across the federation.
	CloudColdStarts uint64
	CloudTimedOut   uint64
	CloudCost       float64
}

// Run drives all sites on the shared engine for the given simulated
// duration and collects per-site results.
func (f *Federation) Run(duration time.Duration) (*Result, error) {
	for _, s := range f.Sites {
		s.Platform.Start()
	}
	f.Engine.RunUntil(duration)
	res := &Result{Policy: f.cfg.Policy, Duration: duration, CloudServed: f.cloudServed}
	for _, s := range f.Sites {
		cr, err := s.Platform.Collect(duration)
		if err != nil {
			return nil, fmt.Errorf("federation: site %s: %w", s.Name, err)
		}
		var ingress uint64
		for _, fr := range cr.Functions {
			ingress += fr.Arrivals
		}
		var unresolved uint64
		if observed := s.SLO.Total(); ingress > observed {
			unresolved = ingress - observed
		}
		res.Sites = append(res.Sites, SiteResult{
			Name:            s.Name,
			Core:            cr,
			Responses:       s.Responses,
			SLO:             s.SLO,
			ServedLocal:     s.ServedLocal,
			OffloadedPeer:   s.OffloadedPeer,
			OffloadedCloud:  s.OffloadedCloud,
			PeerServed:      s.PeerServed,
			CloudColdStarts: s.CloudColdStarts,
			CloudTimedOut:   s.CloudTimedOut,
			CloudCost:       s.CloudCost,
			Unresolved:      unresolved,
		})
		res.CloudColdStarts += s.CloudColdStarts
		res.CloudTimedOut += s.CloudTimedOut
		res.CloudCost += s.CloudCost
	}
	return res, nil
}
