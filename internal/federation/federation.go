// Package federation simulates a multi-cluster edge–cloud deployment: N
// edge sites, each running the unmodified LaSS controller/cluster/dispatch
// stack, plus an elastic but high-latency cloud backend. A per-request
// placement layer decides at each site's ingress whether to serve locally,
// offload to a peer edge site (paying an RTT penalty), fall back to the
// cloud when the local site is over capacity or the backlog predicts an
// SLO miss, or reject the request outright (§3.4 admission).
//
// Placement is pluggable: every decision goes through a Placer
// (Place(ctx *PlacementContext) Decision), and the PlacementContext hands
// the policy everything the federation knows about the request's
// candidates — predicted responses, topology RTTs, controller headroom and
// backlog, global fair-share grants, and cloud prediction/queue/cost
// state. The historical enum policies are built-in placers registered by
// name; custom policies register with RegisterPlacer and are selected by
// name without touching this package.
//
// The paper (§3.4) evaluates admission control on a single
// resource-constrained cluster; this package opens the scenario family of
// Das et al., "Performance Optimization for Edge-Cloud Serverless
// Platforms via Dynamic Task Placement" (2020): dynamic edge↔cloud
// placement. Every site shares one deterministic sim.Engine, so federated
// runs are exactly reproducible, and with Policy Never each site behaves
// bit-for-bit like a standalone single-cluster simulation.
//
// Inter-site latency comes from an explicit Topology: a validated one-way
// latency matrix (optionally asymmetric, after the measured edge-platform
// RTT heterogeneity of Javed et al. 2021). Configurations that set no
// Topology get the original ring — sites at ring distance d are
// d×Config.PeerRTT apart — so "nearest peer" keeps its historical meaning.
//
// The cloud is modelled as standard-size capacity behind Config.CloudRTT,
// but it is neither always-warm nor free: each function has a
// warm-instance pool with a keep-alive window, the first request after
// idle pays the function's cold-start latency behind the RTT, and every
// invocation accrues cost at configurable FaaS price points. Cloud
// executions also honour the function's hard execution limit (§2.1) —
// a request whose sampled service time exceeds the limit is killed and
// counted as a violation at its origin site. Config.CloudMaxConcurrency
// adds the real FaaS throttle: at the cap, offloads queue FIFO for the
// next free instance and the wait counts toward response time.
//
// Beyond per-request placement, Config.GlobalFairShare lifts the paper's
// §4.1 weighted fair-share allocator to the federation level
// (internal/allocation): a coordinator site gathers every controller's
// demand report each epoch, water-fills the federation's total edge
// capacity over the site → user → function tree, and pushes per-site
// grants back down — every network leg read from the topology and
// charged, including the demand upload, so grants are always computed
// from RTT-stale snapshots. The coordinator is a first-class, elected,
// failure-tolerant role: Config.CoordinatorElection places it at a fixed
// index or at the topology's weighted RTT centroid,
// Config.CoordinatorOutages schedules windows during which the
// coordinator is dark (missed epochs produce no grants), and grants carry
// a lease (Config.GrantLease, default 2×AllocEpoch) so a site cut off
// from the coordinator falls back to local enforcement instead of
// freezing on stale grants forever. Config.OffloadAwareAdmission couples
// §3.4 admission control to placement: sheddable requests are offered
// along the policy's placement preferences and rejected only as a last
// resort.
package federation

import (
	"fmt"
	"math"
	"sort"
	"time"

	"lass/internal/allocation"
	"lass/internal/chaos"
	"lass/internal/core"
	"lass/internal/dispatch"
	"lass/internal/metrics"
	"lass/internal/sim"
	"lass/internal/xrand"
)

// Policy selects the per-request offload placement policy.
//
// Deprecated: Policy is the legacy enum surface, kept as a thin shim over
// the placer registry — each value resolves to the built-in Placer of the
// same name, and Config.Placer (or PlacerByName) supersedes it. New
// policies are Placers registered with RegisterPlacer; they need no enum
// value.
type Policy int

const (
	// Never serves every request at its ingress site — the single-cluster
	// baseline.
	Never Policy = iota
	// CloudOnly sheds to the cloud when the ingress site is overloaded.
	CloudOnly
	// NearestPeer sheds to the closest peer site with headroom, falling
	// back to the cloud when no peer can absorb the work.
	NearestPeer
	// ModelDriven predicts the response time at every candidate location
	// (backlog drain time plus RTT) and offloads to the best one whenever
	// the local prediction misses the response SLO.
	ModelDriven
)

// String returns the policy name.
func (p Policy) String() string {
	switch p {
	case Never:
		return "never"
	case CloudOnly:
		return "cloud-only"
	case NearestPeer:
		return "nearest-peer"
	case ModelDriven:
		return "model-driven"
	}
	return fmt.Sprintf("policy(%d)", int(p))
}

// ParsePolicy returns the enum policy named by s.
//
// Deprecated: ParsePolicy only knows the four legacy enum values; use
// ParsePlacer, which resolves every registered policy.
func ParsePolicy(s string) (Policy, error) {
	for _, p := range Policies() {
		if p.String() == s {
			return p, nil
		}
	}
	return 0, fmt.Errorf("federation: unknown offload policy %q", s)
}

// Policies returns all placement policies in sweep order.
func Policies() []Policy { return []Policy{Never, CloudOnly, NearestPeer, ModelDriven} }

// PeerSelection selects how a shedding site picks among candidate peers.
type PeerSelection int

const (
	// NearestFirst scans peers in ascending-RTT order and takes the first
	// with headroom — the historical behaviour, which overloads the
	// closest peer under bursts.
	NearestFirst PeerSelection = iota
	// PowerOfTwoChoices samples two candidate peers and keeps the one
	// with more controller headroom (ties to the nearer), probing no
	// further: the classic load-spreading trade of a little extra RTT for
	// much better balance.
	PowerOfTwoChoices
)

// String returns the peer-selection name.
func (p PeerSelection) String() string {
	switch p {
	case NearestFirst:
		return "nearest"
	case PowerOfTwoChoices:
		return "p2c"
	}
	return fmt.Sprintf("peer-selection(%d)", int(p))
}

// ParsePeerSelection returns the peer selection named by s.
func ParsePeerSelection(s string) (PeerSelection, error) {
	for _, p := range []PeerSelection{NearestFirst, PowerOfTwoChoices} {
		if p.String() == s {
			return p, nil
		}
	}
	return 0, fmt.Errorf("federation: unknown peer selection %q (nearest|p2c)", s)
}

// CoordinatorElection selects how the site hosting the global allocator is
// chosen.
type CoordinatorElection int

const (
	// Fixed pins the coordinator at Config.Coordinator (default site 0) —
	// the historical behaviour, and deliberately the zero value.
	Fixed CoordinatorElection = iota
	// RTTCentroid elects the site minimizing the weighted round-trip sum
	// over the Topology matrix (Topology.RTTCentroid, weighted by
	// SiteWeights): the placement that minimizes the demand-gather and
	// grant-delivery legs every allocation epoch pays. The election runs
	// when the federation is assembled and is re-run whenever membership
	// — the Sites list and its Topology — changes.
	RTTCentroid
)

// String returns the election-mode name.
func (e CoordinatorElection) String() string {
	switch e {
	case Fixed:
		return "fixed"
	case RTTCentroid:
		return "centroid"
	}
	return fmt.Sprintf("election(%d)", int(e))
}

// ParseCoordinatorElection returns the election mode named by s.
func ParseCoordinatorElection(s string) (CoordinatorElection, error) {
	for _, e := range []CoordinatorElection{Fixed, RTTCentroid} {
		if e.String() == s {
			return e, nil
		}
	}
	return 0, fmt.Errorf("federation: unknown coordinator election %q (fixed|centroid)", s)
}

// Window is a half-open interval [Start, End) of simulated time; the
// federation uses windows to schedule coordinator outages. It is the
// chaos package's window type, so static schedules move freely between
// Config.CoordinatorOutages and chaos fault declarations.
type Window = chaos.Window

// FaultView is the point-in-time failure oracle the federation consults:
// the chaos engine (internal/chaos) implements it, and Config.Faults
// accepts any implementation. The epoch loop asks CoordinatorDown (plus
// SiteDown for the coordinator's host) before gathering demand and again
// at the compute moment; the demand-upload and grant-return legs each
// check the corresponding directed link; and the dispatch path treats a
// dark link as an unreachable peer — excluded from placement outright,
// not modelled as extra latency. Queries arrive in nondecreasing
// simulated time.
type FaultView interface {
	// CoordinatorDown reports whether the coordinator role is dark at t
	// (the global allocator is silenced; no site's data plane is touched).
	CoordinatorDown(at time.Duration) bool
	// SiteDown reports whether the site is network-dark at t: every link
	// to and from it — peers, coordinator, and cloud uplink — is down,
	// while local ingress keeps being served from local capacity.
	SiteDown(site int, at time.Duration) bool
	// LinkDown reports whether the directed link from→to is dark at t.
	LinkDown(from, to int, at time.Duration) bool
}

// UnionFaults folds fault views into one that reports dark whenever any
// constituent does; nils are skipped.
func UnionFaults(views ...FaultView) FaultView {
	merged := make(faultUnion, 0, len(views))
	for _, v := range views {
		if v != nil {
			merged = append(merged, v)
		}
	}
	switch len(merged) {
	case 0:
		return nil
	case 1:
		return merged[0]
	}
	return merged
}

type faultUnion []FaultView

func (u faultUnion) CoordinatorDown(at time.Duration) bool {
	for _, v := range u {
		if v.CoordinatorDown(at) {
			return true
		}
	}
	return false
}

func (u faultUnion) SiteDown(site int, at time.Duration) bool {
	for _, v := range u {
		if v.SiteDown(site, at) {
			return true
		}
	}
	return false
}

func (u faultUnion) LinkDown(from, to int, at time.Duration) bool {
	for _, v := range u {
		if v.LinkDown(from, to, at) {
			return true
		}
	}
	return false
}

// Config describes a federated deployment.
type Config struct {
	// Sites configures one core platform per edge site. Site i's cluster
	// is named "edge-i" unless its Cluster.Site is already set. Any
	// Engine set on a site config is replaced by the federation's shared
	// engine.
	Sites []core.Config
	// Scheduler selects the shared engine's timer-queue implementation.
	// All kinds produce bit-for-bit identical results; see
	// sim.SchedulerKind.
	Scheduler sim.SchedulerKind
	// Placer is the placement policy consulted at every site's ingress.
	// When nil, the deprecated Policy enum selects the equally-named
	// built-in placer; custom policies come from RegisterPlacer /
	// PlacerByName and need no federation changes.
	Placer Placer
	// Policy is the legacy enum form of the placement policy, kept as a
	// thin shim over the placer registry: each enum value resolves to the
	// built-in Placer of the same name. Ignored when Placer is set.
	Policy Policy
	// Topology, when set, is the explicit one-way inter-site latency
	// matrix; its size must match Sites. When nil, the federation uses
	// Ring(len(Sites), PeerRTT) — the original ring-distance model.
	Topology *Topology
	// PeerRTT is the one-way RTT between ring-adjacent edge sites
	// (default 5ms); sites at ring distance d pay d×PeerRTT each way.
	// Ignored when Topology is set.
	PeerRTT time.Duration
	// CloudRTT is the one-way RTT from any edge site to the cloud
	// backend (default 50ms).
	CloudRTT time.Duration
	// CloudWarmWindow is how long an idle cloud instance stays warm
	// after finishing a request (default 10m). A request that finds no
	// idle warm instance pays its function's Spec.ColdStart behind the
	// cloud RTT before executing. A negative value means no keep-alive
	// at all — every idle gap cold-starts; zero selects the default.
	CloudWarmWindow time.Duration
	// CloudAlwaysWarm restores the legacy idealized cloud: no cold
	// starts are modelled (invocations still accrue cost).
	CloudAlwaysWarm bool
	// CloudPricePerInvocation and CloudPricePerGBSecond set the cost
	// axis for cloud offloads (defaults: $0.20 per million requests and
	// $0.0000166667 per GB-second of billed execution, the common
	// on-demand FaaS price points). Billed execution is the sampled
	// service time, truncated at the function's hard execution limit.
	// A negative value means an explicit zero price (a free tier) —
	// zero itself selects the default.
	CloudPricePerInvocation float64
	CloudPricePerGBSecond   float64
	// ResponseSLO is the end-to-end response deadline the federation
	// accounts violations against, network RTT included (default 250ms).
	// This is deliberately a response-time SLO, unlike the controller's
	// waiting-time SLO: offloading trades queueing delay for network
	// delay, and only an end-to-end metric ranks that trade fairly.
	ResponseSLO time.Duration
	// OverloadQueueDepth is the per-container backlog beyond which an
	// epoch-level overloaded site starts shedding (default 4).
	OverloadQueueDepth int
	// Seed drives the cloud backend's service-time sampling (and, under
	// PowerOfTwoChoices, the peer sampling).
	Seed uint64

	// GlobalFairShare lifts the §4.1 weighted fair-share allocator to the
	// federation level: every AllocEpoch a coordinator gathers
	// demand/weight from each site's controller, runs capped
	// water-filling over the federation's *total* edge capacity
	// (site → user → function), and pushes per-site capacity grants back
	// down. Site controllers then enforce the grants instead of computing
	// shares from local capacity, and demand is estimated from offered
	// load at each ingress (offloaded requests count at their origin, not
	// their host). Off by default: per-site-local allocation, bit-for-bit
	// the historical behaviour.
	GlobalFairShare bool
	// AllocEpoch is the global allocator's period (default 5s, the
	// controller evaluation interval).
	AllocEpoch time.Duration
	// Coordinator is the site index hosting the global allocator under
	// Fixed election (default 0; ignored under RTTCentroid). Epoch timing
	// is honest both ways: the coordinator waits for the slowest site's
	// demand upload (max_j rtt(j→coord)), computes grants from those
	// RTT-stale snapshots, and each site's grants land only after the
	// return leg rtt(coord→i) — coordination latency is charged, not
	// assumed away.
	Coordinator int
	// CoordinatorElection selects how the coordinator site is chosen:
	// Fixed (the zero value — Config.Coordinator, today's behaviour) or
	// RTTCentroid (the topology's weighted round-trip centroid, re-elected
	// when the federation is reassembled with different membership).
	CoordinatorElection CoordinatorElection
	// CoordinatorOutages schedules windows of simulated time during which
	// the coordinator is dark: allocation epochs that fire inside a window
	// produce no grants and are counted in Result.MissedAllocEpochs. Sites
	// keep enforcing their last grants until the grant lease lapses
	// (GrantLease), then fall back to local enforcement.
	CoordinatorOutages []Window
	// Faults, when set, is the failure oracle for the run — typically a
	// chaos.Engine built from seeded Gilbert-Elliott site/link processes
	// (see internal/chaos). It composes with CoordinatorOutages: the
	// legacy windows become one static coordinator-role process unioned
	// with this view. Nil means fault-free (every link always up), the
	// historical behaviour bit-for-bit.
	Faults FaultView
	// GrantLease is how long a delivered grant set stays valid without
	// renewal before the site's controller falls back to local enforcement
	// (default 2×AllocEpoch; negative = no lease, the freeze-on-stale
	// legacy). In steady state grants renew every epoch so the default
	// lease never lapses; it only bites when the coordinator goes dark.
	GrantLease time.Duration
	// SiteWeights optionally sets each site's weight at the root of the
	// global allocation tree. Entries must be non-negative: a negative
	// weight is a configuration error, and zero (like a missing entry)
	// explicitly means the default weight 1.
	SiteWeights []float64
	// AllocWorkers bounds the worker pool the global allocator uses for
	// its per-site feasibility clamps (allocation.Allocator.Workers).
	// Values <= 1 run the clamps serially; the grants are byte-identical
	// either way, only the coordinator's compute wall-clock changes — the
	// simulation's timing model is unaffected.
	AllocWorkers int
	// Hierarchy, when set, arranges the sites into a region → metro → site
	// capacity tree (allocation.Hierarchy). Under GlobalFairShare the
	// allocator then cascades demand-independent deserved quotas down the
	// tree and water-fills displaced demand level by level — same-metro
	// first — instead of in one federation-wide pool; each grant reports
	// its DeservedCPU and the revocable BorrowedCPU above it. The tree must
	// cover every site name. Nil means a flat federation, bit-for-bit the
	// historical allocator.
	Hierarchy *allocation.Hierarchy
	// Reclaim enables cross-site reclamation within each metro: when a
	// function's deserved share is starved at its home site, the allocator
	// preempts borrowed (over-quota) grants at a metro peer and re-grants
	// that capacity to the starved function at the peer, before the home
	// site would shed the load. Requires Hierarchy.
	Reclaim bool
	// ReclaimLatency is the engine-charged delay of a reclaim commit: each
	// epoch's grants land in two steps, the pre-reclaim assignment on the
	// normal return leg and the reclaimed transfers one ReclaimLatency
	// later (preempting a borrowed container is not free). Default
	// PeerRTT; negative means an explicit zero (instantaneous reclaim).
	// When the latency reaches the grant lease the top-up would land
	// already expired, so it is skipped and reclaim is inert.
	ReclaimLatency time.Duration

	// OffloadAwareAdmission couples §3.4 admission control to placement:
	// a request that would be rejected at an overloaded origin is first
	// offered along the placement policy's preferences — peers with
	// headroom, then the cloud — and only rejected outright when no
	// site's grant has headroom and the cloud's projected queueing delay
	// already exceeds the response SLO. Under policy Never no placement
	// is allowed, so sheddable requests are rejected at the origin (the
	// paper's single-cluster admission control, verbatim). Off by default
	// (requests queue at the origin as before).
	OffloadAwareAdmission bool
	// PeerSelection picks among candidate peers when shedding
	// (default NearestFirst, the historical strict-RTT-order scan).
	PeerSelection PeerSelection
	// CloudMaxConcurrency caps simultaneously running cloud instances per
	// function — the real FaaS throttle. At the cap, offloads queue FIFO
	// for the next free instance and the queue wait counts toward
	// response time. Zero means unbounded (the historical idealization).
	CloudMaxConcurrency int
}

func (c *Config) fillDefaults() {
	if c.PeerRTT == 0 {
		c.PeerRTT = 5 * time.Millisecond
	}
	if c.CloudRTT == 0 {
		c.CloudRTT = 50 * time.Millisecond
	}
	// Cloud knobs share one sentinel convention: zero selects the
	// default, negative means an explicit zero (free tier / no
	// keep-alive). With a zero warm window warmUntil collapses to
	// busyUntil, so the pool invariant (warmUntil >= busyUntil) holds.
	c.CloudWarmWindow = zeroDefault(c.CloudWarmWindow, 10*time.Minute)
	c.CloudPricePerInvocation = zeroDefault(c.CloudPricePerInvocation, defaultCloudPricePerInvocation)
	c.CloudPricePerGBSecond = zeroDefault(c.CloudPricePerGBSecond, defaultCloudPricePerGBSecond)
	if c.ResponseSLO == 0 {
		c.ResponseSLO = 250 * time.Millisecond
	}
	if c.OverloadQueueDepth == 0 {
		c.OverloadQueueDepth = 4
	}
	if c.AllocEpoch == 0 {
		c.AllocEpoch = 5 * time.Second
	}
	// Same sentinel convention as the cloud knobs: zero selects the
	// default, negative means explicitly none (an unleased grant).
	c.GrantLease = zeroDefault(c.GrantLease, 2*c.AllocEpoch)
	// Reclaim commits travel one more coordinator→peer message, so the
	// peer RTT is the honest default charge.
	c.ReclaimLatency = zeroDefault(c.ReclaimLatency, c.PeerRTT)
}

// Site is one edge deployment inside the federation.
type Site struct {
	Name     string
	Index    int
	Platform *core.Platform

	// Responses and SLO account end-to-end latency (RTT included) for
	// every request that entered the federation at this site, wherever
	// it was served.
	Responses *metrics.Reservoir
	SLO       *metrics.SLOTracker

	// ServedLocal counts ingress requests served on this site's own
	// cluster; OffloadedPeer and OffloadedCloud count ingress requests
	// placed elsewhere; PeerServed counts requests this site absorbed on
	// behalf of overloaded peers; Rejected counts ingress requests
	// refused by offload-aware admission after every peer and the cloud
	// declined (they remain SLO violations at this site).
	ServedLocal    uint64
	OffloadedPeer  uint64
	OffloadedCloud uint64
	PeerServed     uint64
	Rejected       uint64

	// CloudColdStarts counts this site's cloud offloads that paid a cold
	// start; CloudTimedOut counts those killed by the function's hard
	// execution limit (they never complete, so they stay violations);
	// CloudQueued counts those that waited at the per-function
	// concurrency cap; CloudCost is the accumulated cloud bill for this
	// site's offloads.
	CloudColdStarts uint64
	CloudTimedOut   uint64
	CloudQueued     uint64
	CloudCost       float64

	// GrantLeaseExpirations counts the grant leases that lapsed at this
	// site without renewal — each one a fallback from global grants to
	// local enforcement, typically because the coordinator went dark.
	GrantLeaseExpirations uint64

	// PartitionedEpochs counts allocation epochs this site sat out because
	// its uplink to the coordinator was dark at the boundary (the demand
	// upload never left); GrantsLost counts grant sets the coordinator
	// computed for this site that never landed because the return leg was
	// dark. Both are zero in fault-free runs.
	PartitionedEpochs uint64
	GrantsLost        uint64

	// Reclaimed totals the CPU millicores cross-site reclaim recovered for
	// this site's starved functions (served at metro peers on capacity
	// preempted from over-quota borrowers); Preempted totals the borrowed
	// millicores revoked *at* this site to fund peers' deserved shares.
	// Counted when the reclaim commit actually lands, so both are zero for
	// flat federations, with reclaim off, or when every commit was lost to
	// a coordinator outage.
	Reclaimed uint64
	Preempted uint64

	peers       []*Site // other sites, ascending RTT, ties by index
	borrowed    int64   // over-quota millicores in the last landed grant set
	observeDone func(*dispatch.Request)
}

// Federation is an assembled multi-cluster deployment.
type Federation struct {
	Engine *sim.Engine
	Sites  []*Site

	cfg         Config
	placer      Placer
	cloudRng    *xrand.Rand
	peerRng     *xrand.Rand
	cloudServed uint64
	cloudPools  map[string]*cloudPool // per-function warm-instance pools

	// Global fair-share state: the elected coordinator, the epoch-level
	// waste/drift accumulators the sweep reports, and the coordinator
	// failure/latency bookkeeping.
	coordinator       int
	allocEpochs       uint64
	missedAllocEpochs uint64
	strandedSum       float64
	driftSum          float64
	grantDelaySum     time.Duration
	grantDeliveries   uint64
	allocErr          error

	// alloc is the epoch loop's incremental global allocator: it keeps
	// per-site caches across epochs so sites whose demand reports did not
	// change reuse their previous feasibility clamps (steady-state epochs
	// allocate nothing at all inside the allocator).
	alloc *allocation.Allocator
	// faults is the run's failure oracle (Config.Faults unioned with the
	// legacy CoordinatorOutages process); nil means fault-free.
	faults FaultView
	// metroOf / regionOf map site index → hierarchy level (Config.
	// Hierarchy.Levels()); nil for flat federations. byName resolves the
	// site names reclaim directives carry back to Site values.
	metroOf  []int
	regionOf []int
	byName   map[string]*Site
	// snapFree pools the demand-snapshot buffers allocEpoch uploads to the
	// coordinator. A snapshot stays checked out while its gather leg is in
	// flight — gathers can overlap the next epoch boundary on slow
	// topologies — and returns to the pool after allocDeliver consumes it.
	snapFree []*demandSnapshot

	// ctxScratch backs the PlacementContext handed to the placer on every
	// ingress decision. The engine is single-threaded and Place must not
	// retain its context (see Placer), so one reusable value keeps the
	// per-request hot path allocation-free.
	ctxScratch PlacementContext
}

// New assembles a federation: every site's platform is built on one shared
// engine and its dispatch queues are wired to the placement layer.
func New(cfg Config) (*Federation, error) {
	if len(cfg.Sites) == 0 {
		return nil, fmt.Errorf("federation: no sites configured")
	}
	cfg.fillDefaults()
	if cfg.Topology == nil {
		ring, err := Ring(len(cfg.Sites), cfg.PeerRTT)
		if err != nil {
			return nil, err
		}
		cfg.Topology = ring
	} else if cfg.Topology.Size() != len(cfg.Sites) {
		return nil, fmt.Errorf("federation: topology is %d sites, config has %d",
			cfg.Topology.Size(), len(cfg.Sites))
	}
	if cfg.Coordinator < 0 || cfg.Coordinator >= len(cfg.Sites) {
		return nil, fmt.Errorf("federation: coordinator index %d out of range (have %d sites)",
			cfg.Coordinator, len(cfg.Sites))
	}
	switch cfg.CoordinatorElection {
	case Fixed, RTTCentroid:
	default:
		return nil, fmt.Errorf("federation: unknown coordinator election %d", int(cfg.CoordinatorElection))
	}
	if err := chaos.ValidateWindows(cfg.CoordinatorOutages); err != nil {
		return nil, fmt.Errorf("federation: coordinator outages: %w", err)
	}
	if len(cfg.SiteWeights) > len(cfg.Sites) {
		return nil, fmt.Errorf("federation: %d site weights for %d sites",
			len(cfg.SiteWeights), len(cfg.Sites))
	}
	for i, w := range cfg.SiteWeights {
		// Zero means "default weight 1" (documented); a negative weight is
		// always a mistake and used to be silently coerced to 1.
		if w < 0 {
			return nil, fmt.Errorf("federation: site %d weight %v is negative (use 0 or omit for the default 1)", i, w)
		}
	}
	placer := cfg.Placer
	if placer == nil {
		// The deprecated enum is a thin shim: resolve it through the same
		// registry custom policies use.
		var err error
		if placer, err = PlacerByName(cfg.Policy.String()); err != nil {
			return nil, err
		}
	}
	engine := sim.NewEngineWithScheduler(cfg.Scheduler)
	f := &Federation{
		Engine:     engine,
		cfg:        cfg,
		placer:     placer,
		cloudRng:   xrand.New(cfg.Seed ^ 0xfed0),
		peerRng:    xrand.New(cfg.Seed ^ 0x9ee2),
		cloudPools: make(map[string]*cloudPool),
		alloc:      allocation.NewAllocator(),
	}
	f.alloc.Workers = cfg.AllocWorkers
	// Assemble the failure oracle: the legacy static outage windows become
	// one coordinator-role chaos process, unioned with any configured
	// fault view. Replaying the same windows through the chaos layer is
	// bit-for-bit the historical CoordinatorOutages behaviour (the golden
	// regression in chaos_test.go holds it to that).
	f.faults = cfg.Faults
	if len(cfg.CoordinatorOutages) > 0 {
		outages, err := chaos.New(chaos.Config{
			Sites: len(cfg.Sites),
			Faults: []chaos.Fault{
				{Kind: chaos.FaultCoordinator, Windows: cfg.CoordinatorOutages},
			},
		})
		if err != nil {
			return nil, fmt.Errorf("federation: coordinator outages: %w", err)
		}
		f.faults = UnionFaults(f.faults, outages)
	}
	// Elect the coordinator. Membership is fixed for the federation's
	// lifetime, so the election runs once at assembly; rebuilding with a
	// different Sites list (or Topology) re-elects.
	f.coordinator = cfg.Coordinator
	if cfg.CoordinatorElection == RTTCentroid {
		f.coordinator = cfg.Topology.RTTCentroid(cfg.SiteWeights)
	}
	for i, sc := range cfg.Sites {
		sc.Engine = engine
		if sc.Cluster.Site == "" {
			sc.Cluster.Site = fmt.Sprintf("edge-%d", i)
		}
		p, err := core.New(sc)
		if err != nil {
			return nil, fmt.Errorf("federation: site %d: %w", i, err)
		}
		s := &Site{
			Name:      sc.Cluster.Site,
			Index:     i,
			Platform:  p,
			Responses: metrics.NewReservoir(),
			SLO:       metrics.NewSLOTracker(cfg.ResponseSLO),
		}
		// Bound once per site: the locally-served completion callback is
		// on the hot path, and a per-request closure there would undo the
		// dispatch layer's request pooling.
		s.observeDone = func(r *dispatch.Request) { s.observe(r.Response()) }
		f.Sites = append(f.Sites, s)
	}
	for _, s := range f.Sites {
		s.peers = f.peersByRTT(s)
		for _, fc := range f.cfg.Sites[s.Index].Functions {
			f.wire(s, s.Platform.Queues[fc.Spec.Name])
		}
	}
	if cfg.Reclaim && cfg.Hierarchy == nil {
		return nil, fmt.Errorf("federation: Reclaim requires a Hierarchy")
	}
	if cfg.Hierarchy != nil {
		names := make([]string, len(f.Sites))
		f.byName = make(map[string]*Site, len(f.Sites))
		for i, s := range f.Sites {
			names[i] = s.Name
			f.byName[s.Name] = s
		}
		if err := cfg.Hierarchy.Covers(names); err != nil {
			return nil, fmt.Errorf("federation: %w", err)
		}
		if err := f.alloc.SetHierarchy(cfg.Hierarchy, cfg.Reclaim); err != nil {
			return nil, fmt.Errorf("federation: %w", err)
		}
		levels := cfg.Hierarchy.Levels()
		f.metroOf = make([]int, len(f.Sites))
		f.regionOf = make([]int, len(f.Sites))
		for i, s := range f.Sites {
			lv := levels[s.Name]
			f.metroOf[i], f.regionOf[i] = lv.Metro, lv.Region
		}
	}
	return f, nil
}

// rtt returns the one-way latency from edge site i to edge site j, read
// from the topology matrix (the ring formula when none was configured).
func (f *Federation) rtt(i, j int) time.Duration {
	return f.cfg.Topology.RTT(i, j)
}

// Coordinator returns the site index hosting the global allocator: the
// configured index under Fixed election, the topology's weighted
// round-trip centroid under RTTCentroid.
func (f *Federation) Coordinator() int { return f.coordinator }

// coordinatorDark reports whether the global allocator is silenced at t:
// a coordinator-role fault holds, or the coordinator's host site is
// network-dark (nobody can reach the seat).
func (f *Federation) coordinatorDark(t time.Duration) bool {
	if f.faults == nil {
		return false
	}
	return f.faults.CoordinatorDown(t) || f.faults.SiteDown(f.coordinator, t)
}

// linkUp reports whether a message can traverse the directed edge i→j at
// t: both endpoints must be network-up and the link itself must not be
// dark. A dark link makes the far side unreachable — the dispatch path
// excludes the peer from placement entirely and the epoch loop drops the
// corresponding demand upload or grant delivery — rather than modelling
// it as extra latency.
func (f *Federation) linkUp(i, j int, t time.Duration) bool {
	if f.faults == nil || i == j {
		return true
	}
	return !f.faults.SiteDown(i, t) && !f.faults.SiteDown(j, t) && !f.faults.LinkDown(i, j, t)
}

// siteDark reports whether site i is network-dark at t (all links down,
// cloud uplink included; local service continues).
func (f *Federation) siteDark(i int, t time.Duration) bool {
	return f.faults != nil && f.faults.SiteDown(i, t)
}

// peersByRTT returns the other sites ordered by ascending RTT from s,
// breaking ties by site index, so "nearest peer" scans are deterministic.
func (f *Federation) peersByRTT(s *Site) []*Site {
	peers := make([]*Site, 0, len(f.Sites)-1)
	for _, p := range f.Sites {
		if p != s {
			peers = append(peers, p)
		}
	}
	sort.SliceStable(peers, func(i, j int) bool {
		ri, rj := f.rtt(s.Index, peers[i].Index), f.rtt(s.Index, peers[j].Index)
		if ri != rj {
			return ri < rj
		}
		return peers[i].Index < peers[j].Index
	})
	return peers
}

// wire installs the placement hook on one site queue: every arrival builds
// a PlacementContext, asks the configured Placer, and enacts the sanitized
// decision.
func (f *Federation) wire(s *Site, q *dispatch.Queue) {
	q.Offload = func(r *dispatch.Request) bool {
		d := f.decide(s, q)
		if d.Kind != ServeLocal && f.offeredLoadDemand(s) {
			// Demand is estimated from offered load at the ingress: the
			// core platform records only locally-admitted arrivals, so the
			// hook records the shed ones here (and offloadToPeer skips the
			// host-side record under the global allocator). This is what
			// lets the coordinator — or, under ControllerConfig.
			// OfferedLoadDemand, the origin's own estimator — see an
			// overloaded site's full demand instead of just the share it
			// kept.
			s.Platform.Controller.RecordArrival(q.Spec().Name)
		}
		switch d.Kind {
		case RejectRequest:
			s.Rejected++
			q.Reject(r)
			return true
		case OffloadCloud:
			f.offloadToCloud(s, q, r)
			return true
		case OffloadSite:
			f.offloadToPeer(s, f.Sites[d.Site], q.Spec().Name, r)
			return true
		default:
			s.ServedLocal++
			r.Done = s.observeDone
			return false
		}
	}
}

// offeredLoadDemand reports whether shed ingress requests at site s should
// still feed its controller's arrival-rate estimator: always under the
// global allocator (the coordinator needs full offered demand), and under
// per-site-local allocation when the site's controller opted in via
// ControllerConfig.OfferedLoadDemand — the knob that stops the origin's
// overload signal oscillating when shed load vanishes from its arrival
// stream.
func (f *Federation) offeredLoadDemand(s *Site) bool {
	return f.cfg.GlobalFairShare || s.Platform.Controller.Config().OfferedLoadDemand
}

// decide consults the placer for one ingress request at site s and
// sanitizes its decision: an out-of-range, self, or non-serving peer
// target falls back to local service, and — for a sheddable request —
// the §3.4 admission invariants are enforced independently of the policy:
// the request is never queued at its overloaded origin (ServeLocal becomes
// RejectRequest), and a cloud landing is gated by the cloud's projected
// queueing delay (cloudAdmits). Composing admission here is what lets any
// custom placer participate in offload-aware admission without
// special-casing.
func (f *Federation) decide(s *Site, q *dispatch.Queue) Decision {
	f.ctxScratch = PlacementContext{
		f:      f,
		origin: s,
		q:      q,
		sheddable: f.cfg.OffloadAwareAdmission &&
			f.overloaded(s, q.Spec().Name),
	}
	ctx := &f.ctxScratch
	d := f.placer.Place(ctx)
	if d.Kind == OffloadSite {
		if d.Site < 0 || d.Site >= len(f.Sites) || d.Site == s.Index {
			d = Local()
		} else if _, ok := f.Sites[d.Site].Platform.Queues[q.Spec().Name]; !ok {
			d = Local()
		} else if !f.linkUp(s.Index, d.Site, f.Engine.Now()) {
			// A dark link means the peer is unreachable, not merely slow:
			// the request cannot be shipped, whatever the policy thinks.
			d = Local()
		}
	}
	if d.Kind == OffloadCloud && f.siteDark(s.Index, f.Engine.Now()) {
		// A network-dark site has no cloud uplink either; the request
		// stays (and, if sheddable, is rejected below like any other
		// unplaceable overload).
		d = Local()
	}
	if ctx.sheddable {
		switch d.Kind {
		case ServeLocal:
			d = Reject()
		case OffloadCloud:
			if !f.cloudAdmits(q) {
				d = Reject()
			}
		}
	}
	return d
}

// observe records one end-to-end response attributed to the ingress site.
func (s *Site) observe(resp time.Duration) {
	s.Responses.AddDuration(resp)
	s.SLO.Observe(resp)
}

// overloaded reports whether site s cannot absorb more work for fn right
// now: nothing servable with work already waiting, or the controller's
// capacity headroom is exhausted and the backlog exceeds the shed depth.
// When an external allocator governs the site, the controller's
// demand-derived headroom only reflects the site's own ingress — absorbed
// peer work shows up as backlog instead — so the backlog signal alone
// gates, letting spread-granted hosts exert backpressure.
func (f *Federation) overloaded(s *Site, fn string) bool {
	q, ok := s.Platform.Queues[fn]
	if !ok {
		// The site does not serve fn at all: it can absorb nothing, which
		// for placement purposes is the same as being overloaded. Internal
		// callers never hit this, but PlacementContext.Overloaded hands
		// custom placers any site index without a bounds obligation.
		return true
	}
	n := q.Containers()
	if n == 0 {
		// An empty pool can serve nothing: shed immediately (and refuse
		// peer work) rather than strand requests in a queue no container
		// may ever drain.
		return true
	}
	if !s.Platform.Controller.GrantedExternally() && !s.Platform.Controller.Overloaded() {
		return false
	}
	return q.QueueLength() >= f.cfg.OverloadQueueDepth*n
}

// accepts reports whether peer p can take offloaded fn work: it serves the
// function, is not itself overloaded, and either its controller reports
// spare capacity or — under the global allocator — its fn pool holds
// pre-provisioned (spread-granted) capacity sitting idle. The idle
// -container check is the observable, per-function form of "this site's
// grant has headroom": a site saturated by its own demand whose grant was
// cut below capacity has busy pools and refuses, while a spread host with
// warm capacity for exactly this function accepts.
func (f *Federation) accepts(p *Site, fn string) bool {
	q, ok := p.Platform.Queues[fn]
	if !ok {
		return false
	}
	if f.overloaded(p, fn) {
		return false
	}
	if p.Platform.Controller.Headroom() > 0 {
		return true
	}
	return f.cfg.GlobalFairShare && q.IdleContainers() > 0
}

// acceptsFrom is accepts gated by reachability: a peer behind a dark
// link (or either endpoint network-dark) can absorb nothing from this
// origin right now, whatever its headroom says.
func (f *Federation) acceptsFrom(origin, p *Site, fn string) bool {
	if !f.linkUp(origin.Index, p.Index, f.Engine.Now()) {
		return false
	}
	return f.accepts(p, fn)
}

// selectPeer picks the peer that should absorb shed fn work from site s,
// or nil when none accepts. NearestFirst scans peers in ascending-RTT
// order; PowerOfTwoChoices samples two distinct candidates and keeps the
// one with more controller headroom (ties to the nearer), falling back to
// the other — and to nobody — rather than probing the whole federation.
func (f *Federation) selectPeer(s *Site, fn string) *Site {
	if f.cfg.PeerSelection == PowerOfTwoChoices && len(s.peers) > 1 {
		i := f.peerRng.Intn(len(s.peers))
		j := f.peerRng.Intn(len(s.peers) - 1)
		if j >= i {
			j++
		}
		a, b := s.peers[i], s.peers[j]
		if b.Platform.Controller.Headroom() > a.Platform.Controller.Headroom() ||
			(b.Platform.Controller.Headroom() == a.Platform.Controller.Headroom() && j < i) {
			a, b = b, a
		}
		if f.acceptsFrom(s, a, fn) {
			return a
		}
		if f.acceptsFrom(s, b, fn) {
			return b
		}
		return nil
	}
	for _, p := range s.peers {
		if f.acceptsFrom(s, p, fn) {
			return p
		}
	}
	return nil
}

// predictResponse estimates the end-to-end response time (seconds) of
// serving one more fn request at site s, extraRTT included: current
// backlog drained at the pool's aggregate service rate, plus one mean
// service time.
func (f *Federation) predictResponse(s *Site, fn string, extraRTT time.Duration) float64 {
	q, ok := s.Platform.Queues[fn]
	if !ok {
		return math.Inf(1)
	}
	capacity := q.ServiceCapacity()
	if capacity <= 0 {
		return math.Inf(1)
	}
	backlog := float64(q.QueueLength() + q.InFlight())
	// The request's own service term uses the pool's average per-container
	// rate (n/capacity), not the standard-size mean, so predictions stay
	// honest on deflated pools — which are exactly the overloaded sites
	// where the placement decision matters. For an undeflated pool this
	// reduces to the standard mean service time.
	return extraRTT.Seconds() + (backlog+float64(q.Containers()))/capacity
}

// offloadToPeer ships the request to the target site: it arrives there one
// RTT later, counts toward the target's rate estimator (the target must
// provision for it), and its recorded end-to-end response includes both
// network legs — which may differ under an asymmetric topology.
func (f *Federation) offloadToPeer(origin, target *Site, fn string, r *dispatch.Request) {
	origin.OffloadedPeer++
	out := f.rtt(origin.Index, target.Index)
	back := f.rtt(target.Index, origin.Index)
	arrival := r.Arrival
	f.Engine.After(out, func() {
		target.PeerServed++
		if !f.cfg.GlobalFairShare {
			// Locally-allocating hosts must provision for absorbed work;
			// under the global allocator the demand was already recorded
			// at the origin and capacity arrives via the grant.
			target.Platform.Controller.RecordArrival(fn)
		}
		pr := target.Platform.Queues[fn].ArriveOffloaded()
		pr.Done = func(pr *dispatch.Request) {
			origin.observe(pr.Finish - arrival + back)
		}
	})
}

// predictCloud estimates the end-to-end response time (seconds) of serving
// one request in the cloud right now: both network legs, the mean standard
// service time, the queueing delay a capped pool would impose, and —
// unless the cloud is configured always-warm — the cold start the request
// would pay if no idle warm instance will greet it.
func (f *Federation) predictCloud(q *dispatch.Queue) float64 {
	spec := q.Spec()
	resp := 2*f.cfg.CloudRTT + spec.MeanServiceTimeAt(1.0)
	pool := f.cloudPools[spec.Name]
	at := f.Engine.Now() + f.cfg.CloudRTT
	var wait time.Duration
	if pool != nil {
		wait = pool.predictWait(at, f.cfg.CloudMaxConcurrency)
	}
	if wait > 0 {
		// Queueing at the cap ends in a warm FIFO hand-off, never a cold
		// start — charge one or the other, not both.
		resp += wait
	} else if !f.cfg.CloudAlwaysWarm && (pool == nil || !pool.hasWarm(at)) {
		resp += spec.ColdStart
	}
	return resp.Seconds()
}

// cloudAdmits reports whether a cloud landing for one more fn request can
// still meet the response SLO: the full predictCloud floor — both network
// legs, the mean service time, and either the projected queueing delay at
// the concurrency cap or the cold start a pool with no warm instance would
// pay — must fit within the SLO. Beyond that a cloud landing is already a
// guaranteed violation, so admission rejects instead. (The check used to
// compare only the queue wait against the SLO, admitting cold pools whose
// 2×CloudRTT + ColdStart + mean service alone guaranteed a miss.)
func (f *Federation) cloudAdmits(q *dispatch.Queue) bool {
	return f.predictCloud(q) <= f.cfg.ResponseSLO.Seconds()
}

// offloadToCloud serves the request on the cloud backend: it reaches the
// cloud one RTT later, reuses an idle warm instance when one exists
// (otherwise paying the function's cold start — or, at the per-function
// concurrency cap, queueing FIFO for the next free instance, with the
// wait counted toward response time), executes a sampled standard-size
// service time capped by the function's hard execution limit, and accrues
// the invocation's cost at the origin site. A request killed by the limit
// never completes: it is counted in CloudTimedOut and remains an SLO
// violation at the origin (via the unresolved accounting).
func (f *Federation) offloadToCloud(origin *Site, q *dispatch.Queue, r *dispatch.Request) {
	spec := q.Spec()
	origin.OffloadedCloud++
	f.cloudServed++
	service := spec.SampleServiceTime(f.cloudRng, 1.0)
	run := service
	killed := false
	if tl := q.TimeLimit; tl > 0 && service > tl {
		run = tl
		killed = true
	}
	var wait, cold time.Duration
	if !f.cfg.CloudAlwaysWarm || f.cfg.CloudMaxConcurrency > 0 {
		pool := f.cloudPools[spec.Name]
		if pool == nil {
			pool = &cloudPool{}
			f.cloudPools[spec.Name] = pool
		}
		coldStart := spec.ColdStart
		if f.cfg.CloudAlwaysWarm {
			coldStart = 0 // capped but idealized: slots are limited, starts are free
		}
		wait, cold = pool.acquire(f.Engine.Now()+f.cfg.CloudRTT, run,
			coldStart, f.cfg.CloudWarmWindow, f.cfg.CloudMaxConcurrency)
		if cold > 0 {
			origin.CloudColdStarts++
		}
		if wait > 0 {
			origin.CloudQueued++
		}
	}
	origin.CloudCost += f.cfg.CloudPricePerInvocation +
		run.Seconds()*f.cfg.CloudPricePerGBSecond*float64(spec.MemoryMiB)/1024
	if killed {
		origin.CloudTimedOut++
		return
	}
	arrival := r.Arrival
	f.Engine.After(2*f.cfg.CloudRTT+wait+cold+service, func() {
		origin.observe(f.Engine.Now() - arrival)
	})
}

// demandSnapshot is one epoch's pooled demand upload: the compacted
// per-site reports that actually reached the coordinator, and the site
// index behind each slot (under a partial partition the two differ —
// cut-off sites drop out of the tree but the survivors keep their
// identities for the return leg).
type demandSnapshot struct {
	sites []allocation.SiteDemand
	idx   []int
}

// allocEpoch starts one federation-wide fair-share epoch. Timing is
// honest end to end: each site snapshots its demand report at the epoch
// boundary and uploads it, the coordinator can only compute once the
// slowest upload has arrived (max_j rtt(j→coord)), so grants are always
// derived from RTT-stale snapshots, and each site's grants land only
// after the return leg rtt(coord→i). An epoch whose boundary — or whose
// compute moment, one gather later — falls inside a CoordinatorOutages
// window produces no grants at all and is counted in
// Result.MissedAllocEpochs — sites coast on their leased grants until the
// lease lapses, then fall back to local enforcement. Under a FaultView
// the partition can also be partial: a site whose uplink to the
// coordinator is dark at the boundary simply drops out of this epoch's
// allocation tree (counted in PartitionedEpochs) while its peers are
// governed normally — the asymmetric-lease-expiry case.
func (f *Federation) allocEpoch() {
	if f.allocErr != nil {
		return
	}
	now := f.Engine.Now()
	if f.coordinatorDark(now) {
		f.missedAllocEpochs++
		return
	}
	// Check a snapshot buffer out of the pool; its nested Functions slices
	// are reused across epochs, so a steady-state epoch's upload copies the
	// demand reports without allocating. (Demands() returns a view of
	// controller scratch, so the copy below is also what keeps the report
	// valid until the gather leg delivers it.)
	var snap *demandSnapshot
	if n := len(f.snapFree); n > 0 {
		snap = f.snapFree[n-1]
		f.snapFree = f.snapFree[:n-1]
	} else {
		snap = &demandSnapshot{}
	}
	if cap(snap.sites) < len(f.Sites) {
		snap.sites = make([]allocation.SiteDemand, len(f.Sites))
	}
	snap.sites = snap.sites[:len(f.Sites)]
	snap.idx = snap.idx[:0]
	count := 0
	var gather time.Duration
	for i, s := range f.Sites {
		if !f.linkUp(i, f.coordinator, now) {
			// The demand upload cannot leave the site: it sits out this
			// epoch (no grant will come back either — the coordinator has
			// nothing to compute for it) and its lease keeps ticking.
			s.PartitionedEpochs++
			continue
		}
		var w float64 = 1
		if i < len(f.cfg.SiteWeights) && f.cfg.SiteWeights[i] > 0 {
			w = f.cfg.SiteWeights[i]
		}
		fns := snap.sites[count].Functions[:0]
		for _, d := range s.Platform.Controller.Demands() {
			fns = append(fns, allocation.FunctionDemand{
				Name:       d.Name,
				User:       d.User,
				Weight:     d.Weight,
				UserWeight: d.UserWeight,
				DesiredCPU: d.DesiredCPU,
			})
		}
		snap.sites[count] = allocation.SiteDemand{
			Site:        s.Name,
			Weight:      w,
			CapacityCPU: s.Platform.Controller.Capacity(),
			Functions:   fns,
		}
		snap.idx = append(snap.idx, i)
		count++
		if up := f.rtt(i, f.coordinator); up > gather {
			gather = up
		}
	}
	if count == 0 {
		// Every uplink is dark: nothing reaches the seat, the epoch is
		// missed outright.
		f.missedAllocEpochs++
		f.snapFree = append(f.snapFree, snap)
		return
	}
	snap.sites = snap.sites[:count]
	f.Engine.After(gather, func() { f.allocDeliver(snap, gather) })
}

// allocDeliver runs the allocation at the coordinator — one demand-gather
// leg after the epoch boundary, over the boundary-time snapshots — and
// pushes each site's grants down the return leg with the configured lease.
// The coordinator acts here, so an outage covering the compute moment
// (not just the epoch boundary) also misses the epoch: a coordinator
// that went dark while the demand reports were in flight cannot compute.
// Epoch-level stranded-capacity and allocation-drift measurements
// accumulate for the sweep tables, as does each delivery's end-to-end
// delay (gather + return) for Result.MeanGrantDelay — counted when the
// grants actually land, so deliveries still in flight when the run ends
// are not reported as delivered.
func (f *Federation) allocDeliver(snap *demandSnapshot, gather time.Duration) {
	// The snapshot buffer is consumed synchronously below (the incremental
	// allocator copies what it needs into its own caches), so it returns
	// to the pool whichever way this delivery ends.
	defer func() { f.snapFree = append(f.snapFree, snap) }()
	if f.allocErr != nil {
		return
	}
	now := f.Engine.Now()
	if f.coordinatorDark(now) {
		f.missedAllocEpochs++
		return
	}
	res, err := f.alloc.Allocate(snap.sites, true)
	if err != nil {
		f.allocErr = err
		return
	}
	f.allocEpochs++
	f.strandedSum += float64(res.StrandedCPU)
	f.driftSum += float64(res.DriftCPU)
	// One pass over the grant list builds every site's delivery map —
	// res.SiteGrants per site would rescan the whole list S times. The
	// maps outlive res (they ride the return-leg events), so they are
	// fresh per epoch; the site controllers copy them on receipt.
	bySite := make(map[string]map[string]int64, len(f.Sites))
	for _, g := range res.Grants {
		m := bySite[g.Site]
		if m == nil {
			m = make(map[string]int64, 8)
			bySite[g.Site] = m
		}
		m[g.Function] = g.GrantedCPU
	}
	lease := f.cfg.GrantLease // negative = unleased (freeze on stale)
	reclaimLag := f.cfg.ReclaimLatency
	if reclaimLag < 0 {
		reclaimLag = 0 // explicit-zero sentinel: instantaneous reclaim
	}
	// A reclaim top-up that would land with no lease left is pointless: the
	// controller would expire it the same instant. Skip it and let the
	// pre-reclaim assignment stand for the whole epoch (reclaim is inert at
	// such extreme latencies, and the sweep tables make that visible).
	skipReclaim := lease > 0 && reclaimLag >= lease
	// bySite above is the allocator's *post-reclaim* assignment. Preempting
	// a borrowed container is not free, so the grants land in two steps:
	// the pre-reclaim assignment (directives reversed) rides the normal
	// return leg, and the full post-reclaim set follows one ReclaimLatency
	// later with the residue of the same lease — both steps share one
	// absolute expiry deadline, so the base delivery's expiry event covers
	// the renewed lease too.
	var preBySite map[string]map[string]int64
	var reclaimsAt map[string][]allocation.Reclaim
	if len(res.Reclaims) > 0 && !skipReclaim {
		reclaimsAt = make(map[string][]allocation.Reclaim, 4)
		for _, d := range res.Reclaims {
			reclaimsAt[d.Site] = append(reclaimsAt[d.Site], d)
		}
	}
	if len(res.Reclaims) > 0 && reclaimLag > 0 {
		preBySite = make(map[string]map[string]int64, 4)
		for _, d := range res.Reclaims {
			m := preBySite[d.Site]
			if m == nil {
				m = make(map[string]int64, len(bySite[d.Site]))
				for fn, g := range bySite[d.Site] {
					m[fn] = g
				}
				preBySite[d.Site] = m
			}
			m[d.From] += d.CPU
			m[d.To] -= d.CPU
		}
	}
	// Per-site borrowed totals (over-quota millicores) feed the placement
	// layer's BorrowedCPU signal; only hierarchical runs produce any.
	var borrowedBy map[string]int64
	if f.metroOf != nil {
		borrowedBy = make(map[string]int64, len(f.Sites))
		for _, g := range res.Grants {
			borrowedBy[g.Site] += g.BorrowedCPU
		}
	}
	for _, i := range snap.idx {
		s := f.Sites[i]
		if !f.linkUp(f.coordinator, i, now) {
			// The return leg went dark while the demand was in flight: the
			// grant set is computed but never lands, so the site's previous
			// lease keeps ticking toward expiry while its peers renew —
			// leases expire asymmetrically under partial partitions. The
			// link is checked once per site per epoch, here: a reclaim
			// top-up lost later never re-counts the same grant set.
			s.GrantsLost++
			continue
		}
		grants := bySite[s.Name]
		if grants == nil {
			// A site with no registered functions still receives an empty
			// grant set — nil would mean "return to local allocation".
			grants = map[string]int64{}
		}
		base := grants
		if m := preBySite[s.Name]; m != nil {
			base = m
		}
		topUp := reclaimsAt[s.Name]
		back := f.rtt(f.coordinator, i)
		delay := gather + back
		site, ctl := s, s.Platform.Controller
		borrowed := borrowedBy[s.Name]
		f.Engine.After(back, func() {
			f.grantDelaySum += delay
			f.grantDeliveries++
			site.borrowed = borrowed
			if lease > 0 {
				ctl.SetCapacityGrantsLeased(base, lease)
				// The expiry event makes the fallback visible to the
				// placement layer the instant the lease runs out; a renewal
				// in the meantime pushes the controller's deadline past this
				// event, turning it into a no-op.
				f.Engine.After(lease, func() {
					if ctl.ExpireGrantLease() {
						site.GrantLeaseExpirations++
					}
				})
			} else {
				ctl.SetCapacityGrants(base)
			}
			if len(topUp) == 0 {
				return
			}
			if reclaimLag == 0 {
				// Instantaneous reclaim: base was already the post-reclaim
				// set, only the counters remain.
				f.applyReclaims(site, topUp)
				return
			}
			f.Engine.After(reclaimLag, func() {
				// The reclaim commit is one more coordinator message. A
				// coordinator that went dark in the meantime never sends
				// it: the pre-reclaim grants simply stand until their
				// lease lapses into local enforcement — no second
				// GrantsLost count for an epoch whose base delivery
				// already landed.
				if f.coordinatorDark(f.Engine.Now()) {
					return
				}
				if lease > 0 {
					ctl.SetCapacityGrantsLeased(grants, lease-reclaimLag)
				} else {
					ctl.SetCapacityGrants(grants)
				}
				f.applyReclaims(site, topUp)
			})
		})
	}
}

// applyReclaims books a landed reclaim commit: the applying site hosted the
// preempted borrower, each directive's home site is the starved function's
// origin the capacity was recovered for.
func (f *Federation) applyReclaims(site *Site, ds []allocation.Reclaim) {
	for _, d := range ds {
		site.Preempted += uint64(d.CPU)
		if home := f.byName[d.HomeSite]; home != nil {
			home.Reclaimed += uint64(d.CPU)
		}
	}
}

// SiteResult is one site's view of a federated run.
type SiteResult struct {
	Name string
	// Core holds the site's standalone-platform results: queue latency,
	// allocation series, controller stats for the locally served share.
	Core *core.Result
	// Responses and SLO are the end-to-end measurements for ingress at
	// this site, wherever the requests were served.
	Responses *metrics.Reservoir
	SLO       *metrics.SLOTracker

	ServedLocal    uint64
	OffloadedPeer  uint64
	OffloadedCloud uint64
	PeerServed     uint64
	Rejected       uint64

	// CloudColdStarts, CloudTimedOut, CloudQueued, and CloudCost mirror
	// the Site counters: cold starts paid, hard-limit kills, waits at the
	// concurrency cap, and accumulated cloud bill for this site's
	// offloads.
	CloudColdStarts uint64
	CloudTimedOut   uint64
	CloudQueued     uint64
	CloudCost       float64

	// GrantLeaseExpirations counts grant leases that lapsed at this site
	// without renewal (fallbacks to local enforcement).
	GrantLeaseExpirations uint64

	// PartitionedEpochs counts allocation epochs this site sat out behind
	// a dark uplink; GrantsLost counts computed grant sets that never
	// landed because the return leg was dark.
	PartitionedEpochs uint64
	GrantsLost        uint64

	// Reclaimed and Preempted mirror the Site cross-site reclaim counters:
	// millicores recovered for this site's starved functions at metro
	// peers, and borrowed millicores revoked at this site for peers.
	Reclaimed uint64
	Preempted uint64

	// Unresolved counts ingress requests that never completed before the
	// run ended — still queued, in service, in the network, or killed by
	// a time limit (local or cloud). They are excluded from Responses/SLO
	// (which observe completions only); a backlogged policy can strand
	// thousands of its worst-latency requests here, so honest SLO
	// comparisons must count them as misses rather than ignore them.
	// Cloud-killed requests are a subset of Unresolved, so they are
	// already counted as violations.
	Unresolved uint64
}

// Violations returns the SLO miss count with unresolved ingress requests
// counted as misses: a request still unserved when the run ends has, by
// construction, not met a response deadline shorter than the run.
func (r SiteResult) Violations() uint64 { return r.SLO.Violations() + r.Unresolved }

// ViolationRate returns Violations over all accounted ingress requests
// (completed plus unresolved), or 0 when nothing arrived.
func (r SiteResult) ViolationRate() float64 {
	total := r.SLO.Total() + r.Unresolved
	if total == 0 {
		return 0
	}
	return float64(r.Violations()) / float64(total)
}

// Result is the outcome of a federated run.
type Result struct {
	// Placer names the placement policy the run used (the registry key,
	// e.g. "model-driven" or a custom name).
	Placer string
	// Policy is the legacy enum form; meaningful only when the run was
	// configured through Config.Policy rather than Config.Placer.
	Policy      Policy
	Duration    time.Duration
	Sites       []SiteResult
	CloudServed uint64
	// CloudColdStarts, CloudTimedOut, CloudQueued, and CloudCost
	// aggregate the per-site cloud realism counters across the
	// federation; Rejected aggregates admission rejections.
	CloudColdStarts uint64
	CloudTimedOut   uint64
	CloudQueued     uint64
	CloudCost       float64
	Rejected        uint64
	// GlobalFairShare reports whether the run used the federation-wide
	// allocator; AllocEpochs counts its completed epochs, and
	// MeanStrandedCPU / MeanAllocDriftCPU are the per-epoch means of the
	// allocator's stranded-capacity and cross-site drift measurements
	// (millicores).
	GlobalFairShare   bool
	AllocEpochs       uint64
	MeanStrandedCPU   float64
	MeanAllocDriftCPU float64
	// Coordinator is the site index that hosted the global allocator and
	// Election how it was chosen; MissedAllocEpochs counts epochs that
	// fired inside a coordinator outage window and so produced no grants;
	// GrantLeaseExpirations aggregates the per-site lease fallbacks; and
	// MeanGrantDelay is the mean end-to-end grant-delivery delay (demand
	// gather + return leg) over every delivery of the run.
	Coordinator           int
	Election              CoordinatorElection
	MissedAllocEpochs     uint64
	GrantLeaseExpirations uint64
	MeanGrantDelay        time.Duration
	// PartitionedEpochs and GrantsLost aggregate the per-site partial
	// partition counters: epochs a site sat out behind a dark uplink, and
	// computed grant sets dropped on a dark return leg.
	PartitionedEpochs uint64
	GrantsLost        uint64
	// Hierarchical reports whether the run used a region→metro→site quota
	// tree (Config.Hierarchy); Reclaimed and Preempted aggregate the
	// per-site cross-site reclaim counters (millicores). Over a whole run
	// the two totals agree unless a reclaim commit was still in flight at
	// the end — every landed commit books both sides at once.
	Hierarchical bool
	Reclaimed    uint64
	Preempted    uint64
}

// Run drives all sites on the shared engine for the given simulated
// duration and collects per-site results.
func (f *Federation) Run(duration time.Duration) (*Result, error) {
	for _, s := range f.Sites {
		s.Platform.Start()
	}
	if f.cfg.GlobalFairShare {
		// Scheduled after the platforms so that, on shared epoch
		// timestamps, every controller's demand estimate is fresh before
		// the coordinator reads it. The first epoch fires at t≈0 — not one
		// full AllocEpoch in — so no site ever runs ungoverned-local while
		// the federation believes global governance is on; before their
		// first Step the controllers report their live (prewarmed) pool
		// capacity as demand, so bootstrap grants preserve the prewarm
		// rather than clawing back capacity nobody has measured yet.
		f.Engine.EveryFrom(0, f.cfg.AllocEpoch, f.allocEpoch)
	}
	f.Engine.RunUntil(duration)
	if f.allocErr != nil {
		return nil, fmt.Errorf("federation: global allocator: %w", f.allocErr)
	}
	res := &Result{Placer: f.placer.Name(), Policy: f.cfg.Policy, Duration: duration,
		CloudServed:     f.cloudServed,
		GlobalFairShare: f.cfg.GlobalFairShare, AllocEpochs: f.allocEpochs,
		Coordinator: f.coordinator, Election: f.cfg.CoordinatorElection,
		MissedAllocEpochs: f.missedAllocEpochs,
		Hierarchical:      f.cfg.Hierarchy != nil}
	if f.allocEpochs > 0 {
		res.MeanStrandedCPU = f.strandedSum / float64(f.allocEpochs)
		res.MeanAllocDriftCPU = f.driftSum / float64(f.allocEpochs)
	}
	if f.grantDeliveries > 0 {
		res.MeanGrantDelay = f.grantDelaySum / time.Duration(f.grantDeliveries)
	}
	for _, s := range f.Sites {
		cr, err := s.Platform.Collect(duration)
		if err != nil {
			return nil, fmt.Errorf("federation: site %s: %w", s.Name, err)
		}
		var ingress uint64
		for _, fr := range cr.Functions {
			ingress += fr.Arrivals
		}
		var unresolved uint64
		if observed := s.SLO.Total(); ingress > observed {
			unresolved = ingress - observed
		}
		res.Sites = append(res.Sites, SiteResult{
			Name:                  s.Name,
			Core:                  cr,
			Responses:             s.Responses,
			SLO:                   s.SLO,
			ServedLocal:           s.ServedLocal,
			OffloadedPeer:         s.OffloadedPeer,
			OffloadedCloud:        s.OffloadedCloud,
			PeerServed:            s.PeerServed,
			Rejected:              s.Rejected,
			CloudColdStarts:       s.CloudColdStarts,
			CloudTimedOut:         s.CloudTimedOut,
			CloudQueued:           s.CloudQueued,
			CloudCost:             s.CloudCost,
			GrantLeaseExpirations: s.GrantLeaseExpirations,
			PartitionedEpochs:     s.PartitionedEpochs,
			GrantsLost:            s.GrantsLost,
			Reclaimed:             s.Reclaimed,
			Preempted:             s.Preempted,
			Unresolved:            unresolved,
		})
		res.CloudColdStarts += s.CloudColdStarts
		res.CloudTimedOut += s.CloudTimedOut
		res.CloudQueued += s.CloudQueued
		res.CloudCost += s.CloudCost
		res.Rejected += s.Rejected
		res.GrantLeaseExpirations += s.GrantLeaseExpirations
		res.PartitionedEpochs += s.PartitionedEpochs
		res.GrantsLost += s.GrantsLost
		res.Reclaimed += s.Reclaimed
		res.Preempted += s.Preempted
	}
	return res, nil
}
