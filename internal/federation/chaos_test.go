package federation

import (
	"strings"
	"testing"
	"time"

	"lass/internal/chaos"
	"lass/internal/cluster"
	"lass/internal/core"
)

// goldenOutageConfig is the frozen pre-chaos reference scenario: four
// sites on the asymmetric star under model-driven placement with two
// static coordinator outage windows. The expected counters below were
// captured on the commit *before* CoordinatorOutages was reimplemented
// on the chaos layer, so this test holds the replay to bit-for-bit
// legacy behaviour.
func goldenOutageConfig(t *testing.T) Config {
	t.Helper()
	return Config{
		Sites:               fourSites(t, 77),
		Policy:              ModelDriven,
		Topology:            asymmetricStar(t),
		GlobalFairShare:     true,
		CoordinatorElection: RTTCentroid,
		CoordinatorOutages: []Window{
			{Start: 10 * time.Second, End: 25 * time.Second},
			{Start: 40 * time.Second, End: 55 * time.Second},
		},
		AllocEpoch: 5 * time.Second,
		GrantLease: 10 * time.Second,
		Seed:       3,
	}
}

type goldenSite struct {
	local, peer, cloud, served, total, viol, unres, exp uint64
	p95us                                               int64
}

var goldenSites = map[string]goldenSite{
	"edge-0": {local: 2481, peer: 149, cloud: 106, served: 1, total: 2731, viol: 108, unres: 5, exp: 2, p95us: 233044},
	"edge-1": {local: 439, peer: 6, cloud: 9, served: 71, total: 454, viol: 15, exp: 2, p95us: 225072},
	"edge-2": {local: 422, peer: 6, cloud: 10, served: 49, total: 438, viol: 12, exp: 2, p95us: 218716},
	"edge-3": {local: 439, peer: 4, cloud: 18, served: 44, total: 461, viol: 17, exp: 2, p95us: 226331},
}

func checkGolden(t *testing.T, res *Result, label string) {
	t.Helper()
	if res.Coordinator != 1 || res.AllocEpochs != 12 || res.MissedAllocEpochs != 6 ||
		res.GrantLeaseExpirations != 8 || res.MeanGrantDelay != 32*time.Millisecond ||
		res.CloudServed != 143 || res.Rejected != 0 {
		t.Errorf("%s: aggregate drift: coord=%d alloc=%d missed=%d exp=%d delay=%v cloud=%d rej=%d",
			label, res.Coordinator, res.AllocEpochs, res.MissedAllocEpochs,
			res.GrantLeaseExpirations, res.MeanGrantDelay, res.CloudServed, res.Rejected)
	}
	if res.PartitionedEpochs != 0 || res.GrantsLost != 0 {
		t.Errorf("%s: coordinator-role outages leaked into partition counters (%d, %d)",
			label, res.PartitionedEpochs, res.GrantsLost)
	}
	for _, s := range res.Sites {
		want, ok := goldenSites[s.Name]
		if !ok {
			t.Errorf("%s: unexpected site %s", label, s.Name)
			continue
		}
		got := goldenSite{
			local: s.ServedLocal, peer: s.OffloadedPeer, cloud: s.OffloadedCloud,
			served: s.PeerServed, total: s.SLO.Total(), viol: s.SLO.Violations(),
			unres: s.Unresolved, exp: s.GrantLeaseExpirations,
			p95us: int64(s.Responses.Quantile(0.95) * 1e6),
		}
		if got != want {
			t.Errorf("%s: site %s drifted:\n got %+v\nwant %+v", label, s.Name, got, want)
		}
	}
}

// TestCoordinatorOutagesGoldenReplay: the legacy static-window config,
// now replayed through the chaos layer, must reproduce the pre-chaos
// counters exactly — aggregates, per-site dispatch splits, SLO totals,
// and the p95 down to the microsecond.
func TestCoordinatorOutagesGoldenReplay(t *testing.T) {
	fed, err := New(goldenOutageConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	res, err := fed.Run(90 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, res, "legacy CoordinatorOutages")
}

// TestStaticWindowsFaultViewEquivalence: declaring the same windows as
// an explicit chaos coordinator fault via Config.Faults is bit-for-bit
// the CoordinatorOutages path.
func TestStaticWindowsFaultViewEquivalence(t *testing.T) {
	cfg := goldenOutageConfig(t)
	eng, err := chaos.New(chaos.Config{
		Sites: len(cfg.Sites),
		Faults: []chaos.Fault{
			{Kind: chaos.FaultCoordinator, Windows: cfg.CoordinatorOutages},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg.CoordinatorOutages = nil
	cfg.Faults = eng
	fed, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := fed.Run(90 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, res, "explicit chaos FaultView")
}

// TestOutageWindowOverlapRejected: overlapping CoordinatorOutages are a
// configuration error with a clear message, not silent double-counting.
func TestOutageWindowOverlapRejected(t *testing.T) {
	_, err := New(Config{
		Sites:           fourSites(t, 77),
		GlobalFairShare: true,
		CoordinatorOutages: []Window{
			{Start: 0, End: 20 * time.Second},
			{Start: 10 * time.Second, End: 30 * time.Second},
		},
	})
	if err == nil {
		t.Fatal("New accepted overlapping outage windows")
	}
	if !strings.Contains(err.Error(), "overlap") {
		t.Errorf("error %q does not mention the overlap", err)
	}
}

// partitionSites builds the two-site fleet the partition tests run on:
// site 0 (the fixed coordinator host) heavy, site 1 light.
func partitionSites(t *testing.T) []core.Config {
	t.Helper()
	return []core.Config{
		staticSite(t, "squeezenet", 30, 51, cluster.PaperCluster()),
		staticSite(t, "squeezenet", 5, 52, cluster.PaperCluster()),
	}
}

// TestAsymmetricPartitionLeaseExpiry: a bidirectional link fault cuts
// site 1 off from the coordinator while site 0 keeps its seat-local
// grants flowing the same epochs. The cut-off site must sit out epochs
// (PartitionedEpochs), let its lease lapse into local-enforcement
// fallback (GrantLeaseExpirations), and the governed site must see none
// of it — the asymmetry PR 5's whole-coordinator outages could not
// express.
func TestAsymmetricPartitionLeaseExpiry(t *testing.T) {
	eng, err := chaos.New(chaos.Config{
		Sites: 2,
		Faults: []chaos.Fault{
			{Kind: chaos.FaultLink, From: 1, To: 0, Bidirectional: true,
				Windows: []chaos.Window{{Start: 12 * time.Second, End: 60 * time.Second}}},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	fed, err := New(Config{
		Sites:           partitionSites(t),
		Policy:          Never,
		GlobalFairShare: true,
		AllocEpoch:      5 * time.Second,
		GrantLease:      10 * time.Second,
		Faults:          eng,
		Seed:            9,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := fed.Run(60 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	cut, governed := res.Sites[1], res.Sites[0]
	if cut.PartitionedEpochs == 0 {
		t.Error("cut-off site sat out no epochs")
	}
	if cut.GrantLeaseExpirations == 0 {
		t.Error("cut-off site's lease never lapsed into local enforcement")
	}
	if governed.PartitionedEpochs != 0 || governed.GrantLeaseExpirations != 0 {
		t.Errorf("governed site was disturbed: partitioned=%d expirations=%d",
			governed.PartitionedEpochs, governed.GrantLeaseExpirations)
	}
	if res.MissedAllocEpochs != 0 {
		t.Errorf("partial partition missed %d whole epochs; the coordinator never went dark", res.MissedAllocEpochs)
	}
	if res.AllocEpochs == 0 {
		t.Error("no allocation epochs completed")
	}
}

// TestReturnLegPartitionDropsGrants: a fault on only the coordinator→site
// direction lets demand uploads through (the site stays in the tree, so
// no PartitionedEpochs) but drops the computed grants on the dark return
// leg — counted in GrantsLost, with the lease again expiring only at the
// cut site.
func TestReturnLegPartitionDropsGrants(t *testing.T) {
	eng, err := chaos.New(chaos.Config{
		Sites: 2,
		Faults: []chaos.Fault{
			{Kind: chaos.FaultLink, From: 0, To: 1,
				Windows: []chaos.Window{{Start: 12 * time.Second, End: 60 * time.Second}}},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	fed, err := New(Config{
		Sites:           partitionSites(t),
		Policy:          Never,
		GlobalFairShare: true,
		AllocEpoch:      5 * time.Second,
		GrantLease:      10 * time.Second,
		Faults:          eng,
		Seed:            9,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := fed.Run(60 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	cut, governed := res.Sites[1], res.Sites[0]
	if cut.PartitionedEpochs != 0 {
		t.Errorf("upload direction was clear but site sat out %d epochs", cut.PartitionedEpochs)
	}
	if cut.GrantsLost == 0 {
		t.Error("no grant sets were dropped on the dark return leg")
	}
	if cut.GrantLeaseExpirations == 0 {
		t.Error("cut site's lease never lapsed despite undelivered grants")
	}
	if governed.GrantsLost != 0 || governed.GrantLeaseExpirations != 0 {
		t.Errorf("governed site was disturbed: lost=%d expirations=%d",
			governed.GrantsLost, governed.GrantLeaseExpirations)
	}
}

// TestDarkPeerExcludedFromDispatch: a site-down fault makes the only
// peer unreachable for the whole run — the overloaded origin must route
// around it (cloud, not peer), the dark site must absorb no peer work,
// and its own local ingress must keep being served (network-dark, not
// powered off).
func TestDarkPeerExcludedFromDispatch(t *testing.T) {
	run := func(dark bool) *Result {
		cfg := Config{
			Sites: []core.Config{
				staticSite(t, "squeezenet", 40, 61, tinyCluster()),
				staticSite(t, "squeezenet", 2, 62, cluster.PaperCluster()),
			},
			Policy: ModelDriven,
			Seed:   5,
		}
		if dark {
			eng, err := chaos.New(chaos.Config{
				Sites: 2,
				Faults: []chaos.Fault{
					{Kind: chaos.FaultSite, Site: 1,
						Windows: []chaos.Window{{Start: 0, End: time.Hour}}},
				},
			})
			if err != nil {
				t.Fatal(err)
			}
			cfg.Faults = eng
		}
		fed, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := fed.Run(60 * time.Second)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	clear, dark := run(false), run(true)
	if clear.Sites[0].OffloadedPeer == 0 {
		t.Fatal("fault-free baseline never offloaded to the peer; the scenario is not exercising dispatch")
	}
	if dark.Sites[0].OffloadedPeer != 0 || dark.Sites[1].PeerServed != 0 {
		t.Errorf("dark peer still received work: offloaded=%d absorbed=%d",
			dark.Sites[0].OffloadedPeer, dark.Sites[1].PeerServed)
	}
	if dark.Sites[0].OffloadedCloud <= clear.Sites[0].OffloadedCloud {
		t.Errorf("overload did not reroute to the cloud: dark %d vs clear %d",
			dark.Sites[0].OffloadedCloud, clear.Sites[0].OffloadedCloud)
	}
	if dark.Sites[1].ServedLocal == 0 {
		t.Error("network-dark site stopped serving its own ingress")
	}
}

// TestDarkOriginLosesCloudUplink: a network-dark site cannot offload
// anywhere — peers or cloud — so its overload is absorbed locally (or
// shed), never shipped.
func TestDarkOriginLosesCloudUplink(t *testing.T) {
	eng, err := chaos.New(chaos.Config{
		Sites: 2,
		Faults: []chaos.Fault{
			{Kind: chaos.FaultSite, Site: 0,
				Windows: []chaos.Window{{Start: 0, End: time.Hour}}},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	fed, err := New(Config{
		Sites: []core.Config{
			staticSite(t, "squeezenet", 40, 61, tinyCluster()),
			staticSite(t, "squeezenet", 2, 62, cluster.PaperCluster()),
		},
		Policy: ModelDriven,
		Faults: eng,
		Seed:   5,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := fed.Run(60 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	s := res.Sites[0]
	if s.OffloadedPeer != 0 || s.OffloadedCloud != 0 {
		t.Errorf("dark origin shipped work out: peer=%d cloud=%d", s.OffloadedPeer, s.OffloadedCloud)
	}
	if s.ServedLocal == 0 {
		t.Error("dark origin served nothing locally")
	}
}
