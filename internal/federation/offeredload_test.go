package federation

import (
	"testing"
	"time"

	"lass/internal/cluster"
	"lass/internal/core"
)

// TestOfferedLoadDemandMonotoneUnderShedding exercises the local-path
// offered-load knob (ControllerConfig.OfferedLoadDemand, the ROADMAP's
// demand-signal handoff): a site at 90 req/s against ~40 req/s of capacity
// sheds steadily to its peer, so without the knob its estimator sees only
// the kept arrivals (≈ the pool's drain rate) and reports less than half
// the offered demand. With the knob the estimator tracks the full
// offered load, and the overload signal, once raised, stays raised for the
// rest of the steady overload — monotone, no flapping.
func TestOfferedLoadDemandMonotoneUnderShedding(t *testing.T) {
	edge := cluster.Config{Nodes: 1, CPUPerNode: 4000, MemPerNode: 8192, Policy: cluster.WorstFit}
	run := func(offered bool) (meanLambda float64, signal []bool, shed uint64) {
		hot := staticSite(t, "squeezenet", 90, 33, edge)
		hot.Controller.OfferedLoadDemand = offered
		helper := staticSite(t, "squeezenet", 2, 44, cluster.PaperCluster())
		fed, err := New(Config{Sites: []core.Config{hot, helper}, Policy: NearestPeer, Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		ctl := fed.Sites[0].Platform.Controller
		var lambda []float64
		fed.Engine.Every(5*time.Second, func() {
			f, ok := ctl.Function("squeezenet")
			if !ok {
				t.Error("squeezenet not registered at the hot site")
				return
			}
			lambda = append(lambda, f.LambdaHat)
			signal = append(signal, ctl.Overloaded())
		})
		res, err := fed.Run(5 * time.Minute)
		if err != nil {
			t.Fatal(err)
		}
		// Skip the first 30 simulated seconds: the estimator warms up and
		// the pool grows from its single prewarmed container.
		var sum float64
		for _, l := range lambda[6:] {
			sum += l
		}
		return sum / float64(len(lambda)-6), signal, res.Sites[0].OffloadedPeer + res.Sites[0].OffloadedCloud
	}

	withLambda, withSignal, withShed := run(true)
	withoutLambda, _, withoutShed := run(false)
	if withShed == 0 || withoutShed == 0 {
		t.Fatalf("scenario did not shed (with=%d without=%d); the knob is untested", withShed, withoutShed)
	}

	// The knob restores the offered-demand signal: ~90 req/s instead of
	// the kept ≈ drain rate (~40 req/s).
	if withLambda < 75 {
		t.Errorf("offered-load estimate %.1f req/s does not track the 90 req/s offered", withLambda)
	}
	if withoutLambda > withLambda/1.5 {
		t.Errorf("kept-only estimate %.1f req/s vs offered-load %.1f: shedding no longer hides demand?",
			withoutLambda, withLambda)
	}

	// Monotone overload signal: after the warmup transition it latches on
	// and never clears while the steady overload persists.
	raised := false
	for i, s := range withSignal {
		if s {
			raised = true
			continue
		}
		if raised {
			t.Fatalf("overload signal cleared at epoch %d despite steady 2.25x offered overload: %v", i, withSignal)
		}
	}
	if !raised {
		t.Fatal("overload signal never raised under 2.25x offered overload")
	}
}
