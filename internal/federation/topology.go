package federation

import (
	"fmt"
	"time"

	"lass/internal/allocation"
)

// Level re-exports allocation.Level — the (metro, region) coordinates
// Hierarchy.Levels() assigns each site — so topology construction does not
// force callers through the allocation package's name.
type Level = allocation.Level

// Topology is an explicit inter-site one-way latency matrix: entry (i, j)
// is the one-way network delay from edge site i to edge site j. It replaces
// the original hard-coded ring-distance RTT model, following the measured
// edge-platform RTT heterogeneity reported by Javed et al. (2021): real
// edge deployments are neither rings nor symmetric, so the matrix may be
// asymmetric — only the diagonal must be zero and no entry negative.
//
// Ring and Star construct the two common regular topologies; NewTopology
// accepts any measured matrix.
type Topology struct {
	rtt [][]time.Duration
}

// NewTopology validates and wraps an explicit one-way latency matrix. The
// matrix must be square with a zero diagonal and non-negative entries;
// asymmetry (rtt[i][j] != rtt[j][i]) is allowed. The matrix is copied, so
// the caller may reuse its slices.
func NewTopology(rtt [][]time.Duration) (*Topology, error) {
	n := len(rtt)
	if n == 0 {
		return nil, fmt.Errorf("federation: empty topology")
	}
	m := make([][]time.Duration, n)
	for i, row := range rtt {
		if len(row) != n {
			return nil, fmt.Errorf("federation: topology row %d has %d entries, want %d (square matrix)", i, len(row), n)
		}
		for j, d := range row {
			if d < 0 {
				return nil, fmt.Errorf("federation: topology entry (%d,%d) is negative (%v)", i, j, d)
			}
			if i == j && d != 0 {
				return nil, fmt.Errorf("federation: topology diagonal entry (%d,%d) is %v, want 0", i, j, d)
			}
		}
		m[i] = append([]time.Duration(nil), row...)
	}
	return &Topology{rtt: m}, nil
}

// Ring returns the original ring topology: sites at ring distance d are
// d×peerRTT apart (one way), which is exactly the RTT model the federation
// used before explicit matrices existed. A federation configured without a
// Topology gets Ring(len(Sites), PeerRTT), so the default behaviour is
// unchanged.
func Ring(n int, peerRTT time.Duration) (*Topology, error) {
	if n <= 0 {
		return nil, fmt.Errorf("federation: ring size %d", n)
	}
	if peerRTT < 0 {
		return nil, fmt.Errorf("federation: negative ring RTT %v", peerRTT)
	}
	m := make([][]time.Duration, n)
	for i := range m {
		m[i] = make([]time.Duration, n)
		for j := range m[i] {
			d := i - j
			if d < 0 {
				d = -d
			}
			if n-d < d {
				d = n - d
			}
			m[i][j] = time.Duration(d) * peerRTT
		}
	}
	return &Topology{rtt: m}, nil
}

// Star returns a hub-and-spoke topology with site 0 as the hub: the hub is
// spokeRTT (one way) from every other site, and two non-hub sites reach
// each other through the hub at 2×spokeRTT. This models a metro deployment
// where one well-connected site fronts several access-network sites.
func Star(n int, spokeRTT time.Duration) (*Topology, error) {
	if n <= 0 {
		return nil, fmt.Errorf("federation: star size %d", n)
	}
	if spokeRTT < 0 {
		return nil, fmt.Errorf("federation: negative star RTT %v", spokeRTT)
	}
	m := make([][]time.Duration, n)
	for i := range m {
		m[i] = make([]time.Duration, n)
		for j := range m[i] {
			switch {
			case i == j:
			case i == 0 || j == 0:
				m[i][j] = spokeRTT
			default:
				m[i][j] = 2 * spokeRTT
			}
		}
	}
	return &Topology{rtt: m}, nil
}

// RTTClasses are the three per-level one-way latencies a Hierarchical
// topology is built from: sites in the same metro are IntraMetro apart,
// sites in different metros of the same region IntraRegion, and sites in
// different regions CrossRegion. The zero value selects the defaults
// (2ms / 10ms / 40ms one way — access-network, metro-backbone, and
// inter-region WAN figures); a negative entry is an explicit zero.
type RTTClasses struct {
	IntraMetro  time.Duration
	IntraRegion time.Duration
	CrossRegion time.Duration
}

// Hierarchical derives a latency matrix from a hierarchy's levels: each
// ordered site pair pays the class of the lowest tree level it shares.
// sites lists the federation's site names in site-index order (every name
// must appear in the hierarchy), and levels comes from Hierarchy.Levels().
// The matrix is symmetric by construction — class asymmetry would mean
// the hierarchy itself is inconsistent, and Levels() derives both metro
// and region from one tree, so a shared metro always implies a shared
// region.
func Hierarchical(sites []string, levels map[string]Level, classes RTTClasses) (*Topology, error) {
	classes.IntraMetro = zeroDefault(classes.IntraMetro, 2*time.Millisecond)
	classes.IntraRegion = zeroDefault(classes.IntraRegion, 10*time.Millisecond)
	classes.CrossRegion = zeroDefault(classes.CrossRegion, 40*time.Millisecond)
	classes.IntraMetro = max(classes.IntraMetro, 0)
	classes.IntraRegion = max(classes.IntraRegion, 0)
	classes.CrossRegion = max(classes.CrossRegion, 0)
	if len(sites) == 0 {
		return nil, fmt.Errorf("federation: hierarchical topology with no sites")
	}
	lv := make([]Level, len(sites))
	for i, name := range sites {
		l, ok := levels[name]
		if !ok {
			return nil, fmt.Errorf("federation: hierarchical topology: site %q not in hierarchy", name)
		}
		lv[i] = l
	}
	m := make([][]time.Duration, len(sites))
	for i := range m {
		m[i] = make([]time.Duration, len(sites))
		for j := range m[i] {
			switch {
			case i == j:
			case lv[i].Metro == lv[j].Metro:
				m[i][j] = classes.IntraMetro
			case lv[i].Region == lv[j].Region:
				m[i][j] = classes.IntraRegion
			default:
				m[i][j] = classes.CrossRegion
			}
		}
	}
	return &Topology{rtt: m}, nil
}

// RTTCentroid returns the site best placed to host a coordinator: the
// index minimizing the weighted sum of round trips
// Σ_j w_j × (RTT(j, i) + RTT(i, j)) over every site j — both legs counted
// separately, so an asymmetric matrix elects honestly. weights optionally
// weighs each site's round trip (entries ≤ 0 and missing entries mean 1;
// pass nil for unweighted); ties break to the lowest index, so election is
// deterministic. Re-run it whenever membership — the matrix — changes.
func (t *Topology) RTTCentroid(weights []float64) int {
	best, bestSum := 0, time.Duration(-1)
	for i := range t.rtt {
		var sum time.Duration
		for j := range t.rtt {
			w := 1.0
			if j < len(weights) && weights[j] > 0 {
				w = weights[j]
			}
			sum += time.Duration(w * float64(t.rtt[j][i]+t.rtt[i][j]))
		}
		if bestSum < 0 || sum < bestSum {
			best, bestSum = i, sum
		}
	}
	return best
}

// Size returns the number of sites the topology describes.
func (t *Topology) Size() int { return len(t.rtt) }

// RTT returns the one-way latency from site i to site j.
func (t *Topology) RTT(i, j int) time.Duration { return t.rtt[i][j] }
