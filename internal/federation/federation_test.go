package federation

import (
	"testing"
	"time"

	"lass/internal/cluster"
	"lass/internal/controller"
	"lass/internal/core"
	"lass/internal/functions"
	"lass/internal/workload"
)

func staticSite(t *testing.T, fn string, rate float64, seed uint64, cl cluster.Config) core.Config {
	t.Helper()
	spec, err := functions.ByName(fn)
	if err != nil {
		t.Fatal(err)
	}
	wl, err := workload.NewStatic(rate)
	if err != nil {
		t.Fatal(err)
	}
	return core.Config{
		Cluster:    cl,
		Controller: controller.Config{MinContainers: 1},
		Seed:       seed,
		Functions:  []core.FunctionConfig{{Spec: spec, Workload: wl, Prewarm: 1}},
	}
}

// tinyCluster fits exactly one standard squeezenet container, so any
// nontrivial load overloads it.
func tinyCluster() cluster.Config {
	return cluster.Config{Nodes: 1, CPUPerNode: 1000, MemPerNode: 512, Policy: cluster.WorstFit}
}

// TestNeverMatchesStandalone is the bit-for-bit regression the federation
// must preserve: with the never policy, every site's measurements are
// identical to running the same core.Config as a standalone single-cluster
// simulation.
func TestNeverMatchesStandalone(t *testing.T) {
	const dur = 2 * time.Minute
	siteCfgs := []core.Config{
		staticSite(t, "squeezenet", 30, 11, cluster.PaperCluster()),
		staticSite(t, "binaryalert", 80, 22, cluster.PaperCluster()),
	}
	fed, err := New(Config{Sites: siteCfgs, Policy: Never, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	fres, err := fed.Run(dur)
	if err != nil {
		t.Fatal(err)
	}
	for i, cfg := range siteCfgs {
		p, err := core.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		want, err := p.Run(dur)
		if err != nil {
			t.Fatal(err)
		}
		fn := cfg.Functions[0].Spec.Name
		got := fres.Sites[i].Core.Functions[fn]
		ref := want.Functions[fn]
		if got.Arrivals != ref.Arrivals {
			t.Errorf("site %d arrivals: federation %d standalone %d", i, got.Arrivals, ref.Arrivals)
		}
		if got.Completed != ref.Completed {
			t.Errorf("site %d completed: federation %d standalone %d", i, got.Completed, ref.Completed)
		}
		if got.Requeued != ref.Requeued {
			t.Errorf("site %d requeued: federation %d standalone %d", i, got.Requeued, ref.Requeued)
		}
		if g, w := got.Waits.Quantile(0.95), ref.Waits.Quantile(0.95); g != w {
			t.Errorf("site %d P95 wait: federation %v standalone %v", i, g, w)
		}
		if g, w := got.Responses.Quantile(0.99), ref.Responses.Quantile(0.99); g != w {
			t.Errorf("site %d P99 response: federation %v standalone %v", i, g, w)
		}
		if g, w := got.SLO.Violations(), ref.SLO.Violations(); g != w {
			t.Errorf("site %d SLO violations: federation %d standalone %d", i, g, w)
		}
		if fres.Sites[i].OffloadedPeer != 0 || fres.Sites[i].OffloadedCloud != 0 {
			t.Errorf("site %d offloaded under never policy: peer=%d cloud=%d",
				i, fres.Sites[i].OffloadedPeer, fres.Sites[i].OffloadedCloud)
		}
	}
	if fres.CloudServed != 0 {
		t.Errorf("cloud served %d requests under never policy", fres.CloudServed)
	}
}

// TestOverloadedShedsToCloud drives one undersized site far past capacity:
// cloud-only must shed, and its end-to-end SLO attainment must beat the
// never baseline.
func TestOverloadedShedsToCloud(t *testing.T) {
	const dur = 2 * time.Minute
	attainment := map[Policy]float64{}
	var cloudOnly *Result
	for _, pol := range []Policy{Never, CloudOnly} {
		fed, err := New(Config{
			Sites:  []core.Config{staticSite(t, "squeezenet", 60, 33, tinyCluster())},
			Policy: pol,
			Seed:   7,
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := fed.Run(dur)
		if err != nil {
			t.Fatal(err)
		}
		attainment[pol] = res.Sites[0].SLO.Attainment()
		if pol == CloudOnly {
			cloudOnly = res
		}
	}
	if cloudOnly.Sites[0].OffloadedCloud == 0 || cloudOnly.CloudServed == 0 {
		t.Fatalf("overloaded site shed nothing to cloud: %+v", cloudOnly.Sites[0])
	}
	if attainment[CloudOnly] <= attainment[Never] {
		t.Errorf("cloud-only attainment %.3f not better than never %.3f",
			attainment[CloudOnly], attainment[Never])
	}
	if attainment[Never] > 0.5 {
		t.Errorf("never policy attainment %.3f suspiciously high for a 6x-overloaded site", attainment[Never])
	}
}

// TestPeerOffloadRTTPenalty forces every served request at site 0 through
// a peer: site 0's cluster cannot fit a single container, so everything
// sheds to site 1, and every recorded response must include both network
// legs of the peer RTT.
func TestPeerOffloadRTTPenalty(t *testing.T) {
	const (
		dur     = time.Minute
		peerRTT = 20 * time.Millisecond
	)
	// Site 0 cannot host squeezenet at all (100 mC < any deflation floor).
	noCap := staticSite(t, "squeezenet", 20, 44,
		cluster.Config{Nodes: 1, CPUPerNode: 100, MemPerNode: 64, Policy: cluster.WorstFit})
	noCap.Functions[0].Prewarm = 0
	helper := staticSite(t, "squeezenet", 5, 55, cluster.PaperCluster())
	helper.Controller.MinContainers = 2
	helper.Functions[0].Prewarm = 2

	fed, err := New(Config{
		Sites:   []core.Config{noCap, helper},
		Policy:  NearestPeer,
		PeerRTT: peerRTT,
		Seed:    7,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := fed.Run(dur)
	if err != nil {
		t.Fatal(err)
	}
	s0, s1 := res.Sites[0], res.Sites[1]
	if s0.OffloadedPeer == 0 {
		t.Fatalf("site 0 offloaded nothing to its peer: %+v", s0)
	}
	// The last offloads may still be in the network when the run ends, so
	// the peer serves at most — and nearly — everything the origin shed.
	if s1.PeerServed > s0.OffloadedPeer || s0.OffloadedPeer-s1.PeerServed > 2 {
		t.Errorf("peer served %d, origin offloaded %d", s1.PeerServed, s0.OffloadedPeer)
	}
	if s0.Responses.Count() == 0 {
		t.Fatal("no end-to-end responses recorded at site 0")
	}
	if minResp := s0.Responses.Min(); minResp < (2 * peerRTT).Seconds() {
		t.Errorf("offloaded response %.1fms below the 2×RTT floor %.1fms",
			minResp*1000, (2*peerRTT).Seconds()*1000)
	}
}

// TestModelDrivenBeatsNeverUnderOverload checks the queuing-model policy
// end to end on an asymmetric federation: one hot site, two cold peers.
func TestModelDrivenBeatsNeverUnderOverload(t *testing.T) {
	const dur = 2 * time.Minute
	build := func(pol Policy) *Result {
		sites := []core.Config{
			staticSite(t, "squeezenet", 60, 66, tinyCluster()),
			staticSite(t, "squeezenet", 5, 77, cluster.PaperCluster()),
			staticSite(t, "squeezenet", 5, 88, cluster.PaperCluster()),
		}
		fed, err := New(Config{Sites: sites, Policy: pol, Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		res, err := fed.Run(dur)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	never := build(Never)
	model := build(ModelDriven)
	if model.Sites[0].OffloadedPeer+model.Sites[0].OffloadedCloud == 0 {
		t.Fatalf("model-driven shed nothing from the hot site: %+v", model.Sites[0])
	}
	if g, w := model.Sites[0].SLO.Attainment(), never.Sites[0].SLO.Attainment(); g <= w {
		t.Errorf("model-driven attainment %.3f not better than never %.3f on the hot site", g, w)
	}
}

func TestParsePolicy(t *testing.T) {
	for _, p := range Policies() {
		got, err := ParsePolicy(p.String())
		if err != nil || got != p {
			t.Errorf("ParsePolicy(%q) = %v, %v", p.String(), got, err)
		}
	}
	if _, err := ParsePolicy("bogus"); err == nil {
		t.Error("ParsePolicy accepted bogus policy")
	}
}

func TestNewRejectsEmpty(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("New accepted a federation with no sites")
	}
}
