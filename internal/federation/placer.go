package federation

//go:generate go run ./gen

import (
	"fmt"
	"math"
	"strings"
	"sync"
	"time"

	"lass/internal/dispatch"
	"lass/internal/functions"
)

// Placer is the pluggable per-request placement policy: at every site's
// ingress the federation builds a PlacementContext for the arriving request
// and asks the configured Placer where to serve it. Implementations must be
// deterministic functions of the context (any randomness should come from
// context accessors such as SelectPeer, which draw on the federation's
// seeded streams), so federated runs stay exactly reproducible.
//
// The four historical enum policies (Never, CloudOnly, NearestPeer,
// ModelDriven) are themselves Placers registered under their names; custom
// policies register with RegisterPlacer and are selected by name through
// Config.Placer, ParsePlacer, or the lass-sim -policy flag — no federation
// code needs to change to add one.
type Placer interface {
	// Name is the registry key ("never", "model-driven", ...): lower-case,
	// no whitespace.
	Name() string
	// Place decides where the request described by ctx is served. The
	// federation sanitizes the decision (an out-of-range or non-serving
	// peer target falls back to local service) and enforces §3.4 admission
	// on sheddable requests: a sheddable request is never queued at its
	// overloaded origin (ServeLocal becomes RejectRequest) and a cloud
	// landing is gated by CloudAdmits. ctx is only valid for the duration
	// of the call — the federation reuses one context value across
	// decisions, so implementations must not retain it.
	Place(ctx *PlacementContext) Decision
}

// DecisionKind enumerates the placement outcomes.
type DecisionKind int

const (
	// ServeLocal queues the request at its ingress site.
	ServeLocal DecisionKind = iota
	// OffloadSite ships the request to the peer edge site Decision.Site.
	OffloadSite
	// OffloadCloud serves the request on the cloud backend.
	OffloadCloud
	// RejectRequest drops the request (§3.4 admission control); it remains
	// an SLO violation at its origin.
	RejectRequest
)

// Decision is a Placer's verdict for one request.
type Decision struct {
	Kind DecisionKind
	// Site is the target site index; meaningful only for OffloadSite.
	Site int
}

// Local places the request at its ingress site.
func Local() Decision { return Decision{Kind: ServeLocal} }

// ToSite offloads the request to the peer edge site with the given index.
func ToSite(site int) Decision { return Decision{Kind: OffloadSite, Site: site} }

// ToCloud offloads the request to the cloud backend.
func ToCloud() Decision { return Decision{Kind: OffloadCloud} }

// Reject drops the request at admission (§3.4).
func Reject() Decision { return Decision{Kind: RejectRequest} }

// String names the decision for logs and errors.
func (d Decision) String() string {
	switch d.Kind {
	case ServeLocal:
		return "local"
	case OffloadSite:
		return fmt.Sprintf("site(%d)", d.Site)
	case OffloadCloud:
		return "cloud"
	case RejectRequest:
		return "reject"
	}
	return fmt.Sprintf("decision(%d)", int(d.Kind))
}

// PlacementContext exposes, per candidate location, everything the
// federation computes about one arriving request: the request's function
// and end-to-end SLO, predicted responses (§3.1's queueing model extended
// with the network legs), one-way RTTs from the topology, controller
// headroom and backlog, the global fair-share allocator's grants
// (including granted-but-cold pre-provisioned pools), and the cloud's
// predicted response, admission headroom, and per-request cost. Site
// arguments are federation site indices (Origin, 0..NumSites-1); accessors
// return +Inf / zero values for out-of-range sites, so placers need no
// bounds checks.
type PlacementContext struct {
	f         *Federation
	origin    *Site
	q         *dispatch.Queue
	sheddable bool
}

// Function returns the request's function name.
func (ctx *PlacementContext) Function() string { return ctx.q.Spec().Name }

// Spec returns the request's function spec (container size, service-time
// model, cold start — Table 1).
func (ctx *PlacementContext) Spec() functions.Spec { return ctx.q.Spec() }

// Origin returns the ingress site's index.
func (ctx *PlacementContext) Origin() int { return ctx.origin.Index }

// NumSites returns the number of edge sites in the federation.
func (ctx *PlacementContext) NumSites() int { return len(ctx.f.Sites) }

// ResponseSLO returns the end-to-end response deadline the federation
// accounts violations against (network RTT included).
func (ctx *PlacementContext) ResponseSLO() time.Duration { return ctx.f.cfg.ResponseSLO }

// Sheddable reports whether §3.4 offload-aware admission applies to this
// request: admission control is enabled and the origin is overloaded. The
// federation will not queue a sheddable request locally — a ServeLocal
// decision becomes RejectRequest — so placers that want the legacy
// admission behaviour should offer the request along their placement
// preferences and Reject only when nothing admissible remains.
func (ctx *PlacementContext) Sheddable() bool { return ctx.sheddable }

// Serves reports whether the site runs this request's function at all.
func (ctx *PlacementContext) Serves(site int) bool {
	if site < 0 || site >= len(ctx.f.Sites) {
		return false
	}
	_, ok := ctx.f.Sites[site].Platform.Queues[ctx.Function()]
	return ok
}

// Overloaded reports the federation's epoch-level overload signal for the
// site: no servable capacity, or controller headroom exhausted with the
// backlog beyond the shed depth (Config.OverloadQueueDepth).
func (ctx *PlacementContext) Overloaded(site int) bool {
	if site < 0 || site >= len(ctx.f.Sites) {
		return true
	}
	return ctx.f.overloaded(ctx.f.Sites[site], ctx.Function())
}

// Accepts reports whether the site would absorb offloaded work for this
// function right now: it is reachable from the origin (no chaos fault
// darkens the link or either endpoint), serves the function, is not
// overloaded, and either its controller reports spare capacity or —
// under the global allocator — it holds pre-provisioned (spread-granted)
// idle containers.
func (ctx *PlacementContext) Accepts(site int) bool {
	if site < 0 || site >= len(ctx.f.Sites) {
		return false
	}
	return ctx.f.acceptsFrom(ctx.origin, ctx.f.Sites[site], ctx.Function())
}

// Reachable reports whether the origin can currently reach the site: no
// chaos fault darkens the directed origin→site link or either endpoint's
// network. Always true for the origin itself, and in fault-free runs.
// Unreachability is binary — placement must exclude the peer, not price
// it in as extra RTT.
func (ctx *PlacementContext) Reachable(site int) bool {
	if site < 0 || site >= len(ctx.f.Sites) {
		return false
	}
	return ctx.f.linkUp(ctx.origin.Index, site, ctx.f.Engine.Now())
}

// SelectPeer runs the configured peer-selection strategy
// (Config.PeerSelection: nearest-first scan or power-of-two-choices) over
// the origin's peers and returns the chosen site index, or -1 when no peer
// accepts. Power-of-two-choices draws from the federation's seeded peer
// stream, so calls advance that stream exactly as the historical policies
// did.
func (ctx *PlacementContext) SelectPeer() int {
	if p := ctx.f.selectPeer(ctx.origin, ctx.Function()); p != nil {
		return p.Index
	}
	return -1
}

// PeersByRTT returns the other sites' indices in ascending-RTT order from
// the origin (ties broken by index) — the deterministic scan order the
// built-in policies iterate candidates in.
func (ctx *PlacementContext) PeersByRTT() []int {
	out := make([]int, len(ctx.origin.peers))
	for i, p := range ctx.origin.peers {
		out[i] = p.Index
	}
	return out
}

// RTT returns the one-way network latency from site i to site j, read from
// the topology matrix.
func (ctx *PlacementContext) RTT(i, j int) time.Duration {
	n := len(ctx.f.Sites)
	if i < 0 || i >= n || j < 0 || j >= n {
		return 0
	}
	return ctx.f.rtt(i, j)
}

// PredictResponse estimates the end-to-end response time (seconds) of
// serving this request at the given site: current backlog drained at the
// pool's aggregate service rate, plus one mean service time, plus — for a
// peer — both network legs from the origin. +Inf when the site cannot
// serve the function or is unreachable behind a dark link (an
// unreachable peer has no finite response time, however idle it is).
func (ctx *PlacementContext) PredictResponse(site int) float64 {
	if site < 0 || site >= len(ctx.f.Sites) {
		return math.Inf(1)
	}
	var extra time.Duration
	if site != ctx.origin.Index {
		if !ctx.Reachable(site) {
			return math.Inf(1)
		}
		extra = ctx.f.rtt(ctx.origin.Index, site) + ctx.f.rtt(site, ctx.origin.Index)
	}
	return ctx.f.predictResponse(ctx.f.Sites[site], ctx.Function(), extra)
}

// PredictCloud estimates the end-to-end response time (seconds) of serving
// this request in the cloud right now: both network legs, the mean
// standard service time, the queueing delay a capped pool would impose,
// and the cold start the request would pay if no warm instance will greet
// it.
func (ctx *PlacementContext) PredictCloud() float64 { return ctx.f.predictCloud(ctx.q) }

// CloudAdmits reports whether a cloud landing for one more request of
// this function can still meet the response SLO: the full PredictCloud
// floor — both network legs, the mean service time, and either the
// projected queueing delay at the concurrency cap or the cold start a
// pool with no idle warm instance would pay — must fit the deadline.
// This is the gate §3.4 admission applies to sheddable cloud decisions.
func (ctx *PlacementContext) CloudAdmits() bool { return ctx.f.cloudAdmits(ctx.q) }

// CloudCostPerRequest returns the expected bill ($) for serving one
// request of this function in the cloud: the per-invocation price plus the
// mean standard service time at the GB-second price (the cost axis the
// sweep tables report).
func (ctx *PlacementContext) CloudCostPerRequest() float64 {
	spec := ctx.q.Spec()
	return ctx.f.cfg.CloudPricePerInvocation +
		spec.MeanServiceTimeAt(1.0).Seconds()*ctx.f.cfg.CloudPricePerGBSecond*float64(spec.MemoryMiB)/1024
}

// Headroom returns the site controller's capacity-headroom signal
// (millicores left after the queueing model's desires; negative while
// overloaded).
func (ctx *PlacementContext) Headroom(site int) int64 {
	if site < 0 || site >= len(ctx.f.Sites) {
		return 0
	}
	return ctx.f.Sites[site].Platform.Controller.Headroom()
}

// Metro returns the site's metro index under the federation's hierarchy
// (Config.Hierarchy: leaf groups in depth-first order), or -1 when the
// federation is flat or the site is out of range.
func (ctx *PlacementContext) Metro(site int) int {
	if ctx.f.metroOf == nil || site < 0 || site >= len(ctx.f.metroOf) {
		return -1
	}
	return ctx.f.metroOf[site]
}

// Region returns the site's region index under the federation's hierarchy
// (the root's immediate branches), or -1 when the federation is flat or
// the site is out of range.
func (ctx *PlacementContext) Region(site int) int {
	if ctx.f.regionOf == nil || site < 0 || site >= len(ctx.f.regionOf) {
		return -1
	}
	return ctx.f.regionOf[site]
}

// SameMetro reports whether two sites share a metro under the
// federation's hierarchy — the scope within which over-quota borrowing is
// water-filled first and cross-site reclaim operates. Always false for
// flat federations.
func (ctx *PlacementContext) SameMetro(i, j int) bool {
	return ctx.Metro(i) >= 0 && ctx.Metro(i) == ctx.Metro(j)
}

// BorrowedCPU returns the site's over-quota millicores in its last landed
// grant set — capacity granted above the hierarchy's deserved quota,
// revocable by cross-site reclaim. A peer holding borrowed capacity is a
// softer offload target than one inside its quota: its headroom can be
// clawed back next epoch. Zero for flat federations and before the first
// grant delivery.
func (ctx *PlacementContext) BorrowedCPU(site int) int64 {
	if site < 0 || site >= len(ctx.f.Sites) {
		return 0
	}
	return ctx.f.Sites[site].borrowed
}

// QueueLength returns the site's waiting (not in service) request count
// for this function.
func (ctx *PlacementContext) QueueLength(site int) int {
	if q := ctx.siteQueue(site); q != nil {
		return q.QueueLength()
	}
	return 0
}

// Backlog returns the site's queued plus in-service request count for this
// function — the numerator of the drain-time prediction.
func (ctx *PlacementContext) Backlog(site int) int {
	if q := ctx.siteQueue(site); q != nil {
		return q.QueueLength() + q.InFlight()
	}
	return 0
}

// Containers returns the site's attached container count for this
// function.
func (ctx *PlacementContext) Containers(site int) int {
	if q := ctx.siteQueue(site); q != nil {
		return q.Containers()
	}
	return 0
}

// IdleContainers returns the site's attached, currently idle container
// count for this function — under the global allocator, warm
// pre-provisioned capacity waiting for offloads.
func (ctx *PlacementContext) IdleContainers(site int) int {
	if q := ctx.siteQueue(site); q != nil {
		return q.IdleContainers()
	}
	return 0
}

// ServiceCapacity returns the site's aggregate service rate (req/s) for
// this function at the pool's current (possibly deflated) CPU allocations.
func (ctx *PlacementContext) ServiceCapacity(site int) float64 {
	if q := ctx.siteQueue(site); q != nil {
		return q.ServiceCapacity()
	}
	return 0
}

// GloballyAllocated reports whether the run uses the federation-wide §4.1
// fair-share allocator (Config.GlobalFairShare).
func (ctx *PlacementContext) GloballyAllocated() bool { return ctx.f.cfg.GlobalFairShare }

// GrantedCPU returns the global allocator's current CPU grant (millicores)
// for this function at the site, and whether such a grant exists. Grants
// lag pool reconciliation by up to a controller epoch plus the cold-start
// delay, so a grant can exceed the live ServiceCapacity — that gap is the
// granted-but-cold pre-provisioned capacity the grant-aware policy folds
// into its predictions.
func (ctx *PlacementContext) GrantedCPU(site int) (int64, bool) {
	if site < 0 || site >= len(ctx.f.Sites) {
		return 0, false
	}
	return ctx.f.Sites[site].Platform.Controller.Granted(ctx.Function())
}

// DesiredCPU returns the site controller's model-computed CPU desire
// (millicores) for this function as of its most recent epoch — the §3.1
// queueing model's answer to the estimated arrival rate, before any
// fair-share clamp. A site whose desire exceeds its grant is grant-bound:
// its arrivals outpace the capacity it will be allowed to keep.
func (ctx *PlacementContext) DesiredCPU(site int) int64 {
	if site < 0 || site >= len(ctx.f.Sites) {
		return 0
	}
	f, ok := ctx.f.Sites[site].Platform.Controller.Function(ctx.Function())
	if !ok {
		return 0
	}
	return int64(f.Desired) * f.Spec.CPUMillis
}

func (ctx *PlacementContext) siteQueue(site int) *dispatch.Queue {
	if site < 0 || site >= len(ctx.f.Sites) {
		return nil
	}
	return ctx.f.Sites[site].Platform.Queues[ctx.Function()]
}

// --- registry ---

var placerMu sync.Mutex
var placerByName = make(map[string]Placer)
var placerOrder []string

// RegisterPlacer adds a placement policy to the name-keyed registry, making
// it selectable via Config.Placer resolution, ParsePlacer, the experiment
// sweeps, and the lass-sim -policy flag. Names are case-insensitive and
// must be non-empty without whitespace; registering a duplicate name is an
// error. The built-in policies are pre-registered.
func RegisterPlacer(p Placer) error {
	if p == nil {
		return fmt.Errorf("federation: nil placer")
	}
	name := canonicalPlacerName(p.Name())
	if name == "" || strings.ContainsAny(name, " \t\n|,") {
		return fmt.Errorf("federation: invalid placer name %q", p.Name())
	}
	placerMu.Lock()
	defer placerMu.Unlock()
	if _, dup := placerByName[name]; dup {
		return fmt.Errorf("federation: placer %q already registered", name)
	}
	placerByName[name] = p
	placerOrder = append(placerOrder, name)
	return nil
}

// PlacerByName returns the registered placement policy with the given
// (case-insensitive) name.
func PlacerByName(name string) (Placer, error) {
	placerMu.Lock()
	defer placerMu.Unlock()
	if p, ok := placerByName[canonicalPlacerName(name)]; ok {
		return p, nil
	}
	return nil, fmt.Errorf("federation: unknown placement policy %q (registered: %s)",
		name, strings.Join(placerOrder, ", "))
}

// ParsePlacer is PlacerByName under the name the command-line surface uses.
func ParsePlacer(name string) (Placer, error) { return PlacerByName(name) }

// PlacerNames returns every registered policy name in registration order
// (built-ins first, in sweep order); the federation sweeps run one row per
// entry.
func PlacerNames() []string {
	placerMu.Lock()
	defer placerMu.Unlock()
	return append([]string(nil), placerOrder...)
}

func canonicalPlacerName(name string) string {
	return strings.ToLower(strings.TrimSpace(name))
}

func mustRegister(p Placer) {
	if err := RegisterPlacer(p); err != nil {
		panic(err)
	}
}

func init() {
	// Sweep order: the four legacy enum policies first (their enum values
	// index this order), then the policies the Placer API made possible.
	mustRegister(neverPlacer{})
	mustRegister(cloudOnlyPlacer{})
	mustRegister(nearestPeerPlacer{})
	mustRegister(modelDrivenPlacer{})
	mustRegister(grantAwarePlacer{})
	mustRegister(costBoundedPlacer{})
	mustRegister(metroAffinePlacer{})
}

// --- built-in placers ---

// neverPlacer serves every request at its ingress site. Under §3.4
// admission a sheddable request is rejected at the origin (the paper's
// single-cluster admission control verbatim) — the federation's admission
// guard converts the ServeLocal decision.
type neverPlacer struct{}

func (neverPlacer) Name() string { return "never" }

func (neverPlacer) Place(ctx *PlacementContext) Decision { return Local() }

// cloudOnlyPlacer sheds to the cloud when the ingress site is overloaded.
type cloudOnlyPlacer struct{}

func (cloudOnlyPlacer) Name() string { return "cloud-only" }

func (cloudOnlyPlacer) Place(ctx *PlacementContext) Decision {
	if ctx.Overloaded(ctx.Origin()) {
		return ToCloud()
	}
	return Local()
}

// nearestPeerPlacer sheds to the closest accepting peer (via the
// configured peer selection), falling back to the cloud when no peer can
// absorb the work.
type nearestPeerPlacer struct{}

func (nearestPeerPlacer) Name() string { return "nearest-peer" }

func (nearestPeerPlacer) Place(ctx *PlacementContext) Decision {
	if !ctx.Overloaded(ctx.Origin()) {
		return Local()
	}
	if p := ctx.SelectPeer(); p >= 0 {
		return ToSite(p)
	}
	return ToCloud()
}

// modelDrivenPlacer predicts the response time at every candidate location
// (backlog drain time plus RTT) and offloads to the best one whenever the
// local prediction misses the response SLO. For a sheddable request (§3.4)
// it skips the local candidate and rejects when even the best prediction
// misses the SLO.
type modelDrivenPlacer struct{}

func (modelDrivenPlacer) Name() string { return "model-driven" }

func (modelDrivenPlacer) Place(ctx *PlacementContext) Decision {
	return placePredictive(ctx, ctx.PredictResponse)
}

// placePredictive is the shared decision logic of the model-driven family:
// predict every candidate with the given estimator, serve locally while
// the local prediction meets the deadline, otherwise offload to the
// fastest alternative (cloud included), rejecting sheddable requests when
// nothing admissible meets the deadline.
func placePredictive(ctx *PlacementContext, predict func(site int) float64) Decision {
	deadline := ctx.ResponseSLO().Seconds()
	if ctx.Sheddable() {
		// §3.4 coupled to placement: best predicted alternative (peers by
		// backlog+RTT, cloud); reject when even the best prediction misses
		// the SLO.
		best, bestResp := -1, math.Inf(1)
		for _, p := range ctx.PeersByRTT() {
			if resp := predict(p); resp < bestResp {
				best, bestResp = p, resp
			}
		}
		if cloud := ctx.PredictCloud(); cloud < bestResp {
			if cloud <= deadline && ctx.CloudAdmits() {
				return ToCloud()
			}
			return Reject()
		}
		if bestResp <= deadline {
			return ToSite(best)
		}
		return Reject()
	}
	local := predict(ctx.Origin())
	if local <= deadline {
		return Local()
	}
	// Predicted SLO miss: pick the fastest alternative, local included —
	// offloading must actually help. Peer predictions pay both network
	// legs, which may differ under an asymmetric topology.
	best, bestResp := -1, local
	for _, p := range ctx.PeersByRTT() {
		if resp := predict(p); resp < bestResp {
			best, bestResp = p, resp
		}
	}
	if ctx.PredictCloud() < bestResp {
		return ToCloud()
	}
	if best >= 0 {
		return ToSite(best)
	}
	return Local()
}

// grantAwarePlacer is the allocator-aware refinement of model-driven
// placement (the ROADMAP item): its per-candidate prediction folds the
// federation-wide fair-share allocator's grants into the estimate in both
// directions. A peer whose grant pre-provisions capacity that has not
// finished cold-starting is credited with the granted pool rather than the
// (smaller) live one, and a grant-bound site — model-computed desire above
// its grant, so arrivals outpace the capacity it is allowed to keep — has
// its drain-time term inflated by the demand-to-grant load factor, because
// its backlog refills as fast as it drains (plain model-driven prices the
// backlog as if arrivals stopped, which is exactly why it trails on skewed
// traces). Without global grants it degrades to exactly the model-driven
// prediction.
type grantAwarePlacer struct{}

func (grantAwarePlacer) Name() string { return "grant-aware" }

func (grantAwarePlacer) Place(ctx *PlacementContext) Decision {
	return placePredictive(ctx, func(site int) float64 { return predictGrantAware(ctx, site) })
}

// predictGrantAware estimates the end-to-end response time (seconds) at a
// site crediting the global allocator's view: the granted pool when it
// exceeds the live one (pre-provisioned capacity still cold-starting), and
// the desire/grant load factor on the drain term when the grant binds.
func predictGrantAware(ctx *PlacementContext, site int) float64 {
	if !ctx.Serves(site) {
		return math.Inf(1)
	}
	n := float64(ctx.Containers(site))
	capacity := ctx.ServiceCapacity(site)
	load := 1.0
	if g, ok := ctx.GrantedCPU(site); ok && g > 0 {
		spec := ctx.Spec()
		granted := float64(g) / float64(spec.CPUMillis)
		if grantedCap := granted * spec.ServiceRate(); grantedCap > capacity {
			n, capacity = granted, grantedCap
		}
		if desired := ctx.DesiredCPU(site); desired > g {
			load = float64(desired) / float64(g)
		}
	}
	if capacity <= 0 {
		return math.Inf(1)
	}
	var extra float64
	if site != ctx.Origin() {
		extra = (ctx.RTT(ctx.Origin(), site) + ctx.RTT(site, ctx.Origin())).Seconds()
	}
	// The load factor inflates only the backlog-drain term — the backlog
	// is what keeps refilling at a grant-bound site — never the request's
	// own service time.
	return extra + (load*float64(ctx.Backlog(site))+n)/capacity
}

// costBoundedPlacer prefers the cheapest candidate whose predicted
// response still meets the SLO: edge capacity is sunk cost (free), while
// every cloud invocation bills at the configured FaaS price points
// (CloudCostPerRequest), so the cloud is used only when no edge candidate
// — origin included — is predicted to make the deadline. When nothing
// meets the deadline the SLO bound is lost either way: a sheddable
// request is rejected (§3.4), and a normal one takes the fastest
// candidate regardless of price, ties to the cheaper.
type costBoundedPlacer struct{}

func (costBoundedPlacer) Name() string { return "cost-bounded" }

func (costBoundedPlacer) Place(ctx *PlacementContext) Decision {
	type candidate struct {
		d    Decision
		cost float64
		resp float64
	}
	var cands []candidate
	if !ctx.Sheddable() {
		cands = append(cands, candidate{Local(), 0, ctx.PredictResponse(ctx.Origin())})
	}
	for _, p := range ctx.PeersByRTT() {
		cands = append(cands, candidate{ToSite(p), 0, ctx.PredictResponse(p)})
	}
	// The cloud is always a candidate: the selection loop below filters by
	// the same PredictCloud-vs-deadline floor CloudAdmits applies, and the
	// no-candidate-meets-SLO fallback must still be able to pick the cloud
	// when it is the fastest miss (e.g. a 600ms cold cloud beats a
	// hopelessly backlogged local queue).
	cands = append(cands, candidate{ToCloud(), ctx.CloudCostPerRequest(), ctx.PredictCloud()})
	deadline := ctx.ResponseSLO().Seconds()
	// Cheapest candidate meeting the SLO, ties to the faster prediction;
	// PeersByRTT order breaks exact ties deterministically.
	best := -1
	for i, c := range cands {
		if c.resp > deadline {
			continue
		}
		if best < 0 || c.cost < cands[best].cost ||
			(c.cost == cands[best].cost && c.resp < cands[best].resp) {
			best = i
		}
	}
	if best >= 0 {
		return cands[best].d
	}
	if ctx.Sheddable() {
		return Reject()
	}
	// Nothing makes the deadline: fastest candidate, ties to the cheaper.
	pick, bestResp, bestCost := Local(), math.Inf(1), 0.0
	for _, c := range cands {
		if c.resp < bestResp || (c.resp == bestResp && c.cost < bestCost) {
			pick, bestResp, bestCost = c.d, c.resp, c.cost
		}
	}
	return pick
}

// metroAffinePlacer is the hierarchy-aware refinement of model-driven:
// offloads prefer same-metro peers with positive capacity headroom
// whenever one is predicted to meet the SLO, even when a farther peer
// predicts marginally faster. Intra-metro RTTs are the cheapest in a
// hierarchical topology, and keeping displaced work inside the metro
// keeps it inside the scope where the allocator water-fills borrowing
// first and reclaim can repatriate capacity. Under a flat federation (no
// Config.Hierarchy) every Metro() is -1 and the policy degrades to
// exactly model-driven.
type metroAffinePlacer struct{}

func (metroAffinePlacer) Name() string { return "metro-affine" }

func (metroAffinePlacer) Place(ctx *PlacementContext) Decision {
	origin := ctx.Origin()
	if ctx.Metro(origin) < 0 {
		return placePredictive(ctx, ctx.PredictResponse)
	}
	deadline := ctx.ResponseSLO().Seconds()
	local := math.Inf(1)
	if !ctx.Sheddable() {
		if local = ctx.PredictResponse(origin); local <= deadline {
			return Local()
		}
	}
	// One scan over the deterministic candidate order tracks both the
	// globally best prediction and the best same-metro peer that has
	// borrowable headroom.
	best, bestResp := -1, math.Inf(1)
	metro, metroResp := -1, math.Inf(1)
	for _, p := range ctx.PeersByRTT() {
		resp := ctx.PredictResponse(p)
		if resp < bestResp {
			best, bestResp = p, resp
		}
		if ctx.SameMetro(origin, p) && ctx.Headroom(p) > 0 && resp < metroResp {
			metro, metroResp = p, resp
		}
	}
	if metro >= 0 && metroResp <= deadline && metroResp < local {
		return ToSite(metro)
	}
	// No qualifying metro peer: fall through to the model-driven endgame.
	if cloud := ctx.PredictCloud(); cloud < bestResp && cloud < local {
		if !ctx.Sheddable() {
			return ToCloud()
		}
		if cloud <= deadline && ctx.CloudAdmits() {
			return ToCloud()
		}
		return Reject()
	}
	if bestResp <= deadline || (!ctx.Sheddable() && bestResp < local) {
		return ToSite(best)
	}
	if ctx.Sheddable() {
		return Reject()
	}
	return Local()
}
