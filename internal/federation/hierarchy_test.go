package federation

import (
	"testing"
	"time"

	"lass/internal/allocation"
	"lass/internal/cluster"
	"lass/internal/controller"
	"lass/internal/core"
	"lass/internal/functions"
	"lass/internal/workload"
)

// twoFnSite builds a site serving both squeezenet and binaryalert at the
// given static rates — the borrow-saturated peer shape the reclaim tests
// need (one function idle, the other eating the whole site).
func twoFnSite(t *testing.T, sqRate, baRate float64, seed uint64, cl cluster.Config) core.Config {
	t.Helper()
	sq, err := functions.ByName("squeezenet")
	if err != nil {
		t.Fatal(err)
	}
	ba, err := functions.ByName("binaryalert")
	if err != nil {
		t.Fatal(err)
	}
	sqWl, err := workload.NewStatic(sqRate)
	if err != nil {
		t.Fatal(err)
	}
	baWl, err := workload.NewStatic(baRate)
	if err != nil {
		t.Fatal(err)
	}
	return core.Config{
		Cluster:    cl,
		Controller: controller.Config{MinContainers: 1},
		Seed:       seed,
		Functions: []core.FunctionConfig{
			{Spec: sq, Workload: sqWl, Prewarm: 1},
			{Spec: ba, Workload: baWl, Prewarm: 1},
		},
	}
}

// oneMetro puts every default-named site into a single leaf metro group.
func oneMetro(n int) *allocation.Hierarchy {
	g := &allocation.Group{ID: "m0"}
	for i := 0; i < n; i++ {
		g.Sites = append(g.Sites, siteName(i))
	}
	return &allocation.Hierarchy{Root: g}
}

func siteName(i int) string { return "edge-" + string(rune('0'+i)) }

// reclaimConfig is the federation form of the allocator's canonical
// reclaim scenario, one metro of three sites. The tiny site's squeezenet
// desire dwarfs its one-container cluster while its deserved share (a
// third of the metro) also exceeds that capacity, so the function is
// deserved-starved every epoch. The near-idle geofence site desires
// almost nothing, so the entitlement water-fill donates its unclaimed
// deserved share to the big peer — whose capacity binaryalert then
// saturates far above its own deserved quota (borrowed, revocable), and
// whose lack of spare leaves the spread pass nothing to compensate the
// starved function with (the geofence site does not serve squeezenet).
// Only reclaim can recover capacity, by preempting the big peer's
// borrowed binaryalert grant in favour of squeezenet there.
func reclaimConfig(t *testing.T, reclaim bool) Config {
	t.Helper()
	return Config{
		Sites: []core.Config{
			staticSite(t, "squeezenet", 120, 11, tinyCluster()),
			twoFnSite(t, 0.2, 500, 22, cluster.PaperCluster()),
			staticSite(t, "geofence", 1, 33, cluster.PaperCluster()),
		},
		Policy:          NearestPeer,
		GlobalFairShare: true,
		Hierarchy:       oneMetro(3),
		Reclaim:         reclaim,
		Seed:            9,
	}
}

// TestHierarchyConfigValidation: Reclaim without a Hierarchy and a
// Hierarchy missing a site are both assembly-time errors.
func TestHierarchyConfigValidation(t *testing.T) {
	cfg := reclaimConfig(t, true)
	cfg.Hierarchy = nil
	if _, err := New(cfg); err == nil {
		t.Error("Reclaim without Hierarchy accepted")
	}
	cfg = reclaimConfig(t, true)
	cfg.Hierarchy = &allocation.Hierarchy{Root: &allocation.Group{ID: "m0", Sites: []string{"edge-0"}}}
	if _, err := New(cfg); err == nil {
		t.Error("hierarchy missing a site accepted")
	}
	cfg = reclaimConfig(t, true)
	cfg.Hierarchy = &allocation.Hierarchy{Root: &allocation.Group{ID: "m0", Sites: []string{"edge-0", "edge-0"}}}
	if _, err := New(cfg); err == nil {
		t.Error("invalid hierarchy (duplicate site) accepted")
	}
}

// TestHierarchicalReclaimCounters: with reclaim on, commits land and book
// both sides — borrowed capacity preempted at the big peer, recovered for
// the starved tiny site — and with reclaim off neither counter moves.
func TestHierarchicalReclaimCounters(t *testing.T) {
	fed, err := New(reclaimConfig(t, true))
	if err != nil {
		t.Fatal(err)
	}
	res, err := fed.Run(time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Hierarchical {
		t.Error("result does not report the hierarchy")
	}
	if res.AllocEpochs == 0 {
		t.Fatal("no allocation epochs ran")
	}
	if res.Reclaimed == 0 || res.Preempted == 0 {
		t.Fatalf("reclaim never landed: Reclaimed=%d Preempted=%d", res.Reclaimed, res.Preempted)
	}
	if res.Reclaimed != res.Preempted {
		t.Errorf("landed commits book both sides: Reclaimed=%d != Preempted=%d", res.Reclaimed, res.Preempted)
	}
	if res.Sites[0].Reclaimed == 0 || res.Sites[0].Preempted != 0 {
		t.Errorf("starved home site: Reclaimed=%d Preempted=%d, want >0 and 0",
			res.Sites[0].Reclaimed, res.Sites[0].Preempted)
	}
	if res.Sites[1].Preempted == 0 || res.Sites[1].Reclaimed != 0 {
		t.Errorf("borrowing peer: Preempted=%d Reclaimed=%d, want >0 and 0",
			res.Sites[1].Preempted, res.Sites[1].Reclaimed)
	}

	off, err := New(reclaimConfig(t, false))
	if err != nil {
		t.Fatal(err)
	}
	resOff, err := off.Run(time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if resOff.Reclaimed != 0 || resOff.Preempted != 0 {
		t.Errorf("reclaim off still counted: Reclaimed=%d Preempted=%d", resOff.Reclaimed, resOff.Preempted)
	}
	if !resOff.Hierarchical {
		t.Error("borrow-only run does not report the hierarchy")
	}
}

// TestReclaimCommitLostToOutage is the lease+reclaim interaction contract:
// a reclaim commit scheduled before a coordinator outage but landing
// inside it is silently dropped — the pre-reclaim grants stand, the lease
// lapses into local enforcement (GrantLeaseExpirations), and GrantsLost
// never counts the epoch, whose base grant set did land. The link is
// checked once per site per epoch, so no grant set is ever double-counted
// as lost.
func TestReclaimCommitLostToOutage(t *testing.T) {
	build := func(outage bool) Config {
		cfg := reclaimConfig(t, true)
		// Push the commit well past the base delivery (~10ms after each
		// 5s epoch boundary) so an outage window can open between them.
		cfg.ReclaimLatency = 100 * time.Millisecond
		if outage {
			cfg.CoordinatorOutages = []Window{{Start: 10*time.Second + 20*time.Millisecond, End: time.Hour}}
		}
		return cfg
	}
	fed, err := New(build(false))
	if err != nil {
		t.Fatal(err)
	}
	clean, err := fed.Run(time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	fed, err = New(build(true))
	if err != nil {
		t.Fatal(err)
	}
	cut, err := fed.Run(time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if clean.Preempted == 0 {
		t.Fatal("outage-free run never reclaimed; the scenario no longer exercises the commit path")
	}
	// The t=10s epoch's base grants landed (~10.01s) before the window
	// opened at 10.02s, but its commit (~10.11s) fired inside it: the
	// outage run must have strictly fewer landed commits, not just fewer
	// epochs.
	if cut.Preempted >= clean.Preempted {
		t.Errorf("dropped commits still counted: Preempted=%d with outage, %d without", cut.Preempted, clean.Preempted)
	}
	if cut.Reclaimed != cut.Preempted {
		t.Errorf("landed commits book both sides: Reclaimed=%d != Preempted=%d", cut.Reclaimed, cut.Preempted)
	}
	if cut.GrantsLost != 0 {
		t.Errorf("GrantsLost=%d for epochs whose base delivery landed (double count)", cut.GrantsLost)
	}
	if cut.GrantLeaseExpirations == 0 {
		t.Error("no lease lapsed: sites never fell back to local enforcement under the outage")
	}
	if cut.MissedAllocEpochs == 0 {
		t.Error("epochs inside the outage window were not missed")
	}
}

// TestReclaimLatencyBeyondLeaseInert: a reclaim commit that cannot land
// before its lease expires is skipped outright — the counters stay zero
// while the hierarchy itself keeps governing.
func TestReclaimLatencyBeyondLeaseInert(t *testing.T) {
	cfg := reclaimConfig(t, true)
	cfg.GrantLease = 2 * time.Second
	cfg.ReclaimLatency = 2 * time.Second
	fed, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := fed.Run(time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if res.Reclaimed != 0 || res.Preempted != 0 {
		t.Errorf("commit at lease expiry still applied: Reclaimed=%d Preempted=%d", res.Reclaimed, res.Preempted)
	}
	if res.AllocEpochs == 0 {
		t.Error("no allocation epochs ran")
	}
}

// TestMetroAffineFlatDegradesToModelDriven: without a hierarchy every
// Metro() is -1, so metro-affine must reproduce model-driven decisions
// bit for bit.
func TestMetroAffineFlatDegradesToModelDriven(t *testing.T) {
	build := func(policy string) *Result {
		placer, err := PlacerByName(policy)
		if err != nil {
			t.Fatal(err)
		}
		fed, err := New(Config{
			Sites: []core.Config{
				staticSite(t, "squeezenet", 120, 3, tinyCluster()),
				staticSite(t, "squeezenet", 1, 4, cluster.PaperCluster()),
				staticSite(t, "squeezenet", 1, 5, cluster.PaperCluster()),
			},
			Placer:          placer,
			GlobalFairShare: true,
			Seed:            9,
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := fed.Run(time.Minute)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	md, ma := build("model-driven"), build("metro-affine")
	for i := range md.Sites {
		m, a := md.Sites[i], ma.Sites[i]
		if m.ServedLocal != a.ServedLocal || m.OffloadedPeer != a.OffloadedPeer ||
			m.OffloadedCloud != a.OffloadedCloud || m.PeerServed != a.PeerServed ||
			m.Rejected != a.Rejected {
			t.Errorf("site %d: flat metro-affine diverged from model-driven: %+v vs %+v", i,
				[5]uint64{m.ServedLocal, m.OffloadedPeer, m.OffloadedCloud, m.PeerServed, m.Rejected},
				[5]uint64{a.ServedLocal, a.OffloadedPeer, a.OffloadedCloud, a.PeerServed, a.Rejected})
		}
	}
}

// TestHierarchicalTopology: the RTT-class generator prices every ordered
// pair at the lowest shared tree level, symmetrically, and rejects sites
// the hierarchy does not place.
func TestHierarchicalTopology(t *testing.T) {
	h := &allocation.Hierarchy{Root: &allocation.Group{ID: "root", Children: []*allocation.Group{
		{ID: "r0", Children: []*allocation.Group{
			{ID: "m0", Sites: []string{"a", "b"}},
			{ID: "m1", Sites: []string{"c"}},
		}},
		{ID: "r1", Children: []*allocation.Group{
			{ID: "m2", Sites: []string{"d"}},
		}},
	}}}
	if err := h.Validate(); err != nil {
		t.Fatal(err)
	}
	sites := []string{"a", "b", "c", "d"}
	classes := RTTClasses{IntraMetro: 1 * time.Millisecond, IntraRegion: 7 * time.Millisecond, CrossRegion: 30 * time.Millisecond}
	topo, err := Hierarchical(sites, h.Levels(), classes)
	if err != nil {
		t.Fatal(err)
	}
	want := [][]time.Duration{
		{0, 1, 7, 30},
		{1, 0, 7, 30},
		{7, 7, 0, 30},
		{30, 30, 30, 0},
	}
	for i := range sites {
		for j := range sites {
			if got := topo.RTT(i, j); got != want[i][j]*time.Millisecond {
				t.Errorf("RTT(%s,%s) = %v, want %v", sites[i], sites[j], got, want[i][j]*time.Millisecond)
			}
		}
	}
	if _, err := Hierarchical([]string{"a", "zz"}, h.Levels(), classes); err == nil {
		t.Error("site missing from the hierarchy accepted")
	}
	if _, err := Hierarchical(nil, h.Levels(), classes); err == nil {
		t.Error("empty site list accepted")
	}
	// Zero classes select the documented defaults.
	topo, err = Hierarchical([]string{"a", "b"}, h.Levels(), RTTClasses{})
	if err != nil {
		t.Fatal(err)
	}
	if topo.RTT(0, 1) != 2*time.Millisecond {
		t.Errorf("default intra-metro RTT = %v, want 2ms", topo.RTT(0, 1))
	}
}
