package federation

import (
	"testing"
	"time"

	"lass/internal/cluster"
	"lass/internal/core"
)

func TestNewTopologyValidation(t *testing.T) {
	ms := time.Millisecond
	cases := []struct {
		name string
		rtt  [][]time.Duration
	}{
		{"empty", nil},
		{"non-square", [][]time.Duration{{0, ms}, {ms}}},
		{"negative entry", [][]time.Duration{{0, -ms}, {ms, 0}}},
		{"non-zero diagonal", [][]time.Duration{{ms, ms}, {ms, 0}}},
	}
	for _, tc := range cases {
		if _, err := NewTopology(tc.rtt); err == nil {
			t.Errorf("%s: NewTopology accepted invalid matrix %v", tc.name, tc.rtt)
		}
	}
	// Asymmetry is explicitly legal.
	topo, err := NewTopology([][]time.Duration{{0, 10 * ms}, {30 * ms, 0}})
	if err != nil {
		t.Fatalf("asymmetric matrix rejected: %v", err)
	}
	if topo.RTT(0, 1) != 10*ms || topo.RTT(1, 0) != 30*ms {
		t.Errorf("asymmetric entries not preserved: %v %v", topo.RTT(0, 1), topo.RTT(1, 0))
	}
}

// TestRTTCentroid covers the coordinator election primitive: the centroid
// minimizes the weighted round-trip sum with both directions of an
// asymmetric matrix counted, weights shift the election, and ties break
// to the lowest index.
func TestRTTCentroid(t *testing.T) {
	ms := time.Millisecond
	// Asymmetric star around site 1: site 0 hangs off a long spoke.
	star, err := NewTopology([][]time.Duration{
		{0, 25 * ms, 28 * ms, 30 * ms},
		{20 * ms, 0, 3 * ms, 5 * ms},
		{24 * ms, 4 * ms, 0, 9 * ms},
		{26 * ms, 6 * ms, 11 * ms, 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := star.RTTCentroid(nil); got != 1 {
		t.Errorf("unweighted centroid of the asymmetric star = %d, want hub 1", got)
	}
	// Weighting the far site heavily enough drags the centroid to it: the
	// coordinator should sit where the demand-weighted coordination
	// traffic is cheapest.
	if got := star.RTTCentroid([]float64{100, 1, 1, 1}); got != 0 {
		t.Errorf("centroid with site 0 weighted 100x = %d, want 0", got)
	}
	// Entries <= 0 and missing entries mean weight 1.
	if got := star.RTTCentroid([]float64{0, -3}); got != 1 {
		t.Errorf("centroid with degenerate weights = %d, want 1", got)
	}
	// A uniform matrix ties everywhere; election must be deterministic.
	ring, err := Ring(4, 5*ms)
	if err != nil {
		t.Fatal(err)
	}
	if got := ring.RTTCentroid(nil); got != 0 {
		t.Errorf("ring centroid = %d, want lowest tied index 0", got)
	}
}

func TestNewTopologyCopiesMatrix(t *testing.T) {
	ms := time.Millisecond
	rtt := [][]time.Duration{{0, ms}, {ms, 0}}
	topo, err := NewTopology(rtt)
	if err != nil {
		t.Fatal(err)
	}
	rtt[0][1] = 99 * ms
	if topo.RTT(0, 1) != ms {
		t.Error("NewTopology aliases the caller's matrix")
	}
}

// TestRingReproducesLegacyRTT pins the acceptance bar for the topology
// refactor: Ring(n, peerRTT) must compute exactly the ring-distance RTT
// formula the federation hard-coded before topologies existed.
func TestRingReproducesLegacyRTT(t *testing.T) {
	peer := 5 * time.Millisecond
	for n := 1; n <= 6; n++ {
		ring, err := Ring(n, peer)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				d := i - j
				if d < 0 {
					d = -d
				}
				if n-d < d {
					d = n - d
				}
				want := time.Duration(d) * peer
				if got := ring.RTT(i, j); got != want {
					t.Errorf("Ring(%d): RTT(%d,%d)=%v want %v", n, i, j, got, want)
				}
			}
		}
	}
}

func TestStarTopology(t *testing.T) {
	spoke := 3 * time.Millisecond
	star, err := Star(4, spoke)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			var want time.Duration
			switch {
			case i == j:
			case i == 0 || j == 0:
				want = spoke
			default:
				want = 2 * spoke
			}
			if got := star.RTT(i, j); got != want {
				t.Errorf("Star: RTT(%d,%d)=%v want %v", i, j, got, want)
			}
		}
	}
	if _, err := Star(0, spoke); err == nil {
		t.Error("Star accepted size 0")
	}
	if _, err := Ring(2, -time.Millisecond); err == nil {
		t.Error("Ring accepted negative RTT")
	}
}

// TestTopologySizeMismatchRejected covers the New-time validation: a
// topology must describe exactly the configured sites.
func TestTopologySizeMismatchRejected(t *testing.T) {
	topo, err := Ring(3, 5*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	sites := []core.Config{
		staticSite(t, "squeezenet", 10, 1, tinyCluster()),
		staticSite(t, "squeezenet", 10, 2, tinyCluster()),
	}
	if _, err := New(Config{Sites: sites, Topology: topo}); err == nil {
		t.Error("New accepted a 3-site topology for a 2-site federation")
	}
}

// TestAsymmetricTopologyChargesBothLegs forces every request at site 0
// through its peer and checks the recorded end-to-end responses include
// the outbound and the (different) return leg.
func TestAsymmetricTopologyChargesBothLegs(t *testing.T) {
	ms := time.Millisecond
	topo, err := NewTopology([][]time.Duration{{0, 10 * ms}, {30 * ms, 0}})
	if err != nil {
		t.Fatal(err)
	}
	// Site 0 cannot host a single container: everything sheds to the peer.
	noCap := staticSite(t, "squeezenet", 20, 44,
		cluster.Config{Nodes: 1, CPUPerNode: 100, MemPerNode: 64, Policy: cluster.WorstFit})
	noCap.Functions[0].Prewarm = 0
	helper := staticSite(t, "squeezenet", 5, 55, cluster.PaperCluster())
	helper.Controller.MinContainers = 2
	helper.Functions[0].Prewarm = 2

	fed, err := New(Config{
		Sites:    []core.Config{noCap, helper},
		Policy:   NearestPeer,
		Topology: topo,
		Seed:     7,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := fed.Run(time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	s0 := res.Sites[0]
	if s0.OffloadedPeer == 0 || s0.Responses.Count() == 0 {
		t.Fatalf("site 0 offloaded nothing to its peer: %+v", s0)
	}
	// Both legs: 10ms out + 30ms back = 40ms floor under every response.
	if minResp := s0.Responses.Min(); minResp < 0.040 {
		t.Errorf("offloaded response %.1fms below the 40ms two-leg floor", minResp*1000)
	}
}
