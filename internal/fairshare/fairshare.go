// Package fairshare implements LaSS's weighted fair-share allocation for
// overloaded edge clusters (paper §4.1) and the hierarchical scheduling
// tree the prototype adds for user/function weights (§5).
//
// Capacity is expressed in abstract integer units. The controller uses CPU
// millicores (1000 = 1 vCPU), because the paper's fair shares are CPU
// fractions of the cluster: a function's demand is its model-computed
// container count times its per-container CPU size, and its guaranteed
// share is ω_i/Σω_j of the cluster's total CPU (Eq 7). Working in integer
// units keeps the floor operations of Eqs 7-8 exact.
package fairshare

import (
	"fmt"
	"math"
	"sort"
)

// Demand is one function's (or one subtree's) desired capacity for the next
// epoch together with its fair-share weight.
type Demand struct {
	ID      string
	Weight  float64
	Desired int64 // capacity units wanted (c_new_i × container size)
}

// Allocation is the outcome of the fair-share adjustment for one demand.
type Allocation struct {
	ID         string
	Weight     float64
	Desired    int64
	Guaranteed int64 // c_guar: ⌊ω_i/Σω · C⌋ (Eq 7)
	Adjusted   int64 // c_adj: what the function actually receives
	Overloaded bool  // desired exceeded the guaranteed share during overload
}

// validate checks demands for structural errors.
func validate(demands []Demand, capacity int64) error {
	if capacity < 0 {
		return fmt.Errorf("fairshare: negative capacity %d", capacity)
	}
	seen := make(map[string]bool, len(demands))
	for _, d := range demands {
		if d.Weight <= 0 {
			return fmt.Errorf("fairshare: demand %q has non-positive weight %v", d.ID, d.Weight)
		}
		if d.Desired < 0 {
			return fmt.Errorf("fairshare: demand %q has negative desired capacity %d", d.ID, d.Desired)
		}
		if seen[d.ID] {
			return fmt.Errorf("fairshare: duplicate demand id %q", d.ID)
		}
		seen[d.ID] = true
	}
	return nil
}

func totalWeight(demands []Demand) float64 {
	var w float64
	for _, d := range demands {
		w += d.Weight
	}
	return w
}

// GuaranteedShares returns each demand's guaranteed minimum share
// c_guar_i = ⌊ω_i / Σ_j ω_j · C⌋ (Eq 7), keyed by demand ID.
func GuaranteedShares(demands []Demand, capacity int64) (map[string]int64, error) {
	if err := validate(demands, capacity); err != nil {
		return nil, err
	}
	w := totalWeight(demands)
	out := make(map[string]int64, len(demands))
	for _, d := range demands {
		out[d.ID] = int64(math.Floor(d.Weight / w * float64(capacity)))
	}
	return out, nil
}

// Adjust implements the paper's fair-share adjustment algorithm (§4.1)
// verbatim:
//
//   - If Σ desired ≤ C there is no overload: every function receives its
//     model-computed desire.
//   - Otherwise, "well behaved" functions (desired ≤ guaranteed) receive
//     their desire, and the remaining capacity Ĉ = C − Σ_wellbehaved desired
//     is divided among the overloaded functions in proportion to weight
//     (Eq 8: c_adj_i = ⌊ω_i/Σ_m ω_m · Ĉ⌋).
//
// The guarantees proved in the paper's Lemmas hold: when all functions are
// overloaded each receives exactly its guaranteed share (Lemma 1), and an
// overloaded function never receives less than its guaranteed share
// (Lemma 2). Results are returned in the input order.
func Adjust(demands []Demand, capacity int64) ([]Allocation, error) {
	if err := validate(demands, capacity); err != nil {
		return nil, err
	}
	w := totalWeight(demands)
	out := make([]Allocation, len(demands))
	var sumDesired int64
	for i, d := range demands {
		out[i] = Allocation{
			ID:         d.ID,
			Weight:     d.Weight,
			Desired:    d.Desired,
			Guaranteed: int64(math.Floor(d.Weight / w * float64(capacity))),
		}
		sumDesired += d.Desired
	}
	if sumDesired <= capacity {
		// No resource pressure: model-driven allocation stands (§3.3).
		for i := range out {
			out[i].Adjusted = out[i].Desired
		}
		return out, nil
	}
	// Overload: well-behaved functions keep their desire.
	remaining := capacity
	var overWeight float64
	for i := range out {
		if out[i].Desired <= out[i].Guaranteed {
			out[i].Adjusted = out[i].Desired
			remaining -= out[i].Desired
		} else {
			out[i].Overloaded = true
			overWeight += out[i].Weight
		}
	}
	for i := range out {
		if out[i].Overloaded {
			out[i].Adjusted = int64(math.Floor(out[i].Weight / overWeight * float64(remaining)))
		}
	}
	return out, nil
}

// AdjustCapped refines Adjust with a water-filling pass: Eq 8 can hand an
// overloaded function more capacity than its model-computed desire when
// well-behaved functions freed a large remainder, which wastes capacity the
// reclamation policies then cannot use. AdjustCapped caps every allocation
// at its desire and redistributes the surplus among still-unsatisfied
// overloaded functions by weight, repeating until a fixpoint. All Lemma
// guarantees continue to hold (allocations only move toward desires and
// never drop below the Eq 8 value, which is ≥ the guaranteed share).
func AdjustCapped(demands []Demand, capacity int64) ([]Allocation, error) {
	out, err := Adjust(demands, capacity)
	if err != nil {
		return nil, err
	}
	for {
		// Collect surplus from overloaded functions allocated beyond desire.
		var surplus int64
		unsat := make([]int, 0, len(out))
		var unsatWeight float64
		for i := range out {
			if !out[i].Overloaded {
				continue
			}
			if out[i].Adjusted > out[i].Desired {
				surplus += out[i].Adjusted - out[i].Desired
				out[i].Adjusted = out[i].Desired
			} else if out[i].Adjusted < out[i].Desired {
				unsat = append(unsat, i)
				unsatWeight += out[i].Weight
			}
		}
		if surplus == 0 || len(unsat) == 0 {
			return out, nil
		}
		distributed := int64(0)
		for _, i := range unsat {
			grant := int64(math.Floor(out[i].Weight / unsatWeight * float64(surplus)))
			out[i].Adjusted += grant
			distributed += grant
		}
		if distributed == 0 {
			return out, nil // floors consumed everything; accept fragmentation
		}
	}
}

// Node is one vertex of the hierarchical scheduling tree (§5): the paper's
// prototype uses two levels (user namespace → function) but notes the model
// extends to arbitrary depth, which this implementation supports.
type Node struct {
	ID       string
	Weight   float64
	Desired  int64   // leaf demand; ignored for internal nodes
	Children []*Node // nil/empty for leaves
}

// Leaf reports whether the node has no children.
func (n *Node) Leaf() bool { return len(n.Children) == 0 }

// TotalDesired returns the sum of leaf desires under n.
func (n *Node) TotalDesired() int64 {
	if n.Leaf() {
		return n.Desired
	}
	var sum int64
	for _, c := range n.Children {
		sum += c.TotalDesired()
	}
	return sum
}

// AllocateTree divides capacity over the tree: at each internal node the
// children are treated as a flat fair-share problem (their demands are
// their subtrees' total desires) and each child's adjusted capacity is
// recursively subdivided. The returned map contains one entry per leaf.
// capped selects AdjustCapped (true) or the paper-faithful Adjust (false)
// at every level.
func AllocateTree(root *Node, capacity int64, capped bool) (map[string]int64, error) {
	out := make(map[string]int64)
	if err := AllocateTreeInto(root, capacity, capped, out); err != nil {
		return nil, err
	}
	return out, nil
}

// AllocateTreeInto is AllocateTree with a caller-owned result map: out is
// cleared and refilled with one entry per leaf. Steady-state callers — the
// federation's incremental allocator re-clamps site subtrees every epoch —
// reuse one map instead of allocating a fresh one per call. The division
// itself is identical to AllocateTree's; neither variant mutates the tree.
//
// The whole tree is validated up front: duplicate node IDs (internal or
// leaf, across any branches), negative weights, and negative leaf desires
// at any depth fail before any capacity is divided, leaving out untouched.
func AllocateTreeInto(root *Node, capacity int64, capped bool, out map[string]int64) error {
	if root == nil {
		return fmt.Errorf("fairshare: nil tree")
	}
	if err := validateTree(root, make(map[string]bool)); err != nil {
		return err
	}
	clear(out)
	return allocateNode(root, capacity, capped, out)
}

// validateTree rejects structural errors anywhere in the tree. Weight 0 is
// allowed here — roots conventionally carry no weight — and zero-weight
// children are still rejected by Adjust's validate when their sibling
// group is divided, so only strictly negative weights fail at this layer.
func validateTree(n *Node, seen map[string]bool) error {
	if n.Weight < 0 {
		return fmt.Errorf("fairshare: node %q has negative weight %v", n.ID, n.Weight)
	}
	if seen[n.ID] {
		return fmt.Errorf("fairshare: duplicate node id %q", n.ID)
	}
	seen[n.ID] = true
	if n.Leaf() {
		if n.Desired < 0 {
			return fmt.Errorf("fairshare: leaf %q has negative desired capacity %d", n.ID, n.Desired)
		}
		return nil
	}
	for _, c := range n.Children {
		if err := validateTree(c, seen); err != nil {
			return err
		}
	}
	return nil
}

func allocateNode(n *Node, capacity int64, capped bool, out map[string]int64) error {
	if n.Leaf() {
		grant := capacity
		if n.Desired < grant {
			grant = n.Desired
		}
		out[n.ID] = grant
		return nil
	}
	demands := make([]Demand, len(n.Children))
	for i, c := range n.Children {
		demands[i] = Demand{ID: c.ID, Weight: c.Weight, Desired: c.TotalDesired()}
	}
	var allocs []Allocation
	var err error
	if capped {
		allocs, err = AdjustCapped(demands, capacity)
	} else {
		allocs, err = Adjust(demands, capacity)
	}
	if err != nil {
		return fmt.Errorf("fairshare: at node %q: %w", n.ID, err)
	}
	for i, c := range n.Children {
		if err := allocateNode(c, allocs[i].Adjusted, capped, out); err != nil {
			return err
		}
	}
	return nil
}

// Unused returns the capacity left unallocated by a set of allocations —
// the fragmentation the paper measures when comparing termination against
// deflation reclamation (Figs 8, 9).
func Unused(allocs []Allocation, capacity int64) int64 {
	var used int64
	for _, a := range allocs {
		used += a.Adjusted
	}
	return capacity - used
}

// SortByID returns a copy of allocs sorted by ID, for stable test output.
func SortByID(allocs []Allocation) []Allocation {
	s := append([]Allocation(nil), allocs...)
	sort.Slice(s, func(i, j int) bool { return s[i].ID < s[j].ID })
	return s
}
