package fairshare

import (
	"testing"
	"testing/quick"

	"lass/internal/xrand"
)

func TestNoOverloadEveryoneGetsDesired(t *testing.T) {
	demands := []Demand{
		{ID: "a", Weight: 1, Desired: 300},
		{ID: "b", Weight: 2, Desired: 500},
	}
	allocs, err := Adjust(demands, 1000)
	if err != nil {
		t.Fatal(err)
	}
	for i, a := range allocs {
		if a.Adjusted != demands[i].Desired {
			t.Errorf("%s: adjusted %d want %d", a.ID, a.Adjusted, demands[i].Desired)
		}
		if a.Overloaded {
			t.Errorf("%s marked overloaded without pressure", a.ID)
		}
	}
}

func TestGuaranteedSharesEq7(t *testing.T) {
	demands := []Demand{
		{ID: "a", Weight: 1, Desired: 0},
		{ID: "b", Weight: 2, Desired: 0},
	}
	g, err := GuaranteedShares(demands, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if g["a"] != 333 || g["b"] != 666 {
		t.Errorf("shares %v want a=333 b=666", g)
	}
}

func TestLemma1AllOverloadedGetExactGuarantee(t *testing.T) {
	// Lemma 1: when every function is overloaded, each receives exactly
	// its guaranteed share.
	demands := []Demand{
		{ID: "a", Weight: 1, Desired: 900},
		{ID: "b", Weight: 1, Desired: 800},
		{ID: "c", Weight: 2, Desired: 2000},
	}
	allocs, err := Adjust(demands, 1000)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range allocs {
		if !a.Overloaded {
			t.Errorf("%s should be overloaded", a.ID)
		}
		if a.Adjusted != a.Guaranteed {
			t.Errorf("%s: adjusted %d != guaranteed %d", a.ID, a.Adjusted, a.Guaranteed)
		}
	}
}

func TestLemma2OverloadedGetAtLeastGuarantee(t *testing.T) {
	demands := []Demand{
		{ID: "small", Weight: 1, Desired: 50}, // well-behaved (guar = 333)
		{ID: "big1", Weight: 1, Desired: 600}, // overloaded
		{ID: "big2", Weight: 1, Desired: 900}, // overloaded
	}
	allocs, err := Adjust(demands, 1000)
	if err != nil {
		t.Fatal(err)
	}
	byID := map[string]Allocation{}
	for _, a := range allocs {
		byID[a.ID] = a
	}
	if byID["small"].Adjusted != 50 {
		t.Errorf("well-behaved got %d want 50", byID["small"].Adjusted)
	}
	for _, id := range []string{"big1", "big2"} {
		a := byID[id]
		if a.Adjusted < a.Guaranteed {
			t.Errorf("%s: adjusted %d < guaranteed %d", id, a.Adjusted, a.Guaranteed)
		}
	}
	// Remaining 950 split evenly: 475 each.
	if byID["big1"].Adjusted != 475 || byID["big2"].Adjusted != 475 {
		t.Errorf("split %d/%d want 475/475", byID["big1"].Adjusted, byID["big2"].Adjusted)
	}
}

func TestAdjustNeverExceedsCapacity(t *testing.T) {
	rng := xrand.New(99)
	f := func(n uint8, capRaw uint16) bool {
		k := int(n%6) + 1
		capacity := int64(capRaw%5000) + 100
		demands := make([]Demand, k)
		for i := range demands {
			demands[i] = Demand{
				ID:      string(rune('a' + i)),
				Weight:  float64(rng.Intn(5) + 1),
				Desired: int64(rng.Intn(3000)),
			}
		}
		allocs, err := Adjust(demands, capacity)
		if err != nil {
			return false
		}
		var sumDesired, sumAdjusted int64
		for i, a := range allocs {
			sumDesired += demands[i].Desired
			sumAdjusted += a.Adjusted
			if a.Adjusted < 0 {
				return false
			}
		}
		if sumDesired <= capacity {
			return sumAdjusted == sumDesired
		}
		return sumAdjusted <= capacity
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestQuickLemma2Property(t *testing.T) {
	rng := xrand.New(7)
	f := func(n uint8, capRaw uint16) bool {
		k := int(n%6) + 2
		capacity := int64(capRaw%5000) + 500
		demands := make([]Demand, k)
		for i := range demands {
			demands[i] = Demand{
				ID:      string(rune('a' + i)),
				Weight:  float64(rng.Intn(4) + 1),
				Desired: int64(rng.Intn(4000)),
			}
		}
		allocs, err := Adjust(demands, capacity)
		if err != nil {
			return false
		}
		var sumDesired int64
		for _, d := range demands {
			sumDesired += d.Desired
		}
		if sumDesired <= capacity {
			return true // no overload: lemma not in play
		}
		for _, a := range allocs {
			if a.Overloaded && a.Adjusted < a.Guaranteed {
				return false
			}
			if !a.Overloaded && a.Adjusted != a.Desired {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestAdjustCappedNeverExceedsDesire(t *testing.T) {
	// One well-behaved function frees most of the cluster; Eq 8 would give
	// the barely-overloaded function more than it wants.
	demands := []Demand{
		{ID: "tiny", Weight: 1, Desired: 20},      // guar 333
		{ID: "justover", Weight: 1, Desired: 340}, // guar 333, overloaded
		{ID: "huge", Weight: 1, Desired: 5000},    // overloaded
	}
	capacity := int64(1000)
	raw, err := Adjust(demands, capacity)
	if err != nil {
		t.Fatal(err)
	}
	// Confirm the pathology exists in the faithful algorithm: Ĉ = 980,
	// justover's Eq 8 share is 490 > desired 340.
	for _, a := range raw {
		if a.ID == "justover" && a.Adjusted <= a.Desired {
			t.Fatalf("test premise broken: raw adjusted %d", a.Adjusted)
		}
	}
	capped, err := AdjustCapped(demands, capacity)
	if err != nil {
		t.Fatal(err)
	}
	byID := map[string]Allocation{}
	var total int64
	for _, a := range capped {
		byID[a.ID] = a
		total += a.Adjusted
		if a.Adjusted > a.Desired {
			t.Errorf("%s: capped alloc %d exceeds desire %d", a.ID, a.Adjusted, a.Desired)
		}
		if a.Overloaded && a.Adjusted < a.Guaranteed {
			t.Errorf("%s: capped alloc %d below guarantee %d", a.ID, a.Adjusted, a.Guaranteed)
		}
	}
	if total > capacity {
		t.Errorf("capped total %d exceeds capacity", total)
	}
	// The surplus (490-340=150) must flow to the unsatisfied function.
	if byID["huge"].Adjusted <= byID["justover"].Guaranteed {
		t.Errorf("surplus not redistributed: huge=%d", byID["huge"].Adjusted)
	}
	if byID["huge"].Adjusted != 490+150 {
		t.Errorf("huge got %d want 640", byID["huge"].Adjusted)
	}
}

func TestQuickAdjustCappedDominatesForUtilization(t *testing.T) {
	// Capped allocation never leaves more capacity unused than the
	// faithful algorithm when demand exceeds supply, and never allocates
	// above desire.
	rng := xrand.New(13)
	f := func(n uint8, capRaw uint16) bool {
		k := int(n%5) + 2
		capacity := int64(capRaw%4000) + 500
		demands := make([]Demand, k)
		for i := range demands {
			demands[i] = Demand{
				ID:      string(rune('a' + i)),
				Weight:  float64(rng.Intn(4) + 1),
				Desired: int64(rng.Intn(3000)),
			}
		}
		raw, err1 := Adjust(demands, capacity)
		capped, err2 := AdjustCapped(demands, capacity)
		if err1 != nil || err2 != nil {
			return false
		}
		var rawUseful, cappedUsed int64
		for i := range raw {
			u := raw[i].Adjusted
			if u > raw[i].Desired {
				u = raw[i].Desired // over-allocation is not useful capacity
			}
			rawUseful += u
			cappedUsed += capped[i].Adjusted
			if capped[i].Adjusted > capped[i].Desired {
				return false
			}
		}
		return cappedUsed >= rawUseful
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestValidation(t *testing.T) {
	if _, err := Adjust([]Demand{{ID: "a", Weight: 0, Desired: 1}}, 10); err == nil {
		t.Error("want error for zero weight")
	}
	if _, err := Adjust([]Demand{{ID: "a", Weight: 1, Desired: -1}}, 10); err == nil {
		t.Error("want error for negative desire")
	}
	if _, err := Adjust([]Demand{{ID: "a", Weight: 1}, {ID: "a", Weight: 1}}, 10); err == nil {
		t.Error("want error for duplicate ids")
	}
	if _, err := Adjust(nil, -1); err == nil {
		t.Error("want error for negative capacity")
	}
}

func TestAllocateTreeTwoLevels(t *testing.T) {
	// The paper's experiment (§6.7): two users, user2 weight twice user1.
	// Under full overload user1's functions share ~1/3 of the cluster and
	// user2's share ~2/3.
	root := &Node{ID: "cluster", Weight: 1, Children: []*Node{
		{ID: "user1", Weight: 1, Children: []*Node{
			{ID: "f1", Weight: 1, Desired: 4000},
			{ID: "f2", Weight: 1, Desired: 4000},
		}},
		{ID: "user2", Weight: 2, Children: []*Node{
			{ID: "f3", Weight: 1, Desired: 4000},
			{ID: "f4", Weight: 1, Desired: 4000},
		}},
	}}
	got, err := AllocateTree(root, 3000, false)
	if err != nil {
		t.Fatal(err)
	}
	u1 := got["f1"] + got["f2"]
	u2 := got["f3"] + got["f4"]
	if u1 < 900 || u1 > 1000 {
		t.Errorf("user1 total %d want ~1000", u1)
	}
	if u2 < 1900 || u2 > 2000 {
		t.Errorf("user2 total %d want ~2000", u2)
	}
}

func TestAllocateTreeLeafRespectsDesire(t *testing.T) {
	root := &Node{ID: "cluster", Weight: 1, Children: []*Node{
		{ID: "idle", Weight: 1, Desired: 10},
		{ID: "busy", Weight: 1, Desired: 900},
	}}
	got, err := AllocateTree(root, 1000, true)
	if err != nil {
		t.Fatal(err)
	}
	if got["idle"] != 10 {
		t.Errorf("idle leaf granted %d want 10", got["idle"])
	}
	if got["busy"] != 900 {
		t.Errorf("busy leaf granted %d want 900", got["busy"])
	}
}

func TestAllocateTreeThreeLevels(t *testing.T) {
	// Arbitrary-depth support (§5 "can be extended to ... arbitrary levels").
	root := &Node{ID: "root", Weight: 1, Children: []*Node{
		{ID: "org1", Weight: 1, Children: []*Node{
			{ID: "team1", Weight: 3, Children: []*Node{
				{ID: "g1", Weight: 1, Desired: 10000},
			}},
			{ID: "team2", Weight: 1, Children: []*Node{
				{ID: "g2", Weight: 1, Desired: 10000},
			}},
		}},
		{ID: "org2", Weight: 1, Children: []*Node{
			{ID: "g3", Weight: 1, Desired: 10000},
		}},
	}}
	got, err := AllocateTree(root, 4000, false)
	if err != nil {
		t.Fatal(err)
	}
	if got["g3"] != 2000 {
		t.Errorf("g3=%d want 2000", got["g3"])
	}
	if got["g1"] != 1500 || got["g2"] != 500 {
		t.Errorf("g1=%d g2=%d want 1500/500", got["g1"], got["g2"])
	}
}

func TestAllocateTreeErrors(t *testing.T) {
	if _, err := AllocateTree(nil, 100, false); err == nil {
		t.Error("want error for nil tree")
	}
	dup := &Node{ID: "r", Weight: 1, Children: []*Node{
		{ID: "x", Weight: 1, Desired: 1},
		{ID: "x", Weight: 1, Desired: 1},
	}}
	if _, err := AllocateTree(dup, 100, false); err == nil {
		t.Error("want error for duplicate child ids")
	}
	leafDup := &Node{ID: "r", Weight: 1, Children: []*Node{
		{ID: "a", Weight: 1, Children: []*Node{{ID: "x", Weight: 1, Desired: 1}}},
		{ID: "b", Weight: 1, Children: []*Node{{ID: "x", Weight: 1, Desired: 1}}},
	}}
	if _, err := AllocateTree(leafDup, 100, false); err == nil {
		t.Error("want error for duplicate leaf ids across subtrees")
	}
}

// TestAllocateTreeDeepValidation pins the upfront whole-tree validation:
// duplicate node IDs, negative weights, and negative leaf desires are
// rejected at any depth — including cases the per-level Adjust validation
// used to miss (internal-node duplicates across branches, a negative
// desire on a single-leaf root, a negative weight below the first level).
func TestAllocateTreeDeepValidation(t *testing.T) {
	internalDup := &Node{ID: "r", Weight: 1, Children: []*Node{
		{ID: "m", Weight: 1, Children: []*Node{{ID: "a", Weight: 1, Desired: 1}}},
		{ID: "n", Weight: 1, Children: []*Node{
			{ID: "m", Weight: 1, Children: []*Node{{ID: "b", Weight: 1, Desired: 1}}},
		}},
	}}
	if _, err := AllocateTree(internalDup, 100, true); err == nil {
		t.Error("want error for duplicate internal node ids across branches")
	}
	internalLeafDup := &Node{ID: "r", Weight: 1, Children: []*Node{
		{ID: "m", Weight: 1, Children: []*Node{{ID: "a", Weight: 1, Desired: 1}}},
		{ID: "b", Weight: 1, Children: []*Node{{ID: "m", Weight: 1, Desired: 1}}},
	}}
	if _, err := AllocateTree(internalLeafDup, 100, true); err == nil {
		t.Error("want error for a leaf reusing an internal node's id")
	}
	negLeaf := &Node{ID: "solo", Weight: 1, Desired: -5}
	if _, err := AllocateTree(negLeaf, 100, true); err == nil {
		t.Error("want error for negative desire on a single-leaf root")
	}
	negDeep := &Node{ID: "r", Weight: 1, Children: []*Node{
		{ID: "m", Weight: 1, Children: []*Node{
			{ID: "u", Weight: 2, Children: []*Node{{ID: "f", Weight: -1, Desired: 1}}},
		}},
	}}
	if _, err := AllocateTree(negDeep, 100, true); err == nil {
		t.Error("want error for negative weight three levels down")
	}
	// Errors surface before any division: the caller-owned map is left
	// untouched on failure.
	out := map[string]int64{"stale": 7}
	if err := AllocateTreeInto(negDeep, 100, true, out); err == nil {
		t.Error("want error from AllocateTreeInto")
	} else if out["stale"] != 7 {
		t.Error("failed validation must not clear the caller's map")
	}
	// Weight 0 stays legal on roots (the federation allocator mounts site
	// trees under a weight-0 synthetic root); zero-weight members of a
	// divided sibling group are still rejected by Adjust.
	zeroRoot := &Node{ID: "::root", Children: []*Node{{ID: "x", Weight: 1, Desired: 3}}}
	got, err := AllocateTree(zeroRoot, 100, true)
	if err != nil {
		t.Fatalf("weight-0 root must stay valid: %v", err)
	}
	if got["x"] != 3 {
		t.Errorf("x = %d, want 3", got["x"])
	}
	zeroChild := &Node{ID: "r", Weight: 1, Children: []*Node{
		{ID: "a", Weight: 0, Desired: 1},
		{ID: "b", Weight: 1, Desired: 1},
	}}
	if _, err := AllocateTree(zeroChild, 100, true); err == nil {
		t.Error("want error for zero-weight sibling (Adjust validation)")
	}
}

func TestUnused(t *testing.T) {
	allocs := []Allocation{{Adjusted: 300}, {Adjusted: 400}}
	if u := Unused(allocs, 1000); u != 300 {
		t.Errorf("unused=%d", u)
	}
}

func TestSortByID(t *testing.T) {
	allocs := []Allocation{{ID: "b"}, {ID: "a"}}
	s := SortByID(allocs)
	if s[0].ID != "a" || s[1].ID != "b" {
		t.Errorf("not sorted: %v", s)
	}
	if allocs[0].ID != "b" {
		t.Error("input mutated")
	}
}

func TestQuickTreeConservation(t *testing.T) {
	// Total granted never exceeds capacity; leaves never exceed desires.
	rng := xrand.New(31)
	f := func(capRaw uint16, k uint8) bool {
		capacity := int64(capRaw%8000) + 100
		users := int(k%3) + 1
		root := &Node{ID: "root", Weight: 1}
		leafID := 0
		for u := 0; u < users; u++ {
			user := &Node{ID: string(rune('A' + u)), Weight: float64(rng.Intn(3) + 1)}
			for f := 0; f < rng.Intn(3)+1; f++ {
				leafID++
				user.Children = append(user.Children, &Node{
					ID:      string(rune('a' + leafID)),
					Weight:  float64(rng.Intn(3) + 1),
					Desired: int64(rng.Intn(4000)),
				})
			}
			root.Children = append(root.Children, user)
		}
		grants, err := AllocateTree(root, capacity, true)
		if err != nil {
			return false
		}
		var total int64
		for _, g := range grants {
			if g < 0 {
				return false
			}
			total += g
		}
		return total <= capacity
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// --- site → user → function trees (the federation-wide allocator's shape) ---

// TestAllocateTreeSiteUserFunction exercises the three-level hierarchy the
// global allocator builds: federation root → site → user → function, with
// uneven site capacities expressed as uneven site weights and desires.
func TestAllocateTreeSiteUserFunction(t *testing.T) {
	root := &Node{ID: "fed", Children: []*Node{
		{ID: "site:a", Weight: 1, Children: []*Node{
			{ID: "site:a/user:u1", Weight: 1, Children: []*Node{
				{ID: "site:a/f", Weight: 1, Desired: 6000},
				{ID: "site:a/g", Weight: 3, Desired: 6000},
			}},
		}},
		{ID: "site:b", Weight: 1, Children: []*Node{
			{ID: "site:b/user:u1", Weight: 1, Children: []*Node{
				{ID: "site:b/f", Weight: 1, Desired: 2000},
			}},
		}},
	}}
	got, err := AllocateTree(root, 8000, true)
	if err != nil {
		t.Fatal(err)
	}
	// Root overload (14000 desired over 8000): site b is well behaved
	// (2000 <= guaranteed 4000) and keeps its desire; site a gets the
	// remaining 6000, split 1:3 between its functions.
	if got["site:b/f"] != 2000 {
		t.Errorf("site:b/f = %d want 2000", got["site:b/f"])
	}
	if a := got["site:a/f"] + got["site:a/g"]; a != 6000 {
		t.Errorf("site a total = %d want 6000", a)
	}
	if got["site:a/g"] <= got["site:a/f"] {
		t.Errorf("weights ignored inside site a: f=%d g=%d", got["site:a/f"], got["site:a/g"])
	}
}

// TestAllocateTreeZeroDemandSites: sites with zero desire (or no function
// children at all) receive nothing and poison nothing.
func TestAllocateTreeZeroDemandSites(t *testing.T) {
	root := &Node{ID: "fed", Children: []*Node{
		{ID: "site:busy", Weight: 1, Children: []*Node{
			{ID: "site:busy/f", Weight: 1, Desired: 3000},
		}},
		{ID: "site:idle", Weight: 1, Children: []*Node{
			{ID: "site:idle/f", Weight: 1, Desired: 0},
		}},
		{ID: "site:bare", Weight: 1}, // no functions registered: a zero-desire leaf
	}}
	got, err := AllocateTree(root, 2000, true)
	if err != nil {
		t.Fatal(err)
	}
	if got["site:idle/f"] != 0 {
		t.Errorf("idle site granted %d want 0", got["site:idle/f"])
	}
	if got["site:bare"] != 0 {
		t.Errorf("functionless site granted %d want 0", got["site:bare"])
	}
	if got["site:busy/f"] != 2000 {
		t.Errorf("busy site granted %d want the full 2000", got["site:busy/f"])
	}
}

// TestAllocateTreeWeightsSumAcrossSites: the same function deployed at two
// sites with equal site weights splits a federation-level overload evenly,
// and tripling one site's weight shifts the split accordingly — the
// "global weight governs aggregate capacity" property.
func TestAllocateTreeWeightsSumAcrossSites(t *testing.T) {
	build := func(wa float64) *Node {
		return &Node{ID: "fed", Children: []*Node{
			{ID: "site:a", Weight: wa, Children: []*Node{
				{ID: "site:a/f", Weight: 1, Desired: 8000},
			}},
			{ID: "site:b", Weight: 1, Children: []*Node{
				{ID: "site:b/f", Weight: 1, Desired: 8000},
			}},
		}}
	}
	even, err := AllocateTree(build(1), 8000, true)
	if err != nil {
		t.Fatal(err)
	}
	if even["site:a/f"] != 4000 || even["site:b/f"] != 4000 {
		t.Errorf("even weights: a=%d b=%d want 4000/4000", even["site:a/f"], even["site:b/f"])
	}
	skew, err := AllocateTree(build(3), 8000, true)
	if err != nil {
		t.Fatal(err)
	}
	if skew["site:a/f"] != 6000 || skew["site:b/f"] != 2000 {
		t.Errorf("3:1 weights: a=%d b=%d want 6000/2000", skew["site:a/f"], skew["site:b/f"])
	}
}

// TestAllocateTreeSingleSiteEqualsAdjustCapped pins the regression the
// refactor promises: a one-site tree allocates exactly what the flat
// AdjustCapped adjustment gives the same demands, so lifting the allocator
// into the tree changes nothing for a standalone cluster.
func TestAllocateTreeSingleSiteEqualsAdjustCapped(t *testing.T) {
	demands := []Demand{
		{ID: "f1", Weight: 1, Desired: 5000},
		{ID: "f2", Weight: 2, Desired: 3000},
		{ID: "f3", Weight: 1, Desired: 200},
		{ID: "f4", Weight: 4, Desired: 9000},
	}
	for _, capacity := range []int64{1000, 6000, 17000, 20000} {
		want, err := AdjustCapped(demands, capacity)
		if err != nil {
			t.Fatal(err)
		}
		site := &Node{ID: "site"}
		for _, d := range demands {
			site.Children = append(site.Children, &Node{ID: d.ID, Weight: d.Weight, Desired: d.Desired})
		}
		got, err := AllocateTree(site, capacity, true)
		if err != nil {
			t.Fatal(err)
		}
		for _, w := range want {
			if got[w.ID] != w.Adjusted {
				t.Errorf("capacity %d: %s tree=%d AdjustCapped=%d",
					capacity, w.ID, got[w.ID], w.Adjusted)
			}
		}
	}
}
