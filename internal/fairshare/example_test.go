package fairshare_test

import (
	"fmt"

	"lass/internal/fairshare"
)

// Two functions overload a 1000-unit cluster; the well-behaved third
// keeps its demand and the overloaded pair split the remainder by weight
// while each stays at or above its guaranteed share (paper §4.1).
func ExampleAdjust() {
	demands := []fairshare.Demand{
		{ID: "well-behaved", Weight: 1, Desired: 100},
		{ID: "hungry-a", Weight: 1, Desired: 700},
		{ID: "hungry-b", Weight: 2, Desired: 900},
	}
	allocs, _ := fairshare.Adjust(demands, 1000)
	for _, a := range allocs {
		fmt.Printf("%s: guaranteed=%d adjusted=%d\n", a.ID, a.Guaranteed, a.Adjusted)
	}
	// Output:
	// well-behaved: guaranteed=250 adjusted=100
	// hungry-a: guaranteed=250 adjusted=300
	// hungry-b: guaranteed=500 adjusted=600
}

// The two-level hierarchy of §5: users weighted 1:2, functions inside
// each user sharing the user's grant.
func ExampleAllocateTree() {
	root := &fairshare.Node{ID: "cluster", Weight: 1, Children: []*fairshare.Node{
		{ID: "user1", Weight: 1, Children: []*fairshare.Node{
			{ID: "f1", Weight: 1, Desired: 4000},
		}},
		{ID: "user2", Weight: 2, Children: []*fairshare.Node{
			{ID: "f2", Weight: 1, Desired: 4000},
		}},
	}}
	grants, _ := fairshare.AllocateTree(root, 3000, false)
	fmt.Println(grants["f1"], grants["f2"])
	// Output: 1000 2000
}
