// yaml.go is a deliberately small YAML-subset parser — the module is
// stdlib-only, so scenario files cannot pull in a YAML dependency. The
// subset covers what declarative scenarios need and nothing else:
//
//   - block mappings (`key: value` / `key:` + indented block)
//   - block lists (`- item`, including `- key: value` starting a map)
//   - flow lists `[a, b]` and flow maps `{k: v}`, nesting allowed
//   - `#` comments, blank lines, single- or double-quoted scalars
//
// Indentation is spaces only (a tab is an error), anchors/aliases,
// multi-line block scalars, and multi-document streams are rejected by
// construction. Every node carries its source line for loader errors.
package scenario

import (
	"fmt"
	"strings"
)

type nodeKind int

const (
	scalarNode nodeKind = iota
	mapNode
	listNode
)

func (k nodeKind) String() string {
	switch k {
	case scalarNode:
		return "scalar"
	case mapNode:
		return "mapping"
	case listNode:
		return "list"
	}
	return "unknown"
}

// node is one parsed YAML value. Mappings keep their keys in file order
// (keys slice) so decoding and error reporting are deterministic.
type node struct {
	kind     nodeKind
	scalar   string
	keys     []string
	children map[string]*node
	items    []*node
	line     int
}

func (n *node) child(key string) *node { return n.children[key] }

// srcLine is one logical input line after comment stripping.
type srcLine struct {
	indent int
	text   string
	num    int
}

// stripComment removes a trailing `#` comment, respecting quotes.
func stripComment(s string) string {
	quote := byte(0)
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case quote != 0:
			if c == quote {
				quote = 0
			}
		case c == '\'' || c == '"':
			quote = c
		case c == '#' && (i == 0 || s[i-1] == ' ' || s[i-1] == '\t'):
			return s[:i]
		}
	}
	return s
}

func splitLines(data []byte) ([]srcLine, error) {
	var out []srcLine
	for num, raw := range strings.Split(string(data), "\n") {
		line := stripComment(raw)
		trimmed := strings.TrimRight(line, " \r")
		indent := 0
		for indent < len(trimmed) && trimmed[indent] == ' ' {
			indent++
		}
		body := trimmed[indent:]
		if body == "" {
			continue
		}
		if strings.HasPrefix(body, "\t") || strings.Contains(trimmed[:indent], "\t") {
			return nil, fmt.Errorf("line %d: tab in indentation (use spaces)", num+1)
		}
		out = append(out, srcLine{indent: indent, text: body, num: num + 1})
	}
	return out, nil
}

// parse parses one YAML-subset document into its root node.
func parse(data []byte) (*node, error) {
	lines, err := splitLines(data)
	if err != nil {
		return nil, err
	}
	if len(lines) == 0 {
		return nil, fmt.Errorf("empty document")
	}
	p := &parser{lines: lines}
	root, err := p.parseBlock(lines[0].indent)
	if err != nil {
		return nil, err
	}
	if p.pos < len(p.lines) {
		l := p.lines[p.pos]
		return nil, fmt.Errorf("line %d: unexpected indentation", l.num)
	}
	return root, nil
}

type parser struct {
	lines []srcLine
	pos   int
}

func (p *parser) peek() (srcLine, bool) {
	if p.pos >= len(p.lines) {
		return srcLine{}, false
	}
	return p.lines[p.pos], true
}

// parseBlock parses the run of lines at exactly the given indent as one
// value: a list if they start with "-", a mapping if they look like
// "key:", a bare scalar otherwise.
func (p *parser) parseBlock(indent int) (*node, error) {
	l, ok := p.peek()
	if !ok || l.indent < indent {
		return nil, fmt.Errorf("line %d: expected a value", p.lastNum())
	}
	if l.indent > indent {
		return nil, fmt.Errorf("line %d: unexpected indentation", l.num)
	}
	if isListItem(l.text) {
		return p.parseList(indent)
	}
	if keyOf(l.text) != "" {
		return p.parseMap(indent)
	}
	// Inline value on its own line: a flow list/map or a bare scalar.
	p.pos++
	return parseValue(l.text, l.num)
}

func (p *parser) lastNum() int {
	if len(p.lines) == 0 {
		return 0
	}
	if p.pos >= len(p.lines) {
		return p.lines[len(p.lines)-1].num
	}
	return p.lines[p.pos].num
}

func isListItem(text string) bool {
	return text == "-" || strings.HasPrefix(text, "- ")
}

// colonIndex returns the position of the `key: value` separator — the
// first depth-0, unquoted colon followed by a space or end of line — or
// -1 when the line is not a `key:` form.
func colonIndex(text string) int {
	quote := byte(0)
	depth := 0
	for i := 0; i < len(text); i++ {
		c := text[i]
		switch {
		case quote != 0:
			if c == quote {
				quote = 0
			}
		case c == '\'' || c == '"':
			quote = c
		case c == '[' || c == '{':
			depth++
		case c == ']' || c == '}':
			depth--
		case c == ':' && depth == 0:
			if i+1 == len(text) || text[i+1] == ' ' {
				return i
			}
		}
	}
	return -1
}

// keyOf returns the mapping key a line introduces, or "" when the line
// is not a `key:` form.
func keyOf(text string) string {
	i := colonIndex(text)
	if i < 0 {
		return ""
	}
	return strings.TrimSpace(unquote(strings.TrimSpace(text[:i])))
}

func (p *parser) parseList(indent int) (*node, error) {
	first, _ := p.peek()
	n := &node{kind: listNode, line: first.num}
	for {
		l, ok := p.peek()
		if !ok || l.indent != indent || !isListItem(l.text) {
			break
		}
		body := strings.TrimPrefix(strings.TrimPrefix(l.text, "-"), " ")
		if body == "" {
			// `-` alone: the item is the following deeper block.
			p.pos++
			next, ok := p.peek()
			if !ok || next.indent <= indent {
				return nil, fmt.Errorf("line %d: empty list item", l.num)
			}
			item, err := p.parseBlock(next.indent)
			if err != nil {
				return nil, err
			}
			n.items = append(n.items, item)
			continue
		}
		// `- content`: content behaves as if it started a block at the
		// column it appears in — splice it back as a synthetic line.
		itemIndent := l.indent + (len(l.text) - len(body))
		p.lines[p.pos] = srcLine{indent: itemIndent, text: body, num: l.num}
		item, err := p.parseBlock(itemIndent)
		if err != nil {
			return nil, err
		}
		n.items = append(n.items, item)
	}
	return n, nil
}

func (p *parser) parseMap(indent int) (*node, error) {
	first, _ := p.peek()
	n := &node{kind: mapNode, children: map[string]*node{}, line: first.num}
	for {
		l, ok := p.peek()
		if !ok || l.indent != indent || isListItem(l.text) {
			break
		}
		key := keyOf(l.text)
		if key == "" {
			return nil, fmt.Errorf("line %d: expected 'key: value', got %q", l.num, l.text)
		}
		if _, dup := n.children[key]; dup {
			return nil, fmt.Errorf("line %d: duplicate key %q", l.num, key)
		}
		rest := strings.TrimSpace(l.text[colonIndex(l.text)+1:])
		p.pos++
		var child *node
		if rest != "" {
			v, err := parseValue(rest, l.num)
			if err != nil {
				return nil, err
			}
			child = v
		} else {
			next, ok := p.peek()
			if ok && (next.indent > indent || (next.indent == indent && isListItem(next.text))) {
				blockIndent := next.indent
				v, err := p.parseBlock(blockIndent)
				if err != nil {
					return nil, err
				}
				child = v
			} else {
				// Bare `key:` with nothing under it: empty scalar.
				child = &node{kind: scalarNode, line: l.num}
			}
		}
		n.keys = append(n.keys, key)
		n.children[key] = child
	}
	return n, nil
}

// parseValue parses an inline value: flow list, flow map, or scalar.
func parseValue(s string, line int) (*node, error) {
	s = strings.TrimSpace(s)
	if strings.HasPrefix(s, "[") || strings.HasPrefix(s, "{") {
		v, rest, err := parseFlow(s, line)
		if err != nil {
			return nil, err
		}
		if strings.TrimSpace(rest) != "" {
			return nil, fmt.Errorf("line %d: trailing content %q after flow value", line, rest)
		}
		return v, nil
	}
	if strings.HasPrefix(s, "|") || strings.HasPrefix(s, ">") || strings.HasPrefix(s, "&") || strings.HasPrefix(s, "*") {
		return nil, fmt.Errorf("line %d: unsupported YAML feature %q (this subset has no block scalars or anchors)", line, s[:1])
	}
	return &node{kind: scalarNode, scalar: unquote(s), line: line}, nil
}

// parseFlow parses one flow value ([...], {...}, or a scalar up to a
// flow delimiter) and returns the unconsumed remainder.
func parseFlow(s string, line int) (*node, string, error) {
	s = strings.TrimSpace(s)
	switch {
	case strings.HasPrefix(s, "["):
		n := &node{kind: listNode, line: line}
		rest := strings.TrimSpace(s[1:])
		if strings.HasPrefix(rest, "]") {
			return n, rest[1:], nil
		}
		for {
			item, r, err := parseFlow(rest, line)
			if err != nil {
				return nil, "", err
			}
			n.items = append(n.items, item)
			r = strings.TrimSpace(r)
			if strings.HasPrefix(r, ",") {
				rest = strings.TrimSpace(r[1:])
				continue
			}
			if strings.HasPrefix(r, "]") {
				return n, r[1:], nil
			}
			return nil, "", fmt.Errorf("line %d: unterminated flow list", line)
		}
	case strings.HasPrefix(s, "{"):
		n := &node{kind: mapNode, children: map[string]*node{}, line: line}
		rest := strings.TrimSpace(s[1:])
		if strings.HasPrefix(rest, "}") {
			return n, rest[1:], nil
		}
		for {
			colon := strings.Index(rest, ":")
			if colon < 0 {
				return nil, "", fmt.Errorf("line %d: flow map entry without ':'", line)
			}
			key := strings.TrimSpace(unquote(strings.TrimSpace(rest[:colon])))
			if key == "" {
				return nil, "", fmt.Errorf("line %d: empty flow map key", line)
			}
			if _, dup := n.children[key]; dup {
				return nil, "", fmt.Errorf("line %d: duplicate key %q", line, key)
			}
			val, r, err := parseFlow(rest[colon+1:], line)
			if err != nil {
				return nil, "", err
			}
			n.keys = append(n.keys, key)
			n.children[key] = val
			r = strings.TrimSpace(r)
			if strings.HasPrefix(r, ",") {
				rest = strings.TrimSpace(r[1:])
				continue
			}
			if strings.HasPrefix(r, "}") {
				return n, r[1:], nil
			}
			return nil, "", fmt.Errorf("line %d: unterminated flow map", line)
		}
	default:
		// Scalar up to the next flow delimiter at depth 0.
		end := len(s)
		for i := 0; i < len(s); i++ {
			if s[i] == ',' || s[i] == ']' || s[i] == '}' {
				end = i
				break
			}
		}
		return &node{kind: scalarNode, scalar: unquote(strings.TrimSpace(s[:end])), line: line}, s[end:], nil
	}
}

func unquote(s string) string {
	if len(s) >= 2 {
		if (s[0] == '"' && s[len(s)-1] == '"') || (s[0] == '\'' && s[len(s)-1] == '\'') {
			return s[1 : len(s)-1]
		}
	}
	return s
}
