package scenario

import (
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
	"time"

	"lass/internal/chaos"
	"lass/internal/federation"
)

const validScenario = `
name: unit-valid
description: "loader round-trip fixture"
seed: 9
duration: 1m
response-slo: 250ms
placer: model-driven
global-fairshare: true
admission: true
alloc-epoch: 5s
grant-lease: 10s
coordinator:
  election: centroid
topology:
  kind: star
  rtt: 5ms
fleet:
  - name: edge-0
    nodes: 1
    cpu-per-node: 4000
    mem-per-node: 8192
    functions:
      - spec: squeezenet
        prewarm: 1
        workload:
          - rate: 20
          - start: 20s
            rate: 80
  - name: edge-1
    nodes: 2
    cpu-per-node: 2000
    mem-per-node: 4096
    functions:
      - spec: squeezenet
        prewarm: 1
        min-containers: 1
        workload:
          - rate: 5
chaos:
  seed: 3
  faults:
    - kind: link
      from: 1
      to: 0
      bidirectional: true
      mean-up: 30s
      mean-down: 10s
    - kind: coordinator
      windows: [{start: 10s, end: 20s}]
assertions:
  min-alloc-epochs: 1
`

func TestParseValidScenario(t *testing.T) {
	sc, err := Parse([]byte(validScenario))
	if err != nil {
		t.Fatal(err)
	}
	if sc.Name != "unit-valid" || sc.Seed != 9 || sc.Duration != time.Minute {
		t.Errorf("header mis-parsed: %+v", sc)
	}
	if !sc.GlobalFairShare || !sc.Admission || sc.GrantLease != 10*time.Second {
		t.Errorf("allocator knobs mis-parsed: %+v", sc)
	}
	if sc.Coordinator.Election != "centroid" || sc.Topology.Kind != "star" || sc.Topology.RTT != 5*time.Millisecond {
		t.Errorf("coordinator/topology mis-parsed: %+v %+v", sc.Coordinator, sc.Topology)
	}
	if len(sc.Fleet) != 2 || sc.Fleet[1].Nodes != 2 || len(sc.Fleet[0].Functions[0].Steps) != 2 {
		t.Errorf("fleet mis-parsed: %+v", sc.Fleet)
	}
	if sc.Chaos.Seed != 3 || len(sc.Chaos.Faults) != 2 {
		t.Fatalf("chaos mis-parsed: %+v", sc.Chaos)
	}
	link := sc.Chaos.Faults[0]
	if link.Kind != chaos.FaultLink || !link.Bidirectional || link.GE.MeanDown != 10*time.Second {
		t.Errorf("link fault mis-parsed: %+v", link)
	}
	coord := sc.Chaos.Faults[1]
	if coord.Kind != chaos.FaultCoordinator || len(coord.Windows) != 1 || coord.Windows[0].End != 20*time.Second {
		t.Errorf("coordinator fault mis-parsed: %+v", coord)
	}
}

func TestBuildAndRunScenario(t *testing.T) {
	sc, err := Parse([]byte(validScenario))
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := sc.Build(-1)
	if err != nil {
		t.Fatal(err)
	}
	if len(cfg.Sites) != 2 || cfg.Faults == nil || !cfg.GlobalFairShare {
		t.Fatalf("built config is off: sites=%d faults=%v", len(cfg.Sites), cfg.Faults != nil)
	}
	fed, err := federation.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := fed.Run(sc.Duration)
	if err != nil {
		t.Fatal(err)
	}
	if err := sc.Check(res); err != nil {
		t.Errorf("assertions failed on the scenario's own run: %v", err)
	}
	if res.AllocEpochs == 0 {
		t.Error("no allocation epochs ran")
	}
}

// TestBuildChaosSeedOverride: overriding the chaos seed changes the
// failure realization but not the workload (same arrivals observed).
func TestBuildChaosSeedOverride(t *testing.T) {
	sc, err := Parse([]byte(validScenario))
	if err != nil {
		t.Fatal(err)
	}
	run := func(seed int64) (uint64, uint64) {
		cfg, err := sc.Build(seed)
		if err != nil {
			t.Fatal(err)
		}
		fed, err := federation.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := fed.Run(sc.Duration)
		if err != nil {
			t.Fatal(err)
		}
		var ingress uint64
		for _, s := range res.Sites {
			ingress += s.SLO.Total() + s.Unresolved
		}
		return ingress, res.PartitionedEpochs + res.MissedAllocEpochs
	}
	inA, faultsA := run(100)
	inB, faultsB := run(101)
	// Different chaos realizations may shift which requests complete, but
	// at least one of the fault counters should differ across seeds while
	// total offered load stays in the same ballpark; and an identical
	// seed must reproduce exactly.
	inA2, faultsA2 := run(100)
	if inA != inA2 || faultsA != faultsA2 {
		t.Errorf("same chaos seed not reproducible: (%d,%d) vs (%d,%d)", inA, faultsA, inA2, faultsA2)
	}
	if faultsA == faultsB && inA == inB {
		t.Logf("warning: chaos seeds 100/101 produced identical runs (possible but unlikely)")
	}
}

func TestScenarioValidationRejections(t *testing.T) {
	base := func(mutate string) string { return mutate }
	cases := []struct {
		name, src, want string
	}{
		{"no name", base("duration: 1m\nfleet:\n  - name: a\n    nodes: 1\n    cpu-per-node: 1000\n    mem-per-node: 512\n    functions:\n      - spec: squeezenet\n        workload:\n          - rate: 1\n"), "no name"},
		{"no fleet", base("name: x\nduration: 1m\n"), "fleet is empty"},
		{"no duration", base("name: x\nfleet:\n  - name: a\n    nodes: 1\n    cpu-per-node: 1000\n    mem-per-node: 512\n    functions:\n      - spec: squeezenet\n        workload:\n          - rate: 1\n"), "duration"},
		{"unknown key", base("name: x\nduration: 1m\nbogus: 1\n"), "unknown scenario key"},
		{"unknown spec", base("name: x\nduration: 1m\nfleet:\n  - name: a\n    nodes: 1\n    cpu-per-node: 1000\n    mem-per-node: 512\n    functions:\n      - spec: nonesuch\n        workload:\n          - rate: 1\n"), "nonesuch"},
		{"bad placer", base("name: x\nduration: 1m\nplacer: warp-drive\nfleet:\n  - name: a\n    nodes: 1\n    cpu-per-node: 1000\n    mem-per-node: 512\n    functions:\n      - spec: squeezenet\n        workload:\n          - rate: 1\n"), "warp-drive"},
		{"bad election", base("name: x\nduration: 1m\ncoordinator:\n  election: dice\nfleet:\n  - name: a\n    nodes: 1\n    cpu-per-node: 1000\n    mem-per-node: 512\n    functions:\n      - spec: squeezenet\n        workload:\n          - rate: 1\n"), "dice"},
		{"fault out of range", base("name: x\nduration: 1m\nchaos:\n  faults:\n    - kind: site\n      site: 7\n      mean-up: 10s\n      mean-down: 5s\nfleet:\n  - name: a\n    nodes: 1\n    cpu-per-node: 1000\n    mem-per-node: 512\n    functions:\n      - spec: squeezenet\n        workload:\n          - rate: 1\n"), "out of range"},
		{"overlapping windows", base("name: x\nduration: 1m\nchaos:\n  faults:\n    - kind: coordinator\n      windows: [{start: 0s, end: 20s}, {start: 10s, end: 30s}]\nfleet:\n  - name: a\n    nodes: 1\n    cpu-per-node: 1000\n    mem-per-node: 512\n    functions:\n      - spec: squeezenet\n        workload:\n          - rate: 1\n"), "overlap"},
		{"matrix size", base("name: x\nduration: 1m\ntopology:\n  kind: matrix\n  matrix-ms:\n    - [0, 1]\n    - [1, 0]\nfleet:\n  - name: a\n    nodes: 1\n    cpu-per-node: 1000\n    mem-per-node: 512\n    functions:\n      - spec: squeezenet\n        workload:\n          - rate: 1\n"), "matrix is 2 rows for 1 sites"},
	}
	for _, c := range cases {
		_, err := Parse([]byte(c.src))
		if err == nil {
			t.Errorf("%s: accepted", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.want)
		}
	}
}

// TestCommittedScenariosLoad is the schema gate CI runs: every scenario
// file committed under scenarios/ must parse, validate, and build.
func TestCommittedScenariosLoad(t *testing.T) {
	dir := filepath.Join("..", "..", "scenarios")
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("scenarios directory: %v", err)
	}
	var files []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".yaml") {
			files = append(files, e.Name())
		}
	}
	sort.Strings(files)
	if len(files) == 0 {
		t.Fatal("no committed scenario files found")
	}
	seen := map[string]string{}
	for _, f := range files {
		sc, err := Load(filepath.Join(dir, f))
		if err != nil {
			t.Errorf("%s: %v", f, err)
			continue
		}
		if prev, dup := seen[sc.Name]; dup {
			t.Errorf("%s: scenario name %q already used by %s", f, sc.Name, prev)
		}
		seen[sc.Name] = f
		if _, err := sc.Build(-1); err != nil {
			t.Errorf("%s: build: %v", f, err)
		}
	}
}
