package scenario

import (
	"strings"
	"testing"
)

func mustParse(t *testing.T, src string) *node {
	t.Helper()
	n, err := parse([]byte(src))
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return n
}

func TestParseBlockMapping(t *testing.T) {
	n := mustParse(t, `
name: demo        # trailing comment
seed: 42
nested:
  a: 1s
  b: "quoted: value"
`)
	if n.kind != mapNode {
		t.Fatalf("root is %v, want mapping", n.kind)
	}
	if got := n.child("name").scalar; got != "demo" {
		t.Errorf("name = %q", got)
	}
	if got := n.child("seed").scalar; got != "42" {
		t.Errorf("seed = %q", got)
	}
	nested := n.child("nested")
	if nested.kind != mapNode || nested.child("a").scalar != "1s" {
		t.Fatalf("nested block mapping mis-parsed: %+v", nested)
	}
	if got := nested.child("b").scalar; got != "quoted: value" {
		t.Errorf("quoted scalar = %q", got)
	}
	if want := []string{"name", "seed", "nested"}; strings.Join(n.keys, ",") != strings.Join(want, ",") {
		t.Errorf("key order %v, want %v", n.keys, want)
	}
}

func TestParseBlockList(t *testing.T) {
	n := mustParse(t, `
faults:
  - kind: site
    site: 1
  - kind: link
    from: 0
    to: 2
plain:
  - one
  - two
`)
	faults := n.child("faults")
	if faults.kind != listNode || len(faults.items) != 2 {
		t.Fatalf("faults mis-parsed: %+v", faults)
	}
	if faults.items[0].child("site").scalar != "1" || faults.items[1].child("to").scalar != "2" {
		t.Errorf("list-item mappings mis-parsed: %+v %+v", faults.items[0], faults.items[1])
	}
	plain := n.child("plain")
	if len(plain.items) != 2 || plain.items[1].scalar != "two" {
		t.Errorf("scalar list mis-parsed: %+v", plain)
	}
}

func TestParseFlowValues(t *testing.T) {
	n := mustParse(t, `
sites: [1, 2, 3]
windows: [{start: 10s, end: 40s}, {start: 60s, end: 65s}]
empty: []
`)
	sites := n.child("sites")
	if len(sites.items) != 3 || sites.items[2].scalar != "3" {
		t.Fatalf("flow list mis-parsed: %+v", sites)
	}
	ws := n.child("windows")
	if len(ws.items) != 2 {
		t.Fatalf("nested flow mis-parsed: %+v", ws)
	}
	if ws.items[0].child("start").scalar != "10s" || ws.items[1].child("end").scalar != "65s" {
		t.Errorf("flow map values mis-parsed")
	}
	if len(n.child("empty").items) != 0 {
		t.Errorf("empty flow list mis-parsed")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"tab indent", "a:\n\tb: 1", "tab"},
		{"duplicate key", "a: 1\na: 2", "duplicate key"},
		{"unterminated flow", "a: [1, 2", "unterminated"},
		{"anchor", "a: &x 1", "unsupported YAML feature"},
		{"block scalar", "a: |", "unsupported YAML feature"},
		{"empty", "  \n# only a comment\n", "empty document"},
		{"bad nesting", "a: 1\n   b: 2", "unexpected indentation"},
	}
	for _, c := range cases {
		_, err := parse([]byte(c.src))
		if err == nil {
			t.Errorf("%s: parsed", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.want)
		}
	}
}

func TestErrorsCarryLineNumbers(t *testing.T) {
	_, err := parse([]byte("a: 1\nb: 2\nb: 3\n"))
	if err == nil || !strings.Contains(err.Error(), "line 3") {
		t.Errorf("duplicate-key error %v does not carry line 3", err)
	}
}
