// Package scenario is the declarative experiment surface: one file
// describes a complete federated run — fleet, topology, workload, chaos
// faults, and assertions — and a validating loader turns it into a
// federation.Config the experiment registry (or `lass-sim -scenario`)
// can execute by name.
//
// The format is a strict YAML subset (see yaml.go): unknown keys,
// malformed windows, out-of-range site references, and inconsistent
// topology sizes are load-time errors with file/line context, never
// silent runtime drift. Seed semantics are explicit: `seed` drives the
// platform (service times, arrivals), `chaos.seed` drives the failure
// processes, and replicated sweeps vary only the chaos seed so the
// workload stays pinned while failures land differently — the
// distributional-honesty contract.
package scenario

import (
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"lass/internal/allocation"
	"lass/internal/chaos"
	"lass/internal/cluster"
	"lass/internal/controller"
	"lass/internal/core"
	"lass/internal/federation"
	"lass/internal/functions"
	"lass/internal/workload"
)

// Function is one function deployment at a site: a catalog spec name,
// its pool floor, and its ingress workload (rate steps).
type Function struct {
	Spec          string
	Prewarm       int
	MinContainers int
	Steps         []workload.Step
}

// Site is one edge site: cluster shape plus its function deployments.
type Site struct {
	Name       string
	Nodes      int
	CPUPerNode int64
	MemPerNode int64
	Functions  []Function
}

// Topology declares the inter-site latency model: a named generator
// (ring/star) with one RTT parameter, or an explicit matrix.
type Topology struct {
	Kind string // "ring", "star", or "matrix"
	RTT  time.Duration
	// Matrix rows are one-way latencies; required iff Kind == "matrix".
	Matrix [][]time.Duration
}

// Coordinator declares the allocator seat: election mode and (under
// fixed election) the hosting site.
type Coordinator struct {
	Election string // "fixed" or "centroid"
	Site     int
}

// Assertions are the scenario's pass/fail contract, checked against the
// run's Result after it completes. Zero values disable a check.
type Assertions struct {
	// MaxViolationRate bounds federation-wide violations (unresolved
	// counted as misses) as a fraction of observed requests.
	MaxViolationRate float64
	// MinAllocEpochs requires global governance to have engaged.
	MinAllocEpochs uint64
	// MinMissedEpochs requires the chaos processes to have actually
	// silenced the coordinator at least this often.
	MinMissedEpochs uint64
	// RequireLeaseExpirations requires at least one lease fallback.
	RequireLeaseExpirations bool
	// RequirePartitionedEpochs requires at least one partial partition.
	RequirePartitionedEpochs bool
	// MinReclaimedCPU requires cross-site reclaim to have moved at least
	// this many millicores over the run (hierarchical scenarios only).
	MinReclaimedCPU uint64
}

// Chaos is the failure declaration: a seed for the stochastic processes
// and the fault list.
type Chaos struct {
	Seed   uint64
	Faults []chaos.Fault
}

// HierarchyGroup is one node of the scenario's capacity tree: an internal
// group carrying nested groups, or a metro carrying site names. Exactly
// one of Groups/Sites must be set (validated through the allocation
// layer's tree checks).
type HierarchyGroup struct {
	Name   string
	Weight float64 // 0 = default weight 1
	Groups []HierarchyGroup
	Sites  []string
}

// RTTClasses optionally derives the scenario's topology from its
// hierarchy: one per-level one-way latency class (zero entries select the
// federation defaults). Mutually exclusive with an explicit `topology:`
// block.
type RTTClasses struct {
	IntraMetro  time.Duration
	IntraRegion time.Duration
	CrossRegion time.Duration
}

// Hierarchy is the scenario's region → metro → site quota tree plus the
// reclaim knobs riding on it (federation.Config.Hierarchy / Reclaim /
// ReclaimLatency).
type Hierarchy struct {
	Reclaim        bool
	ReclaimLatency time.Duration
	RTTClasses     *RTTClasses
	Groups         []HierarchyGroup
}

// tree lowers the declarative groups to the allocation layer's form under
// an implicit root.
func (h *Hierarchy) tree() *allocation.Hierarchy {
	root := &allocation.Group{ID: "::root"}
	for _, g := range h.Groups {
		root.Children = append(root.Children, g.tree())
	}
	return &allocation.Hierarchy{Root: root}
}

func (g HierarchyGroup) tree() *allocation.Group {
	out := &allocation.Group{ID: g.Name, Weight: g.Weight,
		Sites: append([]string(nil), g.Sites...)}
	for _, c := range g.Groups {
		out.Children = append(out.Children, c.tree())
	}
	return out
}

// Scenario is one parsed, validated scenario file.
type Scenario struct {
	Name        string
	Description string
	Seed        uint64
	Duration    time.Duration
	ResponseSLO time.Duration
	Placer      string
	// GlobalFairShare enables the federation-wide allocator; AllocEpoch
	// and GrantLease tune it (GrantLease < 0 = frozen grants).
	GlobalFairShare bool
	Admission       bool
	AllocEpoch      time.Duration
	GrantLease      time.Duration
	grantLeaseSet   bool
	Coordinator     Coordinator
	Topology        *Topology
	Hierarchy       *Hierarchy
	Fleet           []Site
	Chaos           Chaos
	Assertions      Assertions
}

// siteNames returns each fleet site's effective name — the federation's
// edge-i default when the scenario leaves a name unset. These are the
// names a hierarchy block must cover.
func (sc *Scenario) siteNames() []string {
	out := make([]string, len(sc.Fleet))
	for i, s := range sc.Fleet {
		out[i] = s.Name
		if out[i] == "" {
			out[i] = fmt.Sprintf("edge-%d", i)
		}
	}
	return out
}

// Load reads and validates one scenario file.
func Load(path string) (*Scenario, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	sc, err := Parse(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", filepath.Base(path), err)
	}
	return sc, nil
}

// Parse parses and validates one scenario document.
func Parse(data []byte) (*Scenario, error) {
	root, err := parse(data)
	if err != nil {
		return nil, err
	}
	d := &decoder{}
	sc := d.scenario(root)
	if d.err != nil {
		return nil, d.err
	}
	if err := sc.validate(); err != nil {
		return nil, err
	}
	return sc, nil
}

// decoder walks the node tree with strict unknown-key checking; the
// first error sticks and short-circuits the rest.
type decoder struct {
	err error
}

func (d *decoder) fail(line int, format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("line %d: %s", line, fmt.Sprintf(format, args...))
	}
}

// object checks n is a mapping containing only the allowed keys.
func (d *decoder) object(n *node, what string, allowed ...string) bool {
	if d.err != nil {
		return false
	}
	if n.kind != mapNode {
		d.fail(n.line, "%s must be a mapping, got a %v", what, n.kind)
		return false
	}
	for _, k := range n.keys {
		found := false
		for _, a := range allowed {
			if k == a {
				found = true
				break
			}
		}
		if !found {
			d.fail(n.children[k].line, "unknown %s key %q (allowed: %s)", what, k, strings.Join(allowed, ", "))
			return false
		}
	}
	return true
}

func (d *decoder) scalarOf(n *node, key, what string) (string, int, bool) {
	c := n.child(key)
	if c == nil || d.err != nil {
		return "", 0, false
	}
	if c.kind != scalarNode {
		d.fail(c.line, "%s %q must be a scalar", what, key)
		return "", 0, false
	}
	return c.scalar, c.line, true
}

func (d *decoder) str(n *node, key, what string) string {
	s, _, _ := d.scalarOf(n, key, what)
	return s
}

func (d *decoder) intval(n *node, key, what string) int {
	s, line, ok := d.scalarOf(n, key, what)
	if !ok {
		return 0
	}
	v, err := strconv.Atoi(s)
	if err != nil {
		d.fail(line, "%s %q: %q is not an integer", what, key, s)
	}
	return v
}

func (d *decoder) uintval(n *node, key, what string) uint64 {
	s, line, ok := d.scalarOf(n, key, what)
	if !ok {
		return 0
	}
	v, err := strconv.ParseUint(s, 10, 64)
	if err != nil {
		d.fail(line, "%s %q: %q is not a non-negative integer", what, key, s)
	}
	return v
}

func (d *decoder) floatval(n *node, key, what string) float64 {
	s, line, ok := d.scalarOf(n, key, what)
	if !ok {
		return 0
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		d.fail(line, "%s %q: %q is not a number", what, key, s)
	}
	return v
}

func (d *decoder) boolval(n *node, key, what string) bool {
	s, line, ok := d.scalarOf(n, key, what)
	if !ok {
		return false
	}
	switch s {
	case "true":
		return true
	case "false":
		return false
	}
	d.fail(line, "%s %q: %q is not true/false", what, key, s)
	return false
}

func (d *decoder) durval(n *node, key, what string) time.Duration {
	s, line, ok := d.scalarOf(n, key, what)
	if !ok {
		return 0
	}
	v, err := time.ParseDuration(s)
	if err != nil {
		d.fail(line, "%s %q: %q is not a duration (e.g. 30s, 5ms)", what, key, s)
	}
	return v
}

func (d *decoder) list(n *node, key, what string) []*node {
	c := n.child(key)
	if c == nil || d.err != nil {
		return nil
	}
	if c.kind != listNode {
		d.fail(c.line, "%s %q must be a list", what, key)
		return nil
	}
	return c.items
}

func (d *decoder) scenario(root *node) *Scenario {
	sc := &Scenario{}
	if !d.object(root, "scenario",
		"name", "description", "seed", "duration", "response-slo", "placer",
		"global-fairshare", "admission", "alloc-epoch", "grant-lease",
		"coordinator", "topology", "hierarchy", "fleet", "chaos", "assertions") {
		return sc
	}
	sc.Name = d.str(root, "name", "scenario")
	sc.Description = d.str(root, "description", "scenario")
	if root.child("seed") != nil {
		sc.Seed = d.uintval(root, "seed", "scenario")
	}
	if root.child("duration") != nil {
		sc.Duration = d.durval(root, "duration", "scenario")
	}
	if root.child("response-slo") != nil {
		sc.ResponseSLO = d.durval(root, "response-slo", "scenario")
	}
	sc.Placer = d.str(root, "placer", "scenario")
	if root.child("global-fairshare") != nil {
		sc.GlobalFairShare = d.boolval(root, "global-fairshare", "scenario")
	}
	if root.child("admission") != nil {
		sc.Admission = d.boolval(root, "admission", "scenario")
	}
	if root.child("alloc-epoch") != nil {
		sc.AllocEpoch = d.durval(root, "alloc-epoch", "scenario")
	}
	if c := root.child("grant-lease"); c != nil {
		sc.grantLeaseSet = true
		if c.kind == scalarNode && c.scalar == "frozen" {
			sc.GrantLease = -1
		} else {
			sc.GrantLease = d.durval(root, "grant-lease", "scenario")
		}
	}
	if c := root.child("coordinator"); c != nil {
		sc.Coordinator = d.coordinator(c)
	}
	if c := root.child("topology"); c != nil {
		sc.Topology = d.topology(c)
	}
	if c := root.child("hierarchy"); c != nil {
		sc.Hierarchy = d.hierarchy(c)
	}
	for _, item := range d.list(root, "fleet", "scenario") {
		sc.Fleet = append(sc.Fleet, d.site(item))
	}
	if c := root.child("chaos"); c != nil {
		sc.Chaos = d.chaos(c)
	}
	if c := root.child("assertions"); c != nil {
		sc.Assertions = d.assertions(c)
	}
	return sc
}

func (d *decoder) coordinator(n *node) Coordinator {
	var c Coordinator
	if !d.object(n, "coordinator", "election", "site") {
		return c
	}
	c.Election = d.str(n, "election", "coordinator")
	if n.child("site") != nil {
		c.Site = d.intval(n, "site", "coordinator")
	}
	return c
}

func (d *decoder) topology(n *node) *Topology {
	t := &Topology{}
	if !d.object(n, "topology", "kind", "rtt", "matrix-ms") {
		return t
	}
	t.Kind = d.str(n, "kind", "topology")
	if n.child("rtt") != nil {
		t.RTT = d.durval(n, "rtt", "topology")
	}
	for _, row := range d.list(n, "matrix-ms", "topology") {
		if d.err != nil {
			break
		}
		if row.kind != listNode {
			d.fail(row.line, "topology matrix-ms rows must be lists of milliseconds")
			break
		}
		var r []time.Duration
		for _, cell := range row.items {
			if cell.kind != scalarNode {
				d.fail(cell.line, "topology matrix-ms cells must be numbers")
				break
			}
			ms, err := strconv.ParseFloat(cell.scalar, 64)
			if err != nil {
				d.fail(cell.line, "topology matrix-ms cell %q is not a number", cell.scalar)
				break
			}
			r = append(r, time.Duration(ms*float64(time.Millisecond)))
		}
		t.Matrix = append(t.Matrix, r)
	}
	return t
}

func (d *decoder) hierarchy(n *node) *Hierarchy {
	h := &Hierarchy{}
	if !d.object(n, "hierarchy", "reclaim", "reclaim-latency", "rtt-classes", "groups") {
		return h
	}
	if n.child("reclaim") != nil {
		h.Reclaim = d.boolval(n, "reclaim", "hierarchy")
	}
	if n.child("reclaim-latency") != nil {
		h.ReclaimLatency = d.durval(n, "reclaim-latency", "hierarchy")
	}
	if c := n.child("rtt-classes"); c != nil {
		rc := &RTTClasses{}
		if d.object(c, "rtt-classes", "intra-metro", "intra-region", "cross-region") {
			if c.child("intra-metro") != nil {
				rc.IntraMetro = d.durval(c, "intra-metro", "rtt-classes")
			}
			if c.child("intra-region") != nil {
				rc.IntraRegion = d.durval(c, "intra-region", "rtt-classes")
			}
			if c.child("cross-region") != nil {
				rc.CrossRegion = d.durval(c, "cross-region", "rtt-classes")
			}
		}
		h.RTTClasses = rc
	}
	for _, item := range d.list(n, "groups", "hierarchy") {
		h.Groups = append(h.Groups, d.group(item))
	}
	return h
}

func (d *decoder) group(n *node) HierarchyGroup {
	var g HierarchyGroup
	if !d.object(n, "hierarchy group", "name", "weight", "groups", "sites") {
		return g
	}
	g.Name = d.str(n, "name", "hierarchy group")
	if n.child("weight") != nil {
		g.Weight = d.floatval(n, "weight", "hierarchy group")
	}
	for _, item := range d.list(n, "groups", "hierarchy group") {
		g.Groups = append(g.Groups, d.group(item))
	}
	for _, m := range d.list(n, "sites", "hierarchy group") {
		if m.kind != scalarNode {
			d.fail(m.line, "hierarchy group sites must be site names")
			break
		}
		g.Sites = append(g.Sites, m.scalar)
	}
	return g
}

func (d *decoder) site(n *node) Site {
	var s Site
	if !d.object(n, "fleet site", "name", "nodes", "cpu-per-node", "mem-per-node", "functions") {
		return s
	}
	s.Name = d.str(n, "name", "fleet site")
	s.Nodes = d.intval(n, "nodes", "fleet site")
	s.CPUPerNode = int64(d.intval(n, "cpu-per-node", "fleet site"))
	s.MemPerNode = int64(d.intval(n, "mem-per-node", "fleet site"))
	for _, item := range d.list(n, "functions", "fleet site") {
		s.Functions = append(s.Functions, d.function(item))
	}
	return s
}

func (d *decoder) function(n *node) Function {
	var f Function
	if !d.object(n, "function", "spec", "prewarm", "min-containers", "workload") {
		return f
	}
	f.Spec = d.str(n, "spec", "function")
	if n.child("prewarm") != nil {
		f.Prewarm = d.intval(n, "prewarm", "function")
	}
	if n.child("min-containers") != nil {
		f.MinContainers = d.intval(n, "min-containers", "function")
	}
	for _, item := range d.list(n, "workload", "function") {
		if !d.object(item, "workload step", "start", "rate") {
			break
		}
		step := workload.Step{Rate: d.floatval(item, "rate", "workload step")}
		if item.child("start") != nil {
			step.Start = d.durval(item, "start", "workload step")
		}
		f.Steps = append(f.Steps, step)
	}
	return f
}

func (d *decoder) chaos(n *node) Chaos {
	var c Chaos
	if !d.object(n, "chaos", "seed", "faults") {
		return c
	}
	if n.child("seed") != nil {
		c.Seed = d.uintval(n, "seed", "chaos")
	}
	for _, item := range d.list(n, "faults", "chaos") {
		c.Faults = append(c.Faults, d.fault(item))
	}
	return c
}

func (d *decoder) fault(n *node) chaos.Fault {
	var f chaos.Fault
	if !d.object(n, "fault",
		"kind", "site", "from", "to", "bidirectional", "sites", "lag",
		"windows", "mean-up", "mean-down", "start-down") {
		return f
	}
	switch kind := d.str(n, "kind", "fault"); kind {
	case "coordinator":
		f.Kind = chaos.FaultCoordinator
	case "site":
		f.Kind = chaos.FaultSite
	case "link":
		f.Kind = chaos.FaultLink
	case "group":
		f.Kind = chaos.FaultGroup
	default:
		d.fail(n.line, "fault kind %q is not coordinator/site/link/group", kind)
		return f
	}
	if n.child("site") != nil {
		f.Site = d.intval(n, "site", "fault")
	}
	if n.child("from") != nil {
		f.From = d.intval(n, "from", "fault")
	}
	if n.child("to") != nil {
		f.To = d.intval(n, "to", "fault")
	}
	if n.child("bidirectional") != nil {
		f.Bidirectional = d.boolval(n, "bidirectional", "fault")
	}
	for _, m := range d.list(n, "sites", "fault") {
		if m.kind != scalarNode {
			d.fail(m.line, "fault group members must be site indices")
			break
		}
		v, err := strconv.Atoi(m.scalar)
		if err != nil {
			d.fail(m.line, "fault group member %q is not a site index", m.scalar)
			break
		}
		f.Sites = append(f.Sites, v)
	}
	if n.child("lag") != nil {
		f.Lag = d.durval(n, "lag", "fault")
	}
	for _, w := range d.list(n, "windows", "fault") {
		if !d.object(w, "window", "start", "end") {
			break
		}
		f.Windows = append(f.Windows, chaos.Window{
			Start: d.durval(w, "start", "window"),
			End:   d.durval(w, "end", "window"),
		})
	}
	if n.child("mean-up") != nil || n.child("mean-down") != nil || n.child("start-down") != nil {
		ge := &chaos.GilbertElliott{
			MeanUp:   d.durval(n, "mean-up", "fault"),
			MeanDown: d.durval(n, "mean-down", "fault"),
		}
		if n.child("start-down") != nil {
			ge.StartDown = d.boolval(n, "start-down", "fault")
		}
		f.GE = ge
	}
	return f
}

func (d *decoder) assertions(n *node) Assertions {
	var a Assertions
	if !d.object(n, "assertions",
		"max-violation-rate", "min-alloc-epochs", "min-missed-epochs",
		"require-lease-expirations", "require-partitioned-epochs",
		"min-reclaimed-cpu") {
		return a
	}
	if n.child("max-violation-rate") != nil {
		a.MaxViolationRate = d.floatval(n, "max-violation-rate", "assertions")
	}
	if n.child("min-alloc-epochs") != nil {
		a.MinAllocEpochs = d.uintval(n, "min-alloc-epochs", "assertions")
	}
	if n.child("min-missed-epochs") != nil {
		a.MinMissedEpochs = d.uintval(n, "min-missed-epochs", "assertions")
	}
	if n.child("require-lease-expirations") != nil {
		a.RequireLeaseExpirations = d.boolval(n, "require-lease-expirations", "assertions")
	}
	if n.child("require-partitioned-epochs") != nil {
		a.RequirePartitionedEpochs = d.boolval(n, "require-partitioned-epochs", "assertions")
	}
	if n.child("min-reclaimed-cpu") != nil {
		a.MinReclaimedCPU = d.uintval(n, "min-reclaimed-cpu", "assertions")
	}
	return a
}

// validate checks cross-field consistency the decoder cannot see
// key-by-key: fleet present, topology size, placer/election names,
// chaos fault targets in range (chaos.New revalidates, but here the
// error carries scenario context before any engine is built).
func (sc *Scenario) validate() error {
	if sc.Name == "" {
		return fmt.Errorf("scenario has no name")
	}
	if sc.Duration <= 0 {
		return fmt.Errorf("scenario %q: duration must be positive", sc.Name)
	}
	if len(sc.Fleet) == 0 {
		return fmt.Errorf("scenario %q: fleet is empty", sc.Name)
	}
	seenSite := make(map[string]bool, len(sc.Fleet))
	for i, s := range sc.Fleet {
		if s.Name != "" && seenSite[s.Name] {
			return fmt.Errorf("scenario %q: duplicate fleet site name %q", sc.Name, s.Name)
		}
		seenSite[s.Name] = true
		if s.Nodes <= 0 || s.CPUPerNode <= 0 || s.MemPerNode <= 0 {
			return fmt.Errorf("scenario %q: fleet site %d needs positive nodes/cpu-per-node/mem-per-node", sc.Name, i)
		}
		if len(s.Functions) == 0 {
			return fmt.Errorf("scenario %q: fleet site %d deploys no functions", sc.Name, i)
		}
		for _, f := range s.Functions {
			if f.Spec == "" {
				return fmt.Errorf("scenario %q: fleet site %d has a function without a spec", sc.Name, i)
			}
			if _, err := functions.ByName(f.Spec); err != nil {
				return fmt.Errorf("scenario %q: fleet site %d: %w", sc.Name, i, err)
			}
			if len(f.Steps) == 0 {
				return fmt.Errorf("scenario %q: fleet site %d function %q has no workload", sc.Name, i, f.Spec)
			}
		}
	}
	switch sc.Coordinator.Election {
	case "", "fixed", "centroid":
	default:
		return fmt.Errorf("scenario %q: coordinator election %q is not fixed/centroid", sc.Name, sc.Coordinator.Election)
	}
	if sc.Coordinator.Site < 0 || sc.Coordinator.Site >= len(sc.Fleet) {
		return fmt.Errorf("scenario %q: coordinator site %d out of range [0, %d)", sc.Name, sc.Coordinator.Site, len(sc.Fleet))
	}
	if sc.Topology != nil {
		switch sc.Topology.Kind {
		case "ring", "star":
			if len(sc.Topology.Matrix) != 0 {
				return fmt.Errorf("scenario %q: topology kind %q does not take a matrix", sc.Name, sc.Topology.Kind)
			}
		case "matrix":
			if len(sc.Topology.Matrix) != len(sc.Fleet) {
				return fmt.Errorf("scenario %q: topology matrix is %d rows for %d sites", sc.Name, len(sc.Topology.Matrix), len(sc.Fleet))
			}
			for i, row := range sc.Topology.Matrix {
				if len(row) != len(sc.Fleet) {
					return fmt.Errorf("scenario %q: topology matrix row %d has %d cells for %d sites", sc.Name, i, len(row), len(sc.Fleet))
				}
			}
		default:
			return fmt.Errorf("scenario %q: topology kind %q is not ring/star/matrix", sc.Name, sc.Topology.Kind)
		}
	}
	if sc.Placer != "" {
		if _, err := federation.PlacerByName(sc.Placer); err != nil {
			return fmt.Errorf("scenario %q: %w", sc.Name, err)
		}
	}
	if sc.Hierarchy != nil {
		if len(sc.Hierarchy.Groups) == 0 {
			return fmt.Errorf("scenario %q: hierarchy declares no groups", sc.Name)
		}
		if sc.Hierarchy.Reclaim && !sc.GlobalFairShare {
			return fmt.Errorf("scenario %q: hierarchy reclaim requires global-fairshare: true", sc.Name)
		}
		if sc.Hierarchy.RTTClasses != nil && sc.Topology != nil {
			return fmt.Errorf("scenario %q: hierarchy rtt-classes and an explicit topology are mutually exclusive", sc.Name)
		}
		tree := sc.Hierarchy.tree()
		if err := tree.Validate(); err != nil {
			return fmt.Errorf("scenario %q: %w", sc.Name, err)
		}
		names := sc.siteNames()
		if err := tree.Covers(names); err != nil {
			return fmt.Errorf("scenario %q: %w", sc.Name, err)
		}
		// Covers allows superset trees (federation configs may share one
		// hierarchy across fleets); a scenario is self-contained, so a
		// group naming a site the fleet does not deploy is a typo.
		fleet := make(map[string]bool, len(names))
		for _, n := range names {
			fleet[n] = true
		}
		var stray func(g HierarchyGroup) error
		stray = func(g HierarchyGroup) error {
			for _, s := range g.Sites {
				if !fleet[s] {
					return fmt.Errorf("scenario %q: hierarchy group %q names unknown site %q", sc.Name, g.Name, s)
				}
			}
			for _, c := range g.Groups {
				if err := stray(c); err != nil {
					return err
				}
			}
			return nil
		}
		for _, g := range sc.Hierarchy.Groups {
			if err := stray(g); err != nil {
				return err
			}
		}
	}
	// Dry-build the chaos engine so fault errors surface at load time.
	if len(sc.Chaos.Faults) > 0 {
		if _, err := chaos.New(chaos.Config{Sites: len(sc.Fleet), Seed: sc.Chaos.Seed, Faults: sc.Chaos.Faults}); err != nil {
			return fmt.Errorf("scenario %q: %w", sc.Name, err)
		}
	}
	return nil
}

// Build assembles the federation config the scenario describes. The
// chaos seed can be overridden (replicate sweeps pass Seed^replicate
// mixes); chaosSeed < 0 keeps the file's seed.
func (sc *Scenario) Build(chaosSeed int64) (federation.Config, error) {
	cfg := federation.Config{
		GlobalFairShare:       sc.GlobalFairShare,
		AllocEpoch:            sc.AllocEpoch,
		ResponseSLO:           sc.ResponseSLO,
		Seed:                  sc.Seed,
		Coordinator:           sc.Coordinator.Site,
		OffloadAwareAdmission: sc.Admission,
	}
	if sc.grantLeaseSet {
		cfg.GrantLease = sc.GrantLease
	}
	if sc.Coordinator.Election == "centroid" {
		cfg.CoordinatorElection = federation.RTTCentroid
	}
	placer := sc.Placer
	if placer == "" {
		placer = "never"
	}
	p, err := federation.PlacerByName(placer)
	if err != nil {
		return cfg, err
	}
	cfg.Placer = p
	for i, s := range sc.Fleet {
		spec := core.Config{
			Cluster: cluster.Config{
				Site:       s.Name,
				Nodes:      s.Nodes,
				CPUPerNode: s.CPUPerNode,
				MemPerNode: s.MemPerNode,
				Policy:     cluster.WorstFit,
			},
			Controller: controller.Config{MinContainers: 1},
			Seed:       sc.Seed ^ uint64(0x5ce0+i),
		}
		for _, f := range s.Functions {
			fspec, err := functions.ByName(f.Spec)
			if err != nil {
				return cfg, err
			}
			wl, err := workload.NewSteps(f.Steps)
			if err != nil {
				return cfg, fmt.Errorf("scenario %q: site %d %s workload: %w", sc.Name, i, f.Spec, err)
			}
			fc := core.FunctionConfig{Spec: fspec, Workload: wl, Prewarm: f.Prewarm}
			if f.MinContainers > 0 {
				spec.Controller.MinContainers = f.MinContainers
			}
			spec.Functions = append(spec.Functions, fc)
		}
		cfg.Sites = append(cfg.Sites, spec)
	}
	if sc.Topology != nil {
		switch sc.Topology.Kind {
		case "ring":
			cfg.PeerRTT = sc.Topology.RTT
		case "star":
			topo, err := federation.Star(len(sc.Fleet), sc.Topology.RTT)
			if err != nil {
				return cfg, err
			}
			cfg.Topology = topo
		case "matrix":
			topo, err := federation.NewTopology(sc.Topology.Matrix)
			if err != nil {
				return cfg, err
			}
			cfg.Topology = topo
		}
	}
	if h := sc.Hierarchy; h != nil {
		tree := h.tree()
		cfg.Hierarchy = tree
		cfg.Reclaim = h.Reclaim
		cfg.ReclaimLatency = h.ReclaimLatency
		if rc := h.RTTClasses; rc != nil {
			topo, err := federation.Hierarchical(sc.siteNames(), tree.Levels(), federation.RTTClasses{
				IntraMetro:  rc.IntraMetro,
				IntraRegion: rc.IntraRegion,
				CrossRegion: rc.CrossRegion,
			})
			if err != nil {
				return cfg, err
			}
			cfg.Topology = topo
		}
	}
	if len(sc.Chaos.Faults) > 0 {
		seed := sc.Chaos.Seed
		if chaosSeed >= 0 {
			seed = uint64(chaosSeed)
		}
		eng, err := chaos.New(chaos.Config{Sites: len(sc.Fleet), Seed: seed, Faults: sc.Chaos.Faults})
		if err != nil {
			return cfg, err
		}
		cfg.Faults = eng
	}
	return cfg, nil
}

// Check evaluates the scenario's assertions against a finished run.
func (sc *Scenario) Check(res *federation.Result) error {
	a := sc.Assertions
	if a.MaxViolationRate > 0 {
		var viol, total uint64
		for _, s := range res.Sites {
			viol += s.Violations()
			total += s.SLO.Total() + s.Unresolved
		}
		if total > 0 {
			rate := float64(viol) / float64(total)
			if rate > a.MaxViolationRate {
				return fmt.Errorf("scenario %q: violation rate %.4f exceeds max %.4f", sc.Name, rate, a.MaxViolationRate)
			}
		}
	}
	if res.AllocEpochs < a.MinAllocEpochs {
		return fmt.Errorf("scenario %q: %d allocation epochs, want at least %d", sc.Name, res.AllocEpochs, a.MinAllocEpochs)
	}
	if res.MissedAllocEpochs < a.MinMissedEpochs {
		return fmt.Errorf("scenario %q: %d missed epochs, want at least %d", sc.Name, res.MissedAllocEpochs, a.MinMissedEpochs)
	}
	if a.RequireLeaseExpirations && res.GrantLeaseExpirations == 0 {
		return fmt.Errorf("scenario %q: no grant-lease expirations", sc.Name)
	}
	if a.RequirePartitionedEpochs && res.PartitionedEpochs == 0 {
		return fmt.Errorf("scenario %q: no partitioned epochs", sc.Name)
	}
	if res.Reclaimed < a.MinReclaimedCPU {
		return fmt.Errorf("scenario %q: %d millicores reclaimed, want at least %d", sc.Name, res.Reclaimed, a.MinReclaimedCPU)
	}
	return nil
}
