package scenario

import (
	"strings"
	"testing"
	"time"
)

const hierScenario = `
name: unit-hier
duration: 1m
placer: metro-affine
global-fairshare: true
hierarchy:
  reclaim: true
  reclaim-latency: 4ms
  rtt-classes:
    intra-metro: 2ms
    intra-region: 10ms
    cross-region: 40ms
  groups:
    - name: west
      groups:
        - name: m0
          sites: [a, b]
        - name: m1
          weight: 2
          sites: [c]
    - name: east
      groups:
        - name: m2
          sites: [d]
fleet:
  - name: a
    nodes: 1
    cpu-per-node: 1000
    mem-per-node: 512
    functions:
      - spec: squeezenet
        workload:
          - rate: 5
  - name: b
    nodes: 1
    cpu-per-node: 1000
    mem-per-node: 512
    functions:
      - spec: squeezenet
        workload:
          - rate: 5
  - name: c
    nodes: 1
    cpu-per-node: 1000
    mem-per-node: 512
    functions:
      - spec: squeezenet
        workload:
          - rate: 5
  - name: d
    nodes: 1
    cpu-per-node: 1000
    mem-per-node: 512
    functions:
      - spec: squeezenet
        workload:
          - rate: 5
`

// TestParseHierarchyScenario: the hierarchy block round-trips into a
// validated quota tree, the reclaim knobs reach the federation config,
// and rtt-classes derive the three-class latency matrix from the tree.
func TestParseHierarchyScenario(t *testing.T) {
	sc, err := Parse([]byte(hierScenario))
	if err != nil {
		t.Fatal(err)
	}
	h := sc.Hierarchy
	if h == nil {
		t.Fatal("hierarchy block not parsed")
	}
	if !h.Reclaim || h.ReclaimLatency != 4*time.Millisecond {
		t.Errorf("reclaim knobs mis-parsed: %+v", h)
	}
	if h.RTTClasses == nil || h.RTTClasses.IntraRegion != 10*time.Millisecond {
		t.Errorf("rtt-classes mis-parsed: %+v", h.RTTClasses)
	}
	if len(h.Groups) != 2 || len(h.Groups[0].Groups) != 2 || h.Groups[0].Groups[1].Weight != 2 {
		t.Errorf("groups mis-parsed: %+v", h.Groups)
	}
	cfg, err := sc.Build(-1)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Hierarchy == nil || !cfg.Reclaim || cfg.ReclaimLatency != 4*time.Millisecond {
		t.Fatalf("hierarchy not wired into the federation config: %+v", cfg.Hierarchy)
	}
	levels := cfg.Hierarchy.Levels()
	if levels["a"].Metro != levels["b"].Metro || levels["a"].Metro == levels["c"].Metro {
		t.Errorf("metro assignment wrong: %+v", levels)
	}
	if levels["a"].Region != levels["c"].Region || levels["a"].Region == levels["d"].Region {
		t.Errorf("region assignment wrong: %+v", levels)
	}
	if cfg.Topology == nil {
		t.Fatal("rtt-classes produced no topology")
	}
	ab, ac, ad := cfg.Topology.RTT(0, 1), cfg.Topology.RTT(0, 2), cfg.Topology.RTT(0, 3)
	if ab != 2*time.Millisecond || ac != 10*time.Millisecond || ad != 40*time.Millisecond {
		t.Errorf("derived RTTs (a→b,a→c,a→d) = (%v,%v,%v), want (2ms,10ms,40ms)", ab, ac, ad)
	}
}

// replace patches one marker line of the valid hierarchy fixture so each
// rejection case stays readable as a diff from a known-good file.
func replaceLine(t *testing.T, old, new string) string {
	t.Helper()
	if !strings.Contains(hierScenario, old) {
		t.Fatalf("fixture lost marker %q", old)
	}
	return strings.Replace(hierScenario, old, new, 1)
}

func TestHierarchyValidationRejections(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"unknown hierarchy key", replaceLine(t, "  reclaim: true", "  preempt: true"), "unknown hierarchy key"},
		{"unknown rtt class", replaceLine(t, "    intra-metro: 2ms", "    same-rack: 2ms"), "unknown rtt-classes key"},
		{"unknown group key", replaceLine(t, "          sites: [d]", "          members: [d]"), "unknown hierarchy group key"},
		{"stray site", replaceLine(t, "          sites: [c]", "          sites: [c, zz]"), `names unknown site "zz"`},
		{"uncovered fleet site", hierScenario + "  - name: e\n    nodes: 1\n    cpu-per-node: 1000\n    mem-per-node: 512\n    functions:\n      - spec: squeezenet\n        workload:\n          - rate: 5\n", `site "e" not assigned`},
		{"site in two groups", replaceLine(t, "          sites: [d]", "          sites: [d, c]"), "more than one hierarchy group"},
		{"duplicate group name", replaceLine(t, "        - name: m2", "        - name: m0"), "duplicate"},
		{"negative weight", replaceLine(t, "          weight: 2", "          weight: -1"), "negative weight"},
		{"group with sites and groups", replaceLine(t, "    - name: east", "    - name: east\n      sites: [d]"), "both children and sites"},
		{"reclaim without fair share", replaceLine(t, "global-fairshare: true", "global-fairshare: false"), "requires global-fairshare"},
		{"rtt-classes with topology", replaceLine(t, "placer: metro-affine", "placer: metro-affine\ntopology:\n  kind: ring\n  rtt: 5ms"), "mutually exclusive"},
		{"duplicate fleet site", replaceLine(t, "  - name: d", "  - name: c"), "duplicate fleet site"},
	}
	for _, c := range cases {
		_, err := Parse([]byte(c.src))
		if err == nil {
			t.Errorf("%s: accepted", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.want)
		}
	}
}

// TestUnknownKeysCarryLineNumbers pins the strict-subset contract at
// every nesting level: an unknown key is rejected with the offending
// file line, not silently dropped and not reported at the top.
func TestUnknownKeysCarryLineNumbers(t *testing.T) {
	cases := []struct {
		name, src, wantKey string
		wantLine           string
	}{
		{"top level",
			"name: x\nduration: 1m\nturbo: on\n",
			"unknown scenario key \"turbo\"", "line 3"},
		{"fleet site",
			"name: x\nduration: 1m\nfleet:\n  - name: a\n    racks: 2\n",
			"unknown fleet site key \"racks\"", "line 5"},
		{"function",
			"name: x\nduration: 1m\nfleet:\n  - name: a\n    nodes: 1\n    cpu-per-node: 1000\n    mem-per-node: 512\n    functions:\n      - spec: squeezenet\n        gpu: 1\n",
			"unknown function key \"gpu\"", "line 10"},
		{"hierarchy",
			"name: x\nduration: 1m\nhierarchy:\n  borrow: true\n",
			"unknown hierarchy key \"borrow\"", "line 4"},
	}
	for _, c := range cases {
		_, err := Parse([]byte(c.src))
		if err == nil {
			t.Errorf("%s: accepted", c.name)
			continue
		}
		for _, want := range []string{c.wantKey, c.wantLine} {
			if !strings.Contains(err.Error(), want) {
				t.Errorf("%s: error %q does not mention %q", c.name, err, want)
			}
		}
	}
}
