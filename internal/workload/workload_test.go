package workload

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"lass/internal/xrand"
)

func TestStaticScheduleRate(t *testing.T) {
	s, err := NewStatic(25)
	if err != nil {
		t.Fatal(err)
	}
	for _, tt := range []time.Duration{0, time.Second, time.Hour} {
		if r := s.RateAt(tt); r != 25 {
			t.Errorf("rate at %v = %v", tt, r)
		}
	}
	if s.MaxRate() != 25 {
		t.Errorf("max=%v", s.MaxRate())
	}
}

func TestStepsScheduleRates(t *testing.T) {
	s, err := NewSteps([]Step{
		{Start: 0, Rate: 5},
		{Start: time.Minute, Rate: 10},
		{Start: 2 * time.Minute, Rate: 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	cases := map[time.Duration]float64{
		0:                5,
		30 * time.Second: 5,
		time.Minute:      10,
		90 * time.Second: 10,
		2 * time.Minute:  0,
		3 * time.Hour:    0,
	}
	for tt, want := range cases {
		if r := s.RateAt(tt); r != want {
			t.Errorf("rate at %v = %v want %v", tt, r, want)
		}
	}
}

func TestStepsValidation(t *testing.T) {
	if _, err := NewSteps(nil); err == nil {
		t.Error("want error for empty schedule")
	}
	if _, err := NewSteps([]Step{{Start: time.Second, Rate: 1}}); err == nil {
		t.Error("want error when schedule does not start at 0")
	}
	if _, err := NewSteps([]Step{{Start: 0, Rate: -1}}); err == nil {
		t.Error("want error for negative rate")
	}
	if _, err := NewSteps([]Step{{Start: 0, Rate: 1}, {Start: 0, Rate: 2}}); err == nil {
		t.Error("want error for duplicate step times")
	}
	if _, err := NewSteps([]Step{{Start: 0, Rate: math.NaN()}}); err == nil {
		t.Error("want error for NaN rate")
	}
}

func TestStepsSortedRegardlessOfInputOrder(t *testing.T) {
	s, err := NewSteps([]Step{
		{Start: time.Minute, Rate: 10},
		{Start: 0, Rate: 5},
	})
	if err != nil {
		t.Fatal(err)
	}
	if r := s.RateAt(30 * time.Second); r != 5 {
		t.Errorf("rate=%v want 5", r)
	}
}

func TestRampInterpolates(t *testing.T) {
	s, err := NewRamp(10, 20, time.Minute, 2*time.Minute, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if r := s.RateAt(0); r != 10 {
		t.Errorf("before ramp rate=%v", r)
	}
	if r := s.RateAt(90 * time.Second); math.Abs(r-15) > 0.5 {
		t.Errorf("mid-ramp rate=%v want ~15", r)
	}
	if r := s.RateAt(5 * time.Minute); r != 20 {
		t.Errorf("after ramp rate=%v", r)
	}
	if _, err := NewRamp(1, 2, time.Minute, time.Minute, time.Second); err == nil {
		t.Error("want error for zero-length ramp")
	}
	if _, err := NewRamp(1, 2, 0, time.Minute, 0); err == nil {
		t.Error("want error for zero resolution")
	}
}

func TestFromPerMinuteCounts(t *testing.T) {
	s, err := FromPerMinuteCounts([]float64{60, 120, 0})
	if err != nil {
		t.Fatal(err)
	}
	if r := s.RateAt(30 * time.Second); r != 1 {
		t.Errorf("minute 0 rate=%v want 1", r)
	}
	if r := s.RateAt(90 * time.Second); r != 2 {
		t.Errorf("minute 1 rate=%v want 2", r)
	}
	if r := s.RateAt(150 * time.Second); r != 0 {
		t.Errorf("minute 2 rate=%v want 0", r)
	}
	if s.End() != 3*time.Minute {
		t.Errorf("end=%v", s.End())
	}
	if r := s.RateAt(10 * time.Minute); r != 0 {
		t.Errorf("past end rate=%v", r)
	}
	if _, err := FromPerMinuteCounts(nil); err == nil {
		t.Error("want error for empty counts")
	}
	if _, err := FromPerMinuteCounts([]float64{-1}); err == nil {
		t.Error("want error for negative count")
	}
}

func TestArrivalsStaticRateMatchesPoisson(t *testing.T) {
	s, _ := NewStatic(50)
	a := NewArrivals(s, xrand.New(42))
	var count int
	now := time.Duration(0)
	horizon := 200 * time.Second
	for {
		next, ok := a.Next(now)
		if !ok || next > horizon {
			break
		}
		count++
		now = next
	}
	want := 50 * horizon.Seconds()
	if math.Abs(float64(count)-want) > 4*math.Sqrt(want) {
		t.Errorf("count=%d want ~%v", count, want)
	}
}

func TestArrivalsExactAcrossStepBoundary(t *testing.T) {
	// Rate 0 for the first minute, then 100: no arrivals may occur in the
	// first minute and the second minute must carry ~100/s.
	s, err := NewSteps([]Step{{Start: 0, Rate: 0}, {Start: time.Minute, Rate: 100}})
	if err != nil {
		t.Fatal(err)
	}
	a := NewArrivals(s, xrand.New(7))
	var count int
	now := time.Duration(0)
	for {
		next, ok := a.Next(now)
		if !ok || next > 2*time.Minute {
			break
		}
		if next < time.Minute {
			t.Fatalf("arrival at %v during zero-rate segment", next)
		}
		count++
		now = next
	}
	if math.Abs(float64(count)-6000) > 4*math.Sqrt(6000) {
		t.Errorf("count=%d want ~6000", count)
	}
}

func TestArrivalsScheduleEnd(t *testing.T) {
	s, _ := NewStatic(100)
	s = s.WithEnd(time.Second)
	a := NewArrivals(s, xrand.New(9))
	now := time.Duration(0)
	count := 0
	for {
		next, ok := a.Next(now)
		if !ok {
			break
		}
		if next >= time.Second {
			t.Fatalf("arrival at %v past schedule end", next)
		}
		count++
		now = next
		if count > 10000 {
			t.Fatal("runaway generator")
		}
	}
	if count < 50 || count > 200 {
		t.Errorf("count=%d want ~100", count)
	}
}

func TestArrivalsZeroForeverStops(t *testing.T) {
	s, _ := NewStatic(0)
	a := NewArrivals(s, xrand.New(1))
	if _, ok := a.Next(0); ok {
		t.Error("zero-rate schedule should produce no arrivals")
	}
}

func TestArrivalsNegativeAfterClamps(t *testing.T) {
	s, _ := NewStatic(10)
	a := NewArrivals(s, xrand.New(2))
	next, ok := a.Next(-time.Hour)
	if !ok || next < 0 {
		t.Errorf("next=%v ok=%v", next, ok)
	}
}

func TestExpectedCount(t *testing.T) {
	s, _ := NewSteps([]Step{
		{Start: 0, Rate: 10},
		{Start: time.Minute, Rate: 20},
	})
	// 10/s for 60s + 20/s for 60s = 1800.
	if got := s.ExpectedCount(0, 2*time.Minute); math.Abs(got-1800) > 1e-9 {
		t.Errorf("expected count=%v want 1800", got)
	}
	// Partial window inside one segment.
	if got := s.ExpectedCount(30*time.Second, 45*time.Second); math.Abs(got-150) > 1e-9 {
		t.Errorf("expected=%v want 150", got)
	}
}

func TestQuickArrivalCountsMatchExpectation(t *testing.T) {
	// For random step schedules, the realized arrival count over the
	// horizon must be within 5 standard deviations of ∫λdt.
	rng := xrand.New(1234)
	f := func(r1, r2, r3 uint8) bool {
		steps := []Step{
			{Start: 0, Rate: float64(r1 % 50)},
			{Start: 30 * time.Second, Rate: float64(r2 % 50)},
			{Start: time.Minute, Rate: float64(r3 % 50)},
		}
		s, err := NewSteps(steps)
		if err != nil {
			return false
		}
		s = s.WithEnd(90 * time.Second)
		a := NewArrivals(s, rng.Fork())
		count := 0
		now := time.Duration(0)
		for {
			next, ok := a.Next(now)
			if !ok {
				break
			}
			count++
			now = next
			if count > 100000 {
				return false
			}
		}
		want := s.ExpectedCount(0, 90*time.Second)
		if want == 0 {
			return count == 0
		}
		return math.Abs(float64(count)-want) <= 5*math.Sqrt(want)+3
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestPhaseSchedule(t *testing.T) {
	p := PhaseSchedule{
		"a": {{Start: 0, Rate: 5}},
		"b": {{Start: 0, Rate: 0}, {Start: 5 * time.Minute, Rate: 8}},
	}
	m, err := p.Schedules()
	if err != nil {
		t.Fatal(err)
	}
	if m["a"].RateAt(time.Minute) != 5 {
		t.Error("a rate wrong")
	}
	if m["b"].RateAt(time.Minute) != 0 || m["b"].RateAt(6*time.Minute) != 8 {
		t.Error("b rates wrong")
	}
	bad := PhaseSchedule{"x": {{Start: time.Second, Rate: 1}}}
	if _, err := bad.Schedules(); err == nil {
		t.Error("want error for invalid phase schedule")
	}
}
