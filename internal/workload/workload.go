// Package workload implements the configurable IoT workload generator of
// the paper's evaluation (§6.1): request arrival processes whose rate is
// static, changes at discrete instants, or changes continuously, plus
// trace-driven schedules (per-minute counts, the Azure dataset's format).
//
// Arrivals are Poisson with a time-varying rate, sampled exactly for
// piecewise-constant rate functions (no thinning error): the generator
// integrates the rate function against a unit-exponential deviate, so a
// schedule change mid-gap is handled correctly.
package workload

import (
	"fmt"
	"math"
	"sort"
	"time"

	"lass/internal/xrand"
)

// Step is one segment of a piecewise-constant rate schedule: Rate holds
// from Start until the next step's Start (or forever for the last step).
type Step struct {
	Start time.Duration
	Rate  float64 // req/s
}

// Schedule is a piecewise-constant arrival-rate function λ(t).
type Schedule struct {
	steps []Step
	end   time.Duration // 0 = no end (last rate holds forever)
}

// NewStatic returns a schedule with a constant rate ("Static" mode, §6.1).
func NewStatic(rate float64) (*Schedule, error) {
	return NewSteps([]Step{{Start: 0, Rate: rate}})
}

// NewSteps returns a schedule from explicit steps ("Discrete change" mode,
// §6.1). Steps must start at or after 0 with strictly increasing times and
// non-negative rates; a step at time 0 is required.
func NewSteps(steps []Step) (*Schedule, error) {
	if len(steps) == 0 {
		return nil, fmt.Errorf("workload: empty schedule")
	}
	s := append([]Step(nil), steps...)
	sort.SliceStable(s, func(i, j int) bool { return s[i].Start < s[j].Start })
	if s[0].Start != 0 {
		return nil, fmt.Errorf("workload: schedule must start at 0, got %v", s[0].Start)
	}
	for i, st := range s {
		if st.Rate < 0 || math.IsNaN(st.Rate) || math.IsInf(st.Rate, 0) {
			return nil, fmt.Errorf("workload: invalid rate %v at %v", st.Rate, st.Start)
		}
		if i > 0 && st.Start == s[i-1].Start {
			return nil, fmt.Errorf("workload: duplicate step time %v", st.Start)
		}
	}
	return &Schedule{steps: s}, nil
}

// NewRamp returns a schedule that changes linearly from rate a to rate b
// over [start, end], discretized at the given resolution ("Continuous
// change" mode, §6.1: the rate is adjusted continuously; the
// discretization error is bounded by the resolution). Before start the
// rate is a; after end it stays at b.
func NewRamp(a, b float64, start, end, resolution time.Duration) (*Schedule, error) {
	if end <= start {
		return nil, fmt.Errorf("workload: ramp end %v not after start %v", end, start)
	}
	if resolution <= 0 {
		return nil, fmt.Errorf("workload: non-positive resolution %v", resolution)
	}
	var steps []Step
	if start > 0 {
		steps = append(steps, Step{Start: 0, Rate: a})
	}
	for t := start; t < end; t += resolution {
		frac := float64(t-start) / float64(end-start)
		steps = append(steps, Step{Start: t, Rate: a + (b-a)*frac})
	}
	steps = append(steps, Step{Start: end, Rate: b})
	return NewSteps(steps)
}

// FromPerMinuteCounts builds a schedule from per-minute invocation counts
// (the Azure Functions Trace 2019 format, §6.7): during minute i the rate
// is counts[i]/60 req/s. The schedule ends after the last minute.
func FromPerMinuteCounts(counts []float64) (*Schedule, error) {
	if len(counts) == 0 {
		return nil, fmt.Errorf("workload: empty counts")
	}
	steps := make([]Step, len(counts))
	for i, c := range counts {
		if c < 0 {
			return nil, fmt.Errorf("workload: negative count %v at minute %d", c, i)
		}
		steps[i] = Step{Start: time.Duration(i) * time.Minute, Rate: c / 60}
	}
	s, err := NewSteps(steps)
	if err != nil {
		return nil, err
	}
	s.end = time.Duration(len(counts)) * time.Minute
	return s, nil
}

// WithEnd returns a copy of the schedule that produces no arrivals after
// end.
func (s *Schedule) WithEnd(end time.Duration) *Schedule {
	return &Schedule{steps: s.steps, end: end}
}

// End returns the schedule's end time (0 = unbounded).
func (s *Schedule) End() time.Duration { return s.end }

// RateAt returns λ(t).
func (s *Schedule) RateAt(t time.Duration) float64 {
	if s.end > 0 && t >= s.end {
		return 0
	}
	idx := sort.Search(len(s.steps), func(i int) bool { return s.steps[i].Start > t })
	if idx == 0 {
		return 0 // before schedule start (t < 0)
	}
	return s.steps[idx-1].Rate
}

// MaxRate returns the largest rate in the schedule.
func (s *Schedule) MaxRate() float64 {
	m := 0.0
	for _, st := range s.steps {
		if st.Rate > m {
			m = st.Rate
		}
	}
	return m
}

// segmentEnd returns when the segment containing t ends (schedule end, the
// next step, or infinity).
func (s *Schedule) segmentEnd(t time.Duration) time.Duration {
	idx := sort.Search(len(s.steps), func(i int) bool { return s.steps[i].Start > t })
	var e time.Duration = math.MaxInt64
	if idx < len(s.steps) {
		e = s.steps[idx].Start
	}
	if s.end > 0 && s.end < e {
		e = s.end
	}
	return e
}

// Arrivals generates Poisson arrival times following a Schedule. It is a
// stateless sampler over the schedule: each Next call advances from the
// given time, so multiple independent Arrivals can share one Schedule.
type Arrivals struct {
	sched *Schedule
	rng   *xrand.Rand
}

// NewArrivals returns a Poisson arrival generator for the schedule.
func NewArrivals(sched *Schedule, rng *xrand.Rand) *Arrivals {
	return &Arrivals{sched: sched, rng: rng}
}

// Next returns the first arrival strictly after the given time, or ok=false
// when the schedule has ended (or is permanently zero). The sampling is
// exact for the piecewise-constant rate: a unit-exponential deviate is
// integrated across segments.
func (a *Arrivals) Next(after time.Duration) (time.Duration, bool) {
	w := a.rng.Exp(1) // unit-exponential "work" to consume: ∫λ dt = w
	t := after
	if t < 0 {
		t = 0
	}
	for {
		if a.sched.end > 0 && t >= a.sched.end {
			return 0, false
		}
		rate := a.sched.RateAt(t)
		segEnd := a.sched.segmentEnd(t)
		if rate <= 0 {
			if segEnd == math.MaxInt64 {
				return 0, false // zero rate forever
			}
			t = segEnd
			continue
		}
		dt := time.Duration(w / rate * float64(time.Second))
		if segEnd == math.MaxInt64 || t+dt < segEnd {
			return t + dt, true
		}
		w -= rate * (segEnd - t).Seconds()
		t = segEnd
	}
}

// NextN fills out with consecutive arrival times, the first strictly after
// the given time, consuming random deviates exactly as the equivalent
// sequence of Next calls would — so batch generation is bit-for-bit
// identical to one-at-a-time generation. It returns the number of arrivals
// produced; fewer than len(out) means the schedule ended.
func (a *Arrivals) NextN(after time.Duration, out []time.Duration) int {
	n := 0
	t := after
	for n < len(out) {
		next, ok := a.Next(t)
		if !ok {
			break
		}
		out[n] = next
		n++
		t = next
	}
	return n
}

// ExpectedCount returns ∫λ(t)dt over [from, to] — the expected number of
// arrivals, used by tests to validate the sampler.
func (s *Schedule) ExpectedCount(from, to time.Duration) float64 {
	total := 0.0
	t := from
	for t < to {
		end := s.segmentEnd(t)
		if end > to {
			end = to
		}
		total += s.RateAt(t) * (end - t).Seconds()
		if end == t { // safety: should not happen
			break
		}
		t = end
	}
	return total
}

// PhaseSchedule builds the two-function overload scenario of Fig 8 (§6.6):
// a convenience for experiments that describe workloads as (start, rate)
// phase lists per function.
type PhaseSchedule map[string][]Step

// Schedules materializes a PhaseSchedule into per-function Schedules.
// Functions are validated in name order so the error for a multi-mistake
// spec is stable run to run.
func (p PhaseSchedule) Schedules() (map[string]*Schedule, error) {
	names := make([]string, 0, len(p))
	for fn := range p {
		names = append(names, fn)
	}
	sort.Strings(names)
	out := make(map[string]*Schedule, len(p))
	for _, fn := range names {
		s, err := NewSteps(p[fn])
		if err != nil {
			return nil, fmt.Errorf("workload: function %s: %w", fn, err)
		}
		out[fn] = s
	}
	return out, nil
}
