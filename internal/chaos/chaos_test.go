package chaos

import (
	"strings"
	"testing"
	"time"
)

func TestWindowValidationRejections(t *testing.T) {
	s := time.Second
	cases := []struct {
		name string
		ws   []Window
		want string
	}{
		{"negative start", []Window{{Start: -1 * s, End: 2 * s}}, "before time zero"},
		{"zero duration", []Window{{Start: 3 * s, End: 3 * s}}, "non-positive duration"},
		{"negative duration", []Window{{Start: 5 * s, End: 2 * s}}, "non-positive duration"},
		{"overlap", []Window{{Start: 0, End: 10 * s}, {Start: 5 * s, End: 15 * s}}, "overlap"},
		{"overlap out of order", []Window{{Start: 5 * s, End: 15 * s}, {Start: 0, End: 10 * s}}, "overlap"},
		{"nested", []Window{{Start: 0, End: 20 * s}, {Start: 5 * s, End: 10 * s}}, "overlap"},
	}
	for _, c := range cases {
		err := ValidateWindows(c.ws)
		if err == nil {
			t.Errorf("%s: accepted", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.want)
		}
	}
	// Touching windows ([0,5) then [5,10)) and unordered disjoint windows
	// are fine.
	if err := ValidateWindows([]Window{{Start: 5 * s, End: 10 * s}, {Start: 0, End: 5 * s}}); err != nil {
		t.Errorf("touching windows rejected: %v", err)
	}
}

func TestFaultValidation(t *testing.T) {
	ge := &GilbertElliott{MeanUp: time.Minute, MeanDown: 10 * time.Second}
	cases := []struct {
		name string
		f    Fault
		want string
	}{
		{"no process", Fault{Kind: FaultSite, Site: 0}, "exactly one"},
		{"both processes", Fault{Kind: FaultSite, Site: 0, GE: ge, Windows: []Window{{End: time.Second}}}, "exactly one"},
		{"site out of range", Fault{Kind: FaultSite, Site: 9, GE: ge}, "out of range"},
		{"link self loop", Fault{Kind: FaultLink, From: 1, To: 1, GE: ge}, "from and to"},
		{"link endpoint range", Fault{Kind: FaultLink, From: 0, To: -2, GE: ge}, "out of range"},
		{"empty group", Fault{Kind: FaultGroup, GE: ge}, "no member sites"},
		{"negative lag", Fault{Kind: FaultGroup, Sites: []int{0, 1}, Lag: -time.Second, GE: ge}, "negative cascade lag"},
		{"bad GE", Fault{Kind: FaultSite, Site: 0, GE: &GilbertElliott{MeanUp: -1, MeanDown: 1}}, "must be positive"},
	}
	for _, c := range cases {
		_, err := New(Config{Sites: 3, Seed: 1, Faults: []Fault{c.f}})
		if err == nil {
			t.Errorf("%s: accepted", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.want)
		}
	}
	if _, err := New(Config{Sites: 0}); err == nil {
		t.Error("zero-site config accepted")
	}
}

func TestStaticWindowsReplay(t *testing.T) {
	s := time.Second
	e := MustNew(Config{Sites: 2, Faults: []Fault{
		{Kind: FaultCoordinator, Windows: []Window{{Start: 10 * s, End: 20 * s}, {Start: 40 * s, End: 41 * s}}},
	}})
	for _, c := range []struct {
		at   time.Duration
		down bool
	}{
		{0, false}, {10 * s, true}, {15 * s, true}, {20 * s, false},
		{39 * s, false}, {40 * s, true}, {41 * s, false},
	} {
		if got := e.CoordinatorDown(c.at); got != c.down {
			t.Errorf("CoordinatorDown(%v) = %v, want %v", c.at, got, c.down)
		}
	}
	// Coordinator faults never darken sites or links.
	if e.SiteDown(0, 15*s) || e.LinkDown(0, 1, 15*s) {
		t.Error("coordinator fault leaked into site/link state")
	}
}

func TestQueryOrderIndependence(t *testing.T) {
	cfg := Config{Sites: 4, Seed: 99, Faults: []Fault{
		{Kind: FaultSite, Site: 1, GE: &GilbertElliott{MeanUp: 30 * time.Second, MeanDown: 10 * time.Second}},
		{Kind: FaultLink, From: 0, To: 2, Bidirectional: true, GE: &GilbertElliott{MeanUp: 20 * time.Second, MeanDown: 5 * time.Second}},
		{Kind: FaultGroup, Sites: []int{2, 3}, Lag: 2 * time.Second, GE: &GilbertElliott{MeanUp: time.Minute, MeanDown: 15 * time.Second}},
	}}
	// Forward sweep on one engine, backward sweep on a sibling built from
	// the same config: every answer must agree even though the lazy
	// extension materialized in opposite orders.
	fwd := MustNew(cfg)
	bwd := MustNew(cfg)
	const steps = 600
	type key struct {
		what string
		at   time.Duration
	}
	got := map[key]bool{}
	for i := 0; i <= steps; i++ {
		at := time.Duration(i) * 500 * time.Millisecond
		got[key{"site1", at}] = fwd.SiteDown(1, at)
		got[key{"link02", at}] = fwd.LinkDown(0, 2, at)
		got[key{"link20", at}] = fwd.LinkDown(2, 0, at)
		got[key{"site2", at}] = fwd.SiteDown(2, at)
		got[key{"site3", at}] = fwd.SiteDown(3, at)
	}
	for i := steps; i >= 0; i-- {
		at := time.Duration(i) * 500 * time.Millisecond
		for _, w := range []struct {
			what string
			down bool
		}{
			{"site3", bwd.SiteDown(3, at)},
			{"site2", bwd.SiteDown(2, at)},
			{"link20", bwd.LinkDown(2, 0, at)},
			{"link02", bwd.LinkDown(0, 2, at)},
			{"site1", bwd.SiteDown(1, at)},
		} {
			if got[key{w.what, at}] != w.down {
				t.Fatalf("%s at %v: forward %v, backward %v", w.what, at, got[key{w.what, at}], w.down)
			}
		}
	}
	// And the process actually fired: over 300s with a 30s/10s cycle the
	// site-1 process should be down somewhere.
	down := 0
	for i := 0; i <= steps; i++ {
		if got[key{"site1", time.Duration(i) * 500 * time.Millisecond}] {
			down++
		}
	}
	if down == 0 || down == steps+1 {
		t.Errorf("site-1 GE process never transitioned (down %d/%d samples)", down, steps+1)
	}
}

func TestSameSeedSameRealization(t *testing.T) {
	cfg := Config{Sites: 3, Seed: 7, Faults: []Fault{
		{Kind: FaultCoordinator, GE: &GilbertElliott{MeanUp: 40 * time.Second, MeanDown: 12 * time.Second}},
		{Kind: FaultSite, Site: 0, GE: &GilbertElliott{MeanUp: 25 * time.Second, MeanDown: 8 * time.Second, StartDown: true}},
	}}
	a, b := MustNew(cfg), MustNew(cfg)
	diff := MustNew(Config{Sites: 3, Seed: 8, Faults: cfg.Faults})
	same, differs := true, false
	for i := 0; i < 1000; i++ {
		at := time.Duration(i) * 300 * time.Millisecond
		if a.CoordinatorDown(at) != b.CoordinatorDown(at) || a.SiteDown(0, at) != b.SiteDown(0, at) {
			same = false
		}
		if a.CoordinatorDown(at) != diff.CoordinatorDown(at) || a.SiteDown(0, at) != diff.SiteDown(0, at) {
			differs = true
		}
	}
	if !same {
		t.Error("same seed produced different realizations")
	}
	if !differs {
		t.Error("different seeds produced identical realizations (suspicious)")
	}
}

func TestGroupCascadeLag(t *testing.T) {
	// A static group schedule with a 5s lag: member 0 fails on schedule,
	// member 1 five seconds later, member 2 ten seconds later.
	s := time.Second
	e := MustNew(Config{Sites: 3, Faults: []Fault{
		{Kind: FaultGroup, Sites: []int{0, 1, 2}, Lag: 5 * s, Windows: []Window{{Start: 10 * s, End: 20 * s}}},
	}})
	for _, c := range []struct {
		site int
		at   time.Duration
		down bool
	}{
		{0, 10 * s, true}, {0, 19 * s, true}, {0, 20 * s, false},
		{1, 10 * s, false}, {1, 15 * s, true}, {1, 24 * s, true}, {1, 25 * s, false},
		{2, 15 * s, false}, {2, 20 * s, true}, {2, 29 * s, true}, {2, 30 * s, false},
	} {
		if got := e.SiteDown(c.site, c.at); got != c.down {
			t.Errorf("SiteDown(%d, %v) = %v, want %v", c.site, c.at, got, c.down)
		}
	}
}

func TestStartDown(t *testing.T) {
	e := MustNew(Config{Sites: 1, Seed: 4, Faults: []Fault{
		{Kind: FaultSite, Site: 0, GE: &GilbertElliott{MeanUp: time.Hour, MeanDown: time.Hour, StartDown: true}},
	}})
	if !e.SiteDown(0, 0) {
		t.Error("StartDown process is up at time zero")
	}
}

func TestOutOfRangeQueriesAreUp(t *testing.T) {
	e := MustNew(Config{Sites: 2, Faults: []Fault{
		{Kind: FaultSite, Site: 0, Windows: []Window{{Start: 0, End: time.Hour}}},
	}})
	if e.SiteDown(-1, time.Second) || e.SiteDown(5, time.Second) {
		t.Error("out-of-range site query reported down")
	}
	if e.LinkDown(0, 1, time.Second) {
		t.Error("link with no fault reported down")
	}
	if e.SiteDown(0, -time.Second) {
		t.Error("negative-time query reported down")
	}
}
