// Package chaos is a seeded fault engine for the federation simulator.
//
// A chaos Engine answers three point-in-time questions — is the
// coordinator role dark, is a site dark, is a directed link dark — for
// any simulated instant, from a declarative list of Faults. Fault
// processes are either static window schedules (replayed bit-for-bit,
// subsuming hand-scheduled coordinator outages) or seeded
// Gilbert-Elliott up/down processes whose exponential holding times are
// drawn from private internal/xrand streams forked per fault in
// declaration order. Queries never consume randomness from a shared
// stream, so answers are independent of query order and of how many
// sweep workers interrogate sibling engines concurrently: the same
// (Config, Seed) always yields the same failure realization.
//
// Timelines extend lazily: a Gilbert-Elliott process materializes its
// down-windows only as far as the latest instant queried, so engines are
// horizon-free and cost nothing for the portion of the run they never
// see.
package chaos

import (
	"fmt"
	"sort"
	"time"

	"lass/internal/xrand"
)

// Window is a half-open interval [Start, End) of simulated time during
// which a fault target is dark.
type Window struct {
	Start time.Duration
	End   time.Duration
}

// Contains reports whether t falls inside the window.
func (w Window) Contains(t time.Duration) bool { return t >= w.Start && t < w.End }

// ValidateWindows rejects malformed static schedules: negative starts,
// non-positive durations, and overlapping (or touching-out-of-order)
// windows. Windows may be listed in any order; they are compared sorted.
func ValidateWindows(ws []Window) error {
	for i, w := range ws {
		if w.Start < 0 {
			return fmt.Errorf("window %d starts at %v, before time zero", i, w.Start)
		}
		if w.End <= w.Start {
			return fmt.Errorf("window %d [%v, %v) has non-positive duration", i, w.Start, w.End)
		}
	}
	if len(ws) < 2 {
		return nil
	}
	sorted := append([]Window(nil), ws...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Start < sorted[j].Start })
	for i := 1; i < len(sorted); i++ {
		if sorted[i].Start < sorted[i-1].End {
			return fmt.Errorf("windows [%v, %v) and [%v, %v) overlap",
				sorted[i-1].Start, sorted[i-1].End, sorted[i].Start, sorted[i].End)
		}
	}
	return nil
}

// sortWindows returns a start-sorted copy of a validated schedule.
func sortWindows(ws []Window) []Window {
	sorted := append([]Window(nil), ws...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Start < sorted[j].Start })
	return sorted
}

// GilbertElliott parameterizes a two-state up/down process: holding
// times are exponential with means MeanUp and MeanDown, alternating. The
// process starts up unless StartDown is set.
type GilbertElliott struct {
	MeanUp   time.Duration
	MeanDown time.Duration
	// StartDown starts the process in the down state at time zero.
	StartDown bool
}

func (g GilbertElliott) validate() error {
	if g.MeanUp <= 0 || g.MeanDown <= 0 {
		return fmt.Errorf("gilbert-elliott means must be positive (up %v, down %v)", g.MeanUp, g.MeanDown)
	}
	return nil
}

// FaultKind names a fault target.
type FaultKind int

const (
	// FaultCoordinator darkens the coordinator role: allocation epochs
	// that fire (or deliver) while it is down are missed. It does not
	// touch any site's data plane.
	FaultCoordinator FaultKind = iota
	// FaultSite darkens one site's network: every link to and from the
	// site is down while the fault holds. Local ingress keeps arriving
	// and being served from local capacity.
	FaultSite
	// FaultLink darkens the directed link From→To (and To→From when
	// Bidirectional is set), leaving both endpoints otherwise reachable.
	FaultLink
	// FaultGroup darkens a correlated set of sites from one shared
	// process; member k's outage is shifted k×Lag later, modeling
	// cascading failures.
	FaultGroup
)

func (k FaultKind) String() string {
	switch k {
	case FaultCoordinator:
		return "coordinator"
	case FaultSite:
		return "site"
	case FaultLink:
		return "link"
	case FaultGroup:
		return "group"
	}
	return fmt.Sprintf("FaultKind(%d)", int(k))
}

// Fault declares one failure process against one target. Exactly one of
// Windows (a static schedule) or GE (a seeded up/down process) drives
// it.
type Fault struct {
	Kind FaultKind

	// Site is the target index for FaultSite.
	Site int
	// From and To are the directed-link endpoints for FaultLink;
	// Bidirectional also darkens the reverse direction.
	From, To      int
	Bidirectional bool
	// Sites are the members of a FaultGroup; Lag staggers member k's
	// outage by k×Lag (cascade). Lag zero fails the group in lockstep.
	Sites []int
	Lag   time.Duration

	// Windows replays a fixed schedule bit-for-bit.
	Windows []Window
	// GE draws the schedule from a seeded Gilbert-Elliott process.
	GE *GilbertElliott
}

func (f Fault) validate(i, nsites int) error {
	if (len(f.Windows) > 0) == (f.GE != nil) {
		return fmt.Errorf("fault %d (%v): exactly one of windows or a gilbert-elliott process must be set", i, f.Kind)
	}
	if err := ValidateWindows(f.Windows); err != nil {
		return fmt.Errorf("fault %d (%v): %w", i, f.Kind, err)
	}
	if f.GE != nil {
		if err := f.GE.validate(); err != nil {
			return fmt.Errorf("fault %d (%v): %w", i, f.Kind, err)
		}
	}
	site := func(s int, role string) error {
		if s < 0 || s >= nsites {
			return fmt.Errorf("fault %d (%v): %s site %d out of range [0, %d)", i, f.Kind, role, s, nsites)
		}
		return nil
	}
	switch f.Kind {
	case FaultCoordinator:
	case FaultSite:
		if err := site(f.Site, "target"); err != nil {
			return err
		}
	case FaultLink:
		if err := site(f.From, "from"); err != nil {
			return err
		}
		if err := site(f.To, "to"); err != nil {
			return err
		}
		if f.From == f.To {
			return fmt.Errorf("fault %d (link): from and to are both site %d", i, f.From)
		}
	case FaultGroup:
		if len(f.Sites) == 0 {
			return fmt.Errorf("fault %d (group): no member sites", i)
		}
		for _, s := range f.Sites {
			if err := site(s, "member"); err != nil {
				return err
			}
		}
		if f.Lag < 0 {
			return fmt.Errorf("fault %d (group): negative cascade lag %v", i, f.Lag)
		}
	default:
		return fmt.Errorf("fault %d: unknown kind %d", i, int(f.Kind))
	}
	return nil
}

// Config declares a chaos realization: the fleet size the faults target,
// the master seed every stochastic process forks from, and the fault
// list. Fault order matters only for seeding — each fault forks its
// private stream from the master in declaration order.
type Config struct {
	// Sites is the number of edge sites fault targets index into.
	Sites int
	// Seed is the master seed; zero is a valid (fixed) seed.
	Seed uint64
	// Faults are the failure processes.
	Faults []Fault
}

// timeline is one fault process's materialized down-schedule. Static
// schedules are fully materialized at build time; Gilbert-Elliott
// schedules extend lazily from a private seeded stream as later
// instants are queried.
type timeline struct {
	windows []Window

	// Stochastic extension state; rng nil means the schedule is static
	// and complete.
	rng      *xrand.Rand
	ge       GilbertElliott
	frontier time.Duration // materialized up to here
	down     bool          // state at the frontier
}

func newStaticTimeline(ws []Window) *timeline {
	return &timeline{windows: sortWindows(ws)}
}

func newGETimeline(g GilbertElliott, rng *xrand.Rand) *timeline {
	return &timeline{rng: rng, ge: g, down: g.StartDown}
}

// extend materializes the schedule through t (exclusive of the state
// beyond it). Holding times are drawn alternately from the up and down
// exponentials; a down holding closes one window.
func (tl *timeline) extend(t time.Duration) {
	for tl.frontier <= t {
		if tl.down {
			hold := tl.rng.Exp(1 / tl.ge.MeanDown.Seconds())
			end := tl.frontier + time.Duration(hold*float64(time.Second))
			if end <= tl.frontier {
				end = tl.frontier + 1 // degenerate draw: keep time advancing
			}
			tl.windows = append(tl.windows, Window{Start: tl.frontier, End: end})
			tl.frontier = end
			tl.down = false
			continue
		}
		hold := tl.rng.Exp(1 / tl.ge.MeanUp.Seconds())
		next := tl.frontier + time.Duration(hold*float64(time.Second))
		if next <= tl.frontier {
			next = tl.frontier + 1
		}
		tl.frontier = next
		tl.down = true
	}
}

// downAt reports whether the process is dark at t. Binary search over
// the materialized prefix keeps answers independent of query order.
func (tl *timeline) downAt(t time.Duration) bool {
	if t < 0 {
		return false
	}
	if tl.rng != nil && tl.frontier <= t {
		tl.extend(t)
	}
	i := sort.Search(len(tl.windows), func(i int) bool { return tl.windows[i].End > t })
	return i < len(tl.windows) && tl.windows[i].Contains(t)
}

// procRef points a fault target at a timeline, shifted by a cascade
// offset: the target is dark at t when the timeline is dark at t-offset.
type procRef struct {
	tl     *timeline
	offset time.Duration
}

func (p procRef) downAt(t time.Duration) bool { return p.tl.downAt(t - p.offset) }

// Engine answers point-in-time darkness queries for a fault
// configuration. It is not safe for concurrent use; sweeps give each
// replicate its own engine.
type Engine struct {
	nsites int
	coord  []procRef
	site   [][]procRef
	link   map[[2]int][]procRef
}

// New validates cfg and builds its engine. Every fault — static or
// stochastic — forks one private stream from the master seed in
// declaration order, so a fault's realization is a pure function of
// (Seed, declaration index) and queries can interleave freely without
// perturbing any other fault's draws.
func New(cfg Config) (*Engine, error) {
	if cfg.Sites <= 0 {
		return nil, fmt.Errorf("chaos: config needs a positive site count, got %d", cfg.Sites)
	}
	e := &Engine{
		nsites: cfg.Sites,
		site:   make([][]procRef, cfg.Sites),
		link:   make(map[[2]int][]procRef),
	}
	master := xrand.New(cfg.Seed)
	for i, f := range cfg.Faults {
		if err := f.validate(i, cfg.Sites); err != nil {
			return nil, fmt.Errorf("chaos: %w", err)
		}
		rng := master.Fork()
		var tl *timeline
		if f.GE != nil {
			tl = newGETimeline(*f.GE, rng)
		} else {
			tl = newStaticTimeline(f.Windows)
		}
		switch f.Kind {
		case FaultCoordinator:
			e.coord = append(e.coord, procRef{tl: tl})
		case FaultSite:
			e.site[f.Site] = append(e.site[f.Site], procRef{tl: tl})
		case FaultLink:
			k := [2]int{f.From, f.To}
			e.link[k] = append(e.link[k], procRef{tl: tl})
			if f.Bidirectional {
				r := [2]int{f.To, f.From}
				e.link[r] = append(e.link[r], procRef{tl: tl})
			}
		case FaultGroup:
			for k, s := range f.Sites {
				e.site[s] = append(e.site[s], procRef{tl: tl, offset: time.Duration(k) * f.Lag})
			}
		}
	}
	return e, nil
}

// MustNew is New for configurations known valid at compile time.
func MustNew(cfg Config) *Engine {
	e, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return e
}

func anyDown(ps []procRef, t time.Duration) bool {
	for _, p := range ps {
		if p.downAt(t) {
			return true
		}
	}
	return false
}

// CoordinatorDown reports whether any coordinator-role fault holds at t.
// The role is distinct from the site hosting it: a coordinator fault
// silences the global allocator without touching the host site's data
// plane (exactly the legacy CoordinatorOutages semantics).
func (e *Engine) CoordinatorDown(at time.Duration) bool { return anyDown(e.coord, at) }

// SiteDown reports whether site is network-dark at t: all of its links
// are down, but local ingress and local capacity still work.
func (e *Engine) SiteDown(site int, at time.Duration) bool {
	if site < 0 || site >= e.nsites {
		return false
	}
	return anyDown(e.site[site], at)
}

// LinkDown reports whether the directed link from→to has a link-level
// fault at t. It does not fold in endpoint SiteDown state; callers that
// want full reachability use both (as federation's fault view does).
func (e *Engine) LinkDown(from, to int, at time.Duration) bool {
	if len(e.link) == 0 {
		return false
	}
	return anyDown(e.link[[2]int{from, to}], at)
}
