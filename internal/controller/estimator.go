// Package controller implements the LaSS control plane (paper §3-§5): the
// arrival-rate estimators, the epoch-driven model-based container
// allocation algorithm, weighted fair-share adjustment under overload, and
// the termination/deflation resource-reclamation policies.
package controller

import (
	"fmt"
	"time"
)

// DualWindowConfig configures the burst-detecting rate estimator of §5:
// "monitoring two sliding windows every 5 seconds: a 2-minute long window
// and a 10-second short window ... if the arrival rate in the short window
// is twice as high as the arrival rate in the long window, LaSS switches to
// calculating the arrival rate based on the short window."
type DualWindowConfig struct {
	Short       time.Duration // default 10s
	Long        time.Duration // default 2min
	BurstFactor float64       // default 2.0
}

// DefaultDualWindow returns the paper's window configuration.
func DefaultDualWindow() DualWindowConfig {
	return DualWindowConfig{Short: 10 * time.Second, Long: 2 * time.Minute, BurstFactor: 2}
}

// DualWindow estimates a function's arrival rate from per-second arrival
// counts kept in a ring buffer covering the long window.
type DualWindow struct {
	cfg     DualWindowConfig
	buckets []float64
	head    int64 // absolute second index of buckets[headPos]
	headPos int
	started bool
	first   int64 // absolute second of the first recorded/observed instant
}

// NewDualWindow builds the estimator.
func NewDualWindow(cfg DualWindowConfig) (*DualWindow, error) {
	if cfg.Short <= 0 || cfg.Long <= 0 || cfg.Short >= cfg.Long {
		return nil, fmt.Errorf("controller: invalid windows short=%v long=%v", cfg.Short, cfg.Long)
	}
	if cfg.BurstFactor <= 1 {
		return nil, fmt.Errorf("controller: burst factor %v must exceed 1", cfg.BurstFactor)
	}
	n := int(cfg.Long / time.Second)
	if cfg.Long%time.Second != 0 {
		n++
	}
	return &DualWindow{cfg: cfg, buckets: make([]float64, n)}, nil
}

func secOf(t time.Duration) int64 { return int64(t / time.Second) }

// advance rolls the ring forward to the bucket containing now, zeroing
// skipped seconds.
func (d *DualWindow) advance(now time.Duration) {
	sec := secOf(now)
	if !d.started {
		d.started = true
		d.first = sec
		d.head = sec
		return
	}
	for d.head < sec {
		d.head++
		d.headPos = (d.headPos + 1) % len(d.buckets)
		d.buckets[d.headPos] = 0
	}
}

// RecordArrival counts one arrival at time now. Calls must be monotone in
// now (simulation order guarantees this).
func (d *DualWindow) RecordArrival(now time.Duration) {
	d.advance(now)
	d.buckets[d.headPos]++
}

// sumCompleted sums the n most recent *complete* seconds of counts,
// excluding the currently-filling second: including a just-started bucket
// would dilute the rate by a partial interval.
func (d *DualWindow) sumCompleted(n int) float64 {
	if n > len(d.buckets)-1 {
		n = len(d.buckets) - 1
	}
	var s float64
	pos := d.headPos - 1
	if pos < 0 {
		pos = len(d.buckets) - 1
	}
	for i := 0; i < n; i++ {
		s += d.buckets[pos]
		pos--
		if pos < 0 {
			pos = len(d.buckets) - 1
		}
	}
	return s
}

// Rate returns the estimated arrival rate (req/s) at time now and whether
// the short window detected a burst. Early in a run, windows are scaled to
// the observed duration so the estimate is not diluted by empty history.
func (d *DualWindow) Rate(now time.Duration) (rate float64, burst bool) {
	d.advance(now)
	completed := d.head - d.first // whole seconds observed before the current one
	if completed < 1 {
		// Sub-second history: the current bucket is all there is.
		return d.buckets[d.headPos], false
	}
	shortSecs := int(d.cfg.Short / time.Second)
	longSecs := int(d.cfg.Long / time.Second)
	effShort := shortSecs
	if int64(effShort) > completed {
		effShort = int(completed)
	}
	effLong := longSecs
	if int64(effLong) > completed {
		effLong = int(completed)
	}
	shortRate := d.sumCompleted(effShort) / float64(effShort)
	longRate := d.sumCompleted(effLong) / float64(effLong)
	if longRate > 0 && shortRate >= d.cfg.BurstFactor*longRate {
		return shortRate, true
	}
	return longRate, false
}

// EWMA smooths a per-epoch rate series (§3.3: "subjected to an
// exponentially weighted moving average with a high weight given to the
// most recent epoch").
type EWMA struct {
	alpha   float64
	value   float64
	started bool
}

// NewEWMA builds a smoother; alpha in (0,1], higher = more weight on the
// newest observation.
func NewEWMA(alpha float64) (*EWMA, error) {
	if alpha <= 0 || alpha > 1 {
		return nil, fmt.Errorf("controller: EWMA alpha %v out of (0,1]", alpha)
	}
	return &EWMA{alpha: alpha}, nil
}

// Update folds in a new observation and returns the smoothed value.
func (e *EWMA) Update(v float64) float64 {
	if !e.started {
		e.started = true
		e.value = v
		return v
	}
	e.value = e.alpha*v + (1-e.alpha)*e.value
	return e.value
}

// Value returns the current smoothed value.
func (e *EWMA) Value() float64 { return e.value }

// Reset clears the smoother to its initial state.
func (e *EWMA) Reset() { e.started = false; e.value = 0 }
