package controller

import (
	"math"
	"testing"
	"time"

	"lass/internal/cluster"
	"lass/internal/functions"
	"lass/internal/queuing"
)

func TestTrendPredictorValidation(t *testing.T) {
	if _, err := NewTrendPredictor(1, 1); err == nil {
		t.Error("want error for window < 2")
	}
	if _, err := NewTrendPredictor(4, 0); err == nil {
		t.Error("want error for damping 0")
	}
	if _, err := NewTrendPredictor(4, 1.5); err == nil {
		t.Error("want error for damping > 1")
	}
}

func TestTrendPredictorExtrapolatesRamp(t *testing.T) {
	p, err := NewTrendPredictor(6, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	// Rate grows 2 req/s every 5s epoch: 10, 12, 14, ...
	for i := 0; i < 6; i++ {
		p.Observe(time.Duration(i*5)*time.Second, 10+2*float64(i))
	}
	// Last observation 20 at t=25s; next epoch at 30s should be ~22.
	got := p.Predict(25*time.Second, 5*time.Second)
	if math.Abs(got-22) > 0.1 {
		t.Errorf("predicted %v want ~22", got)
	}
}

func TestTrendPredictorDamping(t *testing.T) {
	full, _ := NewTrendPredictor(6, 1.0)
	half, _ := NewTrendPredictor(6, 0.5)
	for i := 0; i < 6; i++ {
		at := time.Duration(i*5) * time.Second
		full.Observe(at, 10+2*float64(i))
		half.Observe(at, 10+2*float64(i))
	}
	f := full.Predict(25*time.Second, 5*time.Second)
	h := half.Predict(25*time.Second, 5*time.Second)
	if h >= f {
		t.Errorf("damped prediction %v not below full %v", h, f)
	}
	if h <= 20 {
		t.Errorf("damped prediction %v should still exceed last observation 20", h)
	}
}

func TestTrendPredictorConstantLoad(t *testing.T) {
	p, _ := NewTrendPredictor(4, 1.0)
	for i := 0; i < 10; i++ {
		p.Observe(time.Duration(i*5)*time.Second, 30)
	}
	if got := p.Predict(45*time.Second, 5*time.Second); math.Abs(got-30) > 1e-9 {
		t.Errorf("constant load predicted as %v", got)
	}
}

func TestTrendPredictorNeverNegative(t *testing.T) {
	p, _ := NewTrendPredictor(4, 1.0)
	// Steep decline: 40, 20, 0, 0 ...
	rates := []float64{60, 40, 20, 5}
	for i, r := range rates {
		p.Observe(time.Duration(i*5)*time.Second, r)
	}
	if got := p.Predict(15*time.Second, 30*time.Second); got < 0 {
		t.Errorf("negative prediction %v", got)
	}
}

func TestTrendPredictorEmptyAndSingle(t *testing.T) {
	p, _ := NewTrendPredictor(4, 1.0)
	if got := p.Predict(0, time.Second); got != 0 {
		t.Errorf("empty predictor returned %v", got)
	}
	p.Observe(0, 17)
	if got := p.Predict(time.Second, time.Second); got != 17 {
		t.Errorf("single-observation prediction %v want 17", got)
	}
}

func TestControllerUsesPredictor(t *testing.T) {
	h := newHarness(t, Config{}, cluster.PaperCluster())
	spec := functions.MicroBenchmark(100 * time.Millisecond)
	f, err := h.ctl.Register(spec, "", 1, queuing.SLO{})
	if err != nil {
		t.Fatal(err)
	}
	if err := h.ctl.SetPredictor("ghost", nil); err == nil {
		t.Error("want error for unknown function")
	}
	pred, _ := NewTrendPredictor(8, 1.0)
	if err := h.ctl.SetPredictor(spec.Name, pred); err != nil {
		t.Fatal(err)
	}
	// Ramp the offered load across epochs: 10, 20, 30 req/s.
	for i, rate := range []float64{10, 20, 30} {
		h.offer(spec.Name, rate, 10*time.Second)
		h.step()
		_ = i
	}
	// With the trend predictor the effective estimate must overshoot the
	// latest smoothed estimate (the ramp continues).
	noPred := newHarness(t, Config{}, cluster.PaperCluster())
	fn2, _ := noPred.ctl.Register(spec, "", 1, queuing.SLO{})
	for _, rate := range []float64{10, 20, 30} {
		noPred.offer(spec.Name, rate, 10*time.Second)
		noPred.step()
	}
	if f.LambdaHat <= fn2.LambdaHat {
		t.Errorf("predictor estimate %v not above reactive %v on a ramp", f.LambdaHat, fn2.LambdaHat)
	}
	// Removing the predictor reverts to reactive estimates.
	if err := h.ctl.SetPredictor(spec.Name, nil); err != nil {
		t.Fatal(err)
	}
	h.offer(spec.Name, 30, 10*time.Second)
	h.step()
	if f.Burst {
		t.Log("burst flagged; acceptable") // not an error, just informative
	}
}
