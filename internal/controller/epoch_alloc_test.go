package controller

import (
	"testing"
	"time"

	"lass/internal/cluster"
	"lass/internal/queuing"
)

// steadyController builds a controller serving sustained load and runs
// epochs until the estimator, warm sizer, and pools have converged — the
// steady state a long-running site spends nearly all its time in.
func steadyController(t *testing.T) *harness {
	t.Helper()
	h := newHarness(t, Config{}, cluster.PaperCluster())
	for _, fn := range []string{"geofence", "binaryalert", "squeezenet"} {
		if _, err := h.ctl.Register(mustSpec(t, fn), "", 1, queuing.SLO{}); err != nil {
			t.Fatal(err)
		}
		h.offer(fn, 30, 2*time.Second)
	}
	// Freeze the clock: every further epoch sees the same windows, so the
	// rate estimate converges and reconciliation becomes a no-op.
	for i := 0; i < 50; i++ {
		h.step()
	}
	return h
}

// TestStepSteadyStateZeroAllocs asserts the control plane's per-epoch cost
// in the steady state: estimate's demand slice, the warm-started sizer, and
// local enforcement all reuse controller-owned scratch, so an epoch whose
// demand is unchanged performs zero heap allocations.
func TestStepSteadyStateZeroAllocs(t *testing.T) {
	h := steadyController(t)
	allocs := testing.AllocsPerRun(100, func() {
		if err := h.ctl.Step(); err != nil {
			panic(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state Step allocated %.1f times per epoch; want 0", allocs)
	}
}

// TestStepGrantedSteadyStateZeroAllocs is the same contract on the
// external-grant enforcement path the federation drives: with feasible
// grants in place, grantTargets and enforceGrants reuse scratch too.
func TestStepGrantedSteadyStateZeroAllocs(t *testing.T) {
	h := steadyController(t)
	grants := make(map[string]int64, 3)
	for _, d := range h.ctl.Demands() {
		grants[d.Name] = d.DesiredCPU
	}
	h.ctl.SetCapacityGrants(grants)
	for i := 0; i < 10; i++ {
		h.step()
	}
	allocs := testing.AllocsPerRun(100, func() {
		if err := h.ctl.Step(); err != nil {
			panic(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state granted Step allocated %.1f times per epoch; want 0", allocs)
	}
}

// TestDemandsZeroAllocs: the federation snapshots every site's demand
// report each alloc epoch; the report must not cost an allocation per call.
func TestDemandsZeroAllocs(t *testing.T) {
	h := steadyController(t)
	allocs := testing.AllocsPerRun(100, func() {
		if len(h.ctl.Demands()) != 3 {
			panic("unexpected demand count")
		}
	})
	if allocs != 0 {
		t.Fatalf("Demands allocated %.1f times per call; want 0", allocs)
	}
}

// TestWarmHintsMatchColdSizer pins the warm path end to end at the
// controller level: a controller stepping through a demand swing (burst,
// collapse, recovery) must compute exactly the container counts a
// hint-free controller computes from the same inputs.
func TestWarmHintsMatchColdSizer(t *testing.T) {
	h := newHarness(t, Config{}, cluster.PaperCluster())
	f, err := h.ctl.Register(mustSpec(t, "geofence"), "", 1, queuing.SLO{})
	if err != nil {
		t.Fatal(err)
	}
	for i, rate := range []float64{20, 22, 200, 0, 0, 30, 400, 5} {
		h.offer("geofence", rate, 2*time.Second)
		h.step()
		cold, err := queuing.MinimalContainers(f.LambdaHat, f.Spec.ServiceRate(), f.SLO)
		if err != nil {
			t.Fatal(err)
		}
		if f.Desired != cold {
			t.Fatalf("swing %d (rate=%v): warm controller desired %d, cold sizer %d", i, rate, f.Desired, cold)
		}
	}
}
